// Tests for serving admission control (serve/admission.h) and the
// deadline-propagation half of the request executor (serve/executor.h).
// The executor tests include the queued-expiry scenario from the issue:
// a request whose budget runs out while it waits in the queue must be
// shed at dequeue time without touching the network layer at all — zero
// stored-relation accesses, zero cache traffic, `serve.shed_deadline`
// incremented.

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pdms/core/pdms.h"
#include "pdms/obs/metrics.h"
#include "pdms/serve/executor.h"
#include "pdms/util/check.h"

namespace pdms {
namespace serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Admission, AdmitsUntilQueueFullThenShedsEagerly) {
  obs::MetricsRegistry metrics;
  AdmissionOptions options;
  options.max_queue = 2;
  options.retry_after_floor_ms = 3;
  AdmissionController admission(options, &metrics);

  EXPECT_TRUE(admission.Offer(kInf).admitted);
  EXPECT_TRUE(admission.Offer(kInf).admitted);
  auto shed = admission.Offer(kInf);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, wire::ShedReason::kQueueFull);
  EXPECT_EQ(shed.queue_depth, 2u);
  EXPECT_GE(shed.retry_after_ms, options.retry_after_floor_ms);
  EXPECT_EQ(metrics.counter("serve.admitted"), 2u);
  EXPECT_EQ(metrics.counter("serve.shed_queue_full"), 1u);

  // Completion frees a slot; the next offer is admitted again.
  admission.OnComplete(1.0);
  EXPECT_EQ(admission.queue_depth(), 1u);
  EXPECT_TRUE(admission.Offer(kInf).admitted);
}

TEST(Admission, ShedsWhenBudgetCannotCoverExpectedWait) {
  obs::MetricsRegistry metrics;
  AdmissionOptions options;
  options.workers = 1;
  options.initial_service_ms = 100;  // expected wait at depth 0 is 100ms
  AdmissionController admission(options, &metrics);

  auto shed = admission.Offer(/*remaining_budget_ms=*/50);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, wire::ShedReason::kDeadline);
  EXPECT_EQ(metrics.counter("serve.shed_deadline"), 1u);
  EXPECT_EQ(admission.queue_depth(), 0u);  // a shed never joins the queue

  EXPECT_TRUE(admission.Offer(/*remaining_budget_ms=*/200).admitted);
  // With one request in flight the next needs budget for two services.
  EXPECT_FALSE(admission.Offer(/*remaining_budget_ms=*/150).admitted);
  EXPECT_TRUE(admission.Offer(/*remaining_budget_ms=*/250).admitted);
}

TEST(Admission, WorkersDivideTheExpectedWait) {
  AdmissionOptions options;
  options.workers = 4;
  options.initial_service_ms = 100;
  AdmissionController admission(options);
  // Depth 3 + this request over 4 workers: expected wait 100ms, so a
  // 150ms budget clears it even though four services are outstanding.
  ASSERT_TRUE(admission.Offer(kInf).admitted);
  ASSERT_TRUE(admission.Offer(kInf).admitted);
  ASSERT_TRUE(admission.Offer(kInf).admitted);
  EXPECT_TRUE(admission.Offer(/*remaining_budget_ms=*/150).admitted);
  // Depth 4 + this one = 5 services / 4 workers = 125ms expected.
  EXPECT_FALSE(admission.Offer(/*remaining_budget_ms=*/100).admitted);
}

TEST(Admission, EwmaFoldsObservedServiceTimes) {
  AdmissionOptions options;
  options.ewma_alpha = 0.5;
  options.initial_service_ms = 10;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Offer(kInf).admitted);
  admission.OnComplete(30);
  EXPECT_DOUBLE_EQ(admission.ewma_service_ms(), 20.0);
  ASSERT_TRUE(admission.Offer(kInf).admitted);
  admission.OnComplete(40);
  EXPECT_DOUBLE_EQ(admission.ewma_service_ms(), 30.0);
  // Negative samples (clock weirdness) clamp to zero instead of
  // dragging the estimate below zero.
  ASSERT_TRUE(admission.Offer(kInf).admitted);
  admission.OnComplete(-5);
  EXPECT_DOUBLE_EQ(admission.ewma_service_ms(), 15.0);
}

TEST(Admission, CancelQueuedFreesTheSlotAndCountsTheShed) {
  obs::MetricsRegistry metrics;
  AdmissionOptions options;
  options.max_queue = 1;
  AdmissionController admission(options, &metrics);
  ASSERT_TRUE(admission.Offer(kInf).admitted);
  double before = admission.ewma_service_ms();
  admission.CancelQueued();
  EXPECT_EQ(admission.queue_depth(), 0u);
  EXPECT_EQ(metrics.counter("serve.shed_deadline"), 1u);
  // No work happened, so no service-time sample was recorded.
  EXPECT_DOUBLE_EQ(admission.ewma_service_ms(), before);
  EXPECT_TRUE(admission.Offer(kInf).admitted);
}

// --- Executor-level deadline propagation ------------------------------

constexpr const char* kProgram = R"(
peer Hospital { relation Doctor(name, hospital); }
peer Clinic { relation Physician(name, clinic); }
stored hdoc(name, hospital) <= Hospital:Doctor(name, hospital).
mapping Clinic:Physician(n, c) :- Hospital:Doctor(n, c).
fact hdoc("alice", "county").
fact hdoc("bo", "mercy").
)";

constexpr const char* kQuery = "q(n, h) :- Hospital:Doctor(n, h).";

// Collects completion callbacks from worker threads.
struct OutcomeSink {
  std::mutex mu;
  std::vector<ServeOutcome> outcomes;
  void operator()(ServeOutcome out) {
    std::lock_guard<std::mutex> lock(mu);
    outcomes.push_back(std::move(out));
  }
};

ServeRequest MakeRequest(uint64_t id, const std::string& query,
                         double budget_ms) {
  ServeRequest request;
  request.conn_id = 1;
  request.request_id = id;
  request.query = query;
  request.budget_ms = budget_ms;
  return request;
}

// Runs `requests` through a fresh single-worker executor over the demo
// network and returns the counter snapshot plus the collected outcomes.
// `gap_ms` sleeps between submits so the worker reliably claims request
// N before request N+1 is queued behind it.
std::map<std::string, uint64_t> RunExecutor(
    const std::vector<ServeRequest>& requests, double service_floor_ms,
    std::vector<ServeOutcome>* outcomes, double gap_ms = 0) {
  Pdms pdms;
  Status loaded = pdms.LoadProgram(kProgram);
  PDMS_CHECK_MSG(loaded.ok(), loaded.ToString().c_str());
  obs::MetricsRegistry metrics;
  ExecutorOptions options;
  options.workers = 1;
  options.service_floor_ms = service_floor_ms;
  // Keep the admission estimate tiny so Offer admits everything here;
  // these tests exercise the dequeue-time check, not the offer-time one.
  options.admission.initial_service_ms = 0.001;
  options.admission.ewma_alpha = 0;  // pin the estimate for determinism
  RequestExecutor executor(options, &metrics);
  OutcomeSink sink;
  Status started = executor.Start(pdms.network(), pdms.database(),
                                  [&sink](ServeOutcome out) { sink(out); });
  PDMS_CHECK_MSG(started.ok(), started.ToString().c_str());
  bool first = true;
  for (const ServeRequest& request : requests) {
    if (!first && gap_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(gap_ms));
    }
    first = false;
    // The budget clock starts when the server reads the frame; model
    // that by starting it at submit, not at test-fixture construction.
    ServeRequest submit = request;
    submit.arrival.Reset();
    auto shed = executor.Submit(std::move(submit));
    PDMS_CHECK_MSG(!shed.has_value(), "request shed at offer time");
  }
  executor.Stop();
  std::lock_guard<std::mutex> lock(sink.mu);
  *outcomes = sink.outcomes;
  return metrics.counters();
}

TEST(Executor, AnswersQueriesThroughWorkerFacades) {
  std::vector<ServeOutcome> outcomes;
  auto counters = RunExecutor({MakeRequest(1, kQuery, /*budget_ms=*/0)},
                              /*service_floor_ms=*/0, &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].shed);
  EXPECT_EQ(outcomes[0].answer.request_id, 1u);
  EXPECT_EQ(outcomes[0].answer.status_code, 0u);
  EXPECT_EQ(outcomes[0].answer.tuples.size(), 2u);
  EXPECT_EQ(counters["serve.completed"], 1u);
  EXPECT_EQ(counters["serve.admitted"], 1u);
}

// The satellite scenario: request A (no budget) occupies the only worker
// for service_floor_ms; request B (10ms budget) is admitted behind it and
// its budget expires while it waits. B must be shed at dequeue time with
// kDeadline — and must leave no trace outside the serve.* namespace:
// every access/cache/reformulation counter must match a baseline run
// that never submitted B. Zero messages, zero facade touches.
TEST(Executor, QueuedExpiryShedsWithoutTouchingTheNetworkLayer) {
  std::vector<ServeOutcome> baseline_outcomes;
  auto baseline =
      RunExecutor({MakeRequest(1, kQuery, /*budget_ms=*/0)},
                  /*service_floor_ms=*/0, &baseline_outcomes);
  ASSERT_EQ(baseline_outcomes.size(), 1u);
  ASSERT_FALSE(baseline_outcomes[0].shed);
  // The baseline run did evaluate through the network layer, so the
  // comparison below is against non-trivial counters, not zeros.
  EXPECT_GT(baseline["access.probes"], 0u);

  // A occupies the worker for the 200ms floor; B arrives 50ms in with a
  // 40ms budget, so its deadline passes at ~90ms while the worker is
  // still busy. The 50ms gap lets the worker claim A before B is queued
  // (the pool pops its own deque LIFO); if scheduling noise still lets B
  // run first, retry — the property under test is the shed path itself.
  std::vector<ServeOutcome> outcomes;
  std::map<std::string, uint64_t> counters;
  const ServeOutcome* shed = nullptr;
  for (int attempt = 0; attempt < 3 && shed == nullptr; ++attempt) {
    outcomes.clear();
    counters =
        RunExecutor({MakeRequest(1, kQuery, /*budget_ms=*/0),
                     MakeRequest(2, kQuery, /*budget_ms=*/40)},
                    /*service_floor_ms=*/200, &outcomes, /*gap_ms=*/50);
    ASSERT_EQ(outcomes.size(), 2u);
    for (const ServeOutcome& out : outcomes) {
      if (out.shed) shed = &out;
    }
  }
  ASSERT_NE(shed, nullptr) << "request B was never shed";
  EXPECT_EQ(shed->shed_frame.request_id, 2u);
  EXPECT_EQ(shed->shed_frame.reason, wire::ShedReason::kDeadline);
  EXPECT_EQ(shed->shed_frame.message, "budget expired while queued");

  EXPECT_EQ(counters["serve.shed_deadline"], 1u);
  EXPECT_EQ(counters["serve.shed_after_queue"], 1u);
  EXPECT_EQ(counters["serve.completed"], 1u);  // only A was evaluated

  // The shed request touched nothing below the serving layer: every
  // non-serve counter is identical to the baseline that never saw B.
  for (const auto& [name, value] : counters) {
    if (name.rfind("serve.", 0) == 0) continue;
    auto it = baseline.find(name);
    ASSERT_NE(it, baseline.end()) << name << " appeared only with B";
    EXPECT_EQ(value, it->second) << name << " changed because of B";
  }
  for (const auto& [name, value] : baseline) {
    if (name.rfind("serve.", 0) == 0) continue;
    EXPECT_TRUE(counters.count(name)) << name << " missing with B";
  }
}

// Single-flight coalescing (opt-in): an identical untraced request that
// arrives while its twin is being evaluated rides the leader instead of
// taking an admission slot — one evaluation, two answers, each stamped
// with its own request id. The leader's key is claimed synchronously in
// Submit and held for the whole service floor, so the follower's
// coalesce is deterministic, not a race.
TEST(Executor, IdenticalRequestsCoalesceIntoOneEvaluation) {
  Pdms pdms;
  Status loaded = pdms.LoadProgram(kProgram);
  PDMS_CHECK_MSG(loaded.ok(), loaded.ToString().c_str());
  obs::MetricsRegistry metrics;
  ExecutorOptions options;
  options.workers = 1;
  options.service_floor_ms = 100;
  options.coalesce_identical = true;
  options.admission.initial_service_ms = 0.001;
  options.admission.ewma_alpha = 0;
  RequestExecutor executor(options, &metrics);
  OutcomeSink sink;
  Status started = executor.Start(pdms.network(), pdms.database(),
                                  [&sink](ServeOutcome out) { sink(out); });
  PDMS_CHECK_MSG(started.ok(), started.ToString().c_str());
  ServeRequest leader = MakeRequest(1, kQuery, /*budget_ms=*/0);
  leader.arrival.Reset();
  ASSERT_FALSE(executor.Submit(std::move(leader)).has_value());
  ServeRequest follower = MakeRequest(2, kQuery, /*budget_ms=*/0);
  follower.arrival.Reset();
  ASSERT_FALSE(executor.Submit(std::move(follower)).has_value());
  executor.Stop();

  std::lock_guard<std::mutex> lock(sink.mu);
  ASSERT_EQ(sink.outcomes.size(), 2u);
  const ServeOutcome* by_id[3] = {nullptr, nullptr, nullptr};
  for (const ServeOutcome& out : sink.outcomes) {
    ASSERT_FALSE(out.shed);
    ASSERT_LE(out.answer.request_id, 2u);
    by_id[out.answer.request_id] = &out;
  }
  ASSERT_NE(by_id[1], nullptr);
  ASSERT_NE(by_id[2], nullptr);
  EXPECT_EQ(by_id[1]->answer.tuples, by_id[2]->answer.tuples);
  EXPECT_EQ(by_id[1]->answer.tuples.size(), 2u);
  const auto counters = metrics.counters();
  EXPECT_EQ(counters.at("serve.coalesced"), 1u);
  EXPECT_EQ(counters.at("serve.completed"), 1u);  // one evaluation total
  EXPECT_EQ(counters.at("serve.admitted"), 1u);   // follower took no slot
}

TEST(Executor, SurvivingBudgetBecomesReformulationDeadline) {
  // A generous budget admits, survives queueing, and the answer comes
  // back complete and untruncated — the deadline plumbed through the
  // facade did not bite on this tiny network.
  std::vector<ServeOutcome> outcomes;
  auto counters =
      RunExecutor({MakeRequest(1, kQuery, /*budget_ms=*/60000)},
                  /*service_floor_ms=*/0, &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_FALSE(outcomes[0].shed);
  EXPECT_EQ(outcomes[0].answer.truncated, 0u);
  EXPECT_EQ(outcomes[0].answer.tuples.size(), 2u);
  EXPECT_EQ(counters["serve.truncated_answers"], 0u);
}

TEST(Executor, SubmitAfterStopShedsInsteadOfCrashing) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kProgram).ok());
  RequestExecutor executor(ExecutorOptions{}, nullptr);
  ASSERT_TRUE(executor
                  .Start(pdms.network(), pdms.database(),
                         [](ServeOutcome) {})
                  .ok());
  executor.Stop();
  auto shed = executor.Submit(MakeRequest(1, kQuery, 0));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->message, "server shutting down");
}

}  // namespace
}  // namespace serve
}  // namespace pdms
