// Dependency-tracked invalidation: scopes carrying a network make the
// caches digest the catalog's change log and drop exactly the entries
// whose recorded footprint a change touches — unrelated entries keep
// hitting across churn. These tests pin the selective behavior down with
// real networks; the wholesale fallback (network-less scopes) is covered
// by plan_cache_test.cc, and whole-schedule equivalence by the churn DST.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pdms/cache/dependency_index.h"
#include "pdms/cache/goal_memo.h"
#include "pdms/cache/plan_cache.h"
#include "pdms/core/pdms.h"
#include "pdms/lang/parser.h"

namespace pdms {
namespace cache {
namespace {

// --- DependencyIndex ---

DepSet Deps(std::vector<std::string> preds, std::vector<size_t> ids = {}) {
  DepSet deps;
  for (std::string& p : preds) deps.predicates.insert(std::move(p));
  for (size_t id : ids) deps.descriptions.insert(id);
  return deps;
}

TEST(DependencyIndex, MatchesByPredicateIntersection) {
  DependencyIndex index;
  index.Add("k1", Deps({"A:R", "sa"}));
  index.Add("k2", Deps({"B:S", "sb"}));
  index.Add("k3", Deps({"A:R", "B:S"}));
  EXPECT_EQ(index.Match({"A:R"}, SIZE_MAX),
            (std::vector<std::string>{"k1", "k3"}));
  EXPECT_EQ(index.Match({"sb"}, SIZE_MAX),
            (std::vector<std::string>{"k2"}));
  EXPECT_TRUE(index.Match({"unrelated"}, SIZE_MAX).empty());
}

TEST(DependencyIndex, IdThresholdCatchesRenumberedDescriptions) {
  DependencyIndex index;
  index.Add("low", Deps({"A:R"}, {0, 1}));
  index.Add("high", Deps({"B:S"}, {5}));
  // A removal at id 3 renumbers ids >= 3: only "high" is stale.
  EXPECT_EQ(index.Match({}, 3), (std::vector<std::string>{"high"}));
  // SIZE_MAX disables the id criterion entirely.
  EXPECT_TRUE(index.Match({}, SIZE_MAX).empty());
  // Threshold 0 catches every entry that recorded any id.
  EXPECT_EQ(index.Match({}, 0), (std::vector<std::string>{"high", "low"}));
}

TEST(DependencyIndex, RemoveAndReAddReplaceTheFootprint) {
  DependencyIndex index;
  index.Add("k", Deps({"A:R"}));
  index.Add("k", Deps({"B:S"}));  // re-registration replaces, not merges
  EXPECT_TRUE(index.Match({"A:R"}, SIZE_MAX).empty());
  EXPECT_EQ(index.Match({"B:S"}, SIZE_MAX),
            (std::vector<std::string>{"k"}));
  index.Remove("k");
  EXPECT_TRUE(index.Match({"B:S"}, SIZE_MAX).empty());
  EXPECT_EQ(index.size(), 0u);
}

// --- Selective invalidation through the facade ---

// Two independent chains (C:T over B:S over A:R, and F:W over E:V over
// D:U) sharing nothing: churn on one side must never drop plans or memo
// entries warmed on the other.
constexpr const char* kTwoIslands = R"(
  peer A { relation R(x, y); }
  peer B { relation S(x, y); }
  peer C { relation T(x, y); }
  peer D { relation U(x, y); }
  peer E { relation V(x, y); }
  peer F { relation W(x, y); }
  stored sa(x, y) <= A:R(x, y).
  stored sd(x, y) <= D:U(x, y).
  mapping B:S(x, y) :- A:R(x, y).
  mapping C:T(x, y) :- B:S(x, y).
  mapping E:V(x, y) :- D:U(x, y).
  mapping F:W(x, y) :- E:V(x, y).
  fact sa(1, 2).
  fact sd(3, 4).
)";

TEST(SelectiveInvalidation, MappingEditDropsOnlyTouchedPlans) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kTwoIslands).ok());
  PlanCache plans;
  pdms.set_plan_cache(&plans);

  ASSERT_TRUE(pdms.Answer("q(x, y) :- C:T(x, y).").ok());
  ASSERT_TRUE(pdms.Answer("p(x, y) :- F:W(x, y).").ok());
  EXPECT_EQ(plans.size(), 2u);

  // Edit the C-island mapping: the C plan dies, the F plan survives and
  // the next F query is a pure hit.
  auto mappings = pdms.network().peer_mappings();
  std::string name;
  for (const auto& m : mappings) {
    if (m.rule.head().predicate() == "B:S") name = m.name;
  }
  ASSERT_FALSE(name.empty());
  auto edited = ParseRuleText("q(x, y) :- A:R(y, x).");
  ASSERT_TRUE(edited.ok());
  PeerMapping next;
  next.kind = PeerMappingKind::kDefinitional;
  next.rule = Rule(Atom("B:S", {Term::Var("x"), Term::Var("y")}),
                   edited->body());
  ASSERT_TRUE(
      pdms.mutable_network()->ReplacePeerMapping(name, next).ok());

  size_t hits_before = plans.stats().hits;
  ASSERT_TRUE(pdms.Answer("p(x, y) :- F:W(x, y).").ok());
  EXPECT_EQ(plans.stats().hits, hits_before + 1)
      << "the untouched island must keep hitting";
  EXPECT_EQ(plans.stats().invalidations, 1u)
      << "exactly the edited island's plan is dropped";
  // And the edited island reformulates fresh, seeing the new mapping.
  auto after = pdms.Answer("q(x, y) :- C:T(x, y).");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->Contains({Value::Int(2), Value::Int(1)}));
}

TEST(SelectiveInvalidation, AvailabilityFlipDropsOnlyDependentPlans) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kTwoIslands).ok());
  PlanCache plans;
  pdms.set_plan_cache(&plans);

  ASSERT_TRUE(pdms.Answer("q(x, y) :- C:T(x, y).").ok());
  ASSERT_TRUE(pdms.Answer("p(x, y) :- F:W(x, y).").ok());

  // sd down: the F plan depended on it (via reachability); the C plan is
  // untouched and must hit.
  ASSERT_TRUE(
      pdms.mutable_network()->SetStoredRelationAvailable("sd", false).ok());
  size_t hits_before = plans.stats().hits;
  ASSERT_TRUE(pdms.Answer("q(x, y) :- C:T(x, y).").ok());
  EXPECT_EQ(plans.stats().hits, hits_before + 1);
  EXPECT_GE(plans.stats().invalidations, 1u);

  // Flip it back: again only the F side is affected.
  ASSERT_TRUE(
      pdms.mutable_network()->SetStoredRelationAvailable("sd", true).ok());
  hits_before = plans.stats().hits;
  ASSERT_TRUE(pdms.Answer("q(x, y) :- C:T(x, y).").ok());
  EXPECT_EQ(plans.stats().hits, hits_before + 1);
}

TEST(SelectiveInvalidation, FactInsertsNeverInvalidate) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kTwoIslands).ok());
  PlanCache plans;
  GoalMemo memo;
  pdms.set_plan_cache(&plans);
  pdms.set_goal_memo(&memo);

  ASSERT_TRUE(pdms.Answer("q(x, y) :- C:T(x, y).").ok());
  ASSERT_TRUE(pdms.Insert("sa", {Value::Int(7), Value::Int(8)}).ok());
  size_t hits_before = plans.stats().hits;
  auto after = pdms.Answer("q(x, y) :- C:T(x, y).");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(plans.stats().hits, hits_before + 1)
      << "rewritings are data-independent; inserts must not invalidate";
  EXPECT_EQ(plans.stats().invalidations, 0u);
  EXPECT_EQ(memo.stats().invalidations, 0u);
  // The new fact flows through the cached plan.
  EXPECT_TRUE(after->Contains({Value::Int(7), Value::Int(8)}));
}

TEST(SelectiveInvalidation, MappingRemovalShiftsIdsAndDropsMemoEntries) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kTwoIslands).ok());
  GoalMemo memo;
  pdms.set_goal_memo(&memo);

  ASSERT_TRUE(pdms.Answer("q(x, y) :- C:T(x, y).").ok());
  ASSERT_TRUE(pdms.Answer("p(x, y) :- F:W(x, y).").ok());
  size_t warmed = memo.size();
  EXPECT_GT(warmed, 0u);

  // Removing the first mapping renumbers every later description id. Memo
  // entries record consulted ids in their footprints, so all warmed
  // entries with ids at or above the removal slot must go — correctness
  // over selectivity here, because memoized guard paths embed the ids.
  std::string victim = pdms.network().peer_mappings().front().name;
  ASSERT_TRUE(pdms.mutable_network()->RemovePeerMapping(victim).ok());
  auto after = pdms.Answer("p(x, y) :- F:W(x, y).");
  ASSERT_TRUE(after.ok());
  EXPECT_GT(memo.stats().invalidations, 0u);
  EXPECT_TRUE(after->Contains({Value::Int(3), Value::Int(4)}));
}

TEST(SelectiveInvalidation, WholesaleModeClearsOnAnyMovement) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kTwoIslands).ok());
  PlanCache plans;
  plans.set_wholesale_invalidation(true);
  pdms.set_plan_cache(&plans);

  ASSERT_TRUE(pdms.Answer("q(x, y) :- C:T(x, y).").ok());
  ASSERT_TRUE(pdms.Answer("p(x, y) :- F:W(x, y).").ok());
  EXPECT_EQ(plans.size(), 2u);
  // An edit on the C island clears both islands in wholesale mode — the
  // negative control the churn DST's hit-rate assertion leans on.
  std::string victim = pdms.network().peer_mappings().front().name;
  ASSERT_TRUE(pdms.mutable_network()->RemovePeerMapping(victim).ok());
  ASSERT_TRUE(pdms.Answer("p(x, y) :- F:W(x, y).").ok());
  EXPECT_EQ(plans.stats().invalidations, 2u);
}

// A scope whose options fingerprint moved (e.g. the allow-list changed)
// is a different world: the tracked path must fall back to a full reset.
TEST(SelectiveInvalidation, FingerprintChangeForcesFullReset) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kTwoIslands).ok());
  PlanCache plans;
  pdms.set_plan_cache(&plans);

  ASSERT_TRUE(pdms.Answer("q(x, y) :- C:T(x, y).").ok());
  EXPECT_EQ(plans.size(), 1u);
  ReformulationOptions restricted = pdms.options();
  restricted.allowed_stored.insert("sa");
  pdms.set_options(restricted);
  ASSERT_TRUE(pdms.Answer("q(x, y) :- C:T(x, y).").ok());
  EXPECT_GE(plans.stats().invalidations, 1u);
}

}  // namespace
}  // namespace cache
}  // namespace pdms
