// Cross-query goal memo tests: rehydrated subtrees must be semantically
// identical to freshly-expanded ones (isomorphic rewritings, byte-equal
// answers), hits must actually happen on repeated structure at a fixed
// scope, and any scope ingredient changing — revision, availability epoch,
// options fingerprint — must drop the memo.

#include "pdms/cache/goal_memo.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "pdms/cache/plan_cache.h"
#include "pdms/core/pdms.h"
#include "pdms/lang/canonical.h"

namespace pdms {
namespace cache {
namespace {

// Three strata (C -> B -> A -> storage) with a definitional chain, an
// inclusion view, and a comparison so the memo must carry constraint
// labels, unifiers, and grants through the round trip.
constexpr const char* kProgram = R"(
  peer A { relation R(x, y); }
  peer B { relation S(x, y); }
  peer C { relation T(x, y); }
  stored sa(x, y) <= A:R(x, y).
  stored sv(x, y) <= B:S(x, y).
  mapping B:S(x, y) :- A:R(x, y).
  mapping C:T(x, y) :- B:S(x, y), x < 10.
  fact sa(1, 2).
  fact sa(2, 3).
  fact sa(11, 12).
  fact sv(7, 8).
)";

Pdms MakePdms() {
  Pdms pdms;
  Status s = pdms.LoadProgram(kProgram);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return pdms;
}

// Variable names may differ between a fresh expansion and a rehydrated
// one; canonical keys are the rename-invariant fingerprint.
std::vector<std::string> CanonicalDisjuncts(const UnionQuery& uq) {
  std::vector<std::string> keys;
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    keys.push_back(CanonicalQueryKey(cq));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(GoalMemo, RepeatedQueryHitsAndRewritingsStayIsomorphic) {
  Pdms plain = MakePdms();
  Pdms memoized = MakePdms();
  GoalMemo memo;
  memoized.set_goal_memo(&memo);

  const std::string query = "q(x, y) :- C:T(x, y).";
  auto expected = plain.Reformulate(query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  auto cold = memoized.Reformulate(query);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(CanonicalDisjuncts(cold->rewriting),
            CanonicalDisjuncts(expected->rewriting));

  auto warm = memoized.Reformulate(query);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm->stats.goal_memo_hits, 0u);
  EXPECT_GT(warm->stats.goal_memo_nodes, 0u);
  EXPECT_EQ(CanonicalDisjuncts(warm->rewriting),
            CanonicalDisjuncts(expected->rewriting));

  // End to end: byte-identical answers.
  auto baseline = plain.Answer(query);
  auto answers = memoized.Answer(query);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->ToString(), baseline->ToString());
  EXPECT_GT(memo.stats().hits, 0u);
}

TEST(GoalMemo, SharedStructureAcrossDifferentQueriesHits) {
  Pdms pdms = MakePdms();
  GoalMemo memo;
  pdms.set_goal_memo(&memo);

  // Both queries expand a goal over B:S; the second should reuse the
  // B:S subtree memoized by the first even though the queries differ.
  ASSERT_TRUE(pdms.Reformulate("q(x, y) :- B:S(x, y).").ok());
  auto second = pdms.Reformulate("p(a, b) :- B:S(a, b).");
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->stats.goal_memo_hits, 0u);

  Pdms plain = MakePdms();
  auto expected = plain.Reformulate("p(a, b) :- B:S(a, b).");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(CanonicalDisjuncts(second->rewriting),
            CanonicalDisjuncts(expected->rewriting));
}

TEST(GoalMemo, MappingEditInvalidatesAndAnswersTrackTheNewNetwork) {
  Pdms pdms = MakePdms();
  GoalMemo memo;
  pdms.set_goal_memo(&memo);

  const std::string query = "q(x, y) :- C:T(x, y).";
  ASSERT_TRUE(pdms.Answer(query).ok());
  ASSERT_TRUE(pdms.Answer(query).ok());
  EXPECT_GT(memo.size(), 0u);

  // A mapping edit bumps the revision: the warmed memo must be dropped
  // and the next answer must see the new mapping.
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer D { relation U(x, y); }
    stored sd(x, y) <= D:U(x, y).
    mapping C:T(x, y) :- D:U(x, y).
    fact sd(4, 5).
  )").ok());
  auto after = pdms.Answer(query);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(memo.stats().invalidations, 0u);
  EXPECT_TRUE(after->Contains({Value::Int(4), Value::Int(5)}));

  Pdms fresh;
  ASSERT_TRUE(fresh.LoadProgram(kProgram).ok());
  ASSERT_TRUE(fresh.LoadProgram(R"(
    peer D { relation U(x, y); }
    stored sd(x, y) <= D:U(x, y).
    mapping C:T(x, y) :- D:U(x, y).
    fact sd(4, 5).
  )").ok());
  auto expected = fresh.Answer(query);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(after->ToString(), expected->ToString());
}

TEST(GoalMemo, AvailabilityFlipInvalidates) {
  Pdms pdms = MakePdms();
  GoalMemo memo;
  pdms.set_goal_memo(&memo);

  const std::string query = "q(x, y) :- C:T(x, y).";
  ASSERT_TRUE(pdms.Answer(query).ok());
  size_t warmed = memo.size();
  EXPECT_GT(warmed, 0u);

  ASSERT_TRUE(
      pdms.mutable_network()->SetStoredRelationAvailable("sa", false).ok());
  auto degraded = pdms.Answer(query);
  ASSERT_TRUE(degraded.ok());
  EXPECT_GE(memo.stats().invalidations, warmed);

  Pdms fresh = MakePdms();
  ASSERT_TRUE(
      fresh.mutable_network()->SetStoredRelationAvailable("sa", false).ok());
  auto expected = fresh.Answer(query);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(degraded->ToString(), expected->ToString());
}

// Network-less scope (wholesale fallback): any ingredient moving clears.
CacheScope Scope(uint64_t revision, uint64_t epoch,
                 const std::string& fingerprint) {
  CacheScope scope;
  scope.revision = revision;
  scope.epoch = epoch;
  scope.options_fingerprint = fingerprint;
  return scope;
}

TEST(GoalMemo, OptionsFingerprintIsPartOfTheScope) {
  GoalMemo memo;
  EXPECT_EQ(memo.EnterScope(Scope(1, 0, "u1d1o1")), 0u);
  memo.Store("k", GoalSubtree{});
  EXPECT_EQ(memo.EnterScope(Scope(1, 0, "u1d1o1")), 0u);  // unchanged: kept
  ASSERT_NE(memo.Find("k"), nullptr);
  EXPECT_EQ(memo.EnterScope(Scope(1, 0, "u0d1o1")), 1u);  // prune flag flipped
  EXPECT_EQ(memo.Find("k"), nullptr);
  EXPECT_EQ(memo.stats().invalidations, 1u);
}

TEST(GoalMemo, FingerprintSeparatesSourceRestrictions) {
  ReformulationOptions a;
  ReformulationOptions b;
  b.unavailable_stored.insert("sa");
  ReformulationOptions c;
  c.allowed_stored.insert("sv");
  // Availability is deliberately NOT part of the fingerprint: flips are
  // catalog change events handled by dependency-tracked invalidation, so
  // entries untouched by a flip keep hitting (docs/churn_invalidation.md).
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(b));
  // The allow-list *is* structural: it shapes which expansions exist.
  EXPECT_NE(OptionsFingerprint(a), OptionsFingerprint(c));
  EXPECT_NE(OptionsFingerprint(b), OptionsFingerprint(c));
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(ReformulationOptions{}));
  // The tree-node budget is deliberately *not* part of the fingerprint:
  // only untruncated subtrees are memoized, and those are budget-invariant.
  ReformulationOptions d;
  d.max_tree_nodes = 7;
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(d));
}

}  // namespace
}  // namespace cache
}  // namespace pdms
