// Tests for the MiniCon substrate: MCD formation (the coverage condition)
// and the standalone answering-queries-using-views algorithm, including the
// paper's Section 4.1 V1/V2/V3 example.

#include <gtest/gtest.h>

#include "pdms/data/database.h"
#include "pdms/eval/evaluator.h"
#include "pdms/lang/homomorphism.h"
#include "pdms/lang/parser.h"
#include "pdms/minicon/mcd.h"
#include "pdms/minicon/rewrite.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseRuleText(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(Mcd, SingleSubgoalCoverage) {
  // View v(a, b) :- e1(a, b): covers e1(x, y) alone.
  auto query = Q("q(x, y) :- e1(x, y), e2(y, z).");
  auto view = Q("v(a, b) :- e1(a, b).");
  VariableFactory fresh("_f");
  std::vector<Mcd> mcds =
      MakeMcds(query.head(), query.body(), 0, view, &fresh);
  ASSERT_EQ(mcds.size(), 1u);
  EXPECT_EQ(mcds[0].covered, (std::vector<size_t>{0}));
  EXPECT_EQ(mcds[0].view_atom.predicate(), "v");
}

TEST(Mcd, ExistentialJoinForcesCoveringBothSubgoals) {
  // v(a, c) :- e1(a, b), e2(b, c): b is existential in the view, so using
  // it for e1(x, z) forces covering e2(z, y) too.
  auto query = Q("q(x, y) :- e1(x, z), e2(z, y).");
  auto view = Q("v(a, c) :- e1(a, b), e2(b, c).");
  VariableFactory fresh("_f");
  std::vector<Mcd> mcds =
      MakeMcds(query.head(), query.body(), 0, view, &fresh);
  ASSERT_EQ(mcds.size(), 1u);
  EXPECT_EQ(mcds[0].covered, (std::vector<size_t>{0, 1}));
}

TEST(Mcd, DistinguishedVariableCannotFoldIntoExistential) {
  // The paper's V3: v(u) :- e1(u, z) projects z away; the query needs z.
  auto query = Q("q(x, y) :- e1(x, z), e2(z, y).");
  auto view = Q("v(u) :- e1(u, w).");
  VariableFactory fresh("_f");
  std::vector<Mcd> mcds =
      MakeMcds(query.head(), query.body(), 0, view, &fresh);
  // z occurs in e2 (uncovered by the view, which has no e2 atom) — the
  // closure cannot complete, so no MCD is produced.
  EXPECT_TRUE(mcds.empty());
}

TEST(Mcd, HeadVariableFoldingRejected) {
  // Query head variable mapped to a view existential must be rejected.
  auto query = Q("q(x, z) :- e1(x, z).");
  auto view = Q("v(u) :- e1(u, w).");
  VariableFactory fresh("_f");
  std::vector<Mcd> mcds =
      MakeMcds(query.head(), query.body(), 0, view, &fresh);
  EXPECT_TRUE(mcds.empty());
}

TEST(Mcd, ViewConstraintsCarried) {
  auto query = Q("q(x) :- e1(x, z).");
  auto view = Q("v(a) :- e1(a, b), b < 5.");
  VariableFactory fresh("_f");
  std::vector<Mcd> mcds =
      MakeMcds(query.head(), query.body(), 0, view, &fresh);
  ASSERT_EQ(mcds.size(), 1u);
  EXPECT_EQ(mcds[0].view_constraints.comparisons().size(), 1u);
}

TEST(Mcd, ContradictoryContextRejected) {
  auto query = Q("q(x) :- e1(x, z).");
  auto view = Q("v(a, b) :- e1(a, b), b < 5.");
  VariableFactory fresh("_f");
  ConstraintSet context;
  context.Add(Comparison{Term::Var("z"), CmpOp::kGt, Term::Int(10)});
  std::vector<Mcd> mcds =
      MakeMcds(query.head(), query.body(), 0, view, &fresh, &context);
  EXPECT_TRUE(mcds.empty());
}

TEST(MiniCon, PaperSection41Example) {
  // Q(x,y) :- e1(x,z), e2(z,y), e3(x,y)
  // V1(a,b) :- e1(a,c), e2(c,b)   — covers e1+e2
  // V2(d,e) :- e3(d, e), e4(e)    — covers e3 (adapted: the paper's V2
  //                                  body binds d,e to its head)
  // V3(u)   :- e1(u,z)            — useless (z projected)
  auto query = Q("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y).");
  std::vector<ConjunctiveQuery> views = {
      Q("V1(a, b) :- e1(a, c), e2(c, b)."),
      Q("V2(d, e) :- e3(d, e), e4(e)."),
      Q("V3(u) :- e1(u, w)."),
  };
  auto result = MiniConRewrite(query, views);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u) << result->ToString();
  ConjunctiveQuery expected = Q("Q(x, y) :- V1(x, y), V2(x, y).");
  EXPECT_TRUE(EquivalentCQ(result->disjuncts()[0], expected))
      << result->ToString();
}

TEST(MiniCon, MultipleRewritings) {
  auto query = Q("q(x) :- p(x).");
  std::vector<ConjunctiveQuery> views = {
      Q("v1(a) :- p(a)."),
      Q("v2(a) :- p(a), s(a)."),
  };
  auto result = MiniConRewrite(query, views);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(MiniCon, RemoveRedundantKeepsMaximal) {
  auto query = Q("q(x) :- p(x).");
  std::vector<ConjunctiveQuery> views = {
      Q("v1(a) :- p(a)."),
      Q("v2(a) :- p(a), s(a)."),
  };
  MiniConOptions opts;
  opts.remove_redundant = true;
  auto result = MiniConRewrite(query, views, opts);
  ASSERT_TRUE(result.ok());
  // v2 ⊆ v1-rewriting... as *view definitions* v2's answers are a subset,
  // but as rewritings over the view heads neither contains the other
  // syntactically, so both survive.
  EXPECT_EQ(result->size(), 2u);
}

TEST(MiniCon, NoRewritingWhenViewsUseless) {
  auto query = Q("q(x, y) :- e1(x, z), e2(z, y).");
  std::vector<ConjunctiveQuery> views = {Q("v(u) :- e1(u, w).")};
  auto result = MiniConRewrite(query, views);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(MiniCon, RepeatedQueryVariables) {
  auto query = Q("q(x) :- e(x, x).");
  std::vector<ConjunctiveQuery> views = {
      Q("v1(a, b) :- e(a, b)."),
      Q("v2(a) :- e(a, a)."),
  };
  auto result = MiniConRewrite(query, views);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u) << result->ToString();
  // One rewriting uses v1(x, x), the other v2(x).
  bool has_v1 = false;
  bool has_v2 = false;
  for (const auto& cq : result->disjuncts()) {
    if (cq.body()[0].predicate() == "v1") {
      has_v1 = true;
      EXPECT_EQ(cq.body()[0].args()[0], cq.body()[0].args()[1]);
    }
    if (cq.body()[0].predicate() == "v2") has_v2 = true;
  }
  EXPECT_TRUE(has_v1 && has_v2);
}

TEST(MiniCon, ConstantInView) {
  auto query = Q("q(x, y) :- e(x, y).");
  std::vector<ConjunctiveQuery> views = {Q("v(a) :- e(a, 3).")};
  auto result = MiniConRewrite(query, views);
  ASSERT_TRUE(result.ok());
  // y must become the constant 3.
  ASSERT_EQ(result->size(), 1u);
  const ConjunctiveQuery& rw = result->disjuncts()[0];
  EXPECT_EQ(rw.head().args()[1], Term::Int(3));
}

TEST(MiniCon, QueryComparisonKeptWhenExpressible) {
  auto query = Q("q(x, y) :- e(x, y), x < y.");
  std::vector<ConjunctiveQuery> views = {Q("v(a, b) :- e(a, b).")};
  auto result = MiniConRewrite(query, views);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->disjuncts()[0].comparisons().size(), 1u);
}

TEST(MiniCon, QueryComparisonOnFoldedVariableNeedsImplication) {
  // z folds into the view; the comparison on z can't be kept. It is only
  // sound if the view itself guarantees it.
  auto query = Q("q(x, y) :- e1(x, z), e2(z, y), z < 5.");
  std::vector<ConjunctiveQuery> weak = {
      Q("v(a, c) :- e1(a, b), e2(b, c).")};
  auto r1 = MiniConRewrite(query, weak);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->empty()) << r1->ToString();
  std::vector<ConjunctiveQuery> strong = {
      Q("v(a, c) :- e1(a, b), e2(b, c), b < 3.")};
  auto r2 = MiniConRewrite(query, strong);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 1u) << r2->ToString();
}

TEST(MiniCon, MaxRewritingsCap) {
  auto query = Q("q(x) :- p(x).");
  std::vector<ConjunctiveQuery> views;
  for (int i = 0; i < 10; ++i) {
    views.push_back(Q("v" + std::to_string(i) + "(a) :- p(a)."));
  }
  MiniConOptions opts;
  opts.max_rewritings = 3;
  auto result = MiniConRewrite(query, views, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
}

// Property: every MiniCon rewriting is *sound* — expanding the view atoms
// by their definitions yields a query contained in the original.
class MiniConSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MiniConSoundnessTest, ExpansionContainedInQuery) {
  Rng rng(GetParam());
  const char* preds[] = {"e1", "e2"};
  auto random_cq = [&](const std::string& head_pred, int max_atoms,
                       int nvars) {
    std::vector<Atom> body;
    int atoms = 1 + rng.Uniform(max_atoms);
    for (int i = 0; i < atoms; ++i) {
      Term a = Term::Var(std::string(1, 'a' + rng.Uniform(nvars)));
      Term b = Term::Var(std::string(1, 'a' + rng.Uniform(nvars)));
      body.emplace_back(preds[rng.Uniform(2)], std::vector<Term>{a, b});
    }
    std::vector<std::string> vars;
    for (const Atom& a : body) CollectVariables(a, &vars);
    std::vector<Term> head_args;
    for (const std::string& v : vars) {
      if (rng.Chance(0.6)) head_args.push_back(Term::Var(v));
    }
    if (head_args.empty()) head_args.push_back(Term::Var(vars[0]));
    return ConjunctiveQuery(Atom(head_pred, head_args), body);
  };
  for (int round = 0; round < 25; ++round) {
    ConjunctiveQuery query = random_cq("q", 3, 3);
    std::vector<ConjunctiveQuery> views;
    int nviews = 1 + rng.Uniform(3);
    for (int v = 0; v < nviews; ++v) {
      views.push_back(random_cq("view" + std::to_string(v), 2, 3));
    }
    auto result = MiniConRewrite(query, views);
    ASSERT_TRUE(result.ok());
    for (const ConjunctiveQuery& rw : result->disjuncts()) {
      // Expand view atoms by their definitions (fresh-renamed, unified
      // with the rewriting's atom arguments).
      VariableFactory fresh("_x");
      std::vector<Atom> expanded;
      bool ok = true;
      Substitution subst;
      for (const Atom& a : rw.body()) {
        int vidx = std::stoi(a.predicate().substr(4));
        ConjunctiveQuery def = RenameApart(views[vidx], &fresh);
        if (!subst.UnifyAtoms(a, def.head())) {
          ok = false;
          break;
        }
        for (const Atom& b : def.body()) expanded.push_back(b);
      }
      ASSERT_TRUE(ok);
      std::vector<Atom> mapped;
      for (const Atom& a : expanded) mapped.push_back(subst.Apply(a));
      ConjunctiveQuery expansion(subst.Apply(rw.head()), mapped);
      EXPECT_TRUE(ContainsCQ(query, expansion))
          << "query: " << query.ToString()
          << "\nrewriting: " << rw.ToString()
          << "\nexpansion: " << expansion.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniConSoundnessTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace pdms
