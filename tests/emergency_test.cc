// Scenario tests over the Figure 1 emergency-services PDMS: transitive
// mediation across two levels, GAV + LAV interplay, and the ad-hoc
// earthquake extension with cyclic replication.

#include <gtest/gtest.h>

#include "pdms/core/pdms.h"
#include "pdms/gen/emergency.h"

namespace pdms {
namespace {

Pdms LoadScenario(bool with_earthquake) {
  Pdms pdms;
  Status s = pdms.LoadProgram(gen::EmergencyBasePpl());
  EXPECT_TRUE(s.ok()) << s.ToString();
  if (with_earthquake) {
    s = pdms.LoadProgram(gen::EmergencyEarthquakePpl());
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  Database* db = pdms.mutable_database();
  (void)db;
  return pdms;
}

TEST(Emergency, ScenarioParses) {
  auto program = gen::BuildEmergencyScenario(true);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->network.peers().size(), 8u);
  EXPECT_GT(program->data.TotalTuples(), 10u);
}

TEST(Emergency, Figure2QueryFindsCrewmatesWithSharedSkill) {
  Pdms pdms = LoadScenario(false);
  auto answers = pdms.Answer(
      "Q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), "
      "FS:Skill(f2, s).");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_TRUE(answers->Contains({Value::Int(101), Value::Int(102)}))
      << answers->ToString();
}

TEST(Emergency, DispatchCenterSeesDoctorsThroughHospitalMediator) {
  // NDC:SkilledPerson unions H doctors (from FH storage) and medical
  // firefighters — two mediation hops from the stored relations.
  Pdms pdms = LoadScenario(false);
  auto answers =
      pdms.Answer("q(p) :- NDC:SkilledPerson(p, \"Doctor\").");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_TRUE(answers->Contains({Value::Int(501)})) << answers->ToString();
}

TEST(Emergency, LavMappingExposesLakeviewBeds) {
  // H:Patient facts come from LH's bed tables through the LAV mappings.
  Pdms pdms = LoadScenario(false);
  auto answers = pdms.Answer("q(pid, bed) :- H:Patient(pid, bed, st).");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_TRUE(answers->Contains({Value::Int(9101), Value::Int(31)}))
      << answers->ToString();
  // FH's patients arrive through the definitional mapping.
  EXPECT_TRUE(answers->Contains({Value::Int(9001), Value::Int(12)}))
      << answers->ToString();
}

TEST(Emergency, EarthquakePeerSeesExistingData) {
  // Example 1.1: once the ECC joins, queries over it reach all original
  // sources transitively.
  Pdms pdms = LoadScenario(true);
  auto answers = pdms.Answer("q(p, s) :- ECC:SkilledPerson(p, s).");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // A doctor known to FH, visible through FH -> H -> NDC -> ECC.
  EXPECT_TRUE(answers->Contains({Value::Int(501), Value::String("Doctor")}))
      << answers->ToString();
  // And the National Guard registrations stored at the ECC itself.
  EXPECT_TRUE(answers->Contains(
      {Value::Int(7001), Value::String("search-and-rescue")}))
      << answers->ToString();
}

TEST(Emergency, ReplicatedVehicleTableAnswersFromBothSides) {
  Pdms pdms = LoadScenario(true);
  // The replica equality is cyclic; reformulation must terminate and find
  // vehicles contributed via NDC's mediated views.
  auto answers = pdms.Answer("q(v, t) :- ECC:Vehicle(v, t, c, g, d).");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_TRUE(
      answers->Contains({Value::Int(71), Value::String("fire-response")}))
      << answers->ToString();
}

TEST(Emergency, ClassificationIsTractable) {
  Pdms pdms = LoadScenario(true);
  Classification c = pdms.Classify();
  EXPECT_TRUE(c.inclusions_acyclic);
  EXPECT_TRUE(c.has_peer_equalities);          // the replication mapping
  EXPECT_TRUE(c.peer_equalities_projection_free);
  EXPECT_TRUE(c.has_equality_storage);         // s2
  EXPECT_TRUE(c.storage_equalities_projection_free);
}

TEST(Emergency, OracleAgreesOnDoctorQuery) {
  Pdms pdms = LoadScenario(false);
  auto q = pdms.ParseQuery("q(p) :- NDC:SkilledPerson(p, \"Doctor\").");
  ASSERT_TRUE(q.ok());
  auto via_reform = pdms.Answer(*q);
  auto via_oracle = pdms.CertainAnswersOracle(*q);
  ASSERT_TRUE(via_reform.ok());
  ASSERT_TRUE(via_oracle.ok()) << via_oracle.status().ToString();
  EXPECT_EQ(via_reform->size(), via_oracle->size())
      << via_reform->ToString() << via_oracle->ToString();
}

}  // namespace
}  // namespace pdms
