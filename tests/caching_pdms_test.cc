// CachingPdms integration tests: the pre-wired facade serves repeat
// queries from the plan cache, emits the `cache.*` metrics and
// `cache_lookup` spans, invalidates on catalog mutations and availability
// flips, and keeps evaluating cached plans through the degraded path. The
// same hooks thread through SimPdms, where caches shared across facade
// instances survive because they are keyed by the catalog's scope. Also
// covers the disjunct-dedup satellite: isomorphic rewritings are dropped
// before evaluation and counted.

#include "pdms/cache/caching_pdms.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "pdms/lang/canonical.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/sim/sim_pdms.h"

namespace pdms {
namespace cache {
namespace {

constexpr const char* kProgram = R"(
  peer A { relation R(x, y); }
  peer B { relation S(x, y); }
  stored sa(x, y) <= A:R(x, y).
  stored sb(x, y) <= B:S(x, y).
  mapping B:S(x, y) :- A:R(x, y).
  fact sa(1, 2).
  fact sa(2, 3).
  fact sb(5, 6).
)";

bool HasSpan(const obs::TraceContext& trace, const std::string& name,
             const std::string& attr_key, const std::string& attr_value) {
  for (const obs::Span& span : trace.spans()) {
    if (span.name != name) continue;
    for (const auto& [k, v] : span.attributes) {
      if (k == attr_key && v == attr_value) return true;
    }
  }
  return false;
}

TEST(CachingPdms, RepeatQueryHitsWithIdenticalAnswers) {
  CachingPdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kProgram).ok());
  obs::MetricsRegistry metrics;
  obs::TraceContext trace;
  pdms.set_metrics(&metrics);
  pdms.set_trace(&trace);

  const std::string query = "q(x, y) :- B:S(x, y).";
  auto cold = pdms.Answer(query);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(metrics.counter("cache.misses"), 1u);
  EXPECT_EQ(metrics.counter("cache.inserts"), 1u);
  EXPECT_TRUE(HasSpan(trace, "cache_lookup", "result", "miss"));

  auto warm = pdms.Answer(query);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->ToString(), cold->ToString());
  EXPECT_EQ(metrics.counter("cache.hits"), 1u);
  EXPECT_EQ(pdms.plan_cache()->stats().hits, 1u);
  EXPECT_TRUE(HasSpan(trace, "cache_lookup", "result", "hit"));
  EXPECT_TRUE(HasSpan(trace, "query", "cache", "hit"));
}

TEST(CachingPdms, AlphaEquivalentQueriesShareOnePlan) {
  CachingPdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kProgram).ok());
  ASSERT_TRUE(pdms.Answer("q(x, y) :- B:S(x, y).").ok());
  // Renamed variables, same canonical key: served from the cache.
  ASSERT_TRUE(pdms.Answer("q(u, v) :- B:S(u, v).").ok());
  EXPECT_EQ(pdms.plan_cache()->stats().hits, 1u);
  EXPECT_EQ(pdms.plan_cache()->size(), 1u);
}

TEST(CachingPdms, CachedPlanSeesNewFactsWithoutInvalidation) {
  // Fact inserts don't move the catalog revision: the plan stays cached
  // (reformulation is data-independent) and evaluation sees the new data.
  CachingPdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kProgram).ok());
  const std::string query = "q(x, y) :- B:S(x, y).";
  ASSERT_TRUE(pdms.Answer(query).ok());
  ASSERT_TRUE(pdms.Insert("sa", {Value::Int(8), Value::Int(9)}).ok());
  auto warm = pdms.Answer(query);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(pdms.plan_cache()->stats().hits, 1u);
  EXPECT_TRUE(warm->Contains({Value::Int(8), Value::Int(9)}));
}

TEST(CachingPdms, MappingEditInvalidatesAndReplans) {
  CachingPdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kProgram).ok());
  obs::MetricsRegistry metrics;
  pdms.set_metrics(&metrics);

  const std::string query = "q(x, y) :- B:S(x, y).";
  ASSERT_TRUE(pdms.Answer(query).ok());
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer C { relation T(x, y); }
    stored sc(x, y) <= C:T(x, y).
    mapping B:S(x, y) :- C:T(x, y).
    fact sc(7, 7).
  )").ok());
  auto after = pdms.Answer(query);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(metrics.counter("cache.invalidations"), 0u);
  EXPECT_GT(pdms.plan_cache()->stats().invalidations, 0u);
  // The replanned query uses the new mapping.
  EXPECT_TRUE(after->Contains({Value::Int(7), Value::Int(7)}));
}

TEST(CachingPdms, AvailabilityFlipInvalidatesAndDegradesLikeCacheOff) {
  CachingPdms cached;
  ASSERT_TRUE(cached.LoadProgram(kProgram).ok());
  Pdms plain;
  ASSERT_TRUE(plain.LoadProgram(kProgram).ok());

  const std::string query = "q(x, y) :- B:S(x, y).";
  ASSERT_TRUE(cached.Answer(query).ok());  // warm at full availability

  ASSERT_TRUE(
      cached.mutable_network()->SetStoredRelationAvailable("sa", false).ok());
  ASSERT_TRUE(
      plain.mutable_network()->SetStoredRelationAvailable("sa", false).ok());
  auto degraded = cached.AnswerWithReport(query);
  auto expected = plain.AnswerWithReport(query);
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(expected.ok());
  EXPECT_GT(cached.plan_cache()->stats().invalidations, 0u);
  EXPECT_EQ(degraded->answers.ToString(), expected->answers.ToString());
  EXPECT_EQ(degraded->degradation.completeness,
            expected->degradation.completeness);

  // Flip back: the epoch moved again, so the stale full-availability plan
  // cannot resurface; the fresh plan answers completely.
  ASSERT_TRUE(
      cached.mutable_network()->SetStoredRelationAvailable("sa", true).ok());
  auto restored = cached.Answer(query);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->Contains({Value::Int(1), Value::Int(2)}));
}

TEST(CachingPdms, ClearAndBudgetControls) {
  CachingPdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(kProgram).ok());
  ASSERT_TRUE(pdms.Answer("q(x, y) :- B:S(x, y).").ok());
  EXPECT_GT(pdms.plan_cache()->size(), 0u);
  pdms.ClearCaches();
  EXPECT_EQ(pdms.plan_cache()->size(), 0u);
  EXPECT_EQ(pdms.goal_memo()->size(), 0u);

  ASSERT_TRUE(pdms.Answer("q(x, y) :- B:S(x, y).").ok());
  pdms.set_plan_budget_bytes(1);
  pdms.set_memo_budget_bytes(1);
  // The next insert evicts the oversized survivor; budgets stick.
  EXPECT_EQ(pdms.plan_cache()->budget_bytes(), 1u);
  std::string stats = pdms.CacheStatsString();
  EXPECT_NE(stats.find("plan cache"), std::string::npos);
  EXPECT_NE(stats.find("goal memo"), std::string::npos);
}

TEST(CachingPdms, SharedCachesServeSimPdmsAcrossInstances) {
  // ppl_shell's pattern: one long-lived cache pair, a fresh SimPdms per
  // query. The second instance hits the plan the first one warmed because
  // the catalog scope is unchanged.
  Pdms base;
  ASSERT_TRUE(base.LoadProgram(kProgram).ok());
  PlanCache plans;
  GoalMemo memo;

  auto run = [&](const std::string& query) {
    sim::SimPdms sim(base.network(), base.database());
    sim.set_plan_cache(&plans);
    sim.set_goal_memo(&memo);
    auto result = sim.Answer(query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result->answers.ToString();
  };

  std::string cold = run("q(x, y) :- B:S(x, y).");
  EXPECT_EQ(plans.stats().hits, 0u);
  std::string warm = run("q(x, y) :- B:S(x, y).");
  EXPECT_EQ(plans.stats().hits, 1u);
  EXPECT_EQ(warm, cold);

  // A catalog mutation on the base instance moves the scope the next
  // SimPdms announces, invalidating the shared caches.
  ASSERT_TRUE(
      base.mutable_network()->SetStoredRelationAvailable("sa", false).ok());
  std::string degraded = run("q(x, y) :- B:S(x, y).");
  EXPECT_GT(plans.stats().invalidations, 0u);

  Pdms plain;
  ASSERT_TRUE(plain.LoadProgram(kProgram).ok());
  ASSERT_TRUE(
      plain.mutable_network()->SetStoredRelationAvailable("sa", false).ok());
  sim::SimPdms fresh(plain.network(), plain.database());
  auto expected = fresh.Answer("q(x, y) :- B:S(x, y).");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(degraded, expected->answers.ToString());
}

TEST(CachingPdms, IsomorphicDisjunctsAreDedupedAndCounted) {
  // Two identical mappings make every rewriting through B:S enumerate
  // twice; the enumerator must emit it once and count the duplicate.
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    stored sa(x, y) <= A:R(x, y).
    mapping B:S(x, y) :- A:R(x, y).
    mapping B:S(u, v) :- A:R(u, v).
    fact sa(1, 2).
  )").ok());
  auto ref = pdms.Reformulate("q(x, y) :- B:S(x, y).");
  ASSERT_TRUE(ref.ok());
  EXPECT_GT(ref->stats.duplicate_disjuncts, 0u);
  std::set<std::string> keys;
  for (const ConjunctiveQuery& cq : ref->rewriting.disjuncts()) {
    EXPECT_TRUE(keys.insert(CanonicalQueryKey(cq)).second)
        << "duplicate disjunct survived: " << cq.ToString();
  }
  auto answers = pdms.Answer("q(x, y) :- B:S(x, y).");
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

}  // namespace
}  // namespace cache
}  // namespace pdms
