// Tests for the comparison-constraint solver behind the constraint labels
// c(n): satisfiability, implication, projection — including a brute-force
// property check against small-domain enumeration.

#include <gtest/gtest.h>

#include "pdms/constraints/constraint_set.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace {

Comparison Cmp(Term lhs, CmpOp op, Term rhs) {
  return Comparison{std::move(lhs), op, std::move(rhs)};
}

Term V(const char* name) { return Term::Var(name); }
Term I(int64_t v) { return Term::Int(v); }

TEST(ConstraintSet, EmptyIsSatisfiable) {
  ConstraintSet cs;
  EXPECT_TRUE(cs.IsSatisfiable());
  EXPECT_EQ(cs.ToString(), "true");
}

TEST(ConstraintSet, SimpleOrders) {
  ConstraintSet cs;
  cs.Add(Cmp(V("x"), CmpOp::kLt, V("y")));
  cs.Add(Cmp(V("y"), CmpOp::kLt, V("z")));
  EXPECT_TRUE(cs.IsSatisfiable());
  cs.Add(Cmp(V("z"), CmpOp::kLt, V("x")));  // strict cycle
  EXPECT_FALSE(cs.IsSatisfiable());
}

TEST(ConstraintSet, NonStrictCycleIsEquality) {
  ConstraintSet cs;
  cs.Add(Cmp(V("x"), CmpOp::kLe, V("y")));
  cs.Add(Cmp(V("y"), CmpOp::kLe, V("x")));
  EXPECT_TRUE(cs.IsSatisfiable());
  EXPECT_TRUE(cs.Implies(Cmp(V("x"), CmpOp::kEq, V("y"))));
  cs.Add(Cmp(V("x"), CmpOp::kNe, V("y")));
  EXPECT_FALSE(cs.IsSatisfiable());
}

TEST(ConstraintSet, ConstantBoundsConflict) {
  ConstraintSet cs;
  cs.Add(Cmp(V("x"), CmpOp::kLe, I(3)));
  EXPECT_TRUE(cs.IsSatisfiable());
  cs.Add(Cmp(V("x"), CmpOp::kGe, I(5)));
  EXPECT_FALSE(cs.IsSatisfiable());
}

TEST(ConstraintSet, EqualityPinning) {
  ConstraintSet cs;
  cs.Add(Cmp(V("x"), CmpOp::kEq, I(3)));
  cs.Add(Cmp(V("y"), CmpOp::kEq, V("x")));
  EXPECT_TRUE(cs.IsSatisfiable());
  EXPECT_TRUE(cs.Implies(Cmp(V("y"), CmpOp::kEq, I(3))));
  cs.Add(Cmp(V("y"), CmpOp::kEq, I(4)));
  EXPECT_FALSE(cs.IsSatisfiable());
}

TEST(ConstraintSet, CrossKindOrderIsUnsatisfiable) {
  ConstraintSet cs;
  cs.Add(Cmp(V("x"), CmpOp::kEq, Term::String("a")));
  cs.Add(Cmp(V("x"), CmpOp::kLt, I(5)));
  EXPECT_FALSE(cs.IsSatisfiable());
  // != across kinds is trivially fine.
  ConstraintSet cs2;
  cs2.Add(Cmp(V("x"), CmpOp::kEq, Term::String("a")));
  cs2.Add(Cmp(V("x"), CmpOp::kNe, I(5)));
  EXPECT_TRUE(cs2.IsSatisfiable());
}

TEST(ConstraintSet, StringOrdering) {
  ConstraintSet cs;
  cs.Add(Cmp(V("x"), CmpOp::kGt, Term::String("b")));
  cs.Add(Cmp(V("x"), CmpOp::kLt, Term::String("a")));
  EXPECT_FALSE(cs.IsSatisfiable());
}

TEST(ConstraintSet, DenseRelaxationKeepsIntegerGaps) {
  // x > 3 AND x < 4 has no integer solution but the dense-order solver
  // keeps it (documented conservative behaviour — pruning stays sound).
  ConstraintSet cs;
  cs.Add(Cmp(V("x"), CmpOp::kGt, I(3)));
  cs.Add(Cmp(V("x"), CmpOp::kLt, I(4)));
  EXPECT_TRUE(cs.IsSatisfiable());
}

TEST(ConstraintSet, DisequalityWithPinnedConstants) {
  ConstraintSet cs;
  cs.Add(Cmp(V("x"), CmpOp::kEq, I(3)));
  cs.Add(Cmp(V("y"), CmpOp::kEq, I(3)));
  cs.Add(Cmp(V("x"), CmpOp::kNe, V("y")));
  EXPECT_FALSE(cs.IsSatisfiable());
}

TEST(ConstraintSet, Implication) {
  ConstraintSet cs;
  cs.Add(Cmp(V("x"), CmpOp::kLt, V("y")));
  cs.Add(Cmp(V("y"), CmpOp::kLe, I(10)));
  EXPECT_TRUE(cs.Implies(Cmp(V("x"), CmpOp::kLt, I(10))));
  EXPECT_TRUE(cs.Implies(Cmp(V("x"), CmpOp::kLe, V("y"))));
  EXPECT_TRUE(cs.Implies(Cmp(V("x"), CmpOp::kNe, V("y"))));
  EXPECT_FALSE(cs.Implies(Cmp(V("x"), CmpOp::kLt, I(5))));
  EXPECT_FALSE(cs.Implies(Cmp(V("y"), CmpOp::kLt, V("x"))));
  ConstraintSet other;
  other.Add(Cmp(V("x"), CmpOp::kLe, I(10)));
  EXPECT_TRUE(cs.ImpliesAll(other));
}

TEST(ConstraintSet, GroundComparisons) {
  ConstraintSet cs;
  cs.Add(Cmp(I(1), CmpOp::kLt, I(2)));
  EXPECT_TRUE(cs.IsSatisfiable());
  cs.Add(Cmp(I(5), CmpOp::kLt, I(2)));
  EXPECT_FALSE(cs.IsSatisfiable());
}

TEST(ConstraintSet, ProjectionKeepsImpliedFacts) {
  ConstraintSet cs;
  cs.Add(Cmp(V("x"), CmpOp::kLt, V("z")));
  cs.Add(Cmp(V("z"), CmpOp::kLt, V("y")));
  cs.Add(Cmp(V("z"), CmpOp::kLe, I(7)));
  ConstraintSet projected = cs.Project({"x", "y"});
  // z is gone but x < y and x < 7 survive.
  EXPECT_TRUE(projected.Implies(Cmp(V("x"), CmpOp::kLt, V("y"))));
  EXPECT_TRUE(projected.Implies(Cmp(V("x"), CmpOp::kLt, I(7))));
  for (const Comparison& c : projected.comparisons()) {
    for (const Term* t : {&c.lhs, &c.rhs}) {
      if (t->is_variable()) {
        EXPECT_NE(t->var_name(), "z") << projected.ToString();
      }
    }
  }
}

TEST(ConstraintSet, ProjectionOfUnsatisfiableStaysUnsatisfiable) {
  ConstraintSet cs;
  cs.Add(Cmp(V("z"), CmpOp::kLt, V("z")));
  ConstraintSet projected = cs.Project({"x"});
  EXPECT_FALSE(projected.IsSatisfiable());
}

TEST(ConstraintSet, ApplySubstitution) {
  ConstraintSet cs;
  cs.Add(Cmp(V("x"), CmpOp::kLt, V("y")));
  Substitution s;
  ASSERT_TRUE(s.UnifyTerms(V("y"), I(4)));
  ConstraintSet applied = cs.Apply(s);
  EXPECT_TRUE(applied.Implies(Cmp(V("x"), CmpOp::kLt, I(4))));
}

// ----- Property check: solver verdict vs brute-force over a small domain.
// Over domain {0..4} the dense solver may say SAT where integers have no
// witness, but it must never say UNSAT when a small-domain witness exists
// (its UNSATs are proofs).

class ConstraintPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConstraintPropertyTest, UnsatImpliesNoSmallWitness) {
  Rng rng(GetParam());
  const int kVars = 3;
  const int kDomain = 5;
  for (int round = 0; round < 60; ++round) {
    ConstraintSet cs;
    size_t n = 1 + rng.Uniform(4);
    for (size_t i = 0; i < n; ++i) {
      Term lhs = Term::Var(std::string(1, 'a' + rng.Uniform(kVars)));
      Term rhs = rng.Chance(0.4)
                     ? Term::Int(rng.UniformInt(0, kDomain - 1))
                     : Term::Var(std::string(1, 'a' + rng.Uniform(kVars)));
      CmpOp op = static_cast<CmpOp>(rng.Uniform(6));
      cs.Add(Comparison{lhs, op, rhs});
    }
    // Brute-force witness search over {0..4}^3.
    bool witness = false;
    for (int a = 0; a < kDomain && !witness; ++a) {
      for (int b = 0; b < kDomain && !witness; ++b) {
        for (int c = 0; c < kDomain && !witness; ++c) {
          auto value = [&](const Term& t) {
            if (t.is_constant()) return t.value();
            char v = t.var_name()[0];
            return Value::Int(v == 'a' ? a : (v == 'b' ? b : c));
          };
          bool all = true;
          for (const Comparison& cmp : cs.comparisons()) {
            if (!EvalCmp(cmp.op, value(cmp.lhs), value(cmp.rhs))) {
              all = false;
              break;
            }
          }
          witness |= all;
        }
      }
    }
    if (witness) {
      EXPECT_TRUE(cs.IsSatisfiable()) << cs.ToString();
    }
    // And implication must be consistent with satisfiability:
    // cs implies c => cs ∧ ¬c unsatisfiable was already the definition,
    // so spot-check monotonicity: anything cs contains is implied.
    if (cs.IsSatisfiable()) {
      for (const Comparison& c : cs.comparisons()) {
        EXPECT_TRUE(cs.Implies(c)) << cs.ToString() << " !=> "
                                   << c.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace pdms
