// Tests for semantic containment of conjunctive queries with comparison
// predicates (constraints/cq_containment.h).

#include "pdms/constraints/cq_containment.h"

#include <gtest/gtest.h>

#include "pdms/lang/homomorphism.h"
#include "pdms/lang/parser.h"

namespace pdms {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseRuleText(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(SemanticContainment, ComparisonFreeAgreesWithSyntactic) {
  auto general = Q("q(x) :- r(x, y).");
  auto specific = Q("q(x) :- r(x, y), s(y).");
  EXPECT_TRUE(ContainsCQWithComparisons(general, specific));
  EXPECT_FALSE(ContainsCQWithComparisons(specific, general));
}

TEST(SemanticContainment, ImpliedBoundAccepted) {
  // x < 3 implies x < 5: the syntactic test fails, the semantic passes.
  auto general = Q("q(x) :- r(x, y), x < 5.");
  auto specific = Q("q(x) :- r(x, y), x < 3.");
  EXPECT_FALSE(ContainsCQ(general, specific));  // conservative baseline
  EXPECT_TRUE(ContainsCQWithComparisons(general, specific));
  EXPECT_FALSE(ContainsCQWithComparisons(specific, general));
}

TEST(SemanticContainment, TransitiveImplication) {
  auto general = Q("q(x, y) :- r(x, y), x <= y.");
  auto specific = Q("q(x, y) :- r(x, y), x < z, z < y.");
  EXPECT_TRUE(ContainsCQWithComparisons(general, specific));
}

TEST(SemanticContainment, EqualityPinsVariables) {
  auto general = Q("q(x) :- r(x, y), y >= 3.");
  auto specific = Q("q(x) :- r(x, y), y = 7.");
  EXPECT_TRUE(ContainsCQWithComparisons(general, specific));
  auto too_small = Q("q(x) :- r(x, y), y = 2.");
  EXPECT_FALSE(ContainsCQWithComparisons(general, too_small));
}

TEST(SemanticContainment, TriesAlternativeHomomorphisms) {
  // Two r-atoms: the mapping must pick the one whose bound is implied.
  auto general = Q("q(x) :- r(x, y), y < 5.");
  auto specific = Q("q(x) :- r(x, a), r(x, b), a > 100, b < 3.");
  EXPECT_TRUE(ContainsCQWithComparisons(general, specific));
}

TEST(SemanticContainment, UnsatisfiableSpecificIsContainedInAnything) {
  auto general = Q("q(x) :- r(x, y).");
  auto empty = Q("q(x) :- r(x, y), y < 3, y > 5.");
  EXPECT_TRUE(ContainsCQWithComparisons(general, empty));
}

TEST(SemanticContainment, EquivalenceModuloBoundsDirection) {
  auto a = Q("q(x) :- r(x, y), y <= 4.");
  auto b = Q("q(x) :- r(x, y), 4 >= y.");
  EXPECT_TRUE(EquivalentCQWithComparisons(a, b));
}

TEST(SemanticContainment, RemoveRedundantUsesImplication) {
  UnionQuery uq({
      Q("q(x) :- r(x, y), y < 5."),
      Q("q(x) :- r(x, y), y < 3."),      // contained in the first
      Q("q(x) :- r(x, y), y > 9."),      // incomparable: kept
      Q("q(x) :- r(x, y), y < 2, y > 8."),  // unsatisfiable: dropped
  });
  UnionQuery cleaned = RemoveRedundantDisjunctsWithComparisons(uq);
  ASSERT_EQ(cleaned.size(), 2u) << cleaned.ToString();
  EXPECT_EQ(cleaned.disjuncts()[0].comparisons()[0].ToString(), "y < 5");
}

TEST(SemanticContainment, HeadMappingStillRespected) {
  auto q1 = Q("q(x, y) :- r(x, y), x < y.");
  auto q2 = Q("q(y, x) :- r(x, y), x < y.");
  EXPECT_FALSE(ContainsCQWithComparisons(q1, q2));
}

TEST(ForEachAtomMapping, EnumeratesAllWitnesses) {
  auto from = Q("q() :- r(x).").body();
  auto onto = Q("q() :- r(1), r(2), r(3).").body();
  int count = 0;
  bool found = ForEachAtomMapping(from, onto, VarMap(),
                                  [&](const VarMap&) {
                                    ++count;
                                    return false;  // keep enumerating
                                  });
  EXPECT_FALSE(found);  // no witness was accepted
  EXPECT_EQ(count, 3);
  // Early acceptance stops the search.
  count = 0;
  found = ForEachAtomMapping(from, onto, VarMap(), [&](const VarMap&) {
    ++count;
    return true;
  });
  EXPECT_TRUE(found);
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace pdms
