// Observability layer tests: TraceContext span mechanics, MetricsRegistry
// invariants, the Chrome-trace exporter's schema (golden), and the
// determinism contract — a SimPdms query under the virtual clock produces
// a byte-identical span tree (ids, nesting, attributes, AND timestamps)
// for identical seeds.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pdms/core/pdms.h"
#include "pdms/obs/export.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/sim/sim_pdms.h"

namespace pdms {
namespace obs {
namespace {

// --- TraceContext ---

TEST(TraceTest, SpansNestAndGetDenseIds) {
  TraceContext trace;
  double now = 0;
  trace.set_now_fn([&] { return now; });

  SpanId a = trace.StartSpan("a");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(trace.current(), a);
  now = 1;
  SpanId b = trace.StartSpan("b");
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(trace.spans()[1].parent, a);
  now = 3;
  trace.EndSpan(b);
  EXPECT_EQ(trace.current(), a);
  now = 5;
  trace.EndSpan(a);
  EXPECT_EQ(trace.current(), kNoSpan);

  EXPECT_DOUBLE_EQ(trace.spans()[0].start_ms, 0);
  EXPECT_DOUBLE_EQ(trace.spans()[0].end_ms, 5);
  EXPECT_DOUBLE_EQ(trace.spans()[1].duration_ms(), 2);
  EXPECT_FALSE(trace.spans()[0].open());
}

TEST(TraceTest, DetachedSpanLeavesScopeStackAlone) {
  TraceContext trace;
  SpanId root = trace.StartSpan("root");
  SpanId msg = trace.StartSpanAt("message", root);
  // The detached span is not the current scope...
  EXPECT_EQ(trace.current(), root);
  SpanId child = trace.StartSpan("child");
  EXPECT_EQ(trace.spans()[child - 1].parent, root);
  // ...and ending it out of stack order leaves the stack intact.
  trace.EndSpan(msg);
  EXPECT_EQ(trace.current(), child);
  EXPECT_EQ(trace.spans()[msg - 1].parent, root);
}

TEST(TraceTest, InstantIsAZeroDurationChild) {
  TraceContext trace;
  double now = 2;
  trace.set_now_fn([&] { return now; });
  SpanId root = trace.StartSpan("root");
  SpanId mark = trace.Instant("event");
  EXPECT_EQ(trace.current(), root);
  const Span& span = trace.spans()[mark - 1];
  EXPECT_EQ(span.parent, root);
  EXPECT_FALSE(span.open());
  EXPECT_DOUBLE_EQ(span.duration_ms(), 0);
}

TEST(TraceTest, AttributesKeepInsertionOrderAndFormatValues) {
  TraceContext trace;
  SpanId s = trace.StartSpan("s");
  trace.SetAttribute(s, "str", "x");
  trace.SetAttribute(s, "count", static_cast<uint64_t>(7));
  trace.SetAttribute(s, "ratio", 2.5);
  trace.SetAttribute(s, "flag", true);
  const Span& span = trace.spans()[0];
  ASSERT_EQ(span.attributes.size(), 4u);
  EXPECT_EQ(span.attributes[0].first, "str");
  EXPECT_EQ(*span.FindAttribute("count"), "7");
  EXPECT_EQ(*span.FindAttribute("flag"), "true");
  EXPECT_EQ(span.FindAttribute("missing"), nullptr);
}

TEST(TraceTest, ClearKeepsIdAndClockBinding) {
  TraceContext trace("t");
  double now = 9;
  trace.set_now_fn([&] { return now; });
  trace.StartSpan("a");
  trace.Clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.trace_id(), "t");
  SpanId again = trace.StartSpan("b");
  EXPECT_EQ(again, 1u);  // ids restart — dense per query
  EXPECT_DOUBLE_EQ(trace.spans()[0].start_ms, 9);
}

TEST(TraceTest, ScopedSpanIsNullSafe) {
  ScopedSpan span(nullptr, "nothing");
  span.Set("key", "value");
  span.End();  // all no-ops; must not crash
  EXPECT_EQ(span.id(), kNoSpan);
}

// --- MetricsRegistry ---

TEST(MetricsTest, CounterEqualsSumOfDeltas) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("reform.queries"), 0u);
  registry.Add("reform.queries");
  registry.Add("reform.queries", 4);
  registry.Add("other", 2);
  EXPECT_EQ(registry.counter("reform.queries"), 5u);
  EXPECT_EQ(registry.counter("other"), 2u);
}

TEST(MetricsTest, HistogramInvariants) {
  MetricsRegistry registry;
  const std::vector<double> bounds = {1.0, 10.0};
  registry.Observe("lat_ms", 0.5, bounds);
  registry.Observe("lat_ms", 5.0, bounds);
  registry.Observe("lat_ms", 50.0, bounds);   // overflow bucket
  registry.Observe("lat_ms", 10.0, bounds);   // on the bound: inclusive
  const auto h = registry.FindHistogram("lat_ms");
  ASSERT_TRUE(h.has_value());
  ASSERT_EQ(h->counts.size(), bounds.size() + 1);
  uint64_t bucket_sum = 0;
  for (uint64_t c : h->counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, h->count);
  EXPECT_EQ(h->count, 4u);
  EXPECT_DOUBLE_EQ(h->sum, 65.5);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 50.0);
  EXPECT_EQ(h->counts[0], 1u);
  EXPECT_EQ(h->counts[1], 2u);
  EXPECT_EQ(h->counts[2], 1u);
}

TEST(MetricsTest, BoundsAreFixedAtFirstObservation) {
  MetricsRegistry registry;
  registry.Observe("h", 1.0, {2.0});
  registry.Observe("h", 1.0, {100.0, 200.0});  // ignored: layout is fixed
  const auto h = registry.FindHistogram("h");
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->bounds, (std::vector<double>{2.0}));
  EXPECT_EQ(h->count, 2u);
}

TEST(MetricsTest, DefaultBoundsAreAscending) {
  const auto& bounds = MetricsRegistry::DefaultLatencyBounds();
  ASSERT_GT(bounds.size(), 1u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsTest, ToJsonIsWellFormedAndClearResets) {
  MetricsRegistry registry;
  registry.Add("a.count", 3);
  registry.Observe("a.lat_ms", 1.5, {1.0});
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  registry.Clear();
  EXPECT_TRUE(registry.empty());
}

// --- Chrome-trace exporter (golden) ---

// The schema contract with chrome://tracing / Perfetto: complete events
// (ph "X"), microsecond timestamps, span identity in args. Any change to
// this output must be deliberate — update the golden alongside the docs.
TEST(ExportTest, ChromeTraceGolden) {
  TraceContext trace("g");
  double now = 0;
  trace.set_now_fn([&] { return now; });
  SpanId query = trace.StartSpan("query");
  trace.SetAttribute(query, "mode", "local");
  now = 1.5;
  SpanId child = trace.StartSpan("reformulate");
  now = 2.0;
  trace.EndSpan(child);
  now = 3.0;
  trace.EndSpan(query);

  const std::string expected =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      "{\"name\": \"query\", \"cat\": \"pdms\", \"ph\": \"X\", "
      "\"ts\": 0.000, \"dur\": 3000.000, \"pid\": 1, \"tid\": 1, "
      "\"args\": {\"trace_id\": \"g\", \"span_id\": 1, \"parent_id\": 0, "
      "\"mode\": \"local\"}},\n"
      "{\"name\": \"reformulate\", \"cat\": \"pdms\", \"ph\": \"X\", "
      "\"ts\": 1500.000, \"dur\": 500.000, \"pid\": 1, \"tid\": 1, "
      "\"args\": {\"trace_id\": \"g\", \"span_id\": 2, \"parent_id\": 1}}\n"
      "]}\n";
  EXPECT_EQ(ChromeTraceJson(trace), expected);
}

TEST(ExportTest, RenderSpanTreeShowsNestingAndAttributes) {
  TraceContext trace;
  double now = 0;
  trace.set_now_fn([&] { return now; });
  SpanId root = trace.StartSpan("query");
  trace.SetAttribute(root, "mode", "local");
  trace.StartSpan("reformulate");
  std::string out = RenderSpanTree(trace);
  EXPECT_NE(out.find("trace query:\n"), std::string::npos);
  EXPECT_NE(out.find("query"), std::string::npos);
  EXPECT_NE(out.find("  reformulate"), std::string::npos);  // indented child
  EXPECT_NE(out.find("mode=local"), std::string::npos);
  EXPECT_NE(out.find("(open)"), std::string::npos);

  TraceContext empty;
  EXPECT_EQ(RenderSpanTree(empty), "(no spans)\n");
}

// --- Determinism under the virtual clock ---

constexpr const char* kProgram = R"(
  peer H { relation Doctor(name, hosp); }
  peer W { relation Staff(name, hosp); }
  mapping (n, h) : W:Staff(n, h) <= H:Doctor(n, h).
  stored h_doc(n, h) <= H:Doctor(n, h).
  stored w_staff(n, h) <= W:Staff(n, h).
  fact h_doc("ada", "central").
  fact w_staff("bob", "north").
)";

// Runs one faulty distributed query with a fresh SimPdms + TraceContext and
// returns the rendered span tree and the Chrome JSON.
std::pair<std::string, std::string> TraceOneRun(uint64_t seed) {
  Pdms central;
  EXPECT_TRUE(central.LoadProgram(kProgram).ok());
  sim::SimOptions options;
  options.seed = seed;
  options.faults.drop_probability = 0.2;
  options.faults.duplicate_probability = 0.1;
  options.faults.delay_jitter_ms = 3.0;
  sim::SimPdms sim(central.network(), central.database(), options);
  TraceContext trace;
  MetricsRegistry metrics;
  sim.set_trace(&trace);
  sim.set_metrics(&metrics);
  auto result = sim.Answer("q(n) :- H:Doctor(n, h).");
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(trace.empty());
  return {RenderSpanTree(trace), ChromeTraceJson(trace)};
}

TEST(ObsDeterminismTest, SameSeedProducesIdenticalSpanTree) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    auto [tree_a, json_a] = TraceOneRun(seed);
    auto [tree_b, json_b] = TraceOneRun(seed);
    // Byte-identical: ids, nesting, attributes, and virtual timestamps.
    EXPECT_EQ(tree_a, tree_b) << "seed " << seed;
    EXPECT_EQ(json_a, json_b) << "seed " << seed;
  }
}

TEST(ObsDeterminismTest, SpanTreeCoversEveryLayerUnderOneTraceId) {
  Pdms central;
  ASSERT_TRUE(central.LoadProgram(kProgram).ok());
  sim::SimOptions options;
  options.seed = 3;
  options.faults.drop_probability = 0.4;  // force timeouts and retransmits
  sim::SimPdms sim(central.network(), central.database(), options);
  TraceContext trace;
  sim.set_trace(&trace);
  ASSERT_TRUE(sim.Answer("q(n) :- H:Doctor(n, h).").ok());

  auto has = [&](const std::string& name) {
    for (const Span& span : trace.spans()) {
      if (span.name == name) return true;
    }
    return false;
  };
  // One trace covers reformulation (per-node spans included), the fetch
  // phase with per-hop message spans, and evaluation.
  EXPECT_TRUE(has("query"));
  EXPECT_TRUE(has("reformulate"));
  EXPECT_TRUE(has("expand"));
  EXPECT_TRUE(has("fetch"));
  EXPECT_TRUE(has("message"));
  EXPECT_TRUE(has("evaluate"));
  // Every span except the root belongs to the tree rooted at "query".
  EXPECT_EQ(trace.spans()[0].name, "query");
  for (const Span& span : trace.spans()) {
    if (span.id == 1) {
      EXPECT_EQ(span.parent, kNoSpan);
    } else {
      EXPECT_NE(span.parent, kNoSpan);
    }
  }
}

// The in-process facade emits the same shape with the wall clock and a
// fault injector: access spans with retry events appear under the query.
TEST(ObsFacadeTest, LocalAnswerEmitsAccessSpans) {
  Pdms central;
  ASSERT_TRUE(central.LoadProgram(kProgram).ok());
  TraceContext trace;
  MetricsRegistry metrics;
  central.set_trace(&trace);
  central.set_metrics(&metrics);
  central.set_fault_seed(5);
  FaultProfile flaky;
  flaky.failure_probability = 0.5;
  central.mutable_fault_injector()->SetStoredProfile("h_doc", flaky);
  RetryPolicy retry;
  retry.max_attempts = 4;
  central.set_retry_policy(retry);

  ASSERT_TRUE(central.AnswerWithReport("q(n) :- H:Doctor(n, h).").ok());
  bool saw_access = false;
  for (const Span& span : trace.spans()) {
    if (span.name != "access") continue;
    saw_access = true;
    EXPECT_NE(span.FindAttribute("relation"), nullptr);
    EXPECT_NE(span.FindAttribute("outcome"), nullptr);
  }
  EXPECT_TRUE(saw_access);
  EXPECT_EQ(metrics.counter("access.probes"), 2u);
  EXPECT_EQ(metrics.counter("reform.queries"), 1u);
  EXPECT_GT(metrics.counter("eval.disjuncts"), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace pdms
