// Plan-cache unit tests: the byte-budgeted LRU map, scope invalidation
// (revision and availability epoch), the hit/miss/evict/invalidate
// counters, and the mid-churn insert guard — a plan reformulated under one
// scope must never be inserted after the network moved (the regression
// case is a revision bump racing an insert).

#include "pdms/cache/plan_cache.h"

#include <gtest/gtest.h>

#include <string>

#include "pdms/cache/lru.h"
#include "pdms/core/pdms.h"
#include "pdms/lang/parser.h"

namespace pdms {
namespace cache {
namespace {

ConjunctiveQuery Cq(const std::string& text) {
  auto q = ParseRuleText(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

PlanCacheHook::Plan MakePlan(const std::string& rewriting_text) {
  PlanCacheHook::Plan plan;
  plan.rewriting.Add(Cq(rewriting_text));
  return plan;
}

// A network-less scope: the cache falls back to wholesale clearing on any
// (revision, epoch) movement — the behavior these unit tests pin down.
// Dependency-tracked invalidation (scopes with a network) is covered by
// cache_invalidation_test.cc and the churn DST.
CacheScope Scope(uint64_t revision, uint64_t epoch) {
  CacheScope scope;
  scope.revision = revision;
  scope.epoch = epoch;
  return scope;
}

// --- LruByteMap ---

TEST(LruByteMap, TouchPromotesAndPutEvictsFromTheBack) {
  LruByteMap<int> lru(30);
  EXPECT_EQ(lru.Put("a", 1, 10), 0u);
  EXPECT_EQ(lru.Put("b", 2, 10), 0u);
  EXPECT_EQ(lru.Put("c", 3, 10), 0u);
  EXPECT_EQ(lru.total_bytes(), 30u);

  // "a" is the LRU entry; touching it makes "b" the victim instead.
  ASSERT_NE(lru.Touch("a"), nullptr);
  EXPECT_EQ(lru.Put("d", 4, 10), 1u);
  EXPECT_EQ(lru.Touch("b"), nullptr);
  ASSERT_NE(lru.Touch("a"), nullptr);
  EXPECT_EQ(*lru.Touch("a"), 1);
}

TEST(LruByteMap, ReplacingAKeyAdjustsBytesWithoutEviction) {
  LruByteMap<int> lru(30);
  lru.Put("a", 1, 10);
  lru.Put("b", 2, 10);
  EXPECT_EQ(lru.Put("a", 9, 20), 0u);  // replace: 20 + 10 fits
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru.total_bytes(), 30u);
  EXPECT_EQ(*lru.Touch("a"), 9);
}

TEST(LruByteMap, OversizedEntryIsAdmittedAloneThenEvictedByTheNextPut) {
  LruByteMap<int> lru(10);
  EXPECT_EQ(lru.Put("big", 1, 100), 0u);  // sole entry survives over budget
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_EQ(lru.Put("small", 2, 5), 1u);  // "big" goes
  EXPECT_EQ(lru.Touch("big"), nullptr);
  ASSERT_NE(lru.Touch("small"), nullptr);
}

TEST(LruByteMap, ZeroByteChargeIsAdmittedAndNeverForcesEviction) {
  LruByteMap<int> lru(20);
  lru.Put("a", 1, 10);
  lru.Put("b", 2, 10);  // budget exactly full
  // A zero-charge entry fits in a full cache without evicting anything.
  EXPECT_EQ(lru.Put("free", 3, 0), 0u);
  EXPECT_EQ(lru.size(), 3u);
  EXPECT_EQ(lru.total_bytes(), 20u);
  ASSERT_NE(lru.Touch("free"), nullptr);
  EXPECT_EQ(*lru.Touch("free"), 3);
  // And it survives the eviction that a real charge triggers.
  EXPECT_EQ(lru.Put("c", 4, 10), 1u);
  ASSERT_NE(lru.Touch("free"), nullptr);
}

TEST(LruByteMap, ReinsertingWithALargerChargeEvictsToFit) {
  LruByteMap<int> lru(30);
  lru.Put("a", 1, 10);
  lru.Put("b", 2, 10);
  lru.Put("c", 3, 10);
  // Re-inserting "c" at triple the charge must evict the LRU entries, not
  // double-count the old charge.
  EXPECT_EQ(lru.Put("c", 9, 30), 2u);
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_EQ(lru.total_bytes(), 30u);
  ASSERT_NE(lru.Touch("c"), nullptr);
  EXPECT_EQ(*lru.Touch("c"), 9);
}

TEST(LruByteMap, ShrinkingTheBudgetEvictsDown) {
  LruByteMap<int> lru(40);
  lru.Put("a", 1, 10);
  lru.Put("b", 2, 10);
  lru.Put("c", 3, 10);
  EXPECT_EQ(lru.SetBudget(15), 2u);  // only the MRU entry "c" fits
  EXPECT_EQ(lru.size(), 1u);
  ASSERT_NE(lru.Touch("c"), nullptr);
}

// --- PlanCache ---

TEST(PlanCache, HitAfterInsertInTheSameScope) {
  PlanCache cache;
  EXPECT_EQ(cache.EnterScope(Scope(1, 0)), 0u);
  EXPECT_EQ(cache.Find("k"), nullptr);
  auto outcome = cache.Insert("k", MakePlan("q(x) :- s(x, y)."), 1, 0);
  EXPECT_TRUE(outcome.stored);
  std::shared_ptr<const PlanCacheHook::Plan> hit = cache.Find("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rewriting.size(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(PlanCache, RevisionChangeInvalidatesEverything) {
  PlanCache cache;
  cache.EnterScope(Scope(1, 0));
  cache.Insert("a", MakePlan("q(x) :- s(x, y)."), 1, 0);
  cache.Insert("b", MakePlan("q(x) :- t(x, y)."), 1, 0);
  // Same scope re-announced: nothing happens.
  EXPECT_EQ(cache.EnterScope(Scope(1, 0)), 0u);
  EXPECT_EQ(cache.size(), 2u);
  // Revision moved (a mapping edit): both entries are dead.
  EXPECT_EQ(cache.EnterScope(Scope(2, 0)), 2u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.Find("a"), nullptr);
}

TEST(PlanCache, AvailabilityEpochChangeInvalidatesEverything) {
  PlanCache cache;
  cache.EnterScope(Scope(3, 7));
  cache.Insert("a", MakePlan("q(x) :- s(x, y)."), 3, 7);
  // Same revision, availability flipped: plans pruned sources that may be
  // back (or used sources now gone) — invalid either way.
  EXPECT_EQ(cache.EnterScope(Scope(3, 8)), 1u);
  EXPECT_EQ(cache.Find("a"), nullptr);
}

// The mid-churn regression: reformulation started at scope (1,0); while
// the plan was being built, the network moved (revision bump, or an
// availability flip). The insert must be dropped — storing it would serve
// a plan from a network that no longer exists at the very next Find.
TEST(PlanCache, InsertRacingARevisionBumpIsDropped) {
  PlanCache cache;
  cache.EnterScope(Scope(1, 0));
  auto outcome = cache.Insert("k", MakePlan("q(x) :- s(x, y)."), 2, 0);
  EXPECT_FALSE(outcome.stored);
  EXPECT_TRUE(outcome.dropped_stale);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().inserts_dropped_stale, 1u);

  // Same race via the availability epoch.
  outcome = cache.Insert("k", MakePlan("q(x) :- s(x, y)."), 1, 1);
  EXPECT_TRUE(outcome.dropped_stale);

  // No churn: the insert lands and the cache stays coherent.
  outcome = cache.Insert("k", MakePlan("q(x) :- s(x, y)."), 1, 0);
  EXPECT_TRUE(outcome.stored);
  EXPECT_NE(cache.Find("k"), nullptr);
  EXPECT_EQ(cache.stats().inserts_dropped_stale, 2u);
}

TEST(PlanCache, EvictionUnderTinyBudgetCountsEvictions) {
  PlanCache cache(/*budget_bytes=*/1);  // every insert evicts predecessors
  cache.EnterScope(Scope(1, 0));
  auto first = cache.Insert("a", MakePlan("q(x) :- s(x, y)."), 1, 0);
  EXPECT_TRUE(first.stored);
  EXPECT_EQ(first.evictions, 0u);  // oversized sole entry is admitted
  auto second = cache.Insert("b", MakePlan("q(x) :- t(x, y)."), 1, 0);
  EXPECT_TRUE(second.stored);
  EXPECT_EQ(second.evictions, 1u);
  EXPECT_EQ(cache.Find("a"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PlanCache, ClearDropsEntriesButKeepsCounters) {
  PlanCache cache;
  cache.EnterScope(Scope(1, 0));
  cache.Insert("a", MakePlan("q(x) :- s(x, y)."), 1, 0);
  cache.Find("a");
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().invalidations, 0u);  // operator clear, not churn
  // The scope is untouched: inserts in the declared scope still land.
  EXPECT_TRUE(cache.Insert("a", MakePlan("q(x) :- s(x, y)."), 1, 0).stored);
}

TEST(PlanCache, EstimateGrowsWithPlanSize) {
  PlanCacheHook::Plan small = MakePlan("q(x) :- s(x, y).");
  PlanCacheHook::Plan big = MakePlan("q(x) :- s(x, y), t(y, z), u(z, w).");
  big.rewriting.Add(Cq("q(x) :- v(x, y)."));
  EXPECT_GT(PlanCache::EstimatePlanBytes("k", big),
            PlanCache::EstimatePlanBytes("k", small));
}

}  // namespace
}  // namespace cache
}  // namespace pdms
