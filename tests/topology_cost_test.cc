// Topology-aware network cost model (docs/network_cost_model.md):
//
//  - generator invariants at 1k peers: connectivity, acyclic attachment
//    (edges only point newer -> older), bounded degree, community labels;
//  - link-map shapes (uniform LAN / mesh / clustered WAN / hub-spoke) are
//    deterministic pure functions of their configs;
//  - the NetworkModel factory: the uniform model reproduces the legacy
//    delay byte for byte, latency-bandwidth grows with message size,
//    contention queues back-to-back messages on one trunk;
//  - versioned trace header with per-delivery delays, and seed-replay
//    determinism under a non-uniform model;
//  - CostEstimator blending of static link costs with live SRTT, and
//    cheapest-provider selection over replicated storage descriptions.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <string>
#include <vector>

#include "pdms/core/cost_estimator.h"
#include "pdms/gen/topology.h"
#include "pdms/sim/sim_pdms.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace {

using gen::GenerateLinkMap;
using gen::GenerateTopology;
using gen::LinkMapConfig;
using gen::Topology;
using gen::TopologyConfig;

// --- Generator invariants -------------------------------------------------

void CheckTopologyInvariants(const Topology& topology,
                             const TopologyConfig& config) {
  const size_t n = config.num_peers;
  ASSERT_EQ(topology.neighbors.size(), n);
  ASSERT_EQ(topology.community.size(), n);

  // Acyclic by construction: every attachment edge points to an older peer.
  for (size_t i = 0; i < n; ++i) {
    for (size_t v : topology.neighbors[i]) {
      ASSERT_LT(v, i) << "attachment edge " << i << " -> " << v
                      << " does not point to an older peer";
    }
  }

  // Out-degree bound: attach_edges plus at most one community bridge.
  for (size_t i = 0; i < n; ++i) {
    ASSERT_LE(topology.neighbors[i].size(), config.attach_edges + 1);
  }

  // Connected when every joiner attaches somewhere: BFS over the
  // undirected attachment graph reaches every peer from peer 0.
  std::vector<std::vector<size_t>> undirected(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t v : topology.neighbors[i]) {
      undirected[i].push_back(v);
      undirected[v].push_back(i);
    }
  }
  std::vector<char> seen(n, 0);
  std::deque<size_t> frontier{0};
  seen[0] = 1;
  size_t reached = 1;
  while (!frontier.empty()) {
    size_t at = frontier.front();
    frontier.pop_front();
    for (size_t v : undirected[at]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++reached;
        frontier.push_back(v);
      }
    }
  }
  ASSERT_EQ(reached, n) << "attachment graph is not connected";
}

TEST(TopologyGenerator, PowerLawInvariantsAtThousandPeers) {
  TopologyConfig config;
  config.kind = TopologyConfig::Kind::kPowerLaw;
  config.num_peers = 1000;
  config.attach_edges = 2;
  config.seed = 7;
  auto topology = GenerateTopology(config);
  ASSERT_TRUE(topology.ok()) << topology.status().ToString();
  CheckTopologyInvariants(*topology, config);
  for (size_t c : topology->community) ASSERT_EQ(c, 0u);
}

TEST(TopologyGenerator, CommunityInvariantsAtThousandPeers) {
  TopologyConfig config;
  config.kind = TopologyConfig::Kind::kCommunity;
  config.num_peers = 1000;
  config.num_communities = 20;
  config.attach_edges = 2;
  config.seed = 11;
  auto topology = GenerateTopology(config);
  ASSERT_TRUE(topology.ok()) << topology.status().ToString();
  CheckTopologyInvariants(*topology, config);
  size_t max_community = 0;
  for (size_t c : topology->community) max_community = std::max(max_community, c);
  ASSERT_EQ(max_community + 1, config.num_communities);
}

TEST(TopologyGenerator, ReplicasAddProvidersWithoutChangingTheFirstOwner) {
  TopologyConfig config;
  config.kind = TopologyConfig::Kind::kCommunity;
  config.num_peers = 24;
  config.num_communities = 4;
  config.seed = 3;

  auto base = GenerateTopology(config);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  config.replicas = 1;
  auto replicated = GenerateTopology(config);
  ASSERT_TRUE(replicated.ok()) << replicated.status().ToString();

  for (size_t i = 0; i < config.num_peers; ++i) {
    const std::string stored = gen::TopologyStoredName(i);
    std::vector<std::string> providers =
        replicated->network.StoredRelationPeers(stored);
    ASSERT_EQ(providers.size(), 2u) << stored;
    // The first description (legacy resolution) keeps the original owner.
    auto legacy = base->network.StoredRelationPeer(stored);
    ASSERT_TRUE(legacy.ok());
    ASSERT_EQ(providers[0], *legacy) << stored;
    ASSERT_NE(providers[1], providers[0]) << stored;
  }
}

// --- Link maps ------------------------------------------------------------

Topology SmallCommunityTopology(size_t peers = 24, size_t communities = 4) {
  TopologyConfig config;
  config.kind = TopologyConfig::Kind::kCommunity;
  config.num_peers = peers;
  config.num_communities = communities;
  config.seed = 5;
  auto topology = GenerateTopology(config);
  EXPECT_TRUE(topology.ok()) << topology.status().ToString();
  return std::move(*topology);
}

TEST(LinkMapShapes, ClusteredWanSeparatesZonesOverATrunk) {
  Topology topology = SmallCommunityTopology();
  LinkMapConfig config;
  config.shape = LinkMapConfig::Shape::kClusteredWan;
  config.lan_latency_ms = 0.5;
  config.wan_latency_ms = 20.0;
  LinkMap map = GenerateLinkMap(topology, config);

  ASSERT_EQ(map.num_zones(), 4u);
  // Peers 0 and 1 share community 0; the last peer is in the last zone.
  EXPECT_DOUBLE_EQ(map.Get("P0", "P1").latency_ms, 0.5);
  EXPECT_DOUBLE_EQ(map.Get("P0", "P23").latency_ms, 20.0);
  // All cross-zone traffic between one zone pair shares a contention
  // domain; intra-zone links queue per node pair.
  EXPECT_EQ(map.TrunkKey("P0", "P23"), map.TrunkKey("P1", "P22"));
  EXPECT_NE(map.TrunkKey("P0", "P1"), map.TrunkKey("P2", "P3"));
  // The coordinator lands in its configured zone.
  EXPECT_DOUBLE_EQ(map.Get("@client", "P0").latency_ms, 0.5);
  EXPECT_DOUBLE_EQ(map.Get("@client", "P23").latency_ms, 20.0);
}

TEST(LinkMapShapes, HubSpokeChargesLeavesTheAccessUplink) {
  Topology topology = SmallCommunityTopology();
  LinkMapConfig config;
  config.shape = LinkMapConfig::Shape::kHubSpoke;
  config.lan_latency_ms = 0.5;
  config.leaf_access_ms = 2.0;
  LinkMap map = GenerateLinkMap(topology, config);

  // P0 is zone 0's hub (first peer of the zone): no uplink charge. P1 is
  // a leaf of the same zone: one endpoint uplink on the P0 link, two on a
  // leaf-to-leaf link.
  EXPECT_DOUBLE_EQ(map.AccessMs("P0"), 0.0);
  EXPECT_DOUBLE_EQ(map.AccessMs("P1"), 2.0);
  EXPECT_DOUBLE_EQ(map.Get("P0", "P1").latency_ms, 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(map.Get("P1", "P2").latency_ms, 0.5 + 2.0 + 2.0);
}

TEST(LinkMapShapes, MeshLatencyGrowsWithManhattanDistance) {
  Topology topology = SmallCommunityTopology(16, 1);
  LinkMapConfig config;
  config.shape = LinkMapConfig::Shape::kMesh;
  config.mesh_width = 4;
  config.lan_latency_ms = 1.0;
  LinkMap map = GenerateLinkMap(topology, config);

  // Row-major 4x4 grid: P0 at (0,0), P5 at (1,1), P15 at (3,3).
  EXPECT_DOUBLE_EQ(map.Get("P0", "P5").latency_ms, 2.0);
  EXPECT_DOUBLE_EQ(map.Get("P0", "P15").latency_ms, 6.0);
  // Co-located nodes still pay one hop (a link is never free).
  EXPECT_DOUBLE_EQ(map.Get("@client", "P0").latency_ms, 1.0);
}

TEST(LinkMapShapes, GenerationIsDeterministic) {
  Topology topology = SmallCommunityTopology();
  for (auto shape :
       {LinkMapConfig::Shape::kUniformLan, LinkMapConfig::Shape::kMesh,
        LinkMapConfig::Shape::kClusteredWan, LinkMapConfig::Shape::kHubSpoke}) {
    LinkMapConfig config;
    config.shape = shape;
    LinkMap a = GenerateLinkMap(topology, config);
    LinkMap b = GenerateLinkMap(topology, config);
    EXPECT_EQ(a.ToString(), b.ToString());
  }
}

TEST(LinkMapShapes, ZonePairOverrideBeatsTheDefaultTrunk) {
  LinkMap map;
  map.SetZone("a", 0);
  map.SetZone("b", 1);
  map.SetZone("c", 2);
  map.set_inter_props({20.0, 0, 0});
  map.SetZonePairProps(0, 1, {5.0, 0, 0});
  EXPECT_DOUBLE_EQ(map.Get("a", "b").latency_ms, 5.0);
  EXPECT_DOUBLE_EQ(map.Get("b", "a").latency_ms, 5.0);  // stored symmetric
  EXPECT_DOUBLE_EQ(map.Get("a", "c").latency_ms, 20.0);
}

// --- Network models -------------------------------------------------------

sim::Message ScanOfSize(size_t tuples) {
  sim::Message m;
  m.type = sim::Message::Type::kScanResponse;
  m.request_id = 1;
  m.relation = "r";
  m.arity = 2;
  for (size_t i = 0; i < tuples; ++i) {
    m.tuples.push_back({Value::Int(1), Value::Int(2)});
  }
  return m;
}

TEST(NetworkModelFactory, RejectsUnknownAndLinklessNonUniform) {
  EXPECT_TRUE(sim::NetworkModel::Create("uniform", nullptr).ok());
  EXPECT_TRUE(sim::NetworkModel::Create("", nullptr).ok());
  EXPECT_FALSE(sim::NetworkModel::Create("latency-bandwidth", nullptr).ok());
  EXPECT_FALSE(sim::NetworkModel::Create("contention", nullptr).ok());
  EXPECT_FALSE(sim::NetworkModel::Create("warp-drive", nullptr).ok());
}

TEST(NetworkModelFactory, UniformReproducesTheLegacyDelay) {
  auto model = sim::NetworkModel::Create("uniform", nullptr);
  ASSERT_TRUE(model.ok());
  sim::LinkFaults faults;
  faults.min_delay_ms = 3.0;
  Rng rng(1);
  // No jitter: the delay IS min_delay_ms, and the RNG is never consulted.
  double d = (*model)->DeliveryDelayMs("a", "b", ScanOfSize(0), 0.0, faults,
                                       &rng);
  EXPECT_DOUBLE_EQ(d, 3.0);
  // With jitter the draw matches the legacy formula against a twin RNG.
  faults.delay_jitter_ms = 4.0;
  Rng twin(99);
  Rng live(99);
  double expect = faults.min_delay_ms + twin.UniformDouble() * 4.0;
  EXPECT_DOUBLE_EQ((*model)->DeliveryDelayMs("a", "b", ScanOfSize(0), 0.0,
                                             faults, &live),
                   expect);
}

TEST(NetworkModelFactory, LatencyBandwidthGrowsWithMessageSize) {
  LinkMap links;
  links.SetZone("a", 0);
  links.SetZone("b", 1);
  links.set_inter_props({10.0, /*bytes_per_ms=*/100.0, 0});
  auto model = sim::NetworkModel::Create("latency-bandwidth", &links);
  ASSERT_TRUE(model.ok());
  sim::LinkFaults faults;
  faults.min_delay_ms = 1.0;  // ignored by non-uniform models
  Rng rng(1);
  double small = (*model)->DeliveryDelayMs("a", "b", ScanOfSize(1), 0.0,
                                           faults, &rng);
  double large = (*model)->DeliveryDelayMs("a", "b", ScanOfSize(100), 0.0,
                                           faults, &rng);
  EXPECT_GT(small, 10.0);  // latency plus some serialization
  EXPECT_GT(large, small);  // more bytes, more serialization delay
}

TEST(NetworkModelFactory, ContentionQueuesBackToBackTrunkMessages) {
  LinkMap links;
  links.SetZone("a", 0);
  links.SetZone("b", 1);
  links.SetZone("c", 1);
  links.set_inter_props({10.0, 0, /*per_message_ms=*/4.0});
  auto model = sim::NetworkModel::Create("contention", &links);
  ASSERT_TRUE(model.ok());
  sim::LinkFaults faults;
  Rng rng(1);
  const sim::Message m = ScanOfSize(0);
  // Same trunk (zone 0 -> zone 1): each message occupies it 4ms, so the
  // queue grows by 4ms per message on top of the 14ms base.
  double first = (*model)->DeliveryDelayMs("a", "b", m, 0.0, faults, &rng);
  double second = (*model)->DeliveryDelayMs("a", "c", m, 0.0, faults, &rng);
  double third = (*model)->DeliveryDelayMs("a", "b", m, 0.0, faults, &rng);
  EXPECT_DOUBLE_EQ(first, 14.0);
  EXPECT_DOUBLE_EQ(second, 18.0);
  EXPECT_DOUBLE_EQ(third, 22.0);
  // The queue drains with virtual time: at t=100 the trunk is idle again.
  double later = (*model)->DeliveryDelayMs("a", "b", m, 100.0, faults, &rng);
  EXPECT_DOUBLE_EQ(later, 14.0);
}

// --- Trace versioning and replay -----------------------------------------

TEST(SimTrace, HeaderNamesModelAndDeliveriesCarryDelay) {
  Topology topology = SmallCommunityTopology();
  LinkMapConfig link_config;
  link_config.shape = LinkMapConfig::Shape::kClusteredWan;
  LinkMap links = GenerateLinkMap(topology, link_config);

  sim::SimOptions options;
  options.seed = 21;
  options.network_model = "contention";
  options.links = &links;
  options.request_timeout_ms = 200.0;  // above the WAN round trip
  sim::SimPdms sim(topology.network, topology.data, options);
  auto result = sim.Answer(gen::TopologyQuery(20, 1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const std::string& trace = sim.last_trace();
  ASSERT_EQ(trace.rfind("# sim-trace v2 model=contention", 0), 0u)
      << trace.substr(0, 120);
  EXPECT_NE(trace.find("dly="), std::string::npos);

  // Replay: the same seed reproduces the trace byte for byte.
  sim::SimPdms again(topology.network, topology.data, options);
  auto rerun = again.Answer(gen::TopologyQuery(20, 1));
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(trace, again.last_trace());
  EXPECT_EQ(result->answers.ToString(), rerun->answers.ToString());
}

// --- Cost estimator -------------------------------------------------------

TEST(CostEstimatorTest, BlendsStaticCostWithLiveSrtt) {
  Topology topology = SmallCommunityTopology();
  LinkMapConfig link_config;
  link_config.shape = LinkMapConfig::Shape::kClusteredWan;
  link_config.lan_latency_ms = 0.5;
  link_config.wan_latency_ms = 20.0;
  LinkMap links = GenerateLinkMap(topology, link_config);

  PeerHealthTracker health;
  CostEstimator cold(&topology.network, &links, "@client", &health);
  // Static only (no samples): intra-zone RTT 1ms, cross-zone 40ms.
  EXPECT_DOUBLE_EQ(cold.StaticRttMs("P0"), 1.0);
  EXPECT_DOUBLE_EQ(cold.StaticRttMs("P23"), 40.0);
  EXPECT_DOUBLE_EQ(cold.PeerCostMs("P23"), 40.0);

  // A live SRTT sample pulls the estimate toward observed reality.
  health.RecordSuccess("P23", 0.0, 100.0);
  double srtt = health.SrttMs("P23");
  ASSERT_GT(srtt, 0.0);
  EXPECT_DOUBLE_EQ(cold.PeerCostMs("P23"), 0.5 * 40.0 + 0.5 * srtt);

  // Suspicion adds a penalty that dwarfs any static advantage.
  for (int i = 0; i < 10; ++i) health.RecordFailure("P0", 1.0);
  if (health.IsSuspected("P0")) {
    EXPECT_GT(cold.PeerCostMs("P0"), 1000.0);
  }
}

TEST(CostEstimatorTest, CheapestProviderPrefersTheNearReplica) {
  TopologyConfig config;
  config.kind = TopologyConfig::Kind::kCommunity;
  config.num_peers = 24;
  config.num_communities = 4;
  config.replicas = 1;
  config.seed = 5;
  auto topology = GenerateTopology(config);
  ASSERT_TRUE(topology.ok());

  LinkMapConfig link_config;
  link_config.shape = LinkMapConfig::Shape::kClusteredWan;
  LinkMap links = GenerateLinkMap(*topology, link_config);

  CostEstimator estimator(&topology->network, &links, "@client");
  size_t switched = 0;
  for (size_t i = 0; i < config.num_peers; ++i) {
    const std::string stored = gen::TopologyStoredName(i);
    std::vector<std::string> providers =
        topology->network.StoredRelationPeers(stored);
    ASSERT_EQ(providers.size(), 2u);
    auto cheapest = estimator.CheapestProvider(stored);
    ASSERT_TRUE(cheapest.ok());
    double best = estimator.PeerCostMs(*cheapest);
    for (const std::string& p : providers) {
      EXPECT_LE(best, estimator.PeerCostMs(p));
    }
    if (*cheapest != providers[0]) ++switched;
  }
  // The replica stride crosses communities, so relations whose primary
  // is remote but whose replica shares the coordinator's zone switch.
  EXPECT_GT(switched, 0u);
  // ScanCostMs is the providers' minimum, and unknown relations cost 0.
  EXPECT_DOUBLE_EQ(estimator.ScanCostMs("no_such_relation"), 0.0);
}

}  // namespace
}  // namespace pdms
