// PeerHealthTracker unit tests (suspicion threshold, probe backoff and
// cap, SRTT EWMA, the disabled mode) and SimPdms integration: a crashed
// peer is paid for once — consecutive failures suspect it, later queries
// skip it with zero messages, a probe per backoff window checks for
// recovery, and a hedge masks a dropped message to a known-fast peer.

#include "pdms/fault/peer_health.h"

#include <gtest/gtest.h>

#include <string>

#include "pdms/core/pdms.h"
#include "pdms/sim/sim_pdms.h"

namespace pdms {
namespace {

using sim::SimPdms;

PeerHealthConfig Enabled() {
  PeerHealthConfig config;
  config.enabled = true;
  config.suspicion_threshold = 2;
  config.probe_backoff_ms = 100.0;
  config.probe_backoff_multiplier = 2.0;
  config.max_probe_backoff_ms = 400.0;
  return config;
}

// --- Tracker unit tests ---

TEST(PeerHealthTracker, SuspectsAtThresholdAndSkipsInsideTheWindow) {
  PeerHealthTracker tracker(Enabled());
  EXPECT_EQ(tracker.Admit("P", 0.0), PeerGate::kSend);
  tracker.RecordFailure("P", 0.0);
  EXPECT_FALSE(tracker.IsSuspected("P"));  // one failure is not enough
  EXPECT_EQ(tracker.Admit("P", 1.0), PeerGate::kSend);
  tracker.RecordFailure("P", 1.0);
  EXPECT_TRUE(tracker.IsSuspected("P"));

  // Window open until 1.0 + 100: skips, counted.
  EXPECT_EQ(tracker.Admit("P", 50.0), PeerGate::kSkip);
  EXPECT_EQ(tracker.Admit("P", 100.9), PeerGate::kSkip);
  ASSERT_NE(tracker.Find("P"), nullptr);
  EXPECT_EQ(tracker.Find("P")->skips, 2u);
}

TEST(PeerHealthTracker, ProbeBackoffDoublesUpToTheCap) {
  PeerHealthTracker tracker(Enabled());
  tracker.RecordFailure("P", 0.0);
  tracker.RecordFailure("P", 0.0);  // suspected; window [0, 100)

  // First probe at 100 doubles the window to 200.
  EXPECT_EQ(tracker.Admit("P", 100.0), PeerGate::kProbe);
  EXPECT_EQ(tracker.Admit("P", 250.0), PeerGate::kSkip);  // < 100 + 200
  // Second probe at 300 doubles to the 400 cap; the third stays capped.
  EXPECT_EQ(tracker.Admit("P", 300.0), PeerGate::kProbe);
  EXPECT_EQ(tracker.Admit("P", 300.0 + 399.0), PeerGate::kSkip);
  EXPECT_EQ(tracker.Admit("P", 300.0 + 400.0), PeerGate::kProbe);
  EXPECT_DOUBLE_EQ(tracker.Find("P")->probe_backoff_ms, 400.0);
  EXPECT_EQ(tracker.Find("P")->probes, 3u);
}

TEST(PeerHealthTracker, OneSuccessClearsSuspicionAndBackoff) {
  PeerHealthTracker tracker(Enabled());
  tracker.RecordFailure("P", 0.0);
  tracker.RecordFailure("P", 0.0);
  ASSERT_TRUE(tracker.IsSuspected("P"));
  tracker.RecordSuccess("P", 100.0, 2.0);
  EXPECT_FALSE(tracker.IsSuspected("P"));
  EXPECT_EQ(tracker.Find("P")->consecutive_failures, 0u);
  EXPECT_EQ(tracker.Admit("P", 100.0), PeerGate::kSend);
  // Suspicion restarts from scratch: the threshold applies anew.
  tracker.RecordFailure("P", 101.0);
  EXPECT_FALSE(tracker.IsSuspected("P"));
}

TEST(PeerHealthTracker, SrttIsAnEwmaSeededByTheFirstSample) {
  PeerHealthConfig config = Enabled();
  config.srtt_alpha = 0.5;
  PeerHealthTracker tracker(config);
  EXPECT_DOUBLE_EQ(tracker.SrttMs("P"), 0.0);  // no sample yet
  tracker.RecordSuccess("P", 0.0, 10.0);
  EXPECT_DOUBLE_EQ(tracker.SrttMs("P"), 10.0);  // first sample taken whole
  tracker.RecordSuccess("P", 1.0, 20.0);
  EXPECT_DOUBLE_EQ(tracker.SrttMs("P"), 15.0);  // 0.5*10 + 0.5*20
}

TEST(PeerHealthTracker, DisabledTrackerAlwaysSendsButStillCounts) {
  PeerHealthConfig config;  // enabled = false
  config.suspicion_threshold = 1;
  PeerHealthTracker tracker(config);
  tracker.RecordFailure("P", 0.0);
  tracker.RecordFailure("P", 0.0);
  EXPECT_FALSE(tracker.IsSuspected("P"));
  EXPECT_EQ(tracker.Admit("P", 0.0), PeerGate::kSend);
  EXPECT_EQ(tracker.Find("P")->failures, 2u);
}

TEST(PeerHealthTracker, SessionClockIsMonotonicAndResettable) {
  PeerHealthTracker tracker(Enabled());
  tracker.AdvanceClock(5.0);
  tracker.AdvanceClock(-3.0);  // ignored: the clock never goes back
  EXPECT_DOUBLE_EQ(tracker.now_ms(), 5.0);
  tracker.RecordFailure("P", tracker.now_ms());
  tracker.Reset();
  EXPECT_DOUBLE_EQ(tracker.now_ms(), 0.0);
  EXPECT_EQ(tracker.Find("P"), nullptr);
}

TEST(PeerHealthTracker, ToStringNamesEveryTrackedPeer) {
  PeerHealthTracker tracker(Enabled());
  tracker.RecordSuccess("A", 0.0, 2.0);
  tracker.RecordFailure("B", 0.0);
  tracker.RecordFailure("B", 0.0);
  std::string s = tracker.ToString();
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("B"), std::string::npos);
  EXPECT_NE(s.find("SUSPECTED"), std::string::npos);
}

// --- SimPdms integration ---

Pdms MakeCentral() {
  Pdms pdms;
  auto status = pdms.LoadProgram(R"(
    peer H { relation Doctor(name, hospital); }
    peer W { relation Staff(name, ward); }
    stored h_doc(n, h) <= H:Doctor(n, h).
    stored w_staff(n, w) <= W:Staff(n, w).
    fact h_doc("ada", "st. mary").
    fact w_staff("bob", "icu").
  )");
  EXPECT_TRUE(status.ok()) << status.ToString();
  return pdms;
}

TEST(SimPdmsHealth, CrashedPeerIsSuspectedThenSkippedThenProbedBack) {
  Pdms central = MakeCentral();
  PeerHealthConfig config = Enabled();
  config.probe_backoff_ms = 500.0;  // outlasts several short queries
  config.max_probe_backoff_ms = 500.0;
  PeerHealthTracker tracker(config);

  auto query = [&](SimPdms& sim) {
    sim.set_health(&tracker);
    auto got = sim.Answer("q(n) :- H:Doctor(n, h).");
    EXPECT_TRUE(got.ok());
    return *got;
  };

  // Two crashed queries pay the timeout ladder and reach the threshold.
  SimPdms sim(central.network(), central.database());
  sim.SetPeerCrashed("H", true);
  auto first = query(sim);
  EXPECT_GT(first.degradation.messages.request_timeouts, 0u);
  EXPECT_FALSE(tracker.IsSuspected("H"));
  auto second = query(sim);
  EXPECT_TRUE(tracker.IsSuspected("H"));

  // The third query fails fast: zero messages to H, zero timeouts.
  auto third = query(sim);
  EXPECT_EQ(third.degradation.messages.request_timeouts, 0u);
  EXPECT_EQ(third.degradation.messages.skipped_suspected, 1u);
  // The only source was skipped, so nothing at all came back.
  EXPECT_EQ(third.degradation.completeness,
            Completeness::kEmptyBecauseUnavailable);
  EXPECT_NE(sim.last_trace().find("skip"), std::string::npos);

  // The peer recovers, but the probe window is still open: skipped again.
  sim.SetPeerCrashed("H", false);
  auto fourth = query(sim);
  EXPECT_EQ(fourth.degradation.messages.skipped_suspected, 1u);

  // Past the window the single probe goes through, succeeds, and clears
  // the suspicion — the next query is served normally.
  tracker.AdvanceClock(600.0);
  auto fifth = query(sim);
  EXPECT_EQ(fifth.degradation.completeness, Completeness::kComplete);
  EXPECT_FALSE(tracker.IsSuspected("H"));
  EXPECT_NE(sim.last_trace().find("probe"), std::string::npos);
  ASSERT_NE(tracker.Find("H"), nullptr);
  EXPECT_EQ(tracker.Find("H")->probes, 1u);
  EXPECT_GT(tracker.SrttMs("H"), 0.0);
}

TEST(SimPdmsHealth, HedgeFiresWhenAResponseIsOverdueBySrtt) {
  Pdms central = MakeCentral();
  PeerHealthTracker tracker(Enabled());

  // A clean query establishes an SRTT of a couple of virtual ms.
  SimPdms sim(central.network(), central.database());
  sim.set_health(&tracker);
  ASSERT_TRUE(sim.Answer("q(n) :- H:Doctor(n, h).").ok());
  double srtt = tracker.SrttMs("H");
  ASSERT_GT(srtt, 0.0);
  ASSERT_LT(3.0 * srtt, sim.options().request_timeout_ms);

  // Now every message is lost: the hedge fires at 3 SRTTs, well before
  // the 10ms timeout, and is counted even though it is lost too.
  sim.mutable_options()->faults.drop_probability = 1.0;
  auto got = sim.Answer("q(n) :- H:Doctor(n, h).");
  ASSERT_TRUE(got.ok());
  EXPECT_GT(got->degradation.messages.hedges, 0u);
  EXPECT_NE(sim.last_trace().find("hedge"), std::string::npos);
}

TEST(SimPdmsHealth, NullAndDisabledTrackersKeepPreHealthBehavior) {
  Pdms central = MakeCentral();

  // Baseline: no tracker at all.
  SimPdms plain(central.network(), central.database());
  plain.SetPeerCrashed("H", true);
  auto base = plain.Answer("q(n) :- H:Doctor(n, h).");
  ASSERT_TRUE(base.ok());

  // A disabled tracker observes but never gates: same trace bytes.
  PeerHealthTracker disabled;  // default config: enabled = false
  SimPdms watched(central.network(), central.database());
  watched.SetPeerCrashed("H", true);
  watched.set_health(&disabled);
  auto seen = watched.Answer("q(n) :- H:Doctor(n, h).");
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(plain.last_trace(), watched.last_trace());
  EXPECT_EQ(seen->degradation.messages.request_timeouts,
            base->degradation.messages.request_timeouts);
  // It still learned about the failure, for operators who ask.
  ASSERT_NE(disabled.Find("H"), nullptr);
  EXPECT_EQ(disabled.Find("H")->failures, 1u);
}

}  // namespace
}  // namespace pdms
