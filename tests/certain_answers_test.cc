// Tests for the chase-based certain-answer oracle (Definition 2.2), and
// for agreement between the reformulation algorithm and the oracle on the
// tractable fragments of Section 3.

#include <gtest/gtest.h>

#include "pdms/core/pdms.h"

namespace pdms {
namespace {

TEST(CertainAnswers, StorageProjectionLosesColumns) {
  // The stored relation projects the peer relation; the missing column is
  // a labeled null in the chase, so queries asking for it get nothing,
  // while queries over surviving columns succeed.
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation R(x, y); }
    stored s(x) <= A:R(x, y).
    fact s(1).
  )").ok());
  auto q1 = pdms.ParseQuery("q(x) :- A:R(x, y).");
  ASSERT_TRUE(q1.ok());
  auto certain1 = pdms.CertainAnswersOracle(*q1);
  ASSERT_TRUE(certain1.ok()) << certain1.status().ToString();
  EXPECT_TRUE(certain1->Contains({Value::Int(1)}));
  auto q2 = pdms.ParseQuery("q(y) :- A:R(x, y).");
  ASSERT_TRUE(q2.ok());
  auto certain2 = pdms.CertainAnswersOracle(*q2);
  ASSERT_TRUE(certain2.ok());
  EXPECT_TRUE(certain2->empty());  // the y value is unknown
}

TEST(CertainAnswers, TransitiveMappings) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer TOP { relation T(x, y); }
    peer MID { relation M(x, y); }
    peer BOT { relation B(x, y); }
    mapping TOP:T(x, y) :- MID:M(x, y).
    mapping (x, y) : BOT:B(x, y) <= MID:M(x, y).
    stored sb(x, y) <= BOT:B(x, y).
    fact sb(1, 2).
  )").ok());
  auto q = pdms.ParseQuery("q(x, y) :- TOP:T(x, y).");
  ASSERT_TRUE(q.ok());
  auto certain = pdms.CertainAnswersOracle(*q);
  ASSERT_TRUE(certain.ok());
  EXPECT_TRUE(certain->Contains({Value::Int(1), Value::Int(2)}));
}

TEST(CertainAnswers, AgreesWithReformulationOnFigure2) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer FS {
      relation SameEngine(f1, f2, e);
      relation AssignedTo(f, e);
      relation Skill(f, s);
      relation SameSkill(f1, f2);
      relation Sched(f, start, end);
    }
    mapping FS:SameEngine(f1, f2, e) :-
        FS:AssignedTo(f1, e), FS:AssignedTo(f2, e).
    mapping (f1, f2) :
        FS:SameSkill(f1, f2) <= FS:Skill(f1, s), FS:Skill(f2, s).
    stored s1(f, e, st) <= FS:AssignedTo(f, e), FS:Sched(f, st, end).
    stored s2(f1, f2) = FS:SameSkill(f1, f2).
    fact s1(101, 12, 700).
    fact s1(102, 12, 700).
    fact s1(103, 19, 700).
    fact s2(101, 102).
    fact s2(103, 103).
  )").ok());
  auto q = pdms.ParseQuery(
      "Q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), "
      "FS:Skill(f2, s).");
  ASSERT_TRUE(q.ok());
  auto via_reformulation = pdms.Answer(*q);
  auto via_oracle = pdms.CertainAnswersOracle(*q);
  ASSERT_TRUE(via_reformulation.ok());
  ASSERT_TRUE(via_oracle.ok()) << via_oracle.status().ToString();
  // Same answer sets.
  EXPECT_EQ(via_reformulation->size(), via_oracle->size())
      << "reformulation:\n"
      << via_reformulation->ToString() << "\noracle:\n"
      << via_oracle->ToString();
  for (const Tuple& t : via_oracle->tuples()) {
    EXPECT_TRUE(via_reformulation->Contains(t)) << TupleToString(t);
  }
}

TEST(CertainAnswers, EqualityPeerMappingFlowsBothWays) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping (x, y) : A:R(x, y) = B:S(x, y).
    stored sa(x, y) <= A:R(x, y).
    stored sb(x, y) <= B:S(x, y).
    fact sa(1, 1).
    fact sb(2, 2).
  )").ok());
  auto q = pdms.ParseQuery("q(x, y) :- A:R(x, y).");
  ASSERT_TRUE(q.ok());
  auto certain = pdms.CertainAnswersOracle(*q);
  ASSERT_TRUE(certain.ok());
  EXPECT_TRUE(certain->Contains({Value::Int(1), Value::Int(1)}));
  EXPECT_TRUE(certain->Contains({Value::Int(2), Value::Int(2)}));
  // The reformulation algorithm must reach both too.
  auto answers = pdms.Answer(*q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
}

TEST(CertainAnswers, ConclusionComparisonsUnsupported) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) <= A:R(x, y), x < 5.
  )").ok());
  auto q = pdms.ParseQuery("q(x, y) :- A:R(x, y).");
  ASSERT_TRUE(q.ok());
  auto certain = pdms.CertainAnswersOracle(*q);
  EXPECT_FALSE(certain.ok());
  EXPECT_EQ(certain.status().code(), StatusCode::kUnsupported);
}

TEST(CertainAnswers, PremiseComparisonsSupported) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation R(x, y); relation Big(x, y); }
    mapping A:Big(x, y) :- A:R(x, y), x > 10.
    stored s(x, y) <= A:R(x, y).
    fact s(5, 5).
    fact s(20, 20).
  )").ok());
  auto q = pdms.ParseQuery("q(x, y) :- A:Big(x, y).");
  ASSERT_TRUE(q.ok());
  auto certain = pdms.CertainAnswersOracle(*q);
  ASSERT_TRUE(certain.ok()) << certain.status().ToString();
  EXPECT_EQ(certain->size(), 1u);
  EXPECT_TRUE(certain->Contains({Value::Int(20), Value::Int(20)}));
}

TEST(CertainAnswers, NonTerminatingSpecSurfacesError) {
  // A projecting equality creates a null-generating cycle: A:R(x,y) =
  // B:S(y,x) with swapped columns chases forever... use a genuinely
  // diverging spec: R(x,y) ⊆ R(y,z) style self-feeding inclusion.
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation R(x, y); }
    mapping (x, y) : A:R(x, y) <= A:R(y, w), A:R(x, v).
    stored s(x, y) <= A:R(x, y).
    fact s(1, 2).
  )").ok());
  auto q = pdms.ParseQuery("q(x, y) :- A:R(x, y).");
  ASSERT_TRUE(q.ok());
  ChaseOptions opts;
  opts.max_rounds = 30;
  opts.max_tuples = 500;
  auto certain = pdms.CertainAnswersOracle(*q, opts);
  EXPECT_FALSE(certain.ok());
  EXPECT_EQ(certain.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace pdms
