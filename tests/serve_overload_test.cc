// End-to-end tests for the networked serving stack (serve/server.h):
// loopback answers byte-identical to in-process serving, a deterministic
// ~2x-capacity overload burst that must shed cleanly instead of falling
// over, and the abuse battery — malformed frames, checksum corruption,
// oversized payloads, server-only frame types, slow-loris trickles, and
// mid-request disconnects — all of which the server must survive with
// the right counters. tools/ci.sh runs this binary under TSan as the
// concurrent-server race check.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pdms/core/pdms.h"
#include "pdms/obs/metrics.h"
#include "pdms/serve/client.h"
#include "pdms/serve/executor.h"
#include "pdms/serve/server.h"
#include "pdms/serve/wire.h"
#include "pdms/util/check.h"

namespace pdms {
namespace serve {
namespace {

constexpr const char* kProgram = R"(
peer Hospital { relation Doctor(name, hospital); }
peer Clinic { relation Physician(name, clinic); }
stored hdoc(name, hospital) <= Hospital:Doctor(name, hospital).
mapping Clinic:Physician(n, c) :- Hospital:Doctor(n, c).
fact hdoc("alice", "county").
fact hdoc("bo", "mercy").
)";

constexpr const char* kQuery = "q(n, h) :- Hospital:Doctor(n, h).";

// A running server over the demo network plus the registry observing it.
class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options) {
    Status loaded = loader_.LoadProgram(kProgram);
    PDMS_CHECK_MSG(loaded.ok(), loaded.ToString().c_str());
    options.port = 0;  // ephemeral
    server_ = std::make_unique<PplServer>(options, &metrics_);
    Status started = server_->Start(loader_.network(), loader_.database());
    PDMS_CHECK_MSG(started.ok(), started.ToString().c_str());
  }

  PplServer* server() { return server_.get(); }
  uint16_t port() const { return server_->port(); }
  obs::MetricsRegistry* metrics() { return &metrics_; }
  Pdms* loader() { return &loader_; }

  void Connect(Client* client, double io_timeout_ms = 10000) {
    Status status = client->Connect("127.0.0.1", port(), io_timeout_ms);
    PDMS_CHECK_MSG(status.ok(), status.ToString().c_str());
  }

  // Spins until `counter` reaches at least `want` (worker completions
  // land asynchronously via the self-pipe) or ~5s pass.
  bool WaitForCounter(const std::string& counter, uint64_t want) {
    for (int i = 0; i < 1000; ++i) {
      if (metrics_.counter(counter) >= want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

 private:
  Pdms loader_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<PplServer> server_;
};

// The answer the in-process engine produces for `query`, framed exactly
// as the server frames it, with the volatile server_ms field zeroed.
std::string ExpectedAnswerBytes(uint64_t request_id,
                                const std::string& query) {
  ReformulationOptions options;
  options.threads = 1;  // the server's worker facades are serial
  Pdms pdms(options);
  Status loaded = pdms.LoadProgram(kProgram);
  PDMS_CHECK_MSG(loaded.ok(), loaded.ToString().c_str());
  Result<AnswerResult> result = pdms.AnswerWithReport(query);
  wire::AnswerFrame frame = MakeAnswerFrame(request_id, result, 0.0);
  return wire::EncodeAnswer(frame);
}

std::string NormalizedAnswerBytes(wire::AnswerFrame answer) {
  answer.server_ms = 0.0;
  return wire::EncodeAnswer(answer);
}

TEST(Serving, LoopbackAnswerIsByteIdenticalToInProcess) {
  ServerFixture fixture((ServerOptions()));
  Client client;
  fixture.Connect(&client);

  ASSERT_TRUE(client.Ping().ok());
  auto reply = client.Query(kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_FALSE(reply->shed);
  EXPECT_EQ(reply->answer.status_code, 0u);
  EXPECT_GT(reply->answer.server_ms, 0.0);
  EXPECT_EQ(NormalizedAnswerBytes(reply->answer),
            ExpectedAnswerBytes(reply->answer.request_id, kQuery));

  // A second query hits the shared plan cache; bytes must not change.
  auto again = client.Query(kQuery);
  ASSERT_TRUE(again.ok());
  ASSERT_FALSE(again->shed);
  EXPECT_EQ(NormalizedAnswerBytes(again->answer),
            ExpectedAnswerBytes(again->answer.request_id, kQuery));

  client.Close();
  fixture.server()->Stop();
  EXPECT_EQ(fixture.metrics()->counter("serve.requests"), 2u);
  EXPECT_EQ(fixture.metrics()->counter("serve.completed"), 2u);
  EXPECT_EQ(fixture.metrics()->counter("serve.protocol_errors"), 0u);
}

TEST(Serving, QueryErrorsTravelTheWireAsStatusCodes) {
  ServerFixture fixture((ServerOptions()));
  Client client;
  fixture.Connect(&client);
  auto reply = client.Query("this is not a conjunctive query");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_FALSE(reply->shed);
  EXPECT_NE(reply->answer.status_code, 0u);
  EXPECT_FALSE(reply->answer.status().ok());
  EXPECT_TRUE(reply->answer.tuples.empty());
}

// The deterministic overload drill: one worker padded to a 20ms service
// floor (capacity 50 qps), admission queue bounded at 4, and a client
// that fires a 40-query pipelined burst — roughly 2x what the queue and
// worker can absorb before the first completion. The server must answer
// some, shed the rest with well-formed retry-after frames, keep the
// queue bounded, and never crash or corrupt an answer.
TEST(Serving, OverloadBurstShedsCleanlyAndAnswersStayCorrect) {
  ServerOptions options;
  options.executor.workers = 1;
  options.executor.service_floor_ms = 20;
  options.executor.admission.max_queue = 4;
  ServerFixture fixture(options);
  Client client;
  fixture.Connect(&client);

  constexpr uint64_t kBurst = 40;
  std::string burst;
  for (uint64_t id = 1; id <= kBurst; ++id) {
    wire::QueryFrame query;
    query.request_id = id;
    query.budget_ms = 0;  // no deadline: only queue-full shedding here
    query.query = kQuery;
    burst += wire::EncodeQuery(query);
  }
  ASSERT_TRUE(client.SendRaw(burst).ok());

  const std::string expected_payload =
      ExpectedAnswerBytes(0, kQuery).substr(wire::kHeaderBytes +
                                            /*request_id*/ 8);
  std::map<uint64_t, int> seen;  // request_id -> replies (must be 1)
  uint64_t answers = 0;
  uint64_t sheds = 0;
  for (uint64_t i = 0; i < kBurst; ++i) {
    auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    if (frame->type == wire::FrameType::kAnswer) {
      auto answer = wire::DecodeAnswer(*frame);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      ++seen[answer->request_id];
      ++answers;
      // Every admitted request's answer is byte-identical to in-process
      // serving (modulo its id and timing field).
      EXPECT_EQ(NormalizedAnswerBytes(*answer).substr(wire::kHeaderBytes + 8),
                expected_payload)
          << "request " << answer->request_id;
    } else {
      ASSERT_EQ(frame->type, wire::FrameType::kShed);
      auto shed = wire::DecodeShed(*frame);
      ASSERT_TRUE(shed.ok()) << shed.status().ToString();
      ++seen[shed->request_id];
      ++sheds;
      EXPECT_EQ(shed->reason, wire::ShedReason::kQueueFull);
      EXPECT_GE(shed->retry_after_ms,
                options.executor.admission.retry_after_floor_ms);
      EXPECT_LE(shed->queue_depth, 4u);
      EXPECT_EQ(shed->message, "admission queue full");
    }
  }

  // Exactly one response per request, none dropped, none duplicated.
  EXPECT_EQ(answers + sheds, kBurst);
  EXPECT_EQ(seen.size(), kBurst);
  for (const auto& [id, count] : seen) {
    EXPECT_EQ(count, 1) << "request " << id;
  }
  // The burst outran a 4-deep queue on a 20ms floor: both outcomes must
  // actually occur, and admissions stay near the queue bound (the burst
  // lands in well under the time the worker needs to drain it).
  EXPECT_GE(sheds, kBurst / 2);
  EXPECT_GE(answers, 1u);

  client.Close();
  fixture.server()->Stop();
  const auto counters = fixture.metrics()->counters();
  EXPECT_EQ(counters.at("serve.requests"), kBurst);
  EXPECT_EQ(counters.at("serve.shed_queue_full"), sheds);
  EXPECT_EQ(counters.at("serve.completed"), answers);
  EXPECT_EQ(fixture.metrics()->counter("serve.protocol_errors"), 0u);
  EXPECT_EQ(fixture.metrics()->counter("serve.slow_consumer_closed"), 0u);
}

TEST(Serving, DeadlineBudgetsShedUnderOverload) {
  // Same drill but every request carries a 5ms budget against a 30ms
  // floor: whatever is not shed for queue depth is shed for deadline —
  // at admission (expected wait too long once the EWMA learns the floor)
  // or at dequeue (expired while queued). At most one early request per
  // worker can complete before the estimate catches up.
  ServerOptions options;
  options.executor.workers = 1;
  options.executor.service_floor_ms = 30;
  options.executor.admission.max_queue = 8;
  ServerFixture fixture(options);
  Client client;
  fixture.Connect(&client);

  constexpr uint64_t kBurst = 12;
  std::string burst;
  for (uint64_t id = 1; id <= kBurst; ++id) {
    wire::QueryFrame query;
    query.request_id = id;
    query.budget_ms = 5;
    query.query = kQuery;
    burst += wire::EncodeQuery(query);
  }
  ASSERT_TRUE(client.SendRaw(burst).ok());

  uint64_t deadline_sheds = 0;
  for (uint64_t i = 0; i < kBurst; ++i) {
    auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    if (frame->type != wire::FrameType::kShed) continue;
    auto shed = wire::DecodeShed(*frame);
    ASSERT_TRUE(shed.ok());
    if (shed->reason == wire::ShedReason::kDeadline) ++deadline_sheds;
  }
  EXPECT_GE(deadline_sheds, kBurst / 2);
  client.Close();
  fixture.server()->Stop();
  EXPECT_EQ(fixture.metrics()->counter("serve.shed_deadline"),
            deadline_sheds);
}

TEST(Serving, MalformedFrameClosesOnlyThatConnection) {
  ServerFixture fixture((ServerOptions()));
  Client victim;
  fixture.Connect(&victim);
  ASSERT_TRUE(victim.SendRaw("this is definitely not a PDMS frame").ok());
  auto frame = victim.ReadFrame();
  EXPECT_FALSE(frame.ok());  // server closed the connection

  // The server is unharmed: a fresh connection gets real answers.
  Client fresh;
  fixture.Connect(&fresh);
  auto reply = fresh.Query(kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->shed);
  EXPECT_GE(fixture.metrics()->counter("serve.protocol_errors"), 1u);
}

TEST(Serving, ChecksumCorruptionIsAProtocolError) {
  ServerFixture fixture((ServerOptions()));
  Client client;
  fixture.Connect(&client);
  wire::QueryFrame query;
  query.request_id = 1;
  query.query = kQuery;
  std::string bytes = wire::EncodeQuery(query);
  bytes[bytes.size() - 1] ^= 0x40;
  ASSERT_TRUE(client.SendRaw(bytes).ok());
  EXPECT_FALSE(client.ReadFrame().ok());
  fixture.server()->Stop();
  EXPECT_GE(fixture.metrics()->counter("serve.protocol_errors"), 1u);
}

TEST(Serving, OversizedDeclaredPayloadIsRejectedFromTheHeader) {
  ServerOptions options;
  options.limits.max_payload_bytes = 1024;
  ServerFixture fixture(options);
  Client client;
  fixture.Connect(&client);
  // A valid header declaring a 256MiB payload, with no payload behind
  // it: the server must reject on the declaration, not buffer toward it.
  wire::QueryFrame query;
  query.request_id = 1;
  query.query = kQuery;
  std::string bytes = wire::EncodeQuery(query).substr(0, wire::kHeaderBytes);
  const uint32_t huge = 256u << 20;
  std::memcpy(&bytes[8], &huge, sizeof(huge));
  ASSERT_TRUE(client.SendRaw(bytes).ok());
  EXPECT_FALSE(client.ReadFrame().ok());
  fixture.server()->Stop();
  EXPECT_GE(fixture.metrics()->counter("serve.protocol_errors"), 1u);
}

TEST(Serving, ServerOnlyFrameTypesFromClientsAreRejected) {
  ServerFixture fixture((ServerOptions()));
  Client client;
  fixture.Connect(&client);
  wire::ShedFrame shed;
  shed.request_id = 1;
  ASSERT_TRUE(client.SendRaw(wire::EncodeShed(shed)).ok());
  EXPECT_FALSE(client.ReadFrame().ok());
  EXPECT_GE(fixture.metrics()->counter("serve.protocol_errors"), 1u);
}

TEST(Serving, SlowLorisTricklerIsDisconnected) {
  ServerOptions options;
  options.read_deadline_ms = 150;
  ServerFixture fixture(options);
  Client client;
  fixture.Connect(&client);
  // Half a frame, then silence: the partial-frame clock starts at the
  // first byte and never resets, so the server must cut the connection.
  wire::QueryFrame query;
  query.request_id = 1;
  query.query = kQuery;
  std::string bytes = wire::EncodeQuery(query);
  ASSERT_TRUE(client.SendRaw(bytes.substr(0, bytes.size() / 2)).ok());
  auto frame = client.ReadFrame();  // blocks until the server closes
  EXPECT_FALSE(frame.ok());
  EXPECT_TRUE(fixture.WaitForCounter("serve.read_timeouts", 1));
}

TEST(Serving, MidRequestDisconnectOrphansTheAnswer) {
  ServerOptions options;
  options.executor.workers = 1;
  options.executor.service_floor_ms = 50;
  ServerFixture fixture(options);
  Client client;
  fixture.Connect(&client);
  wire::QueryFrame query;
  query.request_id = 1;
  query.query = kQuery;
  ASSERT_TRUE(client.SendRaw(wire::EncodeQuery(query)).ok());
  // Wait until the request is in the worker, then vanish.
  ASSERT_TRUE(fixture.WaitForCounter("serve.admitted", 1));
  client.Close();
  // The worker finishes anyway; the completion finds no connection and
  // is dropped without hurting anyone.
  EXPECT_TRUE(fixture.WaitForCounter("serve.orphaned_responses", 1));
  fixture.server()->Stop();
  EXPECT_EQ(fixture.metrics()->counter("serve.completed"), 1u);
}

TEST(Serving, ScanRequestsServeStoredRelationsLikeASimPeer) {
  ServerFixture fixture((ServerOptions()));
  Client client;
  fixture.Connect(&client);
  auto scan = client.ScanRelation("hdoc");
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->status.ok());
  EXPECT_EQ(scan->arity, 2u);
  ASSERT_EQ(scan->tuples.size(), 2u);
  const Relation* local = fixture.loader()->database().Find("hdoc");
  ASSERT_NE(local, nullptr);
  EXPECT_EQ(scan->tuples, local->tuples());

  auto missing = client.ScanRelation("no_such_relation");
  ASSERT_TRUE(missing.ok());  // transport ok, payload carries the error
  EXPECT_FALSE(missing->status.ok());
  EXPECT_TRUE(missing->tuples.empty());
}

TEST(Serving, ConcurrentClientsShareTheServerSafely) {
  // The TSan target: several client threads hammer one server with
  // queries, pings, and scans while two workers evaluate through the
  // shared caches. Correctness here is "every reply matches its request
  // and nothing races"; TSan supplies the latter.
  ServerOptions options;
  options.executor.workers = 2;
  ServerFixture fixture(options);
  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&fixture, &failures] {
      Client client;
  fixture.Connect(&client);
      for (int i = 0; i < kPerClient; ++i) {
        auto reply = client.Query(kQuery);
        if (!reply.ok() || reply->shed ||
            reply->answer.tuples.size() != 2) {
          ++failures;
          return;
        }
        if (!client.Ping().ok()) {
          ++failures;
          return;
        }
        auto scan = client.ScanRelation("hdoc");
        if (!scan.ok() || scan->tuples.size() != 2) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  fixture.server()->Stop();
  EXPECT_EQ(fixture.metrics()->counter("serve.completed"),
            static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(fixture.metrics()->counter("serve.protocol_errors"), 0u);
}

}  // namespace
}  // namespace serve
}  // namespace pdms
