// Tests for the Pdms facade: incremental loading, validation at the API
// boundary, option plumbing, and end-to-end behavior.

#include "pdms/core/pdms.h"

#include <gtest/gtest.h>

namespace pdms {
namespace {

Pdms MakeSmallPdms() {
  Pdms pdms;
  Status s = pdms.LoadProgram(R"(
    peer A { relation R(x, y); }
    stored sr(x, y) <= A:R(x, y).
    fact sr(1, 2).
  )");
  EXPECT_TRUE(s.ok()) << s.ToString();
  return pdms;
}

TEST(Pdms, AnswerFromText) {
  Pdms pdms = MakeSmallPdms();
  auto answers = pdms.Answer("q(x, y) :- A:R(x, y).");
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
  EXPECT_TRUE(answers->Contains({Value::Int(1), Value::Int(2)}));
}

TEST(Pdms, InsertValidatesCatalog) {
  Pdms pdms = MakeSmallPdms();
  EXPECT_TRUE(pdms.Insert("sr", {Value::Int(3), Value::Int(4)}).ok());
  // Unknown stored relation.
  Status s = pdms.Insert("nope", {Value::Int(1)});
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  // Arity mismatch.
  s = pdms.Insert("sr", {Value::Int(1)});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  auto answers = pdms.Answer("q(x, y) :- A:R(x, y).");
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
}

TEST(Pdms, ParseQueryValidatesRelations) {
  Pdms pdms = MakeSmallPdms();
  EXPECT_TRUE(pdms.ParseQuery("q(x) :- A:R(x, y).").ok());
  // Queries may also target stored relations directly.
  EXPECT_TRUE(pdms.ParseQuery("q(x) :- sr(x, y).").ok());
  auto bad = pdms.ParseQuery("q(x) :- A:Missing(x).");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  auto bad_arity = pdms.ParseQuery("q(x) :- A:R(x).");
  EXPECT_FALSE(bad_arity.ok());
  EXPECT_EQ(bad_arity.status().code(), StatusCode::kInvalidArgument);
  auto bad_syntax = pdms.ParseQuery("q(x) :-");
  EXPECT_FALSE(bad_syntax.ok());
}

TEST(Pdms, QueriesOverStoredRelationsEvaluateDirectly) {
  Pdms pdms = MakeSmallPdms();
  auto answers = pdms.Answer("q(y) :- sr(1, y).");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_TRUE(answers->Contains({Value::Int(2)}));
}

TEST(Pdms, IncrementalExtension) {
  // The PDMS's reason for being: new peers join and immediately benefit
  // from existing mappings.
  Pdms pdms = MakeSmallPdms();
  auto before = pdms.Answer("q(x, y) :- A:R(x, y).");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 1u);
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) <= A:R(x, y).
    stored sb(x, y) <= B:S(x, y).
    fact sb(7, 8).
  )").ok());
  auto after = pdms.Answer("q(x, y) :- A:R(x, y).");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 2u);  // B's data now flows into A's schema
  EXPECT_TRUE(after->Contains({Value::Int(7), Value::Int(8)}));
}

TEST(Pdms, MutatingNetworkInvalidatesReformulator) {
  Pdms pdms = MakeSmallPdms();
  ASSERT_TRUE(pdms.Answer("q(x, y) :- A:R(x, y).").ok());
  // Direct catalog mutation through mutable_network must reset caches.
  ASSERT_TRUE(pdms.mutable_network()
                  ->AddPeer("C", {{"T", 1}})
                  .ok());
  PeerMapping pm;
  pm.kind = PeerMappingKind::kDefinitional;
  auto rule = pdms.ParseQuery("q(x) :- A:R(x, x).");
  ASSERT_TRUE(rule.ok());
  pm.rule = Rule(Atom("C:T", {Term::Var("x")}), rule->body());
  ASSERT_TRUE(pdms.mutable_network()->AddPeerMapping(std::move(pm)).ok());
  auto answers = pdms.Answer("q(x) :- C:T(x).");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_TRUE(answers->empty());  // no (v, v) tuple stored
  ASSERT_TRUE(pdms.Insert("sr", {Value::Int(5), Value::Int(5)}).ok());
  auto answers2 = pdms.Answer("q(x) :- C:T(x).");
  ASSERT_TRUE(answers2.ok());
  EXPECT_TRUE(answers2->Contains({Value::Int(5)}));
}

TEST(Pdms, SetOptionsDoesNotResurrectStaleNormalization) {
  // Regression test: grab the network pointer once, query (priming the
  // cached reformulator), then mutate the catalog through the *stored*
  // pointer and change options. The re-query must reformulate against the
  // new catalog — previously set_options re-primed the reformulator built
  // from the stale normalized network.
  Pdms pdms = MakeSmallPdms();
  PdmsNetwork* network = pdms.mutable_network();
  ASSERT_TRUE(pdms.Answer("q(x, y) :- A:R(x, y).").ok());

  ASSERT_TRUE(network->AddPeer("D", {{"U", 2}}).ok());
  PeerMapping pm;
  pm.kind = PeerMappingKind::kDefinitional;
  pm.rule = Rule(Atom("D:U", {Term::Var("x"), Term::Var("y")}),
                 {Atom("A:R", {Term::Var("x"), Term::Var("y")})});
  ASSERT_TRUE(network->AddPeerMapping(std::move(pm)).ok());

  ReformulationOptions options;
  options.remove_redundant = true;
  pdms.set_options(options);

  auto answers = pdms.Answer("q(x, y) :- D:U(x, y).");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_TRUE(answers->Contains({Value::Int(1), Value::Int(2)}));
}

TEST(Pdms, OptionsPropagate) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation P(x); }
    peer B { relation P1(x); relation P2(x); }
    mapping A:P(x) :- B:P1(x).
    mapping A:P(x) :- B:P2(x).
    stored s1(x) <= B:P1(x).
    stored s2(x) <= B:P2(x).
  )").ok());
  ReformulationOptions options;
  options.max_rewritings = 1;
  pdms.set_options(options);
  auto result = pdms.Reformulate("q(x) :- A:P(x).");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewriting.size(), 1u);
  // Loosen again.
  options.max_rewritings = 0;
  pdms.set_options(options);
  result = pdms.Reformulate("q(x) :- A:P(x).");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewriting.size(), 2u);
}

TEST(Pdms, RemoveRedundantOption) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer FS {
      relation SameEngine(f1, f2, e);
      relation AssignedTo(f, e);
    }
    mapping FS:SameEngine(f1, f2, e) :-
        FS:AssignedTo(f1, e), FS:AssignedTo(f2, e).
    stored sa(f, e) <= FS:AssignedTo(f, e).
  )").ok());
  // SameEngine(f, f, e) folds to one atom; without minimization the
  // rewriting has two copies.
  ReformulationOptions options;
  options.remove_redundant = true;
  pdms.set_options(options);
  auto result = pdms.Reformulate("q(f) :- FS:SameEngine(f, f, e).");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rewriting.size(), 1u);
  EXPECT_EQ(result->rewriting.disjuncts()[0].body().size(), 1u)
      << result->rewriting.ToString();
}

TEST(Pdms, SourceRestrictionsLimitRewritings) {
  // Section 2: a querying peer may restrict which data sources are used.
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation P(x); }
    peer B { relation P1(x); relation P2(x); }
    mapping A:P(x) :- B:P1(x).
    mapping A:P(x) :- B:P2(x).
    stored s1(x) <= B:P1(x).
    stored s2(x) <= B:P2(x).
    fact s1(1).
    fact s2(2).
  )").ok());
  ReformulationOptions options;
  options.allowed_stored = {"s1"};
  pdms.set_options(options);
  auto result = pdms.Reformulate("q(x) :- A:P(x).");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rewriting.size(), 1u) << result->rewriting.ToString();
  EXPECT_EQ(result->rewriting.disjuncts()[0].body()[0].predicate(), "s1");
  auto answers = pdms.Answer("q(x) :- A:P(x).");
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->Contains({Value::Int(1)}));
  EXPECT_FALSE(answers->Contains({Value::Int(2)}));
  // Lifting the restriction restores both sources.
  options.allowed_stored.clear();
  pdms.set_options(options);
  auto full = pdms.Answer("q(x) :- A:P(x).");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 2u);
}

TEST(Pdms, AnswerStreamingDeliversDistinctTuplesEagerly) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation P(x); }
    peer B { relation P1(x); relation P2(x); }
    mapping A:P(x) :- B:P1(x).
    mapping A:P(x) :- B:P2(x).
    stored s1(x) <= B:P1(x).
    stored s2(x) <= B:P2(x).
    fact s1(1).
    fact s1(2).
    fact s2(2).
    fact s2(3).
  )").ok());
  auto query = pdms.ParseQuery("q(x) :- A:P(x).");
  ASSERT_TRUE(query.ok());
  std::vector<Tuple> seen;
  auto all = pdms.AnswerStreaming(*query, [&](const Tuple& t) {
    seen.push_back(t);
    return true;
  });
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->size(), 3u);
  EXPECT_EQ(seen.size(), 3u);  // the shared tuple (2) delivered once

  // Early stop after the first answer.
  size_t count = 0;
  auto partial = pdms.AnswerStreaming(*query, [&](const Tuple&) {
    return ++count < 1;
  });
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(count, 1u);
  EXPECT_LE(partial->size(), 3u);
}

TEST(Pdms, ExplainAnswerPinpointsWitnessRewritings) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation P(x); }
    peer B { relation P1(x); relation P2(x); }
    mapping A:P(x) :- B:P1(x).
    mapping A:P(x) :- B:P2(x).
    stored s1(x) <= B:P1(x).
    stored s2(x) <= B:P2(x).
    fact s1(1).
    fact s2(1).
    fact s2(2).
  )").ok());
  auto query = pdms.ParseQuery("q(x) :- A:P(x).");
  ASSERT_TRUE(query.ok());
  // Tuple (1) is justified by both sources.
  auto both = pdms.ExplainAnswer(*query, {Value::Int(1)});
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  EXPECT_EQ(both->size(), 2u);
  // Tuple (2) only by s2.
  auto one = pdms.ExplainAnswer(*query, {Value::Int(2)});
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0].body()[0].predicate(), "s2");
  // A non-answer has no witnesses.
  auto none = pdms.ExplainAnswer(*query, {Value::Int(99)});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  // Arity mismatch is rejected.
  auto bad = pdms.ExplainAnswer(*query, {Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(bad.ok());
}

TEST(Pdms, EmptyNetworkQueriesFailGracefully) {
  Pdms pdms;
  auto bad = pdms.Answer("q(x) :- A:R(x).");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(Pdms, LoadErrorsLeavePriorStateUsable) {
  Pdms pdms = MakeSmallPdms();
  Status bad = pdms.LoadProgram("peer X { relation }");
  EXPECT_FALSE(bad.ok());
  // The earlier declarations are still queryable.
  auto answers = pdms.Answer("q(x, y) :- A:R(x, y).");
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

}  // namespace
}  // namespace pdms
