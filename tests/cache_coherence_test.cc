// Cache coherence property test: a cached PDMS and an uncached one walk
// the same randomized schedule of queries, mapping edits, fact inserts,
// and availability flips; after every query the cached answers must be
// byte-identical to the uncached ones. 120 seeded schedules; any
// divergence prints its seed and step for replay. Also asserts the caches
// actually work — repeated queries at a fixed scope must hit.
//
// The `Smoke` case at the bottom is the CI coherence gate (tools/ci.sh
// step 5): query, mutate the network, re-query; the invalidation counter
// must advance and the answers must match a never-cached instance.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pdms/cache/caching_pdms.h"
#include "pdms/core/pdms.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace cache {
namespace {

constexpr const char* kBaseProgram = R"(
  peer A { relation R(x, y); }
  peer B { relation S(x, y); }
  peer C { relation T(x, y); }
  stored sa(x, y) <= A:R(x, y).
  stored sb(x, y) <= B:S(x, y).
  mapping B:S(x, y) :- A:R(x, y).
  mapping C:T(x, y) :- B:S(x, y), x < 10.
  fact sa(1, 2).
  fact sa(2, 3).
  fact sa(11, 12).
  fact sb(3, 4).
)";

// Incremental edits; each bumps the catalog revision when first applied.
const std::vector<std::string>& MappingEdits() {
  static const std::vector<std::string> edits = {
      R"(
        peer D { relation U(x, y); }
        stored sd(x, y) <= D:U(x, y).
        mapping C:T(x, y) :- D:U(x, y).
        fact sd(4, 5).
      )",
      R"(mapping B:S(x, y) :- C:T(x, y).)",
      R"(mapping (x, y) : A:R(x, y) <= B:S(x, y).)",
  };
  return edits;
}

const std::vector<std::string>& Queries() {
  static const std::vector<std::string> queries = {
      "q(x, y) :- A:R(x, y).",
      "q(x, y) :- B:S(x, y).",
      "q(x, y) :- C:T(x, y).",
      "q(x, z) :- A:R(x, y), B:S(y, z).",
      "q(x) :- B:S(x, y), x < 5.",
  };
  return queries;
}

const std::vector<std::string>& FlipTargets() {
  static const std::vector<std::string> stored = {"sa", "sb"};
  return stored;
}

// One lockstep schedule: every operation is applied to both instances,
// every query's answers are compared byte for byte.
void RunSchedule(uint64_t seed, size_t steps) {
  Rng rng(seed);
  CachingPdms cached;
  Pdms plain;
  ASSERT_TRUE(cached.LoadProgram(kBaseProgram).ok());
  ASSERT_TRUE(plain.LoadProgram(kBaseProgram).ok());

  std::vector<bool> edit_applied(MappingEdits().size(), false);
  size_t fact_counter = 0;

  auto check_query = [&](const std::string& query, size_t step) {
    auto expected = plain.Answer(query);
    auto actual = cached.Answer(query);
    ASSERT_EQ(actual.ok(), expected.ok())
        << "seed " << seed << " step " << step << " query " << query;
    if (!expected.ok()) return;
    EXPECT_EQ(actual->ToString(), expected->ToString())
        << "seed " << seed << " step " << step << " query " << query;
  };

  for (size_t step = 0; step < steps; ++step) {
    switch (rng.Uniform(5)) {
      case 0:
      case 1: {  // query (most frequent, so repeats happen)
        check_query(Queries()[rng.Uniform(Queries().size())], step);
        break;
      }
      case 2: {  // mapping edit (first time only; later picks are no-ops)
        size_t i = rng.Uniform(MappingEdits().size());
        if (edit_applied[i]) break;
        edit_applied[i] = true;
        ASSERT_TRUE(cached.LoadProgram(MappingEdits()[i]).ok());
        ASSERT_TRUE(plain.LoadProgram(MappingEdits()[i]).ok());
        break;
      }
      case 3: {  // availability flip (peer or stored relation)
        if (rng.Chance(0.5)) {
          const std::string& target =
              FlipTargets()[rng.Uniform(FlipTargets().size())];
          bool up = rng.Chance(0.5);
          ASSERT_TRUE(cached.mutable_network()
                          ->SetStoredRelationAvailable(target, up)
                          .ok());
          ASSERT_TRUE(plain.mutable_network()
                          ->SetStoredRelationAvailable(target, up)
                          .ok());
        } else {
          bool up = rng.Chance(0.5);
          ASSERT_TRUE(cached.mutable_network()->SetPeerAvailable("A", up).ok());
          ASSERT_TRUE(plain.mutable_network()->SetPeerAvailable("A", up).ok());
        }
        break;
      }
      case 4: {  // fact insert (no revision bump: plans must survive)
        Tuple t = {Value::Int(static_cast<int64_t>(20 + fact_counter)),
                   Value::Int(static_cast<int64_t>(21 + fact_counter))};
        ++fact_counter;
        ASSERT_TRUE(cached.Insert("sa", t).ok());
        ASSERT_TRUE(plain.Insert("sa", t).ok());
        break;
      }
    }
  }

  // Repeated queries at the now-fixed scope must hit the plan cache.
  size_t hits_before = cached.plan_cache()->stats().hits;
  check_query(Queries()[0], steps);
  check_query(Queries()[0], steps + 1);
  EXPECT_GT(cached.plan_cache()->stats().hits, hits_before)
      << "seed " << seed << ": repeat query at fixed scope did not hit";
}

TEST(CacheCoherence, RandomizedSchedulesMatchCacheOff) {
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    RunSchedule(seed, /*steps=*/14);
    if (HasFatalFailure()) return;
  }
}

// The CI smoke (tools/ci.sh step 5): warm, mutate, re-query.
TEST(CacheCoherence, Smoke) {
  CachingPdms cached;
  Pdms plain;
  ASSERT_TRUE(cached.LoadProgram(kBaseProgram).ok());
  ASSERT_TRUE(plain.LoadProgram(kBaseProgram).ok());

  const std::string query = "q(x, y) :- C:T(x, y).";
  ASSERT_TRUE(cached.Answer(query).ok());
  ASSERT_TRUE(cached.Answer(query).ok());
  EXPECT_GT(cached.plan_cache()->stats().hits, 0u);

  // Mutate the network: an availability flip (epoch) and a mapping edit
  // (revision).
  ASSERT_TRUE(
      cached.mutable_network()->SetStoredRelationAvailable("sa", false).ok());
  ASSERT_TRUE(
      plain.mutable_network()->SetStoredRelationAvailable("sa", false).ok());
  ASSERT_TRUE(cached.LoadProgram(MappingEdits()[0]).ok());
  ASSERT_TRUE(plain.LoadProgram(MappingEdits()[0]).ok());

  auto actual = cached.Answer(query);
  auto expected = plain.Answer(query);
  ASSERT_TRUE(actual.ok());
  ASSERT_TRUE(expected.ok());
  EXPECT_GT(cached.plan_cache()->stats().invalidations, 0u)
      << "network mutation did not advance the invalidation counter";
  EXPECT_EQ(actual->ToString(), expected->ToString());
}

}  // namespace
}  // namespace cache
}  // namespace pdms
