// Tests for the PPL program parser.

#include <gtest/gtest.h>

#include "pdms/core/ppl_parser.h"

namespace pdms {
namespace {

TEST(PplParser, FullProgram) {
  auto program = ParsePplProgram(R"(
    // A little two-peer system.
    peer A {
      relation R(x, y);
      relation T/3;
    }
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) <= A:R(x, y).
    mapping A:R(x, x) :- B:S(x, x).
    stored s(x, y) <= B:S(x, y).
    stored t(x, y) = B:S(x, y).
    fact s(1, 2).
    fact s(-3, 4).
    fact t(1, 1).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const PdmsNetwork& n = program->network;
  EXPECT_EQ(n.peers().size(), 2u);
  auto arity = n.RelationArity("A:T");
  ASSERT_TRUE(arity.ok());
  EXPECT_EQ(*arity, 3u);
  EXPECT_EQ(n.peer_mappings().size(), 2u);
  EXPECT_EQ(n.peer_mappings()[0].kind, PeerMappingKind::kInclusion);
  EXPECT_EQ(n.peer_mappings()[1].kind, PeerMappingKind::kDefinitional);
  ASSERT_EQ(n.storage_descriptions().size(), 2u);
  EXPECT_FALSE(n.storage_descriptions()[0].is_equality);
  EXPECT_TRUE(n.storage_descriptions()[1].is_equality);
  EXPECT_EQ(program->data.TotalTuples(), 3u);
  EXPECT_TRUE(program->data.Find("s")->Contains(
      {Value::Int(-3), Value::Int(4)}));
}

TEST(PplParser, EqualityMapping) {
  auto program = ParsePplProgram(R"(
    peer A { relation R(v, d); }
    peer B { relation S(v, d); }
    mapping (v, d) : A:R(v, d) = B:S(v, d).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->network.peer_mappings().size(), 1u);
  EXPECT_EQ(program->network.peer_mappings()[0].kind,
            PeerMappingKind::kEquality);
}

TEST(PplParser, MappingWithComparisons) {
  auto program = ParsePplProgram(R"(
    peer A { relation R(x, y); relation Cheap(x, y); }
    mapping A:Cheap(x, y) :- A:R(x, y), y < 100.
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->network.peer_mappings()[0].rule.comparisons().size(),
            1u);
}

TEST(PplParser, ErrorsAreInformative) {
  // Unknown keyword.
  auto e1 = ParsePplProgram("frobnicate A.");
  ASSERT_FALSE(e1.ok());
  EXPECT_NE(e1.status().message().find("frobnicate"), std::string::npos);
  // Fact for a non-stored relation.
  auto e2 = ParsePplProgram(R"(
    peer A { relation R(x); }
    fact r(1).
  )");
  ASSERT_FALSE(e2.ok());
  EXPECT_NE(e2.status().message().find("stored"), std::string::npos);
  // Non-ground fact.
  auto e3 = ParsePplProgram(R"(
    peer A { relation R(x); }
    stored s(x) <= A:R(x).
    fact s(x).
  )");
  EXPECT_FALSE(e3.ok());
  // Fact arity mismatch.
  auto e4 = ParsePplProgram(R"(
    peer A { relation R(x); }
    stored s(x) <= A:R(x).
    fact s(1, 2).
  )");
  EXPECT_FALSE(e4.ok());
  // Missing semicolon in peer block.
  auto e5 = ParsePplProgram("peer A { relation R(x) }");
  EXPECT_FALSE(e5.ok());
  // Missing '.' between a mapping and the next statement. (A missing dot
  // at end of input is tolerated by design.)
  auto e6 = ParsePplProgram(R"(
    peer A { relation R(x); relation P(x); }
    mapping A:P(x) :- A:R(x)
    stored s(x) <= A:R(x).
  )");
  EXPECT_FALSE(e6.ok());
  // Interface form missing operator.
  auto e7 = ParsePplProgram(R"(
    peer A { relation R(x); }
    mapping (x) : A:R(x) A:R(x).
  )");
  EXPECT_FALSE(e7.ok());
}

TEST(PplParser, IncrementalLoading) {
  PdmsNetwork network;
  Database data;
  ASSERT_TRUE(ParsePplProgramInto("peer A { relation R(x); }", &network,
                                  &data)
                  .ok());
  ASSERT_TRUE(ParsePplProgramInto(
                  "stored s(x) <= A:R(x). fact s(7).", &network, &data)
                  .ok());
  EXPECT_EQ(network.peers().size(), 1u);
  EXPECT_EQ(data.TotalTuples(), 1u);
  // Later batches see earlier declarations; unknown names still fail.
  EXPECT_FALSE(
      ParsePplProgramInto("stored t(x) <= B:R(x).", &network, &data).ok());
}

TEST(PplParser, ArityZeroRelations) {
  auto program = ParsePplProgram(R"(
    peer A { relation Flag(); relation Also/0; }
    stored f() <= A:Flag().
    fact f().
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->data.Find("f")->size(), 1u);
}

}  // namespace
}  // namespace pdms
