// White-box tests of rule-goal tree construction (Section 4.2, Step 2):
// node structure, unc labels, constraint labels, the description-reuse
// guard, dead-end marking, node budgets, and expansion ordering.

#include "pdms/core/rule_goal_tree.h"

#include <gtest/gtest.h>

#include "pdms/core/normalize.h"
#include "pdms/core/ppl_parser.h"
#include "pdms/lang/parser.h"

namespace pdms {
namespace {

ExpansionRules RulesFor(const std::string& ppl) {
  auto program = ParsePplProgram(ppl);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return Normalize(program->network);
}

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseRuleText(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(RuleGoalTree, RootStructureMirrorsQuery) {
  ExpansionRules rules = RulesFor(R"(
    peer A { relation R(x, y); relation S(x, y); }
    stored sr(x, y) <= A:R(x, y).
    stored ss(x, y) <= A:S(x, y).
  )");
  TreeBuilder builder(rules, {});
  auto tree = builder.Build(Q("q(x, z) :- A:R(x, y), A:S(y, z), x < 3."));
  ASSERT_TRUE(tree.ok());
  ASSERT_NE(tree->root, nullptr);
  EXPECT_EQ(tree->root->children.size(), 2u);
  EXPECT_EQ(tree->root->children[0]->label.predicate(), "A:R");
  EXPECT_EQ(tree->root->children[1]->label.predicate(), "A:S");
  // The query comparison becomes the root's constraint label, projected
  // onto the children that mention x.
  EXPECT_FALSE(tree->root->label.empty());
  EXPECT_FALSE(tree->root->children[0]->constraints.empty());
  EXPECT_TRUE(tree->root->children[1]->constraints.empty());
}

TEST(RuleGoalTree, StorageMcdProducesStoredLeaf) {
  ExpansionRules rules = RulesFor(R"(
    peer A { relation R(x, y); }
    stored sr(x, y) <= A:R(x, y).
  )");
  TreeBuilder builder(rules, {});
  auto tree = builder.Build(Q("q(x) :- A:R(x, y)."));
  ASSERT_TRUE(tree.ok());
  const GoalNode& goal = *tree->root->children[0];
  ASSERT_EQ(goal.expansions.size(), 1u);
  const ExpansionNode& exp = *goal.expansions[0];
  EXPECT_EQ(exp.kind, ExpansionNode::Kind::kInclusion);
  EXPECT_EQ(exp.unc, (std::vector<size_t>{0}));
  ASSERT_EQ(exp.children.size(), 1u);
  EXPECT_TRUE(exp.children[0]->is_stored);
  EXPECT_EQ(exp.children[0]->label.predicate(), "sr");
}

TEST(RuleGoalTree, UncLabelCoversJoinedSiblings) {
  // A view joining two relations through an existential covers both query
  // subgoals; its unc label must say so.
  ExpansionRules rules = RulesFor(R"(
    peer M { relation E1(x, y); relation E2(x, y); }
    peer S { relation V(x, y); }
    mapping (x, y) : S:V(x, y) <= M:E1(x, z), M:E2(z, y).
    stored sv(x, y) <= S:V(x, y).
  )");
  TreeBuilder builder(rules, {});
  auto tree = builder.Build(Q("q(x, y) :- M:E1(x, z), M:E2(z, y)."));
  ASSERT_TRUE(tree.ok());
  const GoalNode& e1 = *tree->root->children[0];
  ASSERT_EQ(e1.expansions.size(), 1u);
  EXPECT_EQ(e1.expansions[0]->unc, (std::vector<size_t>{0, 1}));
  // The symmetric MCD exists on the sibling too (Remark 4.1 redundancy).
  const GoalNode& e2 = *tree->root->children[1];
  ASSERT_EQ(e2.expansions.size(), 1u);
  EXPECT_EQ(e2.expansions[0]->unc, (std::vector<size_t>{0, 1}));
}

TEST(RuleGoalTree, GuardStopsCycles) {
  // A = B equality: termination relies on the per-path description guard;
  // expansions must not recurse through the same equality twice.
  ExpansionRules rules = RulesFor(R"(
    peer A { relation R(x); }
    peer B { relation S(x); }
    mapping (x) : A:R(x) = B:S(x).
    stored sb(x) <= B:S(x).
  )");
  ReformulationOptions options;
  TreeBuilder builder(rules, options);
  auto tree = builder.Build(Q("q(x) :- A:R(x)."));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->stats.tree_truncated);
  EXPECT_GT(tree->stats.pruned_guard, 0u);
  EXPECT_LT(tree->stats.total_nodes(), 32u);
}

TEST(RuleGoalTree, MutualRecursionThroughDefinitionalRulesTerminates) {
  ExpansionRules rules = RulesFor(R"(
    peer A { relation P(x); relation Q(x); }
    peer B { relation Base(x); }
    mapping A:P(x) :- A:Q(x).
    mapping A:Q(x) :- A:P(x).
    mapping A:P(x) :- B:Base(x).
    stored sb(x) <= B:Base(x).
  )");
  TreeBuilder builder(rules, {});
  auto tree = builder.Build(Q("q(x) :- A:P(x)."));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->stats.tree_truncated);
  EXPECT_GT(tree->stats.pruned_guard, 0u);
}

TEST(RuleGoalTree, NodeBudgetTruncates) {
  ExpansionRules rules = RulesFor(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping A:R(x, y) :- B:S(x, y).
    stored sb(x, y) <= B:S(x, y).
  )");
  ReformulationOptions options;
  options.max_tree_nodes = 4;  // query root + subgoal already uses 2
  TreeBuilder builder(rules, options);
  auto tree = builder.Build(Q("q(x) :- A:R(x, y)."));
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->stats.tree_truncated);
}

TEST(RuleGoalTree, DeadEndMarkingPropagates) {
  // A:R can only be answered through B:S which has no storage: everything
  // below the root is dead.
  ExpansionRules rules = RulesFor(R"(
    peer A { relation R(x); }
    peer B { relation S(x); }
    mapping A:R(x) :- B:S(x).
  )");
  ReformulationOptions options;
  options.prune_dead_ends = false;  // build the dead subtree, then mark
  TreeBuilder builder(rules, options);
  auto tree = builder.Build(Q("q(x) :- A:R(x)."));
  ASSERT_TRUE(tree.ok());
  // With the pass disabled everything is viable by definition.
  EXPECT_TRUE(tree->root->viable);

  ReformulationOptions with_pruning;
  TreeBuilder builder2(rules, with_pruning);
  auto tree2 = builder2.Build(Q("q(x) :- A:R(x)."));
  ASSERT_TRUE(tree2.ok());
  EXPECT_FALSE(tree2->root->viable);
  EXPECT_GT(tree2->stats.pruned_dead, 0u);
}

TEST(RuleGoalTree, ReachabilityPruningSkipsOrphanBranches) {
  // The union has one live branch and one dead branch; with pruning the
  // dead branch is never built.
  ExpansionRules rules = RulesFor(R"(
    peer A { relation R(x); }
    peer B { relation Live(x); relation Dead(x); }
    mapping A:R(x) :- B:Live(x).
    mapping A:R(x) :- B:Dead(x).
    stored sl(x) <= B:Live(x).
  )");
  ReformulationOptions pruned;
  TreeBuilder builder(rules, pruned);
  auto tree = builder.Build(Q("q(x) :- A:R(x)."));
  ASSERT_TRUE(tree.ok());
  ReformulationOptions unpruned;
  unpruned.prune_dead_ends = false;
  TreeBuilder builder2(rules, unpruned);
  auto tree2 = builder2.Build(Q("q(x) :- A:R(x)."));
  ASSERT_TRUE(tree2.ok());
  EXPECT_LT(tree->stats.total_nodes(), tree2->stats.total_nodes());
}

TEST(RuleGoalTree, ConstraintPruningCutsContradictoryExpansions) {
  // The mapping guarantees x <= 3 on its output; a query asking x > 7
  // cannot use it.
  ExpansionRules rules = RulesFor(R"(
    peer A { relation R(x); relation Small(x); }
    mapping A:Small(x) :- A:R(x), x <= 3.
    stored sr(x) <= A:R(x).
  )");
  ReformulationOptions options;
  TreeBuilder builder(rules, options);
  auto tree = builder.Build(Q("q(x) :- A:Small(x), x > 7."));
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree->stats.pruned_unsat, 0u);
  EXPECT_FALSE(tree->root->children[0]->viable);

  // Without the comparison the expansion survives.
  auto tree2 = builder.Build(Q("q(x) :- A:Small(x)."));
  ASSERT_TRUE(tree2.ok());
  EXPECT_TRUE(tree2->root->children[0]->viable);
}

TEST(RuleGoalTree, PriorityOrderPutsCheapExpansionsFirst) {
  // A:R reachable directly via storage (depth 1) and via a two-hop GAV
  // chain; with ordering on, the storage MCD must come first.
  ExpansionRules rules = RulesFor(R"(
    peer A { relation R(x); }
    peer B { relation S(x); }
    peer C { relation T(x); }
    mapping A:R(x) :- B:S(x).
    mapping B:S(x) :- C:T(x).
    stored sr(x) <= A:R(x).
    stored st(x) <= C:T(x).
  )");
  ReformulationOptions options;
  options.order_expansions = true;
  TreeBuilder builder(rules, options);
  auto tree = builder.Build(Q("q(x) :- A:R(x)."));
  ASSERT_TRUE(tree.ok());
  const GoalNode& goal = *tree->root->children[0];
  ASSERT_GE(goal.expansions.size(), 2u);
  // First expansion leads to the stored leaf directly.
  ASSERT_EQ(goal.expansions[0]->children.size(), 1u);
  EXPECT_TRUE(goal.expansions[0]->children[0]->is_stored)
      << tree->ToString();
}

TEST(RuleGoalTree, ToStringDumpsStructure) {
  ExpansionRules rules = RulesFor(R"(
    peer A { relation R(x, y); }
    stored sr(x, y) <= A:R(x, y).
  )");
  TreeBuilder builder(rules, {});
  auto tree = builder.Build(Q("q(x) :- A:R(x, y), x < 3."));
  ASSERT_TRUE(tree.ok());
  std::string dump = tree->ToString();
  EXPECT_NE(dump.find("A:R"), std::string::npos);
  EXPECT_NE(dump.find("[stored]"), std::string::npos);
  EXPECT_NE(dump.find("mcd[d"), std::string::npos);
  EXPECT_NE(dump.find("query:"), std::string::npos);
  EXPECT_FALSE(tree->stats.ToString().empty());
}

TEST(RuleGoalTree, TooManyQuerySubgoalsRejected) {
  ExpansionRules rules = RulesFor(R"(
    peer A { relation R(x); }
    stored sr(x) <= A:R(x).
  )");
  std::vector<Atom> body(33, Atom("A:R", {Term::Var("x")}));
  ConjunctiveQuery query(Atom("q", {Term::Var("x")}), body);
  TreeBuilder builder(rules, {});
  auto tree = builder.Build(query);
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kUnsupported);
}

TEST(RuleGoalTree, UnsafeQueryRejected) {
  ExpansionRules rules = RulesFor(R"(
    peer A { relation R(x); }
    stored sr(x) <= A:R(x).
  )");
  TreeBuilder builder(rules, {});
  auto tree = builder.Build(Q("q(w) :- A:R(x)."));
  EXPECT_FALSE(tree.ok());
}

}  // namespace
}  // namespace pdms
