// Unit tests for the query-language substrate: terms, atoms, conjunctive
// queries, substitutions/unification, canonicalization, and the parser.

#include <gtest/gtest.h>

#include "pdms/lang/canonical.h"
#include "pdms/lang/homomorphism.h"
#include "pdms/lang/conjunctive_query.h"
#include "pdms/lang/parser.h"
#include "pdms/lang/substitution.h"

namespace pdms {
namespace {

TEST(Term, BasicsAndOrdering) {
  Term x = Term::Var("x");
  Term y = Term::Var("y");
  Term c1 = Term::Int(5);
  Term c2 = Term::String("abc");
  EXPECT_TRUE(x.is_variable());
  EXPECT_FALSE(c1.is_variable());
  EXPECT_EQ(x, Term::Var("x"));
  EXPECT_NE(x, y);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(c1.value().int_value(), 5);
  EXPECT_EQ(c2.value().string_value(), "abc");
  EXPECT_EQ(x.ToString(), "x");
  EXPECT_EQ(c1.ToString(), "5");
  EXPECT_EQ(c2.ToString(), "\"abc\"");
  // Variables order before constants.
  EXPECT_TRUE(x < c1);
  EXPECT_FALSE(c1 < x);
}

TEST(Term, HashDistinguishesKinds) {
  EXPECT_NE(Term::Var("5").Hash(), Term::Int(5).Hash());
  EXPECT_EQ(Term::Var("x").Hash(), Term::Var("x").Hash());
}

TEST(VariableFactory, GeneratesDistinctNames) {
  VariableFactory f("_v");
  Term a = f.Fresh();
  Term b = f.Fresh();
  EXPECT_NE(a, b);
  EXPECT_EQ(f.count(), 2u);
}

TEST(Atom, ToStringAndEquality) {
  Atom a("p", {Term::Var("x"), Term::Int(3)});
  EXPECT_EQ(a.ToString(), "p(x, 3)");
  EXPECT_EQ(a, Atom("p", {Term::Var("x"), Term::Int(3)}));
  EXPECT_NE(a, Atom("q", {Term::Var("x"), Term::Int(3)}));
  EXPECT_NE(a, Atom("p", {Term::Var("y"), Term::Int(3)}));
  EXPECT_EQ(a.arity(), 2u);
}

TEST(CmpOp, FlipAndNegate) {
  EXPECT_EQ(FlipCmpOp(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(FlipCmpOp(CmpOp::kLe), CmpOp::kGe);
  EXPECT_EQ(FlipCmpOp(CmpOp::kEq), CmpOp::kEq);
  EXPECT_EQ(NegateCmpOp(CmpOp::kLt), CmpOp::kGe);
  EXPECT_EQ(NegateCmpOp(CmpOp::kEq), CmpOp::kNe);
  EXPECT_EQ(NegateCmpOp(CmpOp::kNe), CmpOp::kEq);
}

TEST(EvalCmp, WithinAndAcrossKinds) {
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, Value::Int(1), Value::Int(2)));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, Value::Int(2), Value::Int(2)));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, Value::Int(2), Value::Int(2)));
  EXPECT_TRUE(
      EvalCmp(CmpOp::kLt, Value::String("a"), Value::String("b")));
  // Cross-kind: only != holds.
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, Value::Int(1), Value::String("1")));
  EXPECT_FALSE(EvalCmp(CmpOp::kEq, Value::Int(1), Value::String("1")));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, Value::Int(1), Value::String("1")));
  // Labeled nulls: a null equals itself, order is unknown.
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, Value::Null(3), Value::Null(3)));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, Value::Null(3), Value::Null(3)));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, Value::Null(3), Value::Null(4)));
}

TEST(ConjunctiveQuery, VariableClassification) {
  auto q = ParseRuleText("q(x, y) :- r(x, z), s(z, y), z < 5.");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->HeadVariables(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(q->ExistentialVariables(), (std::vector<std::string>{"z"}));
  EXPECT_TRUE(q->IsDistinguished("x"));
  EXPECT_FALSE(q->IsDistinguished("z"));
  EXPECT_TRUE(q->CheckSafe().ok());
}

TEST(ConjunctiveQuery, UnsafeHeadVariable) {
  auto q = ParseRuleText("q(x, w) :- r(x, z).");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->CheckSafe().ok());
}

TEST(ConjunctiveQuery, UnsafeComparisonVariable) {
  auto q = ParseRuleText("q(x) :- r(x), w < 5.");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->CheckSafe().ok());
}

TEST(Substitution, ResolveFollowsChains) {
  Substitution s;
  EXPECT_TRUE(s.UnifyTerms(Term::Var("x"), Term::Var("y")));
  EXPECT_TRUE(s.UnifyTerms(Term::Var("y"), Term::Int(7)));
  EXPECT_EQ(s.Resolve(Term::Var("x")), Term::Int(7));
  EXPECT_EQ(s.Resolve(Term::Var("y")), Term::Int(7));
  EXPECT_EQ(s.Resolve(Term::Var("z")), Term::Var("z"));
}

TEST(Substitution, UnifyConflictingConstantsFails) {
  Substitution s;
  EXPECT_TRUE(s.UnifyTerms(Term::Var("x"), Term::Int(1)));
  EXPECT_FALSE(s.UnifyTerms(Term::Var("x"), Term::Int(2)));
  EXPECT_FALSE(s.UnifyTerms(Term::Int(1), Term::String("1")));
}

TEST(Substitution, UnifyAtoms) {
  Substitution s;
  Atom a("p", {Term::Var("x"), Term::Var("x")});
  Atom b("p", {Term::Int(1), Term::Var("y")});
  EXPECT_TRUE(s.UnifyAtoms(a, b));
  EXPECT_EQ(s.Resolve(Term::Var("y")), Term::Int(1));
  // Different predicate or arity never unifies.
  Substitution s2;
  EXPECT_FALSE(s2.UnifyAtoms(Atom("p", {Term::Var("x")}), b));
  EXPECT_FALSE(
      s2.UnifyAtoms(Atom("q", {Term::Var("x"), Term::Var("y")}), b));
}

TEST(Substitution, MergeDetectsConflicts) {
  Substitution s1;
  ASSERT_TRUE(s1.UnifyTerms(Term::Var("x"), Term::Int(1)));
  Substitution s2;
  ASSERT_TRUE(s2.UnifyTerms(Term::Var("x"), Term::Int(2)));
  Substitution merged = s1;
  EXPECT_FALSE(merged.Merge(s2));
  Substitution s3;
  ASSERT_TRUE(s3.UnifyTerms(Term::Var("y"), Term::Int(3)));
  Substitution merged2 = s1;
  EXPECT_TRUE(merged2.Merge(s3));
  EXPECT_EQ(merged2.Resolve(Term::Var("y")), Term::Int(3));
}

TEST(Substitution, ApplyQuery) {
  auto q = ParseRuleText("q(x) :- r(x, y), y < 5.");
  ASSERT_TRUE(q.ok());
  Substitution s;
  ASSERT_TRUE(s.UnifyTerms(Term::Var("y"), Term::Int(3)));
  ConjunctiveQuery applied = s.Apply(*q);
  EXPECT_EQ(applied.ToString(), "q(x) :- r(x, 3), 3 < 5.");
}

TEST(RenameApart, ProducesDisjointVariables) {
  auto q = ParseRuleText("q(x) :- r(x, y).");
  ASSERT_TRUE(q.ok());
  VariableFactory f("_r");
  ConjunctiveQuery renamed = RenameApart(*q, &f);
  for (const std::string& v : renamed.AllVariables()) {
    EXPECT_EQ(v.substr(0, 2), "_r");
  }
  // Structure preserved.
  EXPECT_EQ(renamed.body().size(), 1u);
  EXPECT_EQ(renamed.head().predicate(), "q");
}

TEST(Canonical, AtomKeyAbstractsNames) {
  auto a1 = ParseAtomText("p(x, y, x, 3)");
  auto a2 = ParseAtomText("p(a, b, a, 3)");
  auto a3 = ParseAtomText("p(a, b, b, 3)");
  ASSERT_TRUE(a1.ok() && a2.ok() && a3.ok());
  EXPECT_EQ(CanonicalAtomKey(*a1), CanonicalAtomKey(*a2));
  EXPECT_NE(CanonicalAtomKey(*a1), CanonicalAtomKey(*a3));
}

TEST(Canonical, QueryKeyModuloRenamingAndOrder) {
  auto q1 = ParseRuleText("q(x) :- r(x, y), s(y).");
  auto q2 = ParseRuleText("q(a) :- s(b), r(a, b).");
  auto q3 = ParseRuleText("q(a) :- s(a), r(a, b).");
  ASSERT_TRUE(q1.ok() && q2.ok() && q3.ok());
  EXPECT_EQ(CanonicalQueryKey(*q1), CanonicalQueryKey(*q2));
  EXPECT_NE(CanonicalQueryKey(*q1), CanonicalQueryKey(*q3));
}

TEST(Canonical, RenamingIsBijectiveIntoOverlappingNamespace) {
  // Regression: CanonicalRename used to rename through a chaining
  // substitution, so renaming v3 -> v1 while v1 -> v2 collapsed distinct
  // variables. Repeated canonicalization rounds (rename-sort-rename) then
  // gave two NON-isomorphic rewritings the same key and the enumerator's
  // dedup silently dropped one — a completeness bug.
  auto q = ParseRuleText("q(v1) :- r(v3, v1), s(v1, v2), t(v3, v0).");
  ASSERT_TRUE(q.ok());
  ConjunctiveQuery renamed = CanonicalRename(*q);
  EXPECT_EQ(renamed.AllVariables().size(), q->AllVariables().size());
  // The two 8-atom rewritings from the original failure (differing only in
  // the direction one chain attaches) must get different keys.
  auto a = ParseRuleText(
      "q(x, z) :- e(f, g), h(g, x), i(x, y), j(y, d1), h(y, w), h(w, d2), "
      "k(w, u), e(u, z).");
  auto b = ParseRuleText(
      "q(x, z) :- e(f, g), h(g, x), i(x, y), j(y, d1), h(e2, y), h(y, w), "
      "k(w, u), e(u, z).");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(EquivalentCQ(*a, *b));
  EXPECT_NE(CanonicalQueryKey(*a), CanonicalQueryKey(*b));
}

TEST(RenameApart, SourceNamesOverlappingFactoryOutput) {
  // A query already using the factory's naming scheme must still rename
  // injectively (simultaneous substitution, no chaining).
  auto q = ParseRuleText("q(_r0) :- p(_r0, _r1), s(_r1, _r2).");
  ASSERT_TRUE(q.ok());
  VariableFactory f("_r");
  ConjunctiveQuery renamed = RenameApart(*q, &f);
  EXPECT_EQ(renamed.AllVariables().size(), 3u);
  // Distinct original variables stay distinct.
  EXPECT_NE(renamed.body()[0].args()[0], renamed.body()[0].args()[1]);
  EXPECT_NE(renamed.body()[0].args()[1], renamed.body()[1].args()[1]);
}

TEST(Parser, QualifiedPredicatesAndConstants) {
  auto q = ParseRuleText(
      "Q(pid) :- 9DC:SkilledPerson(pid, \"Doctor\"), H:Doctor(pid, h), "
      "pid >= 100.");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->body()[0].predicate(), "9DC:SkilledPerson");
  EXPECT_EQ(q->body()[0].args()[1], Term::String("Doctor"));
  EXPECT_EQ(q->comparisons().size(), 1u);
  EXPECT_EQ(q->comparisons()[0].op, CmpOp::kGe);
}

TEST(Parser, AnonymousVariablesAreFresh) {
  auto q = ParseRuleText("q(x) :- r(x, _), s(x, _).");
  ASSERT_TRUE(q.ok());
  const Term& a = q->body()[0].args()[1];
  const Term& b = q->body()[1].args()[1];
  EXPECT_TRUE(a.is_variable());
  EXPECT_TRUE(b.is_variable());
  EXPECT_NE(a, b);
}

TEST(Parser, NegativeNumbersAndComments) {
  auto q = ParseRuleText(
      "q(x) :- r(x, -5).  // trailing comment\n# another comment");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->body()[0].args()[1], Term::Int(-5));
}

TEST(Parser, StringEscapes) {
  auto a = ParseAtomText(R"(p("a\"b"))");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->args()[0], Term::String("a\"b"));
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParseRuleText("q(x) :- ").ok());
  EXPECT_FALSE(ParseRuleText("q(x) r(x).").ok());
  EXPECT_FALSE(ParseRuleText("q(x :- r(x).").ok());
  EXPECT_FALSE(ParseAtomText("p(\"unterminated)").ok());
  EXPECT_FALSE(ParseAtomText("p(x) trailing").ok());
  EXPECT_FALSE(ParseRuleText("q(x) :- r(x), x ! 3.").ok());
}

TEST(Parser, ErrorsMentionLineNumbers) {
  auto r = ParseRuleText("q(x) :-\n r(x),\n x ! 3.");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
}

TEST(Parser, RoundTripThroughToString) {
  auto q = ParseRuleText("q(x, 3) :- r(x, y), s(y, \"lit\"), x < y.");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseRuleText(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString();
  EXPECT_EQ(*q, *q2);
}

TEST(UnionQuery, ToStringJoinsDisjuncts) {
  auto q1 = ParseRuleText("q(x) :- a(x).");
  auto q2 = ParseRuleText("q(x) :- b(x).");
  ASSERT_TRUE(q1.ok() && q2.ok());
  UnionQuery uq({*q1, *q2});
  EXPECT_NE(uq.ToString().find("UNION"), std::string::npos);
  EXPECT_EQ(uq.size(), 2u);
}

}  // namespace
}  // namespace pdms
