// Tests for the Section 5 workload generator.

#include <set>

#include <gtest/gtest.h>

#include "pdms/core/reformulator.h"
#include "pdms/gen/workload.h"

namespace pdms {
namespace {

TEST(Workload, DeterministicInSeed) {
  gen::WorkloadConfig config;
  config.num_peers = 24;
  config.num_strata = 3;
  config.seed = 99;
  auto w1 = gen::GenerateWorkload(config);
  auto w2 = gen::GenerateWorkload(config);
  ASSERT_TRUE(w1.ok() && w2.ok());
  EXPECT_EQ(w1->network.ToString(), w2->network.ToString());
  EXPECT_EQ(w1->query.ToString(), w2->query.ToString());
  config.seed = 100;
  auto w3 = gen::GenerateWorkload(config);
  ASSERT_TRUE(w3.ok());
  EXPECT_NE(w1->network.ToString(), w3->network.ToString());
}

TEST(Workload, StructureMatchesConfig) {
  gen::WorkloadConfig config;
  config.num_peers = 24;
  config.num_strata = 4;
  config.relations_per_peer = 2;
  config.providers_per_relation = 2;
  config.definitional_fraction = 0;  // inclusions only: one mapping each
  config.seed = 7;
  auto w = gen::GenerateWorkload(config);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->network.peers().size(), 24u);
  // Every relation above the bottom stratum (18 peers × 2 relations)
  // gets two providers.
  EXPECT_EQ(w->network.peer_mappings().size(), 18u * 2u * 2u);
  // Bottom stratum: 6 peers × 2 relations stored.
  EXPECT_EQ(w->network.storage_descriptions().size(), 12u);
  EXPECT_EQ(w->query.body().size(), config.query_subgoals);
  // Acyclic by construction (mappings always point up-stratum).
  EXPECT_TRUE(w->network.Classify().inclusions_acyclic);
}

TEST(Workload, DefinitionalFractionExtremes) {
  gen::WorkloadConfig config;
  config.num_peers = 20;
  config.num_strata = 2;
  config.seed = 5;
  config.definitional_fraction = 0.0;
  auto all_incl = gen::GenerateWorkload(config);
  ASSERT_TRUE(all_incl.ok());
  for (const PeerMapping& m : all_incl->network.peer_mappings()) {
    EXPECT_EQ(m.kind, PeerMappingKind::kInclusion);
  }
  config.definitional_fraction = 1.0;
  auto all_def = gen::GenerateWorkload(config);
  ASSERT_TRUE(all_def.ok());
  for (const PeerMapping& m : all_def->network.peer_mappings()) {
    EXPECT_EQ(m.kind, PeerMappingKind::kDefinitional);
  }
}

TEST(Workload, GeneratedDataPopulatesStoredRelations) {
  gen::WorkloadConfig config;
  config.num_peers = 12;
  config.num_strata = 2;
  config.facts_per_stored = 5;
  config.seed = 3;
  auto w = gen::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());
  EXPECT_GT(w->data.TotalTuples(), 0u);
  for (const std::string& name : w->network.StoredRelationNames()) {
    const Relation* rel = w->data.Find(name);
    ASSERT_NE(rel, nullptr);
    EXPECT_LE(rel->size(), config.facts_per_stored);  // set semantics
    EXPECT_GE(rel->size(), 1u);
  }
}

TEST(Workload, DefinitionalUnionWidthMultipliesRules) {
  gen::WorkloadConfig config;
  config.num_peers = 12;
  config.num_strata = 2;
  config.definitional_fraction = 1.0;  // all providers definitional
  config.providers_per_relation = 1;
  config.relations_per_peer = 2;
  config.seed = 4;
  config.definitional_union_width = 1;
  auto narrow = gen::GenerateWorkload(config);
  config.definitional_union_width = 3;
  auto wide = gen::GenerateWorkload(config);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  EXPECT_EQ(wide->network.peer_mappings().size(),
            3 * narrow->network.peer_mappings().size());
}

TEST(Workload, FillerRelationsAreNeverProvidedOrStored) {
  gen::WorkloadConfig config;
  config.num_peers = 12;
  config.num_strata = 3;
  config.filler_fraction = 1.0;  // every non-covered slot is a filler
  config.seed = 6;
  auto w = gen::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());
  for (const PeerMapping& m : w->network.peer_mappings()) {
    if (m.kind == PeerMappingKind::kDefinitional) {
      EXPECT_EQ(m.rule.head().predicate().find(":F"), std::string::npos);
    }
  }
  for (const StorageDescription& d : w->network.storage_descriptions()) {
    for (const Atom& a : d.view.body()) {
      EXPECT_EQ(a.predicate().find(":F"), std::string::npos);
    }
  }
}

TEST(Workload, OrphansNeverChosenForQuery) {
  gen::WorkloadConfig config;
  config.num_peers = 12;
  config.num_strata = 2;
  config.unprovided_fraction = 0.5;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    config.seed = seed;
    auto w = gen::GenerateWorkload(config);
    ASSERT_TRUE(w.ok());
    // Collect relations that have providers (heads of rules / RHS members
    // of inclusions).
    std::set<std::string> provided;
    for (const PeerMapping& m : w->network.peer_mappings()) {
      if (m.kind == PeerMappingKind::kDefinitional) {
        provided.insert(m.rule.head().predicate());
      } else {
        for (const Atom& a : m.rhs.body()) provided.insert(a.predicate());
      }
    }
    if (provided.empty()) continue;  // fully orphaned stratum: allowed
    for (const Atom& a : w->query.body()) {
      EXPECT_TRUE(provided.count(a.predicate()) > 0)
          << "seed " << seed << " query uses orphan " << a.ToString();
    }
  }
}

TEST(Workload, ComparisonFractionAddsComparisons) {
  gen::WorkloadConfig config;
  config.num_peers = 12;
  config.num_strata = 2;
  config.definitional_fraction = 1.0;
  config.comparison_fraction = 1.0;
  config.seed = 8;
  auto w = gen::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());
  size_t with = 0;
  for (const PeerMapping& m : w->network.peer_mappings()) {
    if (!m.rule.comparisons().empty()) ++with;
  }
  EXPECT_EQ(with, w->network.peer_mappings().size());
  // Comparisons sit in definitional bodies only: the classifier keeps the
  // network in the PTIME fragment (Theorem 3.3.1).
  EXPECT_FALSE(
      w->network.Classify().comparisons_outside_safe_positions);
}

TEST(Workload, InvalidConfigsRejected) {
  gen::WorkloadConfig config;
  config.num_peers = 2;
  config.num_strata = 5;
  EXPECT_FALSE(gen::GenerateWorkload(config).ok());
  config = {};
  config.arity = 1;
  EXPECT_FALSE(gen::GenerateWorkload(config).ok());
  config = {};
  config.chain_length = 0;
  EXPECT_FALSE(gen::GenerateWorkload(config).ok());
}

TEST(Workload, ReformulationRunsOnGeneratedPdms) {
  gen::WorkloadConfig config;
  config.num_peers = 24;
  config.num_strata = 3;
  config.definitional_fraction = 0.25;
  config.seed = 11;
  auto w = gen::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());
  Reformulator reformulator(w->network);
  auto result = reformulator.Reformulate(w->query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.total_nodes(), 0u);
  // Every rewriting is over stored relations only.
  for (const ConjunctiveQuery& cq : result->rewriting.disjuncts()) {
    for (const Atom& a : cq.body()) {
      EXPECT_TRUE(w->network.IsStoredRelation(a.predicate()))
          << a.ToString();
    }
  }
}

TEST(Workload, TreeDepthTracksStrata) {
  // More strata => larger rule-goal trees on average (the paper's main
  // observation; individual instances vary, so compare seed-averaged
  // sizes at the extremes).
  auto average_nodes = [](size_t strata) {
    double total = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      gen::WorkloadConfig config;
      config.num_peers = 24;
      config.num_strata = strata;
      config.seed = seed;
      auto w = gen::GenerateWorkload(config);
      EXPECT_TRUE(w.ok());
      Reformulator reformulator(w->network);
      auto tree = reformulator.BuildTree(w->query);
      EXPECT_TRUE(tree.ok());
      total += static_cast<double>(tree->stats.total_nodes());
    }
    return total / 10.0;
  };
  EXPECT_GT(average_nodes(4), average_nodes(1));
}

}  // namespace
}  // namespace pdms
