// Unit tests for the simulated peer runtime: event-loop determinism and
// bounds, SimNetwork fault handling (drop / duplicate / delay / partition),
// peer nodes, and end-to-end distributed answering with SimPdms on
// hand-built programs. The seeded many-schedule properties live in
// sim_dst_test.cc; these tests pin down the primitives.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pdms/core/pdms.h"
#include "pdms/sim/event_loop.h"
#include "pdms/sim/peer_node.h"
#include "pdms/sim/sim_network.h"
#include "pdms/sim/sim_pdms.h"

namespace pdms {
namespace sim {
namespace {

// --- EventLoop ---

TEST(EventLoopTest, FiresInTimeOrderWithFifoTies) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(5.0, [&] { order.push_back(3); });
  loop.Schedule(1.0, [&] { order.push_back(1); });
  loop.Schedule(1.0, [&] { order.push_back(2); });  // same time: FIFO
  ASSERT_TRUE(loop.Run(100).ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now_ms(), 5.0);
}

TEST(EventLoopTest, EventsCanScheduleEvents) {
  EventLoop loop;
  std::vector<double> times;
  loop.Schedule(1.0, [&] {
    times.push_back(loop.now_ms());
    loop.Schedule(2.0, [&] { times.push_back(loop.now_ms()); });
  });
  ASSERT_TRUE(loop.Run(100).ok());
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(EventLoopTest, DrivesTheFaultInjectorClock) {
  FaultInjector clock(7);
  clock.AdvanceClock(10.0);
  EventLoop loop(&clock);
  EXPECT_DOUBLE_EQ(loop.now_ms(), 10.0);
  loop.Schedule(5.0, [] {});
  ASSERT_TRUE(loop.Run(1000).ok());
  // The injector's clock — the fault layer's timeline — moved with the loop.
  EXPECT_DOUBLE_EQ(clock.now_ms(), 15.0);
}

TEST(EventLoopTest, VirtualTimeBoundDetectsRunaway) {
  EventLoop loop;
  // An event chain that reschedules itself forever.
  std::function<void()> again = [&] { loop.Schedule(10.0, again); };
  loop.Schedule(10.0, again);
  Status status = loop.Run(500.0);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_LE(loop.now_ms(), 500.0);
}

TEST(EventLoopTest, EventBoundDetectsZeroDelayCycle) {
  EventLoop loop;
  std::function<void()> again = [&] { loop.Schedule(0, again); };
  loop.Schedule(0, again);
  Status status = loop.Run(1000.0, /*max_events=*/1000);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

// --- SimNetwork ---

Message ScanRequest(uint64_t id, const std::string& relation) {
  Message m;
  m.type = Message::Type::kScanRequest;
  m.request_id = id;
  m.relation = relation;
  return m;
}

TEST(SimNetworkTest, DeliversToRegisteredHandler) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  std::vector<std::string> got;
  net.Register("B", [&](const std::string& src, const Message& m) {
    got.push_back(src + "/" + m.relation);
  });
  net.Send("A", "B", ScanRequest(1, "s1"));
  ASSERT_TRUE(loop.Run(100).ok());
  EXPECT_EQ(got, (std::vector<std::string>{"A/s1"}));
  EXPECT_EQ(net.stats().sent, 1u);
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(SimNetworkTest, DropProbabilityOneLosesEverything) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  LinkFaults faults;
  faults.drop_probability = 1.0;
  net.set_faults(faults);
  size_t delivered = 0;
  net.Register("B", [&](const std::string&, const Message&) { ++delivered; });
  for (int i = 0; i < 10; ++i) net.Send("A", "B", ScanRequest(i, "s"));
  ASSERT_TRUE(loop.Run(100).ok());
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.stats().dropped, 10u);
}

TEST(SimNetworkTest, DuplicateProbabilityOneDeliversTwice) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  LinkFaults faults;
  faults.duplicate_probability = 1.0;
  net.set_faults(faults);
  size_t delivered = 0;
  net.Register("B", [&](const std::string&, const Message&) { ++delivered; });
  net.Send("A", "B", ScanRequest(1, "s"));
  ASSERT_TRUE(loop.Run(100).ok());
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(net.stats().duplicated, 1u);
}

TEST(SimNetworkTest, JitterReordersBackToBackMessages) {
  // With large jitter, ten messages sent at the same instant should not
  // all arrive in send order for this seed (reordering falls out of
  // variable delay, not a dedicated knob).
  EventLoop loop;
  SimNetwork net(&loop, 42);
  LinkFaults faults;
  faults.delay_jitter_ms = 50.0;
  net.set_faults(faults);
  std::vector<uint64_t> arrival;
  net.Register("B", [&](const std::string&, const Message& m) {
    arrival.push_back(m.request_id);
  });
  for (uint64_t i = 0; i < 10; ++i) net.Send("A", "B", ScanRequest(i, "s"));
  ASSERT_TRUE(loop.Run(1000).ok());
  ASSERT_EQ(arrival.size(), 10u);
  std::vector<uint64_t> sorted = arrival;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(arrival, sorted);  // order perturbed
  EXPECT_EQ(sorted, (std::vector<uint64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(SimNetworkTest, PartitionBlocksBothDirectionsUntilHealed) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  size_t delivered = 0;
  net.Register("A", [&](const std::string&, const Message&) { ++delivered; });
  net.Register("B", [&](const std::string&, const Message&) { ++delivered; });
  net.Partition("A", "B");
  EXPECT_TRUE(net.IsPartitioned("B", "A"));
  net.Send("A", "B", ScanRequest(1, "s"));
  net.Send("B", "A", ScanRequest(2, "s"));
  ASSERT_TRUE(loop.Run(100).ok());
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.stats().partitioned, 2u);
  net.Heal("B", "A");
  net.Send("A", "B", ScanRequest(3, "s"));
  ASSERT_TRUE(loop.Run(200).ok());
  EXPECT_EQ(delivered, 1u);
}

TEST(SimNetworkTest, SameSeedSameTrace) {
  auto run = [](uint64_t seed) {
    EventLoop loop;
    SimNetwork net(&loop, seed);
    LinkFaults faults;
    faults.drop_probability = 0.3;
    faults.duplicate_probability = 0.2;
    faults.delay_jitter_ms = 4.0;
    net.set_faults(faults);
    net.Register("B", [](const std::string&, const Message&) {});
    for (uint64_t i = 0; i < 20; ++i) net.Send("A", "B", ScanRequest(i, "s"));
    EXPECT_TRUE(net.TraceString().empty() == false);
    (void)loop.Run(1000);
    return net.TraceString();
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

// --- PeerNode ---

TEST(PeerNodeTest, ServesSnapshotsAndReportsUnknownRelations) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  PeerNode peer("P", &net);
  Relation r("s1", 2);
  r.Insert({Value::Int(1), Value::Int(2)});
  peer.ServeRelation(r);

  std::vector<Message> responses;
  net.Register("@client", [&](const std::string&, const Message& m) {
    responses.push_back(m);
  });
  net.Send("@client", "P", ScanRequest(1, "s1"));
  net.Send("@client", "P", ScanRequest(2, "nope"));
  ASSERT_TRUE(loop.Run(100).ok());
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_EQ(responses[0].tuples.size(), 1u);
  EXPECT_EQ(responses[0].arity, 2u);
  EXPECT_EQ(responses[1].status.code(), StatusCode::kNotFound);
}

TEST(PeerNodeTest, CrashedPeerStaysSilent) {
  EventLoop loop;
  SimNetwork net(&loop, 1);
  PeerNode peer("P", &net);
  peer.set_crashed(true);
  size_t responses = 0;
  net.Register("@client",
               [&](const std::string&, const Message&) { ++responses; });
  net.Send("@client", "P", ScanRequest(1, "s1"));
  ASSERT_TRUE(loop.Run(100).ok());
  EXPECT_EQ(responses, 0u);
  EXPECT_EQ(peer.requests_served(), 0u);
}

// --- SimPdms end to end ---

constexpr const char* kProgram = R"(
  peer H { relation Doctor(name, hosp); }
  peer W { relation Staff(name, hosp); }
  mapping (n, h) : W:Staff(n, h) <= H:Doctor(n, h).
  stored h_doc(n, h) <= H:Doctor(n, h).
  stored w_staff(n, h) <= W:Staff(n, h).
  fact h_doc("ada", "central").
  fact w_staff("bob", "north").
)";

Pdms MakeCentral() {
  Pdms pdms;
  EXPECT_TRUE(pdms.LoadProgram(kProgram).ok());
  return pdms;
}

TEST(SimPdmsTest, FaultFreeMatchesInProcessFacade) {
  Pdms central = MakeCentral();
  auto expect = central.Answer("q(n) :- H:Doctor(n, h).");
  ASSERT_TRUE(expect.ok());

  SimPdms sim(central.network(), central.database());
  auto got = sim.Answer("q(n) :- H:Doctor(n, h).");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->answers.size(), expect->size());
  for (const Tuple& t : expect->tuples()) {
    EXPECT_TRUE(got->answers.Contains(t));
  }
  EXPECT_EQ(got->degradation.completeness, Completeness::kComplete);
  EXPECT_TRUE(got->degradation.distributed);
  // Both data peers answered one scan each over the wire.
  EXPECT_EQ(got->degradation.access.probes, 2u);
  EXPECT_EQ(got->degradation.access.successes, 2u);
  EXPECT_GE(got->degradation.messages.sent, 4u);  // 2 requests + 2 responses
  EXPECT_EQ(got->degradation.messages.request_timeouts, 0u);
  EXPECT_FALSE(sim.last_trace().empty());
}

TEST(SimPdmsTest, PartitionDegradesAndHealRestores) {
  Pdms central = MakeCentral();
  SimPdms sim(central.network(), central.database());
  sim.Partition(kCoordinatorName, "W");

  auto got = sim.Answer("q(n) :- H:Doctor(n, h).");
  ASSERT_TRUE(got.ok());
  // H's relation arrives; W's fetch exhausts retransmits and is excluded.
  EXPECT_EQ(got->degradation.completeness, Completeness::kPartial);
  EXPECT_EQ(got->degradation.excluded_stored,
            (std::vector<std::string>{"w_staff"}));
  EXPECT_EQ(got->degradation.excluded_peers, (std::vector<std::string>{"W"}));
  EXPECT_EQ(got->degradation.access.failures, 1u);
  EXPECT_GT(got->degradation.messages.partitioned, 0u);
  EXPECT_GT(got->degradation.messages.request_timeouts, 0u);
  EXPECT_TRUE(got->answers.Contains({Value::String("ada")}));
  EXPECT_FALSE(got->answers.Contains({Value::String("bob")}));

  sim.HealAll();
  auto healed = sim.Answer("q(n) :- H:Doctor(n, h).");
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->degradation.completeness, Completeness::kComplete);
  EXPECT_EQ(healed->answers.size(), 2u);
}

TEST(SimPdmsTest, CrashedPeerResolvesByTimeoutOnly) {
  Pdms central = MakeCentral();
  SimPdms sim(central.network(), central.database());
  sim.SetPeerCrashed("H", true);

  auto got = sim.Answer("q(n) :- H:Doctor(n, h).");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->degradation.completeness, Completeness::kPartial);
  EXPECT_EQ(got->degradation.excluded_stored,
            (std::vector<std::string>{"h_doc"}));
  // Every transmission to H timed out; retransmits were attempted.
  EXPECT_EQ(got->degradation.messages.request_timeouts,
            sim.options().retry.max_attempts);
  EXPECT_EQ(got->degradation.messages.retransmits,
            sim.options().retry.max_attempts - 1);

  sim.SetPeerCrashed("H", false);
  auto healed = sim.Answer("q(n) :- H:Doctor(n, h).");
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->degradation.completeness, Completeness::kComplete);
}

TEST(SimPdmsTest, CatalogDownPeerIsPrunedWithoutMessages) {
  Pdms central = MakeCentral();
  PdmsNetwork network = central.network();
  ASSERT_TRUE(network.SetPeerAvailable("W", false).ok());
  SimPdms sim(network, central.database());

  auto got = sim.Answer("q(n) :- H:Doctor(n, h).");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->degradation.completeness, Completeness::kPartial);
  // Only H was contacted: the known-down source was pruned before any
  // message was sent, so exactly one round-trip happened.
  EXPECT_EQ(got->degradation.access.probes, 1u);
  EXPECT_EQ(got->degradation.messages.sent, 2u);  // 1 request + 1 response
  EXPECT_EQ(got->degradation.excluded_peers, (std::vector<std::string>{"W"}));
}

TEST(SimPdmsTest, LossyLinkIsAbsorbedByRetransmission) {
  Pdms central = MakeCentral();
  SimOptions options;
  options.seed = 3;
  options.faults.drop_probability = 0.4;
  options.retry.max_attempts = 6;
  SimPdms sim(central.network(), central.database(), options);

  auto got = sim.Answer("q(n) :- H:Doctor(n, h).");
  ASSERT_TRUE(got.ok());
  // Retries absorbed the loss for this seed: complete answers, and the
  // verdict does not punish recovered timeouts.
  EXPECT_EQ(got->degradation.completeness, Completeness::kComplete);
  EXPECT_EQ(got->answers.size(), 2u);
}

TEST(SimPdmsTest, SameSeedReplaysByteIdenticalTrace) {
  Pdms central = MakeCentral();
  SimOptions options;
  options.seed = 11;
  options.faults.drop_probability = 0.3;
  options.faults.duplicate_probability = 0.2;
  options.faults.delay_jitter_ms = 3.0;

  auto run = [&]() {
    SimPdms sim(central.network(), central.database(), options);
    auto got = sim.Answer("q(n) :- H:Doctor(n, h).");
    EXPECT_TRUE(got.ok());
    return sim.last_trace();
  };
  std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

}  // namespace
}  // namespace sim
}  // namespace pdms
