// Parallel-vs-serial equivalence: the `threads` knob must never change
// what a query returns — answers, degradation reports, reformulation
// counters, and the time-stripped explain tree all have to match the
// single-threaded facade byte for byte, on workloads big enough that the
// pool actually forks (docs/parallel_execution.md). Two parallel runs at
// different thread counts must match each other *exactly*, variable names
// included, because task identity (not scheduling) decides every name.

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pdms/cache/goal_memo.h"
#include "pdms/cache/plan_cache.h"
#include "pdms/core/pdms.h"
#include "pdms/gen/workload.h"
#include "pdms/lang/canonical.h"
#include "pdms/obs/export.h"
#include "pdms/obs/trace.h"

namespace pdms {
namespace {

gen::Workload MakeWorkload(uint64_t seed) {
  gen::WorkloadConfig config;
  config.num_peers = 24;
  config.num_strata = 3;
  config.definitional_fraction = 0.25;
  config.providers_per_relation = 2;
  config.facts_per_stored = 4;
  config.comparison_fraction = 0.2;
  config.seed = seed;
  auto workload = gen::GenerateWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  return std::move(*workload);
}

Pdms MakePdms(const gen::Workload& workload, size_t threads) {
  ReformulationOptions options;
  options.threads = threads;
  Pdms pdms(options);
  *pdms.mutable_network() = workload.network;
  *pdms.mutable_database() = workload.data;
  return pdms;
}

/// Everything observable about one query run, rendered to strings (with
/// timings stripped) so runs can be compared byte for byte.
struct Outcome {
  std::string answers;
  std::string report;
  std::string explain;
  std::string canonical_disjuncts;  // canonical key per rewriting, in order
  std::string rewriting_text;       // verbatim, variable names included
  ReformulationStats stats;
};

Outcome RunOne(const gen::Workload& workload, size_t threads) {
  Pdms pdms = MakePdms(workload, threads);
  obs::TraceContext trace("q");
  pdms.set_trace(&trace);
  Outcome out;
  auto ref = pdms.Reformulate(workload.query);
  EXPECT_TRUE(ref.ok()) << ref.status().ToString();
  if (ref.ok()) {
    out.rewriting_text = ref->rewriting.ToString();
    for (const ConjunctiveQuery& cq : ref->rewriting.disjuncts()) {
      out.canonical_disjuncts += CanonicalQueryKey(cq);
      out.canonical_disjuncts += '\n';
    }
  }
  auto result = pdms.AnswerWithReport(workload.query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) {
    out.answers = result->answers.ToString();
    out.report = result->degradation.ToString();
    out.stats = result->stats;
  }
  out.explain = obs::RenderSpanTreeStructure(trace);
  return out;
}

void ExpectCountersEqual(const ReformulationStats& a,
                         const ReformulationStats& b) {
  EXPECT_EQ(a.goal_nodes, b.goal_nodes);
  EXPECT_EQ(a.rule_nodes, b.rule_nodes);
  EXPECT_EQ(a.inclusion_nodes, b.inclusion_nodes);
  EXPECT_EQ(a.definitional_nodes, b.definitional_nodes);
  EXPECT_EQ(a.pruned_unsat, b.pruned_unsat);
  EXPECT_EQ(a.pruned_dead, b.pruned_dead);
  EXPECT_EQ(a.pruned_guard, b.pruned_guard);
  EXPECT_EQ(a.pruned_unavailable, b.pruned_unavailable);
  EXPECT_EQ(a.excluded_stored, b.excluded_stored);
  EXPECT_EQ(a.combos_failed, b.combos_failed);
  EXPECT_EQ(a.rewritings, b.rewritings);
  EXPECT_EQ(a.duplicate_disjuncts, b.duplicate_disjuncts);
  EXPECT_EQ(a.tree_truncated, b.tree_truncated);
  EXPECT_EQ(a.enumeration_truncated, b.enumeration_truncated);
}

TEST(ParallelEquivalence, MatchesSerialAcrossSeedsAndThreadCounts) {
  for (uint64_t seed : {11u, 42u, 97u}) {
    gen::Workload workload = MakeWorkload(seed);
    Outcome serial = RunOne(workload, 1);
    EXPECT_FALSE(serial.answers.empty());
    for (size_t threads : {size_t{2}, size_t{8}}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                   std::to_string(threads));
      Outcome parallel = RunOne(workload, threads);
      // Same answers, same report, same rewriting order (canonically),
      // same span structure. Variable *names* may differ from the serial
      // run (forked tasks draw from their own factories), which is why
      // the rewriting comparison is canonical here.
      EXPECT_EQ(parallel.answers, serial.answers);
      EXPECT_EQ(parallel.report, serial.report);
      EXPECT_EQ(parallel.canonical_disjuncts, serial.canonical_disjuncts);
      EXPECT_EQ(parallel.explain, serial.explain);
      ExpectCountersEqual(parallel.stats, serial.stats);
    }
  }
}

TEST(ParallelEquivalence, ThreadCountDoesNotChangeNames) {
  // Between two *parallel* runs, everything is identical verbatim —
  // fork structure (and hence every generated variable name) depends on
  // the tree, not on how many workers happened to run it.
  gen::Workload workload = MakeWorkload(7);
  Outcome two = RunOne(workload, 2);
  Outcome eight = RunOne(workload, 8);
  EXPECT_EQ(two.rewriting_text, eight.rewriting_text);
  EXPECT_EQ(two.answers, eight.answers);
  EXPECT_EQ(two.report, eight.report);
  EXPECT_EQ(two.explain, eight.explain);
  ExpectCountersEqual(two.stats, eight.stats);
}

TEST(ParallelEquivalence, RepeatedParallelRunsAreDeterministic) {
  gen::Workload workload = MakeWorkload(123);
  Outcome first = RunOne(workload, 8);
  for (int i = 0; i < 3; ++i) {
    Outcome again = RunOne(workload, 8);
    EXPECT_EQ(again.rewriting_text, first.rewriting_text);
    EXPECT_EQ(again.answers, first.answers);
    EXPECT_EQ(again.explain, first.explain);
  }
}

TEST(ParallelEquivalence, ConcurrentServingSharedCaches) {
  // Several serving threads, each with its own facade, sharing one plan
  // cache and one goal memo — the deployment the thread-safe caches
  // exist for. Every thread must see exactly the baseline answers.
  gen::Workload workload = MakeWorkload(31);
  std::string expected = RunOne(workload, 1).answers;
  ASSERT_FALSE(expected.empty());

  cache::PlanCache shared_plans;
  cache::GoalMemo shared_memo;
  constexpr size_t kServers = 4;
  constexpr size_t kRequests = 8;
  std::vector<std::string> got(kServers);
  std::vector<std::thread> servers;
  servers.reserve(kServers);
  for (size_t s = 0; s < kServers; ++s) {
    servers.emplace_back([&, s] {
      Pdms pdms = MakePdms(workload, /*threads=*/2);
      pdms.set_plan_cache(&shared_plans);
      pdms.set_goal_memo(&shared_memo);
      for (size_t r = 0; r < kRequests; ++r) {
        auto result = pdms.AnswerWithReport(workload.query);
        if (!result.ok()) {
          got[s] = "error: " + result.status().ToString();
          return;
        }
        std::string answers = result->answers.ToString();
        if (r > 0 && answers != got[s]) {
          got[s] = "nondeterministic across requests";
          return;
        }
        got[s] = std::move(answers);
      }
    });
  }
  for (std::thread& t : servers) t.join();
  for (size_t s = 0; s < kServers; ++s) {
    EXPECT_EQ(got[s], expected) << "server " << s;
  }
  // The shared cache did real cross-thread work: at most kServers misses
  // can have filled it, everything else must have hit.
  cache::PlanCacheStats stats = shared_plans.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.hits + stats.misses, kServers * kRequests);
}

}  // namespace
}  // namespace pdms
