// Tests for the keep-alive client connection pool (serve::ClientPool):
// lease reuse, the idle cap, endpoint parsing, and the acceptance check
// for stale keep-alive sockets — a server restart between scans must
// cost one transparent reconnect, never a failed fetch.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "pdms/core/pdms.h"
#include "pdms/obs/metrics.h"
#include "pdms/serve/client.h"
#include "pdms/serve/client_pool.h"
#include "pdms/serve/server.h"
#include "pdms/util/check.h"

namespace pdms {
namespace serve {
namespace {

constexpr const char* kProgram = R"(
peer Hospital { relation Doctor(name, hospital); }
stored hdoc(name, hospital) <= Hospital:Doctor(name, hospital).
fact hdoc("alice", "county").
fact hdoc("bo", "mercy").
)";

// A running loopback server over the demo program. `port` 0 picks an
// ephemeral port; a concrete port rebinds it (SO_REUSEADDR), which the
// stale-socket test uses to restart a server at the same endpoint.
class ServerFixture {
 public:
  explicit ServerFixture(uint16_t port = 0) {
    Status loaded = loader_.LoadProgram(kProgram);
    PDMS_CHECK_MSG(loaded.ok(), loaded.ToString().c_str());
    ServerOptions options;
    options.port = port;
    server_ = std::make_unique<PplServer>(options, &metrics_);
    Status started = server_->Start(loader_.network(), loader_.database());
    PDMS_CHECK_MSG(started.ok(), started.ToString().c_str());
  }

  uint16_t port() const { return server_->port(); }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port());
  }
  void Stop() { server_->Stop(); }

 private:
  Pdms loader_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<PplServer> server_;
};

TEST(ClientPool, ParseEndpointAcceptsHostPortAndRejectsGarbage) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ClientPool::ParseEndpoint("127.0.0.1:8080", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_FALSE(ClientPool::ParseEndpoint("no-port", &host, &port).ok());
  EXPECT_FALSE(ClientPool::ParseEndpoint("trailing:", &host, &port).ok());
  EXPECT_FALSE(ClientPool::ParseEndpoint("host:99999", &host, &port).ok());
  EXPECT_FALSE(ClientPool::ParseEndpoint("host:zero", &host, &port).ok());
}

TEST(ClientPool, LeaseReturnsConnectionForReuse) {
  ServerFixture fixture;
  ClientPool pool;
  {
    Result<ClientPool::Lease> lease = pool.Checkout(fixture.endpoint());
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    EXPECT_FALSE(lease->reused());
    EXPECT_TRUE((*lease)->Ping().ok());
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  {
    Result<ClientPool::Lease> lease = pool.Checkout(fixture.endpoint());
    ASSERT_TRUE(lease.ok());
    EXPECT_TRUE(lease->reused());
    EXPECT_TRUE((*lease)->Ping().ok());
  }
  EXPECT_EQ(pool.dials(), 1u);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(ClientPool, DiscardedLeaseNeverReentersThePool) {
  ServerFixture fixture;
  ClientPool pool;
  {
    Result<ClientPool::Lease> lease = pool.Checkout(fixture.endpoint());
    ASSERT_TRUE(lease.ok());
    lease->Discard();
  }
  EXPECT_EQ(pool.idle_count(), 0u);
  Result<ClientPool::Lease> lease = pool.Checkout(fixture.endpoint());
  ASSERT_TRUE(lease.ok());
  EXPECT_FALSE(lease->reused());  // had to dial again
}

TEST(ClientPool, IdleCapClosesExcessReturns) {
  ServerFixture fixture;
  ClientPool::Options options;
  options.max_idle_per_endpoint = 1;
  ClientPool pool(options);
  {
    Result<ClientPool::Lease> a = pool.Checkout(fixture.endpoint());
    ASSERT_TRUE(a.ok());
    Result<ClientPool::Lease> b =
        pool.Checkout(fixture.endpoint());  // first is leased: dials
    ASSERT_TRUE(b.ok());
    EXPECT_FALSE(b->reused());
  }
  EXPECT_EQ(pool.idle_count(), 1u);  // second return hit the cap
  EXPECT_EQ(pool.discards(), 1u);
}

TEST(ClientPool, ScanReusesPooledConnectionAcrossCalls) {
  ServerFixture fixture;
  obs::MetricsRegistry metrics;
  ClientPool pool(ClientPool::Options{}, &metrics);
  for (int i = 0; i < 3; ++i) {
    Result<sim::Message> scan = pool.ScanRelation(fixture.endpoint(), "hdoc");
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    ASSERT_TRUE(scan->status.ok());
    EXPECT_EQ(scan->tuples.size(), 2u);
  }
  EXPECT_EQ(pool.dials(), 1u);
  EXPECT_EQ(pool.reuses(), 2u);
  EXPECT_EQ(metrics.counter("serve.pool_dials"), 1u);
  EXPECT_EQ(metrics.counter("serve.pool_reuses"), 2u);
}

TEST(ClientPool, RelationLevelErrorDoesNotPoisonTheConnection) {
  ServerFixture fixture;
  ClientPool pool;
  Result<sim::Message> scan =
      pool.ScanRelation(fixture.endpoint(), "no_such_relation");
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_FALSE(scan->status.ok());  // NotFound rides inside the message
  EXPECT_EQ(pool.idle_count(), 1u);  // transport is healthy: kept
}

// The acceptance test: scan, restart the server at the same endpoint
// (invalidating the pooled socket server-side), scan again. The pool
// must detect the stale socket on the reused connection's failure and
// transparently reconnect, so the second scan still succeeds.
TEST(ClientPool, ReconnectsWhenPooledSocketWentStale) {
  auto fixture = std::make_unique<ServerFixture>();
  const uint16_t port = fixture->port();
  const std::string endpoint = fixture->endpoint();
  ClientPool pool;
  Result<sim::Message> scan = pool.ScanRelation(endpoint, "hdoc");
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(pool.idle_count(), 1u);

  // Restart: the pooled connection's server side is gone.
  fixture->Stop();
  fixture = std::make_unique<ServerFixture>(port);
  ASSERT_EQ(fixture->port(), port);

  bool reconnected = false;
  scan = pool.ScanRelation(endpoint, "hdoc", nullptr, &reconnected);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_TRUE(scan->status.ok());
  EXPECT_EQ(scan->tuples.size(), 2u);
  EXPECT_TRUE(reconnected);
  EXPECT_EQ(pool.dials(), 2u);  // original + the retry's fresh dial
  // The replacement connection is pooled again for the next caller.
  EXPECT_EQ(pool.idle_count(), 1u);
  bool reconnected_again = true;
  scan = pool.ScanRelation(endpoint, "hdoc", nullptr, &reconnected_again);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(reconnected_again);
}

// A dead endpoint (nothing listening) fails outright — the retry only
// covers reused sockets, so a fresh-dial failure propagates untouched.
TEST(ClientPool, FreshDialFailurePropagates) {
  auto fixture = std::make_unique<ServerFixture>();
  const std::string endpoint = fixture->endpoint();
  fixture.reset();  // nothing listening now
  ClientPool pool;
  Result<sim::Message> scan = pool.ScanRelation(endpoint, "hdoc");
  EXPECT_FALSE(scan.ok());
  EXPECT_EQ(pool.idle_count(), 0u);
}

}  // namespace
}  // namespace serve
}  // namespace pdms
