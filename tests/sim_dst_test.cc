// Deterministic simulation testing (DST) for the distributed peer runtime.
//
// Each seed expands into one complete schedule: a generated PDMS (catalog,
// data, query), a network fault profile (message loss, duplication, delay
// jitter), partitions, crashed peers, and catalog-level unavailability.
// The schedule is executed on the deterministic event loop and four
// invariants are checked:
//
//  1. Soundness under faults — the answers are a subset of the fault-free
//     twin's answers (which themselves match a centralized reformulate +
//     evaluate run). Faults may lose answers, never fabricate them.
//  2. Verdict accuracy — kComplete is claimed only when the answers equal
//     the fault-free answers and nothing was excluded; a degraded verdict
//     is accompanied by an actual exclusion or failure.
//  3. Determinism — re-running the same seed reproduces a byte-identical
//     message trace and identical answers.
//  4. Bounded termination — every schedule finishes within the virtual
//     time / event bounds; a kResourceExhausted result is a detected hang
//     and fails the test.
//
// Seed count and base default to 200 / 0 and are overridable with
// PDMS_DST_SEEDS / PDMS_DST_SEED0, so a failing seed N reproduces with:
//   PDMS_DST_SEEDS=1 PDMS_DST_SEED0=N ./sim_dst_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "pdms/core/reformulator.h"
#include "pdms/eval/evaluator.h"
#include "pdms/gen/workload.h"
#include "pdms/sim/sim_pdms.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace sim {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

/// Everything one seed expands into, kept together so a schedule can be
/// constructed twice for the determinism check.
struct Schedule {
  gen::WorkloadConfig workload;
  SimOptions sim;
  std::vector<std::pair<std::string, std::string>> partitions;
  std::vector<std::string> crashed;
  std::vector<std::string> catalog_down;  // peers the catalog knows are down
};

Schedule ExpandSeed(uint64_t seed, const std::vector<std::string>& peers) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);
  Schedule s;

  s.sim.seed = seed;
  s.sim.faults.drop_probability = rng.UniformDouble() * 0.4;
  s.sim.faults.duplicate_probability = rng.UniformDouble() * 0.2;
  s.sim.faults.delay_jitter_ms = rng.UniformDouble() * 5.0;
  s.sim.request_timeout_ms = 8.0 + rng.UniformDouble() * 8.0;
  s.sim.retry.max_attempts = 2 + rng.Uniform(4);  // 2..5 transmissions

  if (peers.empty()) return s;
  // Partitions: up to two node pairs, coordinator included as a possible
  // endpoint (partitioning the querying node from an owner is the
  // interesting case).
  size_t num_partitions = rng.Uniform(3);
  for (size_t i = 0; i < num_partitions; ++i) {
    std::string a = rng.Chance(0.5)
                        ? std::string(kCoordinatorName)
                        : peers[rng.Uniform(peers.size())];
    std::string b = peers[rng.Uniform(peers.size())];
    if (a != b) s.partitions.emplace_back(a, b);
  }
  // Crashes: at most one silent peer (receives, never responds).
  if (rng.Chance(0.3)) s.crashed.push_back(peers[rng.Uniform(peers.size())]);
  // Catalog-level unavailability: the coordinator already knows this peer
  // is down, so its sources are pruned statically, not probed.
  if (rng.Chance(0.25)) {
    s.catalog_down.push_back(peers[rng.Uniform(peers.size())]);
  }
  return s;
}

gen::WorkloadConfig WorkloadFor(uint64_t seed) {
  Rng rng(seed ^ 0x6a09e667f3bcc909ull);
  gen::WorkloadConfig config;
  config.num_peers = 8 + rng.Uniform(9);  // 8..16
  config.num_strata = 2 + rng.Uniform(2);  // 2..3
  config.relations_per_peer = 2;
  config.providers_per_relation = 2;
  config.chain_length = 2;
  config.query_subgoals = 2;
  config.definitional_fraction = rng.Chance(0.5) ? 0.0 : 0.3;
  config.facts_per_stored = 3 + rng.Uniform(2);  // 3..4
  config.value_domain = 4;  // small domain so joins produce answers
  config.seed = seed + 1;
  return config;
}

/// One run of a schedule; returns the answers, report, and trace.
struct RunOutcome {
  Status status = Status::Ok();
  Relation answers{"q", 0};
  DegradationReport report;
  std::string trace;
};

RunOutcome RunSchedule(const gen::Workload& workload,
                       const Schedule& schedule, bool with_faults) {
  PdmsNetwork network = workload.network;
  if (with_faults) {
    for (const std::string& peer : schedule.catalog_down) {
      (void)network.SetPeerAvailable(peer, false);
    }
  }
  SimOptions options = schedule.sim;
  if (!with_faults) {
    options.faults = LinkFaults{};  // reliable links, deterministic delay
  }
  SimPdms sim(network, workload.data, options);
  if (with_faults) {
    for (const auto& [a, b] : schedule.partitions) sim.Partition(a, b);
    for (const std::string& peer : schedule.crashed) {
      sim.SetPeerCrashed(peer, true);
    }
  }
  RunOutcome out;
  auto result = sim.Answer(workload.query);
  out.trace = sim.last_trace();
  if (!result.ok()) {
    out.status = result.status();
    return out;
  }
  out.answers = std::move(result->answers);
  out.report = std::move(result->degradation);
  return out;
}

TEST(SimDstTest, SeededSchedulesPreserveAllInvariants) {
  const size_t num_seeds = EnvSize("PDMS_DST_SEEDS", 200);
  const size_t seed0 = EnvSize("PDMS_DST_SEED0", 0);
  size_t degraded_runs = 0;
  size_t total_answers = 0;

  for (size_t i = 0; i < num_seeds; ++i) {
    const uint64_t seed = seed0 + i;
    SCOPED_TRACE("reproduce with: PDMS_DST_SEEDS=1 PDMS_DST_SEED0=" +
                 std::to_string(seed));

    auto workload = gen::GenerateWorkload(WorkloadFor(seed));
    ASSERT_TRUE(workload.ok()) << workload.status().ToString();
    std::vector<std::string> peer_names;
    for (const auto& peer : workload->network.peers()) {
      peer_names.push_back(peer.name);
    }
    Schedule schedule = ExpandSeed(seed, peer_names);

    // Reference answers: centralized reformulate + evaluate, no network.
    Reformulator reformulator(workload->network);
    auto ref = reformulator.Reformulate(workload->query);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    Relation central("q", workload->query.head().arity());
    if (!ref->rewriting.empty()) {
      auto eval = EvaluateUnion(ref->rewriting, workload->data);
      ASSERT_TRUE(eval.ok()) << eval.status().ToString();
      central = *eval;
    }

    // Fault-free twin: same runtime, reliable links. Must agree exactly
    // with the centralized run (the message passing itself loses nothing).
    RunOutcome twin = RunSchedule(*workload, schedule, /*with_faults=*/false);
    ASSERT_TRUE(twin.status.ok()) << twin.status.ToString();
    ASSERT_EQ(twin.answers.size(), central.size());
    for (const Tuple& t : central.tuples()) {
      ASSERT_TRUE(twin.answers.Contains(t))
          << "fault-free twin lost " << TupleToString(t);
    }
    ASSERT_EQ(twin.report.completeness, Completeness::kComplete);

    // Invariant 4 (bounded termination): the faulty run returns within
    // its virtual-time/event bounds; kResourceExhausted is a caught hang.
    RunOutcome faulty = RunSchedule(*workload, schedule, /*with_faults=*/true);
    ASSERT_TRUE(faulty.status.ok())
        << "schedule hung or failed: " << faulty.status.ToString()
        << "\ntrace tail:\n"
        << (faulty.trace.size() > 2000
                ? faulty.trace.substr(faulty.trace.size() - 2000)
                : faulty.trace);

    // Invariant 1 (soundness): faults only lose answers.
    for (const Tuple& t : faulty.answers.tuples()) {
      ASSERT_TRUE(twin.answers.Contains(t))
          << "fabricated answer " << TupleToString(t) << "\n"
          << faulty.report.ToString();
    }

    // Invariant 2 (verdict accuracy).
    const bool complete_answers = faulty.answers.size() == twin.answers.size();
    switch (faulty.report.completeness) {
      case Completeness::kComplete:
        ASSERT_TRUE(complete_answers)
            << "claimed complete but lost answers\n"
            << faulty.report.ToString();
        ASSERT_FALSE(faulty.report.degraded()) << faulty.report.ToString();
        break;
      case Completeness::kPartial:
        ASSERT_TRUE(faulty.report.degraded()) << faulty.report.ToString();
        ASSERT_FALSE(faulty.answers.empty()) << faulty.report.ToString();
        break;
      case Completeness::kEmptyBecauseUnavailable:
        ASSERT_TRUE(faulty.report.degraded()) << faulty.report.ToString();
        ASSERT_TRUE(faulty.answers.empty()) << faulty.report.ToString();
        break;
    }
    // A degraded verdict must point at something concrete.
    if (faulty.report.completeness != Completeness::kComplete) {
      ASSERT_TRUE(!faulty.report.excluded_stored.empty() ||
                  !faulty.report.excluded_peers.empty() ||
                  faulty.report.branches_pruned > 0)
          << faulty.report.ToString();
    }

    // Message accounting sanity: deliveries are explained by sends plus
    // injected duplicates, minus drops and partition blocks.
    const MessageStats& m = faulty.report.messages;
    ASSERT_EQ(m.delivered + m.dropped + m.partitioned, m.sent + m.duplicated)
        << m.ToString();

    // Invariant 3 (determinism): the same seed replays byte-identically.
    RunOutcome replay = RunSchedule(*workload, schedule, /*with_faults=*/true);
    ASSERT_TRUE(replay.status.ok());
    ASSERT_EQ(replay.trace, faulty.trace) << "trace diverged on replay";
    ASSERT_EQ(replay.answers.size(), faulty.answers.size());
    for (const Tuple& t : faulty.answers.tuples()) {
      ASSERT_TRUE(replay.answers.Contains(t));
    }

    if (faulty.report.degraded()) ++degraded_runs;
    total_answers += faulty.answers.size();
  }

  // The sweep must actually exercise degradation, not just healthy runs.
  if (num_seeds >= 50) {
    EXPECT_GT(degraded_runs, 0u);
    EXPECT_LT(degraded_runs, num_seeds);  // and some runs stay complete
    EXPECT_GT(total_answers, 0u);
  }
}

}  // namespace
}  // namespace sim
}  // namespace pdms
