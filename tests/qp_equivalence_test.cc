// The vectorized engine's acceptance property (docs/query_planning.md):
// on seeded random PDMSs with data — the paper's Figure-3 chain-of-peers
// shape — the vectorized evaluator must return byte-identical answers to
// the legacy tuple-at-a-time evaluator after canonical ordering, across
// thread counts (1/2/8) and plan-cache states (cold, warm, shared). The
// legacy twin stays in the tree exactly so this suite can hold the line.

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pdms/cache/goal_memo.h"
#include "pdms/cache/plan_cache.h"
#include "pdms/core/pdms.h"
#include "pdms/gen/workload.h"
#include "pdms/obs/metrics.h"

namespace pdms {
namespace {

gen::Workload MakeWorkload(uint64_t seed, size_t facts_per_stored,
                           int64_t value_domain) {
  gen::WorkloadConfig config;
  config.num_peers = 20;
  config.num_strata = 3;
  config.definitional_fraction = 0.25;
  config.providers_per_relation = 2;
  config.comparison_fraction = 0.2;
  config.facts_per_stored = facts_per_stored;
  config.value_domain = value_domain;
  config.seed = seed;
  auto workload = gen::GenerateWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  return std::move(*workload);
}

Pdms MakePdms(const gen::Workload& workload, size_t threads,
              bool vectorized) {
  ReformulationOptions options;
  options.threads = threads;
  options.vectorized_eval = vectorized;
  Pdms pdms(options);
  *pdms.mutable_network() = workload.network;
  *pdms.mutable_database() = workload.data;
  return pdms;
}

/// One run's observable outcome: answers canonically ordered (the legacy
/// evaluator returns them in discovery order, so its relation is sorted
/// here before rendering; the vectorized engine's already is — the
/// comparison is still byte-for-byte on the rendered text).
struct Outcome {
  std::string answers;
  std::string report;
};

Outcome RunOne(Pdms* pdms, const ConjunctiveQuery& query) {
  Outcome out;
  auto result = pdms->AnswerWithReport(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) {
    Relation sorted = result->answers;
    sorted.SortCanonical();
    out.answers = sorted.ToString();
    out.report = result->degradation.ToString();
  }
  return out;
}

TEST(QpEquivalence, VectorizedMatchesLegacyAcrossSeedsAndThreads) {
  for (uint64_t seed : {3u, 17u, 58u, 104u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    gen::Workload workload =
        MakeWorkload(seed, /*facts_per_stored=*/6, /*value_domain=*/8);
    Pdms legacy = MakePdms(workload, /*threads=*/1, /*vectorized=*/false);
    Outcome want = RunOne(&legacy, workload.query);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      Pdms vectorized = MakePdms(workload, threads, /*vectorized=*/true);
      Outcome got = RunOne(&vectorized, workload.query);
      EXPECT_EQ(got.answers, want.answers);
      EXPECT_EQ(got.report, want.report);
    }
  }
}

TEST(QpEquivalence, SparseAndDenseValueDomains) {
  // A tight value domain forces dense joins (heavy duplicate elimination);
  // a wide one makes most joins miss. Both must agree with legacy.
  for (int64_t domain : {int64_t{2}, int64_t{64}}) {
    SCOPED_TRACE("domain " + std::to_string(domain));
    gen::Workload workload = MakeWorkload(29, /*facts_per_stored=*/8, domain);
    Pdms legacy = MakePdms(workload, 1, false);
    Pdms vectorized = MakePdms(workload, 2, true);
    Outcome want = RunOne(&legacy, workload.query);
    Outcome got = RunOne(&vectorized, workload.query);
    EXPECT_EQ(got.answers, want.answers);
    EXPECT_EQ(got.report, want.report);
  }
}

TEST(QpEquivalence, PlanCacheStateDoesNotChangeAnswers) {
  gen::Workload workload = MakeWorkload(41, 6, 8);
  Pdms legacy = MakePdms(workload, 1, false);
  Outcome want = RunOne(&legacy, workload.query);

  // Cold, then warm through the same facade-attached cache: the second
  // query reuses both the rewriting and the cached physical plan.
  cache::PlanCache cache;
  obs::MetricsRegistry metrics;
  Pdms vectorized = MakePdms(workload, 2, true);
  vectorized.set_plan_cache(&cache);
  vectorized.set_metrics(&metrics);
  Outcome cold = RunOne(&vectorized, workload.query);
  Outcome warm = RunOne(&vectorized, workload.query);
  EXPECT_EQ(cold.answers, want.answers);
  EXPECT_EQ(warm.answers, want.answers);
  EXPECT_EQ(warm.report, cold.report);
  EXPECT_GT(metrics.counter("qp.plan_reused"), 0u);

  // A different facade sharing the cache (the serving pattern) also
  // reuses the plan slot and still matches.
  Pdms sharer = MakePdms(workload, 1, true);
  sharer.set_plan_cache(&cache);
  Outcome shared = RunOne(&sharer, workload.query);
  EXPECT_EQ(shared.answers, want.answers);
}

TEST(QpEquivalence, InsertsBetweenQueriesKeepTheEnginesAligned) {
  // Facts inserted after the first answer must show up identically in
  // both engines (the catalog refreshes incrementally; the cached plan's
  // fingerprint goes stale and is recompiled).
  gen::Workload workload = MakeWorkload(77, 5, 6);
  Pdms legacy = MakePdms(workload, 1, false);
  Pdms vectorized = MakePdms(workload, 2, true);
  RunOne(&legacy, workload.query);
  RunOne(&vectorized, workload.query);

  // Replay every stored fact (duplicates exercise dedup) and add one
  // genuinely new fact per relation — each tuple reversed keeps arity —
  // driving the incremental append path on the vectorized side.
  const Database& data = workload.data;
  for (const std::string& name : data.RelationNames()) {
    for (const Tuple& t : data.Find(name)->tuples()) {
      Status a = legacy.Insert(name, t);
      Status b = vectorized.Insert(name, t);
      ASSERT_EQ(a.ok(), b.ok());
    }
    const std::vector<Tuple>& tuples = data.Find(name)->tuples();
    if (!tuples.empty()) {
      Tuple reversed(tuples.front().rbegin(), tuples.front().rend());
      Status a = legacy.Insert(name, reversed);
      Status b = vectorized.Insert(name, reversed);
      ASSERT_EQ(a.ok(), b.ok());
    }
  }
  Outcome want = RunOne(&legacy, workload.query);
  Outcome got = RunOne(&vectorized, workload.query);
  EXPECT_EQ(got.answers, want.answers);
  EXPECT_EQ(got.report, want.report);
}

}  // namespace
}  // namespace pdms
