// Unit tests for the storage substrate: values, tuples, relations,
// databases.

#include <gtest/gtest.h>

#include "pdms/data/database.h"

namespace pdms {
namespace {

TEST(Value, KindsAndEquality) {
  Value i = Value::Int(42);
  Value s = Value::String("x");
  Value n = Value::Null(3);
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(s.is_string());
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(i, Value::Int(42));
  EXPECT_NE(i, Value::Int(43));
  EXPECT_NE(i, s);
  EXPECT_NE(n, Value::Null(4));
  EXPECT_EQ(n, Value::Null(3));
  EXPECT_EQ(i.int_value(), 42);
  EXPECT_EQ(s.string_value(), "x");
  EXPECT_EQ(n.null_id(), 3);
}

TEST(Value, OrderingAndToString) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::String("a") < Value::String("b"));
  // Cross-kind order fixed: null < int < string.
  EXPECT_TRUE(Value::Null(9) < Value::Int(0));
  EXPECT_TRUE(Value::Int(999) < Value::String(""));
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::String("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Null(2).ToString(), "_N2");
}

TEST(Value, HashConsistent) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_NE(Value::Int(5).Hash(), Value::Null(5).Hash());
  EXPECT_NE(Value::String("5").Hash(), Value::Int(5).Hash());
}

TEST(Tuple, HashAndNullDetection) {
  Tuple t1 = {Value::Int(1), Value::String("a")};
  Tuple t2 = {Value::Int(1), Value::String("a")};
  Tuple t3 = {Value::String("a"), Value::Int(1)};
  EXPECT_EQ(TupleHash(t1), TupleHash(t2));
  EXPECT_NE(TupleHash(t1), TupleHash(t3));
  EXPECT_FALSE(TupleHasNull(t1));
  EXPECT_TRUE(TupleHasNull({Value::Int(1), Value::Null(0)}));
  EXPECT_EQ(TupleToString(t1), "(1, \"a\")");
}

TEST(Relation, SetSemantics) {
  Relation r("r", 2);
  EXPECT_TRUE(r.Insert({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(r.Insert({Value::Int(1), Value::Int(2)}));  // duplicate
  EXPECT_TRUE(r.Insert({Value::Int(2), Value::Int(1)}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(r.Contains({Value::Int(9), Value::Int(9)}));
  r.Clear();
  EXPECT_TRUE(r.empty());
}

TEST(Relation, ManyTuplesWithCollisions) {
  Relation r("r", 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(r.Insert({Value::Int(i)}));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(r.Insert({Value::Int(i)}));
    EXPECT_TRUE(r.Contains({Value::Int(i)}));
  }
  EXPECT_EQ(r.size(), 1000u);
}

TEST(Database, CreateAndInsert) {
  Database db;
  EXPECT_TRUE(db.CreateRelation("r", 2).ok());
  EXPECT_TRUE(db.CreateRelation("r", 2).ok());   // idempotent
  EXPECT_FALSE(db.CreateRelation("r", 3).ok());  // arity conflict
  EXPECT_TRUE(db.Insert("r", {Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(db.Insert("r", {Value::Int(1), Value::Int(2)}));
  // Implicit creation with the tuple's arity.
  EXPECT_TRUE(db.Insert("s", {Value::Int(9)}));
  EXPECT_TRUE(db.HasRelation("s"));
  auto arity = db.RelationArity("s");
  ASSERT_TRUE(arity.ok());
  EXPECT_EQ(*arity, 1u);
  EXPECT_FALSE(db.RelationArity("zzz").ok());
  EXPECT_EQ(db.TotalTuples(), 2u);
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"r", "s"}));
  EXPECT_EQ(db.Find("zzz"), nullptr);
  ASSERT_NE(db.Find("r"), nullptr);
  EXPECT_EQ(db.Find("r")->size(), 1u);
}

TEST(Database, CopySemantics) {
  Database db;
  db.Insert("r", {Value::Int(1)});
  Database copy = db;
  copy.Insert("r", {Value::Int(2)});
  EXPECT_EQ(db.Find("r")->size(), 1u);
  EXPECT_EQ(copy.Find("r")->size(), 2u);
}

}  // namespace
}  // namespace pdms
