// The cost-aware routing equivalence suite (docs/network_cost_model.md):
// cost estimates only ever reorder work, so a cost-aware run must return
// BYTE-IDENTICAL answers — and an identical degradation verdict — to the
// cost-blind run over the same topology, link map, and seed. The sweep
// varies topology kind, link-map shape, replica count, and relay fan-out
// across many seeds (`PDMS_EQ_SEEDS` overrides the count; CI runs a
// reduced sweep under sanitizers).
//
// What is compared: the answer relation's ToString (the vectorized engine
// sorts answers canonically) and the degradation report minus the
// per-hop message counters and the clocked access fields (backoff_ms,
// elapsed_ms) — routing is allowed to change how many messages were spent
// and when, never what came back or what was lost.
//
// Fault cases are different: with a crashed provider the two modes may
// legitimately pick different replicas, so there the contract weakens to
// soundness — every answer is a subset of the fault-free answer set.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "pdms/core/cost_estimator.h"
#include "pdms/exec/thread_pool.h"
#include "pdms/gen/topology.h"
#include "pdms/sim/sim_pdms.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

// The comparable slice of a degradation report: everything except the
// message counters and the clocked access fields.
std::string NormalizeReport(const DegradationReport& r) {
  std::string out = CompletenessName(r.completeness);
  for (const std::string& p : r.excluded_peers) out += "|peer:" + p;
  for (const std::string& s : r.excluded_stored) out += "|stored:" + s;
  out += StrFormat(
      "|rw:%zu|br:%zu|probes:%zu|attempts:%zu|ok:%zu|fail:%zu|to:%zu",
      r.rewritings_skipped, r.branches_pruned, r.access.probes,
      r.access.attempts, r.access.successes, r.access.failures,
      r.access.timeouts);
  return out;
}

struct EqRun {
  std::string answers;
  std::string report;
};

struct EqConfig {
  uint64_t seed = 1;
  bool cost_aware = false;
  bool relay_fanout = true;
  size_t threads = 1;
  exec::ThreadPool* pool = nullptr;
  std::string crashed_peer;  // empty = fault-free
};

// One full distributed run over `topology` + `links`; the SimPdms is
// rebuilt per run so the two modes share nothing but the inputs.
Result<EqRun> RunOnce(const gen::Topology& topology, const LinkMap& links,
                      const ConjunctiveQuery& query, const EqConfig& config) {
  sim::SimOptions options;
  options.seed = config.seed;
  options.network_model = "contention";
  options.links = &links;
  // The default 10ms per-hop timeout sits below one WAN round trip; give
  // every request comfortable headroom so fault-free runs stay fault-free.
  options.request_timeout_ms = 200.0;
  options.reform.cost_aware = config.cost_aware;
  options.relay_fanout = config.relay_fanout;
  options.reform.threads = config.threads;
  options.reform.executor = config.pool;
  sim::SimPdms sim(topology.network, topology.data, options);
  if (!config.crashed_peer.empty()) {
    sim.SetPeerCrashed(config.crashed_peer, true);
  }
  auto result = sim.Answer(query);
  PDMS_RETURN_IF_ERROR(result.status());
  EqRun out;
  out.answers = result->answers.ToString();
  out.report = NormalizeReport(result->degradation);
  return out;
}

std::set<std::string> AnswerLines(const std::string& answers) {
  std::set<std::string> lines;
  std::istringstream in(answers);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.insert(line);
  }
  return lines;
}

TEST(CostEquivalence, CostAwareMatchesCostBlindAcrossSeeds) {
  const size_t seeds = EnvSize("PDMS_EQ_SEEDS", 200);
  for (size_t s = 0; s < seeds; ++s) {
    SCOPED_TRACE(StrFormat(
        "seed %zu — reproduce with: PDMS_EQ_SEEDS=%zu (sweep runs seeds "
        "0..%zu; this failure is at index %zu)",
        s, s + 1, seeds - 1, s));

    gen::TopologyConfig topo_config;
    topo_config.kind = s % 2 == 0 ? gen::TopologyConfig::Kind::kCommunity
                                  : gen::TopologyConfig::Kind::kPowerLaw;
    topo_config.num_peers = 12 + s % 9;
    topo_config.num_communities = 3 + s % 3;
    topo_config.replicas = s % 3 == 0 ? 1 : 0;
    topo_config.seed = 1000 + s;
    auto topology = gen::GenerateTopology(topo_config);
    ASSERT_TRUE(topology.ok()) << topology.status().ToString();

    gen::LinkMapConfig link_config;
    link_config.shape = s % 4 < 2 ? gen::LinkMapConfig::Shape::kClusteredWan
                                  : gen::LinkMapConfig::Shape::kHubSpoke;
    link_config.num_zones = 4;
    link_config.wan_per_message_ms = 1.0;  // make the trunks actually queue
    LinkMap links = GenerateLinkMap(*topology, link_config);

    const ConjunctiveQuery query =
        gen::TopologyQuery(s % topo_config.num_peers, 1);

    EqConfig blind;
    blind.seed = s + 1;
    blind.cost_aware = false;
    auto blind_run = RunOnce(*topology, links, query, blind);
    ASSERT_TRUE(blind_run.ok()) << blind_run.status().ToString();

    EqConfig aware = blind;
    aware.cost_aware = true;
    aware.relay_fanout = s % 5 != 0;  // also cover batching disabled
    auto aware_run = RunOnce(*topology, links, query, aware);
    ASSERT_TRUE(aware_run.ok()) << aware_run.status().ToString();

    EXPECT_EQ(blind_run->answers, aware_run->answers);
    EXPECT_EQ(blind_run->report, aware_run->report);
  }
}

TEST(CostEquivalence, CostAwareAnswersAreThreadCountInvariant) {
  gen::TopologyConfig topo_config;
  topo_config.kind = gen::TopologyConfig::Kind::kCommunity;
  topo_config.num_peers = 18;
  topo_config.num_communities = 3;
  topo_config.replicas = 1;
  topo_config.seed = 77;
  auto topology = gen::GenerateTopology(topo_config);
  ASSERT_TRUE(topology.ok());

  gen::LinkMapConfig link_config;
  link_config.shape = gen::LinkMapConfig::Shape::kClusteredWan;
  LinkMap links = GenerateLinkMap(*topology, link_config);

  exec::ThreadPool pool(2);
  for (size_t index : {0u, 7u, 17u}) {
    SCOPED_TRACE(StrFormat("query index %zu", index));
    const ConjunctiveQuery query = gen::TopologyQuery(index, 1);
    EqConfig serial;
    serial.seed = 9;
    serial.cost_aware = true;
    auto serial_run = RunOnce(*topology, links, query, serial);
    ASSERT_TRUE(serial_run.ok()) << serial_run.status().ToString();

    EqConfig threaded = serial;
    threaded.threads = 2;
    threaded.pool = &pool;
    auto threaded_run = RunOnce(*topology, links, query, threaded);
    ASSERT_TRUE(threaded_run.ok()) << threaded_run.status().ToString();

    EXPECT_EQ(serial_run->answers, threaded_run->answers);
    EXPECT_EQ(serial_run->report, threaded_run->report);
  }
}

TEST(CostEquivalence, CrashedProviderKeepsBothModesSound) {
  gen::TopologyConfig topo_config;
  topo_config.kind = gen::TopologyConfig::Kind::kCommunity;
  topo_config.num_peers = 16;
  topo_config.num_communities = 4;
  topo_config.replicas = 1;
  topo_config.seed = 41;
  auto topology = gen::GenerateTopology(topo_config);
  ASSERT_TRUE(topology.ok());

  gen::LinkMapConfig link_config;
  link_config.shape = gen::LinkMapConfig::Shape::kClusteredWan;
  LinkMap links = GenerateLinkMap(*topology, link_config);

  const ConjunctiveQuery query = gen::TopologyQuery(3, 1);
  EqConfig healthy;
  healthy.seed = 5;
  healthy.cost_aware = false;
  auto baseline = RunOnce(*topology, links, query, healthy);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::set<std::string> full = AnswerLines(baseline->answers);

  // Crash one provider the query's neighborhood depends on. With replicas
  // the two modes may resolve the loss through different hosts, so the
  // contract here is soundness, not byte equality: every answer either
  // mode returns must appear in the fault-free answer set.
  for (bool cost_aware : {false, true}) {
    SCOPED_TRACE(cost_aware ? "cost-aware" : "cost-blind");
    EqConfig crashed = healthy;
    crashed.cost_aware = cost_aware;
    crashed.crashed_peer = gen::TopologyPeerName(3);
    auto run = RunOnce(*topology, links, query, crashed);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    for (const std::string& line : AnswerLines(run->answers)) {
      EXPECT_TRUE(full.count(line) != 0)
          << "unsound answer under crash: " << line;
    }
  }
}

}  // namespace
}  // namespace pdms
