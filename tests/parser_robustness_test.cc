// Parser robustness: seeded corpus mutation against ParsePplProgram. The
// parser fronts every program a peer publishes, so arbitrary garbage must
// come back as a graceful Status — never a crash, hang, or silent
// acceptance of a mangled catalog. Mutations are deterministic in the
// iteration index, so any failure reproduces from its index alone.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "pdms/core/ppl_parser.h"
#include "pdms/gen/workload.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

// Valid seed documents: a hand-written program covering every statement
// form (including facts, strings, comments), plus generated networks
// rendered back to PPL text.
std::vector<std::string> BuildCorpus() {
  std::vector<std::string> corpus;
  corpus.push_back(R"(
    // Emergency-services example, Section 2.
    peer FS {
      relation Skill(sid, skill);
      relation AssignedTo/2;
    }
    peer H { relation Doctor(name, hosp); }
    stored s1(f, e) <= FS:AssignedTo(f, e).
    stored h_doc(n, h) = H:Doctor(n, h).
    mapping FS:Skill(f, s) :- FS:AssignedTo(f, s).
    mapping (f1, f2) : FS:Skill(f1, f2) <= FS:AssignedTo(f1, f2).
    fact s1(7, "engine-12").
    fact h_doc("ada", "central").  # trailing comment
  )");
  for (uint64_t seed : {1u, 2u, 3u}) {
    gen::WorkloadConfig config;
    config.num_peers = 6;
    config.num_strata = 2;
    config.relations_per_peer = 2;
    config.seed = seed;
    auto workload = gen::GenerateWorkload(config);
    if (workload.ok()) corpus.push_back(workload->network.ToString());
  }
  return corpus;
}

// One deterministic mutation of `doc` (truncation, byte flip, span
// deletion, or insertion of syntax-shaped noise).
std::string Mutate(const std::string& doc, Rng* rng) {
  std::string out = doc;
  // Bytes likely to hit parser decision points, plus raw control bytes.
  static const char kNoise[] = "(){};:<=,.\"/#\n\0\xff\x01 relationpeerstoredmappingfact0123456789";
  switch (rng->Uniform(4)) {
    case 0:  // truncate
      out.resize(rng->Uniform(out.size() + 1));
      break;
    case 1: {  // flip one byte
      if (out.empty()) break;
      size_t pos = rng->Uniform(out.size());
      out[pos] = kNoise[rng->Uniform(sizeof(kNoise) - 1)];
      break;
    }
    case 2: {  // delete a span
      if (out.empty()) break;
      size_t pos = rng->Uniform(out.size());
      size_t len = 1 + rng->Uniform(16);
      out.erase(pos, len);
      break;
    }
    default: {  // insert noise
      size_t pos = rng->Uniform(out.size() + 1);
      size_t len = 1 + rng->Uniform(8);
      std::string noise;
      for (size_t i = 0; i < len; ++i) {
        noise += kNoise[rng->Uniform(sizeof(kNoise) - 1)];
      }
      out.insert(pos, noise);
      break;
    }
  }
  return out;
}

TEST(ParserRobustnessTest, MutatedProgramsNeverCrashTheParser) {
  const size_t iterations = EnvSize("PDMS_FUZZ_ITERS", 2000);
  std::vector<std::string> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 2u);

  // The unmutated corpus parses cleanly — otherwise the fuzz loop would
  // be exercising error paths only.
  for (const std::string& doc : corpus) {
    auto program = ParsePplProgram(doc);
    ASSERT_TRUE(program.ok()) << program.status().ToString() << "\n" << doc;
  }

  size_t rejected = 0;
  for (size_t i = 0; i < iterations; ++i) {
    SCOPED_TRACE("mutation index " + std::to_string(i));
    Rng rng(i * 0x100000001b3ull + 0xcbf29ce484222325ull);
    std::string doc = corpus[rng.Uniform(corpus.size())];
    // Stack up to 3 mutations so errors compound.
    size_t rounds = 1 + rng.Uniform(3);
    for (size_t r = 0; r < rounds; ++r) doc = Mutate(doc, &rng);

    auto program = ParsePplProgram(doc);  // must return, never crash
    if (!program.ok()) {
      ++rejected;
      // A graceful rejection names the problem.
      EXPECT_FALSE(program.status().message().empty());
    }
  }
  // Mutations must actually reach the error paths (and some must survive —
  // e.g. mutations inside comments — proving we don't reject everything).
  EXPECT_GT(rejected, iterations / 4);
  EXPECT_LT(rejected, iterations);
}

// Pathological inputs that target specific lexer/parser states.
TEST(ParserRobustnessTest, HandPickedPathologicalInputs) {
  using namespace std::string_literals;
  const std::vector<std::string> inputs = {
      "",
      "\n\n\n",
      "peer",
      "peer {",
      "peer P {",
      "peer P { relation",
      "peer P { relation R(",
      "peer P { relation R/; }",
      "peer P { relation R/99999999999999999999; }",
      "stored",
      "stored s(",
      "stored s(x) <=",
      "stored s(x) <= P:R(x)",  // missing final '.'
      "mapping",
      "mapping (",
      "mapping (x) :",
      "mapping (x) : <= .",
      "fact",
      "fact s(",
      "fact s(\"unterminated",
      "fact s(1e309).",
      "fact s(--3).",
      // Embedded NUL mid-program; the ""s literal keeps the true length.
      "peer P { relation R/2; }\0stored s(x) <= P:R(x, y)."s,
      std::string(1 << 16, '('),
      std::string(1 << 16, '"'),
      "peer \xff\xfe { relation \x01/2; }",
      "// comment with no newline at eof",
      "# " + std::string(1 << 12, 'x'),
  };
  for (size_t i = 0; i < inputs.size(); ++i) {
    SCOPED_TRACE("input index " + std::to_string(i));
    auto program = ParsePplProgram(inputs[i]);  // must not crash
    if (!program.ok()) {
      EXPECT_FALSE(program.status().message().empty());
    }
  }
}

}  // namespace
}  // namespace pdms
