// End-to-end property tests: on randomly generated PDMSs in the tractable
// fragment, answers obtained through reformulation must equal the chase
// oracle's certain answers (completeness + soundness, Section 4's
// guarantee); with optimizations toggled the rewriting sets must agree.

#include <gtest/gtest.h>

#include <set>

#include "pdms/core/certain_answers.h"
#include "pdms/core/reformulator.h"
#include "pdms/eval/evaluator.h"
#include "pdms/gen/workload.h"
#include "pdms/lang/canonical.h"

namespace pdms {
namespace {

gen::WorkloadConfig SmallConfig(uint64_t seed) {
  gen::WorkloadConfig config;
  config.num_peers = 12;
  config.num_strata = 3;
  config.relations_per_peer = 2;
  config.providers_per_relation = 2;
  config.chain_length = 2;
  config.query_subgoals = 2;
  config.facts_per_stored = 4;
  config.value_domain = 4;  // small domain => joins actually hit
  config.seed = seed;
  return config;
}

class ReformulationVsOracleTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReformulationVsOracleTest, AnswersMatchCertainAnswers) {
  for (double dd : {0.0, 0.3, 1.0}) {
    gen::WorkloadConfig config = SmallConfig(GetParam());
    config.definitional_fraction = dd;
    auto w = gen::GenerateWorkload(config);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    ASSERT_TRUE(w->network.Classify().inclusions_acyclic);

    Reformulator reformulator(w->network);
    auto result = reformulator.Reformulate(w->query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    Relation answers("Q", w->query.head().arity());
    if (!result->rewriting.empty()) {
      auto eval = EvaluateUnion(result->rewriting, w->data);
      ASSERT_TRUE(eval.ok()) << eval.status().ToString();
      answers = *eval;
    }

    auto oracle = CertainAnswers(w->network, w->data, w->query);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

    // Soundness: every reformulation answer is certain.
    for (const Tuple& t : answers.tuples()) {
      EXPECT_TRUE(oracle->Contains(t))
          << "unsound answer " << TupleToString(t) << " (seed "
          << GetParam() << ", dd " << dd << ")\nquery "
          << w->query.ToString();
    }
    // Completeness (tractable fragment): every certain answer is found.
    for (const Tuple& t : oracle->tuples()) {
      EXPECT_TRUE(answers.Contains(t))
          << "missed certain answer " << TupleToString(t) << " (seed "
          << GetParam() << ", dd " << dd << ")\nquery "
          << w->query.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReformulationVsOracleTest,
                         ::testing::Range<uint64_t>(1, 13));

// The optimizations must not change the set of rewritings (only the cost
// of finding them).
class OptimizationEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

std::set<std::string> RewritingKeys(const UnionQuery& uq) {
  std::set<std::string> keys;
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    keys.insert(CanonicalQueryKey(cq));
  }
  return keys;
}

TEST_P(OptimizationEquivalenceTest, SameRewritingsAllConfigurations) {
  gen::WorkloadConfig config = SmallConfig(GetParam());
  config.definitional_fraction = 0.4;
  auto w = gen::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());

  ReformulationOptions baseline;
  baseline.prune_unsatisfiable = false;
  baseline.prune_dead_ends = false;
  baseline.order_expansions = false;
  baseline.memoize_solutions = false;
  Reformulator base_ref(w->network, baseline);
  auto base = base_ref.Reformulate(w->query);
  ASSERT_TRUE(base.ok());
  std::set<std::string> base_keys = RewritingKeys(base->rewriting);

  for (int mask = 1; mask < 16; ++mask) {
    ReformulationOptions opts;
    opts.prune_unsatisfiable = mask & 1;
    opts.prune_dead_ends = mask & 2;
    opts.order_expansions = mask & 4;
    opts.memoize_solutions = mask & 8;
    Reformulator reformulator(w->network, opts);
    auto result = reformulator.Reformulate(w->query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(RewritingKeys(result->rewriting), base_keys)
        << "optimization mask " << mask << " changed the rewriting set "
        << "(seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizationEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 9));

// With comparison predicates in definitional mapping bodies — the Theorem
// 3.3.1 position where query answering stays polynomial — the algorithm
// must remain sound AND complete. The chase oracle handles these specs
// directly (the comparisons sit on TGD premises), so we can compare answer
// sets exactly, which exercises constraint labels, granted-vs-required
// constraint bookkeeping, and the implication fallback at assembly.
class ComparisonFragmentTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ComparisonFragmentTest, AnswersMatchCertainAnswers) {
  gen::WorkloadConfig config = SmallConfig(GetParam());
  config.definitional_fraction = 0.5;
  config.comparison_fraction = 0.6;
  config.value_domain = 6;
  auto w = gen::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());
  Reformulator reformulator(w->network);
  auto result = reformulator.Reformulate(w->query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const ConjunctiveQuery& cq : result->rewriting.disjuncts()) {
    EXPECT_TRUE(cq.CheckSafe().ok()) << cq.ToString();
  }
  Relation answers("Q", w->query.head().arity());
  if (!result->rewriting.empty()) {
    auto eval = EvaluateUnion(result->rewriting, w->data);
    ASSERT_TRUE(eval.ok()) << eval.status().ToString();
    answers = *eval;
  }
  auto oracle = CertainAnswers(w->network, w->data, w->query);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  for (const Tuple& t : answers.tuples()) {
    EXPECT_TRUE(oracle->Contains(t))
        << "unsound answer " << TupleToString(t) << " (seed " << GetParam()
        << ")\nquery " << w->query.ToString();
  }
  for (const Tuple& t : oracle->tuples()) {
    EXPECT_TRUE(answers.Contains(t))
        << "missed certain answer " << TupleToString(t) << " (seed "
        << GetParam() << ")\nquery " << w->query.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComparisonFragmentTest,
                         ::testing::Range<uint64_t>(1, 11));

// Cyclic PDMSs with projection-free peer equalities (the Theorem 3.2.1
// fragment, e.g. replication): the guard must terminate reformulation and
// the answers must still equal the certain answers.
class ReplicationFragmentTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicationFragmentTest, CyclicEqualitiesStayComplete) {
  gen::WorkloadConfig config = SmallConfig(GetParam());
  config.definitional_fraction = 0.2;
  auto w = gen::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());
  // Add replication: the first query relation is mirrored at a fresh peer
  // with a projection-free equality (like ECC:Vehicle = 9DC:Vehicle), and
  // the replica gets its own storage.
  const std::string original = w->query.body()[0].predicate();
  ASSERT_TRUE(
      w->network.AddPeer("Replica", {{"Copy", config.arity}}).ok());
  std::vector<Term> args;
  for (size_t i = 0; i < config.arity; ++i) {
    args.push_back(Term::Var("r" + std::to_string(i)));
  }
  PeerMapping replication;
  replication.kind = PeerMappingKind::kEquality;
  Atom iface("_iface_repl", args);
  replication.lhs =
      ConjunctiveQuery(iface, {Atom("Replica:Copy", args)});
  replication.rhs = ConjunctiveQuery(iface, {Atom(original, args)});
  ASSERT_TRUE(w->network.AddPeerMapping(std::move(replication)).ok());
  StorageDescription store;
  store.view =
      ConjunctiveQuery(Atom("replica_store", args),
                       {Atom("Replica:Copy", args)});
  ASSERT_TRUE(w->network.AddStorageDescription(std::move(store)).ok());
  w->data.Insert("replica_store",
                 {Value::Int(0), Value::Int(1)});

  Reformulator reformulator(w->network);
  auto result = reformulator.Reformulate(w->query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Relation answers("Q", w->query.head().arity());
  if (!result->rewriting.empty()) {
    auto eval = EvaluateUnion(result->rewriting, w->data);
    ASSERT_TRUE(eval.ok());
    answers = *eval;
  }
  auto oracle = CertainAnswers(w->network, w->data, w->query);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  for (const Tuple& t : answers.tuples()) {
    EXPECT_TRUE(oracle->Contains(t))
        << "unsound " << TupleToString(t) << " (seed " << GetParam() << ")";
  }
  for (const Tuple& t : oracle->tuples()) {
    EXPECT_TRUE(answers.Contains(t))
        << "missed " << TupleToString(t) << " (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationFragmentTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace pdms
