// Tests for containment mappings (Chandra-Merlin), CQ minimization, and
// redundancy removal on unions.

#include <gtest/gtest.h>

#include "pdms/data/database.h"
#include "pdms/eval/evaluator.h"
#include "pdms/lang/homomorphism.h"
#include "pdms/lang/parser.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseRuleText(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(Containment, IdenticalQueriesContainEachOther) {
  auto q = Q("q(x) :- r(x, y).");
  EXPECT_TRUE(ContainsCQ(q, q));
  EXPECT_TRUE(EquivalentCQ(q, q));
}

TEST(Containment, MoreSpecificIsContained) {
  auto general = Q("q(x) :- r(x, y).");
  auto specific = Q("q(x) :- r(x, y), s(y).");
  EXPECT_TRUE(ContainsCQ(general, specific));
  EXPECT_FALSE(ContainsCQ(specific, general));
}

TEST(Containment, RepeatedVariablePatterns) {
  auto loop = Q("q(x) :- r(x, x).");
  auto path = Q("q(x) :- r(x, y).");
  // Every r(x,x) answer is an r(x,y) answer.
  EXPECT_TRUE(ContainsCQ(path, loop));
  EXPECT_FALSE(ContainsCQ(loop, path));
}

TEST(Containment, ConstantsMustMatch) {
  auto with_const = Q("q(x) :- r(x, 3).");
  auto general = Q("q(x) :- r(x, y).");
  EXPECT_TRUE(ContainsCQ(general, with_const));
  EXPECT_FALSE(ContainsCQ(with_const, general));
  auto other_const = Q("q(x) :- r(x, 4).");
  EXPECT_FALSE(ContainsCQ(with_const, other_const));
}

TEST(Containment, HeadMappingRespected) {
  auto q1 = Q("q(x, y) :- r(x, y).");
  auto q2 = Q("q(y, x) :- r(x, y).");
  EXPECT_FALSE(ContainsCQ(q1, q2));
  EXPECT_FALSE(ContainsCQ(q2, q1));
}

TEST(Containment, ClassicCycleExample) {
  // A triangle query is contained in the path query of equal length.
  auto path2 = Q("q() :- e(x, y), e(y, z).");
  auto triangle = Q("q() :- e(a, b), e(b, c), e(c, a).");
  EXPECT_TRUE(ContainsCQ(path2, triangle));
  EXPECT_FALSE(ContainsCQ(triangle, path2));
}

TEST(Containment, ComparisonsConservative) {
  auto general = Q("q(x) :- r(x, y), x < 5.");
  auto exact = Q("q(x) :- r(x, y), x < 5.");
  EXPECT_TRUE(ContainsCQ(general, exact));
  auto flipped = Q("q(x) :- r(x, y), 5 > x.");
  EXPECT_TRUE(ContainsCQ(general, flipped));
  auto missing = Q("q(x) :- r(x, y).");
  EXPECT_FALSE(ContainsCQ(general, missing));
  // Ground instances evaluate.
  auto grounded = Q("q(3) :- r(3, y).");
  EXPECT_TRUE(ContainsCQ(general, grounded));
  auto bad_ground = Q("q(9) :- r(9, y).");
  EXPECT_FALSE(ContainsCQ(general, bad_ground));
}

TEST(Minimize, DropsRedundantAtoms) {
  auto q = Q("q(x) :- r(x, y), r(x, z).");
  ConjunctiveQuery min = MinimizeCQ(q);
  EXPECT_EQ(min.body().size(), 1u);
  EXPECT_TRUE(EquivalentCQ(q, min));
}

TEST(Minimize, KeepsNecessaryAtoms) {
  auto q = Q("q(x) :- r(x, y), s(y, z).");
  ConjunctiveQuery min = MinimizeCQ(q);
  EXPECT_EQ(min.body().size(), 2u);
}

TEST(Minimize, CoreOfTriangleWithLoop) {
  // e(x,x) folds the whole pattern onto the loop.
  auto q = Q("q() :- e(x, x), e(x, y), e(y, x).");
  ConjunctiveQuery min = MinimizeCQ(q);
  EXPECT_EQ(min.body().size(), 1u) << min.ToString();
}

TEST(Minimize, QueriesWithComparisonsReturnedUnchanged) {
  auto q = Q("q(x) :- r(x, y), r(x, z), y < 5.");
  ConjunctiveQuery min = MinimizeCQ(q);
  EXPECT_EQ(min.body().size(), 2u);
}

TEST(RemoveRedundant, DropsContainedDisjuncts) {
  UnionQuery uq({
      Q("q(x) :- r(x, y)."),
      Q("q(x) :- r(x, y), s(y)."),  // contained in the first
      Q("q(x) :- t(x)."),
  });
  UnionQuery cleaned = RemoveRedundantDisjuncts(uq);
  EXPECT_EQ(cleaned.size(), 2u) << cleaned.ToString();
}

TEST(RemoveRedundant, KeepsOneOfEquivalentPair) {
  UnionQuery uq({
      Q("q(x) :- r(x, y)."),
      Q("q(x) :- r(x, z)."),
  });
  UnionQuery cleaned = RemoveRedundantDisjuncts(uq);
  EXPECT_EQ(cleaned.size(), 1u);
}

// Property: containment verdicts agree with evaluation on random small
// databases (a positive ContainsCQ verdict means the specific query's
// answers are always a subset of the general one's).

class ContainmentPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContainmentPropertyTest, PositiveVerdictImpliesSubsetAnswers) {
  Rng rng(GetParam());
  auto random_query = [&](int max_atoms) {
    std::vector<Atom> body;
    int atoms = 1 + rng.Uniform(max_atoms);
    for (int i = 0; i < atoms; ++i) {
      std::string pred = rng.Chance(0.5) ? "r" : "s";
      Term a = Term::Var(std::string(1, 'a' + rng.Uniform(3)));
      Term b = rng.Chance(0.2)
                   ? Term::Int(rng.UniformInt(0, 2))
                   : Term::Var(std::string(1, 'a' + rng.Uniform(3)));
      body.emplace_back(pred, std::vector<Term>{a, b});
    }
    // Head: one variable of the body.
    std::vector<std::string> vars;
    for (const Atom& a : body) CollectVariables(a, &vars);
    Atom head("q", {Term::Var(vars.empty() ? "a" : vars[0])});
    if (vars.empty()) body.emplace_back("r", std::vector<Term>{
        Term::Var("a"), Term::Var("a")});
    return ConjunctiveQuery(head, body);
  };
  for (int round = 0; round < 40; ++round) {
    ConjunctiveQuery q1 = random_query(3);
    ConjunctiveQuery q2 = random_query(3);
    if (!ContainsCQ(q1, q2)) continue;
    // Build a few random databases and check answers(q2) ⊆ answers(q1).
    for (int d = 0; d < 3; ++d) {
      Database db;
      int tuples = 2 + rng.Uniform(6);
      for (int t = 0; t < tuples; ++t) {
        db.Insert(rng.Chance(0.5) ? "r" : "s",
                  {Value::Int(rng.UniformInt(0, 2)),
                   Value::Int(rng.UniformInt(0, 2))});
      }
      auto a1 = EvaluateCQ(q1, db);
      auto a2 = EvaluateCQ(q2, db);
      ASSERT_TRUE(a1.ok() && a2.ok());
      for (const Tuple& t : a2->tuples()) {
        EXPECT_TRUE(a1->Contains(t))
            << q1.ToString() << " claimed to contain " << q2.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentPropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace pdms
