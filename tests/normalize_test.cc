// Tests for Step-1 normalization: equality splitting, fresh-view
// introduction, bare-atom fast path, and index construction.

#include <gtest/gtest.h>

#include "pdms/core/normalize.h"
#include "pdms/core/ppl_parser.h"

namespace pdms {
namespace {

ExpansionRules NormalizeText(const std::string& text) {
  auto program = ParsePplProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return Normalize(program->network);
}

TEST(Normalize, StorageBecomesDirectView) {
  ExpansionRules r = NormalizeText(R"(
    peer A { relation R(x, y); }
    stored s(x, y) <= A:R(x, y).
  )");
  ASSERT_EQ(r.views.size(), 1u);
  EXPECT_EQ(r.views[0].view.head().predicate(), "s");
  EXPECT_TRUE(r.rules.empty());
  EXPECT_EQ(r.stored.count("s"), 1u);
  ASSERT_EQ(r.views_by_body_pred.count("A:R"), 1u);
  EXPECT_EQ(r.num_descriptions, 1u);
}

TEST(Normalize, BareAtomInclusionSkipsFreshView) {
  ExpansionRules r = NormalizeText(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) <= A:R(x, y).
  )");
  ASSERT_EQ(r.views.size(), 1u);
  EXPECT_EQ(r.views[0].view.head().predicate(), "B:S");
  EXPECT_TRUE(r.rules.empty());
}

TEST(Normalize, ComplexLhsIntroducesFreshViewAndRule) {
  ExpansionRules r = NormalizeText(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); relation T(x, y); }
    mapping (x, y) : B:S(x, z), B:T(z, y) <= A:R(x, y).
  )");
  ASSERT_EQ(r.views.size(), 1u);
  ASSERT_EQ(r.rules.size(), 1u);
  // Fresh predicate shared between the view head and the rule head.
  EXPECT_EQ(r.views[0].view.head().predicate(),
            r.rules[0].rule.head().predicate());
  EXPECT_TRUE(r.rules[0].guard_exempt);
  EXPECT_EQ(r.views[0].description_id, r.rules[0].description_id);
}

TEST(Normalize, EqualityYieldsBothDirections) {
  ExpansionRules r = NormalizeText(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) = A:R(x, y).
  )");
  ASSERT_EQ(r.views.size(), 2u);
  // Both directions share one description id (the reuse guard treats the
  // equality as a single description).
  EXPECT_EQ(r.views[0].description_id, r.views[1].description_id);
  std::set<std::string> heads = {r.views[0].view.head().predicate(),
                                 r.views[1].view.head().predicate()};
  EXPECT_EQ(heads, (std::set<std::string>{"A:R", "B:S"}));
}

TEST(Normalize, DefinitionalRuleKept) {
  ExpansionRules r = NormalizeText(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping A:R(x, y) :- B:S(x, y).
  )");
  ASSERT_EQ(r.rules.size(), 1u);
  EXPECT_FALSE(r.rules[0].guard_exempt);
  ASSERT_EQ(r.rules_by_head.count("A:R"), 1u);
}

TEST(Normalize, EqualityStorageUsedInSoundDirectionOnly) {
  ExpansionRules r = NormalizeText(R"(
    peer A { relation R(x, y); }
    stored s(x, y) = A:R(x, y).
  )");
  // One view (s <= A:R); no reverse machinery.
  EXPECT_EQ(r.views.size(), 1u);
  EXPECT_TRUE(r.rules.empty());
}

TEST(Normalize, IndexesCoverAllBodyPredicates) {
  ExpansionRules r = NormalizeText(R"(
    peer A { relation R(x, y); relation R2(x, y); }
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) <= A:R(x, z), A:R2(z, y).
  )");
  EXPECT_EQ(r.views_by_body_pred.count("A:R"), 1u);
  EXPECT_EQ(r.views_by_body_pred.count("A:R2"), 1u);
  // A predicate appearing twice in one view body is indexed once.
  ExpansionRules r2 = NormalizeText(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) <= A:R(x, z), A:R(z, y).
  )");
  ASSERT_EQ(r2.views_by_body_pred.count("A:R"), 1u);
  EXPECT_EQ(r2.views_by_body_pred.at("A:R").size(), 1u);
}

TEST(Normalize, ToStringMentionsEverything) {
  ExpansionRules r = NormalizeText(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); relation T(x, y); }
    mapping (x, y) : B:S(x, z), B:T(z, y) <= A:R(x, y).
    mapping A:R(x, y) :- B:S(x, y).
    stored s(x, y) <= B:T(x, y).
  )");
  std::string text = r.ToString();
  EXPECT_NE(text.find("view"), std::string::npos);
  EXPECT_NE(text.find("rule"), std::string::npos);
  EXPECT_NE(text.find("exempt"), std::string::npos);
}

}  // namespace
}  // namespace pdms
