#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "pdms/exec/parallel_for.h"
#include "pdms/exec/thread_pool.h"

namespace pdms {
namespace exec {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&ran] { ran.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  int ran = 0;
  TaskGroup group(&pool);
  group.Run([&ran] { ++ran; });
  // Inline execution: visible immediately, before Wait.
  EXPECT_EQ(ran, 1);
  group.Wait();
}

TEST(TaskGroup, NullPoolRunsInline) {
  int ran = 0;
  TaskGroup group(nullptr);
  group.Run([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(TaskGroup, WaitIsRepeatable) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  group.Run([&ran] { ran.fetch_add(1); });
  group.Wait();
  group.Wait();
  EXPECT_EQ(ran.load(), 1);
  // The destructor's backstop Wait must also be harmless.
}

TEST(TaskGroup, NestedForkJoinDoesNotDeadlock) {
  // More outstanding groups than workers: only help-first stealing in
  // Wait keeps this from deadlocking. Three levels of nesting, fan-out 4,
  // on a pool of 2.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  TaskGroup top(&pool);
  for (int i = 0; i < 4; ++i) {
    top.Run([&pool, &leaves] {
      TaskGroup mid(&pool);
      for (int j = 0; j < 4; ++j) {
        mid.Run([&pool, &leaves] {
          TaskGroup bottom(&pool);
          for (int k = 0; k < 4; ++k) {
            bottom.Run([&leaves] { leaves.fetch_add(1); });
          }
          bottom.Wait();
        });
      }
      mid.Wait();
    });
  }
  top.Wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SerialFallbackPreservesIndexOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 5, [&order](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PerIndexSlotsMergeDeterministically) {
  // The usage pattern the evaluator relies on: concurrent writers to
  // disjoint slots, merged after the barrier.
  ThreadPool pool(8);
  constexpr size_t kN = 500;
  std::vector<size_t> slots(kN, 0);
  ParallelFor(&pool, kN, [&slots](size_t i) { slots[i] = i + 1; });
  size_t sum = std::accumulate(slots.begin(), slots.end(), size_t{0});
  EXPECT_EQ(sum, kN * (kN + 1) / 2);
}

TEST(ThreadPool, TryRunOneDrainsQueue) {
  ThreadPool pool(0);
  EXPECT_FALSE(pool.TryRunOne());
}

}  // namespace
}  // namespace exec
}  // namespace pdms
