// Budget-exhaustion tests: when reformulation runs out of tree nodes,
// rewritings, or time, the result must be flagged truncated and remain
// sound (every answer from a partial rewriting set is a certain answer).

#include <gtest/gtest.h>

#include <algorithm>

#include "pdms/core/pdms.h"

namespace pdms {
namespace {

// Four independent sources feeding A:P, so a full reformulation has four
// disjuncts and the full answer set is {1, 2, 3, 4}.
Pdms MakeFanOutPdms() {
  Pdms pdms;
  Status s = pdms.LoadProgram(R"(
    peer A { relation P(x); }
    peer B { relation P1(x); relation P2(x); relation P3(x); relation P4(x); }
    mapping A:P(x) :- B:P1(x).
    mapping A:P(x) :- B:P2(x).
    mapping A:P(x) :- B:P3(x).
    mapping A:P(x) :- B:P4(x).
    stored s1(x) <= B:P1(x).
    stored s2(x) <= B:P2(x).
    stored s3(x) <= B:P3(x).
    stored s4(x) <= B:P4(x).
    fact s1(1).
    fact s2(2).
    fact s3(3).
    fact s4(4).
  )");
  EXPECT_TRUE(s.ok()) << s.ToString();
  return pdms;
}

constexpr char kQuery[] = "q(x) :- A:P(x).";

bool IsSubset(const Relation& sub, const Relation& super) {
  return std::all_of(sub.tuples().begin(), sub.tuples().end(),
                     [&](const Tuple& t) { return super.Contains(t); });
}

TEST(Budget, UnlimitedBaseline) {
  Pdms pdms = MakeFanOutPdms();
  auto result = pdms.Reformulate(kQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewriting.size(), 4u);
  EXPECT_FALSE(result->stats.tree_truncated);
  EXPECT_FALSE(result->stats.enumeration_truncated);
}

TEST(Budget, MaxTreeNodesTruncatesSoundly) {
  Pdms full = MakeFanOutPdms();
  auto full_answers = full.Answer(kQuery);
  ASSERT_TRUE(full_answers.ok());
  ASSERT_EQ(full_answers->size(), 4u);

  Pdms pdms = MakeFanOutPdms();
  ReformulationOptions options;
  options.max_tree_nodes = 3;
  pdms.set_options(options);
  auto result = pdms.Reformulate(kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->stats.tree_truncated);
  EXPECT_LT(result->rewriting.size(), 4u);

  // Whatever rewritings survive still evaluate to certain answers only.
  auto partial = pdms.Answer(kQuery);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(IsSubset(*partial, *full_answers));
}

TEST(Budget, MaxRewritingsTruncatesEnumeration) {
  Pdms pdms = MakeFanOutPdms();
  ReformulationOptions options;
  options.max_rewritings = 1;
  pdms.set_options(options);
  auto result = pdms.Reformulate(kQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewriting.size(), 1u);
  EXPECT_TRUE(result->stats.enumeration_truncated);
  EXPECT_FALSE(result->stats.tree_truncated);

  // The single emitted rewriting is sound.
  auto partial = pdms.Answer(kQuery);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->size(), 1u);

  // Raising the cap mid-session takes effect immediately.
  options.max_rewritings = 0;
  pdms.set_options(options);
  auto again = pdms.Reformulate(kQuery);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rewriting.size(), 4u);
  EXPECT_FALSE(again->stats.enumeration_truncated);
}

TEST(Budget, TimeBudgetTruncatesEnumeration) {
  Pdms pdms = MakeFanOutPdms();
  ReformulationOptions options;
  options.time_budget_ms = 1e-9;  // expires before the first rewriting
  pdms.set_options(options);
  auto result = pdms.Reformulate(kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->stats.enumeration_truncated);
  EXPECT_LE(result->rewriting.size(), 4u);

  // Partial output under a time budget still yields only sound answers.
  Pdms full = MakeFanOutPdms();
  auto full_answers = full.Answer(kQuery);
  ASSERT_TRUE(full_answers.ok());
  auto partial = pdms.Answer(kQuery);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(IsSubset(*partial, *full_answers));
}

TEST(Budget, TruncationAndUnavailabilityCompose) {
  // A down source and a rewriting cap at the same time: the result is
  // both truncated and degraded, and still sound.
  Pdms pdms = MakeFanOutPdms();
  ASSERT_TRUE(
      pdms.mutable_network()->SetStoredRelationAvailable("s1", false).ok());
  ReformulationOptions options;
  options.max_rewritings = 2;
  pdms.set_options(options);
  auto result = pdms.AnswerWithReport(kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->stats.enumeration_truncated);
  EXPECT_EQ(result->degradation.excluded_stored,
            std::vector<std::string>{"s1"});
  EXPECT_EQ(result->degradation.completeness, Completeness::kPartial);
  EXPECT_EQ(result->answers.size(), 2u);
  EXPECT_FALSE(result->answers.Contains({Value::Int(1)}));
}

}  // namespace
}  // namespace pdms
