// Tests for the Section 4 reformulation algorithm: GAV unfolding, LAV
// MCD covering (unc labels), interleaving, cyclic termination, and the
// paper's Figure 2 worked example.

#include "pdms/core/reformulator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "pdms/core/pdms.h"
#include "pdms/lang/homomorphism.h"
#include "pdms/lang/parser.h"

namespace pdms {
namespace {

ConjunctiveQuery MustParseRule(const std::string& text) {
  auto r = ParseRuleText(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << text;
  return *r;
}

// Builds the Figure 2 PDMS: one peer with the SameEngine/AssignedTo/Skill
// relations, descriptions r0-r3.
Pdms MakeFigure2Pdms() {
  Pdms pdms;
  Status s = pdms.LoadProgram(R"(
    peer FS {
      relation SameEngine(f1, f2, e);
      relation AssignedTo(f, e);
      relation Skill(f, s);
      relation SameSkill(f1, f2);
      relation Sched(f, start, end);
    }
    // r0: definitional.
    mapping FS:SameEngine(f1, f2, e) :-
        FS:AssignedTo(f1, e), FS:AssignedTo(f2, e).
    // r1: inclusion (LAV-style).
    mapping (f1, f2) :
        FS:SameSkill(f1, f2) <= FS:Skill(f1, s), FS:Skill(f2, s).
    // r2 and r3: storage descriptions.
    stored s1(f, e, st) <= FS:AssignedTo(f, e), FS:Sched(f, st, end).
    stored s2(f1, f2) = FS:SameSkill(f1, f2).
  )");
  EXPECT_TRUE(s.ok()) << s.ToString();
  return pdms;
}

TEST(Reformulator, Figure2WorkedExample) {
  Pdms pdms = MakeFigure2Pdms();
  auto result = pdms.Reformulate(
      "Q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), "
      "FS:Skill(f2, s).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const UnionQuery& uq = result->rewriting;
  // The paper's expected reformulation:
  //   Q'(f1,f2) :- s1(f1,e,_), s1(f2,e,_), s2(f1,f2)
  //   UNION Q'(f1,f2) :- s1(f1,e,_), s1(f2,e,_), s2(f2,f1)
  ASSERT_FALSE(uq.empty());
  ConjunctiveQuery expected1 = MustParseRule(
      "Q(f1, f2) :- s1(f1, e, a), s1(f2, e, b), s2(f1, f2).");
  ConjunctiveQuery expected2 = MustParseRule(
      "Q(f1, f2) :- s1(f1, e, a), s1(f2, e, b), s2(f2, f1).");
  bool found1 = false;
  bool found2 = false;
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    if (EquivalentCQ(cq, expected1)) found1 = true;
    if (EquivalentCQ(cq, expected2)) found2 = true;
    // Every disjunct must reference stored relations only.
    for (const Atom& a : cq.body()) {
      EXPECT_TRUE(a.predicate() == "s1" || a.predicate() == "s2")
          << cq.ToString();
    }
  }
  EXPECT_TRUE(found1) << uq.ToString();
  EXPECT_TRUE(found2) << uq.ToString();
}

TEST(Reformulator, Figure2EndToEndAnswers) {
  Pdms pdms = MakeFigure2Pdms();
  // Firefighters 101 and 102 share engine 12 and a skill.
  ASSERT_TRUE(pdms.LoadProgram(R"(
    fact s1(101, 12, 700).
    fact s1(102, 12, 700).
    fact s1(103, 19, 700).
    fact s2(101, 102).
  )").ok());
  auto answers = pdms.Answer(
      "Q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), "
      "FS:Skill(f2, s).");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_TRUE(answers->Contains({Value::Int(101), Value::Int(102)}))
      << answers->ToString();
  // The symmetric pair comes from the second (flipped) rewriting.
  EXPECT_TRUE(answers->Contains({Value::Int(102), Value::Int(101)}))
      << answers->ToString();
  // 103 rides a different engine.
  EXPECT_FALSE(answers->Contains({Value::Int(101), Value::Int(103)}));
}

TEST(Reformulator, PureGavChainUnfolds) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation Top(x, y); }
    peer B { relation Mid(x, y); }
    peer C { relation Base(x, y); }
    mapping A:Top(x, y) :- B:Mid(x, z), B:Mid(z, y).
    mapping B:Mid(x, y) :- C:Base(x, y).
    stored base(x, y) <= C:Base(x, y).
  )").ok());
  auto result = pdms.Reformulate("q(x, y) :- A:Top(x, y).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rewriting.size(), 1u) << result->rewriting.ToString();
  ConjunctiveQuery expected =
      MustParseRule("q(x, y) :- base(x, z), base(z, y).");
  EXPECT_TRUE(EquivalentCQ(result->rewriting.disjuncts()[0], expected))
      << result->rewriting.ToString();
}

TEST(Reformulator, GavDisjunctionYieldsUnion) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation P(x); }
    peer B { relation P1(x); relation P2(x); }
    mapping A:P(x) :- B:P1(x).
    mapping A:P(x) :- B:P2(x).
    stored sp1(x) <= B:P1(x).
    stored sp2(x) <= B:P2(x).
  )").ok());
  auto result = pdms.Reformulate("q(x) :- A:P(x).");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewriting.size(), 2u) << result->rewriting.ToString();
}

TEST(Reformulator, LavProjectionBlocksDistinguishedVariable) {
  // The paper's V3 example: a view projecting away a needed join variable
  // must not be used.
  Pdms fresh;
  ASSERT_TRUE(fresh.LoadProgram(R"(
    peer M { relation E1(x, y); relation E2(x, y); }
    peer P { relation V3(u); }
    mapping (u) : P:V3(u) <= M:E1(u, z).
    stored sv3(u) <= P:V3(u).
  )").ok());
  // q needs the join variable z: E1(x, z), E2(z, y). V3 cannot help.
  auto result = fresh.Reformulate("q(x, y) :- M:E1(x, z), M:E2(z, y).");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rewriting.empty()) << result->rewriting.ToString();
}

TEST(Reformulator, McdCoversUncleSubgoals) {
  // A view covering two subgoals at once through a shared existential
  // variable: using it must cover both (the unc label), and no rewriting
  // may use the view for just one of them.
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer M { relation E1(x, y); relation E2(x, y); }
    peer S { relation V1(x, y); }
    mapping (x, y) : S:V1(x, y) <= M:E1(x, z), M:E2(z, y).
    stored sv1(x, y) <= S:V1(x, y).
  )").ok());
  auto result = pdms.Reformulate("q(x, y) :- M:E1(x, z), M:E2(z, y).");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rewriting.size(), 1u) << result->rewriting.ToString();
  ConjunctiveQuery expected = MustParseRule("q(x, y) :- sv1(x, y).");
  EXPECT_TRUE(EquivalentCQ(result->rewriting.disjuncts()[0], expected));
}

TEST(Reformulator, CyclicEqualityTerminates) {
  // Replication: ECC:Vehicle = NDC:Vehicle is a cycle; the description
  // reuse guard must terminate and answer from the replica's storage.
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer ECC { relation Vehicle(v, d); }
    peer NDC { relation Vehicle(v, d); }
    mapping (v, d) : ECC:Vehicle(v, d) = NDC:Vehicle(v, d).
    stored ecc_v(v, d) <= ECC:Vehicle(v, d).
    stored ndc_v(v, d) <= NDC:Vehicle(v, d).
  )").ok());
  auto result = pdms.Reformulate("q(v, d) :- ECC:Vehicle(v, d).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Both the local store and the replicated peer's store must be found.
  std::set<std::string> preds;
  for (const ConjunctiveQuery& cq : result->rewriting.disjuncts()) {
    for (const Atom& a : cq.body()) preds.insert(a.predicate());
  }
  EXPECT_TRUE(preds.count("ecc_v") > 0) << result->rewriting.ToString();
  EXPECT_TRUE(preds.count("ndc_v") > 0) << result->rewriting.ToString();
}

TEST(Reformulator, TransitiveChainThroughTwoMediators) {
  // Data flows bottom-up through two mediation levels (LAV then GAV).
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer TOP { relation T(x, y); }
    peer MID { relation M(x, y); }
    peer BOT { relation B(x, y); }
    mapping TOP:T(x, y) :- MID:M(x, y).
    mapping (x, y) : BOT:B(x, y) <= MID:M(x, y).
    stored sb(x, y) <= BOT:B(x, y).
    fact sb(1, 2).
  )").ok());
  auto answers = pdms.Answer("q(x, y) :- TOP:T(x, y).");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_TRUE(answers->Contains({Value::Int(1), Value::Int(2)}))
      << answers->ToString();
}

TEST(Reformulator, ConstantsInQueryPropagate) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation R(x, y); }
    stored sr(x, y) <= A:R(x, y).
    fact sr(1, "a").
    fact sr(2, "b").
  )").ok());
  auto answers = pdms.Answer("q(y) :- A:R(1, y).");
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
  EXPECT_TRUE(answers->Contains({Value::String("a")}));
}

TEST(Reformulator, ConstantsInMappingHeadSelect) {
  // A GAV mapping with a constant head argument only serves matching goals.
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation Person(pid, kind); }
    peer B { relation Doc(pid); relation Nurse(pid); }
    mapping A:Person(p, "doctor") :- B:Doc(p).
    mapping A:Person(p, "nurse") :- B:Nurse(p).
    stored sdoc(p) <= B:Doc(p).
    stored snurse(p) <= B:Nurse(p).
    fact sdoc(1).
    fact snurse(2).
  )").ok());
  auto answers = pdms.Answer("q(p) :- A:Person(p, \"doctor\").");
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u) << answers->ToString();
  EXPECT_TRUE(answers->Contains({Value::Int(1)}));
}

TEST(Reformulator, StreamingStopsEarly) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation P(x); }
    peer B { relation P1(x); relation P2(x); relation P3(x); }
    mapping A:P(x) :- B:P1(x).
    mapping A:P(x) :- B:P2(x).
    mapping A:P(x) :- B:P3(x).
    stored sp1(x) <= B:P1(x).
    stored sp2(x) <= B:P2(x).
    stored sp3(x) <= B:P3(x).
  )").ok());
  ReformulationOptions opts;
  opts.memoize_solutions = false;  // streaming mode
  Reformulator reformulator(pdms.network(), opts);
  auto query = pdms.ParseQuery("q(x) :- A:P(x).");
  ASSERT_TRUE(query.ok());
  size_t seen = 0;
  auto result = reformulator.ReformulateStreaming(
      *query, [&](const ConjunctiveQuery&) { return ++seen < 2; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(result->rewriting.size(), 1u);  // the sink refused the second
}

TEST(Reformulator, MaxRewritingsBudget) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation P(x); }
    peer B { relation P1(x); relation P2(x); relation P3(x); }
    mapping A:P(x) :- B:P1(x).
    mapping A:P(x) :- B:P2(x).
    mapping A:P(x) :- B:P3(x).
    stored sp1(x) <= B:P1(x).
    stored sp2(x) <= B:P2(x).
    stored sp3(x) <= B:P3(x).
  )").ok());
  ReformulationOptions opts;
  opts.max_rewritings = 2;
  pdms.set_options(opts);
  auto result = pdms.Reformulate("q(x) :- A:P(x).");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewriting.size(), 2u);
  EXPECT_TRUE(result->stats.enumeration_truncated);
}

TEST(Reformulator, NoPathToStorageYieldsEmpty) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation R(x); }
    peer B { relation S(x); }
    mapping A:R(x) :- B:S(x).
  )").ok());
  auto result = pdms.Reformulate("q(x) :- A:R(x).");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rewriting.empty());
}

TEST(Reformulator, SoundnessEveryRewritingContainedInExpansion) {
  // Every emitted rewriting, with stored relations replaced by their
  // storage-description bodies, must be contained in some expansion of the
  // query — here checked on the GAV chain where containment is syntactic.
  Pdms pdms = MakeFigure2Pdms();
  auto result = pdms.Reformulate(
      "Q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), "
      "FS:Skill(f2, s).");
  ASSERT_TRUE(result.ok());
  for (const ConjunctiveQuery& cq : result->rewriting.disjuncts()) {
    EXPECT_TRUE(cq.CheckSafe().ok()) << cq.ToString();
  }
}

TEST(Reformulator, StatsCountNodes) {
  Pdms pdms = MakeFigure2Pdms();
  auto result = pdms.Reformulate(
      "Q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), "
      "FS:Skill(f2, s).");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.goal_nodes, 3u);
  EXPECT_GT(result->stats.rule_nodes, 1u);
  EXPECT_GE(result->stats.rewritings, 2u);
  EXPECT_EQ(result->stats.time_to_rewriting_ms.size(),
            result->stats.rewritings);
}

}  // namespace
}  // namespace pdms
