// Tests for the serving wire protocol (serve/wire.h): typed frame
// round-trips, the satellite hardening bounds (attacker-declared counts
// never size an allocation), incremental frame assembly, and a seeded
// mutation fuzz asserting the decoder is total — error, never crash —
// over corrupted bytes. tools/ci.sh runs this binary under asan-ubsan,
// which is what gives the fuzz its teeth.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pdms/serve/wire.h"
#include "pdms/sim/message.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace serve {
namespace {

using wire::Frame;
using wire::FrameReader;
using wire::FrameType;

// Decodes the single frame held in `bytes` (header + payload).
Result<bool> ParseOne(const std::string& bytes, Frame* out,
                      wire::Limits limits = {}) {
  FrameReader reader(limits);
  reader.Append(bytes);
  return reader.Next(out);
}

wire::QueryFrame SampleQuery() {
  wire::QueryFrame q;
  q.request_id = 42;
  q.budget_ms = 12.5;
  q.query = "q(x) :- H:Doctor(x, y).";
  return q;
}

wire::AnswerFrame SampleAnswer() {
  wire::AnswerFrame a;
  a.request_id = 42;
  a.status_code = 0;
  a.completeness = 1;
  a.truncated = wire::AnswerFrame::kTruncatedEnumeration;
  a.rewritings_skipped = 3;
  a.branches_pruned = 7;
  a.server_ms = 1.25;
  a.excluded_peers = {"H", "W"};
  a.excluded_stored = {"doc"};
  a.relation_name = "q";
  a.arity = 2;
  a.tuples = {{Value::Int(1), Value::String("a")},
              {Value::Null(3), Value::String("")}};
  return a;
}

TEST(Wire, QueryRoundTrip) {
  wire::QueryFrame q = SampleQuery();
  std::string bytes = wire::EncodeQuery(q);
  Frame frame;
  auto ready = ParseOne(bytes, &frame);
  ASSERT_TRUE(ready.ok()) << ready.status().ToString();
  ASSERT_TRUE(*ready);
  EXPECT_EQ(frame.type, FrameType::kQuery);
  auto decoded = wire::DecodeQuery(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 42u);
  EXPECT_DOUBLE_EQ(decoded->budget_ms, 12.5);
  EXPECT_EQ(decoded->query, q.query);
}

TEST(Wire, AnswerRoundTripPreservesTuplesAndReport) {
  wire::AnswerFrame a = SampleAnswer();
  Frame frame;
  auto ready = ParseOne(wire::EncodeAnswer(a), &frame);
  ASSERT_TRUE(ready.ok());
  ASSERT_TRUE(*ready);
  auto decoded = wire::DecodeAnswer(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->tuples, a.tuples);  // wire order preserved
  EXPECT_EQ(decoded->excluded_peers, a.excluded_peers);
  EXPECT_EQ(decoded->excluded_stored, a.excluded_stored);
  EXPECT_EQ(decoded->truncated, a.truncated);
  EXPECT_EQ(decoded->completeness, a.completeness);
  EXPECT_EQ(decoded->rewritings_skipped, 3u);
  EXPECT_EQ(decoded->branches_pruned, 7u);
  // Rebuilt relation renders identically to one built in-process.
  Relation expected("q", 2);
  for (const Tuple& t : a.tuples) expected.Insert(t);
  EXPECT_EQ(decoded->ToRelation().ToString(), expected.ToString());
}

TEST(Wire, ShedAndPingRoundTrip) {
  wire::ShedFrame s;
  s.request_id = 9;
  s.reason = wire::ShedReason::kDeadline;
  s.retry_after_ms = 17.5;
  s.queue_depth = 12;
  s.message = "remaining budget below expected wait";
  Frame frame;
  ASSERT_TRUE(*ParseOne(wire::EncodeShed(s), &frame));
  auto decoded = wire::DecodeShed(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->reason, wire::ShedReason::kDeadline);
  EXPECT_DOUBLE_EQ(decoded->retry_after_ms, 17.5);
  EXPECT_EQ(decoded->queue_depth, 12u);

  ASSERT_TRUE(*ParseOne(wire::EncodePing(7), &frame));
  EXPECT_EQ(frame.type, FrameType::kPing);
  auto ping = wire::DecodePing(frame);
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(*ping, 7u);
}

TEST(Wire, ScanFramesShareMessageValidation) {
  sim::Message request;
  request.type = sim::Message::Type::kScanRequest;
  request.request_id = 5;
  request.relation = "doc";
  Frame frame;
  ASSERT_TRUE(*ParseOne(wire::EncodeScan(request), &frame));
  EXPECT_EQ(frame.type, FrameType::kScanRequest);
  auto decoded = wire::DecodeScan(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->relation, "doc");

  sim::Message response;
  response.type = sim::Message::Type::kScanResponse;
  response.request_id = 5;
  response.relation = "doc";
  response.arity = 2;
  response.tuples = {{Value::Int(1), Value::Int(2)}};
  ASSERT_TRUE(*ParseOne(wire::EncodeScan(response), &frame));
  auto decoded_response = wire::DecodeScan(frame);
  ASSERT_TRUE(decoded_response.ok());
  EXPECT_EQ(decoded_response->tuples, response.tuples);
  EXPECT_EQ(decoded_response->arity, 2u);

  // A response whose tuple arity disagrees with the declared arity is the
  // same malformed message on both transports: Message::Validate rejects
  // it before encode, and a hand-built frame carrying it fails decode.
  response.tuples.push_back({Value::Int(9)});
  EXPECT_FALSE(response.Validate().ok());
}

TEST(Wire, RejectsDeclaredTupleCountLargerThanPayload) {
  // Craft an answer payload declaring 2^32 tuples of arity 2 with no
  // bytes behind them. The decoder must reject from the count alone —
  // before any tuple storage is sized.
  wire::AnswerFrame a = SampleAnswer();
  a.tuples.clear();
  std::string bytes = wire::EncodeAnswer(a);
  // The tuple count is the last 8 payload bytes (u64 after arity).
  ASSERT_GE(bytes.size(), 8u);
  for (size_t i = bytes.size() - 8; i < bytes.size(); ++i) bytes[i] = '\xff';
  // Fix the checksum so the reader hands the payload to the decoder.
  std::string payload = bytes.substr(wire::kHeaderBytes);
  std::string reframed = wire::EncodeFrame(FrameType::kAnswer, payload);
  Frame frame;
  ASSERT_TRUE(*ParseOne(reframed, &frame));
  auto decoded = wire::DecodeAnswer(frame);
  EXPECT_FALSE(decoded.ok());
}

TEST(Wire, RejectsArityZeroWithManyTuples) {
  // Arity 0 + huge declared count would expand from zero payload bytes;
  // set semantics admit at most one empty tuple.
  sim::Message m;
  m.type = sim::Message::Type::kScanResponse;
  m.request_id = 1;
  m.relation = "r";
  m.arity = 0;
  m.tuples = {{}};  // one empty tuple: legal
  Frame frame;
  ASSERT_TRUE(*ParseOne(wire::EncodeScan(m), &frame));
  EXPECT_TRUE(wire::DecodeScan(frame).ok());

  m.tuples = {{}, {}};  // two: rejected by Validate at the encoder...
  EXPECT_FALSE(m.Validate().ok());
  // ...and by the decoder when smuggled past it in a hand-built frame.
  std::string payload = frame.payload;
  // tuple count is the trailing u64; bump it to 2.
  payload[payload.size() - 8] = 2;
  Frame forged;
  ASSERT_TRUE(
      *ParseOne(wire::EncodeFrame(FrameType::kScanResponse, payload),
                &forged));
  EXPECT_FALSE(wire::DecodeScan(forged).ok());
}

TEST(Wire, RejectsArityAboveCap) {
  sim::Message m;
  m.arity = sim::kMaxMessageArity + 1;
  m.relation = "r";
  EXPECT_FALSE(m.Validate().ok());
}

TEST(Wire, RejectsStringAboveCap) {
  wire::Limits tight;
  tight.max_string_bytes = 8;
  wire::QueryFrame q = SampleQuery();  // query text longer than 8 bytes
  Frame frame;
  ASSERT_TRUE(*ParseOne(wire::EncodeQuery(q), &frame, tight));
  EXPECT_FALSE(wire::DecodeQuery(frame, tight).ok());
}

TEST(Wire, RejectsOversizedDeclaredPayloadFromHeaderAlone) {
  wire::Limits tight;
  tight.max_payload_bytes = 16;
  std::string bytes = wire::EncodeQuery(SampleQuery());
  FrameReader reader(tight);
  // Feed only the header: the declared size must be rejected before the
  // payload is ever buffered.
  reader.Append(bytes.data(), wire::kHeaderBytes);
  Frame frame;
  auto next = reader.Next(&frame);
  EXPECT_FALSE(next.ok());
  EXPECT_TRUE(reader.failed());
}

TEST(Wire, RejectsTrailingGarbageAfterPayload) {
  std::string payload = wire::EncodeQuery(SampleQuery())
                            .substr(wire::kHeaderBytes);
  payload += "extra";
  Frame frame;
  ASSERT_TRUE(*ParseOne(wire::EncodeFrame(FrameType::kQuery, payload),
                        &frame));
  EXPECT_FALSE(wire::DecodeQuery(frame).ok());
}

TEST(Wire, ChecksumMismatchFailsTheReader) {
  std::string bytes = wire::EncodeQuery(SampleQuery());
  bytes[bytes.size() - 1] ^= 0x01;  // flip one payload bit
  Frame frame;
  auto next = ParseOne(bytes, &frame);
  EXPECT_FALSE(next.ok());
}

TEST(Wire, BadMagicAndVersionAndReservedFail) {
  std::string good = wire::EncodeQuery(SampleQuery());
  Frame frame;

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParseOne(bad_magic, &frame).ok());

  std::string bad_version = good;
  bad_version[4] = 99;
  EXPECT_FALSE(ParseOne(bad_version, &frame).ok());

  std::string bad_reserved = good;
  bad_reserved[6] = 1;
  EXPECT_FALSE(ParseOne(bad_reserved, &frame).ok());

  std::string bad_type = good;
  bad_type[5] = 0;
  EXPECT_FALSE(ParseOne(bad_type, &frame).ok());
}

TEST(Wire, ReaderAssemblesAcrossArbitraryChunks) {
  std::string stream = wire::EncodeQuery(SampleQuery()) +
                       wire::EncodePing(1) +
                       wire::EncodeShed(wire::ShedFrame{});
  // Feed one byte at a time; exactly three frames must come out.
  FrameReader reader;
  std::vector<FrameType> seen;
  for (char c : stream) {
    reader.Append(&c, 1);
    while (true) {
      Frame frame;
      auto next = reader.Next(&frame);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!*next) break;
      seen.push_back(frame.type);
    }
  }
  EXPECT_FALSE(reader.has_partial());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], FrameType::kQuery);
  EXPECT_EQ(seen[1], FrameType::kPing);
  EXPECT_EQ(seen[2], FrameType::kShed);
}

TEST(Wire, ReaderTracksPartialFrames) {
  std::string bytes = wire::EncodeQuery(SampleQuery());
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size() / 2);
  Frame frame;
  auto next = reader.Next(&frame);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  EXPECT_TRUE(reader.has_partial());  // the slow-loris deadline trigger
  reader.Append(bytes.data() + bytes.size() / 2,
                bytes.size() - bytes.size() / 2);
  next = reader.Next(&frame);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(*next);
  EXPECT_FALSE(reader.has_partial());
}

// The corpus fuzz (satellite 1): every valid frame re-encodes to itself,
// and seeded mutations of valid frames — truncations, bit flips, byte
// overwrites, length/count tampering — can only ever produce an error.
// Run under asan-ubsan this asserts no crash, no overflow, and (via the
// count bounds) no attacker-sized allocation on any mutated input.

std::vector<std::string> Corpus() {
  std::vector<std::string> corpus;
  corpus.push_back(wire::EncodeQuery(SampleQuery()));
  corpus.push_back(wire::EncodeAnswer(SampleAnswer()));
  wire::ShedFrame shed;
  shed.request_id = 3;
  shed.reason = wire::ShedReason::kQueueFull;
  shed.retry_after_ms = 4;
  shed.message = "full";
  corpus.push_back(wire::EncodeShed(shed));
  corpus.push_back(wire::EncodePing(11));
  corpus.push_back(wire::EncodePong(12));
  sim::Message request;
  request.type = sim::Message::Type::kScanRequest;
  request.request_id = 8;
  request.relation = "doc";
  corpus.push_back(wire::EncodeScan(request));
  sim::Message response = request;
  response.type = sim::Message::Type::kScanResponse;
  response.arity = 3;
  response.tuples = {
      {Value::Int(-5), Value::String("x"), Value::Null(0)},
      {Value::Int(7), Value::String(std::string(300, 'y')), Value::Null(1)}};
  corpus.push_back(wire::EncodeScan(response));
  return corpus;
}

// Feeds bytes through the reader and, for each complete frame, the typed
// decoder + re-encoder. Returns true if a full valid frame came out.
bool DecodeAll(const std::string& bytes) {
  FrameReader reader;
  reader.Append(bytes);
  bool any = false;
  while (true) {
    Frame frame;
    auto next = reader.Next(&frame);
    if (!next.ok() || !*next) break;
    auto reencoded = wire::ReencodeFrame(frame);
    if (reencoded.ok()) any = true;
  }
  return any;
}

TEST(WireFuzz, ValidCorpusReencodesIdentically) {
  for (const std::string& bytes : Corpus()) {
    Frame frame;
    auto next = ParseOne(bytes, &frame);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(*next);
    auto reencoded = wire::ReencodeFrame(frame);
    ASSERT_TRUE(reencoded.ok()) << reencoded.status().ToString();
    EXPECT_EQ(*reencoded, bytes);  // decode-then-encode is the identity
  }
}

TEST(WireFuzz, MutatedFramesNeverCrashTheDecoder) {
  std::vector<std::string> corpus = Corpus();
  Rng rng(20260808);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string bytes = corpus[rng.Uniform(corpus.size())];
    switch (rng.Uniform(4)) {
      case 0: {  // bit flip
        size_t at = rng.Uniform(bytes.size());
        bytes[at] ^= static_cast<char>(1u << rng.Uniform(8));
        break;
      }
      case 1:  // truncate
        bytes.resize(rng.Uniform(bytes.size() + 1));
        break;
      case 2: {  // overwrite a run with a random byte
        size_t at = rng.Uniform(bytes.size());
        size_t len = 1 + rng.Uniform(8);
        for (size_t i = at; i < bytes.size() && i < at + len; ++i) {
          bytes[i] = static_cast<char>(rng.Uniform(256));
        }
        break;
      }
      case 3:  // append garbage (may run into the next "frame")
        for (size_t i = 0, n = rng.Uniform(24); i < n; ++i) {
          bytes.push_back(static_cast<char>(rng.Uniform(256)));
        }
        break;
    }
    // Must terminate with either frames or an error — never crash.
    DecodeAll(bytes);
  }
  SUCCEED();
}

TEST(WireFuzz, RandomGarbageNeverCrashesTheDecoder) {
  Rng rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes;
    size_t n = rng.Uniform(128);
    bytes.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      bytes.push_back(static_cast<char>(rng.Uniform(256)));
    }
    DecodeAll(bytes);
    // Same garbage prefixed with a plausible header start.
    DecodeAll(std::string("PDMS") + bytes);
  }
  SUCCEED();
}

}  // namespace
}  // namespace serve
}  // namespace pdms
