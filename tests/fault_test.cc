// Tests for the fault-tolerance layer: deterministic fault injection,
// retry backoff, deadlines, and the per-query access controller.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "pdms/fault/access.h"
#include "pdms/fault/fault_injector.h"
#include "pdms/fault/retry.h"

namespace pdms {
namespace {

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 8.0;
  policy.jitter_fraction = 0;  // deterministic center
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(1, nullptr), 1.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(2, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(3, nullptr), 4.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(4, nullptr), 8.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMillis(10, nullptr), 8.0);  // capped
}

TEST(RetryPolicy, JitterStaysWithinFraction) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.jitter_fraction = 0.25;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    double b = policy.BackoffMillis(1, &rng);
    EXPECT_GE(b, 7.5);
    EXPECT_LE(b, 12.5);
  }
  // Same seed reproduces the same jittered schedule.
  Rng a(99), b(99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(policy.BackoffMillis(1, &a),
                     policy.BackoffMillis(1, &b));
  }
}

TEST(RetryPolicy, JitterNeverExceedsTheCap) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 40.0;
  policy.jitter_fraction = 0.25;
  Rng rng(11);
  // Attempt 3 sits exactly at the cap; positive jitter must be clamped,
  // negative jitter still applies.
  for (int i = 0; i < 200; ++i) {
    double b = policy.BackoffMillis(3, &rng);
    EXPECT_LE(b, 40.0);
    EXPECT_GE(b, 30.0);
  }
  // Deep attempts stay capped too.
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(policy.BackoffMillis(20, &rng), 40.0);
  }
}

TEST(Deadline, ExpiryAndRemaining) {
  Deadline none = Deadline::Infinite();
  EXPECT_TRUE(none.infinite());
  EXPECT_FALSE(none.Expired(1e12));

  Deadline d = Deadline::AfterMillis(50);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.Expired(49.9));
  EXPECT_TRUE(d.Expired(50));
  EXPECT_DOUBLE_EQ(d.RemainingMillis(20), 30);
  EXPECT_DOUBLE_EQ(d.RemainingMillis(80), 0);
}

TEST(Deadline, ZeroAndNegativeBudgetsAreAlreadyExpired) {
  // AfterMillis(0) is a finite, already-spent budget — not "no deadline".
  Deadline zero = Deadline::AfterMillis(0);
  EXPECT_FALSE(zero.infinite());
  EXPECT_TRUE(zero.Expired(0));
  EXPECT_DOUBLE_EQ(zero.RemainingMillis(0), 0);

  // Negative budgets (a request that arrived past its deadline) clamp to
  // the same already-expired state.
  Deadline negative = Deadline::AfterMillis(-12.5);
  EXPECT_FALSE(negative.infinite());
  EXPECT_DOUBLE_EQ(negative.budget_ms(), 0);
  EXPECT_TRUE(negative.Expired(0));
  EXPECT_DOUBLE_EQ(negative.RemainingMillis(0), 0);
}

TEST(Deadline, InfiniteRemainingIsUnbounded) {
  // The remaining budget of an infinite deadline must never read as 0:
  // 0 would tell the serving layer "shed this request" (and, mapped into
  // a reformulation time budget, 0 conventionally means "unlimited" —
  // an ambiguity the infinity return value removes).
  Deadline none = Deadline::Infinite();
  EXPECT_TRUE(std::isinf(none.RemainingMillis(0)));
  EXPECT_TRUE(std::isinf(none.RemainingMillis(1e12)));
  EXPECT_FALSE(none.Expired(std::numeric_limits<double>::max()));
}

TEST(Deadline, RemainingArithmeticNearExpiry) {
  Deadline d = Deadline::AfterMillis(10);
  // Just before expiry the remainder is the exact difference...
  EXPECT_NEAR(d.RemainingMillis(9.75), 0.25, 1e-12);
  // ...at expiry and beyond it floors at 0, never going negative.
  EXPECT_DOUBLE_EQ(d.RemainingMillis(10), 0);
  EXPECT_DOUBLE_EQ(d.RemainingMillis(10.0001), 0);
  EXPECT_GE(d.RemainingMillis(1e9), 0);
  // Expired() and RemainingMillis() agree on the boundary.
  EXPECT_EQ(d.Expired(9.9999), d.RemainingMillis(9.9999) <= 0);
  EXPECT_EQ(d.Expired(10), d.RemainingMillis(10) <= 0);
}

TEST(FaultInjector, DownPeerAlwaysFails) {
  FaultInjector injector(42);
  injector.SetPeerDown("H", true);
  EXPECT_TRUE(injector.IsPeerDown("H"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(injector.Attempt("H", "doc").ok);
  }
  injector.SetPeerDown("H", false);
  EXPECT_FALSE(injector.IsPeerDown("H"));
  EXPECT_TRUE(injector.Attempt("H", "doc").ok);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  auto run = [](uint64_t seed) {
    FaultInjector injector(seed);
    FaultProfile flaky;
    flaky.failure_probability = 0.5;
    flaky.latency_ms = 2.0;
    flaky.latency_jitter_ms = 1.0;
    injector.SetStoredProfile("s", flaky);
    std::vector<bool> outcomes;
    std::vector<double> latencies;
    for (int i = 0; i < 32; ++i) {
      AttemptOutcome o = injector.Attempt("P", "s");
      outcomes.push_back(o.ok);
      latencies.push_back(o.latency_ms);
    }
    return std::make_pair(outcomes, latencies);
  };
  auto [ok1, lat1] = run(7);
  auto [ok2, lat2] = run(7);
  EXPECT_EQ(ok1, ok2);
  EXPECT_EQ(lat1, lat2);
  auto [ok3, lat3] = run(8);
  EXPECT_NE(ok1, ok3);  // different seed, different schedule
}

TEST(FaultInjector, DeterminismIsPerResource) {
  // Interleaving accesses to an unrelated resource must not perturb the
  // outcome sequence of "s".
  FaultProfile flaky;
  flaky.failure_probability = 0.5;
  FaultInjector solo(3);
  solo.SetStoredProfile("s", flaky);
  std::vector<bool> alone;
  for (int i = 0; i < 16; ++i) alone.push_back(solo.Attempt("", "s").ok);

  FaultInjector mixed(3);
  mixed.SetStoredProfile("s", flaky);
  mixed.SetStoredProfile("other", flaky);
  std::vector<bool> interleaved;
  for (int i = 0; i < 16; ++i) {
    mixed.Attempt("", "other");
    interleaved.push_back(mixed.Attempt("", "s").ok);
  }
  EXPECT_EQ(alone, interleaved);
}

TEST(FaultInjector, LatencyAdvancesVirtualClock) {
  FaultInjector injector(1);
  FaultProfile slow;
  slow.latency_ms = 5.0;
  injector.SetPeerProfile("P", slow);
  EXPECT_DOUBLE_EQ(injector.now_ms(), 0);
  injector.Attempt("P", "s");
  EXPECT_DOUBLE_EQ(injector.now_ms(), 5.0);
  injector.AdvanceClock(2.5);
  EXPECT_DOUBLE_EQ(injector.now_ms(), 7.5);
  injector.Reset();
  EXPECT_DOUBLE_EQ(injector.now_ms(), 0);
  EXPECT_EQ(injector.total_attempts(), 0u);
}

TEST(AccessController, NullInjectorAlwaysSucceeds) {
  AccessController access(nullptr, RetryPolicy(), Deadline::Infinite(),
                          nullptr);
  EXPECT_TRUE(access.Access("s").ok());
  EXPECT_EQ(access.stats().probes, 1u);
  EXPECT_EQ(access.stats().attempts, 0u);
  EXPECT_TRUE(access.FailedRelations().empty());
}

TEST(AccessController, RetriesOvercomeFlakiness) {
  // failure_probability = 0.5 with plenty of attempts: the controller
  // should eventually get through and count the retries it spent.
  FaultInjector injector(11);
  FaultProfile flaky;
  flaky.failure_probability = 0.5;
  injector.SetStoredProfile("s", flaky);
  RetryPolicy policy;
  policy.max_attempts = 20;
  AccessController access(&injector, policy, Deadline::Infinite(),
                          [](const std::string&) { return "P"; });
  Status s = access.Access("s");
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(access.stats().attempts, 1u);
  EXPECT_EQ(access.stats().failures, 0u);
  // Cached: a second access does not probe again.
  size_t attempts = access.stats().attempts;
  EXPECT_TRUE(access.Access("s").ok());
  EXPECT_EQ(access.stats().attempts, attempts);
}

TEST(AccessController, DownRelationFailsAfterMaxAttempts) {
  FaultInjector injector(5);
  injector.SetPeerDown("H", true);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter_fraction = 0;
  policy.initial_backoff_ms = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 100.0;
  AccessController access(&injector, policy, Deadline::Infinite(),
                          [](const std::string&) { return "H"; });
  Status s = access.Access("doc");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(access.stats().attempts, 4u);
  EXPECT_EQ(access.stats().retries, 3u);
  EXPECT_EQ(access.stats().failures, 1u);
  // Backoff 1 + 2 + 4 between the four attempts.
  EXPECT_DOUBLE_EQ(access.stats().backoff_ms, 7.0);
  EXPECT_EQ(access.FailedRelations(), std::vector<std::string>{"doc"});
}

TEST(AccessController, DeadlineCutsRetriesShort) {
  FaultInjector injector(5);
  FaultProfile slow_down;
  slow_down.down = true;
  slow_down.latency_ms = 10.0;
  injector.SetStoredProfile("s", slow_down);
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.jitter_fraction = 0;
  policy.initial_backoff_ms = 10.0;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_ms = 10.0;
  // Budget admits the first attempt (10ms) + backoff (10ms) + second
  // attempt (10ms) and expires before the third.
  AccessController access(&injector, policy, Deadline::AfterMillis(25),
                          nullptr);
  Status s = access.Access("s");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(access.stats().timeouts, 1u);
  EXPECT_LT(access.stats().attempts, 100u);
}

}  // namespace
}  // namespace pdms
