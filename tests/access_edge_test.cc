// AccessController edge cases: deadline exhaustion before the first
// attempt, and the counter invariants that hold across arbitrary fault
// profiles — the accounting the degradation report (and the DST harness'
// verdict-accuracy invariant) is built on.

#include <gtest/gtest.h>

#include <string>

#include "pdms/fault/access.h"
#include "pdms/fault/fault_injector.h"
#include "pdms/util/rng.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace {

std::string NoPeer(const std::string&) { return std::string(); }

void CheckInvariants(const AccessStats& s, bool injected = true) {
  // Every probe resolves exactly one way.
  EXPECT_EQ(s.successes + s.failures + s.timeouts, s.probes) << s.ToString();
  // With a live injector each success/failure costs at least one attempt —
  // but a probe can time out with zero attempts, so `attempts >= probes`
  // does NOT hold; and without an injector successes are instant (zero
  // attempts), so this bound needs the injector too.
  if (injected) {
    EXPECT_GE(s.attempts, s.successes + s.failures) << s.ToString();
  }
  // Retries are attempts beyond the first.
  EXPECT_GE(s.attempts, s.retries) << s.ToString();
  EXPECT_GE(s.backoff_ms, 0.0) << s.ToString();
  EXPECT_GE(s.elapsed_ms, 0.0) << s.ToString();
}

TEST(AccessEdgeTest, DeadlineExpiredBeforeFirstProbe) {
  FaultInjector injector(1);
  AccessController controller(&injector, RetryPolicy{},
                              Deadline::AfterMillis(0), NoPeer);
  Status status = controller.Access("s1");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);

  const AccessStats& s = controller.stats();
  EXPECT_EQ(s.probes, 1u);
  EXPECT_EQ(s.timeouts, 1u);
  // The deadline was spent before anything could be tried: no attempt, no
  // backoff, no simulated time.
  EXPECT_EQ(s.attempts, 0u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.successes, 0u);
  EXPECT_EQ(s.failures, 0u);
  EXPECT_DOUBLE_EQ(s.backoff_ms, 0.0);
  CheckInvariants(s);
}

TEST(AccessEdgeTest, DeadlineSpentByEarlierRelation) {
  FaultInjector injector(1);
  FaultProfile slow;
  slow.latency_ms = 10.0;
  injector.SetStoredProfile("slow", slow);

  AccessController controller(&injector, RetryPolicy{},
                              Deadline::AfterMillis(5.0), NoPeer);
  // First probe starts inside the budget, succeeds, and consumes it all.
  EXPECT_TRUE(controller.Access("slow").ok());
  // Second probe finds the deadline already spent: zero attempts for it.
  Status status = controller.Access("late");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);

  const AccessStats& s = controller.stats();
  EXPECT_EQ(s.probes, 2u);
  EXPECT_EQ(s.successes, 1u);
  EXPECT_EQ(s.timeouts, 1u);
  EXPECT_EQ(s.attempts, 1u);
  CheckInvariants(s);
}

TEST(AccessEdgeTest, CachedOutcomeDoesNotDoubleCount) {
  FaultInjector injector(1);
  FaultProfile down;
  down.down = true;
  injector.SetStoredProfile("dead", down);

  RetryPolicy policy;
  policy.max_attempts = 3;
  AccessController controller(&injector, policy, Deadline::Infinite(), NoPeer);
  Status first = controller.Access("dead");
  Status second = controller.Access("dead");  // served from cache
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_EQ(second.code(), first.code());

  const AccessStats& s = controller.stats();
  EXPECT_EQ(s.probes, 1u);
  EXPECT_EQ(s.attempts, 3u);
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.failures, 1u);
  CheckInvariants(s);
}

TEST(AccessEdgeTest, NullInjectorCountsSuccesses) {
  AccessController controller(nullptr, RetryPolicy{}, Deadline::AfterMillis(0),
                              NoPeer);
  // Without an injector there is no clock, so even a zero deadline cannot
  // expire: every access succeeds and is counted as such.
  EXPECT_TRUE(controller.Access("a").ok());
  EXPECT_TRUE(controller.Access("b").ok());
  const AccessStats& s = controller.stats();
  EXPECT_EQ(s.probes, 2u);
  EXPECT_EQ(s.successes, 2u);
  EXPECT_EQ(s.attempts, 0u);
  CheckInvariants(s, /*injected=*/false);
}

// elapsed_ms is single-source: the access loop assigns it exactly once per
// resolved probe, so after every non-cached Access it equals the injector
// clock delta since construction — on the success path too (a double
// assignment there previously made success-then-backoff accounting
// ambiguous).
TEST(AccessEdgeTest, ElapsedMsMatchesInjectorClockAfterEveryProbe) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    FaultInjector injector(seed);
    // Warm the clock so start_ms is non-zero: elapsed must be measured from
    // controller construction, not from clock zero.
    injector.AdvanceClock(rng.UniformDouble() * 10.0);
    const double start_ms = injector.now_ms();

    const size_t relations = 1 + rng.Uniform(4);
    for (size_t r = 0; r < relations; ++r) {
      FaultProfile profile;
      profile.failure_probability = rng.UniformDouble();
      profile.latency_ms = rng.UniformDouble() * 3.0;
      injector.SetStoredProfile(StrFormat("s%zu", r), profile);
    }
    RetryPolicy policy;
    policy.max_attempts = 1 + rng.Uniform(3);
    policy.initial_backoff_ms = rng.UniformDouble() * 2.0;
    AccessController controller(&injector, policy,
                                Deadline::AfterMillis(rng.UniformDouble() * 15),
                                NoPeer);
    for (size_t r = 0; r < relations; ++r) {
      (void)controller.Access(StrFormat("s%zu", r));
      // Exactly one assignment per resolved probe, at resolution time.
      EXPECT_DOUBLE_EQ(controller.stats().elapsed_ms,
                       injector.now_ms() - start_ms);
    }
    // A cache hit resolves nothing and must not touch the accounting.
    double before = controller.stats().elapsed_ms;
    injector.AdvanceClock(5.0);
    (void)controller.Access("s0");
    EXPECT_DOUBLE_EQ(controller.stats().elapsed_ms, before);
  }
}

// Property sweep: random flaky profiles, deadlines, and retry policies.
// The one-resolution-per-probe accounting must hold for every schedule.
TEST(AccessEdgeTest, InvariantsHoldAcrossRandomProfiles) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    FaultInjector injector(seed);
    const size_t relations = 1 + rng.Uniform(6);
    for (size_t r = 0; r < relations; ++r) {
      FaultProfile profile;
      profile.down = rng.Chance(0.15);
      profile.failure_probability = rng.UniformDouble();
      profile.latency_ms = rng.UniformDouble() * 4.0;
      profile.latency_jitter_ms = rng.UniformDouble() * 2.0;
      injector.SetStoredProfile(StrFormat("s%zu", r), profile);
    }
    RetryPolicy policy;
    policy.max_attempts = 1 + rng.Uniform(4);
    policy.initial_backoff_ms = rng.UniformDouble() * 2.0;
    Deadline deadline = rng.Chance(0.5)
                            ? Deadline::Infinite()
                            : Deadline::AfterMillis(rng.UniformDouble() * 20);
    AccessController controller(&injector, policy, deadline, NoPeer);

    for (size_t r = 0; r < relations; ++r) {
      (void)controller.Access(StrFormat("s%zu", r));
    }
    // Re-probe a few (cache hits must not disturb the accounting).
    for (size_t r = 0; r < relations; r += 2) {
      (void)controller.Access(StrFormat("s%zu", r));
    }
    const AccessStats& s = controller.stats();
    EXPECT_EQ(s.probes, relations);
    CheckInvariants(s);
    EXPECT_EQ(controller.FailedRelations().size(), s.failures + s.timeouts);
  }
}

}  // namespace
}  // namespace pdms
