// Tests for Step 3 (solution enumeration): streaming vs. memoized
// equivalence, budget handling, timestamp reporting, and the unc-cover
// combination logic on handcrafted networks.

#include <gtest/gtest.h>

#include <set>

#include "pdms/core/pdms.h"
#include "pdms/core/reformulator.h"
#include "pdms/gen/workload.h"
#include "pdms/lang/canonical.h"

namespace pdms {
namespace {

std::set<std::string> Keys(const UnionQuery& uq) {
  std::set<std::string> keys;
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    keys.insert(CanonicalQueryKey(cq));
  }
  return keys;
}

TEST(Enumeration, StreamingAndMemoizedAgree) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    gen::WorkloadConfig config;
    config.num_peers = 12;
    config.num_strata = 3;
    config.relations_per_peer = 2;
    config.providers_per_relation = 2;
    config.definitional_fraction = 0.3;
    config.seed = seed;
    auto w = gen::GenerateWorkload(config);
    ASSERT_TRUE(w.ok());
    ReformulationOptions streaming;
    streaming.memoize_solutions = false;
    ReformulationOptions memoized;
    memoized.memoize_solutions = true;
    Reformulator r1(w->network, streaming);
    Reformulator r2(w->network, memoized);
    auto a = r1.Reformulate(w->query);
    auto b = r2.Reformulate(w->query);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(Keys(a->rewriting), Keys(b->rewriting)) << "seed " << seed;
  }
}

TEST(Enumeration, TimestampsAreMonotone) {
  gen::WorkloadConfig config;
  config.num_peers = 24;
  config.num_strata = 3;
  config.seed = 3;
  auto w = gen::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());
  Reformulator reformulator(w->network);
  auto result = reformulator.Reformulate(w->query);
  ASSERT_TRUE(result.ok());
  const auto& stamps = result->stats.time_to_rewriting_ms;
  ASSERT_EQ(stamps.size(), result->stats.rewritings);
  for (size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_LE(stamps[i - 1], stamps[i]);
  }
  // Timestamps include the build phase (measured from submission).
  if (!stamps.empty()) {
    EXPECT_GE(stamps.front(), 0.0);
  }
}

TEST(Enumeration, TimeBudgetTruncates) {
  gen::WorkloadConfig config;
  config.num_peers = 48;
  config.num_strata = 5;
  config.providers_per_relation = 2;
  config.seed = 5;
  auto w = gen::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());
  ReformulationOptions options;
  options.time_budget_ms = 1;  // essentially immediate
  Reformulator reformulator(w->network, options);
  auto result = reformulator.Reformulate(w->query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.enumeration_truncated ||
              result->stats.rewritings == 0 ||
              result->stats.enumerate_ms < 50.0);
}

TEST(Enumeration, MemoPartialCapTruncates) {
  gen::WorkloadConfig config;
  config.num_peers = 24;
  config.num_strata = 4;
  config.providers_per_relation = 2;
  config.seed = 2;
  auto w = gen::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());
  ReformulationOptions options;
  options.memoize_solutions = true;
  options.max_memo_partials = 10;
  Reformulator reformulator(w->network, options);
  auto result = reformulator.Reformulate(w->query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.enumeration_truncated);
}

TEST(Enumeration, OverlappingUncProducesRedundantButSoundRewriting) {
  // Two subgoals over the same relation pair: the MCD covering both plus
  // each subgoal's individual coverage produce several rewritings; all
  // must be safe and over stored relations.
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer M { relation E(x, y); }
    peer S { relation V(x, y); relation W(x, y); }
    mapping (x, y) : S:V(x, y) <= M:E(x, z), M:E(z, y).
    mapping (x, y) : S:W(x, y) <= M:E(x, y).
    stored sv(x, y) <= S:V(x, y).
    stored sw(x, y) <= S:W(x, y).
    fact sw(1, 2).
    fact sw(2, 3).
    fact sv(1, 3).
  )").ok());
  auto result = pdms.Reformulate("q(x, y) :- M:E(x, z), M:E(z, y).");
  ASSERT_TRUE(result.ok());
  // Expect at least: sv(x,y) alone, and sw(x,z),sw(z,y).
  EXPECT_GE(result->rewriting.size(), 2u) << result->rewriting.ToString();
  auto answers = pdms.Answer("q(x, y) :- M:E(x, z), M:E(z, y).");
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->Contains({Value::Int(1), Value::Int(3)}));
  EXPECT_EQ(answers->size(), 1u);
}

TEST(Enumeration, MixedCoverChoosesPerChildIndependently) {
  // First subgoal answered two ways, second subgoal answered two ways:
  // the cover recursion must produce all four combinations.
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer M { relation A(x); relation B(x); }
    peer S { relation A1(x); relation A2(x); relation B1(x); relation B2(x); }
    mapping M:A(x) :- S:A1(x).
    mapping M:A(x) :- S:A2(x).
    mapping M:B(x) :- S:B1(x).
    mapping M:B(x) :- S:B2(x).
    stored sa1(x) <= S:A1(x).
    stored sa2(x) <= S:A2(x).
    stored sb1(x) <= S:B1(x).
    stored sb2(x) <= S:B2(x).
  )").ok());
  auto result = pdms.Reformulate("q(x) :- M:A(x), M:B(x).");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewriting.size(), 4u) << result->rewriting.ToString();
}

TEST(Enumeration, ConflictingConstantsDropCombination) {
  // The two mappings pin the shared variable to different constants; the
  // combination must be dropped, leaving only the consistent pairings.
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer M { relation A(x, k); relation B(x, k); }
    peer S { relation SA(x); relation SB(x); }
    mapping M:A(x, 1) :- S:SA(x).
    mapping M:B(x, 2) :- S:SB(x).
    stored sa(x) <= S:SA(x).
    stored sb(x) <= S:SB(x).
  )").ok());
  // Joining on k forces 1 = 2: no rewriting.
  auto none = pdms.Reformulate("q(x) :- M:A(x, k), M:B(x, k).");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->rewriting.empty()) << none->rewriting.ToString();
  // Without the join each side works.
  auto some = pdms.Reformulate("q(x) :- M:A(x, k1), M:B(x, k2).");
  ASSERT_TRUE(some.ok());
  EXPECT_EQ(some->rewriting.size(), 1u);
}

TEST(Enumeration, RequiredComparisonOnFoldedVariableNeedsImplication) {
  // The definitional rule filters z < 5, but z folds into the view; the
  // combination is only emitted when the view guarantees the bound.
  Pdms weak;
  ASSERT_TRUE(weak.LoadProgram(R"(
    peer M { relation Top(x, y); relation E1(x, y); relation E2(x, y); }
    peer S { relation V(x, y); }
    mapping M:Top(x, y) :- M:E1(x, z), M:E2(z, y), z < 5.
    mapping (x, y) : S:V(x, y) <= M:E1(x, z), M:E2(z, y).
    stored sv(x, y) <= S:V(x, y).
  )").ok());
  auto none = weak.Reformulate("q(x, y) :- M:Top(x, y).");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->rewriting.empty()) << none->rewriting.ToString();

  Pdms strong;
  ASSERT_TRUE(strong.LoadProgram(R"(
    peer M { relation Top(x, y); relation E1(x, y); relation E2(x, y); }
    peer S { relation V(x, y); }
    mapping M:Top(x, y) :- M:E1(x, z), M:E2(z, y), z < 5.
    mapping (x, y) : S:V(x, y) <= M:E1(x, z), M:E2(z, y), z < 3.
    stored sv(x, y) <= S:V(x, y).
  )").ok());
  auto some = strong.Reformulate("q(x, y) :- M:Top(x, y).");
  ASSERT_TRUE(some.ok());
  EXPECT_EQ(some->rewriting.size(), 1u) << some->rewriting.ToString();
}

TEST(Enumeration, QueryComparisonsSurviveIntoRewritings) {
  Pdms pdms;
  ASSERT_TRUE(pdms.LoadProgram(R"(
    peer A { relation R(x, y); }
    stored sr(x, y) <= A:R(x, y).
    fact sr(1, 10).
    fact sr(2, 20).
  )").ok());
  auto result = pdms.Reformulate("q(x) :- A:R(x, y), y > 15.");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rewriting.size(), 1u);
  EXPECT_EQ(result->rewriting.disjuncts()[0].comparisons().size(), 1u);
  auto answers = pdms.Answer("q(x) :- A:R(x, y), y > 15.");
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
  EXPECT_TRUE(answers->Contains({Value::Int(2)}));
}

}  // namespace
}  // namespace pdms
