// Deterministic simulation testing under live churn.
//
// Each seed expands into one complete schedule over a graph-shaped PDMS
// (power-law or community topology): queries interleaved with churn events
// — peer crash/recover, catalog leave/rejoin/join, mapping add/edit/
// remove, stored-relation availability flips, fact inserts. Two twins
// execute the same schedule against the same shared world:
//
//   cached twin   — shared PlanCache + GoalMemo with dependency-tracked
//                   invalidation, plus a PeerHealthTracker;
//   uncached twin — no caches, its own (identically configured) tracker.
//
// Per step the twins' answers must be byte-identical and their
// completeness verdicts and exclusions must agree: caching under churn is
// allowed to save work, never to change a single byte of output.
//
// On top of the per-step oracle, the suite asserts the economics:
//  - sustained plan-cache hit rate on a Zipf query stream under steady
//    mapping-edit churn stays above 50% with tracked invalidation, while
//    wholesale clearing (the negative control) cannot reach the bar;
//  - a crashed peer costs O(1) timeout ladders total (detection), not one
//    ladder per query, measured on the virtual clock.
//
// Seed count and base default to 200 / 0, overridable with
// PDMS_DST_SEEDS / PDMS_DST_SEED0, so a failing seed N reproduces with:
//   PDMS_DST_SEEDS=1 PDMS_DST_SEED0=N ./churn_dst_test

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "pdms/cache/goal_memo.h"
#include "pdms/cache/plan_cache.h"
#include "pdms/fault/peer_health.h"
#include "pdms/gen/topology.h"
#include "pdms/sim/churn.h"
#include "pdms/sim/sim_pdms.h"
#include "pdms/util/rng.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace sim {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

gen::TopologyConfig TopologyFor(uint64_t seed, size_t num_peers) {
  Rng rng(seed ^ 0x6a09e667f3bcc909ull);
  gen::TopologyConfig config;
  config.kind = (seed % 2 == 0) ? gen::TopologyConfig::Kind::kPowerLaw
                                : gen::TopologyConfig::Kind::kCommunity;
  config.num_peers = num_peers;
  config.levels = 1 + rng.Uniform(2);  // 1..2
  config.attach_edges = 1 + rng.Uniform(2);
  config.num_communities = std::max<size_t>(2, num_peers / 8);
  config.definitional_fraction = rng.Chance(0.5) ? 0.3 : 0.7;
  config.facts_per_stored = 2 + rng.Uniform(2);
  config.value_domain = 4;  // small domain so joins produce answers
  config.seed = seed + 1;
  return config;
}

SimOptions SimFor(uint64_t seed, uint64_t step) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + step);
  SimOptions options;
  options.seed = seed * 1000 + step;
  options.faults.drop_probability = rng.UniformDouble() * 0.15;
  options.faults.duplicate_probability = rng.UniformDouble() * 0.1;
  options.faults.delay_jitter_ms = rng.UniformDouble() * 3.0;
  options.request_timeout_ms = 8.0;
  options.retry.max_attempts = 2 + rng.Uniform(2);  // 2..3
  return options;
}

PeerHealthConfig HealthFor() {
  PeerHealthConfig config;
  config.enabled = true;
  config.suspicion_threshold = 2;
  config.probe_backoff_ms = 8.0;
  config.probe_backoff_multiplier = 2.0;
  config.max_probe_backoff_ms = 256.0;
  return config;
}

// Zipf-flavored peer pick: squaring the uniform draw concentrates mass on
// the low indices (the topology's oldest peers — the hubs).
size_t ZipfPeer(Rng* rng, size_t num_peers) {
  double u = rng->UniformDouble();
  return static_cast<size_t>(u * u * static_cast<double>(num_peers));
}

struct StepOutcome {
  Status status = Status::Ok();
  std::string answers;
  std::string completeness;
  std::vector<std::string> excluded_peers;
  std::vector<std::string> excluded_stored;
  DegradationReport report;
};

StepOutcome RunOne(SimPdms* sim, const ConjunctiveQuery& query) {
  StepOutcome out;
  auto result = sim->Answer(query);
  if (!result.ok()) {
    out.status = result.status();
    return out;
  }
  out.answers = result->answers.ToString();
  out.completeness = CompletenessName(result->degradation.completeness);
  out.excluded_peers = result->degradation.excluded_peers;
  out.excluded_stored = result->degradation.excluded_stored;
  out.report = result->degradation;
  return out;
}

// One full schedule for one seed: returns the shared plan-cache stats so
// callers can aggregate hit rates.
void RunSeed(uint64_t seed, size_t num_peers, size_t steps,
             cache::PlanCacheStats* plan_stats_out) {
  auto world = gen::GenerateTopology(TopologyFor(seed, num_peers));
  ASSERT_TRUE(world.ok()) << world.status().ToString();

  ChurnConfig churn_config;
  churn_config.seed = seed;
  churn_config.value_domain = 4;
  ChurnDriver driver(churn_config, &world->network, &world->data);

  cache::PlanCache plans;
  cache::GoalMemo memo;
  PeerHealthTracker cached_health(HealthFor());
  PeerHealthTracker plain_health(HealthFor());

  Rng query_rng(seed ^ 0x243f6a8885a308d3ull);
  size_t total_levels = TopologyFor(seed, num_peers).levels;

  for (size_t step = 0; step < steps; ++step) {
    // Interleave: roughly every other step mutates the world first.
    if (query_rng.Chance(0.5)) {
      ChurnEvent event = driver.Step();
      SCOPED_TRACE("churn step " + std::to_string(step) + ": " +
                   event.ToString());
    }
    size_t peer = ZipfPeer(&query_rng, world->network.peers().size());
    // Joined peers only declare R0; generated peers have R0..R<levels>.
    size_t level = peer < num_peers ? 1 + query_rng.Uniform(total_levels) : 0;
    ConjunctiveQuery query = gen::TopologyQuery(peer, level);
    if (peer >= num_peers) {
      // A joined peer: query its stored relation via the generated name.
      query = ConjunctiveQuery(
          query.head(),
          {Atom(QualifiedName(StrFormat("J%zu", peer - num_peers), "R0"),
                query.head().args())});
    }
    SimOptions options = SimFor(seed, step);

    SimPdms cached(world->network, world->data, options);
    cached.set_plan_cache(&plans);
    cached.set_goal_memo(&memo);
    cached.set_health(&cached_health);
    SimPdms plain(world->network, world->data, options);
    plain.set_health(&plain_health);
    for (const std::string& peer_name : driver.crashed()) {
      cached.SetPeerCrashed(peer_name, true);
      plain.SetPeerCrashed(peer_name, true);
    }

    StepOutcome got = RunOne(&cached, query);
    StepOutcome want = RunOne(&plain, query);
    SCOPED_TRACE("query step " + std::to_string(step) + " peer " +
                 std::to_string(peer) + " level " + std::to_string(level));
    ASSERT_EQ(got.status.ok(), want.status.ok())
        << got.status.ToString() << " vs " << want.status.ToString();
    if (!got.status.ok()) continue;  // both hit the loop bounds: no oracle
    // The oracle: byte-identical answers, identical verdicts/exclusions.
    EXPECT_EQ(got.answers, want.answers);
    EXPECT_EQ(got.completeness, want.completeness);
    EXPECT_EQ(got.excluded_peers, want.excluded_peers);
    EXPECT_EQ(got.excluded_stored, want.excluded_stored);
  }
  if (plan_stats_out != nullptr) *plan_stats_out = plans.stats();
}

TEST(ChurnDst, CachedAndUncachedTwinsStayByteIdentical) {
  const size_t num_seeds = EnvSize("PDMS_DST_SEEDS", 200);
  const size_t seed0 = EnvSize("PDMS_DST_SEED0", 0);
  size_t hits = 0;
  size_t misses = 0;
  for (size_t i = 0; i < num_seeds; ++i) {
    const uint64_t seed = seed0 + i;
    SCOPED_TRACE("reproduce with: PDMS_DST_SEEDS=1 PDMS_DST_SEED0=" +
                 std::to_string(seed) + " ./churn_dst_test");
    cache::PlanCacheStats stats;
    size_t num_peers = 12 + (seed % 5) * 6;  // 12..36
    RunSeed(seed, num_peers, /*steps=*/14, &stats);
    if (HasFatalFailure()) return;
    hits += stats.hits;
    misses += stats.misses;
  }
  // Sanity: the schedules actually exercised the cache from both sides.
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, 0u);
}

// The economics assertion: a Zipf stream over a slowly-churning catalog
// must keep hitting. Every other step edits a mapping or inserts a fact;
// dependency-tracked invalidation only drops the plans whose footprints
// the edit touches, so the hot plans survive. Wholesale clearing — the
// pre-tracking behavior, kept as a negative control — drops everything on
// every catalog movement and cannot reach the bar.
TEST(ChurnDst, SustainedHitRateUnderSteadyChurnBeatsWholesale) {
  const uint64_t seed = 7;
  gen::TopologyConfig tconfig = TopologyFor(seed, 32);
  tconfig.levels = 1;
  auto world = gen::GenerateTopology(tconfig);
  ASSERT_TRUE(world.ok()) << world.status().ToString();

  ChurnConfig churn_config;
  churn_config.seed = seed;
  churn_config.value_domain = 4;
  // Steady read/write churn only: catalog edits and data inserts.
  churn_config.w_crash = 0;
  churn_config.w_recover = 0;
  churn_config.w_peer_leave = 0;
  churn_config.w_peer_rejoin = 0;
  churn_config.w_peer_join = 0;
  churn_config.w_mapping_add = 0;
  churn_config.w_mapping_remove = 0;
  churn_config.w_relation_flip = 0;
  churn_config.w_mapping_edit = 1;
  churn_config.w_fact_insert = 2;
  ChurnDriver driver(churn_config, &world->network, &world->data);

  cache::PlanCache tracked;
  cache::PlanCache wholesale;
  wholesale.set_wholesale_invalidation(true);

  Rng query_rng(seed ^ 0x243f6a8885a308d3ull);
  const size_t kSteps = 200;
  for (size_t step = 0; step < kSteps; ++step) {
    if (step % 2 == 1) driver.Step();
    size_t peer = ZipfPeer(&query_rng, 32);
    ConjunctiveQuery query = gen::TopologyQuery(peer, 1);
    SimOptions options;  // reliable links: this test measures hit rates
    options.seed = seed * 1000 + step;

    SimPdms a(world->network, world->data, options);
    a.set_plan_cache(&tracked);
    ASSERT_TRUE(a.Answer(query).ok());
    SimPdms b(world->network, world->data, options);
    b.set_plan_cache(&wholesale);
    ASSERT_TRUE(b.Answer(query).ok());
  }

  auto rate = [](const cache::PlanCacheStats& s) {
    return static_cast<double>(s.hits) /
           static_cast<double>(s.hits + s.misses);
  };
  double tracked_rate = rate(tracked.stats());
  double wholesale_rate = rate(wholesale.stats());
  EXPECT_GT(tracked_rate, 0.5)
      << "tracked invalidation must sustain hits under steady churn";
  EXPECT_LE(wholesale_rate, 0.5)
      << "wholesale clearing passing the bar means the control is broken";
  EXPECT_GT(tracked_rate, wholesale_rate);
}

// A crashed peer must cost one detection, not one timeout ladder per
// query: after `suspicion_threshold` failed fetches, every further query
// fails fast with zero messages until a probe window opens. Measured on
// the virtual clock, N queries against a dead peer cost O(1) ladders with
// health tracking and exactly N ladders without.
TEST(ChurnDst, DeadPeerCostsConstantDetectionsOnTheVirtualClock) {
  gen::TopologyConfig tconfig;
  tconfig.kind = gen::TopologyConfig::Kind::kPowerLaw;
  tconfig.num_peers = 4;
  tconfig.levels = 0;  // query storage directly
  tconfig.facts_per_stored = 2;
  tconfig.seed = 3;
  auto world = gen::GenerateTopology(tconfig);
  ASSERT_TRUE(world.ok()) << world.status().ToString();
  ConjunctiveQuery query = gen::TopologyQuery(0, 0);

  SimOptions options;
  options.seed = 11;
  options.request_timeout_ms = 10.0;
  options.retry.max_attempts = 3;

  PeerHealthConfig hconfig = HealthFor();
  hconfig.probe_backoff_ms = 1000.0;  // no probe inside this schedule
  hconfig.max_probe_backoff_ms = 8000.0;
  PeerHealthTracker tracker(hconfig);

  const size_t kQueries = 20;
  size_t timeouts_with = 0;
  size_t skips_with = 0;
  double elapsed_with = 0;
  size_t timeouts_without = 0;
  double elapsed_without = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    SimPdms with_health(world->network, world->data, options);
    with_health.set_health(&tracker);
    with_health.SetPeerCrashed("P0", true);
    auto r = with_health.Answer(query);
    ASSERT_TRUE(r.ok());
    timeouts_with += r->degradation.messages.request_timeouts;
    skips_with += r->degradation.messages.skipped_suspected;
    elapsed_with += r->degradation.access.elapsed_ms;

    SimPdms without_health(world->network, world->data, options);
    without_health.SetPeerCrashed("P0", true);
    auto r2 = without_health.Answer(query);
    ASSERT_TRUE(r2.ok());
    timeouts_without += r2->degradation.messages.request_timeouts;
    elapsed_without += r2->degradation.access.elapsed_ms;
  }
  // Without tracking: every query pays the full ladder.
  EXPECT_EQ(timeouts_without, kQueries * options.retry.max_attempts);
  // With tracking: only the detection queries pay it; the backoff covers
  // the rest of the schedule, so the total is constant in kQueries.
  EXPECT_EQ(timeouts_with,
            tracker.config().suspicion_threshold * options.retry.max_attempts);
  EXPECT_EQ(skips_with,
            kQueries - tracker.config().suspicion_threshold);
  EXPECT_TRUE(tracker.IsSuspected("P0"));
  // And the saved ladders are real virtual time.
  EXPECT_LT(elapsed_with, elapsed_without / 2);
}

// Shared caches must stay coherent (and TSan-clean) when four threads
// query through them concurrently while the catalog churns between
// rounds. Every thread's answers are byte-compared against an uncached
// single-threaded reference for the same world state.
TEST(ChurnDst, SharedCachesSurviveFourThreadsAcrossChurnRounds) {
  const uint64_t seed = 17;
  auto world = gen::GenerateTopology(TopologyFor(seed, 16));
  ASSERT_TRUE(world.ok()) << world.status().ToString();

  ChurnConfig churn_config;
  churn_config.seed = seed;
  // Catalog-only churn: crashes are per-SimPdms state and would make the
  // reference diverge.
  churn_config.w_crash = 0;
  churn_config.w_recover = 0;
  ChurnDriver driver(churn_config, &world->network, &world->data);

  cache::PlanCache plans;
  cache::GoalMemo memo;
  const size_t kThreads = 4;
  const size_t kRounds = 6;
  const size_t kQueriesPerThread = 5;

  for (size_t round = 0; round < kRounds; ++round) {
    driver.Step();
    // Reference answers for this round's queries, uncached.
    std::vector<ConjunctiveQuery> queries;
    std::vector<std::string> expected;
    Rng round_rng(seed + round);
    for (size_t q = 0; q < kQueriesPerThread; ++q) {
      size_t peer = ZipfPeer(&round_rng, 16);
      queries.push_back(gen::TopologyQuery(peer, 1));
      SimOptions options;
      options.seed = seed * 100 + round * 10 + q;
      SimPdms reference(world->network, world->data, options);
      auto r = reference.Answer(queries.back());
      ASSERT_TRUE(r.ok());
      expected.push_back(r->answers.ToString());
    }
    std::vector<std::vector<std::string>> got(kThreads);
    std::vector<std::thread> workers;
    for (size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (size_t q = 0; q < kQueriesPerThread; ++q) {
          SimOptions options;
          options.seed = seed * 100 + round * 10 + q;
          SimPdms sim(world->network, world->data, options);
          sim.set_plan_cache(&plans);
          sim.set_goal_memo(&memo);
          auto r = sim.Answer(queries[q]);
          got[t].push_back(r.ok() ? r->answers.ToString()
                                  : r.status().ToString());
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (size_t t = 0; t < kThreads; ++t) {
      for (size_t q = 0; q < kQueriesPerThread; ++q) {
        EXPECT_EQ(got[t][q], expected[q])
            << "round " << round << " thread " << t << " query " << q;
      }
    }
  }
  EXPECT_GT(plans.stats().hits, 0u);
}

// The generators must hold up at the scale the churn benchmarks run at.
TEST(ChurnDst, ThousandPeerTopologiesGenerateAndAnswer) {
  for (auto kind : {gen::TopologyConfig::Kind::kPowerLaw,
                    gen::TopologyConfig::Kind::kCommunity}) {
    gen::TopologyConfig config;
    config.kind = kind;
    config.num_peers = 1000;
    config.levels = 1;
    config.facts_per_stored = 1;
    config.seed = 5;
    auto world = gen::GenerateTopology(config);
    ASSERT_TRUE(world.ok()) << world.status().ToString();
    EXPECT_EQ(world->network.peers().size(), 1000u);
    // Hubs exist under preferential attachment: some peer is drawn on by
    // far more joiners than the attachment count.
    if (kind == gen::TopologyConfig::Kind::kPowerLaw) {
      std::vector<size_t> indegree(1000, 0);
      for (const auto& ns : world->neighbors) {
        for (size_t v : ns) ++indegree[v];
      }
      EXPECT_GT(*std::max_element(indegree.begin(), indegree.end()), 20u);
    }
    cache::PlanCache plans;
    for (size_t q = 0; q < 3; ++q) {
      SimOptions options;
      options.seed = 100 + q;
      SimPdms sim(world->network, world->data, options);
      sim.set_plan_cache(&plans);
      auto r = sim.Answer(gen::TopologyQuery(q * 7, 1));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }
}

// A fast subset for CI smoke runs (tools/ci.sh step 7 filters on *Smoke*).
TEST(ChurnDstSmoke, ThirtyTwoSeedSubsetStaysByteIdentical) {
  const size_t num_seeds = EnvSize("PDMS_DST_SEEDS", 32);
  const size_t seed0 = EnvSize("PDMS_DST_SEED0", 0);
  for (size_t i = 0; i < num_seeds; ++i) {
    const uint64_t seed = seed0 + i;
    SCOPED_TRACE("reproduce with: PDMS_DST_SEEDS=1 PDMS_DST_SEED0=" +
                 std::to_string(seed) + " ./churn_dst_test");
    RunSeed(seed, /*num_peers=*/12, /*steps=*/8, nullptr);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace sim
}  // namespace pdms
