// Tests for the evaluation substrate: conjunctive-query evaluation,
// semi-naive datalog, and the chase engine.

#include <gtest/gtest.h>

#include "pdms/eval/chase.h"
#include "pdms/eval/datalog.h"
#include "pdms/eval/evaluator.h"
#include "pdms/lang/parser.h"

namespace pdms {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseRuleText(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

Database MakeEdgeDb() {
  Database db;
  db.Insert("edge", {Value::Int(1), Value::Int(2)});
  db.Insert("edge", {Value::Int(2), Value::Int(3)});
  db.Insert("edge", {Value::Int(3), Value::Int(4)});
  db.Insert("edge", {Value::Int(2), Value::Int(5)});
  return db;
}

TEST(Evaluator, SimpleScan) {
  Database db = MakeEdgeDb();
  auto r = EvaluateCQ(Q("q(x, y) :- edge(x, y)."), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
}

TEST(Evaluator, JoinOnSharedVariable) {
  Database db = MakeEdgeDb();
  auto r = EvaluateCQ(Q("q(x, z) :- edge(x, y), edge(y, z)."), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);  // (1,3), (1,5), (2,4)
  EXPECT_TRUE(r->Contains({Value::Int(1), Value::Int(3)}));
  EXPECT_TRUE(r->Contains({Value::Int(1), Value::Int(5)}));
  EXPECT_TRUE(r->Contains({Value::Int(2), Value::Int(4)}));
}

TEST(Evaluator, ConstantsFilter) {
  Database db = MakeEdgeDb();
  auto r = EvaluateCQ(Q("q(y) :- edge(2, y)."), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(Evaluator, RepeatedVariablesRequireEquality) {
  Database db;
  db.Insert("p", {Value::Int(1), Value::Int(1)});
  db.Insert("p", {Value::Int(1), Value::Int(2)});
  auto r = EvaluateCQ(Q("q(x) :- p(x, x)."), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  EXPECT_TRUE(r->Contains({Value::Int(1)}));
}

TEST(Evaluator, ComparisonsPushedIntoJoin) {
  Database db = MakeEdgeDb();
  auto r = EvaluateCQ(Q("q(x, y) :- edge(x, y), y > 3."), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // (3,4) and (2,5)
}

TEST(Evaluator, VariableToVariableComparison) {
  Database db = MakeEdgeDb();
  auto r = EvaluateCQ(Q("q(x, y) :- edge(x, y), x < y."), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);  // all edges ascend
  auto r2 = EvaluateCQ(Q("q(x, y) :- edge(x, y), x >= y."), db);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 0u);
}

TEST(Evaluator, MissingRelationMatchesNothing) {
  Database db;
  auto r = EvaluateCQ(Q("q(x) :- nothere(x)."), db);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(Evaluator, HeadConstants) {
  Database db = MakeEdgeDb();
  auto r = EvaluateCQ(Q("q(x, \"tag\") :- edge(x, 2)."), db);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Contains({Value::Int(1), Value::String("tag")}));
}

TEST(Evaluator, UnsafeQueryRejected) {
  Database db;
  EXPECT_FALSE(EvaluateCQ(Q("q(w) :- edge(x, y)."), db).ok());
}

TEST(Evaluator, UnionEvaluation) {
  Database db = MakeEdgeDb();
  UnionQuery uq({Q("q(x) :- edge(x, 2)."), Q("q(x) :- edge(x, 3).")});
  auto r = EvaluateUnion(uq, db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // {1, 2}
  UnionQuery mismatched(
      {Q("q(x) :- edge(x, 2)."), Q("q(x, y) :- edge(x, y).")});
  EXPECT_FALSE(EvaluateUnion(mismatched, db).ok());
}

TEST(Evaluator, ForEachMatchEarlyStop) {
  Database db = MakeEdgeDb();
  auto body = Q("q(x, y) :- edge(x, y).").body();
  int count = 0;
  ASSERT_TRUE(ForEachMatch(body, {}, db, [&](const BindingMap&) {
                return ++count < 2;
              }).ok());
  EXPECT_EQ(count, 2);
}

TEST(Evaluator, DropNullTuples) {
  Relation rel("r", 2);
  rel.Insert({Value::Int(1), Value::Int(2)});
  rel.Insert({Value::Int(1), Value::Null(7)});
  Relation clean = DropNullTuples(rel);
  EXPECT_EQ(clean.size(), 1u);
}

// ----- datalog -----

TEST(Datalog, TransitiveClosure) {
  Database db = MakeEdgeDb();
  std::vector<Rule> program = {
      Q("tc(x, y) :- edge(x, y)."),
      Q("tc(x, z) :- tc(x, y), edge(y, z)."),
  };
  auto result = EvaluateDatalog(program, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Relation* tc = result->Find("tc");
  ASSERT_NE(tc, nullptr);
  // 1->2,3,4,5; 2->3,4,5; 3->4 => 8 pairs.
  EXPECT_EQ(tc->size(), 8u);
  EXPECT_TRUE(tc->Contains({Value::Int(1), Value::Int(5)}));
  EXPECT_FALSE(tc->Contains({Value::Int(4), Value::Int(1)}));
}

TEST(Datalog, MutualRecursion) {
  Database db;
  db.Insert("base", {Value::Int(0)});
  std::vector<Rule> program = {
      Q("even(x) :- base(x)."),
      Q("odd(y) :- even(x), succ(x, y)."),
      Q("even(y) :- odd(x), succ(x, y)."),
  };
  for (int i = 0; i < 6; ++i) {
    db.Insert("succ", {Value::Int(i), Value::Int(i + 1)});
  }
  auto result = EvaluateDatalog(program, db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Find("even")->Contains({Value::Int(4)}));
  EXPECT_TRUE(result->Find("odd")->Contains({Value::Int(5)}));
  EXPECT_FALSE(result->Find("even")->Contains({Value::Int(3)}));
}

TEST(Datalog, ComparisonsInRuleBodies) {
  Database db = MakeEdgeDb();
  std::vector<Rule> program = {Q("big(x, y) :- edge(x, y), y >= 4.")};
  auto result = EvaluateDatalog(program, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find("big")->size(), 2u);
}

TEST(Datalog, EmptyIdbRelationsExist) {
  Database db;  // no edges at all
  std::vector<Rule> program = {Q("tc(x, y) :- edge(x, y).")};
  auto result = EvaluateDatalog(program, db);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->HasRelation("tc"));
  EXPECT_TRUE(result->Find("tc")->empty());
}

TEST(Datalog, TupleCapSurfacesAsError) {
  Database db;
  for (int i = 0; i < 30; ++i) {
    db.Insert("edge", {Value::Int(i), Value::Int(i + 1)});
  }
  std::vector<Rule> program = {
      Q("tc(x, y) :- edge(x, y)."),
      Q("tc(x, z) :- tc(x, y), tc(y, z)."),
  };
  DatalogOptions opts;
  opts.max_tuples = 10;
  auto result = EvaluateDatalog(program, db, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// ----- chase -----

TEST(Chase, ExistentialTgdIntroducesNulls) {
  // person(x) → ∃y parent(x, y)
  Database db;
  db.Insert("person", {Value::Int(1)});
  Tgd tgd;
  tgd.body = Q("t(x) :- person(x).").body();
  tgd.head = Q("t(x) :- parent(x, y).").body();
  tgd.name = "has-parent";
  auto chased = ChaseDatabase(db, {tgd});
  ASSERT_TRUE(chased.ok()) << chased.status().ToString();
  const Relation* parent = chased->Find("parent");
  ASSERT_NE(parent, nullptr);
  ASSERT_EQ(parent->size(), 1u);
  EXPECT_TRUE(parent->tuples()[0][1].is_null());
  EXPECT_EQ(parent->tuples()[0][0], Value::Int(1));
}

TEST(Chase, DoesNotFireWhenHeadSatisfied) {
  Database db;
  db.Insert("person", {Value::Int(1)});
  db.Insert("parent", {Value::Int(1), Value::Int(99)});
  Tgd tgd;
  tgd.body = Q("t(x) :- person(x).").body();
  tgd.head = Q("t(x) :- parent(x, y).").body();
  auto chased = ChaseDatabase(db, {tgd});
  ASSERT_TRUE(chased.ok());
  EXPECT_EQ(chased->Find("parent")->size(), 1u);  // no new null tuple
}

TEST(Chase, MultiAtomHeadAddsJoinedFacts) {
  // r(x, y) → ∃z s(x, z), t(z, y): both head atoms share the fresh null.
  Database db;
  db.Insert("r", {Value::Int(1), Value::Int(2)});
  Tgd tgd;
  tgd.body = Q("q(x, y) :- r(x, y).").body();
  tgd.head = Q("q(x, y) :- s(x, z), t(z, y).").body();
  auto chased = ChaseDatabase(db, {tgd});
  ASSERT_TRUE(chased.ok());
  const Relation* s = chased->Find("s");
  const Relation* t = chased->Find("t");
  ASSERT_EQ(s->size(), 1u);
  ASSERT_EQ(t->size(), 1u);
  EXPECT_EQ(s->tuples()[0][1], t->tuples()[0][0]);  // same null
}

TEST(Chase, PremiseComparisonsRestrictFiring) {
  Database db;
  db.Insert("v", {Value::Int(3)});
  db.Insert("v", {Value::Int(8)});
  Tgd tgd;
  auto rule = Q("q(x) :- v(x), x > 5.");
  tgd.body = rule.body();
  tgd.comparisons = rule.comparisons();
  tgd.head = Q("q(x) :- big(x).").body();
  auto chased = ChaseDatabase(db, {tgd});
  ASSERT_TRUE(chased.ok());
  EXPECT_EQ(chased->Find("big")->size(), 1u);
  EXPECT_TRUE(chased->Find("big")->Contains({Value::Int(8)}));
}

TEST(Chase, NonTerminatingDependencySurfacesAsError) {
  // p(x) → ∃y p(y): classic non-terminating chase; caps must fire.
  Database db;
  db.Insert("p", {Value::Int(0)});
  Tgd tgd;
  tgd.body = Q("q(x) :- p(x).").body();
  tgd.head = Q("q(x) :- p(y), link(x, y).").body();
  ChaseOptions opts;
  opts.max_rounds = 50;
  opts.max_tuples = 200;
  auto chased = ChaseDatabase(db, {tgd}, opts);
  ASSERT_FALSE(chased.ok());
  EXPECT_EQ(chased.status().code(), StatusCode::kResourceExhausted);
}

TEST(Chase, WeakAcyclicityAcceptsStratifiedDependencies) {
  // Stratified copy-style TGDs: r -> s with an existential, s -> t.
  Tgd a;
  a.body = Q("q(x) :- r(x).").body();
  a.head = Q("q(x) :- s(x, y).").body();
  Tgd b;
  b.body = Q("q(x, y) :- s(x, y).").body();
  b.head = Q("q(x, y) :- t(x, y).").body();
  EXPECT_TRUE(IsWeaklyAcyclic({a, b}));
}

TEST(Chase, WeakAcyclicityRejectsNullGeneratingCycle) {
  // p(x) -> ∃y p(y) via link: the fresh null flows back into p's position.
  Tgd t;
  t.body = Q("q(x) :- p(x).").body();
  t.head = Q("q(x) :- p(y), link(x, y).").body();
  EXPECT_FALSE(IsWeaklyAcyclic({t}));
}

TEST(Chase, WeakAcyclicityAllowsNormalCycles) {
  // Mutual copying without existentials (replication) cycles through
  // normal edges only: still weakly acyclic.
  Tgd fwd;
  fwd.body = Q("q(x, y) :- a(x, y).").body();
  fwd.head = Q("q(x, y) :- b(x, y).").body();
  Tgd bwd;
  bwd.body = Q("q(x, y) :- b(x, y).").body();
  bwd.head = Q("q(x, y) :- a(x, y).").body();
  EXPECT_TRUE(IsWeaklyAcyclic({fwd, bwd}));
}

TEST(Chase, TgdToString) {
  Tgd tgd;
  tgd.body = Q("q(x) :- p(x).").body();
  tgd.head = Q("q(x) :- r(x, y).").body();
  tgd.name = "demo";
  EXPECT_EQ(tgd.ToString(), "[demo] p(x) -> r(x, y)");
}

}  // namespace
}  // namespace pdms
