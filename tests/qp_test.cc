// Unit tests for the vectorized query engine (src/pdms/qp/): columnar
// storage round-trips, incremental statistics, scan-filter pushdown, the
// cost-based planner's shapes, deterministic execution, and physical-plan
// caching with statistics-fingerprint invalidation
// (docs/query_planning.md).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pdms/eval/evaluator.h"
#include "pdms/lang/parser.h"
#include "pdms/obs/metrics.h"
#include "pdms/qp/column_store.h"
#include "pdms/qp/engine.h"
#include "pdms/qp/planner.h"
#include "pdms/qp/vectorized.h"

namespace pdms {
namespace qp {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto r = ParseRuleText(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

Database MakeEdgeDb() {
  Database db;
  db.Insert("edge", {Value::Int(1), Value::Int(2)});
  db.Insert("edge", {Value::Int(2), Value::Int(3)});
  db.Insert("edge", {Value::Int(3), Value::Int(4)});
  db.Insert("edge", {Value::Int(2), Value::Int(5)});
  return db;
}

// --- Columnar storage ---

TEST(StringDict, InternsInFirstUseOrderAndFindsWithoutInterning) {
  StringDict dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("a"), 0u);  // stable
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Find("b").value(), 1u);
  EXPECT_FALSE(dict.Find("never").has_value());
  EXPECT_EQ(dict.At(0), "a");
}

TEST(ColumnStore, RowColumnarRowRoundTripPreservesEverything) {
  Relation rel("r", 3);
  rel.Insert({Value::Int(7), Value::String("x"), Value::Null(3)});
  rel.Insert({Value::Int(-2), Value::String("y"), Value::Int(0)});
  rel.Insert({Value::Null(1), Value::String("x"), Value::String("z")});

  ColumnarCatalog catalog;
  const ColumnarRelation* col = catalog.Ensure(rel);
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col->arity, 3u);
  EXPECT_EQ(col->rows, 3u);

  Relation back = ToRowRelation("r", *col, *catalog.dict());
  ASSERT_EQ(back.size(), rel.size());
  // Row order is preserved exactly, not just as a set.
  EXPECT_EQ(back.tuples(), rel.tuples());
}

TEST(ColumnStore, CodesAgreeWithValueEquality) {
  ColumnarCatalog catalog;
  Code a = catalog.Encode(Value::String("alpha"));
  Code b = catalog.Encode(Value::String("beta"));
  Code a2 = catalog.Encode(Value::String("alpha"));
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_NE(catalog.Encode(Value::Int(0)), catalog.Encode(Value::Null(0)));
  EXPECT_EQ(catalog.Decode(a), Value::String("alpha"));
  // EncodeExisting never interns: unseen strings encode to nothing.
  EXPECT_FALSE(catalog.EncodeExisting(Value::String("unseen")).has_value());
  EXPECT_TRUE(catalog.EncodeExisting(Value::String("alpha")).has_value());
}

TEST(ColumnStore, StatsTrackRowsAndPerColumnDistincts) {
  Database db = MakeEdgeDb();
  ColumnarCatalog catalog;
  catalog.Ensure(*db.Find("edge"));
  const TableStats* stats = catalog.stats("edge");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->rows, 4u);
  ASSERT_EQ(stats->distinct.size(), 2u);
  EXPECT_EQ(stats->distinct[0], 3u);  // {1, 2, 3}
  EXPECT_EQ(stats->distinct[1], 4u);  // {2, 3, 4, 5}
  EXPECT_DOUBLE_EQ(stats->SelectEq(0), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats->SelectEq(1), 1.0);
}

TEST(ColumnStore, AppendOnlyInsertConvertsIncrementally) {
  Database db = MakeEdgeDb();
  obs::MetricsRegistry metrics;
  ColumnarCatalog catalog;
  catalog.Ensure(*db.Find("edge"), &metrics);
  EXPECT_EQ(metrics.counter("qp.stats_rows_appended"), 4u);
  const uint64_t rebuilds = metrics.counter("qp.stats_rebuilds");

  db.Insert("edge", {Value::Int(5), Value::Int(6)});
  catalog.Ensure(*db.Find("edge"), &metrics);
  // Only the new suffix converted; no rebuild.
  EXPECT_EQ(metrics.counter("qp.stats_rows_appended"), 5u);
  EXPECT_EQ(metrics.counter("qp.stats_rebuilds"), rebuilds);
  EXPECT_EQ(catalog.stats("edge")->rows, 5u);
  EXPECT_EQ(catalog.stats("edge")->distinct[0], 4u);

  // A destructive mutation (canonical sort) forces a full rebuild.
  db.FindMutable("edge")->SortCanonical();
  catalog.Ensure(*db.Find("edge"), &metrics);
  EXPECT_EQ(metrics.counter("qp.stats_rebuilds"), rebuilds + 1);
  EXPECT_EQ(catalog.stats("edge")->rows, 5u);
}

TEST(ColumnStore, StatsFingerprintMovesWithTheData) {
  Database db = MakeEdgeDb();
  ColumnarCatalog catalog;
  catalog.Ensure(*db.Find("edge"));
  const uint64_t before = catalog.StatsFingerprint({"edge"});
  db.Insert("edge", {Value::Int(9), Value::Int(9)});
  catalog.Ensure(*db.Find("edge"));
  EXPECT_NE(catalog.StatsFingerprint({"edge"}), before);
  // Unensured relations contribute a sentinel, not a crash.
  (void)catalog.StatsFingerprint({"missing"});
}

TEST(ColumnStore, JoinTableCacheDropsOnRowChange) {
  Database db = MakeEdgeDb();
  ColumnarCatalog catalog;
  const ColumnarRelation* data = catalog.Ensure(*db.Find("edge"));
  PlannedScan scan;
  scan.relation = "edge";
  scan.arity = 2;
  scan.signature = "k:0";
  JoinTable table = BuildJoinTable(scan, {0}, *data, catalog);
  catalog.StoreJoinTable("edge", scan.signature, std::move(table));
  EXPECT_NE(catalog.FindJoinTable("edge", scan.signature), nullptr);
  EXPECT_EQ(catalog.FindJoinTable("edge", "k:1"), nullptr);

  db.Insert("edge", {Value::Int(8), Value::Int(8)});
  catalog.Ensure(*db.Find("edge"));
  EXPECT_EQ(catalog.FindJoinTable("edge", scan.signature), nullptr);
}

// --- Scan filters ---

TEST(ScanFilter, ConstantAndDuplicateEqualityPushdown) {
  Database db;
  db.Insert("p", {Value::Int(1), Value::Int(1)});
  db.Insert("p", {Value::Int(1), Value::Int(2)});
  db.Insert("p", {Value::Int(2), Value::Int(2)});
  ColumnarCatalog catalog;
  const ColumnarRelation* data = catalog.Ensure(*db.Find("p"));

  PlannedScan const_scan;
  const_scan.relation = "p";
  const_scan.arity = 2;
  const_scan.const_eq = {{0, Value::Int(1)}};
  EXPECT_EQ(RunScanFilter(const_scan, *data, catalog),
            (std::vector<uint32_t>{0, 1}));

  PlannedScan dup_scan;
  dup_scan.relation = "p";
  dup_scan.arity = 2;
  dup_scan.dup_eq = {{1, 0}};  // p(x, x)
  EXPECT_EQ(RunScanFilter(dup_scan, *data, catalog),
            (std::vector<uint32_t>{0, 2}));

  // A string constant the data never mentions can match nothing.
  PlannedScan unseen;
  unseen.relation = "p";
  unseen.arity = 2;
  unseen.const_eq = {{0, Value::String("ghost")}};
  EXPECT_TRUE(RunScanFilter(unseen, *data, catalog).empty());
}

// --- Planner shapes ---

TEST(Planner, ChainJoinStartsFromTheSmallerRelationAndKeysCorrectly) {
  Database db = MakeEdgeDb();
  // small(y) has 1 row; edge has 4. The planner must scan `small` first
  // and hash-join edge on the shared variable.
  db.Insert("small", {Value::Int(2)});
  ColumnarCatalog catalog;
  catalog.Ensure(*db.Find("edge"));
  catalog.Ensure(*db.Find("small"));

  auto plan = PlanDisjunct(Q("q(y, z) :- edge(y, z), small(y)."), db, catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->delegate_legacy);
  ASSERT_EQ(plan->steps.size(), 2u);
  EXPECT_EQ(plan->steps[0].scan.relation, "small");
  EXPECT_EQ(plan->steps[1].scan.relation, "edge");
  ASSERT_EQ(plan->steps[1].key_cols.size(), 1u);
  EXPECT_EQ(plan->steps[1].key_cols[0], 0u);  // edge column 0 joins y
}

TEST(Planner, ConstantsBecomePushedFiltersAndShrinkEstimates) {
  Database db = MakeEdgeDb();
  ColumnarCatalog catalog;
  catalog.Ensure(*db.Find("edge"));
  auto plan = PlanDisjunct(Q("q(y) :- edge(2, y)."), db, catalog);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 1u);
  ASSERT_EQ(plan->steps[0].scan.const_eq.size(), 1u);
  EXPECT_EQ(plan->steps[0].scan.const_eq[0].first, 0u);
  EXPECT_LT(plan->steps[0].scan.est_rows, 4.0);
}

TEST(Planner, EmptyBodyDelegatesToLegacyAndUnsafeIsRejected) {
  Database db;
  ColumnarCatalog catalog;
  ConjunctiveQuery ground(Atom("q", {Term::Constant(Value::Int(1))}), {});
  auto empty = PlanDisjunct(ground, db, catalog);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_TRUE(empty->delegate_legacy);
  EXPECT_FALSE(PlanDisjunct(Q("q(w) :- edge(x, y)."), db, catalog).ok());
}

TEST(Planner, MissingRelationEstimatesToZeroRows) {
  Database db = MakeEdgeDb();
  ColumnarCatalog catalog;
  catalog.Ensure(*db.Find("edge"));
  auto plan = PlanDisjunct(Q("q(x) :- nothere(x, y)."), db, catalog);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->steps[0].scan.est_rows, 0.0);
}

// --- Execution vs the legacy evaluator ---

Relation Sorted(Relation rel) {
  rel.SortCanonical();
  return rel;
}

void ExpectSameAnswers(const ConjunctiveQuery& cq, const Database& db) {
  ColumnarCatalog catalog;
  for (const Atom& a : cq.body()) {
    const Relation* rel = db.Find(a.predicate());
    if (rel != nullptr) catalog.Ensure(*rel);
  }
  auto plan = PlanDisjunct(cq, db, catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto got = ExecuteDisjunct(*plan, db, catalog, nullptr, nullptr);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = EvaluateCQ(cq, db);
  ASSERT_TRUE(want.ok());

  Relation got_rel(cq.head().predicate(), cq.head().arity());
  for (const Tuple& t : *got) got_rel.Insert(t);
  EXPECT_EQ(Sorted(std::move(got_rel)).tuples(), Sorted(*want).tuples());
}

TEST(Vectorized, MatchesLegacyOnRepresentativeShapes) {
  Database db = MakeEdgeDb();
  db.Insert("label", {Value::Int(2), Value::String("mid")});
  db.Insert("label", {Value::Int(3), Value::String("late")});
  ExpectSameAnswers(Q("q(x, y) :- edge(x, y)."), db);
  ExpectSameAnswers(Q("q(x, z) :- edge(x, y), edge(y, z)."), db);
  ExpectSameAnswers(Q("q(y) :- edge(2, y)."), db);
  ExpectSameAnswers(Q("q(x, n) :- edge(x, y), label(y, n)."), db);
  ExpectSameAnswers(Q("q(x, y) :- edge(x, y), x < y."), db);
  ExpectSameAnswers(Q("q(x, y) :- edge(x, y), y > 3."), db);
  ExpectSameAnswers(Q("q(x, w) :- edge(x, y), edge(y, z), edge(z, w)."), db);
  ExpectSameAnswers(Q("q(x, \"tag\") :- edge(x, 2)."), db);
  // Cross product (no shared variables).
  ExpectSameAnswers(Q("q(a, b) :- edge(a, 2), label(b, \"mid\")."), db);
}

TEST(Vectorized, ExecutionIsDeterministicAcrossRepeats) {
  Database db = MakeEdgeDb();
  ConjunctiveQuery cq = Q("q(x, z) :- edge(x, y), edge(y, z).");
  ColumnarCatalog catalog;
  catalog.Ensure(*db.Find("edge"));
  auto plan = PlanDisjunct(cq, db, catalog);
  ASSERT_TRUE(plan.ok());
  auto first = ExecuteDisjunct(*plan, db, catalog, nullptr, nullptr);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    auto again = ExecuteDisjunct(*plan, db, catalog, nullptr, nullptr);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *first);  // identical order, not just set-equal
  }
}

// --- The engine: gating, caching, explain ---

TEST(Engine, DegradedEvaluationMatchesLegacyAnswersAndSkips) {
  Database db = MakeEdgeDb();
  db.Insert("blocked", {Value::Int(1)});
  UnionQuery uq({Q("q(x) :- edge(x, 2)."), Q("q(x) :- blocked(x)."),
                 Q("q(x) :- edge(x, 3).")});
  StoredGate gate = [](const std::string& relation) {
    return relation == "blocked"
               ? Status::Unavailable("gated off")
               : Status::Ok();
  };
  Engine engine;
  auto got = engine.EvaluateUnionDegraded(uq, db, gate);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = EvaluateUnionDegraded(uq, db, gate);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->disjuncts_skipped, want->disjuncts_skipped);
  EXPECT_EQ(got->unavailable_relations, want->unavailable_relations);
  EXPECT_EQ(got->answers.tuples(), Sorted(want->answers).tuples());
}

TEST(Engine, NonUnavailableGateErrorPropagates) {
  Database db = MakeEdgeDb();
  UnionQuery uq({Q("q(x) :- edge(x, 2).")});
  StoredGate gate = [](const std::string&) {
    return Status::Internal("broken gate");
  };
  Engine engine;
  EXPECT_FALSE(engine.EvaluateUnionDegraded(uq, db, gate).ok());
}

TEST(Engine, PhysicalPlanSlotReusesUntilStatsMove) {
  Database db = MakeEdgeDb();
  UnionQuery uq({Q("q(x, z) :- edge(x, y), edge(y, z).")});
  Engine engine;
  PhysicalPlanSlot slot;
  obs::MetricsRegistry metrics;
  auto first =
      engine.EvaluateUnionDegraded(uq, db, nullptr, nullptr, &metrics,
                                   nullptr, &slot);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(metrics.counter("qp.plans"), 1u);

  auto second =
      engine.EvaluateUnionDegraded(uq, db, nullptr, nullptr, &metrics,
                                   nullptr, &slot);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(metrics.counter("qp.plans"), 1u);
  EXPECT_EQ(metrics.counter("qp.plan_reused"), 1u);
  EXPECT_EQ(second->answers.tuples(), first->answers.tuples());

  // New data moves the statistics fingerprint: the slot is replanned.
  db.Insert("edge", {Value::Int(4), Value::Int(6)});
  auto third =
      engine.EvaluateUnionDegraded(uq, db, nullptr, nullptr, &metrics,
                                   nullptr, &slot);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(metrics.counter("qp.plans"), 2u);
  EXPECT_GT(third->answers.size(), first->answers.size());
}

TEST(Engine, ExplainRendersEstimatedAndActualCardinalities) {
  Database db = MakeEdgeDb();
  UnionQuery uq({Q("q(x, z) :- edge(x, y), edge(y, z).")});
  Engine engine;
  auto text = engine.Explain(uq, db);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("disjunct 0"), std::string::npos) << *text;
  EXPECT_NE(text->find("scan edge"), std::string::npos) << *text;
  EXPECT_NE(text->find("hash-join edge"), std::string::npos) << *text;
  EXPECT_NE(text->find("est="), std::string::npos) << *text;
  EXPECT_NE(text->find("actual="), std::string::npos) << *text;
  EXPECT_NE(text->find("project"), std::string::npos) << *text;
}

}  // namespace
}  // namespace qp
}  // namespace pdms
