// End-to-end tests for graceful query degradation: peers go down (in the
// catalog or via the fault injector), queries still answer from what is
// reachable, and the degradation report says exactly what was lost.

#include <gtest/gtest.h>

#include <algorithm>

#include "pdms/core/pdms.h"

namespace pdms {
namespace {

// Two source peers feed A:P; full answers are {1, 2, 3} with {1, 2}
// served by B1 (stored s1) and {3} by B2 (stored s2).
Pdms MakeTwoSourcePdms() {
  Pdms pdms;
  Status s = pdms.LoadProgram(R"(
    peer A { relation P(x); }
    peer B1 { relation Q(x); }
    peer B2 { relation R(x); }
    mapping A:P(x) :- B1:Q(x).
    mapping A:P(x) :- B2:R(x).
    stored s1(x) <= B1:Q(x).
    stored s2(x) <= B2:R(x).
    fact s1(1).
    fact s1(2).
    fact s2(3).
  )");
  EXPECT_TRUE(s.ok()) << s.ToString();
  return pdms;
}

constexpr char kQuery[] = "q(x) :- A:P(x).";

// True if every tuple of `sub` also occurs in `super`.
bool IsSubset(const Relation& sub, const Relation& super) {
  return std::all_of(sub.tuples().begin(), sub.tuples().end(),
                     [&](const Tuple& t) { return super.Contains(t); });
}

TEST(Degradation, FullyAvailableIsComplete) {
  Pdms pdms = MakeTwoSourcePdms();
  auto result = pdms.AnswerWithReport(kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->answers.size(), 3u);
  EXPECT_EQ(result->degradation.completeness, Completeness::kComplete);
  EXPECT_FALSE(result->degradation.degraded());
  EXPECT_TRUE(result->degradation.excluded_peers.empty());
  EXPECT_TRUE(result->degradation.excluded_stored.empty());
  EXPECT_EQ(result->degradation.access.retries, 0u);
}

TEST(Degradation, CatalogDownPeerIsPrunedAndReported) {
  Pdms pdms = MakeTwoSourcePdms();
  ASSERT_TRUE(pdms.mutable_network()->SetPeerAvailable("B1", false).ok());

  // The reformulator never emits rewritings over B1's stored relation.
  auto ref = pdms.Reformulate(kQuery);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->rewriting.size(), 1u);
  ASSERT_EQ(ref->stats.excluded_stored.size(), 1u);
  EXPECT_EQ(ref->stats.excluded_stored[0], "s1");
  EXPECT_GE(ref->stats.pruned_unavailable, 1u);

  auto result = pdms.AnswerWithReport(kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->answers.size(), 1u);
  EXPECT_TRUE(result->answers.Contains({Value::Int(3)}));
  EXPECT_EQ(result->degradation.completeness, Completeness::kPartial);
  EXPECT_EQ(result->degradation.excluded_peers,
            std::vector<std::string>{"B1"});
  EXPECT_EQ(result->degradation.excluded_stored,
            std::vector<std::string>{"s1"});
  EXPECT_GE(result->degradation.branches_pruned, 1u);

  // Recovery restores the full answer.
  ASSERT_TRUE(pdms.mutable_network()->SetPeerAvailable("B1", true).ok());
  auto recovered = pdms.AnswerWithReport(kQuery);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->answers.size(), 3u);
  EXPECT_EQ(recovered->degradation.completeness, Completeness::kComplete);
}

TEST(Degradation, StoredRelationGranularity) {
  Pdms pdms = MakeTwoSourcePdms();
  ASSERT_TRUE(
      pdms.mutable_network()->SetStoredRelationAvailable("s2", false).ok());
  EXPECT_FALSE(pdms.network().IsStoredRelationAvailable("s2"));
  EXPECT_TRUE(pdms.network().IsStoredRelationAvailable("s1"));
  auto result = pdms.AnswerWithReport(kQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 2u);
  EXPECT_EQ(result->degradation.completeness, Completeness::kPartial);
  EXPECT_EQ(result->degradation.excluded_stored,
            std::vector<std::string>{"s2"});
  EXPECT_EQ(result->degradation.excluded_peers,
            std::vector<std::string>{"B2"});
}

// The headline fault-injection scenario (fixed seed): peer B1 is down at
// the transport level, peer B2 is flaky but reachable. The query must
// return kPartial with B1 excluded, populated retry/backoff counters, and
// a sound subset of the fully-available answers.
TEST(Degradation, InjectedPeerFailureDegradesGracefully) {
  Pdms full = MakeTwoSourcePdms();
  auto full_result = full.AnswerWithReport(kQuery);
  ASSERT_TRUE(full_result.ok());
  ASSERT_EQ(full_result->answers.size(), 3u);

  Pdms pdms = MakeTwoSourcePdms();
  pdms.set_fault_seed(42);
  FaultInjector* injector = pdms.mutable_fault_injector();
  injector->SetPeerDown("B1", true);
  FaultProfile flaky;
  flaky.failure_probability = 0.5;
  flaky.latency_ms = 1.0;
  injector->SetStoredProfile("s2", flaky);
  RetryPolicy policy;
  policy.max_attempts = 8;
  pdms.set_retry_policy(policy);

  auto result = pdms.AnswerWithReport(kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Partial, with B1 and its stored relation listed as excluded.
  EXPECT_EQ(result->degradation.completeness, Completeness::kPartial);
  EXPECT_EQ(result->degradation.excluded_peers,
            std::vector<std::string>{"B1"});
  EXPECT_EQ(result->degradation.excluded_stored,
            std::vector<std::string>{"s1"});
  EXPECT_EQ(result->degradation.rewritings_skipped, 1u);

  // Retry and backoff counters are populated (B1 exhausted its retries).
  EXPECT_GE(result->degradation.access.retries, policy.max_attempts - 1);
  EXPECT_GT(result->degradation.access.backoff_ms, 0.0);
  EXPECT_EQ(result->degradation.access.failures, 1u);

  // Soundness under degradation: a subset of the fully-available answers.
  EXPECT_TRUE(IsSubset(result->answers, full_result->answers));
  EXPECT_TRUE(result->answers.Contains({Value::Int(3)}));
  EXPECT_FALSE(result->answers.Contains({Value::Int(1)}));

  // Determinism: rerunning with the same seed reproduces the outcome.
  pdms.set_fault_seed(42);
  FaultInjector* again = pdms.mutable_fault_injector();
  again->SetPeerDown("B1", true);
  again->SetStoredProfile("s2", flaky);
  auto rerun = pdms.AnswerWithReport(kQuery);
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->answers.size(), result->answers.size());
  EXPECT_EQ(rerun->degradation.access.attempts,
            result->degradation.access.attempts);
  EXPECT_EQ(rerun->degradation.access.retries,
            result->degradation.access.retries);
}

TEST(Degradation, AllSourcesDownIsEmptyBecauseUnavailable) {
  Pdms pdms = MakeTwoSourcePdms();
  ASSERT_TRUE(pdms.mutable_network()->SetPeerAvailable("B1", false).ok());
  ASSERT_TRUE(pdms.mutable_network()->SetPeerAvailable("B2", false).ok());
  auto result = pdms.AnswerWithReport(kQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answers.empty());
  EXPECT_EQ(result->degradation.completeness,
            Completeness::kEmptyBecauseUnavailable);
  EXPECT_EQ(result->degradation.excluded_peers.size(), 2u);
  // Not to be confused with a genuinely empty answer on a healthy network.
  Pdms healthy;
  ASSERT_TRUE(healthy
                  .LoadProgram(R"(
                    peer A { relation P(x); }
                    stored s1(x) <= A:P(x).
                  )")
                  .ok());
  auto none = healthy.AnswerWithReport(kQuery);
  ASSERT_TRUE(none.ok()) << none.status().ToString();
  EXPECT_TRUE(none->answers.empty());
  EXPECT_EQ(none->degradation.completeness, Completeness::kComplete);
}

TEST(Degradation, FlakySourceRecoversViaRetriesAndStaysComplete) {
  Pdms pdms = MakeTwoSourcePdms();
  pdms.set_fault_seed(7);
  FaultProfile flaky;
  flaky.failure_probability = 0.6;
  pdms.mutable_fault_injector()->SetStoredProfile("s1", flaky);
  RetryPolicy policy;
  policy.max_attempts = 32;
  pdms.set_retry_policy(policy);
  auto result = pdms.AnswerWithReport(kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Retries absorbed the flakiness: all answers, still complete.
  EXPECT_EQ(result->answers.size(), 3u);
  EXPECT_EQ(result->degradation.completeness, Completeness::kComplete);
  EXPECT_EQ(result->degradation.access.failures, 0u);
}

TEST(Degradation, DeadlineExpiryCountsAsTimeout) {
  // s1 answers instantly; s2 is down with 10ms simulated latency per
  // attempt. A 35ms deadline admits two attempts at s2 (plus backoff) and
  // then expires, so s1's tuples survive and s2 is reported as timed out.
  Pdms pdms = MakeTwoSourcePdms();
  pdms.set_fault_seed(3);
  FaultProfile slow_down;
  slow_down.down = true;
  slow_down.latency_ms = 10.0;
  pdms.mutable_fault_injector()->SetStoredProfile("s2", slow_down);
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_ms = 10.0;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_ms = 10.0;
  policy.jitter_fraction = 0;
  pdms.set_retry_policy(policy);
  pdms.set_deadline(Deadline::AfterMillis(35));
  auto result = pdms.AnswerWithReport(kQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->degradation.access.timeouts, 1u);
  EXPECT_EQ(result->degradation.completeness, Completeness::kPartial);
  EXPECT_EQ(result->degradation.excluded_stored,
            std::vector<std::string>{"s2"});
  EXPECT_TRUE(result->answers.Contains({Value::Int(1)}));
  EXPECT_TRUE(result->answers.Contains({Value::Int(2)}));
  EXPECT_FALSE(result->answers.Contains({Value::Int(3)}));
}

TEST(Degradation, AnswerStreamingSkipsUnavailableSources) {
  Pdms pdms = MakeTwoSourcePdms();
  pdms.mutable_fault_injector()->SetPeerDown("B1", true);
  auto query = pdms.ParseQuery(kQuery);
  ASSERT_TRUE(query.ok());
  size_t delivered = 0;
  auto answers = pdms.AnswerStreaming(*query, [&](const Tuple&) {
    ++delivered;
    return true;
  });
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers->size(), 1u);
  EXPECT_EQ(delivered, 1u);
  EXPECT_TRUE(answers->Contains({Value::Int(3)}));
}

TEST(Degradation, PlainAnswerMatchesReportAnswers) {
  Pdms pdms = MakeTwoSourcePdms();
  ASSERT_TRUE(pdms.mutable_network()->SetPeerAvailable("B1", false).ok());
  auto plain = pdms.Answer(kQuery);
  auto report = pdms.AnswerWithReport(kQuery);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(plain->size(), report->answers.size());
}

}  // namespace
}  // namespace pdms
