// Property tests for the evaluation substrate: the backtracking join
// evaluator against a brute-force reference, and semi-naive datalog
// against naive fixpoint iteration.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pdms/eval/datalog.h"
#include "pdms/eval/evaluator.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace {

// Brute-force CQ evaluation: enumerate every assignment of body variables
// over the active domain and test all atoms/comparisons.
Relation BruteForceEvaluate(const ConjunctiveQuery& cq, const Database& db,
                            const std::vector<Value>& domain) {
  std::vector<std::string> vars;
  for (const Atom& a : cq.body()) CollectVariables(a, &vars);
  Relation out(cq.head().predicate(), cq.head().arity());

  std::vector<size_t> indices(vars.size(), 0);
  for (;;) {
    std::map<std::string, Value> binding;
    for (size_t i = 0; i < vars.size(); ++i) {
      binding[vars[i]] = domain[indices[i]];
    }
    bool ok = true;
    for (const Atom& a : cq.body()) {
      Tuple tuple;
      for (const Term& t : a.args()) {
        tuple.push_back(t.is_constant() ? t.value()
                                        : binding.at(t.var_name()));
      }
      const Relation* rel = db.Find(a.predicate());
      if (rel == nullptr || !rel->Contains(tuple)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const Comparison& c : cq.comparisons()) {
        Value lhs = c.lhs.is_constant() ? c.lhs.value()
                                        : binding.at(c.lhs.var_name());
        Value rhs = c.rhs.is_constant() ? c.rhs.value()
                                        : binding.at(c.rhs.var_name());
        if (!EvalCmp(c.op, lhs, rhs)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      Tuple head;
      for (const Term& t : cq.head().args()) {
        head.push_back(t.is_constant() ? t.value()
                                       : binding.at(t.var_name()));
      }
      out.Insert(std::move(head));
    }
    // Advance the odometer.
    size_t pos = 0;
    while (pos < indices.size() && ++indices[pos] == domain.size()) {
      indices[pos++] = 0;
    }
    if (pos == indices.size()) break;
    if (vars.empty()) break;
  }
  return out;
}

class EvaluatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvaluatorPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const int kDomain = 4;
  std::vector<Value> domain;
  for (int i = 0; i < kDomain; ++i) domain.push_back(Value::Int(i));

  for (int round = 0; round < 25; ++round) {
    // Random database over predicates r/2, s/2, t/1.
    Database db;
    size_t tuples = 3 + rng.Uniform(10);
    for (size_t i = 0; i < tuples; ++i) {
      switch (rng.Uniform(3)) {
        case 0:
          db.Insert("r", {Value::Int(rng.UniformInt(0, kDomain - 1)),
                          Value::Int(rng.UniformInt(0, kDomain - 1))});
          break;
        case 1:
          db.Insert("s", {Value::Int(rng.UniformInt(0, kDomain - 1)),
                          Value::Int(rng.UniformInt(0, kDomain - 1))});
          break;
        default:
          db.Insert("t", {Value::Int(rng.UniformInt(0, kDomain - 1))});
      }
    }
    // Random query: 1-3 atoms, optional comparison.
    std::vector<Atom> body;
    size_t atoms = 1 + rng.Uniform(3);
    auto var = [&]() {
      return Term::Var(std::string(1, 'a' + rng.Uniform(4)));
    };
    for (size_t i = 0; i < atoms; ++i) {
      switch (rng.Uniform(3)) {
        case 0:
          body.emplace_back("r", std::vector<Term>{var(), var()});
          break;
        case 1:
          body.emplace_back("s", std::vector<Term>{var(), var()});
          break;
        default:
          body.emplace_back("t", std::vector<Term>{var()});
      }
    }
    std::vector<Comparison> cmps;
    if (rng.Chance(0.5)) {
      std::vector<std::string> vars;
      for (const Atom& a : body) CollectVariables(a, &vars);
      Term lhs = Term::Var(vars[rng.Uniform(vars.size())]);
      Term rhs = rng.Chance(0.5)
                     ? Term::Int(rng.UniformInt(0, kDomain - 1))
                     : Term::Var(vars[rng.Uniform(vars.size())]);
      cmps.push_back(
          Comparison{lhs, static_cast<CmpOp>(rng.Uniform(6)), rhs});
    }
    std::vector<std::string> vars;
    for (const Atom& a : body) CollectVariables(a, &vars);
    std::vector<Term> head_args;
    for (const std::string& v : vars) {
      if (rng.Chance(0.5)) head_args.push_back(Term::Var(v));
    }
    ConjunctiveQuery query(Atom("q", head_args), body, cmps);

    auto fast = EvaluateCQ(query, db);
    ASSERT_TRUE(fast.ok()) << query.ToString();
    Relation slow = BruteForceEvaluate(query, db, domain);
    EXPECT_EQ(fast->size(), slow.size())
        << query.ToString() << "\n"
        << fast->ToString() << "\nvs\n"
        << slow.ToString();
    for (const Tuple& t : slow.tuples()) {
      EXPECT_TRUE(fast->Contains(t)) << query.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorPropertyTest,
                         ::testing::Range<uint64_t>(31, 41));

// Naive datalog: re-evaluate every rule over the full instance until no
// new tuples appear.
Result<Database> NaiveDatalog(const std::vector<Rule>& rules,
                              const Database& edb) {
  Database total = edb;
  for (const Rule& r : rules) {
    PDMS_RETURN_IF_ERROR(
        total.CreateRelation(r.head().predicate(), r.head().arity()));
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : rules) {
      std::vector<BindingMap> matches;
      PDMS_RETURN_IF_ERROR(ForEachMatch(rule.body(), rule.comparisons(),
                                        total,
                                        [&](const BindingMap& binding) {
                                          matches.push_back(binding);
                                          return true;
                                        }));
      for (const BindingMap& binding : matches) {
        Tuple tuple;
        for (const Term& t : rule.head().args()) {
          tuple.push_back(t.is_constant() ? t.value()
                                          : binding.at(t.var_name()));
        }
        if (total.Insert(rule.head().predicate(), std::move(tuple))) {
          changed = true;
        }
      }
    }
  }
  return total;
}

class DatalogPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DatalogPropertyTest, SemiNaiveMatchesNaive) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    Database db;
    size_t tuples = 4 + rng.Uniform(12);
    for (size_t i = 0; i < tuples; ++i) {
      db.Insert("e", {Value::Int(rng.UniformInt(0, 5)),
                      Value::Int(rng.UniformInt(0, 5))});
    }
    // A mix of linear and nonlinear recursion.
    std::vector<Rule> program = {
        Rule(Atom("p", {Term::Var("x"), Term::Var("y")}),
             {Atom("e", {Term::Var("x"), Term::Var("y")})}),
        Rule(Atom("p", {Term::Var("x"), Term::Var("z")}),
             {Atom("p", {Term::Var("x"), Term::Var("y")}),
              Atom("p", {Term::Var("y"), Term::Var("z")})}),
        Rule(Atom("q", {Term::Var("x")}),
             {Atom("p", {Term::Var("x"), Term::Var("x")})}),
    };
    auto fast = EvaluateDatalog(program, db);
    auto slow = NaiveDatalog(program, db);
    ASSERT_TRUE(fast.ok() && slow.ok());
    for (const char* rel : {"p", "q"}) {
      const Relation* f = fast->Find(rel);
      const Relation* s = slow->Find(rel);
      ASSERT_NE(f, nullptr);
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(f->size(), s->size()) << rel;
      for (const Tuple& t : s->tuples()) {
        EXPECT_TRUE(f->Contains(t)) << rel << " " << TupleToString(t);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatalogPropertyTest,
                         ::testing::Range<uint64_t>(51, 57));

}  // namespace
}  // namespace pdms
