// Unit tests for the utility substrate: Status/Result, strings, RNG.

#include <gtest/gtest.h>

#include "pdms/util/rng.h"
#include "pdms/util/status.h"
#include "pdms/util/strings.h"
#include "pdms/util/timer.h"

namespace pdms {
namespace {

TEST(Status, OkAndErrors) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad arity");
  EXPECT_EQ(err, Status::InvalidArgument("bad arity"));
  EXPECT_FALSE(err == Status::NotFound("bad arity"));
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> Chain(int x) {
  PDMS_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 8);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  Result<int> chained = Chain(4);
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(*chained, 9);
  EXPECT_FALSE(Chain(0).ok());
}

TEST(Strings, JoinSplitStrip) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(Strings, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(Strings, HashIsStable) {
  EXPECT_EQ(Fnv1aHash("abc"), Fnv1aHash("abc"));
  EXPECT_NE(Fnv1aHash("abc"), Fnv1aHash("abd"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = c.Uniform(10);
    EXPECT_LT(v, 10u);
    int64_t w = c.UniformInt(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
    double d = c.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(3);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.Uniform(4)];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(WallTimer, MeasuresElapsed) {
  WallTimer t;
  double first = t.ElapsedMillis();
  EXPECT_GE(first, 0.0);
  // Monotonic.
  EXPECT_GE(t.ElapsedMillis(), first);
  t.Reset();
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace pdms
