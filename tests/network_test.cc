// Tests for the PDMS catalog: validation of peers/descriptions and the
// Section 3 complexity classification.

#include <gtest/gtest.h>

#include "pdms/core/network.h"
#include "pdms/core/ppl_parser.h"

namespace pdms {
namespace {

PdmsNetwork MustParse(const std::string& text) {
  auto program = ParsePplProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program->network);
}

TEST(Network, DuplicatePeerRejected) {
  PdmsNetwork n;
  ASSERT_TRUE(n.AddPeer("A", {{"R", 2}}).ok());
  EXPECT_FALSE(n.AddPeer("A", {{"S", 1}}).ok());
  EXPECT_FALSE(n.AddPeer("B", {{"R", 2}, {"R", 3}}).ok());
}

TEST(Network, RelationLookup) {
  PdmsNetwork n;
  ASSERT_TRUE(n.AddPeer("A", {{"R", 2}}).ok());
  EXPECT_TRUE(n.IsPeerRelation("A:R"));
  EXPECT_FALSE(n.IsPeerRelation("A:S"));
  EXPECT_FALSE(n.IsStoredRelation("A:R"));
  auto arity = n.RelationArity("A:R");
  ASSERT_TRUE(arity.ok());
  EXPECT_EQ(*arity, 2u);
  EXPECT_FALSE(n.RelationArity("nope").ok());
}

TEST(Network, StorageValidation) {
  PdmsNetwork n = MustParse(R"(
    peer A { relation R(x, y); }
    stored s(x, y) <= A:R(x, y).
  )");
  EXPECT_TRUE(n.IsStoredRelation("s"));
  EXPECT_EQ(n.StoredRelationNames(), (std::vector<std::string>{"s"}));
  // Undeclared peer relation in the body.
  auto bad = ParsePplProgram(R"(
    peer A { relation R(x, y); }
    stored s(x) <= A:Missing(x).
  )");
  EXPECT_FALSE(bad.ok());
  // Arity mismatch.
  auto bad2 = ParsePplProgram(R"(
    peer A { relation R(x, y); }
    stored s(x) <= A:R(x).
  )");
  EXPECT_FALSE(bad2.ok());
  // Unsafe storage head.
  auto bad3 = ParsePplProgram(R"(
    peer A { relation R(x, y); }
    stored s(x, w) <= A:R(x, y).
  )");
  EXPECT_FALSE(bad3.ok());
  // Stored name colliding with a peer relation name is impossible by
  // qualification, but a second declaration with a different arity fails.
  auto bad4 = ParsePplProgram(R"(
    peer A { relation R(x, y); }
    stored s(x, y) <= A:R(x, y).
    stored s(x) <= A:R(x, x).
  )");
  EXPECT_FALSE(bad4.ok());
}

TEST(Network, MappingValidation) {
  auto bad = ParsePplProgram(R"(
    peer A { relation R(x); }
    mapping A:Missing(x) :- A:R(x).
  )");
  EXPECT_FALSE(bad.ok());
  auto bad2 = ParsePplProgram(R"(
    peer A { relation R(x); relation T(x, y); }
    mapping A:T(x, y) :- A:R(x).
  )");
  EXPECT_FALSE(bad2.ok());  // unsafe head variable y
}

TEST(Classification, AcyclicInclusionsArePolynomial) {
  PdmsNetwork n = MustParse(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) <= A:R(x, y).
    stored sb(x, y) <= B:S(x, y).
  )");
  Classification c = n.Classify();
  EXPECT_TRUE(c.inclusions_acyclic);
  EXPECT_FALSE(c.has_peer_equalities);
  EXPECT_EQ(c.complexity, QueryComplexity::kPolynomial);
  EXPECT_EQ(c.complexity_with_query_comparisons,
            QueryComplexity::kCoNpComplete);
  EXPECT_FALSE(c.Explain().empty());
}

TEST(Classification, CyclicInclusionsUndecidable) {
  PdmsNetwork n = MustParse(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) <= A:R(x, y).
    mapping (x, y) : A:R(x, y) <= B:S(x, y).
  )");
  Classification c = n.Classify();
  EXPECT_FALSE(c.inclusions_acyclic);
  EXPECT_EQ(c.complexity, QueryComplexity::kUndecidable);
}

TEST(Classification, ProjectionFreeEqualityStaysPolynomial) {
  // Theorem 3.2.1: replication-style equalities are fine.
  PdmsNetwork n = MustParse(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) = A:R(x, y).
  )");
  Classification c = n.Classify();
  EXPECT_TRUE(c.has_peer_equalities);
  EXPECT_TRUE(c.peer_equalities_projection_free);
  EXPECT_EQ(c.complexity, QueryComplexity::kPolynomial);
}

TEST(Classification, ProjectingPeerEqualityUndecidable) {
  PdmsNetwork n = MustParse(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x); }
    mapping (x) : B:S(x) = A:R(x, y).
  )");
  Classification c = n.Classify();
  EXPECT_FALSE(c.peer_equalities_projection_free);
  EXPECT_EQ(c.complexity, QueryComplexity::kUndecidable);
}

TEST(Classification, ProjectingEqualityStorageCoNp) {
  // Theorem 3.2.2: equality storage descriptions with projections.
  PdmsNetwork n = MustParse(R"(
    peer A { relation R(x, y); }
    stored s(x) = A:R(x, y).
  )");
  Classification c = n.Classify();
  EXPECT_TRUE(c.has_equality_storage);
  EXPECT_FALSE(c.storage_equalities_projection_free);
  EXPECT_EQ(c.complexity, QueryComplexity::kCoNpComplete);
}

TEST(Classification, DefinitionalHeadOnRhsBreaksIsolation) {
  // Theorem 3.2.1 condition (2): a definitional head feeding another
  // description's RHS.
  PdmsNetwork n = MustParse(R"(
    peer A { relation P(x); relation Q(x); }
    peer B { relation S(x); }
    mapping A:P(x) :- A:Q(x).
    mapping (x) : B:S(x) <= A:P(x).
  )");
  Classification c = n.Classify();
  EXPECT_FALSE(c.definitional_heads_isolated);
  EXPECT_EQ(c.complexity, QueryComplexity::kUndecidable);
}

TEST(Classification, ComparisonsInPeerMappingsCoNp) {
  // Theorem 3.3.2: comparisons in non-definitional peer mappings.
  PdmsNetwork n = MustParse(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) <= A:R(x, y), x < 5.
  )");
  Classification c = n.Classify();
  EXPECT_TRUE(c.comparisons_outside_safe_positions);
  EXPECT_EQ(c.complexity, QueryComplexity::kCoNpComplete);
}

TEST(Classification, ComparisonsInStorageAndDefinitionalAreSafe) {
  // Theorem 3.3.1: storage descriptions and definitional bodies may carry
  // comparisons without losing PTIME.
  PdmsNetwork n = MustParse(R"(
    peer A { relation R(x, y); relation Big(x, y); }
    mapping A:Big(x, y) :- A:R(x, y), x > 100.
    stored s(x, y) <= A:R(x, y), y < 10.
  )");
  Classification c = n.Classify();
  EXPECT_FALSE(c.comparisons_outside_safe_positions);
  EXPECT_EQ(c.complexity, QueryComplexity::kPolynomial);
}

TEST(Classification, RecursiveDefinitionalFlagged) {
  PdmsNetwork n = MustParse(R"(
    peer A { relation E(x, y); relation TC(x, y); }
    mapping A:TC(x, y) :- A:E(x, y).
    mapping A:TC(x, z) :- A:TC(x, y), A:E(y, z).
  )");
  Classification c = n.Classify();
  EXPECT_TRUE(c.definitional_recursive);
}

TEST(Network, ToStringRoundTrips) {
  PdmsNetwork n = MustParse(R"(
    peer A { relation R(x, y); }
    peer B { relation S(x, y); }
    mapping (x, y) : B:S(x, y) <= A:R(x, y).
    mapping B:S(x, x) :- A:R(x, x).
    stored sb(x, y) <= B:S(x, y).
  )");
  std::string text = n.ToString();
  auto reparsed = ParsePplProgram(text);
  ASSERT_TRUE(reparsed.ok()) << text << "\n"
                             << reparsed.status().ToString();
  EXPECT_EQ(reparsed->network.peers().size(), 2u);
  EXPECT_EQ(reparsed->network.peer_mappings().size(), 2u);
  EXPECT_EQ(reparsed->network.storage_descriptions().size(), 1u);
}

}  // namespace
}  // namespace pdms
