// Dedicated tests for the util status layer: every code has a name and a
// factory, Status round-trips through ToString, and Result<T> moves values
// and propagates errors.

#include "pdms/util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace pdms {
namespace {

TEST(StatusCode, EveryCodeHasAName) {
  const std::vector<std::pair<StatusCode, std::string>> expected = {
      {StatusCode::kOk, "OK"},
      {StatusCode::kInvalidArgument, "InvalidArgument"},
      {StatusCode::kNotFound, "NotFound"},
      {StatusCode::kFailedPrecondition, "FailedPrecondition"},
      {StatusCode::kUnsupported, "Unsupported"},
      {StatusCode::kResourceExhausted, "ResourceExhausted"},
      {StatusCode::kUnavailable, "Unavailable"},
      {StatusCode::kInternal, "Internal"},
  };
  for (const auto& [code, name] : expected) {
    EXPECT_EQ(StatusCodeName(code), name);
  }
}

TEST(Status, FactoriesSetCodeAndMessage) {
  const std::vector<std::pair<Status, StatusCode>> cases = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument},
      {Status::NotFound("m"), StatusCode::kNotFound},
      {Status::FailedPrecondition("m"), StatusCode::kFailedPrecondition},
      {Status::Unsupported("m"), StatusCode::kUnsupported},
      {Status::ResourceExhausted("m"), StatusCode::kResourceExhausted},
      {Status::Unavailable("m"), StatusCode::kUnavailable},
      {Status::Internal("m"), StatusCode::kInternal},
  };
  for (const auto& [status, code] : cases) {
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), code);
    EXPECT_EQ(status.message(), "m");
  }
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().code(), StatusCode::kOk);
}

TEST(Status, ToStringFormats) {
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_EQ(Status::Unavailable("peer H is down").ToString(),
            "Unavailable: peer H is down");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(Result, HoldsValueOrError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value(), 42);

  Result<int> err = Status::Unavailable("down");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kUnavailable);
}

TEST(Result, MovesValueOut) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Result<int> Doubled(int x) {
  PDMS_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

TEST(Result, MacrosPropagateErrors) {
  auto chained = [](int x) -> Result<int> {
    PDMS_ASSIGN_OR_RETURN(int doubled, Doubled(x));
    return doubled + 1;
  };
  auto ok = chained(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  auto err = chained(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pdms
