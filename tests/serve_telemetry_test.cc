// Tests for the live serving telemetry layer (docs/serving_telemetry.md):
// the rolling SLO window, wire-level trace propagation across real TCP
// hops (client -> server -> federated scan), the kStatsRequest snapshot,
// and the NDJSON access log. The cross-process trace test is the
// acceptance check for the version-2 protocol: one federated request
// must yield a single trace id whose span tree covers both server
// processes and exports as one Chrome trace.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "pdms/core/pdms.h"
#include "pdms/lang/canonical.h"
#include "pdms/obs/export.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/rolling.h"
#include "pdms/obs/trace.h"
#include "pdms/serve/access_log.h"
#include "pdms/serve/client.h"
#include "pdms/serve/server.h"
#include "pdms/serve/wire.h"
#include "pdms/util/check.h"

namespace pdms {
namespace serve {
namespace {

constexpr const char* kProgram = R"(
peer Hospital { relation Doctor(name, hospital); }
peer Clinic { relation Physician(name, clinic); }
stored hdoc(name, hospital) <= Hospital:Doctor(name, hospital).
mapping Clinic:Physician(n, c) :- Hospital:Doctor(n, c).
fact hdoc("alice", "county").
fact hdoc("bo", "mercy").
)";

constexpr const char* kQuery = "q(n, h) :- Hospital:Doctor(n, h).";

// A running server over the demo network (same shape as the overload
// test fixture, plus the telemetry sinks threaded through the options).
class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options) {
    Status loaded = loader_.LoadProgram(kProgram);
    PDMS_CHECK_MSG(loaded.ok(), loaded.ToString().c_str());
    options.port = 0;  // ephemeral
    server_ = std::make_unique<PplServer>(options, &metrics_);
    Status started = server_->Start(loader_.network(), loader_.database());
    PDMS_CHECK_MSG(started.ok(), started.ToString().c_str());
  }

  PplServer* server() { return server_.get(); }
  uint16_t port() const { return server_->port(); }
  obs::MetricsRegistry* metrics() { return &metrics_; }
  Pdms* loader() { return &loader_; }

  void Connect(Client* client, double io_timeout_ms = 10000) {
    Status status = client->Connect("127.0.0.1", port(), io_timeout_ms);
    PDMS_CHECK_MSG(status.ok(), status.ToString().c_str());
  }

 private:
  Pdms loader_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<PplServer> server_;
};

bool HasSpan(const obs::TraceContext& trace, const std::string& name) {
  for (const obs::Span& s : trace.spans()) {
    if (s.name == name) return true;
  }
  return false;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- Rolling SLO window (deterministic: the test owns the clock) ---

obs::RollingOptions SmallRolling() {
  obs::RollingOptions options;
  options.bucket_ms = 1000;
  options.buckets = 60;
  options.latency_bounds = {1, 10, 100};
  return options;
}

TEST(RollingStats, WindowAggregatesCountsRatesAndPercentiles) {
  obs::RollingStats rolling(SmallRolling());
  rolling.RecordAnswer(100, 5.0, /*cache_hit=*/true, /*verdict=*/0,
                       /*truncated=*/false);
  rolling.RecordAnswer(600, 50.0, /*cache_hit=*/false, /*verdict=*/1,
                       /*truncated=*/true);
  rolling.RecordShed(700, obs::RollingStats::Shed::kQueueFull);
  rolling.RecordShed(750, obs::RollingStats::Shed::kDeadline);
  rolling.RecordQueueDepth(800, 5);
  rolling.RecordQueueDepth(900, 2);

  obs::RollingStats::Snapshot snap = rolling.GetSnapshot(950);
  EXPECT_EQ(snap.answers, 2u);
  EXPECT_EQ(snap.sheds_queue_full, 1u);
  EXPECT_EQ(snap.sheds_deadline, 1u);
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.cache_misses, 1u);
  EXPECT_EQ(snap.truncated, 1u);
  EXPECT_EQ(snap.verdicts[0], 1u);
  EXPECT_EQ(snap.verdicts[1], 1u);
  EXPECT_EQ(snap.verdicts[2], 0u);
  EXPECT_DOUBLE_EQ(snap.shed_rate, 0.5);
  EXPECT_DOUBLE_EQ(snap.cache_hit_rate, 0.5);
  // The covered window floors at one bucket, so qps = 2 answers / 1s.
  EXPECT_DOUBLE_EQ(snap.window_ms, 1000.0);
  EXPECT_DOUBLE_EQ(snap.qps, 2.0);
  // Histogram estimates: 5ms lands under the 10ms bound; 50ms overflows
  // into the 100ms bound but is clamped by the exact window max.
  EXPECT_DOUBLE_EQ(snap.p50_ms, 10.0);
  EXPECT_DOUBLE_EQ(snap.p99_ms, 50.0);
  EXPECT_DOUBLE_EQ(snap.max_ms, 50.0);
  EXPECT_EQ(snap.queue_depth, 2u);
  EXPECT_EQ(snap.queue_depth_max, 5u);

  const std::string json = snap.ToJson();
  for (const char* key :
       {"\"window_ms\"", "\"answers\"", "\"qps\"", "\"shed_rate\"",
        "\"cache_hit_rate\"", "\"p50_ms\"", "\"p95_ms\"", "\"p99_ms\"",
        "\"verdicts\"", "\"queue_depth\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(RollingStats, CountsExpireOnceTheWindowRotatesPast) {
  obs::RollingStats rolling(SmallRolling());
  rolling.RecordAnswer(500, 1.0, false, 0, false);
  EXPECT_EQ(rolling.GetSnapshot(500).answers, 1u);
  // 61 buckets later the recording bucket is outside the live window.
  EXPECT_EQ(rolling.GetSnapshot(500 + 61 * 1000.0).answers, 0u);
  EXPECT_DOUBLE_EQ(rolling.GetSnapshot(500 + 61 * 1000.0).qps, 0.0);
}

TEST(RollingStats, RingSlotReuseDropsTheRotatedBucket) {
  obs::RollingStats rolling(SmallRolling());
  rolling.RecordAnswer(500, 1.0, false, 0, false);  // epoch 0
  // Exactly one full ring later the same slot is reused for epoch 60;
  // the old bucket's counts must not leak into the new window.
  rolling.RecordAnswer(60 * 1000.0 + 500, 2.0, true, 0, false);
  obs::RollingStats::Snapshot snap = rolling.GetSnapshot(60 * 1000.0 + 900);
  EXPECT_EQ(snap.answers, 1u);
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.cache_misses, 0u);
}

// --- Wire-level trace propagation ---

TEST(Telemetry, TracedQueryEchoesEnvelopeTraceIdWithServerSpans) {
  ServerFixture fixture((ServerOptions()));
  Client client;
  fixture.Connect(&client);

  wire::QueryFrame query;
  query.request_id = 1;
  query.query = kQuery;
  query.trace = wire::TraceEnvelope{"trace-abc", 7};
  ASSERT_TRUE(client.SendRaw(wire::EncodeQuery(query)).ok());
  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  // The server answers in the version of the request: traced in, traced
  // out.
  EXPECT_EQ(frame->version, wire::kVersionTraced);
  EXPECT_EQ(frame->flags, wire::kFlagTrace);
  auto answer = wire::DecodeAnswer(*frame);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_TRUE(answer->spans.has_value());
  EXPECT_EQ(answer->spans->trace_id, "trace-abc");
  bool has_serve = false;
  for (const obs::Span& s : answer->spans->spans) {
    if (s.name == "serve") has_serve = true;
    EXPECT_FALSE(s.open()) << s.name << " returned open";
  }
  EXPECT_TRUE(has_serve);
}

TEST(Telemetry, UntracedVersion1ClientRoundTripsUnchanged) {
  ServerFixture fixture((ServerOptions()));
  Client client;
  fixture.Connect(&client);

  wire::QueryFrame query;
  query.request_id = 1;
  query.query = kQuery;  // no envelope: encoder emits version 1
  ASSERT_TRUE(client.SendRaw(wire::EncodeQuery(query)).ok());
  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->version, wire::kVersion);
  EXPECT_EQ(frame->flags, 0u);
  auto answer = wire::DecodeAnswer(*frame);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_FALSE(answer->spans.has_value());
  EXPECT_EQ(answer->status_code, 0u);
  EXPECT_EQ(answer->tuples.size(), 2u);
}

TEST(Telemetry, FederatedRequestYieldsOneCrossProcessTrace) {
  // Server B owns the stored relation; server A serves queries but
  // re-fetches `hdoc` from B over a traced kScanRequest hop. One traced
  // client query must therefore produce a single trace id covering the
  // client rpc span, A's serve/remote_fetch/rpc_scan spans, and B's scan
  // span — the whole federated request as one tree.
  ServerFixture upstream((ServerOptions()));
  ServerOptions options;
  options.executor.remote_relations["hdoc"] =
      "127.0.0.1:" + std::to_string(upstream.port());
  ServerFixture fixture(options);

  Client client;
  fixture.Connect(&client);
  obs::TraceContext trace("federated-trace");
  auto reply = client.Query(kQuery, /*budget_ms=*/0, &trace);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_FALSE(reply->shed);
  EXPECT_EQ(reply->answer.tuples.size(), 2u);
  // The client grafts the server block into its own context; nothing is
  // left dangling on the reply.
  EXPECT_FALSE(reply->answer.spans.has_value());

  EXPECT_EQ(trace.trace_id(), "federated-trace");
  for (const char* name :
       {"rpc_query", "serve", "remote_fetch", "rpc_scan", "scan"}) {
    EXPECT_TRUE(HasSpan(trace, name)) << "missing span " << name;
  }
  // Every span is closed and every parent resolves inside this one
  // context (the grafts rewired the foreign ids).
  for (const obs::Span& s : trace.spans()) {
    EXPECT_FALSE(s.open()) << s.name;
    if (s.parent != obs::kNoSpan) {
      EXPECT_NE(trace.span(s.parent), nullptr) << s.name;
    }
  }

  // The whole tree exports as one Chrome trace.
  const std::string chrome = obs::ChromeTraceJson(trace);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  for (const char* name : {"serve", "remote_fetch", "scan"}) {
    EXPECT_NE(chrome.find(name), std::string::npos) << name;
  }
  const std::string path = testing::TempDir() + "/pdms_federated_trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(trace, path).ok());
  EXPECT_EQ(ReadWholeFile(path), chrome) << "file mismatch";
  std::remove(path.c_str());

  // Remote-scan health surfaced through the downstream server's stats.
  Client stats_client;
  fixture.Connect(&stats_client);
  auto stats = stats_client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("\"remotes\""), std::string::npos);
  EXPECT_NE(stats->find("127.0.0.1:"), std::string::npos);
}

TEST(Telemetry, TracedScanEchoesEnvelopeOnTheScanPath) {
  ServerFixture fixture((ServerOptions()));
  Client client;
  fixture.Connect(&client);
  obs::TraceContext trace("scan-trace");
  obs::SpanId root = trace.StartSpan("test_root");
  auto scan = client.ScanRelation("hdoc", &trace);
  trace.EndSpan(root);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->status.ok());
  EXPECT_EQ(scan->tuples.size(), 2u);
  EXPECT_TRUE(HasSpan(trace, "rpc_scan"));
  EXPECT_TRUE(HasSpan(trace, "scan"));  // grafted from the server
}

// --- Stats frame ---

TEST(Telemetry, StatsFrameReturnsRollingSloSnapshot) {
  obs::RollingStats rolling;
  ServerOptions options;
  options.executor.rolling = &rolling;
  ServerFixture fixture(options);
  Client client;
  fixture.Connect(&client);

  for (int i = 0; i < 3; ++i) {
    auto reply = client.Query(kQuery);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_FALSE(reply->shed);
  }

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const char* key :
       {"\"rolling\"", "\"answers\": 3", "\"qps\"", "\"shed_rate\"",
        "\"cache_hit_rate\"", "\"p50_ms\"", "\"p95_ms\"", "\"p99_ms\"",
        "\"admission\"", "\"queue_depth\"", "\"server\"",
        "\"connections\"", "\"metrics\""}) {
    EXPECT_NE(stats->find(key), std::string::npos)
        << key << " missing from " << *stats;
  }
  // Two of the three queries hit the shared plan cache.
  EXPECT_NE(stats->find("\"cache_hits\": 2"), std::string::npos) << *stats;
}

TEST(Telemetry, StatsFrameWithoutRollingSinkReportsNull) {
  ServerFixture fixture((ServerOptions()));
  Client client;
  fixture.Connect(&client);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("\"rolling\": null"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"server\""), std::string::npos);
}

// --- Access log ---

TEST(AccessLog, LineSchemaEscapingAndRotation) {
  const std::string path = testing::TempDir() + "/pdms_access_test.log";
  const std::string rotated = path + ".1";
  std::remove(path.c_str());
  std::remove(rotated.c_str());

  AccessLogOptions options;
  options.path = path;
  // Sized so the four ~230-byte lines force exactly one rotation (the
  // log keeps at most two files; a second rotation would discard the
  // first file's lines).
  options.rotate_bytes = 600;
  auto opened = AccessLog::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<AccessLog> log = std::move(*opened);

  AccessEntry entry;
  entry.ts_ms = 1234.5;
  entry.conn_id = 7;
  entry.request_id = 9;
  entry.query = "q(x) :- r(x, \"quoted\nvalue\").";
  entry.deadline_ms = 50;
  entry.queue_ms = 1.5;
  entry.exec_ms = 3.25;
  entry.total_ms = 4.75;
  entry.cache_hit = true;
  entry.verdict = 0;
  entry.trace_id = "t-1";
  for (int i = 0; i < 4; ++i) log->Append(entry);
  log->Flush();
  EXPECT_EQ(log->lines_written(), 4u);
  EXPECT_EQ(log->rotations(), 1u);

  // Every surviving line is one flat JSON object with the full schema,
  // and the embedded quote/newline are escaped (NDJSON: no raw newlines
  // inside a line).
  const std::string content = ReadWholeFile(path) + ReadWholeFile(rotated);
  std::stringstream lines(content);
  std::string line;
  size_t seen = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++seen;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    for (const char* key :
         {"\"ts_ms\"", "\"conn\": 7", "\"req\": 9", "\"query\"",
          "\"deadline_ms\": 50", "\"queue_ms\"", "\"exec_ms\"",
          "\"total_ms\"", "\"shed\": \"\"", "\"cache_hit\": true",
          "\"verdict\": 0", "\"trace_id\": \"t-1\""}) {
      EXPECT_NE(line.find(key), std::string::npos) << key << " in " << line;
    }
    EXPECT_NE(line.find("\\\"quoted\\nvalue\\\""), std::string::npos);
  }
  EXPECT_EQ(seen, 4u);
  std::remove(path.c_str());
  std::remove(rotated.c_str());
}

TEST(Telemetry, ServerWritesCanonicalAccessLogLines) {
  const std::string path = testing::TempDir() + "/pdms_server_access.log";
  std::remove(path.c_str());
  auto opened = AccessLog::Open({path});
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<AccessLog> log = std::move(*opened);

  obs::RollingStats rolling;
  ServerOptions options;
  options.executor.rolling = &rolling;
  options.executor.access_log = log.get();
  ServerFixture fixture(options);
  Client client;
  fixture.Connect(&client);

  auto first = client.Query(kQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = client.Query(kQuery);  // plan-cache hit
  ASSERT_TRUE(second.ok());
  client.Close();
  fixture.server()->Stop();
  log->Flush();
  EXPECT_EQ(log->lines_written(), 2u);

  // Answered lines carry the canonical query form (stable under variable
  // renaming), a completeness verdict, and the cache-hit bit.
  Result<ConjunctiveQuery> parsed = fixture.loader()->ParseQuery(kQuery);
  ASSERT_TRUE(parsed.ok());
  const std::string canonical = CanonicalQueryKey(*parsed);
  const std::string content = ReadWholeFile(path);
  std::stringstream lines(content);
  std::string line;
  std::vector<std::string> entries;
  while (std::getline(lines, line)) {
    if (!line.empty()) entries.push_back(line);
  }
  ASSERT_EQ(entries.size(), 2u);
  for (const std::string& l : entries) {
    EXPECT_NE(l.find("\"shed\": \"\""), std::string::npos) << l;
    EXPECT_NE(l.find("\"verdict\": 0"), std::string::npos) << l;
    EXPECT_NE(l.find(canonical.substr(0, canonical.size() - 1)),
              std::string::npos)
        << "canonical query " << canonical << " not in " << l;
  }
  EXPECT_NE(entries[0].find("\"cache_hit\": false"), std::string::npos);
  EXPECT_NE(entries[1].find("\"cache_hit\": true"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace pdms
