// Quickstart: build a three-peer PDMS in a few lines, pose a query at the
// mediating peer, inspect the reformulation, and evaluate it over the
// stored data.
//
//   company  <--GAV--  directory  <--LAV--  branch office sources
//
// Run: ./quickstart

#include <cstdio>

#include "pdms/core/pdms.h"

int main() {
  pdms::Pdms pdms;

  // The whole system is declared in PPL. Any peer can later extend it —
  // that is the point of a PDMS.
  pdms::Status status = pdms.LoadProgram(R"(
    // A company-wide peer exposing a people directory.
    peer Company {
      relation Person(name, role);
      relation Colleagues(a, b);
    }

    // A mediating directory peer.
    peer Dir {
      relation Employee(name, dept);
      relation Dept(dept, site);
    }

    // Two branch offices actually store data, described LAV-style: each
    // stores a subset of the join of the directory relations.
    peer North { relation Roster(name, dept, site); }
    peer South { relation Roster(name, dept, site); }
    mapping (name, dept, site) :
        North:Roster(name, dept, site)
        <= Dir:Employee(name, dept), Dir:Dept(dept, site).
    mapping (name, dept, site) :
        South:Roster(name, dept, site)
        <= Dir:Employee(name, dept), Dir:Dept(dept, site).

    // The company peer is defined GAV-style over the directory.
    mapping Company:Person(name, dept) :- Dir:Employee(name, dept).
    mapping Company:Colleagues(a, b) :-
        Dir:Employee(a, d), Dir:Employee(b, d).

    // Storage: each branch stores its roster.
    stored north_roster(n, d, s) <= North:Roster(n, d, s).
    stored south_roster(n, d, s) <= South:Roster(n, d, s).

    fact north_roster("ada", "db", "fremont").
    fact north_roster("grace", "db", "fremont").
    fact south_roster("alan", "ai", "salem").
  )");
  if (!status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }

  // Who works with whom? The query is posed over the Company peer, which
  // stores nothing itself; reformulation chains through the directory to
  // the branch rosters.
  const char* query =
      "q(a, b) :- Company:Colleagues(a, b), a != b.";
  auto reformulation = pdms.Reformulate(query);
  if (!reformulation.ok()) {
    std::fprintf(stderr, "reformulate: %s\n",
                 reformulation.status().ToString().c_str());
    return 1;
  }
  std::printf("query:\n  %s\n\n", query);
  std::printf("reformulation over stored relations:\n%s\n\n",
              reformulation->rewriting.ToString().c_str());
  std::printf("stats:\n%s\n", reformulation->stats.ToString().c_str());

  auto answers = pdms.Answer(query);
  if (!answers.ok()) {
    std::fprintf(stderr, "answer: %s\n",
                 answers.status().ToString().c_str());
    return 1;
  }
  std::printf("answers:\n%s\n", answers->ToString().c_str());

  // The Section 3 analysis of this network.
  std::printf("\ncomplexity classification:\n%s",
              pdms.Classify().Explain().c_str());
  return 0;
}
