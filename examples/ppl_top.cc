// ppl_top: a terminal ops console for ppl_serverd
// (docs/serving_telemetry.md).
//
// Polls the server's kStatsRequest frame and renders the rolling SLO
// window — qps, latency percentiles, shed rate, cache hit rate, queue
// depth, degradation verdicts — as live panels, like `top` for a PDMS.
//
// Usage:
//   ./ppl_top [HOST:PORT] [--interval MS] [--once] [--raw]
//
//   HOST:PORT      server to watch (default 127.0.0.1:7432)
//   --interval MS  refresh period (default 1000)
//   --once         print a single snapshot (no screen control) and exit
//   --raw          print the raw stats JSON instead of panels
//
// The parser below is deliberately minimal: it understands exactly the
// flat objects the stats frame emits (ExtractObject to scope a section,
// GetNumber for a field) — no general JSON dependency.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "pdms/serve/client.h"
#include "pdms/util/strings.h"

namespace {

// Returns the balanced `{...}` object following `"key": `, or empty.
std::string ExtractObject(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  at += needle.size();
  if (at >= json.size() || json[at] != '{') return "";
  int depth = 0;
  bool in_string = false;
  for (size_t i = at; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++depth;
    else if (c == '}' && --depth == 0) return json.substr(at, i - at + 1);
  }
  return "";
}

// Numeric field lookup inside one (non-nested scan of an) object.
double GetNumber(const std::string& object, const std::string& key,
                 double fallback = 0) {
  const std::string needle = "\"" + key + "\": ";
  size_t at = object.find(needle);
  if (at == std::string::npos) return fallback;
  return std::atof(object.c_str() + at + needle.size());
}

// `[a, b, c]` after `"key": ` -> the i-th number.
double GetArrayNumber(const std::string& object, const std::string& key,
                      size_t index) {
  const std::string needle = "\"" + key + "\": [";
  size_t at = object.find(needle);
  if (at == std::string::npos) return 0;
  const char* p = object.c_str() + at + needle.size();
  for (size_t i = 0; i < index; ++i) {
    p = std::strchr(p, ',');
    if (p == nullptr) return 0;
    ++p;
  }
  return std::atof(p);
}

std::string Bar(double fraction, int width) {
  if (fraction < 0) fraction = 0;
  if (fraction > 1) fraction = 1;
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string out = "[";
  for (int i = 0; i < width; ++i) out += i < filled ? '#' : ' ';
  out += "]";
  return out;
}

void RenderPanels(const std::string& json, const std::string& target) {
  const std::string rolling = ExtractObject(json, "rolling");
  const std::string admission = ExtractObject(json, "admission");
  const std::string server = ExtractObject(json, "server");
  const std::string remotes = ExtractObject(json, "remotes");

  std::printf("ppl_top — %s\n\n", target.c_str());
  if (rolling.empty()) {
    std::printf("  (server reports no rolling stats)\n");
    return;
  }
  const double window_s = GetNumber(rolling, "window_ms") / 1000.0;
  const double shed_rate = GetNumber(rolling, "shed_rate");
  const double hit_rate = GetNumber(rolling, "cache_hit_rate");
  std::printf("  traffic   %8.1f qps over %.0fs   answers %.0f   "
              "truncated %.0f\n",
              GetNumber(rolling, "qps"), window_s,
              GetNumber(rolling, "answers"),
              GetNumber(rolling, "truncated"));
  std::printf("  latency   p50 %8.2f ms   p95 %8.2f ms   p99 %8.2f ms   "
              "max %8.2f ms\n",
              GetNumber(rolling, "p50_ms"), GetNumber(rolling, "p95_ms"),
              GetNumber(rolling, "p99_ms"), GetNumber(rolling, "max_ms"));
  std::printf("  shed      %s %5.1f%%   queue_full %.0f   deadline %.0f\n",
              Bar(shed_rate, 20).c_str(), 100 * shed_rate,
              GetNumber(rolling, "sheds_queue_full"),
              GetNumber(rolling, "sheds_deadline"));
  std::printf("  cache     %s %5.1f%%   hits %.0f   misses %.0f\n",
              Bar(hit_rate, 20).c_str(), 100 * hit_rate,
              GetNumber(rolling, "cache_hits"),
              GetNumber(rolling, "cache_misses"));
  std::printf("  verdicts  complete %.0f   partial %.0f   empty %.0f\n",
              GetArrayNumber(rolling, "verdicts", 0),
              GetArrayNumber(rolling, "verdicts", 1),
              GetArrayNumber(rolling, "verdicts", 2));
  std::printf("  queue     depth %.0f (window max %.0f)",
              GetNumber(rolling, "queue_depth"),
              GetNumber(rolling, "queue_depth_max"));
  if (!admission.empty()) {
    std::printf("   ewma %.2f ms   cap %.0f   workers %.0f",
                GetNumber(admission, "ewma_service_ms"),
                GetNumber(admission, "max_queue"),
                GetNumber(admission, "workers"));
  }
  std::printf("\n");
  const std::string single_flight = ExtractObject(json, "single_flight");
  if (!single_flight.empty()) {
    std::printf("  coalesce  inflight %.0f   coalesced %.0f\n",
                GetNumber(single_flight, "inflight"),
                GetNumber(single_flight, "coalesced"));
  }
  if (!server.empty()) {
    std::printf("  server    connections %.0f   port %.0f\n",
                GetNumber(server, "connections"),
                GetNumber(server, "port"));
  }
  if (!remotes.empty() && remotes != "{}") {
    std::printf("  remotes   %s\n", remotes.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string target = "127.0.0.1:7432";
  double interval_ms = 1000;
  bool once = false;
  bool raw = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--interval") {
      interval_ms = std::atof(next());
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--raw") {
      raw = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [HOST:PORT] [--interval MS] [--once] "
                  "[--raw]\n",
                  argv[0]);
      return 0;
    } else {
      target = arg;
    }
  }
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "target '%s' is not HOST:PORT\n", target.c_str());
    return 1;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port in '%s'\n", target.c_str());
    return 1;
  }

  pdms::serve::Client client;
  pdms::Status status =
      client.Connect(host, static_cast<uint16_t>(port));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  while (true) {
    pdms::Result<std::string> stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    if (!once) std::printf("\x1b[H\x1b[2J");  // home + clear
    if (raw) {
      std::printf("%s\n", stats->c_str());
    } else {
      RenderPanels(*stats, target);
    }
    std::fflush(stdout);
    if (once) break;
    timespec tick;
    tick.tv_sec = static_cast<time_t>(interval_ms / 1000);
    tick.tv_nsec = static_cast<long>(
        (interval_ms - 1000.0 * tick.tv_sec) * 1e6);
    nanosleep(&tick, nullptr);
  }
  return 0;
}
