// Classic two-tier data integration as a degenerate PDMS (Section 2.1.1):
// one mediated schema, a set of sources, and both mediation formalisms
// side by side —
//
//  * GAV: the mediated relations are defined as views over sources
//    (query answering = view unfolding);
//  * LAV: sources are described as views over the mediated schema
//    (query answering = answering queries using views / MiniCon).
//
// The example also runs the standalone MiniCon implementation on the
// Section 4.1 V1/V2/V3 example to show the MCD machinery directly.
//
// Run: ./data_integration

#include <cstdio>

#include "pdms/core/pdms.h"
#include "pdms/lang/parser.h"
#include "pdms/minicon/rewrite.h"

namespace {

pdms::ConjunctiveQuery Q(const char* text) {
  auto r = pdms::ParseRuleText(text);
  PDMS_CHECK(r.ok());
  return *r;
}

}  // namespace

int main() {
  // ------------------------------------------------------------------
  // Part 1: a mediated bibliography schema integrating three sources.
  // ------------------------------------------------------------------
  pdms::Pdms pdms;
  pdms::Status status = pdms.LoadProgram(R"(
    peer Med {
      relation Paper(id, title, year);
      relation Author(id, name);
      relation Cites(src, dst);
    }

    // GAV source: a curated dump directly defines mediated relations.
    peer Dump { relation Rec(id, title, year, name); }
    mapping Med:Paper(id, t, y) :- Dump:Rec(id, t, y, n).
    mapping Med:Author(id, n) :- Dump:Rec(id, t, y, n).
    stored dump(id, t, y, n) <= Dump:Rec(id, t, y, n).

    // LAV sources: each is *described* as a view over the mediated
    // schema — adding more sources never touches the mediated schema.
    peer Cite { relation Pairs(src, dst); }
    mapping (s, d) : Cite:Pairs(s, d) <= Med:Cites(s, d).
    stored cites(s, d) <= Cite:Pairs(s, d).

    peer Recent { relation Pub(id, name, year); }
    mapping (id, n, y) :
        Recent:Pub(id, n, y)
        <= Med:Paper(id, t, y), Med:Author(id, n), y >= 2000.
    stored recent(id, n, y) <= Recent:Pub(id, n, y).

    fact dump(1, "Mediators", 1992, "Wiederhold").
    fact dump(2, "MiniCon", 2001, "Pottinger").
    fact recent(2, "Halevy", 2001).
    fact recent(3, "Tatarinov", 2003).
    fact cites(3, 2).
    fact cites(2, 1).
  )");
  if (!status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }

  const char* queries[] = {
      // Served by GAV unfolding and by the LAV source simultaneously.
      "q(n) :- Med:Author(p, n).",
      // Needs a LAV join: who cites whom among known authors.
      "q(a, b) :- Med:Cites(x, y), Med:Author(x, a), Med:Author(y, b).",
      // The comparison-carrying LAV view guarantees y >= 2000.
      "q(id, n) :- Med:Paper(id, t, y), Med:Author(id, n), y >= 2000.",
  };
  for (const char* query : queries) {
    std::printf("--- %s\n", query);
    auto result = pdms.Reformulate(query);
    if (!result.ok()) {
      std::printf("reformulation error: %s\n",
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", result->rewriting.ToString().c_str());
    auto answers = pdms.Answer(query);
    if (answers.ok()) std::printf("%s\n\n", answers->ToString().c_str());
  }

  // ------------------------------------------------------------------
  // Part 2: the Section 4.1 MiniCon example, standalone.
  // ------------------------------------------------------------------
  std::printf("--- standalone MiniCon (Section 4.1 example)\n");
  pdms::ConjunctiveQuery query =
      Q("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y).");
  std::vector<pdms::ConjunctiveQuery> views = {
      Q("V1(a, b) :- e1(a, c), e2(c, b)."),
      Q("V2(d, e) :- e3(d, e), e4(e)."),
      Q("V3(u) :- e1(u, w)."),  // z projected away: no MCD, unusable
  };
  std::printf("query: %s\n", query.ToString().c_str());
  for (const auto& v : views) std::printf("view:  %s\n", v.ToString().c_str());
  auto rewriting = pdms::MiniConRewrite(query, views);
  if (!rewriting.ok()) {
    std::fprintf(stderr, "minicon: %s\n",
                 rewriting.status().ToString().c_str());
    return 1;
  }
  std::printf("rewriting (V3 correctly unused):\n%s\n",
              rewriting->ToString().c_str());
  return 0;
}
