// The paper's running example (Figure 1): emergency services at the
// Oregon-Washington border. Hospitals and fire districts publish stored
// relations; the Hospitals (H) and Fire Services (FS) peers mediate them;
// the 911 Dispatch Center (NDC) unites everything. Then an earthquake
// strikes: the Earthquake Command Center joins *ad hoc* — one replication
// mapping and its queries immediately reach every source in the system
// (Example 1.1's punchline).
//
// Run: ./emergency

#include <cstdio>

#include "pdms/core/pdms.h"
#include "pdms/gen/emergency.h"

namespace {

void Show(pdms::Pdms& pdms, const char* label, const char* query) {
  std::printf("--- %s\n    %s\n", label, query);
  auto result = pdms.Reformulate(query);
  if (!result.ok()) {
    std::printf("    reformulation error: %s\n",
                result.status().ToString().c_str());
    return;
  }
  std::printf("    %zu rewriting(s), %zu tree nodes, first at %.2f ms\n",
              result->rewriting.size(), result->stats.total_nodes(),
              result->stats.time_to_rewriting_ms.empty()
                  ? 0.0
                  : result->stats.time_to_rewriting_ms.front());
  auto answers = pdms.Answer(query);
  if (!answers.ok()) {
    std::printf("    evaluation error: %s\n",
                answers.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", answers->ToString().c_str());
}

}  // namespace

int main() {
  pdms::Pdms pdms;
  pdms::Status status = pdms.LoadProgram(pdms::gen::EmergencyBasePpl());
  if (!status.ok()) {
    std::fprintf(stderr, "base scenario: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("== Normal operations =====================================\n");
  Show(pdms, "Figure 2's query: crewmates with a shared skill",
       "Q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), "
       "FS:Skill(f2, s).");
  Show(pdms, "dispatch center: all known doctors (via the H mediator)",
       "q(p) :- NDC:SkilledPerson(p, \"Doctor\").");
  Show(pdms, "hospital mediator: patients and beds (FH via GAV, LH via LAV)",
       "q(pid, bed, st) :- H:Patient(pid, bed, st).");
  Show(pdms, "dispatch center: every vehicle it can task",
       "q(v, t, gps) :- NDC:Vehicle(v, t, c, gps, d).");

  std::printf("\n== The earthquake hits: ECC joins ad hoc =================\n");
  status = pdms.LoadProgram(pdms::gen::EmergencyEarthquakePpl());
  if (!status.ok()) {
    std::fprintf(stderr, "earthquake extension: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("(loaded %zu peers, %zu mappings, %zu storage descriptions)\n",
              pdms.network().peers().size(),
              pdms.network().peer_mappings().size(),
              pdms.network().storage_descriptions().size());

  Show(pdms,
       "command center sees all skilled personnel — hospital doctors, "
       "medical firefighters, and its own National Guard registrations",
       "q(p, s) :- ECC:SkilledPerson(p, s).");
  Show(pdms,
       "the replicated Vehicle table (cyclic equality mapping) answers "
       "from the dispatch center's mediated sources",
       "q(v, t) :- ECC:Vehicle(v, t, c, g, d).");
  Show(pdms, "treated victims registered directly at the command center",
       "q(pid, st) :- ECC:TreatedVictim(pid, b, st).");

  std::printf("\n== Section 3 classification ==============================\n");
  std::printf("%s", pdms.Classify().Explain().c_str());
  return 0;
}
