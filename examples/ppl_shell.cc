// A small interactive shell around the PDMS: load PPL programs, pose
// queries, and inspect reformulations and rule-goal-tree statistics.
//
// Usage:
//   ./ppl_shell [program.ppl ...]      # load files, then read commands
//
// Commands (also shown by `help`):
//   load <file>          load a PPL program file
//   <PPL statement>      peer/stored/mapping/fact statements are executed
//   ? q(x) :- ...        reformulate + evaluate a query
//   plan q(x) :- ...     show the rewritings only
//   tree q(x) :- ...     dump the rule-goal tree
//   schema               print the network specification
//   data                 print the stored relations
//   classify             Section 3 complexity analysis
//   down/up <name>       toggle peer or stored-relation availability
//   avail                list unavailable sources
//   quit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "pdms/core/pdms.h"
#include "pdms/core/reformulator.h"
#include "pdms/util/strings.h"

namespace {

pdms::Pdms g_pdms;

void LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::printf("cannot open %s\n", path.c_str());
    return;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  pdms::Status status = g_pdms.LoadProgram(buffer.str());
  std::printf("%s: %s\n", path.c_str(),
              status.ok() ? "loaded" : status.ToString().c_str());
}

void RunQuery(const std::string& text, bool evaluate) {
  if (!evaluate) {
    auto result = g_pdms.Reformulate(text);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%zu rewriting(s):\n%s\n", result->rewriting.size(),
                result->rewriting.ToString().c_str());
    std::printf("%s", result->stats.ToString().c_str());
    return;
  }
  auto result = g_pdms.AnswerWithReport(text);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result->stats.ToString().c_str());
  std::printf("answers:\n%s\n", result->answers.ToString().c_str());
  std::printf("%s", result->degradation.ToString().c_str());
}

// `down X` / `up X` toggle availability of a peer or a stored relation.
void SetAvailability(const std::string& name, bool available) {
  pdms::Status status = g_pdms.mutable_network()->SetPeerAvailable(
      name, available);
  if (!status.ok()) {
    status = g_pdms.mutable_network()->SetStoredRelationAvailable(
        name, available);
  }
  if (!status.ok()) {
    std::printf("error: no peer or stored relation named %s\n", name.c_str());
    return;
  }
  std::printf("%s is now %s\n", name.c_str(),
              available ? "available" : "unavailable");
}

void ShowAvailability() {
  const auto peers = g_pdms.network().UnavailablePeers();
  const auto stored = g_pdms.network().UnavailableStoredRelations();
  if (peers.empty() && stored.empty()) {
    std::printf("all peers and stored relations available\n");
    return;
  }
  for (const std::string& p : peers) {
    std::printf("peer %s: down\n", p.c_str());
  }
  for (const std::string& s : stored) {
    std::printf("stored %s: unreachable\n", s.c_str());
  }
}

void ShowTree(const std::string& text) {
  auto query = g_pdms.ParseQuery(text);
  if (!query.ok()) {
    std::printf("error: %s\n", query.status().ToString().c_str());
    return;
  }
  pdms::Reformulator reformulator(g_pdms.network(), g_pdms.options());
  auto tree = reformulator.BuildTree(*query);
  if (!tree.ok()) {
    std::printf("error: %s\n", tree.status().ToString().c_str());
    return;
  }
  std::printf("%s", tree->ToString().c_str());
  std::printf("%s", tree->stats.ToString().c_str());
}

void Help() {
  std::printf(
      "commands:\n"
      "  load <file>        load a PPL program file\n"
      "  peer/stored/mapping/fact ...   execute a PPL statement\n"
      "  ? <query>          reformulate and evaluate, e.g. ? q(x) :- P:R(x).\n"
      "  plan <query>       show the rewritings only\n"
      "  tree <query>       dump the rule-goal tree\n"
      "  schema             print the network\n"
      "  data               print the stored relations\n"
      "  classify           Section 3 complexity analysis\n"
      "  down <name>        mark a peer or stored relation unavailable\n"
      "  up <name>          mark it available again\n"
      "  avail              list unavailable peers/stored relations\n"
      "  help               this text\n"
      "  quit               exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) LoadFile(argv[i]);
  std::printf("Piazza-style PDMS shell. Type 'help' for commands.\n");
  std::string line;
  while (true) {
    std::printf("ppl> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(pdms::StripWhitespace(line));
    if (trimmed.empty()) continue;
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed == "help") {
      Help();
    } else if (trimmed == "schema") {
      std::printf("%s", g_pdms.network().ToString().c_str());
    } else if (trimmed == "data") {
      std::printf("%s", g_pdms.database().ToString().c_str());
    } else if (trimmed == "classify") {
      std::printf("%s", g_pdms.Classify().Explain().c_str());
    } else if (trimmed == "avail") {
      ShowAvailability();
    } else if (pdms::StartsWith(trimmed, "down ")) {
      SetAvailability(std::string(pdms::StripWhitespace(trimmed.substr(5))),
                      /*available=*/false);
    } else if (pdms::StartsWith(trimmed, "up ")) {
      SetAvailability(std::string(pdms::StripWhitespace(trimmed.substr(3))),
                      /*available=*/true);
    } else if (pdms::StartsWith(trimmed, "load ")) {
      LoadFile(std::string(pdms::StripWhitespace(trimmed.substr(5))));
    } else if (pdms::StartsWith(trimmed, "? ")) {
      RunQuery(trimmed.substr(2), /*evaluate=*/true);
    } else if (pdms::StartsWith(trimmed, "plan ")) {
      RunQuery(trimmed.substr(5), /*evaluate=*/false);
    } else if (pdms::StartsWith(trimmed, "tree ")) {
      ShowTree(trimmed.substr(5));
    } else {
      // Treat anything else as a PPL statement batch.
      pdms::Status status = g_pdms.LoadProgram(trimmed);
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
    }
  }
  return 0;
}
