// A small interactive shell around the PDMS: load PPL programs, pose
// queries, and inspect reformulations and rule-goal-tree statistics.
//
// Usage:
//   ./ppl_shell [program.ppl ...]      # load files, then read commands
//
// Commands (also shown by `help`):
//   load <file>          load a PPL program file
//   <PPL statement>      peer/stored/mapping/fact statements are executed
//   ? q(x) :- ...        reformulate + evaluate a query
//   plan q(x) :- ...     show the rewritings + physical plans (est/actual)
//   tree q(x) :- ...     dump the rule-goal tree
//   schema               print the network specification
//   data                 print the stored relations
//   classify             Section 3 complexity analysis
//   down/up <name>       toggle peer or stored-relation availability
//   avail                list unavailable sources
//   addpeer <p> <r>/<a>  declare a new peer with relations r of arity a
//   killpeer <name>      crash a peer (receives requests, never responds)
//   revive <name>        un-crash a peer
//   editmap <name> <rule>  replace a peer mapping's rule in place
//   health               per-peer failure-detector state + invalidations
//   partition <a> <b>    cut the simulated link between two nodes
//   heal [<a> <b>]       heal one partition, or all of them
//   trace                show the last query's message trace
//   trace save <file>    write the last query's spans as Chrome-trace JSON
//   explain              render the last query's span tree
//   metrics              print the accumulated metrics registry
//   serve <port>         serve the network/data over TCP (serving.md)
//   connect <host:port>  route queries to a ppl_serverd instance
//   quit
//
// Queries run on the simulated distributed runtime (src/pdms/sim/): each
// stored-relation scan is a request/response round-trip from the querying
// node — registered as "@client" — to the owning peer, and the
// degradation report includes the per-hop message counters. `partition`
// accepts peer names or @client (e.g. `partition @client H` cuts the
// querying node off from peer H).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pdms/cache/goal_memo.h"
#include "pdms/cache/plan_cache.h"
#include "pdms/core/pdms.h"
#include "pdms/core/reformulator.h"
#include "pdms/fault/peer_health.h"
#include "pdms/lang/parser.h"
#include "pdms/obs/export.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/serve/client.h"
#include "pdms/serve/server.h"
#include "pdms/sim/sim_pdms.h"
#include "pdms/util/strings.h"

namespace {

pdms::Pdms g_pdms;
std::vector<std::pair<std::string, std::string>> g_partitions;
std::string g_last_trace;
// Observability sinks shared by the local facade and the per-query
// simulated runtime: the trace always holds the last query's span tree
// (each query entry clears it), the registry accumulates across queries.
pdms::obs::TraceContext g_trace;
pdms::obs::MetricsRegistry g_metrics;
// Cross-query caches (docs/plan_cache.md), shared by the local facade and
// every per-query SimPdms. They outlive the per-query runtime because
// entries are keyed by the catalog's (revision, availability epoch) scope,
// which the shell's `down`/`up` and PPL statements advance; a repeated
// query at an unchanged catalog skips reformulation entirely.
pdms::cache::PlanCache g_plan_cache;
pdms::cache::GoalMemo g_goal_memo;
// Crashed peers (killpeer/revive) are a transport-level condition, mirrored
// into each per-query SimPdms like the partitions.
std::set<std::string> g_crashed;
// The failure detector shared across queries: suspicion learned by one
// query spares the next the timeout ladder (docs/fault_tolerance.md).
pdms::PeerHealthTracker g_health([] {
  pdms::PeerHealthConfig config;
  config.enabled = true;
  return config;
}());
// Networked serving (docs/serving.md): `serve <port>` exposes the shell's
// current network/data through ppl_serverd's wire protocol; `connect
// <host:port>` routes subsequent `?` queries to a remote server instead
// of the local simulated runtime.
std::unique_ptr<pdms::serve::PplServer> g_server;
pdms::serve::Client g_client;
double g_remote_budget_ms = 0;

void LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::printf("cannot open %s\n", path.c_str());
    return;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  pdms::Status status = g_pdms.LoadProgram(buffer.str());
  std::printf("%s: %s\n", path.c_str(),
              status.ok() ? "loaded" : status.ToString().c_str());
}

// A `?` query while `connect`ed goes over the wire: shed responses print
// the retry-after hint, degraded/truncated answers print their report
// fields, and the answer relation is rebuilt from the frame. The shell's
// trace context rides the version-2 frame, so `explain` / `trace save`
// show the server's grafted spans under the rpc_query span.
void RunRemoteQuery(const std::string& text) {
  g_trace.Clear();
  auto reply = g_client.Query(text, g_remote_budget_ms, &g_trace);
  if (!reply.ok()) {
    std::printf("error: %s\n", reply.status().ToString().c_str());
    if (reply.status().code() == pdms::StatusCode::kUnavailable) {
      g_client.Close();
      std::printf("disconnected\n");
    }
    return;
  }
  if (reply->shed) {
    std::printf("SHED (%s): %s; retry after %.1f ms (queue depth %u)\n",
                pdms::serve::wire::ShedReasonName(reply->shed_info.reason),
                reply->shed_info.message.c_str(),
                reply->shed_info.retry_after_ms,
                reply->shed_info.queue_depth);
    return;
  }
  const pdms::serve::wire::AnswerFrame& answer = reply->answer;
  pdms::Status status = answer.status();
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return;
  }
  std::printf("answers (server %.2f ms):\n%s\n", answer.server_ms,
              answer.ToRelation().ToString().c_str());
  std::printf("completeness: %s%s\n",
              pdms::CompletenessName(
                  static_cast<pdms::Completeness>(answer.completeness)),
              answer.truncated != 0 ? " (truncated by deadline)" : "");
  if (!answer.excluded_peers.empty() || !answer.excluded_stored.empty()) {
    std::printf("excluded:");
    for (const auto& p : answer.excluded_peers) {
      std::printf(" peer:%s", p.c_str());
    }
    for (const auto& s : answer.excluded_stored) {
      std::printf(" stored:%s", s.c_str());
    }
    std::printf("\n");
  }
}

void RunQuery(const std::string& text, bool evaluate) {
  if (evaluate && g_client.connected()) {
    RunRemoteQuery(text);
    return;
  }
  if (!evaluate) {
    auto result = g_pdms.Reformulate(text);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%zu rewriting(s):\n%s\n", result->rewriting.size(),
                result->rewriting.ToString().c_str());
    std::printf("%s", result->stats.ToString().c_str());
    // Physical plans (docs/query_planning.md): per disjunct, the scan
    // order, pushed-down filters, and join build sides the cost-based
    // planner chose, with estimated vs actual cardinalities from one
    // ungated local execution.
    auto physical =
        g_pdms.engine()->Explain(result->rewriting, g_pdms.database());
    if (physical.ok()) {
      std::printf("physical plan:\n%s", physical->c_str());
    } else {
      std::printf("physical plan unavailable: %s\n",
                  physical.status().ToString().c_str());
    }
    return;
  }
  // Queries execute over the simulated peer runtime: a fresh deterministic
  // event loop per query against the shell's current catalog and data,
  // with the shell's partitions applied.
  pdms::sim::SimPdms sim(g_pdms.network(), g_pdms.database());
  sim.set_trace(&g_trace);
  sim.set_metrics(&g_metrics);
  sim.set_plan_cache(&g_plan_cache);
  sim.set_goal_memo(&g_goal_memo);
  sim.set_health(&g_health);
  for (const auto& [a, b] : g_partitions) sim.Partition(a, b);
  for (const std::string& p : g_crashed) sim.SetPeerCrashed(p, true);
  auto result = sim.Answer(text);
  g_last_trace = sim.last_trace();
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result->stats.ToString().c_str());
  std::printf("answers:\n%s\n", result->answers.ToString().c_str());
  std::printf("%s", result->degradation.ToString().c_str());
}

void AddPartition(const std::string& args) {
  std::istringstream in(args);
  std::string a, b;
  if (!(in >> a >> b) || a == b) {
    std::printf("usage: partition <nodeA> <nodeB>  (peer names or %s)\n",
                pdms::sim::kCoordinatorName);
    return;
  }
  g_partitions.emplace_back(a, b);
  std::printf("partitioned %s | %s (%zu active)\n", a.c_str(), b.c_str(),
              g_partitions.size());
}

void HealPartitions(const std::string& args) {
  std::istringstream in(args);
  std::string a, b;
  if (in >> a >> b) {
    size_t before = g_partitions.size();
    std::erase_if(g_partitions, [&](const auto& p) {
      return (p.first == a && p.second == b) ||
             (p.first == b && p.second == a);
    });
    std::printf("%s\n", g_partitions.size() < before
                            ? "healed"
                            : "no such partition");
    return;
  }
  g_partitions.clear();
  std::printf("all partitions healed\n");
}

void ShowTrace() {
  if (g_last_trace.empty()) {
    std::printf("no trace yet; run a query first\n");
    return;
  }
  std::printf("%s", g_last_trace.c_str());
}

void ShowExplain() {
  if (g_trace.empty()) {
    std::printf("no spans yet; run a query first\n");
    return;
  }
  std::printf("%s", pdms::obs::RenderSpanTree(g_trace).c_str());
}

void ShowMetrics() {
  // Connected shells report the *server's* telemetry — the local registry
  // only sees local queries, which is the empty set while queries are
  // being forwarded over the wire (docs/serving_telemetry.md).
  if (g_client.connected()) {
    auto stats = g_client.Stats();
    if (stats.ok()) {
      std::printf("remote stats: %s\n", stats->c_str());
      return;
    }
    std::printf("remote stats unavailable (%s); local registry:\n",
                stats.status().ToString().c_str());
  }
  std::string out = g_metrics.ToString();
  if (out.empty()) {
    std::printf("no metrics yet; run a query first\n");
    return;
  }
  std::printf("%s", out.c_str());
}

void SaveTrace(const std::string& path) {
  if (g_trace.empty()) {
    std::printf("no spans yet; run a query first\n");
    return;
  }
  pdms::Status status = pdms::obs::WriteChromeTrace(g_trace, path);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return;
  }
  std::printf("wrote %zu span(s) to %s (load in chrome://tracing or Perfetto)\n",
              g_trace.spans().size(), path.c_str());
}

// `down X` / `up X` toggle availability of a peer or a stored relation.
void SetAvailability(const std::string& name, bool available) {
  pdms::Status status = g_pdms.mutable_network()->SetPeerAvailable(
      name, available);
  if (!status.ok()) {
    status = g_pdms.mutable_network()->SetStoredRelationAvailable(
        name, available);
  }
  if (!status.ok()) {
    std::printf("error: no peer or stored relation named %s\n", name.c_str());
    return;
  }
  std::printf("%s is now %s\n", name.c_str(),
              available ? "available" : "unavailable");
}

void ShowAvailability() {
  const auto peers = g_pdms.network().UnavailablePeers();
  const auto stored = g_pdms.network().UnavailableStoredRelations();
  if (peers.empty() && stored.empty()) {
    std::printf("all peers and stored relations available\n");
    return;
  }
  for (const std::string& p : peers) {
    std::printf("peer %s: down\n", p.c_str());
  }
  for (const std::string& s : stored) {
    std::printf("stored %s: unreachable\n", s.c_str());
  }
}

void ShowTree(const std::string& text) {
  auto query = g_pdms.ParseQuery(text);
  if (!query.ok()) {
    std::printf("error: %s\n", query.status().ToString().c_str());
    return;
  }
  pdms::Reformulator reformulator(g_pdms.network(), g_pdms.options());
  auto tree = reformulator.BuildTree(*query);
  if (!tree.ok()) {
    std::printf("error: %s\n", tree.status().ToString().c_str());
    return;
  }
  std::printf("%s", tree->ToString().c_str());
  std::printf("%s", tree->stats.ToString().c_str());
}

// `addpeer <peer> <relation>/<arity> ...`: declare a new peer. Mappings
// and storage for it are added with ordinary PPL statements afterwards.
void AddPeerCommand(const std::string& args) {
  std::istringstream in(args);
  std::string peer, spec;
  std::vector<std::pair<std::string, size_t>> relations;
  in >> peer;
  while (in >> spec) {
    size_t slash = spec.rfind('/');
    size_t arity = 0;
    if (slash != std::string::npos) {
      std::istringstream num(spec.substr(slash + 1));
      num >> arity;
    }
    if (slash == std::string::npos || arity == 0) {
      std::printf("usage: addpeer <peer> <relation>/<arity> ...\n");
      return;
    }
    relations.emplace_back(spec.substr(0, slash), arity);
  }
  if (peer.empty() || relations.empty()) {
    std::printf("usage: addpeer <peer> <relation>/<arity> ...\n");
    return;
  }
  pdms::Status status = g_pdms.mutable_network()->AddPeer(peer, relations);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return;
  }
  std::printf("peer %s added with %zu relation(s)\n", peer.c_str(),
              relations.size());
}

// `killpeer <name>` / `revive <name>`: crash / un-crash a peer at the
// transport level. Unlike `down`, the catalog still lists the peer, so
// queries pay the detection cost — which is what the failure detector
// (`health`) then amortizes.
void KillPeerCommand(const std::string& name, bool crash) {
  bool known = false;
  for (const pdms::Peer& p : g_pdms.network().peers()) {
    if (p.name == name) known = true;
  }
  if (!known) {
    std::printf("error: no peer named %s\n", name.c_str());
    return;
  }
  if (crash) {
    g_crashed.insert(name);
    std::printf("%s crashed (receives requests, never responds)\n",
                name.c_str());
  } else {
    g_crashed.erase(name);
    std::printf("%s revived; the next probe will clear its suspicion\n",
                name.c_str());
  }
}

// `editmap <mapping> <head>(...) :- body.`: replace a mapping's rule in
// place. The catalog logs a fine-grained change, so only cached plans that
// depended on the mapping are invalidated (see `health`).
void EditMapCommand(const std::string& args) {
  size_t space = args.find(' ');
  if (space == std::string::npos) {
    std::printf("usage: editmap <mapping-name> <head>(...) :- <body>.\n");
    return;
  }
  std::string name(pdms::StripWhitespace(args.substr(0, space)));
  std::string rule_text(pdms::StripWhitespace(args.substr(space + 1)));
  auto rule = pdms::ParseRuleText(rule_text);
  if (!rule.ok()) {
    std::printf("error: %s\n", rule.status().ToString().c_str());
    return;
  }
  pdms::PeerMapping next;
  next.kind = pdms::PeerMappingKind::kDefinitional;
  next.rule = pdms::Rule(rule->head(), rule->body());
  pdms::Status status =
      g_pdms.mutable_network()->ReplacePeerMapping(name, std::move(next));
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return;
  }
  std::printf("mapping %s replaced (definitional)\n", name.c_str());
}

// `health`: the failure detector's per-peer state plus the invalidation
// counters — together, the shell's view of how churn is being absorbed.
void ShowHealth() {
  std::printf("%s", g_health.ToString().c_str());
  if (!g_crashed.empty()) {
    std::printf("crashed:");
    for (const std::string& p : g_crashed) std::printf(" %s", p.c_str());
    std::printf("\n");
  }
  std::printf("plan cache: %zu invalidation(s); goal memo: %zu\n",
              g_plan_cache.stats().invalidations,
              g_goal_memo.stats().invalidations);
}

// `cache stats` / `cache clear` / `cache budget <bytes>`.
void CacheCommand(const std::string& args) {
  if (args == "stats") {
    std::printf("plan cache (%zu entries, %zu/%zu bytes)\n",
                g_plan_cache.size(), g_plan_cache.total_bytes(),
                g_plan_cache.budget_bytes());
    std::printf("%s", g_plan_cache.stats().ToString().c_str());
    std::printf("goal memo (%zu entries, %zu/%zu bytes)\n",
                g_goal_memo.size(), g_goal_memo.total_bytes(),
                g_goal_memo.budget_bytes());
    std::printf("%s", g_goal_memo.stats().ToString().c_str());
    return;
  }
  if (args == "clear") {
    g_plan_cache.Clear();
    g_goal_memo.Clear();
    std::printf("caches cleared\n");
    return;
  }
  if (pdms::StartsWith(args, "budget ")) {
    size_t bytes = 0;
    std::istringstream in(args.substr(7));
    if (!(in >> bytes)) {
      std::printf("usage: cache budget <bytes>\n");
      return;
    }
    g_plan_cache.set_budget_bytes(bytes);
    g_goal_memo.set_budget_bytes(bytes);
    std::printf("plan cache and goal memo budgets set to %zu bytes\n", bytes);
    return;
  }
  std::printf("usage: cache stats | cache clear | cache budget <bytes>\n");
}

// `threads` / `threads <n>`: show or set the parallelism of the in-process
// facade (reformulation forks + parallel disjunct evaluation). The
// simulated runtime that serves `?` queries stays single-threaded by
// design (deterministic message schedule); the knob affects `plan`/`tree`
// and any direct facade answering.
void ThreadsCommand(const std::string& args) {
  if (args.empty()) {
    std::printf("threads: %zu\n", g_pdms.options().threads);
    return;
  }
  size_t n = 0;
  std::istringstream in(args);
  if (!(in >> n) || n == 0) {
    std::printf("usage: threads [<n>=1]\n");
    return;
  }
  pdms::ReformulationOptions options = g_pdms.options();
  options.threads = n;
  g_pdms.set_options(options);
  std::printf("threads set to %zu%s\n", n,
              n == 1 ? " (serial)" : " (work-stealing pool)");
}

// `serve <port>` / `serve stop`: expose the shell's network/data over the
// wire protocol from a background server owned by the shell.
void ServeCommand(const std::string& args) {
  if (args == "stop") {
    if (g_server == nullptr) {
      std::printf("not serving\n");
      return;
    }
    g_server->Stop();
    g_server.reset();
    std::printf("server stopped\n");
    return;
  }
  int port = -1;
  std::istringstream in(args);
  if (!(in >> port) || port < 0 || port > 65535) {
    std::printf("usage: serve <port> | serve stop   (port 0 = ephemeral)\n");
    return;
  }
  if (g_server != nullptr) {
    std::printf("already serving on port %u; `serve stop` first\n",
                static_cast<unsigned>(g_server->port()));
    return;
  }
  pdms::serve::ServerOptions options;
  options.port = static_cast<uint16_t>(port);
  g_server = std::make_unique<pdms::serve::PplServer>(options, &g_metrics);
  pdms::Status status = g_server->Start(g_pdms.network(), g_pdms.database());
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    g_server.reset();
    return;
  }
  std::printf("serving on 127.0.0.1:%u (snapshot of the current "
              "network/data)\n",
              static_cast<unsigned>(g_server->port()));
}

// `connect <host:port>` / `disconnect`: route `?` queries to a server.
void ConnectCommand(const std::string& args) {
  size_t colon = args.rfind(':');
  int port = -1;
  if (colon != std::string::npos) {
    std::istringstream in(args.substr(colon + 1));
    in >> port;
  }
  if (colon == std::string::npos || port <= 0 || port > 65535) {
    std::printf("usage: connect <host:port>\n");
    return;
  }
  std::string host = args.substr(0, colon);
  pdms::Status status =
      g_client.Connect(host, static_cast<uint16_t>(port));
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return;
  }
  status = g_client.Ping();
  if (!status.ok()) {
    std::printf("connected but ping failed: %s\n",
                status.ToString().c_str());
    g_client.Close();
    return;
  }
  std::printf("connected to %s:%d; `?` queries now go over the wire "
              "(budget %.0f ms, `budget <ms>` to change, `disconnect` to "
              "detach)\n",
              host.c_str(), port, g_remote_budget_ms);
}

void BudgetCommand(const std::string& args) {
  if (args.empty()) {
    std::printf("budget: %.1f ms (0 = unlimited)\n", g_remote_budget_ms);
    return;
  }
  std::istringstream in(args);
  double ms = 0;
  if (!(in >> ms)) {
    std::printf("usage: budget [<ms>]  (0 = unlimited)\n");
    return;
  }
  g_remote_budget_ms = ms;
  std::printf("remote query budget set to %.1f ms%s\n", ms,
              ms <= 0 ? " (unlimited)" : "");
}

void Help() {
  std::printf(
      "commands:\n"
      "  load <file>        load a PPL program file\n"
      "  peer/stored/mapping/fact ...   execute a PPL statement\n"
      "  ? <query>          reformulate and evaluate, e.g. ? q(x) :- P:R(x).\n"
      "  plan <query>       show the rewritings and their physical plans\n"
      "                     (scan order, join builds, est vs actual rows)\n"
      "  tree <query>       dump the rule-goal tree\n"
      "  schema             print the network\n"
      "  data               print the stored relations\n"
      "  classify           Section 3 complexity analysis\n"
      "  down <name>        mark a peer or stored relation unavailable\n"
      "  up <name>          mark it available again\n"
      "  avail              list unavailable peers/stored relations\n"
      "  addpeer <p> <r>/<n> ...   declare peer p with relations r/arity\n"
      "  killpeer <name>    crash a peer (silent: requests go unanswered)\n"
      "  revive <name>      un-crash a peer\n"
      "  editmap <m> <rule> replace mapping m, e.g. editmap mapping#0\n"
      "                     B:S(x, y) :- A:R(x, y).\n"
      "  health             failure-detector state + cache invalidations\n"
      "  partition <a> <b>  cut the simulated link between two nodes\n"
      "                     (peer names or @client, the querying node)\n"
      "  heal [<a> <b>]     heal one partition, or all with no arguments\n"
      "  trace              print the last query's message trace\n"
      "  trace save <file>  write the last query's spans as Chrome-trace\n"
      "                     JSON (chrome://tracing / Perfetto)\n"
      "  explain            render the last query's span tree\n"
      "  metrics            print the accumulated metrics registry\n"
      "  cache stats        plan-cache / goal-memo hit and size counters\n"
      "  cache clear        drop all cached plans and memoized subtrees\n"
      "  cache budget <n>   set both cache byte budgets (evicts down)\n"
      "  threads [<n>]      show or set facade parallelism (1 = serial)\n"
      "  serve <port>       serve the current network/data over TCP\n"
      "                     (docs/serving.md; `serve stop` to stop)\n"
      "  connect <h:p>      route `?` queries to a ppl_serverd instance\n"
      "  disconnect         detach and answer locally again\n"
      "  budget [<ms>]      show or set the remote query budget\n"
      "  help               this text\n"
      "  quit               exit\n"
      "queries run on the simulated distributed runtime: every stored-\n"
      "relation scan is a message round-trip from @client to the owning\n"
      "peer; the report below the answers counts messages and timeouts\n");
}

}  // namespace

int main(int argc, char** argv) {
  g_pdms.set_trace(&g_trace);
  g_pdms.set_metrics(&g_metrics);
  g_pdms.set_plan_cache(&g_plan_cache);
  g_pdms.set_goal_memo(&g_goal_memo);
  for (int i = 1; i < argc; ++i) LoadFile(argv[i]);
  std::printf("Piazza-style PDMS shell. Type 'help' for commands.\n");
  std::string line;
  while (true) {
    std::printf("ppl> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(pdms::StripWhitespace(line));
    if (trimmed.empty()) continue;
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed == "help") {
      Help();
    } else if (trimmed == "schema") {
      std::printf("%s", g_pdms.network().ToString().c_str());
    } else if (trimmed == "data") {
      std::printf("%s", g_pdms.database().ToString().c_str());
    } else if (trimmed == "classify") {
      std::printf("%s", g_pdms.Classify().Explain().c_str());
    } else if (trimmed == "avail") {
      ShowAvailability();
    } else if (trimmed == "health") {
      ShowHealth();
    } else if (pdms::StartsWith(trimmed, "addpeer ")) {
      AddPeerCommand(trimmed.substr(8));
    } else if (pdms::StartsWith(trimmed, "killpeer ")) {
      KillPeerCommand(std::string(pdms::StripWhitespace(trimmed.substr(9))),
                      /*crash=*/true);
    } else if (pdms::StartsWith(trimmed, "revive ")) {
      KillPeerCommand(std::string(pdms::StripWhitespace(trimmed.substr(7))),
                      /*crash=*/false);
    } else if (pdms::StartsWith(trimmed, "editmap ")) {
      EditMapCommand(std::string(pdms::StripWhitespace(trimmed.substr(8))));
    } else if (trimmed == "trace") {
      ShowTrace();
    } else if (pdms::StartsWith(trimmed, "trace save ")) {
      SaveTrace(std::string(pdms::StripWhitespace(trimmed.substr(11))));
    } else if (trimmed == "explain") {
      ShowExplain();
    } else if (trimmed == "metrics") {
      ShowMetrics();
    } else if (trimmed == "threads") {
      ThreadsCommand("");
    } else if (pdms::StartsWith(trimmed, "threads ")) {
      ThreadsCommand(std::string(pdms::StripWhitespace(trimmed.substr(8))));
    } else if (pdms::StartsWith(trimmed, "cache ")) {
      CacheCommand(std::string(pdms::StripWhitespace(trimmed.substr(6))));
    } else if (trimmed == "cache") {
      CacheCommand("");
    } else if (pdms::StartsWith(trimmed, "serve ")) {
      ServeCommand(std::string(pdms::StripWhitespace(trimmed.substr(6))));
    } else if (pdms::StartsWith(trimmed, "connect ")) {
      ConnectCommand(std::string(pdms::StripWhitespace(trimmed.substr(8))));
    } else if (trimmed == "disconnect") {
      if (g_client.connected()) {
        g_client.Close();
        std::printf("disconnected; queries answer locally again\n");
      } else {
        std::printf("not connected\n");
      }
    } else if (trimmed == "budget") {
      BudgetCommand("");
    } else if (pdms::StartsWith(trimmed, "budget ")) {
      BudgetCommand(std::string(pdms::StripWhitespace(trimmed.substr(7))));
    } else if (pdms::StartsWith(trimmed, "partition ")) {
      AddPartition(trimmed.substr(10));
    } else if (trimmed == "heal") {
      HealPartitions("");
    } else if (pdms::StartsWith(trimmed, "heal ")) {
      HealPartitions(trimmed.substr(5));
    } else if (pdms::StartsWith(trimmed, "down ")) {
      SetAvailability(std::string(pdms::StripWhitespace(trimmed.substr(5))),
                      /*available=*/false);
    } else if (pdms::StartsWith(trimmed, "up ")) {
      SetAvailability(std::string(pdms::StripWhitespace(trimmed.substr(3))),
                      /*available=*/true);
    } else if (pdms::StartsWith(trimmed, "load ")) {
      LoadFile(std::string(pdms::StripWhitespace(trimmed.substr(5))));
    } else if (pdms::StartsWith(trimmed, "? ")) {
      RunQuery(trimmed.substr(2), /*evaluate=*/true);
    } else if (pdms::StartsWith(trimmed, "plan ")) {
      RunQuery(trimmed.substr(5), /*evaluate=*/false);
    } else if (pdms::StartsWith(trimmed, "tree ")) {
      ShowTree(trimmed.substr(5));
    } else {
      // Treat anything else as a PPL statement batch.
      pdms::Status status = g_pdms.LoadProgram(trimmed);
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
    }
  }
  if (g_server != nullptr) g_server->Stop();
  return 0;
}
