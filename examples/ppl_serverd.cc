// ppl_serverd: the networked PDMS serving daemon (docs/serving.md,
// docs/serving_telemetry.md).
//
// Loads PPL programs, binds a TCP port, and answers wire-protocol query
// frames with admission control and load shedding: a bounded queue sheds
// eagerly when full, requests carrying a budget are shed when the
// remaining budget cannot cover the queue's expected wait, and budgets
// that survive admission become reformulation deadlines so overload
// degrades to sound partial answers instead of timeouts.
//
// Telemetry: the daemon always feeds a rolling SLO window (served to
// kStatsRequest frames and the `ppl_top` console), optionally writes an
// NDJSON access log, and answers traced (version-2) query frames with
// its span tree so a client can assemble one cross-process Chrome trace.
//
// Usage:
//   ./ppl_serverd [--port N] [--addr A] [--workers N] [--queue N]
//                 [--floor MS] [--access-log PATH] [--remote REL=H:P]
//                 [--linger] [program.ppl ...]
//
//   --port N           TCP port (default 7432; 0 picks an ephemeral port)
//   --addr A           bind address (default 127.0.0.1)
//   --workers N        evaluation worker threads (default 2)
//   --queue N          admission queue bound (default 64)
//   --floor MS         minimum service time per request (bench knob)
//   --access-log PATH  append NDJSON access-log lines to PATH
//   --remote REL=H:P   serve stored relation REL from the ppl_serverd at
//                      host H port P (repeatable; federated scans)
//   --linger           do not read stdin; run until SIGINT/SIGTERM
//
// With no program files a small demo network is served. Without --linger
// the daemon reads commands from stdin: `metrics`, `admission`, `stats`,
// `quit` (EOF quits too). SIGINT/SIGTERM trigger a graceful shutdown
// either way: drain in-flight requests, print a final stats snapshot,
// and flush the access-log tail. Talk to the daemon with `ppl_shell`
// (`connect 127.0.0.1:<port>`), `ppl_top`, or `serving_loadgen`.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "pdms/core/pdms.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/rolling.h"
#include "pdms/serve/access_log.h"
#include "pdms/serve/server.h"
#include "pdms/util/strings.h"

namespace {

constexpr const char* kDemoProgram = R"(
peer Hospital { relation Doctor(name, hospital); }
peer Clinic { relation Physician(name, clinic); }
stored hdoc(name, hospital) <= Hospital:Doctor(name, hospital).
mapping Clinic:Physician(n, c) :- Hospital:Doctor(n, c).
fact hdoc("alice", "county").
fact hdoc("bo", "mercy").
)";

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7432;
  std::string addr = "127.0.0.1";
  size_t workers = 2;
  size_t queue = 64;
  double floor_ms = 0;
  std::string access_log_path;
  bool linger = false;
  std::vector<std::pair<std::string, std::string>> remotes;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--addr") {
      addr = next();
    } else if (arg == "--workers") {
      workers = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--queue") {
      queue = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--floor") {
      floor_ms = std::atof(next());
    } else if (arg == "--access-log") {
      access_log_path = next();
    } else if (arg == "--linger") {
      linger = true;
    } else if (arg == "--remote") {
      std::string spec = next();
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::fprintf(stderr, "--remote wants REL=HOST:PORT, got '%s'\n",
                     spec.c_str());
        return 1;
      }
      remotes.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--port N] [--addr A] [--workers N] "
                  "[--queue N] [--floor MS] [--access-log PATH] "
                  "[--remote REL=H:P] [--linger] [program.ppl ...]\n",
                  argv[0]);
      return 0;
    } else {
      files.push_back(arg);
    }
  }

  pdms::Pdms pdms;
  if (files.empty()) {
    pdms::Status status = pdms.LoadProgram(kDemoProgram);
    if (!status.ok()) {
      std::fprintf(stderr, "demo program: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("no program files; serving the built-in demo network\n");
  }
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    pdms::Status status = pdms.LoadProgram(buffer.str());
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s\n", path.c_str());
  }

  pdms::obs::MetricsRegistry metrics;
  pdms::obs::RollingStats rolling;
  std::unique_ptr<pdms::serve::AccessLog> access_log;
  if (!access_log_path.empty()) {
    auto opened = pdms::serve::AccessLog::Open({access_log_path});
    if (!opened.ok()) {
      std::fprintf(stderr, "access log: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    access_log = std::move(*opened);
    std::printf("access log: %s\n", access_log->path().c_str());
  }

  pdms::serve::ServerOptions options;
  options.port = port;
  options.bind_address = addr;
  options.executor.workers = workers;
  options.executor.admission.max_queue = queue;
  options.executor.service_floor_ms = floor_ms;
  options.executor.coalesce_identical = true;
  options.executor.rolling = &rolling;
  options.executor.access_log = access_log.get();
  for (const auto& [relation, endpoint] : remotes) {
    options.executor.remote_relations[relation] = endpoint;
    std::printf("remote relation %s <- %s\n", relation.c_str(),
                endpoint.c_str());
  }
  pdms::serve::PplServer server(options, &metrics);
  pdms::Status status = server.Start(pdms.network(), pdms.database());
  if (!status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("ppl_serverd listening on %s:%u (%zu workers, queue %zu)\n",
              addr.c_str(), static_cast<unsigned>(server.port()), workers,
              queue);
  if (!linger) std::printf("commands: metrics | admission | stats | quit\n");
  std::fflush(stdout);

  // Graceful shutdown on SIGINT/SIGTERM. Deliberately no SA_RESTART: a
  // blocking stdin read returns EINTR so the loop below notices g_stop.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  if (linger) {
    timespec tick{0, 200 * 1000 * 1000};
    while (g_stop == 0) nanosleep(&tick, nullptr);
  } else {
    std::string line;
    while (g_stop == 0 && std::getline(std::cin, line)) {
      std::string trimmed(pdms::StripWhitespace(line));
      if (trimmed == "quit" || trimmed == "exit") break;
      if (trimmed == "metrics") {
        std::string out = metrics.ToString();
        std::printf("%s", out.empty() ? "no metrics yet\n" : out.c_str());
      } else if (trimmed == "admission") {
        std::printf("%s\n",
                    server.executor()->admission()->ToString().c_str());
      } else if (trimmed == "stats") {
        std::printf("%s\n", server.StatsJson().c_str());
      } else if (!trimmed.empty()) {
        std::printf("commands: metrics | admission | stats | quit\n");
      }
      std::fflush(stdout);
    }
  }

  // Drain in-flight requests, then emit the final telemetry: one last
  // stats snapshot and the access-log tail, so nothing observed during
  // the run is lost to the shutdown.
  server.Stop();
  std::printf("final stats: %s\n", server.StatsJson().c_str());
  if (access_log != nullptr) {
    access_log->Flush();
    std::printf("access log: %llu lines (%llu rotations) in %s\n",
                static_cast<unsigned long long>(access_log->lines_written()),
                static_cast<unsigned long long>(access_log->rotations()),
                access_log->path().c_str());
  }
  std::printf("stopped\n");
  return 0;
}
