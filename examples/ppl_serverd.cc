// ppl_serverd: the networked PDMS serving daemon (docs/serving.md).
//
// Loads PPL programs, binds a TCP port, and answers wire-protocol query
// frames with admission control and load shedding: a bounded queue sheds
// eagerly when full, requests carrying a budget are shed when the
// remaining budget cannot cover the queue's expected wait, and budgets
// that survive admission become reformulation deadlines so overload
// degrades to sound partial answers instead of timeouts.
//
// Usage:
//   ./ppl_serverd [--port N] [--addr A] [--workers N] [--queue N]
//                 [--floor MS] [program.ppl ...]
//
//   --port N     TCP port (default 7432; 0 picks an ephemeral port)
//   --addr A     bind address (default 127.0.0.1)
//   --workers N  evaluation worker threads (default 2)
//   --queue N    admission queue bound (default 64)
//   --floor MS   minimum service time per request (bench knob; default 0)
//
// With no program files a small demo network is served. The daemon then
// reads commands from stdin: `metrics`, `admission`, `quit` (EOF quits
// too). Talk to it with `ppl_shell` (`connect 127.0.0.1:<port>`) or the
// `serving_loadgen` benchmark.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pdms/core/pdms.h"
#include "pdms/obs/metrics.h"
#include "pdms/serve/server.h"
#include "pdms/util/strings.h"

namespace {

constexpr const char* kDemoProgram = R"(
peer Hospital { relation Doctor(name, hospital); }
peer Clinic { relation Physician(name, clinic); }
stored hdoc(name, hospital) <= Hospital:Doctor(name, hospital).
mapping Clinic:Physician(n, c) :- Hospital:Doctor(n, c).
fact hdoc("alice", "county").
fact hdoc("bo", "mercy").
)";

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7432;
  std::string addr = "127.0.0.1";
  size_t workers = 2;
  size_t queue = 64;
  double floor_ms = 0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--addr") {
      addr = next();
    } else if (arg == "--workers") {
      workers = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--queue") {
      queue = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--floor") {
      floor_ms = std::atof(next());
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--port N] [--addr A] [--workers N] "
                  "[--queue N] [--floor MS] [program.ppl ...]\n",
                  argv[0]);
      return 0;
    } else {
      files.push_back(arg);
    }
  }

  pdms::Pdms pdms;
  if (files.empty()) {
    pdms::Status status = pdms.LoadProgram(kDemoProgram);
    if (!status.ok()) {
      std::fprintf(stderr, "demo program: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("no program files; serving the built-in demo network\n");
  }
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    pdms::Status status = pdms.LoadProgram(buffer.str());
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s\n", path.c_str());
  }

  pdms::obs::MetricsRegistry metrics;
  pdms::serve::ServerOptions options;
  options.port = port;
  options.bind_address = addr;
  options.executor.workers = workers;
  options.executor.admission.max_queue = queue;
  options.executor.service_floor_ms = floor_ms;
  pdms::serve::PplServer server(options, &metrics);
  pdms::Status status = server.Start(pdms.network(), pdms.database());
  if (!status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("ppl_serverd listening on %s:%u (%zu workers, queue %zu)\n",
              addr.c_str(), static_cast<unsigned>(server.port()), workers,
              queue);
  std::printf("commands: metrics | admission | quit\n");
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::string trimmed(pdms::StripWhitespace(line));
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed == "metrics") {
      std::string out = metrics.ToString();
      std::printf("%s", out.empty() ? "no metrics yet\n" : out.c_str());
    } else if (trimmed == "admission") {
      std::printf("%s\n",
                  server.executor()->admission()->ToString().c_str());
    } else if (!trimmed.empty()) {
      std::printf("commands: metrics | admission | quit\n");
    }
    std::fflush(stdout);
  }
  server.Stop();
  std::printf("stopped\n");
  return 0;
}
