#!/usr/bin/env bash
# Deterministic simulation testing sweep: builds the tree and runs the DST
# harness (tests/sim_dst_test.cc) over many seeded schedules. Every
# schedule checks four invariants (soundness under faults, verdict
# accuracy, byte-identical replay, bounded termination).
#
# Usage: tools/dst.sh [seeds] [seed0]
#   seeds  number of consecutive seeds to run (default 256)
#   seed0  first seed (default 0)
#
# A failure prints the seed; reproduce it alone with:
#   PDMS_DST_SEEDS=1 PDMS_DST_SEED0=<seed> build/tests/sim_dst_test
set -euo pipefail

cd "$(dirname "$0")/.."
SEEDS="${1:-256}"
SEED0="${2:-0}"
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target sim_dst_test

echo "== DST sweep: ${SEEDS} schedules starting at seed ${SEED0} =="
PDMS_DST_SEEDS="${SEEDS}" PDMS_DST_SEED0="${SEED0}" \
  "${BUILD_DIR}/tests/sim_dst_test"
