#!/usr/bin/env bash
# The full CI gate, in dependency order:
#
#   1. default build + complete ctest suite (tier-1; must stay green)
#   2. AddressSanitizer + UBSan build + full suite (tools/ci_sanitize.sh)
#   3. deterministic-simulation smoke: 32 seeded schedules through the
#      message-passing runtime (partitions, loss, duplication, crashes).
#      The nightly-sized run is tools/dst.sh, which defaults to 256 seeds.
#   4. trace-export smoke: one instrumented Figure-3 reformulation dumped
#      as Chrome-trace JSON; the file must parse and contain reformulation
#      spans (docs/observability.md).
#   5. cache-coherence smoke: warm the plan cache, mutate the network
#      (availability flip + mapping edit), re-query; the invalidation
#      counter must advance and answers must match a never-cached
#      instance (docs/plan_cache.md).
#   6. ThreadSanitizer gate over the parallel executor: the exec
#      primitives and the parallel-vs-serial equivalence suite (which
#      exercises concurrent serving over shared caches) under TSan
#      (docs/parallel_execution.md).
#   7. churn gate: a 32-seed churn-DST smoke (cached and uncached twins
#      byte-compared under live catalog churn) plus the dependency-
#      tracked invalidation and peer-health suites, all under TSan,
#      including the 4-thread shared-cache churn test
#      (docs/churn_invalidation.md). The nightly-sized run is the full
#      200-seed default of tests/churn_dst_test.
#   8. serving gate: build ppl_serverd and smoke it over loopback TCP
#      (a real query through the wire protocol), run the frame-decoder
#      fuzz corpus under asan+ubsan, and the concurrent multi-client
#      server suite under TSan (docs/serving.md).
#   9. telemetry gate: a lingering ppl_serverd answering a real query,
#      its stats frame scraped through ppl_top --once --raw (the JSON
#      must parse and carry the rolling SLO keys), the NDJSON access log
#      checked line by line against the schema, and the telemetry suite
#      (cross-process trace grafting, rolling window, stats frame,
#      access log) under TSan (docs/serving_telemetry.md).
#  10. query-planner gate: the qp storage/planner suite, the seeded
#      legacy-vs-vectorized equivalence property suite, and the client-
#      pool suite re-run under asan+ubsan and under TSan (the equivalence
#      suite fans disjuncts out over real worker threads), plus a join
#      micro-bench smoke and a small end-to-end engine comparison whose
#      soundness check must pass (docs/query_planning.md).
#  11. network-cost gate: the topology/link-map/network-model suite and a
#      reduced-seed cost-aware-vs-cost-blind equivalence sweep under
#      asan+ubsan and under TSan (the thread-invariance case drives the
#      cost-aware reformulator over a real worker pool), plus a
#      topology_latency bench smoke whose byte-identity check must pass
#      (docs/network_cost_model.md). The full 200-seed sweep is the
#      binary's default outside CI.
#
# Usage: tools/ci.sh
# Knobs: BUILD_DIR (default build), ASAN_BUILD_DIR (default build-asan),
#        TSAN_BUILD_DIR (default build-tsan),
#        PDMS_DST_SEEDS (default 32) for the simulation smoke.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-build-asan}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== [1/11] default build + tests =="
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== [2/11] asan+ubsan build + tests =="
tools/ci_sanitize.sh "${ASAN_BUILD_DIR}"

echo "== [3/11] simulation smoke (${PDMS_DST_SEEDS:-32} seeds) =="
PDMS_DST_SEEDS="${PDMS_DST_SEEDS:-32}" "${BUILD_DIR}/tests/sim_dst_test"

echo "== [4/11] trace-export smoke =="
TRACE_FILE="${BUILD_DIR}/ci_trace.json"
PDMS_BENCH_RUNS=1 PDMS_BENCH_MAX_DIAMETER=1 \
  "${BUILD_DIR}/bench/fig3_tree_size" --trace "${TRACE_FILE}" > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "${TRACE_FILE}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
reform = [e for e in events if e["name"] in ("reformulate", "expand")]
assert reform, "no reformulation spans in trace export"
ids = {e["args"]["trace_id"] for e in events}
assert len(ids) == 1, f"expected one trace id, got {ids}"
print(f"trace export ok: {len(events)} spans, "
      f"{len(reform)} reformulation spans")
EOF
else
  grep -q '"traceEvents"' "${TRACE_FILE}"
  grep -q '"name": "reformulate"' "${TRACE_FILE}"
  echo "trace export ok (python3 unavailable; grep check only)"
fi

echo "== [5/11] cache-coherence smoke =="
# Query -> mutate network -> re-query: the invalidation counter must
# advance and the cached answers must match a fresh, never-cached
# instance (the gtest case asserts both).
"${BUILD_DIR}/tests/cache_coherence_test" \
  --gtest_filter='CacheCoherence.Smoke'

echo "== [6/11] tsan: exec primitives + parallel equivalence =="
cmake --preset tsan > /dev/null
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
  --target exec_test parallel_equivalence_test
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/exec_test"
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/parallel_equivalence_test"

echo "== [7/11] tsan: churn DST smoke + invalidation/health suites =="
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
  --target churn_dst_test cache_invalidation_test peer_health_test
# The 32-seed twin comparison and the 4-thread shared-cache churn test;
# the full 200-seed sweep is the binary's default outside CI.
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/churn_dst_test" --gtest_filter=\
'ChurnDstSmoke.*:ChurnDst.SharedCachesSurviveFourThreadsAcrossChurnRounds'
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/cache_invalidation_test"
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/peer_health_test"

echo "== [8/11] serving gate: loopback smoke + asan fuzz + tsan server =="
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target ppl_serverd
# Loopback smoke: the daemon on an ephemeral-ish port must answer a real
# wire-protocol query. The overload test's loopback case drives the same
# server through the Client, so reuse it as the scripted check.
"${BUILD_DIR}/tests/serve_overload_test" \
  --gtest_filter='Serving.LoopbackAnswerIsByteIdenticalToInProcess'
# ppl_serverd itself: start, answer "metrics"/"quit" on stdin, exit 0.
printf 'metrics\nquit\n' | "${BUILD_DIR}/examples/ppl_serverd" --port 0 \
  > /dev/null
# Frame fuzz under asan+ubsan: mutated/garbage frames must never crash
# or over-allocate in the decoder (tools/ci_sanitize.sh already ran the
# full suite; re-run the fuzz cases explicitly as the named gate).
"${ASAN_BUILD_DIR}/tests/wire_test" --gtest_filter='WireFuzz.*'
# Concurrent server under TSan: multi-client loopback traffic over the
# shared caches plus the overload burst.
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" --target serve_overload_test
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/serve_overload_test" --gtest_filter=\
'Serving.ConcurrentClientsShareTheServerSafely:Serving.OverloadBurstShedsCleanlyAndAnswersStayCorrect'

echo "== [9/11] telemetry gate: stats scrape + access log + tsan =="
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target ppl_serverd ppl_top ppl_shell
TELEM_DIR="${BUILD_DIR}/ci-telemetry"
rm -rf "${TELEM_DIR}"
mkdir -p "${TELEM_DIR}"
# A lingering daemon on an ephemeral port (it prints the port it got).
"${BUILD_DIR}/examples/ppl_serverd" --port 0 --linger \
  --access-log "${TELEM_DIR}/access.log" \
  > "${TELEM_DIR}/serverd.out" 2>&1 &
SERVERD_PID=$!
trap 'kill "${SERVERD_PID}" 2>/dev/null || true' EXIT
PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "${TELEM_DIR}/serverd.out" | head -1)"
  [ -n "${PORT}" ] && break
  sleep 0.1
done
[ -n "${PORT}" ] || { echo "ppl_serverd never reported its port"; exit 1; }
# One real query over the wire so the rolling window and the access log
# have a request to show.
printf 'connect 127.0.0.1:%s\n? q(n, h) :- Hospital:Doctor(n, h).\nquit\n' \
  "${PORT}" | "${BUILD_DIR}/examples/ppl_shell" > /dev/null
# The ops console's one-shot raw mode doubles as the scripted scraper.
"${BUILD_DIR}/examples/ppl_top" --once --raw "127.0.0.1:${PORT}" \
  > "${TELEM_DIR}/stats.json"
if command -v python3 > /dev/null 2>&1; then
  python3 - "${TELEM_DIR}/stats.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    stats = json.load(f)
rolling = stats["rolling"]
for key in ("qps", "p50_ms", "p95_ms", "p99_ms", "shed_rate",
            "cache_hit_rate", "answers", "queue_depth"):
    assert key in rolling, f"rolling.{key} missing"
assert rolling["answers"] >= 1, "no answers in the rolling window"
for section in ("admission", "server", "metrics"):
    assert section in stats, f"{section} section missing"
print(f"stats frame ok: {rolling['answers']} answers, "
      f"p50 {rolling['p50_ms']}ms")
EOF
  python3 - "${TELEM_DIR}/access.log" <<'EOF'
import json, sys
required = {"ts_ms", "conn", "req", "query", "deadline_ms", "queue_ms",
            "exec_ms", "total_ms", "shed", "cache_hit", "verdict",
            "trace_id"}
lines = 0
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        missing = required - set(entry)
        assert not missing, f"missing fields {missing} in {line}"
        lines += 1
assert lines >= 1, "access log is empty"
print(f"access log ok: {lines} schema-complete lines")
EOF
else
  grep -q '"rolling"' "${TELEM_DIR}/stats.json"
  grep -q '"p50_ms"' "${TELEM_DIR}/stats.json"
  grep -q '"query"' "${TELEM_DIR}/access.log"
  echo "telemetry scrape ok (python3 unavailable; grep check only)"
fi
# Graceful shutdown: drain, final stats snapshot, access-log tail.
kill -TERM "${SERVERD_PID}"
wait "${SERVERD_PID}"
grep -q 'final stats:' "${TELEM_DIR}/serverd.out"
trap - EXIT
# The telemetry suite under TSan: cross-process trace grafting over two
# live servers, the rolling window, the stats frame, the access log.
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" --target serve_telemetry_test
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/serve_telemetry_test"

echo "== [10/11] qp gate: asan + tsan suites, eval bench smoke =="
# The vectorized-engine suites under asan+ubsan (step 2 built them with
# the full suite; re-run explicitly as the named gate).
"${ASAN_BUILD_DIR}/tests/qp_test"
"${ASAN_BUILD_DIR}/tests/qp_equivalence_test"
"${ASAN_BUILD_DIR}/tests/serve_client_pool_test"
# Under TSan: the equivalence suite runs the vectorized engine at 1/2/8
# threads over shared plan caches, the client-pool suite hands leases
# across a live server.
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
  --target qp_test qp_equivalence_test serve_client_pool_test
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/qp_test"
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/qp_equivalence_test"
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/serve_client_pool_test"
# Join-kernel micro-bench smoke plus a CI-sized end-to-end engine
# comparison; eval_vectorized exits non-zero if any vectorized answer
# set diverges from the legacy engine.
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target eval_join eval_vectorized
"${BUILD_DIR}/bench/eval_join" --benchmark_filter='BM_TwoWayJoin' \
  --benchmark_min_time=0.05 > /dev/null
PDMS_BENCH_RUNS=1 PDMS_BENCH_ITERS=2 PDMS_BENCH_FACTS=1024 \
PDMS_BENCH_MAX_DIAMETER=3 "${BUILD_DIR}/bench/eval_vectorized" > /dev/null

echo "== [11/11] network-cost gate: asan + tsan suites, topology bench smoke =="
# Topology/link-map/network-model invariants and the routing equivalence
# sweep under asan+ubsan (step 2 built them with the full suite; re-run
# explicitly, at a CI-sized seed count, as the named gate).
"${ASAN_BUILD_DIR}/tests/topology_cost_test"
PDMS_EQ_SEEDS=32 "${ASAN_BUILD_DIR}/tests/cost_equivalence_test"
# Under TSan: the thread-invariance case runs the cost-aware reformulator
# over a 2-worker pool against the serial twin.
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
  --target topology_cost_test cost_equivalence_test
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/topology_cost_test"
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" PDMS_EQ_SEEDS=16 \
  "${TSAN_BUILD_DIR}/tests/cost_equivalence_test"
# Bench smoke: a small sweep; the binary exits non-zero if any cost-aware
# answer set diverges from the cost-blind twin.
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target topology_latency
PDMS_BENCH_RUNS=2 PDMS_BENCH_PEERS=32 \
  "${BUILD_DIR}/bench/topology_latency" > /dev/null

echo "== CI gate passed =="
