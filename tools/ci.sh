#!/usr/bin/env bash
# The full CI gate, in dependency order:
#
#   1. default build + complete ctest suite (tier-1; must stay green)
#   2. AddressSanitizer + UBSan build + full suite (tools/ci_sanitize.sh)
#   3. deterministic-simulation smoke: 32 seeded schedules through the
#      message-passing runtime (partitions, loss, duplication, crashes).
#      The nightly-sized run is tools/dst.sh, which defaults to 256 seeds.
#
# Usage: tools/ci.sh
# Knobs: BUILD_DIR (default build), ASAN_BUILD_DIR (default build-asan),
#        PDMS_DST_SEEDS (default 32) for the simulation smoke.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-build-asan}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== [1/3] default build + tests =="
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== [2/3] asan+ubsan build + tests =="
tools/ci_sanitize.sh "${ASAN_BUILD_DIR}"

echo "== [3/3] simulation smoke (${PDMS_DST_SEEDS:-32} seeds) =="
PDMS_DST_SEEDS="${PDMS_DST_SEEDS:-32}" "${BUILD_DIR}/tests/sim_dst_test"

echo "== CI gate passed =="
