#!/usr/bin/env bash
# Runs every bench binary with CI-sized knobs, collecting the per-binary
# machine-readable reports (--json, shared schema: name/seed/params/
# metrics, plus an optional "registry" block carrying an
# obs::MetricsRegistry snapshot) and merging them into one JSON array at
# BENCH_sim.json.
# The merge is plain shell — each report is a single JSON object on its
# own line(s), so concatenation with commas is valid JSON.
#
# The serving-throughput bench (plan-cache hit rate and speedup,
# docs/plan_cache.md) reports into its own BENCH_cache.json so cache
# regressions are tracked separately from the reformulation numbers.
#
# A second serving_throughput run with intra-query parallelism enabled
# (PDMS_BENCH_THREADS, default 4) reports into BENCH_parallel.json — the
# concurrent-serving sweep plus the parallel facade numbers
# (docs/parallel_execution.md).
#
# The churn_serving bench (sustained hit rate and tail latency under
# live catalog churn, dependency-tracked vs wholesale invalidation,
# docs/churn_invalidation.md) reports into BENCH_churn.json.
#
# The serving_loadgen bench (open-loop overload sweep against the
# networked server: qps, answer p50/p99, shed rate, and the full
# latency histogram per load point, docs/serving.md) reports into
# BENCH_serving.json. During the same sweep the loadgen scrapes the
# server's rolling SLO window over the wire (the kStatsRequest frame,
# docs/serving_telemetry.md); that snapshot is wrapped into
# BENCH_slo.json.
#
# The eval_vectorized bench (legacy tuple-at-a-time vs the cost-based
# vectorized engine, cold and plan-cached, per Figure-3 diameter,
# docs/query_planning.md) reports into BENCH_eval.json.
#
# The topology_latency bench (cost-aware routing vs cost-blind execution
# per link-map shape under the contention network model, with byte-
# identical answers asserted per run, docs/network_cost_model.md)
# reports into BENCH_topology.json.
#
# Usage: tools/bench_all.sh [out.json] [cache-out.json] [parallel-out.json]
#                           [churn-out.json] [serving-out.json]
#                           [slo-out.json] [eval-out.json]
#                           [topology-out.json]
# Knobs: BUILD_DIR (default build), PDMS_BENCH_* forwarded to the benches.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_sim.json}"
CACHE_OUT="${2:-BENCH_cache.json}"
PARALLEL_OUT="${3:-BENCH_parallel.json}"
CHURN_OUT="${4:-BENCH_churn.json}"
SERVING_OUT="${5:-BENCH_serving.json}"
SLO_OUT="${6:-BENCH_slo.json}"
EVAL_OUT="${7:-BENCH_eval.json}"
TOPOLOGY_OUT="${8:-BENCH_topology.json}"
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
JSON_DIR="${BUILD_DIR}/bench-json"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "${JOBS}"
mkdir -p "${JSON_DIR}"

# Small knobs so the whole sweep stays in CI budget; callers can override
# any PDMS_BENCH_* variable in the environment.
export PDMS_BENCH_RUNS="${PDMS_BENCH_RUNS:-2}"
export PDMS_BENCH_MAX_DIAMETER="${PDMS_BENCH_MAX_DIAMETER:-5}"
export PDMS_BENCH_TIME_BUDGET_MS="${PDMS_BENCH_TIME_BUDGET_MS:-2000}"

BENCHES=(
  fig3_tree_size
  fig4_time_to_rewritings
  peers_sweep
  ablation_optimizations
  degraded_answering
  sim_partition_sweep
  obs_overhead
  minicon_scaling
  eval_join
)

for bench in "${BENCHES[@]}"; do
  echo "== ${bench} =="
  "${BUILD_DIR}/bench/${bench}" --json "${JSON_DIR}/${bench}.json"
done

# Merge: [report, report, ...]
{
  printf '['
  first=1
  for bench in "${BENCHES[@]}"; do
    file="${JSON_DIR}/${bench}.json"
    [ -s "${file}" ] || continue
    if [ "${first}" -eq 0 ]; then printf ','; fi
    first=0
    # Each report file is one JSON object (trailing newline stripped).
    tr -d '\n' < "${file}"
  done
  printf ']\n'
} > "${OUT}"

echo "merged $(grep -c '"name"' "${OUT}" || true) reports into ${OUT}"

echo "== serving_throughput =="
"${BUILD_DIR}/bench/serving_throughput" --json "${JSON_DIR}/serving_throughput.json"
{
  printf '['
  tr -d '\n' < "${JSON_DIR}/serving_throughput.json"
  printf ']\n'
} > "${CACHE_OUT}"
echo "merged cache report into ${CACHE_OUT}"

echo "== serving_throughput (parallel) =="
PDMS_BENCH_THREADS="${PDMS_BENCH_THREADS:-4}" \
  "${BUILD_DIR}/bench/serving_throughput" \
  --json "${JSON_DIR}/serving_throughput_parallel.json"
{
  printf '['
  tr -d '\n' < "${JSON_DIR}/serving_throughput_parallel.json"
  printf ']\n'
} > "${PARALLEL_OUT}"
echo "merged parallel report into ${PARALLEL_OUT}"

echo "== churn_serving =="
# CI-sized churn: a smaller topology and request stream than the bench
# defaults (1000 peers / 400 requests); override via the environment.
PDMS_BENCH_PEERS="${PDMS_BENCH_PEERS:-300}" \
PDMS_BENCH_REQUESTS="${PDMS_BENCH_REQUESTS:-200}" \
  "${BUILD_DIR}/bench/churn_serving" --json "${JSON_DIR}/churn_serving.json"
{
  printf '['
  tr -d '\n' < "${JSON_DIR}/churn_serving.json"
  printf ']\n'
} > "${CHURN_OUT}"
echo "merged churn report into ${CHURN_OUT}"

echo "== serving_loadgen =="
# CI-sized open-loop sweep: fewer requests per load point than the bench
# default (200); override via the environment.
PDMS_BENCH_REQUESTS="${PDMS_BENCH_SERVE_REQUESTS:-120}" \
PDMS_BENCH_SLO_JSON="${JSON_DIR}/slo_scrape.json" \
  "${BUILD_DIR}/bench/serving_loadgen" --json "${JSON_DIR}/serving_loadgen.json"
{
  printf '['
  tr -d '\n' < "${JSON_DIR}/serving_loadgen.json"
  printf ']\n'
} > "${SERVING_OUT}"
echo "merged serving report into ${SERVING_OUT}"

echo "== eval_vectorized =="
# The engine comparison exits non-zero if any vectorized answer set
# diverges from the legacy engine, so the sweep doubles as a soundness
# gate.
"${BUILD_DIR}/bench/eval_vectorized" --json "${JSON_DIR}/eval_vectorized.json"
{
  printf '['
  tr -d '\n' < "${JSON_DIR}/eval_vectorized.json"
  printf ']\n'
} > "${EVAL_OUT}"
echo "merged eval report into ${EVAL_OUT}"

echo "== topology_latency =="
# Cost-aware vs cost-blind answer latency per topology shape
# (docs/network_cost_model.md). The bench exits non-zero if any
# cost-aware answer set diverges from the cost-blind twin, so the sweep
# doubles as a routing-equivalence gate.
"${BUILD_DIR}/bench/topology_latency" \
  --json "${JSON_DIR}/topology_latency.json"
{
  printf '['
  tr -d '\n' < "${JSON_DIR}/topology_latency.json"
  printf ']\n'
} > "${TOPOLOGY_OUT}"
echo "merged topology report into ${TOPOLOGY_OUT}"

# The SLO scrape: the server's own rolling-window snapshot, taken over
# the wire during the loadgen sweep, wrapped in the shared array shape.
if [ -s "${JSON_DIR}/slo_scrape.json" ]; then
  {
    printf '[{"name": "slo_scrape", "stats": '
    tr -d '\n' < "${JSON_DIR}/slo_scrape.json"
    printf '}]\n'
  } > "${SLO_OUT}"
  echo "merged SLO scrape into ${SLO_OUT}"
else
  echo "no SLO scrape produced; skipping ${SLO_OUT}"
fi
