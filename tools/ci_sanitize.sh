#!/usr/bin/env bash
# Builds the full tree with AddressSanitizer + UBSan and runs the test
# suite under them. Mirrors the "asan-ubsan" preset in CMakePresets.json
# but works with any CMake >= 3.16 (presets need 3.21).
#
# Usage: tools/ci_sanitize.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -g"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

cmake --build "${BUILD_DIR}" -j "${JOBS}"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
