// Cost-aware routing vs. cost-blind execution across network topologies
// (docs/network_cost_model.md): generates a replicated community PDMS,
// layers each link-map shape over it (uniform LAN, mesh, clustered WAN,
// hub-spoke), and answers queries whose neighborhoods sit across the
// expensive links — once cost-blind (legacy first-provider resolution,
// per-scan unicast) and once cost-aware (cheapest replica, relay-batched
// fan-out) — under the contention network model.
//
// Latency is simulated time to the last fetch settlement (the
// sim.resolve_ms histogram), so the numbers are deterministic in the
// seed. Every run asserts the two modes' answers are byte-identical —
// the bench doubles as an equivalence gate and exits non-zero on any
// divergence.
//
// Expected shape: ~1.0x on the uniform LAN (the cost model's identity
// element), and >= 2x on the clustered-WAN / hub-spoke rows, where the
// blind path pays a WAN round trip per scan that the cost-aware path
// routes to intra-zone replicas and batches over the trunk.
//
// Knobs: PDMS_BENCH_RUNS (default 6 queries per row), PDMS_BENCH_PEERS
// (default 48), PDMS_BENCH_SEED (default 1).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pdms/gen/topology.h"
#include "pdms/obs/metrics.h"
#include "pdms/sim/sim_pdms.h"

namespace pdms {
namespace {

struct Row {
  std::string shape;
  size_t levels = 1;
  double blind_median_ms = 0;
  double aware_median_ms = 0;
  double speedup = 0;
  size_t relay_batches = 0;
  size_t mismatches = 0;
};

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// One simulated answer; returns the resolve latency and appends the
// canonical answer text to `answers`.
double RunOnce(const gen::Topology& topology, const LinkMap& links,
               const ConjunctiveQuery& query, uint64_t seed, bool cost_aware,
               std::string* answers, size_t* relay_batches) {
  sim::SimOptions options;
  options.seed = seed;
  options.network_model = "contention";
  options.links = &links;
  options.request_timeout_ms = 400.0;  // above any queued WAN round trip
  options.reform.cost_aware = cost_aware;
  sim::SimPdms sim(topology.network, topology.data, options);
  obs::MetricsRegistry metrics;
  sim.set_metrics(&metrics);
  auto result = sim.Answer(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    *answers += "<error>";
    return 0;
  }
  *answers += result->answers.ToString();
  if (relay_batches != nullptr) {
    *relay_batches += result->degradation.messages.relay_batches;
  }
  auto histogram = metrics.FindHistogram("sim.resolve_ms");
  return histogram.has_value() ? histogram->sum : 0;
}

Row MeasureRow(const gen::Topology& topology, const LinkMap& links,
               const std::string& shape, size_t levels, size_t num_peers,
               size_t runs, uint64_t seed0) {
  Row row;
  row.shape = shape;
  row.levels = levels;
  std::vector<double> blind_ms;
  std::vector<double> aware_ms;
  // Queries land in the zone "antipodal" to the coordinator's: their
  // whole storage neighborhood is across the trunk from the blind
  // coordinator, while the replica ring (stride n/2) gives the cost-aware
  // coordinator a provider in its own zone.
  for (size_t r = 0; r < runs; ++r) {
    const size_t index = num_peers / 2 + (r * 3) % (num_peers / 4);
    const ConjunctiveQuery query = gen::TopologyQuery(index, levels);
    std::string blind_answers;
    std::string aware_answers;
    blind_ms.push_back(RunOnce(topology, links, query, seed0 + r,
                               /*cost_aware=*/false, &blind_answers, nullptr));
    aware_ms.push_back(RunOnce(topology, links, query, seed0 + r,
                               /*cost_aware=*/true, &aware_answers,
                               &row.relay_batches));
    if (blind_answers != aware_answers) ++row.mismatches;
  }
  row.blind_median_ms = Median(blind_ms);
  row.aware_median_ms = Median(aware_ms);
  row.speedup = row.aware_median_ms > 0
                    ? row.blind_median_ms / row.aware_median_ms
                    : 0;
  return row;
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("topology_latency", &argc, argv);
  const size_t runs = EnvSize("PDMS_BENCH_RUNS", 6);
  const size_t peers = std::max<size_t>(16, EnvSize("PDMS_BENCH_PEERS", 48));
  const uint64_t seed = EnvSize("PDMS_BENCH_SEED", 1);
  report.set_seed(seed);
  report.params()->Set("runs", runs);
  report.params()->Set("peers", peers);

  // One replicated community topology shared by every shape: 4 zones,
  // replicas half a ring away (so antipodal storage has a local replica).
  pdms::gen::TopologyConfig topo_config;
  topo_config.kind = pdms::gen::TopologyConfig::Kind::kCommunity;
  topo_config.num_peers = peers;
  topo_config.num_communities = 4;
  topo_config.levels = 2;
  topo_config.replicas = 1;
  topo_config.facts_per_stored = 3;
  topo_config.seed = seed;
  auto topology = pdms::gen::GenerateTopology(topo_config);
  if (!topology.ok()) {
    std::fprintf(stderr, "%s\n", topology.status().ToString().c_str());
    return 1;
  }

  // The same topology without replicas isolates the second lever: with a
  // single provider per relation the cost-aware path cannot route around
  // the trunk, it can only batch the fan-out into relay round-trips.
  pdms::gen::TopologyConfig norep_config = topo_config;
  norep_config.replicas = 0;
  norep_config.attach_edges = 4;  // wider fan-out per mediation level
  auto norep = pdms::gen::GenerateTopology(norep_config);
  if (!norep.ok()) {
    std::fprintf(stderr, "%s\n", norep.status().ToString().c_str());
    return 1;
  }

  struct Shape {
    const char* name;
    pdms::gen::LinkMapConfig config;
    const pdms::gen::Topology* topology;
  };
  std::vector<Shape> shapes;
  {
    pdms::gen::LinkMapConfig c;
    c.shape = pdms::gen::LinkMapConfig::Shape::kUniformLan;
    shapes.push_back({"uniform-lan", c, &*topology});
  }
  {
    pdms::gen::LinkMapConfig c;
    c.shape = pdms::gen::LinkMapConfig::Shape::kMesh;
    c.mesh_width = 8;
    c.lan_latency_ms = 2.0;  // per Manhattan hop
    shapes.push_back({"mesh", c, &*topology});
  }
  {
    pdms::gen::LinkMapConfig c;
    c.shape = pdms::gen::LinkMapConfig::Shape::kClusteredWan;
    c.wan_per_message_ms = 0.5;  // the trunks queue under fan-out
    shapes.push_back({"clustered-wan", c, &*topology});
  }
  {
    pdms::gen::LinkMapConfig c;
    c.shape = pdms::gen::LinkMapConfig::Shape::kClusteredWan;
    c.wan_per_message_ms = 8.0;  // occupancy-dominated trunk
    shapes.push_back({"wan-trunk-norep", c, &*norep});
  }
  {
    pdms::gen::LinkMapConfig c;
    c.shape = pdms::gen::LinkMapConfig::Shape::kHubSpoke;
    c.wan_per_message_ms = 0.5;
    shapes.push_back({"hub-spoke", c, &*topology});
  }

  std::printf(
      "# Cost-aware vs cost-blind answer latency (%zu peers, 4 zones, "
      "1 replica, contention model, median of %zu queries)\n",
      peers, runs);
  std::printf("%-14s %7s %14s %14s %9s %8s %6s\n", "shape", "levels",
              "blind_ms", "cost_aware_ms", "speedup", "relays", "equal");
  size_t mismatches = 0;
  double best_nonuniform_speedup = 0;
  for (const Shape& shape : shapes) {
    pdms::LinkMap links =
        pdms::gen::GenerateLinkMap(*shape.topology, shape.config);
    // Diameter sweep: deeper mediation levels widen the fetched
    // neighborhood, stacking more scans onto the expensive links.
    for (size_t levels : {1u, 2u}) {
      pdms::Row row = pdms::MeasureRow(*shape.topology, links, shape.name,
                                       levels, peers, runs, seed);
      std::printf("%-14s %7zu %14.2f %14.2f %8.2fx %8zu %6s\n",
                  row.shape.c_str(), row.levels, row.blind_median_ms,
                  row.aware_median_ms, row.speedup, row.relay_batches,
                  row.mismatches == 0 ? "yes" : "NO");
      std::fflush(stdout);
      mismatches += row.mismatches;
      if (row.shape != "uniform-lan") {
        best_nonuniform_speedup =
            std::max(best_nonuniform_speedup, row.speedup);
      }
      pdms::bench::JsonObject* out = report.AddMetricRow();
      out->Set("shape", row.shape);
      out->Set("levels", row.levels);
      out->Set("blind_median_ms", row.blind_median_ms);
      out->Set("cost_aware_median_ms", row.aware_median_ms);
      out->Set("speedup", row.speedup);
      out->Set("relay_batches", row.relay_batches);
      out->Set("answer_mismatches", row.mismatches);
    }
  }
  if (mismatches > 0) {
    std::printf("# ERROR: %zu run(s) returned different answers cost-aware "
                "vs cost-blind\n",
                mismatches);
    return 1;
  }
  std::printf("# all cost-aware answer sets byte-identical to cost-blind; "
              "best non-uniform speedup %.2fx\n",
              best_nonuniform_speedup);
  return report.Write() ? 0 : 1;
}
