// Substrate micro-benchmark (google-benchmark): the conjunctive-query
// evaluator and the semi-naive datalog engine that execute reformulated
// queries over stored relations.

#include <benchmark/benchmark.h>

#include "gbench_json.h"

#include "pdms/data/database.h"
#include "pdms/eval/datalog.h"
#include "pdms/eval/evaluator.h"
#include "pdms/lang/parser.h"
#include "pdms/util/check.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace {

Database RandomEdges(size_t tuples, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  Database db;
  for (size_t i = 0; i < tuples; ++i) {
    db.Insert("edge", {Value::Int(rng.UniformInt(0, domain - 1)),
                       Value::Int(rng.UniformInt(0, domain - 1))});
  }
  return db;
}

ConjunctiveQuery Q(const char* text) {
  auto r = ParseRuleText(text);
  PDMS_CHECK(r.ok());
  return *r;
}

void BM_TwoWayJoin(benchmark::State& state) {
  size_t tuples = static_cast<size_t>(state.range(0));
  Database db = RandomEdges(tuples, static_cast<int64_t>(tuples / 4), 7);
  ConjunctiveQuery query = Q("q(x, z) :- edge(x, y), edge(y, z).");
  for (auto _ : state) {
    auto result = EvaluateCQ(query, db);
    PDMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tuples));
}
BENCHMARK(BM_TwoWayJoin)->Arg(100)->Arg(400)->Arg(1600);

void BM_SelectiveJoinWithComparison(benchmark::State& state) {
  size_t tuples = static_cast<size_t>(state.range(0));
  Database db = RandomEdges(tuples, static_cast<int64_t>(tuples / 4), 9);
  ConjunctiveQuery query =
      Q("q(x, z) :- edge(x, y), edge(y, z), x < 10, z > 5.");
  for (auto _ : state) {
    auto result = EvaluateCQ(query, db);
    PDMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_SelectiveJoinWithComparison)->Arg(400)->Arg(1600);

void BM_DatalogTransitiveClosure(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Database db;
  for (size_t i = 0; i + 1 < nodes; ++i) {
    db.Insert("edge", {Value::Int(static_cast<int64_t>(i)),
                       Value::Int(static_cast<int64_t>(i + 1))});
  }
  std::vector<Rule> program = {
      Q("tc(x, y) :- edge(x, y)."),
      Q("tc(x, z) :- tc(x, y), edge(y, z)."),
  };
  for (auto _ : state) {
    auto result = EvaluateDatalog(program, db);
    PDMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->Find("tc")->size());
  }
}
BENCHMARK(BM_DatalogTransitiveClosure)->Arg(32)->Arg(64)->Arg(128);

void BM_UnionOfRewritings(benchmark::State& state) {
  // Evaluate a union like the ones reformulation emits: many small
  // conjunctive queries over one instance.
  size_t disjuncts = static_cast<size_t>(state.range(0));
  Database db = RandomEdges(800, 100, 11);
  UnionQuery uq;
  for (size_t i = 0; i < disjuncts; ++i) {
    uq.Add(Q(("q(x, z) :- edge(x, y), edge(y, z), y = " +
              std::to_string(i) + ".")
                 .c_str()));
  }
  for (auto _ : state) {
    auto result = EvaluateUnion(uq, db);
    PDMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_UnionOfRewritings)->Arg(8)->Arg(64);

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  return pdms::bench::GbenchJsonMain("eval_join", argc, argv);
}
