// Substrate micro-benchmark (google-benchmark): the conjunctive-query
// evaluator and the semi-naive datalog engine that execute reformulated
// queries over stored relations.

#include <benchmark/benchmark.h>

#include "gbench_json.h"

#include "pdms/data/database.h"
#include "pdms/eval/datalog.h"
#include "pdms/eval/evaluator.h"
#include "pdms/lang/parser.h"
#include "pdms/util/check.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace {

Database RandomEdges(size_t tuples, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  Database db;
  for (size_t i = 0; i < tuples; ++i) {
    db.Insert("edge", {Value::Int(rng.UniformInt(0, domain - 1)),
                       Value::Int(rng.UniformInt(0, domain - 1))});
  }
  return db;
}

ConjunctiveQuery Q(const char* text) {
  auto r = ParseRuleText(text);
  PDMS_CHECK(r.ok());
  return *r;
}

void BM_TwoWayJoin(benchmark::State& state) {
  size_t tuples = static_cast<size_t>(state.range(0));
  Database db = RandomEdges(tuples, static_cast<int64_t>(tuples / 4), 7);
  ConjunctiveQuery query = Q("q(x, z) :- edge(x, y), edge(y, z).");
  for (auto _ : state) {
    auto result = EvaluateCQ(query, db);
    PDMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tuples));
}
BENCHMARK(BM_TwoWayJoin)->Arg(100)->Arg(400)->Arg(1600);

void BM_SelectiveJoinWithComparison(benchmark::State& state) {
  size_t tuples = static_cast<size_t>(state.range(0));
  Database db = RandomEdges(tuples, static_cast<int64_t>(tuples / 4), 9);
  ConjunctiveQuery query =
      Q("q(x, z) :- edge(x, y), edge(y, z), x < 10, z > 5.");
  for (auto _ : state) {
    auto result = EvaluateCQ(query, db);
    PDMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_SelectiveJoinWithComparison)->Arg(400)->Arg(1600);

void BM_DatalogTransitiveClosure(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Database db;
  for (size_t i = 0; i + 1 < nodes; ++i) {
    db.Insert("edge", {Value::Int(static_cast<int64_t>(i)),
                       Value::Int(static_cast<int64_t>(i + 1))});
  }
  std::vector<Rule> program = {
      Q("tc(x, y) :- edge(x, y)."),
      Q("tc(x, z) :- tc(x, y), edge(y, z)."),
  };
  for (auto _ : state) {
    auto result = EvaluateDatalog(program, db);
    PDMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->Find("tc")->size());
  }
}
BENCHMARK(BM_DatalogTransitiveClosure)->Arg(32)->Arg(64)->Arg(128);

// Reference string-keyed join: variable bindings in a string->Value hash
// map that is copied and probed per tuple — a straightforward map-based
// backtracking join, without the shipped engine's slot compilation, index
// probes, or greedy atom reordering. Kept here (not in the library)
// purely as the baseline for BM_SlotVsStringBinding; the delta is the
// combined win of the compiled representation over the naive approach.
size_t StringBindingJoin(const ConjunctiveQuery& query, const Database& db) {
  size_t matches = 0;
  std::function<void(size_t, BindingMap)> search = [&](size_t depth,
                                                       BindingMap bound) {
    if (depth == query.body().size()) {
      for (const Comparison& c : query.comparisons()) {
        if ((c.lhs.is_variable() && bound.count(c.lhs.var_name()) == 0) ||
            (c.rhs.is_variable() && bound.count(c.rhs.var_name()) == 0)) {
          continue;  // never-ground comparison: ignored, as the engine does
        }
        Value lhs = c.lhs.is_variable() ? bound.at(c.lhs.var_name())
                                        : c.lhs.value();
        Value rhs = c.rhs.is_variable() ? bound.at(c.rhs.var_name())
                                        : c.rhs.value();
        if (!EvalCmp(c.op, lhs, rhs)) return;
      }
      ++matches;
      return;
    }
    const Atom& atom = query.body()[depth];
    const Relation* rel = db.Find(atom.predicate());
    if (rel == nullptr) return;
    for (const Tuple& t : rel->tuples()) {
      BindingMap next = bound;  // the per-tuple copy the slot engine removed
      bool ok = true;
      for (size_t i = 0; i < atom.arity() && ok; ++i) {
        const Term& term = atom.args()[i];
        if (term.is_constant()) {
          ok = term.value() == t[i];
        } else {
          auto [it, inserted] = next.emplace(term.var_name(), t[i]);
          if (!inserted) ok = it->second == t[i];
        }
      }
      if (ok) search(depth + 1, std::move(next));
    }
  };
  search(0, BindingMap{});
  return matches;
}

void BM_SlotVsStringBinding(benchmark::State& state) {
  // state.range(1) == 1 selects the shipped slot-compiled engine; 0 the
  // string-map reference. Same query, same data: the delta is pure
  // binding-representation cost.
  size_t tuples = static_cast<size_t>(state.range(0));
  Database db = RandomEdges(tuples, static_cast<int64_t>(tuples / 4), 13);
  ConjunctiveQuery query = Q("q(x, w) :- edge(x, y), edge(y, z), edge(z, w).");
  bool slots = state.range(1) == 1;
  auto reference = EvaluateCQ(query, db);
  PDMS_CHECK(reference.ok());
  for (auto _ : state) {
    if (slots) {
      auto result = EvaluateCQ(query, db);
      PDMS_CHECK(result.ok());
      benchmark::DoNotOptimize(result->size());
    } else {
      benchmark::DoNotOptimize(StringBindingJoin(query, db));
    }
  }
  state.SetLabel(slots ? "slot_compiled" : "string_map");
}
BENCHMARK(BM_SlotVsStringBinding)
    ->Args({400, 0})
    ->Args({400, 1})
    ->Args({1600, 0})
    ->Args({1600, 1});

void BM_UnionOfRewritings(benchmark::State& state) {
  // Evaluate a union like the ones reformulation emits: many small
  // conjunctive queries over one instance.
  size_t disjuncts = static_cast<size_t>(state.range(0));
  Database db = RandomEdges(800, 100, 11);
  UnionQuery uq;
  for (size_t i = 0; i < disjuncts; ++i) {
    uq.Add(Q(("q(x, z) :- edge(x, y), edge(y, z), y = " +
              std::to_string(i) + ".")
                 .c_str()));
  }
  for (auto _ : state) {
    auto result = EvaluateUnion(uq, db);
    PDMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_UnionOfRewritings)->Arg(8)->Arg(64);

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  return pdms::bench::GbenchJsonMain("eval_join", argc, argv);
}
