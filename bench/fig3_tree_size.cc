// Reproduces Figure 3: the size of the rule-goal tree (number of nodes)
// as a function of the PDMS diameter, for a 96-peer PDMS and varying
// percentages of definitional peer mappings (%dd in {0, 10, 25, 50}).
//
// The paper reports, on a log scale: (a) tree size grows roughly
// exponentially with the diameter (reaching tens of thousands of nodes by
// diameter 8-10); (b) a higher share of definitional mappings yields
// larger trees (definitional mappings come as unions of conjunctive
// queries, raising the branching factor); (c) node generation rates around
// 1,000 nodes/second on 2003 hardware (we print ours for comparison).
//
// Knobs: PDMS_BENCH_RUNS (default 5; the paper averaged 100),
// PDMS_BENCH_MAX_DIAMETER (default 10), PDMS_BENCH_PEERS (default 96).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "pdms/core/reformulator.h"
#include "pdms/gen/workload.h"
#include "pdms/util/timer.h"

namespace pdms {
namespace {

struct Point {
  double avg_nodes = 0;
  double avg_build_ms = 0;
  size_t truncated = 0;
};

Point MeasurePoint(size_t peers, size_t diameter, double dd, size_t runs) {
  Point point;
  for (size_t run = 0; run < runs; ++run) {
    gen::WorkloadConfig config;
    config.num_peers = peers;
    config.num_strata = diameter;
    config.definitional_fraction = dd;
    config.providers_per_relation = 1;
    config.seed = 1000 * diameter + run;
    auto workload = gen::GenerateWorkload(config);
    if (!workload.ok()) {
      std::fprintf(stderr, "generator: %s\n",
                   workload.status().ToString().c_str());
      continue;
    }
    ReformulationOptions options;
    options.max_tree_nodes = 2u * 1000 * 1000;
    Reformulator reformulator(workload->network, options);
    WallTimer timer;
    auto tree = reformulator.BuildTree(workload->query);
    double ms = timer.ElapsedMillis();
    if (!tree.ok()) continue;
    point.avg_nodes += static_cast<double>(tree->stats.total_nodes());
    point.avg_build_ms += ms;
    if (tree->stats.tree_truncated) ++point.truncated;
  }
  point.avg_nodes /= static_cast<double>(runs);
  point.avg_build_ms /= static_cast<double>(runs);
  return point;
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("fig3_tree_size", &argc, argv);
  size_t runs = EnvSize("PDMS_BENCH_RUNS", 5);
  size_t max_diameter = EnvSize("PDMS_BENCH_MAX_DIAMETER", 10);
  size_t peers = EnvSize("PDMS_BENCH_PEERS", 96);
  report.params()->Set("runs", runs);
  report.params()->Set("max_diameter", max_diameter);
  report.params()->Set("peers", peers);

  std::printf(
      "# Figure 3: rule-goal tree size vs. PDMS diameter (%zu peers, "
      "avg of %zu runs)\n",
      peers, runs);
  std::printf("# paper: log-scale growth to ~30,000 nodes at diameter 8; "
              "larger %%dd => larger trees\n");
  std::printf("%-9s %12s %12s %12s %12s\n", "diameter", "dd=0%", "dd=10%",
              "dd=25%", "dd=50%");
  double total_nodes = 0;
  double total_ms = 0;
  for (size_t diameter = 1; diameter <= max_diameter; ++diameter) {
    std::printf("%-9zu", diameter);
    for (double dd : {0.0, 0.10, 0.25, 0.50}) {
      pdms::Point p = pdms::MeasurePoint(peers, diameter, dd, runs);
      std::printf(" %12.0f", p.avg_nodes);
      total_nodes += p.avg_nodes * static_cast<double>(runs);
      total_ms += p.avg_build_ms * static_cast<double>(runs);
      pdms::bench::JsonObject* row = report.AddMetricRow();
      row->Set("diameter", diameter);
      row->Set("definitional_fraction", dd);
      row->Set("avg_nodes", p.avg_nodes);
      row->Set("avg_build_ms", p.avg_build_ms);
      row->Set("truncated_runs", p.truncated);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  if (total_ms > 0) {
    std::printf("# node generation rate: %.0f nodes/second "
                "(paper: ~1,000 on 2003 hardware)\n",
                1000.0 * total_nodes / total_ms);
  }
  return report.Write() ? 0 : 1;
}
