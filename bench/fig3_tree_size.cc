// Reproduces Figure 3: the size of the rule-goal tree (number of nodes)
// as a function of the PDMS diameter, for a 96-peer PDMS and varying
// percentages of definitional peer mappings (%dd in {0, 10, 25, 50}).
//
// The paper reports, on a log scale: (a) tree size grows roughly
// exponentially with the diameter (reaching tens of thousands of nodes by
// diameter 8-10); (b) a higher share of definitional mappings yields
// larger trees (definitional mappings come as unions of conjunctive
// queries, raising the branching factor); (c) node generation rates around
// 1,000 nodes/second on 2003 hardware (we print ours for comparison).
//
// Knobs: PDMS_BENCH_RUNS (default 5; the paper averaged 100),
// PDMS_BENCH_MAX_DIAMETER (default 10), PDMS_BENCH_PEERS (default 96).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pdms/core/reformulator.h"
#include "pdms/gen/workload.h"
#include "pdms/obs/export.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/util/timer.h"

namespace pdms {
namespace {

struct Point {
  double avg_nodes = 0;
  double avg_build_ms = 0;
  size_t truncated = 0;
};

Point MeasurePoint(size_t peers, size_t diameter, double dd, size_t runs) {
  Point point;
  for (size_t run = 0; run < runs; ++run) {
    gen::WorkloadConfig config;
    config.num_peers = peers;
    config.num_strata = diameter;
    config.definitional_fraction = dd;
    config.providers_per_relation = 1;
    config.seed = 1000 * diameter + run;
    auto workload = gen::GenerateWorkload(config);
    if (!workload.ok()) {
      std::fprintf(stderr, "generator: %s\n",
                   workload.status().ToString().c_str());
      continue;
    }
    ReformulationOptions options;
    options.max_tree_nodes = 2u * 1000 * 1000;
    Reformulator reformulator(workload->network, options);
    WallTimer timer;
    auto tree = reformulator.BuildTree(workload->query);
    double ms = timer.ElapsedMillis();
    if (!tree.ok()) continue;
    point.avg_nodes += static_cast<double>(tree->stats.total_nodes());
    point.avg_build_ms += ms;
    if (tree->stats.tree_truncated) ++point.truncated;
  }
  point.avg_nodes /= static_cast<double>(runs);
  point.avg_build_ms /= static_cast<double>(runs);
  return point;
}

// Runs one instrumented workload reformulation, filling `metrics` so the
// report can embed the registry snapshot; with a non-empty `path` also
// writes the span tree as Chrome-trace JSON (the CI trace-export smoke).
int RunInstrumented(const std::string& path, size_t peers,
                    obs::MetricsRegistry* metrics) {
  gen::WorkloadConfig config;
  config.num_peers = peers;
  config.num_strata = 4;
  config.definitional_fraction = 0.25;
  config.providers_per_relation = 1;
  config.seed = 4001;
  auto workload = gen::GenerateWorkload(config);
  if (!workload.ok()) {
    std::fprintf(stderr, "generator: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  obs::TraceContext trace("fig3");
  ReformulationOptions options;
  options.max_tree_nodes = 2u * 1000 * 1000;
  options.trace = &trace;
  options.metrics = metrics;
  Reformulator reformulator(workload->network, options);
  auto result = reformulator.Reformulate(workload->query);
  if (!result.ok()) {
    std::fprintf(stderr, "reformulate: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (path.empty()) return 0;
  Status written = obs::WriteChromeTrace(trace, path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu spans)\n", path.c_str(),
               trace.spans().size());
  return 0;
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("fig3_tree_size", &argc, argv);
  // --trace <file>: dump one instrumented run as Chrome-trace JSON.
  std::string trace_path;
  int out_arg = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else {
      argv[out_arg++] = argv[i];
    }
  }
  argc = out_arg;
  size_t runs = EnvSize("PDMS_BENCH_RUNS", 5);
  size_t max_diameter = EnvSize("PDMS_BENCH_MAX_DIAMETER", 10);
  size_t peers = EnvSize("PDMS_BENCH_PEERS", 96);
  report.params()->Set("runs", runs);
  report.params()->Set("max_diameter", max_diameter);
  report.params()->Set("peers", peers);

  std::printf(
      "# Figure 3: rule-goal tree size vs. PDMS diameter (%zu peers, "
      "avg of %zu runs)\n",
      peers, runs);
  std::printf("# paper: log-scale growth to ~30,000 nodes at diameter 8; "
              "larger %%dd => larger trees\n");
  std::printf("%-9s %12s %12s %12s %12s\n", "diameter", "dd=0%", "dd=10%",
              "dd=25%", "dd=50%");
  double total_nodes = 0;
  double total_ms = 0;
  for (size_t diameter = 1; diameter <= max_diameter; ++diameter) {
    std::printf("%-9zu", diameter);
    for (double dd : {0.0, 0.10, 0.25, 0.50}) {
      pdms::Point p = pdms::MeasurePoint(peers, diameter, dd, runs);
      std::printf(" %12.0f", p.avg_nodes);
      total_nodes += p.avg_nodes * static_cast<double>(runs);
      total_ms += p.avg_build_ms * static_cast<double>(runs);
      pdms::bench::JsonObject* row = report.AddMetricRow();
      row->Set("diameter", diameter);
      row->Set("definitional_fraction", dd);
      row->Set("avg_nodes", p.avg_nodes);
      row->Set("avg_build_ms", p.avg_build_ms);
      row->Set("truncated_runs", p.truncated);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  if (total_ms > 0) {
    std::printf("# node generation rate: %.0f nodes/second "
                "(paper: ~1,000 on 2003 hardware)\n",
                1000.0 * total_nodes / total_ms);
  }
  // One instrumented run rides along: its registry snapshot is merged into
  // the JSON report and --trace dumps its span tree for chrome://tracing.
  if (!trace_path.empty() || report.enabled()) {
    pdms::obs::MetricsRegistry registry;
    int rc = pdms::RunInstrumented(trace_path, peers, &registry);
    if (rc != 0) return rc;
    if (report.enabled()) report.SetExtra("registry", registry.ToJson());
  }
  return report.Write() ? 0 : 1;
}
