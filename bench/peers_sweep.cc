// Section 5 (text): "the number of peers at every stratum has relatively
// little effect [on the rule-goal tree], because it is usually the case
// that most of them are irrelevant to a given query."
//
// This bench fixes the diameter and sweeps the number of peers; the tree
// size should stay within a small factor while the network size grows 8x.
//
// Knobs: PDMS_BENCH_RUNS (default 10), PDMS_BENCH_DIAMETER (default 5).

#include <cstdio>

#include "bench_util.h"
#include "pdms/core/reformulator.h"
#include "pdms/gen/workload.h"
#include "pdms/util/timer.h"

int main(int argc, char** argv) {
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("peers_sweep", &argc, argv);
  size_t runs = EnvSize("PDMS_BENCH_RUNS", 10);
  size_t diameter = EnvSize("PDMS_BENCH_DIAMETER", 5);
  report.params()->Set("runs", runs);
  report.params()->Set("diameter", diameter);

  std::printf("# Tree size vs. number of peers at fixed diameter %zu "
              "(10%% dd, avg of %zu runs)\n",
              diameter, runs);
  std::printf("# paper: peers per stratum has relatively little effect\n");
  std::printf("%-8s %12s %14s %12s\n", "peers", "nodes", "mappings",
              "build (ms)");
  for (size_t peers : {24, 48, 96, 192}) {
    double nodes = 0;
    double mappings = 0;
    double ms = 0;
    for (size_t run = 0; run < runs; ++run) {
      pdms::gen::WorkloadConfig config;
      config.num_peers = peers;
      config.num_strata = diameter;
      config.definitional_fraction = 0.10;
      config.providers_per_relation = 1;
      config.seed = 3000 + run;
      auto workload = pdms::gen::GenerateWorkload(config);
      if (!workload.ok()) continue;
      pdms::Reformulator reformulator(workload->network);
      pdms::WallTimer timer;
      auto tree = reformulator.BuildTree(workload->query);
      double elapsed = timer.ElapsedMillis();
      if (!tree.ok()) continue;
      nodes += static_cast<double>(tree->stats.total_nodes());
      mappings +=
          static_cast<double>(workload->network.peer_mappings().size());
      ms += elapsed;
    }
    std::printf("%-8zu %12.0f %14.0f %12.2f\n", peers,
                nodes / static_cast<double>(runs),
                mappings / static_cast<double>(runs),
                ms / static_cast<double>(runs));
    std::fflush(stdout);
    pdms::bench::JsonObject* row = report.AddMetricRow();
    row->Set("peers", peers);
    row->Set("avg_nodes", nodes / static_cast<double>(runs));
    row->Set("avg_mappings", mappings / static_cast<double>(runs));
    row->Set("avg_build_ms", ms / static_cast<double>(runs));
  }
  return report.Write() ? 0 : 1;
}
