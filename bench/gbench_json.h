#ifndef PDMS_BENCH_GBENCH_JSON_H_
#define PDMS_BENCH_GBENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"

namespace pdms {
namespace bench {

/// Captures every finished google-benchmark run into the shared JsonReport
/// schema (one metrics row per benchmark instance) while still printing
/// the usual console table.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(JsonReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      JsonObject* row = report_->AddMetricRow();
      row->Set("benchmark", run.benchmark_name());
      row->Set("iterations", static_cast<size_t>(run.iterations));
      row->Set("real_time", run.GetAdjustedRealTime());
      row->Set("cpu_time", run.GetAdjustedCPUTime());
      row->Set("time_unit", benchmark::GetTimeUnitString(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  JsonReport* report_;
};

/// Drop-in replacement for BENCHMARK_MAIN() that also understands
/// `--json out.json` (stripped before google-benchmark sees the args).
inline int GbenchJsonMain(const char* name, int argc, char** argv) {
  JsonReport report(name, &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return report.Write() ? 0 : 1;
}

}  // namespace bench
}  // namespace pdms

#endif  // PDMS_BENCH_GBENCH_JSON_H_
