// Serving under live churn: a Zipf-skewed query stream over a power-law
// topology (1k peers by default) interleaved with catalog churn — mapping
// edits/adds/removes, peers leaving and rejoining, stored relations
// flipping, fact inserts — served twice over identically-evolving worlds:
// once with dependency-tracked invalidation and once with wholesale
// clearing (every catalog movement empties the cache). Reports the
// sustained hit rate of both modes plus p50/p99 serving latency, and
// asserts the two modes answer every request byte-identically.
//
// The point of the comparison: under steady churn, wholesale clearing
// goes cold after every event, while dependency tracking only drops the
// plans the event actually touched (docs/churn_invalidation.md).
//
// Knobs: PDMS_BENCH_PEERS (default 1000), PDMS_BENCH_LEVELS (2),
// PDMS_BENCH_REQUESTS (400), PDMS_BENCH_CHURN_EVERY (4),
// PDMS_BENCH_SEED (1).

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pdms/cache/goal_memo.h"
#include "pdms/cache/plan_cache.h"
#include "pdms/core/pdms.h"
#include "pdms/gen/topology.h"
#include "pdms/sim/churn.h"
#include "pdms/util/rng.h"
#include "pdms/util/timer.h"

namespace {

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("churn_serving", &argc, argv);
  size_t peers = EnvSize("PDMS_BENCH_PEERS", 1000);
  size_t levels = EnvSize("PDMS_BENCH_LEVELS", 2);
  size_t requests = EnvSize("PDMS_BENCH_REQUESTS", 400);
  size_t churn_every = std::max<size_t>(1, EnvSize("PDMS_BENCH_CHURN_EVERY", 4));
  uint64_t seed = EnvSize("PDMS_BENCH_SEED", 1);
  report.set_seed(seed);
  report.params()->Set("peers", peers);
  report.params()->Set("levels", levels);
  report.params()->Set("requests", requests);
  report.params()->Set("churn_every", churn_every);

  pdms::gen::TopologyConfig config;
  config.kind = pdms::gen::TopologyConfig::Kind::kPowerLaw;
  config.num_peers = peers;
  config.levels = levels;
  config.attach_edges = 2;
  config.facts_per_stored = 2;
  config.seed = seed;
  auto topology = pdms::gen::GenerateTopology(config);
  if (!topology.ok()) {
    std::fprintf(stderr, "topology generation failed: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }

  // Two serving stacks over identically-evolving worlds: each facade owns
  // its copy of the catalog, and a seeded churn driver per copy replays
  // the same event sequence against both (the driver is deterministic in
  // its seed and the starting network).
  pdms::Pdms tracked;
  *tracked.mutable_network() = topology->network;
  *tracked.mutable_database() = topology->data;
  pdms::cache::PlanCache tracked_plans;
  pdms::cache::GoalMemo tracked_memo;
  tracked.set_plan_cache(&tracked_plans);
  tracked.set_goal_memo(&tracked_memo);

  pdms::Pdms wholesale;
  *wholesale.mutable_network() = topology->network;
  *wholesale.mutable_database() = topology->data;
  pdms::cache::PlanCache wholesale_plans;
  wholesale_plans.set_wholesale_invalidation(true);
  pdms::cache::GoalMemo wholesale_memo;
  wholesale.set_plan_cache(&wholesale_plans);
  wholesale.set_goal_memo(&wholesale_memo);

  // Catalog + data churn only: transport crashes are meaningless for the
  // in-process facade (the simulated runtime pays for those; see
  // tests/churn_dst_test.cc).
  pdms::sim::ChurnConfig churn;
  churn.seed = seed + 1;
  churn.w_crash = 0;
  churn.w_recover = 0;
  churn.w_peer_join = 0;  // joins would skew the two Zipf streams apart
  pdms::sim::ChurnDriver tracked_churn(churn, tracked.mutable_network(),
                                       tracked.mutable_database());
  pdms::sim::ChurnDriver wholesale_churn(churn, wholesale.mutable_network(),
                                         wholesale.mutable_database());

  pdms::Rng stream(seed * 7919 + 17);
  std::vector<double> tracked_ms, wholesale_ms;
  std::map<std::string, size_t> events;
  size_t writes = 0;
  for (size_t r = 0; r < requests; ++r) {
    if (r > 0 && r % churn_every == 0) {
      pdms::sim::ChurnEvent a = tracked_churn.Step();
      pdms::sim::ChurnEvent b = wholesale_churn.Step();
      if (a.ToString() != b.ToString()) {
        std::fprintf(stderr, "churn divergence at request %zu: %s vs %s\n", r,
                     a.ToString().c_str(), b.ToString().c_str());
        return 1;
      }
      ++events[pdms::sim::ChurnEventKindName(a.kind)];
      ++writes;
    }
    // Zipf-flavored peer pick: u^2 concentrates on the low (hub) indices.
    double u = stream.UniformDouble();
    size_t peer = static_cast<size_t>(u * u * static_cast<double>(peers));
    if (peer >= peers) peer = peers - 1;
    pdms::ConjunctiveQuery query = pdms::gen::TopologyQuery(peer, levels);

    pdms::WallTimer t1;
    auto expect = tracked.Answer(query);
    tracked_ms.push_back(t1.ElapsedMillis());
    pdms::WallTimer t2;
    auto actual = wholesale.Answer(query);
    wholesale_ms.push_back(t2.ElapsedMillis());
    if (!expect.ok() || !actual.ok()) {
      std::fprintf(stderr, "request %zu failed: %s\n", r,
                   (!expect.ok() ? expect.status() : actual.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    if (expect->ToString() != actual->ToString()) {
      std::fprintf(stderr,
                   "ANSWER MISMATCH at request %zu (%s):\ntracked:\n%s\n"
                   "wholesale:\n%s\n",
                   r, query.ToString().c_str(), expect->ToString().c_str(),
                   actual->ToString().c_str());
      return 1;
    }
  }

  auto hit_rate = [](const pdms::cache::PlanCacheStats& s) {
    size_t lookups = s.hits + s.misses;
    return lookups > 0 ? static_cast<double>(s.hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  };
  pdms::cache::PlanCacheStats ts = tracked_plans.stats();
  pdms::cache::PlanCacheStats ws = wholesale_plans.stats();
  double tracked_total = 0, wholesale_total = 0;
  for (double ms : tracked_ms) tracked_total += ms;
  for (double ms : wholesale_ms) wholesale_total += ms;

  std::printf("# Churn serving: %zu requests, churn every %zu "
              "(%zu write events), %zu peers, %zu levels\n",
              requests, churn_every, writes, peers, levels);
  std::printf("%-26s %12s %12s\n", "", "tracked", "wholesale");
  std::printf("%-26s %11.1f%% %11.1f%%\n", "sustained hit rate",
              100.0 * hit_rate(ts), 100.0 * hit_rate(ws));
  std::printf("%-26s %12zu %12zu\n", "invalidations", ts.invalidations,
              ws.invalidations);
  std::printf("%-26s %12.3f %12.3f\n", "p50 latency (ms)",
              Percentile(tracked_ms, 0.5), Percentile(wholesale_ms, 0.5));
  std::printf("%-26s %12.3f %12.3f\n", "p99 latency (ms)",
              Percentile(tracked_ms, 0.99), Percentile(wholesale_ms, 0.99));
  std::printf("%-26s %12.1f %12.1f\n", "queries/sec",
              tracked_total > 0 ? 1000.0 * requests / tracked_total : 0,
              wholesale_total > 0 ? 1000.0 * requests / wholesale_total : 0);
  std::printf("churn mix:");
  for (const auto& [kind, count] : events) {
    std::printf(" %s=%zu", kind.c_str(), count);
  }
  std::printf("\nall %zu requests answered identically by both modes\n",
              requests);

  pdms::bench::JsonObject* row = report.AddMetricRow();
  row->Set("writes", writes);
  row->Set("hit_rate_tracked", hit_rate(ts));
  row->Set("hit_rate_wholesale", hit_rate(ws));
  row->Set("invalidations_tracked", ts.invalidations);
  row->Set("invalidations_wholesale", ws.invalidations);
  row->Set("p50_ms_tracked", Percentile(tracked_ms, 0.5));
  row->Set("p99_ms_tracked", Percentile(tracked_ms, 0.99));
  row->Set("p50_ms_wholesale", Percentile(wholesale_ms, 0.5));
  row->Set("p99_ms_wholesale", Percentile(wholesale_ms, 0.99));
  row->Set("qps_tracked",
           tracked_total > 0 ? 1000.0 * requests / tracked_total : 0);
  row->Set("qps_wholesale",
           wholesale_total > 0 ? 1000.0 * requests / wholesale_total : 0);
  row->Set("goal_memo_hits_tracked", tracked_memo.stats().hits);
  for (const auto& [kind, count] : events) {
    row->Set("churn_" + kind, count);
  }
  return report.Write() ? 0 : 1;
}
