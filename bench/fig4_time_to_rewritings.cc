// Reproduces Figure 4: the running time (milliseconds, measured from query
// submission) until the 1st rewriting, the 10th rewriting, and all
// rewritings have been produced, as a function of the PDMS diameter
// (96 peers, 10% definitional mappings).
//
// The paper's observations: the first rewritings arrive quickly (under ~3
// seconds at diameter 8 on 2003 hardware) even though enumerating all
// rewritings takes orders of magnitude longer — step 3 (solution
// construction) is the bottleneck, so producing first rewritings fast
// matters. We use the streaming enumerator; "all" is capped by
// PDMS_BENCH_MAX_REWRITINGS (default 20,000) and a per-point time budget
// (PDMS_BENCH_TIME_BUDGET_MS, default 5,000) — points that hit a cap are
// marked '>'.
//
// Knobs: PDMS_BENCH_RUNS (default 3), PDMS_BENCH_MAX_DIAMETER (default 8),
// PDMS_BENCH_PEERS (default 96).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "pdms/core/reformulator.h"
#include "pdms/gen/workload.h"
#include "pdms/obs/metrics.h"

namespace pdms {
namespace {

struct Point {
  double first_ms = 0;
  double tenth_ms = 0;
  double all_ms = 0;
  double rewritings = 0;
  size_t truncated = 0;
};

// `metrics` (nullable) attaches the obs registry; the timed sweep passes
// null so the published numbers stay null-sink.
Point MeasurePoint(size_t peers, size_t diameter, double dd, size_t runs,
                   size_t max_rewritings, double budget_ms,
                   obs::MetricsRegistry* metrics = nullptr) {
  Point point;
  size_t counted_tenth = 0;
  for (size_t run = 0; run < runs; ++run) {
    gen::WorkloadConfig config;
    config.num_peers = peers;
    config.num_strata = diameter;
    config.definitional_fraction = dd;
    config.providers_per_relation = 1;
    config.seed = 2000 * diameter + run;
    auto workload = gen::GenerateWorkload(config);
    if (!workload.ok()) continue;
    ReformulationOptions options;
    options.memoize_solutions = false;  // streaming: fastest first results
    options.max_rewritings = max_rewritings;
    options.time_budget_ms = budget_ms;
    options.metrics = metrics;
    Reformulator reformulator(workload->network, options);
    auto result = reformulator.Reformulate(workload->query);
    if (!result.ok()) continue;
    const ReformulationStats& stats = result->stats;
    const std::vector<double>& stamps = stats.time_to_rewriting_ms;
    if (!stamps.empty()) point.first_ms += stamps.front();
    if (stamps.size() >= 10) {
      point.tenth_ms += stamps[9];
      ++counted_tenth;
    }
    point.all_ms += stats.build_ms + stats.enumerate_ms;
    point.rewritings += static_cast<double>(stats.rewritings);
    if (stats.enumeration_truncated) ++point.truncated;
  }
  point.first_ms /= static_cast<double>(runs);
  point.tenth_ms /= counted_tenth == 0 ? 1.0 : static_cast<double>(counted_tenth);
  point.all_ms /= static_cast<double>(runs);
  point.rewritings /= static_cast<double>(runs);
  return point;
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvDouble;
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("fig4_time_to_rewritings", &argc, argv);
  size_t runs = EnvSize("PDMS_BENCH_RUNS", 3);
  size_t max_diameter = EnvSize("PDMS_BENCH_MAX_DIAMETER", 8);
  size_t peers = EnvSize("PDMS_BENCH_PEERS", 96);
  size_t max_rewritings = EnvSize("PDMS_BENCH_MAX_REWRITINGS", 20000);
  double budget_ms = EnvDouble("PDMS_BENCH_TIME_BUDGET_MS", 5000);
  report.params()->Set("runs", runs);
  report.params()->Set("max_diameter", max_diameter);
  report.params()->Set("peers", peers);
  report.params()->Set("max_rewritings", max_rewritings);
  report.params()->Set("time_budget_ms", budget_ms);

  std::printf(
      "# Figure 4: time to 1st / 10th / all rewritings vs. diameter "
      "(%zu peers, 10%% dd, avg of %zu runs)\n",
      peers, runs);
  std::printf("# paper: first rewritings in a few seconds even at diameter "
              "8-10; 'all' dominates (step 3 is the bottleneck)\n");
  std::printf("# 'all*' marks points where the rewriting/time cap was hit "
              "in at least one run\n");
  std::printf("%-9s %14s %14s %14s %14s\n", "diameter", "1st (ms)",
              "10th (ms)", "all (ms)", "rewritings");
  for (size_t diameter = 1; diameter <= max_diameter; ++diameter) {
    pdms::Point p = pdms::MeasurePoint(peers, diameter, 0.10, runs,
                                       max_rewritings, budget_ms);
    std::printf("%-9zu %14.2f %14.2f %13.1f%s %14.0f\n", diameter,
                p.first_ms, p.tenth_ms, p.all_ms,
                p.truncated > 0 ? "*" : " ", p.rewritings);
    std::fflush(stdout);
    pdms::bench::JsonObject* row = report.AddMetricRow();
    row->Set("diameter", diameter);
    row->Set("first_ms", p.first_ms);
    row->Set("tenth_ms", p.tenth_ms);
    row->Set("all_ms", p.all_ms);
    row->Set("rewritings", p.rewritings);
    row->Set("truncated_runs", p.truncated);
  }
  // One instrumented run (outside the timed sweep) so the report carries a
  // reform.* registry snapshot alongside the figure data.
  if (report.enabled()) {
    pdms::obs::MetricsRegistry registry;
    (void)pdms::MeasurePoint(peers, std::min<size_t>(4, max_diameter), 0.10,
                             1, max_rewritings, budget_ms, &registry);
    report.SetExtra("registry", registry.ToJson());
  }
  return report.Write() ? 0 : 1;
}
