// Serving throughput with the cross-query plan cache: replays a seeded,
// Zipf-skewed stream of queries over a Figure-3 workload twice — once
// through a plain Pdms (reformulate every request) and once through a
// CachingPdms — asserting byte-identical answers per request, and reports
// queries/sec, the hit rate, and the hit-path speedup. A separate all-miss
// pass prices the cold-path overhead (the cache bookkeeping a miss pays on
// top of reformulation), which must stay in the noise.
//
// The skew models a serving workload: a few hot queries repeat (plan-cache
// hits reuse their reformulation), the long tail keeps missing.
//
// A final sweep serves the same stream from 1, 2, and 4 concurrent server
// threads — each with its own facade, all sharing one thread-safe plan
// cache + goal memo (docs/parallel_execution.md) — asserting every answer
// against the single-threaded baseline and reporting aggregate
// queries/sec per server count. PDMS_BENCH_THREADS additionally sets each
// facade's intra-query parallelism for the sweep.
//
// Knobs: PDMS_BENCH_PEERS (default 48), PDMS_BENCH_DIAMETER (4),
// PDMS_BENCH_REQUESTS (300), PDMS_BENCH_POOL (16), PDMS_BENCH_ZIPF (1.1),
// PDMS_BENCH_FACTS (2), PDMS_BENCH_SEED (1), PDMS_BENCH_MAX_SERVERS (4),
// PDMS_BENCH_THREADS (1).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pdms/cache/goal_memo.h"
#include "pdms/cache/plan_cache.h"

#include "bench_util.h"
#include "pdms/cache/caching_pdms.h"
#include "pdms/core/pdms.h"
#include "pdms/gen/workload.h"
#include "pdms/util/rng.h"
#include "pdms/util/timer.h"

namespace pdms {
namespace {

// Peer relations the generated mappings can actually answer: definitional
// heads and relations mentioned on the right-hand side of inclusions.
// Sorted for determinism.
std::vector<std::string> ProvidedRelations(const PdmsNetwork& network) {
  std::set<std::string> provided;
  for (const PeerMapping& m : network.peer_mappings()) {
    if (m.kind == PeerMappingKind::kDefinitional) {
      provided.insert(m.rule.head().predicate());
    } else {
      for (const Atom& a : m.rhs.body()) {
        if (network.IsPeerRelation(a.predicate())) {
          provided.insert(a.predicate());
        }
      }
    }
  }
  return {provided.begin(), provided.end()};
}

// Pool entry i: a single-atom query over relation i while they last, then
// two-atom chains over adjacent relations. All binary (the generator's
// default arity).
std::vector<ConjunctiveQuery> BuildQueryPool(
    const std::vector<std::string>& relations, size_t pool_size) {
  std::vector<ConjunctiveQuery> pool;
  if (relations.empty()) return pool;
  Term x = Term::Var("x"), y = Term::Var("y"), z = Term::Var("z");
  for (size_t i = 0; i < pool_size; ++i) {
    if (i < relations.size()) {
      pool.emplace_back(Atom("Q", {x, y}),
                        std::vector<Atom>{Atom(relations[i], {x, y})});
    } else {
      size_t j = i - relations.size();
      const std::string& a = relations[j % relations.size()];
      const std::string& b = relations[(j + 1) % relations.size()];
      pool.emplace_back(
          Atom("Q", {x, z}),
          std::vector<Atom>{Atom(a, {x, y}), Atom(b, {y, z})});
    }
  }
  return pool;
}

// Inverse-CDF Zipf sampler over [0, n): weight(i) = 1 / (i+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  size_t Sample(Rng* rng) const {
    double u = rng->UniformDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvDouble;
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("serving_throughput", &argc, argv);
  size_t peers = EnvSize("PDMS_BENCH_PEERS", 48);
  size_t diameter = EnvSize("PDMS_BENCH_DIAMETER", 4);
  size_t requests = EnvSize("PDMS_BENCH_REQUESTS", 300);
  size_t pool_size = EnvSize("PDMS_BENCH_POOL", 16);
  double zipf_s = EnvDouble("PDMS_BENCH_ZIPF", 1.1);
  size_t facts = EnvSize("PDMS_BENCH_FACTS", 2);
  uint64_t seed = EnvSize("PDMS_BENCH_SEED", 1);
  report.params()->Set("peers", peers);
  report.params()->Set("diameter", diameter);
  report.params()->Set("requests", requests);
  report.params()->Set("pool", pool_size);
  report.params()->Set("zipf_s", zipf_s);
  report.params()->Set("facts_per_stored", facts);
  report.params()->Set("seed", static_cast<size_t>(seed));

  pdms::gen::WorkloadConfig config;
  config.num_peers = peers;
  config.num_strata = diameter;
  config.definitional_fraction = 0.25;
  config.providers_per_relation = 2;
  config.facts_per_stored = facts;
  config.seed = seed;
  auto workload = pdms::gen::GenerateWorkload(config);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  std::vector<pdms::ConjunctiveQuery> pool = pdms::BuildQueryPool(
      pdms::ProvidedRelations(workload->network), pool_size);
  if (pool.empty()) {
    std::fprintf(stderr, "no answerable relations in the workload\n");
    return 1;
  }

  pdms::Pdms plain;
  *plain.mutable_network() = workload->network;
  *plain.mutable_database() = workload->data;
  pdms::cache::CachingPdms cached;
  *cached.mutable_network() = workload->network;
  *cached.mutable_database() = workload->data;

  pdms::ZipfSampler sampler(pool.size(), zipf_s);
  pdms::Rng stream(seed * 7919 + 17);

  std::vector<double> plain_ms, hit_ms, miss_ms;
  double plain_total_ms = 0, cached_total_ms = 0;
  for (size_t r = 0; r < requests; ++r) {
    const pdms::ConjunctiveQuery& query = pool[sampler.Sample(&stream)];

    pdms::WallTimer plain_timer;
    auto expected = plain.Answer(query);
    double p_ms = plain_timer.ElapsedMillis();
    size_t hits_before = cached.plan_cache()->stats().hits;
    pdms::WallTimer cached_timer;
    auto actual = cached.Answer(query);
    double c_ms = cached_timer.ElapsedMillis();
    if (!expected.ok() || !actual.ok()) {
      std::fprintf(stderr, "request %zu failed: %s\n", r,
                   (!expected.ok() ? expected.status() : actual.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    if (expected->ToString() != actual->ToString()) {
      std::fprintf(stderr,
                   "ANSWER MISMATCH at request %zu (%s):\ncache-off:\n%s\n"
                   "cache-on:\n%s\n",
                   r, query.ToString().c_str(), expected->ToString().c_str(),
                   actual->ToString().c_str());
      return 1;
    }
    plain_total_ms += p_ms;
    cached_total_ms += c_ms;
    plain_ms.push_back(p_ms);
    bool was_hit = cached.plan_cache()->stats().hits > hits_before;
    (was_hit ? hit_ms : miss_ms).push_back(c_ms);
  }

  // Cold path: every request a miss (fresh caches, distinct queries), so
  // the delta vs the plain facade is pure cache bookkeeping.
  pdms::Pdms cold_plain;
  *cold_plain.mutable_network() = workload->network;
  *cold_plain.mutable_database() = workload->data;
  pdms::cache::CachingPdms cold_cached;
  *cold_cached.mutable_network() = workload->network;
  *cold_cached.mutable_database() = workload->data;
  std::vector<double> cold_plain_ms, cold_cached_ms;
  for (const pdms::ConjunctiveQuery& query : pool) {
    pdms::WallTimer t1;
    auto a = cold_plain.Answer(query);
    cold_plain_ms.push_back(t1.ElapsedMillis());
    cold_cached.ClearCaches();  // force a miss even for repeated structure
    pdms::WallTimer t2;
    auto b = cold_cached.Answer(query);
    cold_cached_ms.push_back(t2.ElapsedMillis());
    if (!a.ok() || !b.ok()) continue;
  }

  size_t hits = hit_ms.size();
  double hit_rate = static_cast<double>(hits) / static_cast<double>(requests);
  double median_plain = pdms::Median(plain_ms);
  double median_hit = pdms::Median(hit_ms);
  double median_miss = pdms::Median(miss_ms);
  double hit_speedup = median_hit > 0 ? median_plain / median_hit : 0;
  double qps_plain =
      plain_total_ms > 0 ? 1000.0 * requests / plain_total_ms : 0;
  double qps_cached =
      cached_total_ms > 0 ? 1000.0 * requests / cached_total_ms : 0;
  double cold_plain_med = pdms::Median(cold_plain_ms);
  double cold_cached_med = pdms::Median(cold_cached_ms);
  double cold_overhead_pct =
      cold_plain_med > 0
          ? 100.0 * (cold_cached_med - cold_plain_med) / cold_plain_med
          : 0;

  std::printf("# Serving throughput: %zu requests, pool %zu, zipf %.2f "
              "(%zu peers, diameter %zu)\n",
              requests, pool.size(), zipf_s, peers, diameter);
  std::printf("%-22s %12s %12s\n", "", "cache-off", "cache-on");
  std::printf("%-22s %12.1f %12.1f\n", "queries/sec", qps_plain, qps_cached);
  std::printf("%-22s %12s %11.1f%%\n", "hit rate", "-", 100.0 * hit_rate);
  std::printf("%-22s %12.3f %12.3f\n", "median latency (ms)", median_plain,
              pdms::Median(hit_ms.empty() ? miss_ms : hit_ms));
  std::printf("hit-path: median %.3f ms vs %.3f ms cache-off -> %.1fx\n",
              median_hit, median_plain, hit_speedup);
  std::printf("miss-path median: %.3f ms; cold-path overhead: %+.2f%%\n",
              median_miss, cold_overhead_pct);
  std::printf("all %zu requests answered identically with and without the "
              "cache\n", requests);

  pdms::bench::JsonObject* row = report.AddMetricRow();
  row->Set("qps_cache_off", qps_plain);
  row->Set("qps_cache_on", qps_cached);
  row->Set("hit_rate", hit_rate);
  row->Set("hits", hits);
  row->Set("misses", requests - hits);
  row->Set("median_ms_cache_off", median_plain);
  row->Set("median_ms_hit", median_hit);
  row->Set("median_ms_miss", median_miss);
  row->Set("hit_path_speedup", hit_speedup);
  row->Set("cold_overhead_pct", cold_overhead_pct);
  row->Set("plan_cache_inserts", cached.plan_cache()->stats().inserts);
  row->Set("plan_cache_evictions", cached.plan_cache()->stats().evictions);
  row->Set("goal_memo_hits", cached.goal_memo()->stats().hits);

  // --- Concurrent serving sweep: N server threads, one shared cache pair.
  size_t max_servers = EnvSize("PDMS_BENCH_MAX_SERVERS", 4);
  size_t facade_threads = EnvSize("PDMS_BENCH_THREADS", 1);
  report.params()->Set("facade_threads", facade_threads);

  // Ground truth per pool entry, from a fresh uncached facade.
  std::vector<std::string> expected(pool.size());
  {
    pdms::Pdms oracle;
    *oracle.mutable_network() = workload->network;
    *oracle.mutable_database() = workload->data;
    for (size_t i = 0; i < pool.size(); ++i) {
      auto a = oracle.Answer(pool[i]);
      if (!a.ok()) {
        std::fprintf(stderr, "oracle failed on pool entry %zu: %s\n", i,
                     a.status().ToString().c_str());
        return 1;
      }
      expected[i] = a->ToString();
    }
  }

  std::printf("\n# Concurrent serving (shared plan cache + goal memo, "
              "facade threads %zu, %zu hardware threads)\n",
              facade_threads, (size_t)std::thread::hardware_concurrency());
  std::printf("%-10s %12s %12s %12s\n", "servers", "queries/sec", "hit rate",
              "mismatches");
  for (size_t servers = 1; servers <= max_servers; servers *= 2) {
    pdms::cache::PlanCache shared_plans;
    pdms::cache::GoalMemo shared_memo;
    size_t per_server = requests / servers;
    std::atomic<size_t> mismatches{0};
    pdms::WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(servers);
    for (size_t s = 0; s < servers; ++s) {
      threads.emplace_back([&, s] {
        pdms::ReformulationOptions options;
        options.threads = facade_threads;
        pdms::Pdms server(options);
        *server.mutable_network() = workload->network;
        *server.mutable_database() = workload->data;
        server.set_plan_cache(&shared_plans);
        server.set_goal_memo(&shared_memo);
        pdms::Rng rng(seed * 104729 + servers * 131 + s);
        for (size_t r = 0; r < per_server; ++r) {
          size_t pick = sampler.Sample(&rng);
          auto answer = server.Answer(pool[pick]);
          if (!answer.ok() || answer->ToString() != expected[pick]) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    double ms = wall.ElapsedMillis();
    double qps = ms > 0 ? 1000.0 * (per_server * servers) / ms : 0;
    pdms::cache::PlanCacheStats shared_stats = shared_plans.stats();
    double shared_hit_rate =
        shared_stats.hits + shared_stats.misses > 0
            ? static_cast<double>(shared_stats.hits) /
                  static_cast<double>(shared_stats.hits + shared_stats.misses)
            : 0;
    std::printf("%-10zu %12.1f %11.1f%% %12zu\n", servers, qps,
                100.0 * shared_hit_rate, mismatches.load());
    pdms::bench::JsonObject* srow = report.AddMetricRow();
    srow->Set("servers", servers);
    srow->Set("qps_concurrent", qps);
    srow->Set("shared_hit_rate", shared_hit_rate);
    srow->Set("mismatches", mismatches.load());
    if (mismatches.load() != 0) {
      std::fprintf(stderr,
                   "concurrent serving produced %zu mismatched answers\n",
                   mismatches.load());
      return 1;
    }
  }
  return report.Write() ? 0 : 1;
}
