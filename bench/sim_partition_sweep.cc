// Distributed answering under message loss: sweeps the per-link drop
// probability over the simulated peer runtime (src/pdms/sim/) and reports
// message/retransmission cost and answer recall against the fault-free
// twin. The subset (soundness) property is asserted on every run — the
// bench doubles as a coarse DST smoke test.
//
// Expected shape: recall stays near 1.0 while retransmissions absorb the
// loss, then falls as fetches start exhausting their retry budgets; the
// messages column shows what the reliability costs.
//
// Knobs: PDMS_BENCH_RUNS (default 3), PDMS_BENCH_PEERS (default 12),
// PDMS_BENCH_STRATA (default 3), PDMS_BENCH_SEED (default 1).

#include <cstdio>

#include "bench_util.h"
#include "pdms/gen/workload.h"
#include "pdms/sim/sim_pdms.h"

namespace pdms {
namespace {

struct Point {
  double recall = 0;       // |faulty| / |fault-free|, runs with answers
  double sent = 0;         // messages per query
  double retransmits = 0;
  double timeouts = 0;     // per-hop request timeouts
  double failures = 0;     // fetches that exhausted their retry budget
  double virtual_ms = 0;   // simulated wall clock per query
  size_t complete = 0;
  size_t subset_violations = 0;
};

Point MeasurePoint(size_t peers, size_t strata, double drop, size_t runs,
                   uint64_t seed0) {
  Point point;
  size_t with_answers = 0;
  for (size_t run = 0; run < runs; ++run) {
    gen::WorkloadConfig config;
    config.num_peers = peers;
    config.num_strata = strata;
    config.providers_per_relation = 2;
    config.facts_per_stored = 4;
    config.value_domain = 4;
    config.seed = seed0 + run;
    auto workload = gen::GenerateWorkload(config);
    if (!workload.ok()) continue;

    sim::SimOptions reliable;
    reliable.seed = seed0 + run;
    sim::SimPdms twin(workload->network, workload->data, reliable);
    auto reference = twin.Answer(workload->query);
    if (!reference.ok()) continue;

    sim::SimOptions faulty = reliable;
    faulty.faults.drop_probability = drop;
    faulty.faults.delay_jitter_ms = 2.0;
    faulty.retry.max_attempts = 4;
    sim::SimPdms sim(workload->network, workload->data, faulty);
    auto result = sim.Answer(workload->query);
    if (!result.ok()) continue;

    for (const Tuple& t : result->answers.tuples()) {
      if (!reference->answers.Contains(t)) {
        ++point.subset_violations;
        break;
      }
    }
    if (reference->answers.size() > 0) {
      point.recall += static_cast<double>(result->answers.size()) /
                      static_cast<double>(reference->answers.size());
      ++with_answers;
    }
    const MessageStats& m = result->degradation.messages;
    point.sent += static_cast<double>(m.sent);
    point.retransmits += static_cast<double>(m.retransmits);
    point.timeouts += static_cast<double>(m.request_timeouts);
    point.failures +=
        static_cast<double>(result->degradation.access.failures);
    point.virtual_ms += result->degradation.access.elapsed_ms;
    if (result->degradation.completeness == Completeness::kComplete) {
      ++point.complete;
    }
  }
  double n = static_cast<double>(runs);
  point.recall /= with_answers == 0 ? 1.0 : static_cast<double>(with_answers);
  point.sent /= n;
  point.retransmits /= n;
  point.timeouts /= n;
  point.failures /= n;
  point.virtual_ms /= n;
  return point;
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("sim_partition_sweep", &argc, argv);
  size_t runs = EnvSize("PDMS_BENCH_RUNS", 3);
  size_t peers = EnvSize("PDMS_BENCH_PEERS", 12);
  size_t strata = EnvSize("PDMS_BENCH_STRATA", 3);
  uint64_t seed = EnvSize("PDMS_BENCH_SEED", 1);
  report.set_seed(seed);
  report.params()->Set("runs", runs);
  report.params()->Set("peers", peers);
  report.params()->Set("strata", strata);

  std::printf(
      "# Distributed answering vs. message loss (%zu peers, %zu strata, "
      "avg of %zu runs, 4 transmissions per fetch)\n",
      peers, strata, runs);
  std::printf("%-8s %8s %10s %12s %10s %10s %12s %10s %7s\n", "drop",
              "recall", "messages", "retransmits", "timeouts", "failures",
              "virtual_ms", "complete", "sound");
  size_t violations = 0;
  for (double drop : {0.0, 0.1, 0.2, 0.3, 0.4, 0.6}) {
    pdms::Point p = pdms::MeasurePoint(peers, strata, drop, runs, seed);
    std::printf("%-8.2f %8.3f %10.1f %12.1f %10.1f %10.1f %12.1f %7zu/%zu %7s\n",
                drop, p.recall, p.sent, p.retransmits, p.timeouts,
                p.failures, p.virtual_ms, p.complete, runs,
                p.subset_violations == 0 ? "yes" : "NO");
    violations += p.subset_violations;
    std::fflush(stdout);
    pdms::bench::JsonObject* row = report.AddMetricRow();
    row->Set("drop_probability", drop);
    row->Set("recall", p.recall);
    row->Set("avg_messages", p.sent);
    row->Set("avg_retransmits", p.retransmits);
    row->Set("avg_request_timeouts", p.timeouts);
    row->Set("avg_failures", p.failures);
    row->Set("avg_virtual_ms", p.virtual_ms);
    row->Set("complete_runs", p.complete);
    row->Set("subset_violations", p.subset_violations);
  }
  if (violations > 0) {
    std::printf("# ERROR: %zu run(s) produced non-certain answers\n",
                violations);
    return 1;
  }
  std::printf("# all degraded answer sets were subsets of the fault-free "
              "twin's\n");
  return report.Write() ? 0 : 1;
}
