// Open-loop load generator for the networked serving stack
// (docs/serving.md): starts an in-process ppl_serverd-equivalent PplServer
// whose capacity is pinned by the service-floor knob (workers * 1000 /
// floor_ms qps), then drives it over real loopback TCP at 0.5x, 1x, and
// 2x that capacity with seeded Poisson arrivals. Open-loop means senders
// keep to their arrival schedule no matter how slowly responses come
// back — the regime where an unprotected server's queue grows without
// bound. Reports offered vs achieved qps, answer latency p50/p99, the
// shed rate, and the full answer-latency histogram per load point into
// the shared JSON schema (tools/bench_all.sh merges it into
// BENCH_serving.json). The in-process server also feeds a rolling SLO
// window; after the sweep the generator scrapes it over the wire with a
// kStatsRequest frame — exactly what `ppl_top` polls — and writes the
// snapshot to $PDMS_BENCH_SLO_JSON (bench_all.sh wraps that into
// BENCH_slo.json).
//
// The expected shape: at 0.5x the shed rate is ~0 and p99 is near the
// floor; at 2x roughly half the requests shed fast while answered
// latency stays bounded by the admission queue — overload degrades into
// rejections, not collapse.
//
// Knobs: PDMS_BENCH_CONNS (default 4), PDMS_BENCH_REQUESTS (200, per
// load point), PDMS_BENCH_FLOOR_MS (10), PDMS_BENCH_WORKERS (2),
// PDMS_BENCH_QUEUE (16), PDMS_BENCH_BUDGET_MS (0 = no deadline),
// PDMS_BENCH_SEED (1), PDMS_BENCH_SLO_JSON (path for the raw stats-frame
// scrape; unset = skip the file).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pdms/core/pdms.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/rolling.h"
#include "pdms/serve/client.h"
#include "pdms/serve/server.h"
#include "pdms/serve/wire.h"
#include "pdms/util/rng.h"
#include "pdms/util/timer.h"

namespace pdms {
namespace {

constexpr const char* kProgram = R"(
peer Hospital { relation Doctor(name, hospital); }
peer Clinic { relation Physician(name, clinic); }
stored hdoc(name, hospital) <= Hospital:Doctor(name, hospital).
mapping Clinic:Physician(n, c) :- Hospital:Doctor(n, c).
fact hdoc("alice", "county").
fact hdoc("bo", "mercy").
)";

const char* const kQueries[] = {
    "q(n, h) :- Hospital:Doctor(n, h).",
    "q(n, c) :- Clinic:Physician(n, c).",
};

struct LoadResult {
  double duration_ms = 0;
  uint64_t answers = 0;
  uint64_t sheds = 0;
  uint64_t errors = 0;  // transport failures (should stay 0)
  std::vector<double> answer_latencies_ms;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  size_t at = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[at];
}

// Raw JSON array of the shared histogram bounds (the registry's default
// latency buckets, the same ones the rolling SLO window uses).
std::string BoundsJson(const std::vector<double>& bounds) {
  std::string out = "[";
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (i > 0) out += ", ";
    out += bench::JsonNumber(bounds[i]);
  }
  out += "]";
  return out;
}

// Buckets every latency against `bounds` (one overflow cell at the end)
// and encodes the counts as a raw JSON array — the full per-request
// distribution, not just two percentiles.
std::string HistogramJson(const std::vector<double>& latencies,
                          const std::vector<double>& bounds) {
  std::vector<uint64_t> counts(bounds.size() + 1, 0);
  for (double ms : latencies) {
    const size_t cell =
        std::lower_bound(bounds.begin(), bounds.end(), ms) - bounds.begin();
    ++counts[cell];
  }
  std::string out = "[";
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(counts[i]);
  }
  out += "]";
  return out;
}

// One connection's worth of open-loop traffic: the sender emits
// `requests` query frames on a seeded Poisson schedule, the reader
// collects exactly that many responses (every request gets an answer or
// a shed frame) and times each against its send timestamp.
void DriveConnection(uint16_t port, double rate_qps, size_t requests,
                     double budget_ms, uint64_t seed, LoadResult* out) {
  serve::Client client;
  if (!client.Connect("127.0.0.1", port, /*io_timeout_ms=*/30000).ok()) {
    out->errors += requests;
    return;
  }
  std::vector<std::atomic<double>> sent_at(requests + 1);
  WallTimer epoch;

  std::thread reader([&client, &sent_at, requests, &epoch, out] {
    for (size_t i = 0; i < requests; ++i) {
      auto frame = client.ReadFrame();
      if (!frame.ok()) {
        out->errors += requests - i;
        return;
      }
      if (frame->type == serve::wire::FrameType::kAnswer) {
        auto answer = serve::wire::DecodeAnswer(*frame);
        if (!answer.ok() || answer->request_id > requests) {
          ++out->errors;
          continue;
        }
        ++out->answers;
        out->answer_latencies_ms.push_back(
            epoch.ElapsedMillis() -
            sent_at[answer->request_id].load(std::memory_order_acquire));
      } else if (frame->type == serve::wire::FrameType::kShed) {
        ++out->sheds;
      } else {
        ++out->errors;
      }
    }
  });

  Rng rng(seed);
  double next_ms = 0;
  uint64_t send_failures = 0;
  for (size_t id = 1; id <= requests; ++id) {
    // Poisson arrivals: exponential interarrival at the offered rate.
    next_ms += -std::log(1.0 - rng.UniformDouble()) * 1000.0 / rate_qps;
    double wait = next_ms - epoch.ElapsedMillis();
    if (wait > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(wait));
    }
    serve::wire::QueryFrame query;
    query.request_id = id;
    query.budget_ms = budget_ms;
    query.query = kQueries[id % 2];
    sent_at[id].store(epoch.ElapsedMillis(), std::memory_order_release);
    if (!client.SendRaw(serve::wire::EncodeQuery(query)).ok()) {
      send_failures = requests - id + 1;
      break;
    }
  }
  reader.join();  // the reader owns out until this join
  out->errors += send_failures;
  out->duration_ms = epoch.ElapsedMillis();
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvDouble;
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("serving_loadgen", &argc, argv);

  size_t conns = EnvSize("PDMS_BENCH_CONNS", 4);
  size_t requests = EnvSize("PDMS_BENCH_REQUESTS", 200);
  double floor_ms = EnvDouble("PDMS_BENCH_FLOOR_MS", 10);
  size_t workers = EnvSize("PDMS_BENCH_WORKERS", 2);
  size_t queue = EnvSize("PDMS_BENCH_QUEUE", 16);
  double budget_ms = EnvDouble("PDMS_BENCH_BUDGET_MS", 0);
  uint64_t seed = EnvSize("PDMS_BENCH_SEED", 1);
  if (conns == 0) conns = 1;
  if (floor_ms <= 0) floor_ms = 10;
  report.set_seed(seed);
  report.params()->Set("conns", conns);
  report.params()->Set("requests_per_load", requests);
  report.params()->Set("service_floor_ms", floor_ms);
  report.params()->Set("workers", workers);
  report.params()->Set("queue", queue);
  report.params()->Set("budget_ms", budget_ms);

  pdms::Pdms loader;
  pdms::Status loaded = loader.LoadProgram(pdms::kProgram);
  if (!loaded.ok()) {
    std::fprintf(stderr, "program: %s\n", loaded.ToString().c_str());
    return 1;
  }

  pdms::obs::MetricsRegistry metrics;
  pdms::obs::RollingStats rolling;
  pdms::serve::ServerOptions options;
  options.port = 0;
  options.executor.workers = workers;
  options.executor.service_floor_ms = floor_ms;
  options.executor.admission.max_queue = queue;
  options.executor.rolling = &rolling;
  pdms::serve::PplServer server(options, &metrics);
  pdms::Status started = server.Start(loader.network(), loader.database());
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }

  const std::vector<double> bounds =
      pdms::obs::MetricsRegistry::DefaultLatencyBounds();
  report.params()->fields.emplace_back("latency_bounds_ms",
                                       pdms::BoundsJson(bounds));

  const double capacity_qps =
      static_cast<double>(workers) * 1000.0 / floor_ms;
  const double load_multipliers[] = {0.5, 1.0, 2.0};
  std::printf("serving_loadgen: capacity %.0f qps (%zu workers, %.1fms "
              "floor), %zu conns x %zu requests per load point\n",
              capacity_qps, workers, floor_ms, conns, requests);

  for (double multiplier : load_multipliers) {
    const double offered_qps = capacity_qps * multiplier;
    const double per_conn_qps = offered_qps / static_cast<double>(conns);
    const size_t per_conn = (requests + conns - 1) / conns;

    std::vector<pdms::LoadResult> results(conns);
    std::vector<std::thread> drivers;
    for (size_t c = 0; c < conns; ++c) {
      drivers.emplace_back(pdms::DriveConnection, server.port(),
                           per_conn_qps, per_conn, budget_ms,
                           seed * 1000 + static_cast<uint64_t>(c) +
                               static_cast<uint64_t>(multiplier * 10),
                           &results[c]);
    }
    for (std::thread& t : drivers) t.join();

    pdms::LoadResult total;
    std::vector<double> latencies;
    for (pdms::LoadResult& r : results) {
      total.answers += r.answers;
      total.sheds += r.sheds;
      total.errors += r.errors;
      total.duration_ms = std::max(total.duration_ms, r.duration_ms);
      latencies.insert(latencies.end(), r.answer_latencies_ms.begin(),
                       r.answer_latencies_ms.end());
    }
    const double responses =
        static_cast<double>(total.answers + total.sheds);
    const double achieved_qps =
        total.duration_ms > 0 ? 1000.0 * responses / total.duration_ms : 0;
    const double shed_rate =
        responses > 0 ? static_cast<double>(total.sheds) / responses : 0;
    const double p50 = pdms::Percentile(&latencies, 0.50);
    const double p99 = pdms::Percentile(&latencies, 0.99);

    std::printf("  load %.1fx: offered %.0f qps, achieved %.0f qps, "
                "answers %llu, sheds %llu (%.0f%%), p50 %.1fms, "
                "p99 %.1fms, errors %llu\n",
                multiplier, offered_qps, achieved_qps,
                static_cast<unsigned long long>(total.answers),
                static_cast<unsigned long long>(total.sheds),
                100.0 * shed_rate, p50, p99,
                static_cast<unsigned long long>(total.errors));

    auto* row = report.AddMetricRow();
    row->Set("load_multiplier", multiplier);
    row->Set("offered_qps", offered_qps);
    row->Set("achieved_qps", achieved_qps);
    row->Set("answers", static_cast<size_t>(total.answers));
    row->Set("sheds", static_cast<size_t>(total.sheds));
    row->Set("shed_rate", shed_rate);
    row->Set("p50_ms", p50);
    row->Set("p99_ms", p99);
    row->Set("transport_errors", static_cast<size_t>(total.errors));
    row->fields.emplace_back("latency_counts",
                             pdms::HistogramJson(latencies, bounds));
  }

  // Scrape the server's rolling SLO window over the wire while it is
  // still up — the same kStatsRequest frame ppl_top polls — so the bench
  // output carries the server's own view of the sweep, not just the
  // client-side timings.
  {
    pdms::serve::Client scraper;
    if (scraper.Connect("127.0.0.1", server.port()).ok()) {
      pdms::Result<std::string> stats = scraper.Stats();
      if (stats.ok()) {
        report.SetExtra("slo", *stats);
        const char* slo_path = std::getenv("PDMS_BENCH_SLO_JSON");
        if (slo_path != nullptr && *slo_path != '\0') {
          std::FILE* f = std::fopen(slo_path, "w");
          if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", slo_path);
          } else {
            std::fwrite(stats->data(), 1, stats->size(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::fprintf(stderr, "wrote SLO scrape to %s\n", slo_path);
          }
        }
      } else {
        std::fprintf(stderr, "slo scrape: %s\n",
                     stats.status().ToString().c_str());
      }
    }
  }

  server.Stop();
  report.SetExtra("registry", metrics.ToJson());
  if (!report.Write()) return 1;
  return 0;
}
