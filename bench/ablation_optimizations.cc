// Ablation of the Section 4.3 optimizations on the Figure-3 workload
// (plus a comparison-predicate variant):
//
//  - dead-end detection (predicate-reachability pruning + the structural
//    viability pass),
//  - constraint-label satisfiability pruning (matters only when the
//    workload carries comparison predicates),
//  - priority-ordered expansion (affects time to the first rewritings),
//  - memoized (dynamic-programming) solution enumeration vs. streaming.
//
// For each configuration we report tree size, time to first rewriting,
// and total reformulation time with a capped enumeration.
//
// Knobs: PDMS_BENCH_RUNS (default 5), PDMS_BENCH_DIAMETER (default 6).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "pdms/core/reformulator.h"
#include "pdms/gen/workload.h"

namespace pdms {
namespace {

struct Config {
  const char* name;
  bool dead_ends;
  bool unsat;
  bool order;
  bool memoize;
};

void RunSweep(const char* title, double comparison_fraction, size_t runs,
              size_t diameter, bench::JsonReport* report) {
  static constexpr Config kConfigs[] = {
      {"all optimizations", true, true, true, false},
      {"no dead-end pruning", false, true, true, false},
      {"no constraint pruning", true, false, true, false},
      {"no priority order", true, true, false, false},
      {"memoized enumeration", true, true, true, true},
      {"none", false, false, false, false},
  };
  std::printf("%s\n", title);
  std::printf("  %-24s %10s %12s %12s %12s %10s\n", "configuration",
              "nodes", "1st (ms)", "total (ms)", "rewritings", "pruned");
  for (const Config& cfg : kConfigs) {
    double nodes = 0;
    double first_ms = 0;
    double total_ms = 0;
    double rewritings = 0;
    double pruned = 0;
    for (size_t run = 0; run < runs; ++run) {
      gen::WorkloadConfig wconfig;
      wconfig.num_peers = 96;
      wconfig.num_strata = diameter;
      wconfig.definitional_fraction = 0.25;
      wconfig.providers_per_relation = 1;
      wconfig.comparison_fraction = comparison_fraction;
      wconfig.unprovided_fraction = 0.1;
      wconfig.seed = 4100 + run;
      auto workload = gen::GenerateWorkload(wconfig);
      if (!workload.ok()) continue;
      ReformulationOptions options;
      options.prune_dead_ends = cfg.dead_ends;
      options.prune_unsatisfiable = cfg.unsat;
      options.order_expansions = cfg.order;
      options.memoize_solutions = cfg.memoize;
      options.max_rewritings = 2000;
      options.time_budget_ms = 20000;
      Reformulator reformulator(workload->network, options);
      auto result = reformulator.Reformulate(workload->query);
      if (!result.ok()) continue;
      nodes += static_cast<double>(result->stats.total_nodes());
      if (!result->stats.time_to_rewriting_ms.empty()) {
        first_ms += result->stats.time_to_rewriting_ms.front();
      }
      total_ms += result->stats.build_ms + result->stats.enumerate_ms;
      rewritings += static_cast<double>(result->stats.rewritings);
      pruned += static_cast<double>(result->stats.pruned_unsat +
                                    result->stats.pruned_dead);
    }
    double n = static_cast<double>(runs);
    std::printf("  %-24s %10.0f %12.2f %12.1f %12.0f %10.0f\n", cfg.name,
                nodes / n, first_ms / n, total_ms / n, rewritings / n,
                pruned / n);
    std::fflush(stdout);
    bench::JsonObject* row = report->AddMetricRow();
    row->Set("configuration", cfg.name);
    row->Set("comparison_fraction", comparison_fraction);
    row->Set("avg_nodes", nodes / n);
    row->Set("first_ms", first_ms / n);
    row->Set("total_ms", total_ms / n);
    row->Set("rewritings", rewritings / n);
    row->Set("pruned", pruned / n);
  }
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("ablation_optimizations", &argc, argv);
  size_t runs = EnvSize("PDMS_BENCH_RUNS", 4);
  size_t diameter = EnvSize("PDMS_BENCH_DIAMETER", 6);
  report.params()->Set("runs", runs);
  report.params()->Set("diameter", diameter);
  std::printf("# Section 4.3 optimization ablation (96 peers, diameter "
              "%zu, 25%% dd, avg of %zu runs, enumeration capped at 2000 "
              "rewritings)\n",
              diameter, runs);
  pdms::RunSweep("== comparison-free workload ==", 0.0, runs, diameter,
                 &report);
  pdms::RunSweep("== with comparison predicates (60% of definitional "
                 "bodies) ==",
                 0.6, runs, diameter, &report);
  return report.Write() ? 0 : 1;
}
