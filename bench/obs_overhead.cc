// Measures what the observability layer costs on the Figure-3 reformulation
// workload: the same queries run with the null sink (no trace, no metrics),
// with a metrics registry attached, and with a full span trace attached.
//
// The contract (docs/observability.md): the null sink is a pointer check
// per instrumentation site, so "off" must stay within noise of the pre-obs
// numbers; metrics cost one registry fold per query; tracing is the
// expensive mode (a span per rule-goal-tree node) and is priced here so
// nobody is surprised in production.
//
// Knobs: PDMS_BENCH_RUNS (default 5), PDMS_BENCH_DIAMETER (default 5),
// PDMS_BENCH_PEERS (default 96).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pdms/core/reformulator.h"
#include "pdms/gen/workload.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/util/timer.h"

namespace pdms {
namespace {

struct ModeResult {
  double median_ms = 0;
  double mean_ms = 0;
  double spans = 0;  // average spans per query (trace mode only)
};

// Runs `runs` reformulations of seeded fig3 workloads with the given sinks
// attached; each repetition uses the same seed across modes so the numbers
// are comparable.
ModeResult RunMode(size_t peers, size_t diameter, size_t runs,
                   obs::TraceContext* trace, obs::MetricsRegistry* metrics) {
  std::vector<double> times;
  double spans = 0;
  for (size_t run = 0; run < runs; ++run) {
    gen::WorkloadConfig config;
    config.num_peers = peers;
    config.num_strata = diameter;
    config.definitional_fraction = 0.25;
    config.providers_per_relation = 1;
    config.seed = 1000 * diameter + run;  // matches fig3_tree_size
    auto workload = gen::GenerateWorkload(config);
    if (!workload.ok()) continue;
    ReformulationOptions options;
    options.max_tree_nodes = 2u * 1000 * 1000;
    options.trace = trace;
    options.metrics = metrics;
    Reformulator reformulator(workload->network, options);
    if (trace != nullptr) trace->Clear();
    WallTimer timer;
    auto result = reformulator.Reformulate(workload->query);
    double ms = timer.ElapsedMillis();
    if (!result.ok()) continue;
    times.push_back(ms);
    if (trace != nullptr) spans += static_cast<double>(trace->spans().size());
  }
  ModeResult out;
  if (times.empty()) return out;
  std::sort(times.begin(), times.end());
  out.median_ms = times[times.size() / 2];
  for (double t : times) out.mean_ms += t;
  out.mean_ms /= static_cast<double>(times.size());
  out.spans = spans / static_cast<double>(times.size());
  return out;
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("obs_overhead", &argc, argv);
  size_t runs = EnvSize("PDMS_BENCH_RUNS", 5);
  size_t diameter = EnvSize("PDMS_BENCH_DIAMETER", 5);
  size_t peers = EnvSize("PDMS_BENCH_PEERS", 96);
  report.params()->Set("runs", runs);
  report.params()->Set("diameter", diameter);
  report.params()->Set("peers", peers);

  std::printf("# Observability overhead on the Figure-3 workload "
              "(%zu peers, diameter %zu, %zu runs per mode)\n",
              peers, diameter, runs);

  pdms::obs::TraceContext trace("obs_overhead");
  pdms::obs::MetricsRegistry metrics;
  struct Mode {
    const char* name;
    pdms::obs::TraceContext* trace;
    pdms::obs::MetricsRegistry* metrics;
  };
  const Mode modes[] = {
      {"null_sink", nullptr, nullptr},
      {"metrics", nullptr, &metrics},
      {"trace+metrics", &trace, &metrics},
  };

  double baseline_ms = 0;
  std::printf("%-14s %12s %12s %12s %12s\n", "mode", "median (ms)",
              "mean (ms)", "overhead", "avg spans");
  for (const Mode& mode : modes) {
    pdms::ModeResult r =
        pdms::RunMode(peers, diameter, runs, mode.trace, mode.metrics);
    if (baseline_ms == 0) baseline_ms = r.median_ms;
    double overhead =
        baseline_ms > 0 ? 100.0 * (r.median_ms - baseline_ms) / baseline_ms
                        : 0;
    std::printf("%-14s %12.3f %12.3f %11.1f%% %12.0f\n", mode.name,
                r.median_ms, r.mean_ms, overhead, r.spans);
    pdms::bench::JsonObject* row = report.AddMetricRow();
    row->Set("mode", mode.name);
    row->Set("median_ms", r.median_ms);
    row->Set("mean_ms", r.mean_ms);
    row->Set("overhead_pct", overhead);
    row->Set("avg_spans", r.spans);
  }
  report.SetExtra("registry", metrics.ToJson());
  return report.Write() ? 0 : 1;
}
