// Measures what the observability layer costs on the Figure-3 reformulation
// workload: the same queries run with the null sink (no trace, no metrics),
// with a metrics registry attached, and with a full span trace attached.
//
// The contract (docs/observability.md): the null sink is a pointer check
// per instrumentation site, so "off" must stay within noise of the pre-obs
// numbers; metrics cost one registry fold per query; tracing is the
// expensive mode (a span per rule-goal-tree node) and is priced here so
// nobody is surprised in production.
//
// The second table prices the same contract on the serving hot path
// (docs/serving_telemetry.md): the same request stream pushed through an
// in-process RequestExecutor with telemetry off (null rolling stats,
// null access log, untraced frames), with the rolling SLO window
// attached, with rolling + NDJSON access log, and with traced requests
// (per-request span assembly + SpanBlock). The serving null sink is the
// same pointer-check-per-site deal, so "off" must stay within noise —
// the <2% acceptance bar — and the per-mode rows price what turning
// each stage on costs.
//
// Knobs: PDMS_BENCH_RUNS (default 5), PDMS_BENCH_DIAMETER (default 5),
// PDMS_BENCH_PEERS (default 96), PDMS_BENCH_SERVE_REQUESTS (default
// 2000, per serving mode).

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pdms/core/pdms.h"
#include "pdms/core/reformulator.h"
#include "pdms/gen/workload.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/rolling.h"
#include "pdms/obs/trace.h"
#include "pdms/serve/access_log.h"
#include "pdms/serve/executor.h"
#include "pdms/util/timer.h"

namespace pdms {
namespace {

struct ModeResult {
  double median_ms = 0;
  double mean_ms = 0;
  double spans = 0;  // average spans per query (trace mode only)
};

// Runs `runs` reformulations of seeded fig3 workloads with the given sinks
// attached; each repetition uses the same seed across modes so the numbers
// are comparable.
ModeResult RunMode(size_t peers, size_t diameter, size_t runs,
                   obs::TraceContext* trace, obs::MetricsRegistry* metrics) {
  std::vector<double> times;
  double spans = 0;
  for (size_t run = 0; run < runs; ++run) {
    gen::WorkloadConfig config;
    config.num_peers = peers;
    config.num_strata = diameter;
    config.definitional_fraction = 0.25;
    config.providers_per_relation = 1;
    config.seed = 1000 * diameter + run;  // matches fig3_tree_size
    auto workload = gen::GenerateWorkload(config);
    if (!workload.ok()) continue;
    ReformulationOptions options;
    options.max_tree_nodes = 2u * 1000 * 1000;
    options.trace = trace;
    options.metrics = metrics;
    Reformulator reformulator(workload->network, options);
    if (trace != nullptr) trace->Clear();
    WallTimer timer;
    auto result = reformulator.Reformulate(workload->query);
    double ms = timer.ElapsedMillis();
    if (!result.ok()) continue;
    times.push_back(ms);
    if (trace != nullptr) spans += static_cast<double>(trace->spans().size());
  }
  ModeResult out;
  if (times.empty()) return out;
  std::sort(times.begin(), times.end());
  out.median_ms = times[times.size() / 2];
  for (double t : times) out.mean_ms += t;
  out.mean_ms /= static_cast<double>(times.size());
  out.spans = spans / static_cast<double>(times.size());
  return out;
}

// --- Serving hot path ---

constexpr const char* kServeProgram = R"(
peer Hospital { relation Doctor(name, hospital); }
peer Clinic { relation Physician(name, clinic); }
stored hdoc(name, hospital) <= Hospital:Doctor(name, hospital).
mapping Clinic:Physician(n, c) :- Hospital:Doctor(n, c).
fact hdoc("alice", "county").
fact hdoc("bo", "mercy").
)";

const char* const kServeQueries[] = {
    "q(n, h) :- Hospital:Doctor(n, h).",
    "q(n, c) :- Clinic:Physician(n, c).",
};

struct ServeMode {
  const char* name;
  bool rolling = false;
  bool access_log = false;
  bool traced = false;
};

struct ServeResult {
  double total_ms = 0;
  double mean_us = 0;  // per answered request
  uint64_t answers = 0;
};

// Pushes `requests` query frames through a fresh in-process executor
// with the mode's sinks attached and times the whole stream; the first
// few requests warm the shared plan cache, the rest are the steady
// state the overhead numbers describe.
ServeResult RunServeMode(const ServeMode& mode, size_t requests,
                         const std::string& log_path) {
  ServeResult out;
  Pdms loader;
  if (!loader.LoadProgram(kServeProgram).ok()) return out;

  obs::RollingStats rolling;
  std::unique_ptr<serve::AccessLog> log;
  if (mode.access_log) {
    auto opened = serve::AccessLog::Open({log_path});
    if (!opened.ok()) {
      std::fprintf(stderr, "access log: %s\n",
                   opened.status().ToString().c_str());
      return out;
    }
    log = std::move(*opened);
  }

  serve::ExecutorOptions options;
  options.workers = 1;  // one facade: serialize so modes compare cleanly
  options.admission.max_queue = requests + 1;
  if (mode.rolling) options.rolling = &rolling;
  options.access_log = log.get();

  serve::RequestExecutor executor(options, nullptr);
  std::mutex mu;
  std::condition_variable cv;
  uint64_t done = 0;
  uint64_t answered = 0;
  Status started = executor.Start(
      loader.network(), loader.database(),
      [&](serve::ServeOutcome outcome) {
        std::lock_guard<std::mutex> lock(mu);
        ++done;
        if (!outcome.shed) ++answered;
        cv.notify_one();
      });
  if (!started.ok()) {
    std::fprintf(stderr, "executor: %s\n", started.ToString().c_str());
    return out;
  }

  WallTimer timer;
  uint64_t submitted = 0;
  for (size_t id = 1; id <= requests; ++id) {
    serve::ServeRequest request;
    request.conn_id = 1;
    request.request_id = id;
    request.query = kServeQueries[id % 2];
    if (mode.traced) {
      request.trace = serve::wire::TraceEnvelope{"obs_overhead",
                                                 obs::kNoSpan};
    }
    if (!executor.Submit(std::move(request)).has_value()) ++submitted;
    // Closed loop: wait for this request before sending the next, so
    // every mode measures per-request service time without queueing.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done >= submitted; });
  }
  out.total_ms = timer.ElapsedMillis();
  executor.Stop();
  out.answers = answered;
  if (answered > 0) {
    out.mean_us = 1000.0 * out.total_ms / static_cast<double>(answered);
  }
  if (log != nullptr) {
    log->Flush();
    std::remove(log_path.c_str());
  }
  return out;
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("obs_overhead", &argc, argv);
  size_t runs = EnvSize("PDMS_BENCH_RUNS", 5);
  size_t diameter = EnvSize("PDMS_BENCH_DIAMETER", 5);
  size_t peers = EnvSize("PDMS_BENCH_PEERS", 96);
  report.params()->Set("runs", runs);
  report.params()->Set("diameter", diameter);
  report.params()->Set("peers", peers);

  std::printf("# Observability overhead on the Figure-3 workload "
              "(%zu peers, diameter %zu, %zu runs per mode)\n",
              peers, diameter, runs);

  pdms::obs::TraceContext trace("obs_overhead");
  pdms::obs::MetricsRegistry metrics;
  struct Mode {
    const char* name;
    pdms::obs::TraceContext* trace;
    pdms::obs::MetricsRegistry* metrics;
  };
  const Mode modes[] = {
      {"null_sink", nullptr, nullptr},
      {"metrics", nullptr, &metrics},
      {"trace+metrics", &trace, &metrics},
  };

  double baseline_ms = 0;
  std::printf("%-14s %12s %12s %12s %12s\n", "mode", "median (ms)",
              "mean (ms)", "overhead", "avg spans");
  for (const Mode& mode : modes) {
    pdms::ModeResult r =
        pdms::RunMode(peers, diameter, runs, mode.trace, mode.metrics);
    if (baseline_ms == 0) baseline_ms = r.median_ms;
    double overhead =
        baseline_ms > 0 ? 100.0 * (r.median_ms - baseline_ms) / baseline_ms
                        : 0;
    std::printf("%-14s %12.3f %12.3f %11.1f%% %12.0f\n", mode.name,
                r.median_ms, r.mean_ms, overhead, r.spans);
    pdms::bench::JsonObject* row = report.AddMetricRow();
    row->Set("mode", mode.name);
    row->Set("median_ms", r.median_ms);
    row->Set("mean_ms", r.mean_ms);
    row->Set("overhead_pct", overhead);
    row->Set("avg_spans", r.spans);
  }
  size_t serve_requests = EnvSize("PDMS_BENCH_SERVE_REQUESTS", 2000);
  report.params()->Set("serve_requests", serve_requests);
  std::printf("\n# Serving hot-path overhead (%zu closed-loop requests "
              "per mode through an in-process RequestExecutor)\n",
              serve_requests);
  const pdms::ServeMode serve_modes[] = {
      {"serve_null", false, false, false},
      {"serve_rolling", true, false, false},
      {"serve_rolling+log", true, true, false},
      {"serve_traced", true, false, true},
  };
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string log_path =
      std::string(tmpdir != nullptr && *tmpdir != '\0' ? tmpdir : "/tmp") +
      "/pdms_obs_overhead_access.log";

  double serve_baseline_us = 0;
  std::printf("%-18s %12s %12s %12s\n", "mode", "total (ms)",
              "mean (us)", "overhead");
  for (const pdms::ServeMode& mode : serve_modes) {
    pdms::ServeResult r =
        pdms::RunServeMode(mode, serve_requests, log_path);
    if (serve_baseline_us == 0) serve_baseline_us = r.mean_us;
    double overhead =
        serve_baseline_us > 0
            ? 100.0 * (r.mean_us - serve_baseline_us) / serve_baseline_us
            : 0;
    std::printf("%-18s %12.1f %12.2f %11.1f%%\n", mode.name, r.total_ms,
                r.mean_us, overhead);
    pdms::bench::JsonObject* row = report.AddMetricRow();
    row->Set("mode", mode.name);
    row->Set("total_ms", r.total_ms);
    row->Set("mean_us", r.mean_us);
    row->Set("overhead_pct", overhead);
    row->Set("answers", static_cast<size_t>(r.answers));
  }

  report.SetExtra("registry", metrics.ToJson());
  return report.Write() ? 0 : 1;
}
