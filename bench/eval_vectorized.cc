// Compares end-to-end UCQ evaluation engines on the Figure-3 synthetic
// workload with data: the legacy tuple-at-a-time backtracking evaluator
// (src/pdms/eval/) against the columnar vectorized engine (src/pdms/qp/),
// cold (fresh engine per evaluation: columnar conversion + planning paid
// every time) and plan-cached warm (one engine, the physical plan reused
// through a PhysicalPlanSlot and scan-side join tables cached in the
// catalog — the serving steady state; docs/query_planning.md).
//
// Reformulation happens once per run outside all timed regions, so the
// numbers isolate evaluation. Every measured evaluation is checked for
// byte-identical answers against the legacy engine (after canonical
// sorting); any mismatch fails the bench.
//
// The workload sweeps diameter on an evaluation-heavy shape: single
// definitional providers, so the rewriting is one chain join whose length
// doubles per stratum instead of a fan of redundant disjuncts whose union
// dedup would dominate both engines identically. The value domain sits
// slightly above the per-relation cardinality (join fan-out ~0.8), so
// deep chains stay selective but still produce answers.
//
// Expected shape: warm vectorized evaluation is an order of magnitude
// faster than tuple-at-a-time at the deeper strata — the legacy engine
// re-walks the whole backtracking search (and rebuilds its per-call hash
// indexes) every evaluation, while the warm engine probes cached join
// tables and moves only live columns; the cold column shows how much of
// the gap is amortized conversion + planning + builds. tools/bench_all.sh
// wraps the report into BENCH_eval.json.
//
// Knobs: PDMS_BENCH_RUNS (default 3), PDMS_BENCH_ITERS (default 5),
// PDMS_BENCH_PEERS (default 48), PDMS_BENCH_MAX_DIAMETER (default 4),
// PDMS_BENCH_FACTS (default 8192), PDMS_BENCH_DOMAIN (default
// facts + facts/4), PDMS_BENCH_PROVIDERS (default 1).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pdms/core/pdms.h"
#include "pdms/eval/evaluator.h"
#include "pdms/gen/workload.h"
#include "pdms/obs/metrics.h"
#include "pdms/qp/engine.h"
#include "pdms/qp/physical_plan.h"
#include "pdms/util/timer.h"

namespace pdms {
namespace {

struct Point {
  double legacy_ms = 0;  // per-evaluation averages over runs (min-of-iters)
  double cold_ms = 0;
  double warm_ms = 0;
  double avg_disjuncts = 0;
  double avg_answers = 0;
  size_t mismatches = 0;
  size_t measured = 0;

  double SpeedupCold() const { return cold_ms > 0 ? legacy_ms / cold_ms : 0; }
  double SpeedupWarm() const { return warm_ms > 0 ? legacy_ms / warm_ms : 0; }
};

std::string SortedAnswerKey(const Relation& answers) {
  Relation copy = answers;
  copy.SortCanonical();
  return copy.ToString();
}

Point MeasurePoint(size_t peers, size_t strata, size_t facts, size_t domain,
                   size_t providers, size_t runs, size_t iters) {
  Point point;
  for (size_t run = 0; run < runs; ++run) {
    gen::WorkloadConfig config;
    config.num_peers = peers;
    config.num_strata = strata;
    // Evaluation-heavy shape: single definitional providers mean the
    // rewriting count stays small while each rewriting is a chain join
    // whose length doubles per stratum — diameter buys join depth, not
    // redundant disjuncts whose union dedup would dominate both engines
    // equally.
    config.providers_per_relation = providers;
    config.definitional_fraction = 1.0;
    config.definitional_union_width = 1;
    config.facts_per_stored = facts;
    config.value_domain = static_cast<int64_t>(domain);
    config.seed = 4200 + 31 * run;
    auto workload = gen::GenerateWorkload(config);
    if (!workload.ok()) {
      std::fprintf(stderr, "generator: %s\n",
                   workload.status().ToString().c_str());
      continue;
    }

    // Reformulate once, outside every timed region: the bench isolates
    // evaluation of the resulting UCQ over the stored data.
    Pdms pdms;
    *pdms.mutable_network() = workload->network;
    *pdms.mutable_database() = workload->data;
    auto reform = pdms.Reformulate(workload->query);
    if (!reform.ok() || reform->rewriting.size() == 0) continue;
    const UnionQuery& uq = reform->rewriting;
    const Database& db = pdms.database();

    // Legacy tuple-at-a-time. One untimed evaluation establishes the
    // reference answers; the timed loop keeps the minimum, the usual
    // low-noise estimator for a deterministic computation.
    auto legacy = EvaluateUnionDegraded(uq, db, StoredGate());
    if (!legacy.ok()) continue;
    const std::string reference = SortedAnswerKey(legacy->answers);
    double legacy_ms = 0;
    for (size_t it = 0; it < iters; ++it) {
      WallTimer timer;
      auto r = EvaluateUnionDegraded(uq, db, StoredGate());
      double ms = timer.ElapsedMillis();
      if (!r.ok() || SortedAnswerKey(r->answers) != reference) {
        ++point.mismatches;
        continue;
      }
      legacy_ms = it == 0 ? ms : std::min(legacy_ms, ms);
    }

    // Vectorized cold: a fresh engine every time, so each evaluation pays
    // columnar conversion, statistics, planning, and join-table builds.
    double cold_ms = 0;
    for (size_t it = 0; it < iters; ++it) {
      qp::Engine engine;
      WallTimer timer;
      auto r = engine.EvaluateUnionDegraded(uq, db, StoredGate());
      double ms = timer.ElapsedMillis();
      if (!r.ok() || r->answers.ToString() != reference) {
        ++point.mismatches;
        continue;
      }
      cold_ms = it == 0 ? ms : std::min(cold_ms, ms);
    }

    // Vectorized warm: one engine and one PhysicalPlanSlot across
    // evaluations — the plan revalidates by statistics fingerprint and the
    // scan-side join tables stay cached, as in a serving facade behind the
    // plan cache. One untimed evaluation warms both.
    qp::Engine engine;
    qp::PhysicalPlanSlot slot;
    (void)engine.EvaluateUnionDegraded(uq, db, StoredGate(), nullptr, nullptr,
                                       nullptr, &slot);
    double warm_ms = 0;
    for (size_t it = 0; it < iters; ++it) {
      WallTimer timer;
      auto r = engine.EvaluateUnionDegraded(uq, db, StoredGate(), nullptr,
                                            nullptr, nullptr, &slot);
      double ms = timer.ElapsedMillis();
      if (!r.ok() || r->answers.ToString() != reference) {
        ++point.mismatches;
        continue;
      }
      warm_ms = it == 0 ? ms : std::min(warm_ms, ms);
    }

    ++point.measured;
    point.legacy_ms += legacy_ms;
    point.cold_ms += cold_ms;
    point.warm_ms += warm_ms;
    point.avg_disjuncts += static_cast<double>(uq.size());
    point.avg_answers += static_cast<double>(legacy->answers.size());
  }
  if (point.measured > 0) {
    double n = static_cast<double>(point.measured);
    point.legacy_ms /= n;
    point.cold_ms /= n;
    point.warm_ms /= n;
    point.avg_disjuncts /= n;
    point.avg_answers /= n;
  }
  return point;
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("eval_vectorized", &argc, argv);
  size_t runs = EnvSize("PDMS_BENCH_RUNS", 3);
  size_t iters = EnvSize("PDMS_BENCH_ITERS", 5);
  size_t peers = EnvSize("PDMS_BENCH_PEERS", 48);
  size_t max_diameter = EnvSize("PDMS_BENCH_MAX_DIAMETER", 4);
  size_t facts = EnvSize("PDMS_BENCH_FACTS", 8192);
  size_t domain = EnvSize("PDMS_BENCH_DOMAIN", facts + facts / 4);
  size_t providers = EnvSize("PDMS_BENCH_PROVIDERS", 1);
  report.params()->Set("runs", runs);
  report.params()->Set("iters", iters);
  report.params()->Set("peers", peers);
  report.params()->Set("max_diameter", max_diameter);
  report.params()->Set("facts_per_stored", facts);
  report.params()->Set("value_domain", domain);
  report.params()->Set("providers_per_relation", providers);

  std::printf(
      "# Evaluation engines: legacy tuple-at-a-time vs vectorized "
      "(%zu peers, %zu facts/stored, min of %zu iters, avg of %zu runs)\n",
      peers, facts, iters, runs);
  std::printf("%-9s %10s %10s %10s %9s %9s %10s %9s %6s\n", "diameter",
              "legacy_ms", "cold_ms", "warm_ms", "cold_x", "warm_x",
              "disjuncts", "answers", "match");
  size_t mismatches = 0;
  for (size_t strata = 2; strata <= max_diameter; ++strata) {
    pdms::Point p =
        pdms::MeasurePoint(peers, strata, facts, domain, providers, runs, iters);
    std::printf("%-9zu %10.3f %10.3f %10.3f %8.1fx %8.1fx %10.1f %9.1f %6s\n",
                strata, p.legacy_ms, p.cold_ms, p.warm_ms, p.SpeedupCold(),
                p.SpeedupWarm(), p.avg_disjuncts, p.avg_answers,
                p.mismatches == 0 ? "yes" : "NO");
    mismatches += p.mismatches;
    std::fflush(stdout);
    pdms::bench::JsonObject* row = report.AddMetricRow();
    row->Set("diameter", strata);
    row->Set("legacy_ms", p.legacy_ms);
    row->Set("vectorized_cold_ms", p.cold_ms);
    row->Set("vectorized_warm_ms", p.warm_ms);
    row->Set("speedup_cold", p.SpeedupCold());
    row->Set("speedup_warm", p.SpeedupWarm());
    row->Set("avg_disjuncts", p.avg_disjuncts);
    row->Set("avg_answers", p.avg_answers);
    row->Set("mismatches", p.mismatches);
    row->Set("runs_measured", p.measured);
  }
  if (mismatches > 0) {
    std::printf("# ERROR: %zu evaluation(s) diverged from the legacy "
                "answers\n",
                mismatches);
    return 1;
  }
  std::printf("# all vectorized answer sets matched the legacy engine\n");
  return report.Write() ? 0 : 1;
}
