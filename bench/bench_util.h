#ifndef PDMS_BENCH_BENCH_UTIL_H_
#define PDMS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pdms {
namespace bench {

/// Reads a size_t configuration knob from the environment, e.g.
/// PDMS_BENCH_RUNS=100 ./fig3_tree_size. Benchmarks default to settings
/// that finish in about a minute on a laptop; raise the knobs to match the
/// paper's 100-run averages exactly.
inline size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtod(value, nullptr);
}

}  // namespace bench
}  // namespace pdms

#endif  // PDMS_BENCH_BENCH_UTIL_H_
