#ifndef PDMS_BENCH_BENCH_UTIL_H_
#define PDMS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace pdms {
namespace bench {

/// Reads a size_t configuration knob from the environment, e.g.
/// PDMS_BENCH_RUNS=100 ./fig3_tree_size. Benchmarks default to settings
/// that finish in about a minute on a laptop; raise the knobs to match the
/// paper's 100-run averages exactly.
inline size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtod(value, nullptr);
}

// --- Machine-readable benchmark output (--json out.json) ---
//
// Every bench binary shares one schema so tools/bench_all.sh can merge
// the files without a JSON library:
//
//   {"name": "<binary>", "seed": N,
//    "host": {"hardware_concurrency": C, "build": "<preset>"},
//    "params": {"knob": value, ...},
//    "metrics": [{"field": value, ...}, ...]}
//
// The "host" object makes throughput numbers self-explaining: a flat
// multi-server sweep on a 1-core container is expected, not a regression.

/// Encodes a JSON string literal (quotes, backslashes, control bytes).
inline std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Encodes a finite double compactly ("3", "0.125", "1.5e-05").
inline std::string JsonNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// The build preset baked in by bench/CMakeLists.txt (CMAKE_BUILD_TYPE),
/// falling back to what the preprocessor can tell.
inline const char* BuildPreset() {
#ifdef NDEBUG
  const char* fallback = "release-flags";
#else
  const char* fallback = "debug-flags";
#endif
#ifdef PDMS_BUILD_TYPE
  if (PDMS_BUILD_TYPE[0] != '\0') return PDMS_BUILD_TYPE;
#endif
  return fallback;
}

/// A flat JSON object with insertion-ordered, pre-encoded fields.
struct JsonObject {
  std::vector<std::pair<std::string, std::string>> fields;

  void Set(const std::string& key, double value) {
    fields.emplace_back(key, JsonNumber(value));
  }
  void Set(const std::string& key, size_t value) {
    fields.emplace_back(key, std::to_string(value));
  }
  void Set(const std::string& key, const std::string& value) {
    fields.emplace_back(key, JsonEscape(value));
  }
  void Set(const std::string& key, const char* value) {
    fields.emplace_back(key, JsonEscape(value));
  }

  std::string Encode() const {
    std::string out = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ", ";
      out += JsonEscape(fields[i].first);
      out += ": ";
      out += fields[i].second;
    }
    out += "}";
    return out;
  }
};

/// One benchmark's machine-readable report. Construction strips
/// `--json <path>` / `--json=<path>` from argv (so google-benchmark
/// binaries can still pass the rest to benchmark::Initialize); Write()
/// emits the file if the flag was present and is a no-op otherwise.
class JsonReport {
 public:
  JsonReport(std::string name, int* argc, char** argv) : name_(std::move(name)) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
        path_ = argv[++i];
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        path_ = argv[i] + 7;
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
  }

  bool enabled() const { return !path_.empty(); }
  void set_seed(uint64_t seed) { seed_ = seed; }

  /// Attaches a pre-encoded JSON value as an extra top-level field, emitted
  /// after "metrics" — e.g. SetExtra("registry", metrics.ToJson()) merges an
  /// obs::MetricsRegistry snapshot into the report verbatim.
  void SetExtra(const std::string& key, std::string raw_json) {
    for (auto& [k, v] : extras_) {
      if (k == key) {
        v = std::move(raw_json);
        return;
      }
    }
    extras_.emplace_back(key, std::move(raw_json));
  }

  JsonObject* params() { return &params_; }
  /// Adds one metrics row; the pointer stays valid (deque storage).
  JsonObject* AddMetricRow() {
    rows_.emplace_back();
    return &rows_.back();
  }

  /// Writes the report; returns false (with a message on stderr) if the
  /// file cannot be created.
  bool Write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    JsonObject host;
    host.Set("hardware_concurrency",
             static_cast<size_t>(std::thread::hardware_concurrency()));
    host.Set("build", BuildPreset());
    std::string out = "{\"name\": " + JsonEscape(name_) +
                      ", \"seed\": " + std::to_string(seed_) +
                      ", \"host\": " + host.Encode() +
                      ", \"params\": " + params_.Encode() +
                      ", \"metrics\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ", ";
      out += rows_[i].Encode();
    }
    out += "]";
    for (const auto& [key, raw] : extras_) {
      out += ", " + JsonEscape(key) + ": " + raw;
    }
    out += "}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu metric rows)\n", path_.c_str(),
                 rows_.size());
    return true;
  }

 private:
  std::string name_;
  std::string path_;
  uint64_t seed_ = 0;
  JsonObject params_;
  std::deque<JsonObject> rows_;
  std::vector<std::pair<std::string, std::string>> extras_;  // raw JSON
};

}  // namespace bench
}  // namespace pdms

#endif  // PDMS_BENCH_BENCH_UTIL_H_
