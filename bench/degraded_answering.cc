// Measures graceful degradation on the Figure-3 synthetic workload: as a
// growing fraction of data-serving peers becomes unavailable, how much
// reformulation work is saved (branches pruned before enumeration), how
// many rewritings survive, and how much of the answer set is lost.
//
// Expected shape: reformulation time and rewriting count fall monotonically
// with the unavailable fraction (pruning pays for itself), answers shrink
// toward zero, and the completeness verdict flips kComplete -> kPartial ->
// kEmptyBecauseUnavailable. Every degraded answer set is a subset of the
// fully-available one; the harness verifies this on every run.
//
// Knobs: PDMS_BENCH_RUNS (default 5), PDMS_BENCH_PEERS (default 64),
// PDMS_BENCH_STRATA (default 3).

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pdms/core/pdms.h"
#include "pdms/gen/workload.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace {

struct Point {
  double avg_reform_ms = 0;
  double avg_rewritings = 0;
  double avg_pruned = 0;
  double avg_answers = 0;
  double avg_loss = 0;  // 1 - |degraded| / |full|, over runs with answers
  size_t complete = 0;
  size_t partial = 0;
  size_t empty_unavail = 0;
  size_t subset_violations = 0;
};

// The peers that actually serve stored relations; only these matter for
// availability (mediator-stratum peers hold no data).
std::vector<std::string> ServingPeers(const PdmsNetwork& network) {
  std::set<std::string> peers;
  for (const auto& desc : network.storage_descriptions()) {
    if (!desc.peer.empty()) peers.insert(desc.peer);
  }
  return {peers.begin(), peers.end()};
}

Point MeasurePoint(size_t num_peers, size_t strata, double down_fraction,
                   size_t runs) {
  Point point;
  size_t measured = 0;
  for (size_t run = 0; run < runs; ++run) {
    gen::WorkloadConfig config;
    config.num_peers = num_peers;
    config.num_strata = strata;
    config.providers_per_relation = 2;
    config.facts_per_stored = 8;
    config.seed = 9000 + run;
    auto workload = gen::GenerateWorkload(config);
    if (!workload.ok()) {
      std::fprintf(stderr, "generator: %s\n",
                   workload.status().ToString().c_str());
      continue;
    }

    // The fully-available reference answers for the subset check.
    Pdms full;
    *full.mutable_network() = workload->network;
    *full.mutable_database() = workload->data;
    auto full_result = full.AnswerWithReport(workload->query);
    if (!full_result.ok()) continue;

    Pdms pdms;
    *pdms.mutable_network() = workload->network;
    *pdms.mutable_database() = workload->data;
    std::vector<std::string> serving = ServingPeers(pdms.network());
    size_t down_count = static_cast<size_t>(
        down_fraction * static_cast<double>(serving.size()) + 0.5);
    Rng rng(config.seed ^ 0x9e3779b97f4a7c15ull);
    for (size_t i = 0; i < down_count && !serving.empty(); ++i) {
      size_t pick = rng.Uniform(serving.size());
      (void)pdms.mutable_network()->SetPeerAvailable(serving[pick], false);
      serving.erase(serving.begin() + static_cast<long>(pick));
    }

    auto result = pdms.AnswerWithReport(workload->query);
    if (!result.ok()) continue;
    ++measured;

    point.avg_reform_ms += result->stats.build_ms + result->stats.enumerate_ms;
    point.avg_rewritings += static_cast<double>(result->stats.rewritings);
    point.avg_pruned +=
        static_cast<double>(result->stats.pruned_unavailable);
    point.avg_answers += static_cast<double>(result->answers.size());
    switch (result->degradation.completeness) {
      case Completeness::kComplete: ++point.complete; break;
      case Completeness::kPartial: ++point.partial; break;
      case Completeness::kEmptyBecauseUnavailable:
        ++point.empty_unavail;
        break;
    }
    if (full_result->answers.size() > 0) {
      point.avg_loss += 1.0 - static_cast<double>(result->answers.size()) /
                                  static_cast<double>(
                                      full_result->answers.size());
    }
    for (const Tuple& t : result->answers.tuples()) {
      if (!full_result->answers.Contains(t)) {
        ++point.subset_violations;
        break;
      }
    }
  }
  if (measured > 0) {
    double n = static_cast<double>(measured);
    point.avg_reform_ms /= n;
    point.avg_rewritings /= n;
    point.avg_pruned /= n;
    point.avg_answers /= n;
    point.avg_loss /= n;
  }
  return point;
}

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  using pdms::bench::EnvSize;
  pdms::bench::JsonReport report("degraded_answering", &argc, argv);
  size_t runs = EnvSize("PDMS_BENCH_RUNS", 5);
  size_t peers = EnvSize("PDMS_BENCH_PEERS", 64);
  size_t strata = EnvSize("PDMS_BENCH_STRATA", 3);
  report.params()->Set("runs", runs);
  report.params()->Set("peers", peers);
  report.params()->Set("strata", strata);

  std::printf(
      "# Degraded answering: Figure-3 workload (%zu peers, %zu strata, "
      "avg of %zu runs)\n",
      peers, strata, runs);
  std::printf("%-8s %10s %11s %9s %9s %7s %20s %8s\n", "down", "reform_ms",
              "rewritings", "pruned", "answers", "loss%",
              "complete/partial/empty", "sound");
  size_t violations = 0;
  for (double fraction : {0.0, 0.10, 0.25, 0.50, 0.75, 1.0}) {
    pdms::Point p = pdms::MeasurePoint(peers, strata, fraction, runs);
    std::printf("%-8.2f %10.2f %11.1f %9.1f %9.1f %7.1f %8zu/%zu/%zu %12s\n",
                fraction, p.avg_reform_ms, p.avg_rewritings, p.avg_pruned,
                p.avg_answers, 100.0 * p.avg_loss, p.complete, p.partial,
                p.empty_unavail, p.subset_violations == 0 ? "yes" : "NO");
    violations += p.subset_violations;
    std::fflush(stdout);
    pdms::bench::JsonObject* row = report.AddMetricRow();
    row->Set("down_fraction", fraction);
    row->Set("avg_reform_ms", p.avg_reform_ms);
    row->Set("avg_rewritings", p.avg_rewritings);
    row->Set("avg_pruned", p.avg_pruned);
    row->Set("avg_answers", p.avg_answers);
    row->Set("avg_loss", p.avg_loss);
    row->Set("complete", p.complete);
    row->Set("partial", p.partial);
    row->Set("empty_unavailable", p.empty_unavail);
    row->Set("subset_violations", p.subset_violations);
  }
  if (violations > 0) {
    std::printf("# ERROR: %zu run(s) produced non-certain answers\n",
                violations);
    return 1;
  }
  std::printf("# all degraded answer sets were subsets of the full run\n");
  return report.Write() ? 0 : 1;
}
