// Substrate micro-benchmark (google-benchmark): the standalone MiniCon
// algorithm [23] that powers inclusion expansion, as a function of the
// number of available views. Mirrors the scaling experiments in the
// MiniCon paper: rewriting time grows with the number of relevant views;
// irrelevant views are cheap to discard.

#include <benchmark/benchmark.h>

#include "gbench_json.h"

#include "pdms/lang/conjunctive_query.h"
#include "pdms/minicon/rewrite.h"
#include "pdms/util/check.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace {

// A chain query e0(x0,x1), e1(x1,x2), ..., head = endpoints.
ConjunctiveQuery ChainQuery(size_t length, size_t num_predicates) {
  std::vector<Atom> body;
  for (size_t i = 0; i < length; ++i) {
    std::string pred = "e" + std::to_string(i % num_predicates);
    body.emplace_back(pred,
                      std::vector<Term>{Term::Var("x" + std::to_string(i)),
                                        Term::Var("x" + std::to_string(i + 1))});
  }
  Atom head("q", {Term::Var("x0"), Term::Var("x" + std::to_string(length))});
  return ConjunctiveQuery(std::move(head), std::move(body));
}

// Random 2-atom chain views over the same predicates; roughly half expose
// both endpoints (usable) and half project one away (discarded by the
// MiniCon property).
std::vector<ConjunctiveQuery> RandomViews(size_t count,
                                          size_t num_predicates,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<ConjunctiveQuery> views;
  for (size_t v = 0; v < count; ++v) {
    std::string p1 = "e" + std::to_string(rng.Uniform(num_predicates));
    std::string p2 = "e" + std::to_string(rng.Uniform(num_predicates));
    std::vector<Atom> body = {
        Atom(p1, {Term::Var("a"), Term::Var("b")}),
        Atom(p2, {Term::Var("b"), Term::Var("c")}),
    };
    std::vector<Term> head_args;
    if (rng.Chance(0.5)) {
      head_args = {Term::Var("a"), Term::Var("b"), Term::Var("c")};
    } else {
      head_args = {Term::Var("a")};  // projects the join away: unusable
    }
    views.emplace_back(Atom("v" + std::to_string(v), head_args),
                       std::move(body));
  }
  return views;
}

void BM_MiniConRewrite(benchmark::State& state) {
  size_t num_views = static_cast<size_t>(state.range(0));
  ConjunctiveQuery query = ChainQuery(4, 4);
  std::vector<ConjunctiveQuery> views = RandomViews(num_views, 4, 42);
  size_t rewritings = 0;
  for (auto _ : state) {
    auto result = MiniConRewrite(query, views);
    PDMS_CHECK(result.ok());
    rewritings = result->size();
    benchmark::DoNotOptimize(rewritings);
  }
  state.counters["rewritings"] = static_cast<double>(rewritings);
}
BENCHMARK(BM_MiniConRewrite)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MiniConIrrelevantViews(benchmark::State& state) {
  // All views over predicates the query never mentions: discarding them
  // should be near-free regardless of count.
  size_t num_views = static_cast<size_t>(state.range(0));
  ConjunctiveQuery query = ChainQuery(4, 4);
  std::vector<ConjunctiveQuery> views;
  for (size_t v = 0; v < num_views; ++v) {
    views.emplace_back(
        Atom("w" + std::to_string(v), {Term::Var("a"), Term::Var("b")}),
        std::vector<Atom>{
            Atom("zz" + std::to_string(v),
                 {Term::Var("a"), Term::Var("b")})});
  }
  for (auto _ : state) {
    auto result = MiniConRewrite(query, views);
    PDMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_MiniConIrrelevantViews)->Arg(64)->Arg(512);

}  // namespace
}  // namespace pdms

int main(int argc, char** argv) {
  return pdms::bench::GbenchJsonMain("minicon_scaling", argc, argv);
}
