#include "pdms/lang/parser.h"

#include <cctype>
#include <charconv>

#include "pdms/util/strings.h"

namespace pdms {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool AllDigits(std::string_view s) {
  size_t start = (!s.empty() && s[0] == '-') ? 1 : 0;
  if (start == s.size()) return false;
  for (size_t i = start; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string payload = "") {
    tokens.push_back(Token{kind, std::move(payload), line});
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Line comments: "//" and "#".
    if (c == '#' || (c == '/' && i + 1 < text.size() && text[i + 1] == '/')) {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (IsIdentChar(c) ||
        (c == '-' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < text.size() && IsIdentChar(text[i])) ++i;
      std::string_view word = text.substr(start, i - start);
      push(AllDigits(word) ? TokenKind::kNumber : TokenKind::kIdent,
           std::string(word));
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      std::string payload;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\\' && i + 1 < text.size()) {
          payload += text[i + 1];
          i += 2;
          continue;
        }
        if (text[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        if (text[i] == '\n') ++line;
        payload += text[i++];
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("line %d: unterminated string literal starting at "
                      "offset %zu",
                      line, start));
      }
      push(TokenKind::kString, std::move(payload));
      continue;
    }
    auto two = [&](char next) {
      return i + 1 < text.size() && text[i + 1] == next;
    };
    switch (c) {
      case '(':
        push(TokenKind::kLParen);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot);
        ++i;
        break;
      case '{':
        push(TokenKind::kLBrace);
        ++i;
        break;
      case '}':
        push(TokenKind::kRBrace);
        ++i;
        break;
      case ';':
        push(TokenKind::kSemicolon);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash);
        ++i;
        break;
      case ':':
        if (two('-')) {
          push(TokenKind::kColonDash);
          i += 2;
        } else {
          push(TokenKind::kColon);
          ++i;
        }
        break;
      case '=':
        push(TokenKind::kEq);
        ++i;
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::kNe);
          i += 2;
        } else {
          return Status::InvalidArgument(
              StrFormat("line %d: unexpected character '!'", line));
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenKind::kLe);
          i += 2;
        } else {
          push(TokenKind::kLt);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe);
          i += 2;
        } else {
          push(TokenKind::kGt);
          ++i;
        }
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("line %d: unexpected character '%c'", line, c));
    }
  }
  tokens.push_back(Token{TokenKind::kEnd, "", line});
  return tokens;
}

Result<Parser> Parser::Create(std::string_view text) {
  PDMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens));
}

const Token& Parser::Peek(size_t ahead) const {
  size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // kEnd sentinel
  return tokens_[idx];
}

Token Parser::Next() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

Status Parser::Expect(TokenKind kind, const char* what) {
  if (Peek().kind != kind) {
    return Error(StrFormat("expected %s, found '%s'", what,
                           Peek().text.empty() ? "<symbol>"
                                               : Peek().text.c_str()));
  }
  Next();
  return Status::Ok();
}

bool Parser::Accept(TokenKind kind) {
  if (Peek().kind != kind) return false;
  Next();
  return true;
}

Status Parser::Error(const std::string& message) const {
  return Status::InvalidArgument(
      StrFormat("line %d: %s", Peek().line, message.c_str()));
}

Result<Term> Parser::ParseTerm() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kIdent: {
      if (Peek().text == "_") {
        Next();
        return anon_vars_.Fresh();
      }
      return Term::Var(Next().text);
    }
    case TokenKind::kNumber: {
      std::string digits = Next().text;
      int64_t value = 0;
      auto [end, ec] = std::from_chars(
          digits.data(), digits.data() + digits.size(), value);
      if (ec != std::errc() || end != digits.data() + digits.size()) {
        return Error("integer literal out of range: " + digits);
      }
      return Term::Int(value);
    }
    case TokenKind::kString:
      return Term::String(Next().text);
    default:
      return Error("expected a term (variable, number, or string)");
  }
}

Result<Atom> Parser::ParseAtom() {
  if (Peek().kind != TokenKind::kIdent) {
    return Error("expected a predicate name");
  }
  std::string name = Next().text;
  if (Accept(TokenKind::kColon)) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected a relation name after ':'");
    }
    name += ":";
    name += Next().text;
  }
  PDMS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
  std::vector<Term> args;
  if (!Accept(TokenKind::kRParen)) {
    for (;;) {
      PDMS_ASSIGN_OR_RETURN(Term term, ParseTerm());
      args.push_back(std::move(term));
      if (Accept(TokenKind::kRParen)) break;
      PDMS_RETURN_IF_ERROR(Expect(TokenKind::kComma, "',' or ')'"));
    }
  }
  return Atom(std::move(name), std::move(args));
}

namespace {

bool IsCmpToken(TokenKind kind, CmpOp* op) {
  switch (kind) {
    case TokenKind::kEq:
      *op = CmpOp::kEq;
      return true;
    case TokenKind::kNe:
      *op = CmpOp::kNe;
      return true;
    case TokenKind::kLt:
      *op = CmpOp::kLt;
      return true;
    case TokenKind::kLe:
      *op = CmpOp::kLe;
      return true;
    case TokenKind::kGt:
      *op = CmpOp::kGt;
      return true;
    case TokenKind::kGe:
      *op = CmpOp::kGe;
      return true;
    default:
      return false;
  }
}

}  // namespace

Status Parser::ParseBody(std::vector<Atom>* atoms,
                         std::vector<Comparison>* comparisons) {
  for (;;) {
    // Lookahead: IDENT followed by '(' or ':' is an atom; otherwise the
    // element must be a comparison `term op term`.
    bool is_atom = Peek().kind == TokenKind::kIdent &&
                   (Peek(1).kind == TokenKind::kLParen ||
                    Peek(1).kind == TokenKind::kColon);
    if (is_atom) {
      PDMS_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      atoms->push_back(std::move(atom));
    } else {
      PDMS_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
      CmpOp op;
      if (!IsCmpToken(Peek().kind, &op)) {
        return Error("expected a comparison operator");
      }
      Next();
      PDMS_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      comparisons->push_back(Comparison{std::move(lhs), op, std::move(rhs)});
    }
    if (!Accept(TokenKind::kComma)) break;
  }
  return Status::Ok();
}

Result<ConjunctiveQuery> Parser::ParseRule() {
  PDMS_ASSIGN_OR_RETURN(Atom head, ParseAtom());
  PDMS_RETURN_IF_ERROR(Expect(TokenKind::kColonDash, "':-'"));
  std::vector<Atom> body;
  std::vector<Comparison> comparisons;
  PDMS_RETURN_IF_ERROR(ParseBody(&body, &comparisons));
  if (!Accept(TokenKind::kDot) && !AtEnd()) {
    return Error("expected '.' at end of rule");
  }
  return ConjunctiveQuery(std::move(head), std::move(body),
                          std::move(comparisons));
}

Result<std::vector<ConjunctiveQuery>> Parser::ParseRules() {
  std::vector<ConjunctiveQuery> rules;
  while (!AtEnd()) {
    PDMS_ASSIGN_OR_RETURN(ConjunctiveQuery rule, ParseRule());
    rules.push_back(std::move(rule));
  }
  return rules;
}

Result<ConjunctiveQuery> ParseRuleText(std::string_view text) {
  PDMS_ASSIGN_OR_RETURN(Parser parser, Parser::Create(text));
  PDMS_ASSIGN_OR_RETURN(ConjunctiveQuery rule, parser.ParseRule());
  if (!parser.AtEnd()) {
    return parser.Error("unexpected trailing input after rule");
  }
  return rule;
}

Result<Atom> ParseAtomText(std::string_view text) {
  PDMS_ASSIGN_OR_RETURN(Parser parser, Parser::Create(text));
  PDMS_ASSIGN_OR_RETURN(Atom atom, parser.ParseAtom());
  if (!parser.AtEnd()) {
    return parser.Error("unexpected trailing input after atom");
  }
  return atom;
}

}  // namespace pdms
