#ifndef PDMS_LANG_CANONICAL_H_
#define PDMS_LANG_CANONICAL_H_

#include <string>

#include "pdms/lang/conjunctive_query.h"

namespace pdms {

/// A pattern key for an atom that abstracts variable *names* but preserves
/// the repetition pattern and constants: p(x, y, x, 3) and p(a, b, a, 3)
/// both map to "p(#0,#1,#0,3)". Used to memoize rule-goal-tree expansions
/// (Section 4.3 "memoization of nodes"): two goal nodes with the same key
/// expand identically.
std::string CanonicalAtomKey(const Atom& atom);

/// Renames the variables of `cq` to v0, v1, ... in first-appearance order
/// (head first). Two syntactically-isomorphic queries canonicalize to equal
/// structures.
ConjunctiveQuery CanonicalRename(const ConjunctiveQuery& cq);

/// A normalization key for a conjunctive query: canonical-renames, sorts the
/// body atoms and comparisons textually, and repeats until the text reaches
/// a fixpoint (bounded number of rounds). Queries equal up to variable
/// renaming and body reordering get equal keys; this is a syntactic dedup
/// aid, not a full equivalence test (see homomorphism.h for that).
std::string CanonicalQueryKey(const ConjunctiveQuery& cq);

}  // namespace pdms

#endif  // PDMS_LANG_CANONICAL_H_
