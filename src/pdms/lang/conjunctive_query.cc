#include "pdms/lang/conjunctive_query.h"

#include <algorithm>

#include "pdms/util/strings.h"

namespace pdms {

namespace {

void AddUnique(const std::string& name, std::vector<std::string>* out) {
  if (std::find(out->begin(), out->end(), name) == out->end()) {
    out->push_back(name);
  }
}

}  // namespace

void CollectVariables(const Atom& atom, std::vector<std::string>* out) {
  for (const Term& t : atom.args()) {
    if (t.is_variable()) AddUnique(t.var_name(), out);
  }
}

void CollectVariables(const Comparison& cmp, std::vector<std::string>* out) {
  if (cmp.lhs.is_variable()) AddUnique(cmp.lhs.var_name(), out);
  if (cmp.rhs.is_variable()) AddUnique(cmp.rhs.var_name(), out);
}

std::vector<std::string> ConjunctiveQuery::AllVariables() const {
  std::vector<std::string> out;
  CollectVariables(head_, &out);
  for (const Atom& a : body_) CollectVariables(a, &out);
  for (const Comparison& c : comparisons_) CollectVariables(c, &out);
  return out;
}

std::vector<std::string> ConjunctiveQuery::HeadVariables() const {
  std::vector<std::string> out;
  CollectVariables(head_, &out);
  return out;
}

std::vector<std::string> ConjunctiveQuery::ExistentialVariables() const {
  std::vector<std::string> head_vars = HeadVariables();
  std::vector<std::string> out;
  for (const Atom& a : body_) CollectVariables(a, &out);
  std::vector<std::string> existential;
  for (const std::string& v : out) {
    if (std::find(head_vars.begin(), head_vars.end(), v) == head_vars.end()) {
      existential.push_back(v);
    }
  }
  return existential;
}

bool ConjunctiveQuery::IsDistinguished(const std::string& name) const {
  for (const Term& t : head_.args()) {
    if (t.is_variable() && t.var_name() == name) return true;
  }
  return false;
}

Status ConjunctiveQuery::CheckSafe() const {
  std::vector<std::string> body_vars;
  for (const Atom& a : body_) CollectVariables(a, &body_vars);
  auto in_body = [&](const std::string& v) {
    return std::find(body_vars.begin(), body_vars.end(), v) !=
           body_vars.end();
  };
  for (const Term& t : head_.args()) {
    if (t.is_variable() && !in_body(t.var_name())) {
      return Status::InvalidArgument(
          StrFormat("unsafe head variable '%s' in %s",
                    t.var_name().c_str(), ToString().c_str()));
    }
  }
  for (const Comparison& c : comparisons_) {
    for (const Term* t : {&c.lhs, &c.rhs}) {
      if (t->is_variable() && !in_body(t->var_name())) {
        return Status::InvalidArgument(
            StrFormat("unsafe comparison variable '%s' in %s",
                      t->var_name().c_str(), ToString().c_str()));
      }
    }
  }
  return Status::Ok();
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = head_.ToString();
  out += " :- ";
  std::vector<std::string> parts;
  parts.reserve(body_.size() + comparisons_.size());
  for (const Atom& a : body_) parts.push_back(a.ToString());
  for (const Comparison& c : comparisons_) parts.push_back(c.ToString());
  out += StrJoin(parts, ", ");
  out += ".";
  return out;
}

std::string UnionQuery::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(disjuncts_.size());
  for (const ConjunctiveQuery& cq : disjuncts_) parts.push_back(cq.ToString());
  return StrJoin(parts, "\nUNION\n");
}

}  // namespace pdms
