#ifndef PDMS_LANG_ATOM_H_
#define PDMS_LANG_ATOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdms/lang/term.h"

namespace pdms {

/// A relational atom `p(t1, ..., tn)`. The predicate is a flat string;
/// peer-qualified relations use the paper's `Peer:Relation` spelling
/// (e.g. "H:Doctor") and stored relations a plain name — the paper assumes
/// relation names are globally unique, which qualification guarantees.
class Atom {
 public:
  Atom() = default;
  Atom(std::string predicate, std::vector<Term> args)
      : predicate_(std::move(predicate)), args_(std::move(args)) {}

  const std::string& predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  std::vector<Term>* mutable_args() { return &args_; }
  size_t arity() const { return args_.size(); }

  bool operator==(const Atom& other) const {
    return predicate_ == other.predicate_ && args_ == other.args_;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }

  uint64_t Hash() const;

  /// `p(x, 3, "a")`.
  std::string ToString() const;

 private:
  std::string predicate_;
  std::vector<Term> args_;
};

/// Comparison operators allowed in comparison predicates.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Token for the operator ("=", "!=", "<", "<=", ">", ">=").
const char* CmpOpName(CmpOp op);

/// The operator with its arguments swapped (x < y  <=>  y > x).
CmpOp FlipCmpOp(CmpOp op);

/// The negation of the operator over a dense total order (¬< is >=).
CmpOp NegateCmpOp(CmpOp op);

/// Evaluates `lhs op rhs` over two concrete values. Comparisons between
/// values of different kinds (int vs string vs labeled null) are false for
/// every operator except `!=`, which is true; order comparisons involving a
/// labeled null are always false (the null's value is unknown).
bool EvalCmp(CmpOp op, const Value& lhs, const Value& rhs);

/// A comparison predicate `t1 op t2` appearing in a query body.
struct Comparison {
  Term lhs;
  CmpOp op = CmpOp::kEq;
  Term rhs;

  bool operator==(const Comparison& other) const {
    return lhs == other.lhs && op == other.op && rhs == other.rhs;
  }

  uint64_t Hash() const;
  std::string ToString() const;
};

}  // namespace pdms

#endif  // PDMS_LANG_ATOM_H_
