#ifndef PDMS_LANG_TERM_H_
#define PDMS_LANG_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "pdms/data/value.h"
#include "pdms/util/check.h"

namespace pdms {

/// A term of a conjunctive query: either a variable (named) or a constant
/// (a data Value). There are no function symbols — PPL queries are
/// select-project-join queries, so unification is trivial (no occurs
/// check is required).
class Term {
 public:
  /// Default-constructs an unnamed variable; prefer the factories.
  Term() : is_var_(true) {}

  static Term Var(std::string name) {
    Term t;
    t.is_var_ = true;
    t.name_ = std::move(name);
    return t;
  }
  static Term Constant(Value value) {
    Term t;
    t.is_var_ = false;
    t.value_ = std::move(value);
    return t;
  }
  static Term Int(int64_t v) { return Constant(Value::Int(v)); }
  static Term String(std::string v) {
    return Constant(Value::String(std::move(v)));
  }

  bool is_variable() const { return is_var_; }
  bool is_constant() const { return !is_var_; }

  const std::string& var_name() const {
    PDMS_DCHECK(is_var_);
    return name_;
  }
  const Value& value() const {
    PDMS_DCHECK(!is_var_);
    return value_;
  }

  bool operator==(const Term& other) const {
    if (is_var_ != other.is_var_) return false;
    return is_var_ ? name_ == other.name_ : value_ == other.value_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }
  bool operator<(const Term& other) const {
    if (is_var_ != other.is_var_) return is_var_ && !other.is_var_;
    return is_var_ ? name_ < other.name_ : value_ < other.value_;
  }

  uint64_t Hash() const;

  /// Variables render as their name; constants as Value::ToString.
  std::string ToString() const;

 private:
  bool is_var_;
  std::string name_;  // variable name when is_var_
  Value value_;       // constant payload otherwise
};

/// Generates globally-unique fresh variable names. Every renaming
/// (rule expansion, normalization) draws from one factory so variables
/// from different expansions can never collide.
class VariableFactory {
 public:
  /// `prefix` should be distinctive; fresh names look like "_x17".
  explicit VariableFactory(std::string prefix = "_v")
      : prefix_(std::move(prefix)) {}

  Term Fresh() { return Term::Var(prefix_ + std::to_string(counter_++)); }
  std::string FreshName() { return prefix_ + std::to_string(counter_++); }

  /// Number of names handed out so far.
  uint64_t count() const { return counter_; }

 private:
  std::string prefix_;
  uint64_t counter_ = 0;
};

}  // namespace pdms

#endif  // PDMS_LANG_TERM_H_
