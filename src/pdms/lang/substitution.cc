#include "pdms/lang/substitution.h"

#include <algorithm>
#include <map>

#include "pdms/util/check.h"

namespace pdms {

Term Substitution::Resolve(const Term& term) const {
  Term current = term;
  // Chains are acyclic by construction (Bind resolves targets first), but a
  // depth guard keeps a latent bug from looping forever.
  for (int depth = 0; depth < 1 << 20; ++depth) {
    if (!current.is_variable()) return current;
    auto it = map_.find(current.var_name());
    if (it == map_.end()) return current;
    current = it->second;
  }
  PDMS_CHECK_MSG(false, "substitution chain too deep (cycle?)");
  return current;
}

bool Substitution::UnifyTerms(const Term& a, const Term& b) {
  Term x = Resolve(a);
  Term y = Resolve(b);
  if (x == y) return true;
  if (x.is_variable()) {
    map_.emplace(x.var_name(), y);
    return true;
  }
  if (y.is_variable()) {
    map_.emplace(y.var_name(), x);
    return true;
  }
  return false;  // distinct constants
}

bool Substitution::UnifyAtoms(const Atom& a, const Atom& b) {
  if (a.predicate() != b.predicate() || a.arity() != b.arity()) return false;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (!UnifyTerms(a.args()[i], b.args()[i])) return false;
  }
  return true;
}

bool Substitution::Merge(const Substitution& other) {
  for (const auto& [var, target] : other.map_) {
    if (!UnifyTerms(Term::Var(var), target)) return false;
  }
  return true;
}

Atom Substitution::Apply(const Atom& atom) const {
  std::vector<Term> args;
  args.reserve(atom.arity());
  for (const Term& t : atom.args()) args.push_back(Resolve(t));
  return Atom(atom.predicate(), std::move(args));
}

Comparison Substitution::Apply(const Comparison& cmp) const {
  return Comparison{Resolve(cmp.lhs), cmp.op, Resolve(cmp.rhs)};
}

ConjunctiveQuery Substitution::Apply(const ConjunctiveQuery& cq) const {
  std::vector<Atom> body;
  body.reserve(cq.body().size());
  for (const Atom& a : cq.body()) body.push_back(Apply(a));
  std::vector<Comparison> cmps;
  cmps.reserve(cq.comparisons().size());
  for (const Comparison& c : cq.comparisons()) cmps.push_back(Apply(c));
  return ConjunctiveQuery(Apply(cq.head()), std::move(body), std::move(cmps));
}

std::string Substitution::ToString() const {
  std::map<std::string, Term> sorted(map_.begin(), map_.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [var, target] : sorted) {
    if (!first) out += ", ";
    first = false;
    out += var;
    out += " -> ";
    out += target.ToString();
  }
  out += "}";
  return out;
}

namespace {

// Simultaneous (non-chaining) renaming helpers. Substitution::Apply
// resolves chains, which is wrong for renamings whose target namespace may
// overlap the source (a -> b while b -> c would collapse a and b into c);
// these helpers substitute each variable exactly once.
Term RenameTerm(const Term& t,
                const std::unordered_map<std::string, Term>& map) {
  if (!t.is_variable()) return t;
  auto it = map.find(t.var_name());
  return it == map.end() ? t : it->second;
}

Atom RenameAtom(const Atom& a,
                const std::unordered_map<std::string, Term>& map) {
  std::vector<Term> args;
  args.reserve(a.arity());
  for (const Term& t : a.args()) args.push_back(RenameTerm(t, map));
  return Atom(a.predicate(), std::move(args));
}

}  // namespace

ConjunctiveQuery RenameApart(const ConjunctiveQuery& cq,
                             VariableFactory* factory,
                             Substitution* mapping) {
  std::unordered_map<std::string, Term> rename;
  for (const std::string& var : cq.AllVariables()) {
    rename.emplace(var, factory->Fresh());
  }
  if (mapping != nullptr) {
    Substitution out;
    for (const auto& [var, target] : rename) {
      bool ok = out.UnifyTerms(Term::Var(var), target);
      PDMS_CHECK(ok);
    }
    *mapping = out;
  }
  std::vector<Atom> body;
  body.reserve(cq.body().size());
  for (const Atom& a : cq.body()) body.push_back(RenameAtom(a, rename));
  std::vector<Comparison> cmps;
  cmps.reserve(cq.comparisons().size());
  for (const Comparison& c : cq.comparisons()) {
    cmps.push_back(Comparison{RenameTerm(c.lhs, rename), c.op,
                              RenameTerm(c.rhs, rename)});
  }
  return ConjunctiveQuery(RenameAtom(cq.head(), rename), std::move(body),
                          std::move(cmps));
}

Atom RenameApart(const Atom& atom, VariableFactory* factory) {
  std::unordered_map<std::string, Term> rename;
  std::vector<std::string> vars;
  CollectVariables(atom, &vars);
  for (const std::string& var : vars) {
    rename.emplace(var, factory->Fresh());
  }
  return RenameAtom(atom, rename);
}

Substitution Substitution::RenameVariables(
    const std::unordered_map<std::string, std::string>& rename) const {
  auto renamed_name = [&rename](const std::string& name) {
    auto it = rename.find(name);
    return it == rename.end() ? name : it->second;
  };
  Substitution out;
  for (const auto& [var, target] : map_) {
    Term mapped = target.is_variable()
                      ? Term::Var(renamed_name(target.var_name()))
                      : target;
    out.map_.emplace(renamed_name(var), std::move(mapped));
  }
  return out;
}

}  // namespace pdms
