#include "pdms/lang/homomorphism.h"

#include <algorithm>

#include "pdms/util/check.h"

namespace pdms {

Term ApplyVarMap(const VarMap& map, const Term& term) {
  if (!term.is_variable()) return term;
  auto it = map.find(term.var_name());
  return it == map.end() ? term : it->second;
}

namespace {

// Tries to match `from` (after current binding) against the concrete atom
// `onto`, extending `binding`. Records newly-bound variables in
// `trail` so the caller can undo on backtrack.
bool MatchAtom(const Atom& from, const Atom& onto, VarMap* binding,
               std::vector<std::string>* trail) {
  if (from.predicate() != onto.predicate() || from.arity() != onto.arity()) {
    return false;
  }
  size_t trail_start = trail->size();
  for (size_t i = 0; i < from.arity(); ++i) {
    const Term& src = from.args()[i];
    const Term& dst = onto.args()[i];
    if (src.is_constant()) {
      if (src != dst) {
        // undo
        for (size_t j = trail_start; j < trail->size(); ++j) {
          binding->erase((*trail)[j]);
        }
        trail->resize(trail_start);
        return false;
      }
      continue;
    }
    auto it = binding->find(src.var_name());
    if (it != binding->end()) {
      if (it->second != dst) {
        for (size_t j = trail_start; j < trail->size(); ++j) {
          binding->erase((*trail)[j]);
        }
        trail->resize(trail_start);
        return false;
      }
    } else {
      binding->emplace(src.var_name(), dst);
      trail->push_back(src.var_name());
    }
  }
  return true;
}

bool SearchMapping(const std::vector<Atom>& from, size_t index,
                   const std::vector<Atom>& onto, VarMap* binding,
                   std::vector<std::string>* trail) {
  if (index == from.size()) return true;
  for (const Atom& candidate : onto) {
    size_t trail_start = trail->size();
    if (MatchAtom(from[index], candidate, binding, trail)) {
      if (SearchMapping(from, index + 1, onto, binding, trail)) return true;
      for (size_t j = trail_start; j < trail->size(); ++j) {
        binding->erase((*trail)[j]);
      }
      trail->resize(trail_start);
    }
  }
  return false;
}

}  // namespace

bool FindAtomMapping(const std::vector<Atom>& from,
                     const std::vector<Atom>& onto, VarMap* binding) {
  std::vector<std::string> trail;
  VarMap saved = *binding;
  if (SearchMapping(from, 0, onto, binding, &trail)) return true;
  *binding = std::move(saved);
  return false;
}

namespace {

bool EnumerateMappings(const std::vector<Atom>& from, size_t index,
                       const std::vector<Atom>& onto, VarMap* binding,
                       std::vector<std::string>* trail,
                       const std::function<bool(const VarMap&)>& accept) {
  if (index == from.size()) return accept(*binding);
  for (const Atom& candidate : onto) {
    size_t trail_start = trail->size();
    if (MatchAtom(from[index], candidate, binding, trail)) {
      if (EnumerateMappings(from, index + 1, onto, binding, trail, accept)) {
        return true;
      }
      for (size_t j = trail_start; j < trail->size(); ++j) {
        binding->erase((*trail)[j]);
      }
      trail->resize(trail_start);
    }
  }
  return false;
}

}  // namespace

bool ForEachAtomMapping(const std::vector<Atom>& from,
                        const std::vector<Atom>& onto, VarMap binding,
                        const std::function<bool(const VarMap&)>& accept) {
  std::vector<std::string> trail;
  return EnumerateMappings(from, 0, onto, &binding, &trail, accept);
}

namespace {

// Checks the conservative comparison condition: every comparison of
// `general`, after applying `binding`, is either a true ground comparison or
// syntactically present in `specific` (possibly flipped).
bool ComparisonsCovered(const ConjunctiveQuery& general,
                        const ConjunctiveQuery& specific,
                        const VarMap& binding) {
  for (const Comparison& c : general.comparisons()) {
    Comparison mapped{ApplyVarMap(binding, c.lhs), c.op,
                      ApplyVarMap(binding, c.rhs)};
    if (mapped.lhs.is_constant() && mapped.rhs.is_constant()) {
      if (EvalCmp(mapped.op, mapped.lhs.value(), mapped.rhs.value())) {
        continue;
      }
      return false;
    }
    Comparison flipped{mapped.rhs, FlipCmpOp(mapped.op), mapped.lhs};
    bool found = false;
    for (const Comparison& sc : specific.comparisons()) {
      if (sc == mapped || sc == flipped) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool ContainsCQ(const ConjunctiveQuery& general,
                const ConjunctiveQuery& specific) {
  if (general.head().arity() != specific.head().arity()) return false;
  // Seed the mapping with head-to-head correspondence.
  VarMap binding;
  std::vector<std::string> trail;
  Atom head_pattern(general.head().predicate(), general.head().args());
  Atom head_target(general.head().predicate(), specific.head().args());
  if (!MatchAtom(head_pattern, head_target, &binding, &trail)) return false;
  if (!FindAtomMapping(general.body(), specific.body(), &binding)) {
    return false;
  }
  return ComparisonsCovered(general, specific, binding);
}

bool EquivalentCQ(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return ContainsCQ(a, b) && ContainsCQ(b, a);
}

ConjunctiveQuery MinimizeCQ(const ConjunctiveQuery& cq) {
  if (!cq.comparisons().empty()) return cq;
  std::vector<Atom> body = cq.body();
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < body.size(); ++i) {
      std::vector<Atom> reduced;
      reduced.reserve(body.size() - 1);
      for (size_t j = 0; j < body.size(); ++j) {
        if (j != i) reduced.push_back(body[j]);
      }
      ConjunctiveQuery candidate(cq.head(), reduced);
      // Dropping an atom only relaxes the query, so candidate ⊇ cq always;
      // the two are equivalent iff cq also contains candidate.
      if (ContainsCQ(ConjunctiveQuery(cq.head(), body), candidate)) {
        body = std::move(reduced);
        changed = true;
        break;
      }
    }
  }
  return ConjunctiveQuery(cq.head(), std::move(body));
}

UnionQuery RemoveRedundantDisjuncts(const UnionQuery& uq) {
  std::vector<ConjunctiveQuery> minimized;
  minimized.reserve(uq.size());
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    minimized.push_back(MinimizeCQ(cq));
  }
  std::vector<bool> dead(minimized.size(), false);
  for (size_t i = 0; i < minimized.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < minimized.size(); ++j) {
      if (i == j || dead[j] || dead[i]) continue;
      // Drop j if it is contained in i; on equivalence keep the earlier.
      if (ContainsCQ(minimized[i], minimized[j])) {
        if (ContainsCQ(minimized[j], minimized[i]) && j < i) continue;
        dead[j] = true;
      }
    }
  }
  UnionQuery out;
  for (size_t i = 0; i < minimized.size(); ++i) {
    if (!dead[i]) out.Add(std::move(minimized[i]));
  }
  return out;
}

}  // namespace pdms
