#ifndef PDMS_LANG_HOMOMORPHISM_H_
#define PDMS_LANG_HOMOMORPHISM_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdms/lang/conjunctive_query.h"

namespace pdms {

/// A variable assignment used during homomorphism search: maps variable
/// names of the source query to terms of the target query. Target terms are
/// rigid — a source variable may map to a target variable, but target
/// variables are never bound.
using VarMap = std::unordered_map<std::string, Term>;

/// Applies `map` to a term: bound variables are replaced, everything else is
/// returned unchanged.
Term ApplyVarMap(const VarMap& map, const Term& term);

/// Tries to extend `binding` into a mapping of the variables of the atoms in
/// `from` such that the image of every atom appears (syntactically) in
/// `onto`. Backtracking search; returns true and leaves the witness in
/// `binding` on success, returns false and restores `binding` otherwise.
bool FindAtomMapping(const std::vector<Atom>& from,
                     const std::vector<Atom>& onto, VarMap* binding);

/// Enumerates every extension of `binding` mapping all atoms of `from`
/// into `onto`, invoking `accept` for each complete witness. `accept`
/// returning true stops the search (a satisfying witness was found);
/// the function then returns true. Used by semantic containment, where a
/// witness must additionally satisfy a comparison-implication side
/// condition that can reject individual homomorphisms.
bool ForEachAtomMapping(const std::vector<Atom>& from,
                        const std::vector<Atom>& onto, VarMap binding,
                        const std::function<bool(const VarMap&)>& accept);

/// Containment test: true if `specific ⊆ general` for comparison-free
/// conjunctive queries, i.e. there is a containment mapping from `general`
/// to `specific` that maps head to head (Chandra-Merlin).
///
/// Comparison predicates are handled *conservatively*: each comparison of
/// `general` must map to a syntactically identical comparison of `specific`
/// (or to a ground comparison that evaluates to true). A `false` result may
/// therefore be a false negative when comparisons are semantically implied;
/// use constraints/implication.h for the semantic test.
bool ContainsCQ(const ConjunctiveQuery& general,
                const ConjunctiveQuery& specific);

/// True if each contains the other (same conservative comparison handling).
bool EquivalentCQ(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

/// Computes the core of a comparison-free conjunctive query: repeatedly
/// drops body atoms that are redundant (a folding onto the remaining atoms
/// exists). The result is the unique minimal equivalent query up to
/// isomorphism. Queries with comparisons are returned unchanged.
ConjunctiveQuery MinimizeCQ(const ConjunctiveQuery& cq);

/// Removes disjuncts of `uq` that are contained in another disjunct
/// (keeping the first of two equivalent ones) and minimizes the survivors.
UnionQuery RemoveRedundantDisjuncts(const UnionQuery& uq);

}  // namespace pdms

#endif  // PDMS_LANG_HOMOMORPHISM_H_
