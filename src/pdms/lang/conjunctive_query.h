#ifndef PDMS_LANG_CONJUNCTIVE_QUERY_H_
#define PDMS_LANG_CONJUNCTIVE_QUERY_H_

#include <set>
#include <string>
#include <vector>

#include "pdms/lang/atom.h"
#include "pdms/util/status.h"

namespace pdms {

/// A conjunctive query (select-project-join with set semantics):
///
///   head(X̄) :- a1(Ȳ1), ..., ak(Ȳk), c1, ..., cm
///
/// where the ai are relational atoms and the ci optional comparison
/// predicates. Joins are expressed by repeated variables (the paper's
/// notation). The same structure doubles as a datalog rule and as either
/// side of a PPL peer mapping.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(Atom head, std::vector<Atom> body,
                   std::vector<Comparison> comparisons = {})
      : head_(std::move(head)),
        body_(std::move(body)),
        comparisons_(std::move(comparisons)) {}

  const Atom& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Comparison>& comparisons() const { return comparisons_; }

  Atom* mutable_head() { return &head_; }
  std::vector<Atom>* mutable_body() { return &body_; }
  std::vector<Comparison>* mutable_comparisons() { return &comparisons_; }

  /// All variable names appearing anywhere in the query, in first-appearance
  /// order (head first).
  std::vector<std::string> AllVariables() const;

  /// Variable names appearing in the head (the distinguished variables).
  std::vector<std::string> HeadVariables() const;

  /// Variables of the body that do not appear in the head (existential).
  std::vector<std::string> ExistentialVariables() const;

  /// True if `name` occurs as a head variable.
  bool IsDistinguished(const std::string& name) const;

  /// Safety: every head variable and every variable used in a comparison
  /// must occur in some body atom.
  Status CheckSafe() const;

  bool operator==(const ConjunctiveQuery& other) const {
    return head_ == other.head_ && body_ == other.body_ &&
           comparisons_ == other.comparisons_;
  }

  /// `q(x) :- r(x, y), s(y), x < 5.`
  std::string ToString() const;

 private:
  Atom head_;
  std::vector<Atom> body_;
  std::vector<Comparison> comparisons_;
};

/// A datalog rule has exactly the shape of a conjunctive query.
using Rule = ConjunctiveQuery;

/// A union of conjunctive queries with identical head predicate and arity.
/// Reformulation output (Step 3) is a UnionQuery over stored relations.
class UnionQuery {
 public:
  UnionQuery() = default;
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  const std::vector<ConjunctiveQuery>& disjuncts() const {
    return disjuncts_;
  }
  bool empty() const { return disjuncts_.empty(); }
  size_t size() const { return disjuncts_.size(); }

  void Add(ConjunctiveQuery cq) { disjuncts_.push_back(std::move(cq)); }

  /// One disjunct per line, joined by "UNION".
  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

/// Collects variable names of an atom into `out` preserving first-appearance
/// order and skipping duplicates already present.
void CollectVariables(const Atom& atom, std::vector<std::string>* out);

/// Same for a comparison predicate.
void CollectVariables(const Comparison& cmp, std::vector<std::string>* out);

}  // namespace pdms

#endif  // PDMS_LANG_CONJUNCTIVE_QUERY_H_
