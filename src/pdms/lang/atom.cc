#include "pdms/lang/atom.h"

#include "pdms/util/strings.h"

namespace pdms {

uint64_t Atom::Hash() const {
  uint64_t h = Fnv1aHash(predicate_);
  for (const Term& t : args_) h = HashCombine(h, t.Hash());
  return h;
}

std::string Atom::ToString() const {
  std::string out = predicate_;
  out += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i].ToString();
  }
  out += ")";
  return out;
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp FlipCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kEq;
    case CmpOp::kNe:
      return CmpOp::kNe;
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
  }
  return op;
}

CmpOp NegateCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return op;
}

bool EvalCmp(CmpOp op, const Value& lhs, const Value& rhs) {
  if (lhs.kind() != rhs.kind() || lhs.is_null() || rhs.is_null()) {
    // Distinct labeled nulls compare unknown; same null is equal.
    if (lhs.is_null() && rhs.is_null() && lhs == rhs) {
      return op == CmpOp::kEq || op == CmpOp::kLe || op == CmpOp::kGe;
    }
    return op == CmpOp::kNe;
  }
  bool eq = lhs == rhs;
  bool lt = lhs < rhs;
  switch (op) {
    case CmpOp::kEq:
      return eq;
    case CmpOp::kNe:
      return !eq;
    case CmpOp::kLt:
      return lt;
    case CmpOp::kLe:
      return lt || eq;
    case CmpOp::kGt:
      return !lt && !eq;
    case CmpOp::kGe:
      return !lt;
  }
  return false;
}

uint64_t Comparison::Hash() const {
  uint64_t h = HashCombine(lhs.Hash(), static_cast<uint64_t>(op) * 977);
  return HashCombine(h, rhs.Hash());
}

std::string Comparison::ToString() const {
  std::string out = lhs.ToString();
  out += " ";
  out += CmpOpName(op);
  out += " ";
  out += rhs.ToString();
  return out;
}

}  // namespace pdms
