#include "pdms/lang/canonical.h"

#include <algorithm>
#include <unordered_map>

#include "pdms/lang/substitution.h"
#include "pdms/util/check.h"

namespace pdms {

std::string CanonicalAtomKey(const Atom& atom) {
  std::string out = atom.predicate();
  out += "(";
  std::unordered_map<std::string, size_t> seen;
  for (size_t i = 0; i < atom.arity(); ++i) {
    if (i > 0) out += ",";
    const Term& t = atom.args()[i];
    if (t.is_constant()) {
      out += t.value().ToString();
    } else {
      auto [it, inserted] = seen.emplace(t.var_name(), seen.size());
      out += "#";
      out += std::to_string(it->second);
    }
  }
  out += ")";
  return out;
}

namespace {

// Simultaneous (non-chaining) variable renaming. A Substitution must NOT
// be used here: it resolves chains, so a renaming into an overlapping
// namespace (e.g. v3 -> v1 while v1 -> v2) would collapse distinct
// variables (v3 and v1 would both end up as v2).
Term RenameTerm(const Term& t,
                const std::unordered_map<std::string, std::string>& map) {
  if (!t.is_variable()) return t;
  auto it = map.find(t.var_name());
  return it == map.end() ? t : Term::Var(it->second);
}

Atom RenameAtom(const Atom& a,
                const std::unordered_map<std::string, std::string>& map) {
  std::vector<Term> args;
  args.reserve(a.arity());
  for (const Term& t : a.args()) args.push_back(RenameTerm(t, map));
  return Atom(a.predicate(), std::move(args));
}

}  // namespace

ConjunctiveQuery CanonicalRename(const ConjunctiveQuery& cq) {
  std::unordered_map<std::string, std::string> rename;
  size_t next = 0;
  for (const std::string& var : cq.AllVariables()) {
    rename.emplace(var, "v" + std::to_string(next++));
  }
  std::vector<Atom> body;
  body.reserve(cq.body().size());
  for (const Atom& a : cq.body()) body.push_back(RenameAtom(a, rename));
  std::vector<Comparison> cmps;
  cmps.reserve(cq.comparisons().size());
  for (const Comparison& c : cq.comparisons()) {
    cmps.push_back(Comparison{RenameTerm(c.lhs, rename), c.op,
                              RenameTerm(c.rhs, rename)});
  }
  return ConjunctiveQuery(RenameAtom(cq.head(), rename), std::move(body),
                          std::move(cmps));
}

namespace {

ConjunctiveQuery SortBody(const ConjunctiveQuery& cq) {
  std::vector<Atom> body = cq.body();
  std::sort(body.begin(), body.end(), [](const Atom& a, const Atom& b) {
    return a.ToString() < b.ToString();
  });
  std::vector<Comparison> cmps = cq.comparisons();
  std::sort(cmps.begin(), cmps.end(),
            [](const Comparison& a, const Comparison& b) {
              return a.ToString() < b.ToString();
            });
  return ConjunctiveQuery(cq.head(), std::move(body), std::move(cmps));
}

}  // namespace

std::string CanonicalQueryKey(const ConjunctiveQuery& cq) {
  ConjunctiveQuery current = cq;
  std::string key;
  // Renaming changes sort order and vice versa; iterate to a fixpoint with
  // a small bound (convergence is fast in practice; the bound only affects
  // dedup quality, not correctness).
  for (int round = 0; round < 4; ++round) {
    current = SortBody(CanonicalRename(current));
    std::string next = current.ToString();
    if (next == key) break;
    key = std::move(next);
  }
  return key;
}

}  // namespace pdms
