#ifndef PDMS_LANG_SUBSTITUTION_H_
#define PDMS_LANG_SUBSTITUTION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "pdms/lang/conjunctive_query.h"

namespace pdms {

/// A substitution maps variable names to terms. Because the language has no
/// function symbols, a binding target is either a variable or a constant,
/// and unification needs no occurs check.
///
/// Bindings may chain (x -> y, y -> 3); Resolve() follows chains to the
/// final representative. Used for most-general unifiers during rule-goal
/// tree expansion and for combining partial reformulations.
class Substitution {
 public:
  Substitution() = default;

  bool empty() const { return map_.empty(); }
  size_t size() const { return map_.size(); }

  /// Follows variable chains; returns the representative term.
  Term Resolve(const Term& term) const;

  /// Unifies two terms under the current bindings; extends the substitution
  /// on success. Returns false (leaving a partially-extended substitution —
  /// callers discard it) when the terms are distinct constants.
  bool UnifyTerms(const Term& a, const Term& b);

  /// Unifies two atoms (same predicate and arity required).
  bool UnifyAtoms(const Atom& a, const Atom& b);

  /// Merges another substitution into this one by unifying each of its
  /// bindings; returns false on conflict.
  bool Merge(const Substitution& other);

  /// Applies the substitution (with chain resolution).
  Term Apply(const Term& term) const { return Resolve(term); }
  Atom Apply(const Atom& atom) const;
  Comparison Apply(const Comparison& cmp) const;
  ConjunctiveQuery Apply(const ConjunctiveQuery& cq) const;

  /// Raw bindings (variable name -> unresolved target term).
  const std::unordered_map<std::string, Term>& bindings() const {
    return map_;
  }

  /// The substitution with every variable name — binding sources and
  /// variable targets alike — replaced per `rename`; names absent from the
  /// map are kept. `rename` must be injective over the mentioned names so
  /// binding chains are preserved exactly (the cross-query goal memo
  /// rehydrates stored unifiers onto fresh variables this way).
  Substitution RenameVariables(
      const std::unordered_map<std::string, std::string>& rename) const;

  /// `{x -> 3, y -> z}`, sorted by variable name.
  std::string ToString() const;

 private:
  std::unordered_map<std::string, Term> map_;
};

/// Renames every variable of `cq` to a fresh one from `factory`; if
/// `mapping` is non-null, the old-name -> new-term mapping is stored there.
ConjunctiveQuery RenameApart(const ConjunctiveQuery& cq,
                             VariableFactory* factory,
                             Substitution* mapping = nullptr);

/// Renames every variable of `atom` to a fresh one.
Atom RenameApart(const Atom& atom, VariableFactory* factory);

}  // namespace pdms

#endif  // PDMS_LANG_SUBSTITUTION_H_
