#include "pdms/lang/term.h"

#include "pdms/util/strings.h"

namespace pdms {

uint64_t Term::Hash() const {
  if (is_var_) return HashCombine(0x1234567, Fnv1aHash(name_));
  return HashCombine(0x89abcdef, value_.Hash());
}

std::string Term::ToString() const {
  return is_var_ ? name_ : value_.ToString();
}

}  // namespace pdms
