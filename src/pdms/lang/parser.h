#ifndef PDMS_LANG_PARSER_H_
#define PDMS_LANG_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "pdms/lang/conjunctive_query.h"
#include "pdms/util/status.h"

namespace pdms {

/// Token kinds produced by the lexer. The textual format is a conventional
/// datalog-style syntax with peer-qualified predicates:
///
///   Q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), s != "none".
///
/// Identifiers in argument positions are variables; constants are numbers
/// or double-quoted strings; `_` is an anonymous (fresh) variable.
/// `//` and `#` start line comments.
enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kColon,
  kColonDash,  // :-
  kEq,         // =
  kNe,         // !=
  kLt,         // <
  kLe,         // <=
  kGt,         // >
  kGe,         // >=
  kLBrace,
  kRBrace,
  kSemicolon,
  kSlash,
  kEnd,
};

/// One lexed token with its source location (1-based line) for error
/// messages.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifier/number/string payload
  int line = 1;
};

/// Splits input text into tokens. Fails on unterminated strings or
/// unexpected characters.
Result<std::vector<Token>> Tokenize(std::string_view text);

/// A recursive-descent parser over a token stream. The fine-grained methods
/// are public so the PPL program parser (core/ppl_parser) can reuse them for
/// atoms, bodies and terms inside its own declarations.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  /// Creates a parser for `text`, or a tokenizer error.
  static Result<Parser> Create(std::string_view text);

  const Token& Peek(size_t ahead = 0) const;
  Token Next();
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  /// Consumes a token of the given kind or reports an error mentioning
  /// `what`.
  Status Expect(TokenKind kind, const char* what);

  /// True and consumes if the next token has the given kind.
  bool Accept(TokenKind kind);

  /// term := IDENT | NUMBER | STRING | '_'
  Result<Term> ParseTerm();

  /// atom := predname '(' (term (',' term)*)? ')'
  /// predname := IDENT (':' IDENT)?
  Result<Atom> ParseAtom();

  /// body := element (',' element)* where element is an atom or a
  /// comparison `term op term`.
  Status ParseBody(std::vector<Atom>* atoms,
                   std::vector<Comparison>* comparisons);

  /// rule := atom ':-' body '.'
  Result<ConjunctiveQuery> ParseRule();

  /// Parses rules until end of input.
  Result<std::vector<ConjunctiveQuery>> ParseRules();

  /// Error helper: Status mentioning the current line.
  Status Error(const std::string& message) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  VariableFactory anon_vars_{"_anon"};
};

/// Convenience: parses a single rule like `q(x) :- r(x, y), x < 3.`
/// (the trailing dot is optional when the rule ends the input).
Result<ConjunctiveQuery> ParseRuleText(std::string_view text);

/// Convenience: parses a single atom like `H:Doctor(sid, loc)`.
Result<Atom> ParseAtomText(std::string_view text);

}  // namespace pdms

#endif  // PDMS_LANG_PARSER_H_
