#ifndef PDMS_OBS_ROLLING_H_
#define PDMS_OBS_ROLLING_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pdms {
namespace obs {

/// Ring geometry for RollingStats: `buckets` fixed time buckets of
/// `bucket_ms` each, so the window covers `buckets * bucket_ms` of the
/// feeding clock. Latency percentiles are estimated from a fixed-bound
/// histogram (DefaultLatencyBounds unless overridden).
struct RollingOptions {
  double bucket_ms = 1000;
  size_t buckets = 60;
  /// Ascending histogram upper bounds in ms; empty selects
  /// MetricsRegistry::DefaultLatencyBounds().
  std::vector<double> latency_bounds;
};

/// Windowed SLO statistics for the serving path (docs/
/// serving_telemetry.md): per-window p50/p95/p99 latency, qps, shed rate,
/// queue depth, cache hit rate, and degradation verdict counts.
///
/// The design is a ring of fixed buckets on the *caller's* clock — every
/// record and snapshot call passes `now_ms` explicitly. The serving
/// executor feeds it from one monotonic epoch; deterministic tests feed
/// synthetic times. A bucket whose epoch has rotated out of the window is
/// lazily reset when the ring advances over it, so recording is O(1)
/// (plus one histogram bucket scan) under a single short mutex — cheap
/// enough for the serve loop, and a `RollingStats*` is nullable at every
/// feeding site exactly like the metrics registry (the null sink).
///
/// Thread-safe.
class RollingStats {
 public:
  explicit RollingStats(RollingOptions options = {});

  /// Shed classes tracked per window (mirrors wire::ShedReason without
  /// depending on the serve layer).
  enum class Shed { kQueueFull = 0, kDeadline = 1 };

  /// Verdict slots for RecordAnswer's `verdict` (the numeric value of
  /// pdms::Completeness; out-of-range values clamp to the last slot).
  static constexpr size_t kVerdictSlots = 3;

  /// One answered request: end-to-end latency (queue + service), whether
  /// the plan cache hit, the completeness verdict, and whether the answer
  /// was truncated by a mid-query deadline.
  void RecordAnswer(double now_ms, double latency_ms, bool cache_hit,
                    int verdict, bool truncated);
  /// One request rejected by admission control (at offer or dequeue).
  void RecordShed(double now_ms, Shed reason);
  /// Admission queue depth observed at `now_ms` (gauge: the snapshot
  /// reports the per-window max and the last observation).
  void RecordQueueDepth(double now_ms, size_t depth);

  /// Aggregates over the buckets still inside the window at `now_ms`.
  struct Snapshot {
    double window_ms = 0;  ///< time span the counts actually cover
    uint64_t answers = 0;
    uint64_t sheds_queue_full = 0;
    uint64_t sheds_deadline = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t truncated = 0;
    uint64_t verdicts[kVerdictSlots] = {0, 0, 0};
    double qps = 0;            ///< answered requests per covered second
    double shed_rate = 0;      ///< sheds / (answers + sheds)
    double cache_hit_rate = 0; ///< hits / (hits + misses)
    double p50_ms = 0;         ///< histogram upper-bound estimates
    double p95_ms = 0;
    double p99_ms = 0;
    double max_ms = 0;         ///< exact max latency in the window
    size_t queue_depth = 0;     ///< most recent observation
    size_t queue_depth_max = 0; ///< max observation in the window

    /// Flat JSON object with every field above (the `rolling` section of
    /// the stats frame).
    std::string ToJson() const;
  };

  Snapshot GetSnapshot(double now_ms) const;

  const RollingOptions& options() const { return options_; }

 private:
  struct Bucket {
    int64_t epoch = -1;  // bucket index on the feeding clock; -1 = unused
    uint64_t answers = 0;
    uint64_t sheds_queue_full = 0;
    uint64_t sheds_deadline = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t truncated = 0;
    uint64_t verdicts[kVerdictSlots] = {0, 0, 0};
    std::vector<uint64_t> latency_counts;  // bounds.size() + 1 (overflow)
    double latency_max = 0;
    size_t queue_depth_max = 0;

    void Reset(int64_t new_epoch, size_t histogram_cells);
  };

  /// Rotates the ring up to `now_ms` and returns the live bucket.
  /// Requires mu_ held.
  Bucket* AdvanceLocked(double now_ms);

  RollingOptions options_;
  std::vector<double> bounds_;

  mutable std::mutex mu_;
  std::vector<Bucket> ring_;
  int64_t last_epoch_ = -1;
  size_t last_queue_depth_ = 0;
};

}  // namespace obs
}  // namespace pdms

#endif  // PDMS_OBS_ROLLING_H_
