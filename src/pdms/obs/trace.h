#ifndef PDMS_OBS_TRACE_H_
#define PDMS_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "pdms/util/timer.h"

namespace pdms {
namespace obs {

/// Identifies one span within its TraceContext. Ids are assigned densely in
/// creation order (1-based; 0 means "no span"), so two executions that
/// create the same spans in the same order produce identical ids — the
/// determinism the virtual-clock span tests lean on.
using SpanId = uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// One timed, named, attributed interval of a query's execution. Spans form
/// a tree via `parent`; attribute order is insertion order (deterministic).
struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  double start_ms = 0;
  double end_ms = -1;  // < start_ms while the span is still open
  std::vector<std::pair<std::string, std::string>> attributes;

  bool open() const { return end_ms < start_ms; }
  double duration_ms() const { return open() ? 0 : end_ms - start_ms; }
  /// Value of the first attribute named `key`, or nullptr.
  const std::string* FindAttribute(const std::string& key) const;
};

/// A query-scoped collector of hierarchical spans.
///
/// The hot paths receive a `TraceContext*` that is usually null — the null
/// sink. Every instrumentation site guards on the pointer (most via
/// ScopedSpan below), so tracing disabled costs one branch per site and
/// allocates nothing.
///
/// Clock: by default spans are stamped with monotonic wall time measured
/// from construction (or the last Clear). `set_now_fn` rebinds the clock —
/// the simulated runtime points it at the event loop's virtual clock so a
/// distributed execution's span tree is a deterministic function of its
/// seed, timestamps included.
///
/// Threading: a TraceContext is not itself thread-safe — one context
/// belongs to one task on one thread. Parallel execution gives each task
/// its own context (`Fork`, which shares the parent's clock) and grafts the
/// finished child back with `MergeChild`. Merging children in a
/// deterministic order (child index, not completion order) reproduces the
/// exact span ids a serial depth-first execution would have assigned.
class TraceContext {
 public:
  explicit TraceContext(std::string trace_id = "query");

  /// Rebinds the clock; pass an empty function to return to wall time
  /// (re-epoched at the moment of the call).
  void set_now_fn(std::function<double()> now);
  double now_ms() const;

  const std::string& trace_id() const { return trace_id_; }
  void set_trace_id(std::string id) { trace_id_ = std::move(id); }

  /// Opens a span as a child of the innermost open span (or a root) and
  /// makes it the innermost. Returns its id.
  SpanId StartSpan(std::string name);
  /// Opens a span under an explicit parent WITHOUT making it the innermost
  /// open span — for work that outlives the current scope, e.g. an
  /// in-flight message whose delivery ends it from an event-loop callback.
  SpanId StartSpanAt(std::string name, SpanId parent);
  /// Closes a span. If it is the innermost open span the scope pops back to
  /// its parent; ending a detached span leaves the scope stack alone.
  void EndSpan(SpanId id);
  /// A zero-duration child of the innermost open span (an event marker).
  SpanId Instant(std::string name);

  void SetAttribute(SpanId id, std::string key, std::string value);
  void SetAttribute(SpanId id, std::string key, const char* value);
  void SetAttribute(SpanId id, std::string key, double value);
  void SetAttribute(SpanId id, std::string key, uint64_t value);
  void SetAttribute(SpanId id, std::string key, int value);
  void SetAttribute(SpanId id, std::string key, bool value);

  /// The innermost open span (kNoSpan when none).
  SpanId current() const {
    return stack_.empty() ? kNoSpan : stack_.back();
  }

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  /// Read-only access to one span; nullptr for kNoSpan or out of range.
  const Span* span(SpanId id) const {
    return (id == kNoSpan || id > spans_.size()) ? nullptr : &spans_[id - 1];
  }

  /// Discards all spans and re-opens the scope at root; trace id and clock
  /// binding are kept. Called by the facades at every query entry so one
  /// long-lived context always holds exactly the last query's trace.
  void Clear();

  /// A fresh context for a parallel child task, reading this context's
  /// clock (so all timestamps share one epoch). The child must not outlive
  /// this context — fork/join guarantees that. Reading the clock is safe
  /// from multiple threads; everything else on the parent is off-limits
  /// until the child is merged back.
  TraceContext Fork() const;

  /// Grafts a finished child's spans into this context: child ids are
  /// offset past the existing spans (keeping ids dense), child roots are
  /// reparented under `graft_parent`, and the child is left empty. Calling
  /// this for each child in child-index order recreates the span sequence
  /// of a serial depth-first execution.
  void MergeChild(SpanId graft_parent, TraceContext&& child);

  /// Grafts externally-collected spans — e.g. a wire span block returned
  /// by a remote server (serve/wire.h) — under `graft_parent`. Unlike
  /// MergeChild the input is untrusted and on a foreign clock: ids are
  /// remapped densely past the existing spans in list order, parents that
  /// do not resolve within the imported set (including kNoSpan roots,
  /// duplicates, and self/forged references) fall back to `graft_parent`,
  /// and every timestamp is shifted by `shift_ms` to land the remote
  /// epoch on this context's clock.
  void ImportSpans(SpanId graft_parent, std::vector<Span> spans,
                   double shift_ms);

 private:
  Span* Find(SpanId id);

  std::string trace_id_;
  std::function<double()> now_;  // empty = wall clock from `wall_`
  WallTimer wall_;
  std::vector<Span> spans_;    // index = id - 1
  std::vector<SpanId> stack_;  // innermost open span last
};

/// RAII span for the common scoped case; all operations are no-ops when the
/// context is null, so call sites need no guards of their own.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, const char* name) : ctx_(ctx) {
    if (ctx_ != nullptr) id_ = ctx_->StartSpan(name);
  }
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Closes the span early (idempotent).
  void End() {
    if (ctx_ != nullptr && id_ != kNoSpan) ctx_->EndSpan(id_);
    id_ = kNoSpan;
  }

  template <typename V>
  void Set(std::string key, V value) {
    if (ctx_ != nullptr && id_ != kNoSpan) {
      ctx_->SetAttribute(id_, std::move(key), value);
    }
  }

  SpanId id() const { return id_; }

 private:
  TraceContext* ctx_;
  SpanId id_ = kNoSpan;
};

}  // namespace obs
}  // namespace pdms

#endif  // PDMS_OBS_TRACE_H_
