#ifndef PDMS_OBS_METRICS_H_
#define PDMS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

namespace pdms {
namespace obs {

/// A registry of named counters and fixed-bucket histograms.
///
/// Naming convention (docs/observability.md): `layer.metric`, lowercase
/// with underscores inside a segment — e.g. `reform.goal_nodes`,
/// `access.attempts`, `sim.messages_sent`. Histogram names carry their unit as a
/// suffix (`reform.build_ms`). Registries are accumulated across queries;
/// callers snapshot or Clear between runs as they see fit.
///
/// Like TraceContext this is the nullable half of the null sink: hot paths
/// hold a `MetricsRegistry*` and skip everything when it is null.
///
/// Thread-safe: concurrent serving shares one registry across worker
/// threads. Counter increments on an existing counter take a shared lock
/// and a relaxed atomic add (std::map nodes are address-stable, so the
/// cell outlives the lock); creating a counter, every histogram update,
/// and Clear take the exclusive lock. Readers (`counter`, `counters`,
/// `FindHistogram`, `ToString`, `ToJson`) return consistent snapshots.
/// The single-threaded invariants the obs tests assert still hold:
///   - a counter equals the sum of the deltas added to it;
///   - a histogram's bucket counts sum to its observation count;
///   - `sum`, `min`, `max` are exact over the observed values;
///   - bucket bounds are fixed at first observation and never reshaped.
class MetricsRegistry {
 public:
  /// A histogram over fixed upper bounds (ascending). `counts` has one
  /// entry per bound plus a final overflow bucket, so
  /// `counts.size() == bounds.size() + 1`.
  struct Histogram {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;

    std::string ToString() const;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter (created at zero on first use).
  void Add(const std::string& name, uint64_t delta = 1);
  /// Current counter value; 0 when the counter was never touched.
  uint64_t counter(const std::string& name) const;

  /// Records `value` into the named histogram. The first observation fixes
  /// the bucket layout: `DefaultLatencyBounds()` for the two-argument form,
  /// `bounds` for the three-argument form (later `bounds` arguments on the
  /// same name are ignored).
  void Observe(const std::string& name, double value);
  void Observe(const std::string& name, double value,
               const std::vector<double>& bounds);
  /// Snapshot of the named histogram; nullopt when never observed.
  std::optional<Histogram> FindHistogram(const std::string& name) const;

  /// Snapshot of all counters, sorted by name.
  std::map<std::string, uint64_t> counters() const;
  /// Snapshot of all histograms, sorted by name.
  std::map<std::string, Histogram> histograms() const;
  bool empty() const;
  void Clear();

  /// Human-readable snapshot, one metric per line, sorted by name.
  std::string ToString() const;
  /// Flat JSON: {"counters": {...}, "histograms": {name: {"bounds": [...],
  /// "counts": [...], "count": n, "sum": s, "min": m, "max": M}}}. Merged
  /// verbatim into the benchmark reports (bench_util.h).
  std::string ToJson() const;

  /// Exponential millisecond bounds (0.01 … ~10 s) shared by every latency
  /// histogram so queries are comparable across layers.
  static const std::vector<double>& DefaultLatencyBounds();

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::atomic<uint64_t>> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace obs
}  // namespace pdms

#endif  // PDMS_OBS_METRICS_H_
