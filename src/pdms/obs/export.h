#ifndef PDMS_OBS_EXPORT_H_
#define PDMS_OBS_EXPORT_H_

#include <string>

#include "pdms/obs/trace.h"
#include "pdms/util/status.h"

namespace pdms {
namespace obs {

/// Serializes the context's spans in the Chrome `trace_event` format —
/// one complete ("ph":"X") event per span, timestamps in microseconds —
/// loadable in chrome://tracing and https://ui.perfetto.dev. Span
/// attributes become the event's `args`, the trace id is attached to every
/// event as `args.trace_id`, and the span/parent ids go to `args.span_id` /
/// `args.parent_id` so the tree is reconstructible. Spans still open at
/// export time are emitted with zero duration and `args.open = "true"`.
///
/// The output is a deterministic function of the spans (no wall-clock
/// stamps, no pointers), which the golden-file test relies on.
std::string ChromeTraceJson(const TraceContext& trace);

/// Writes ChromeTraceJson to a file.
Status WriteChromeTrace(const TraceContext& trace, const std::string& path);

/// The per-query "explain" rendering: the span tree indented by depth with
/// per-node [start, duration] and attributes — what ppl_shell's `explain`
/// command prints.
std::string RenderSpanTree(const TraceContext& trace);

/// RenderSpanTree without the timing columns: node names, nesting, and
/// attributes only. Two runs that did the same work render identically
/// here no matter how long each step took — the parallel-equivalence tests
/// byte-compare this form across thread counts.
std::string RenderSpanTreeStructure(const TraceContext& trace);

}  // namespace obs
}  // namespace pdms

#endif  // PDMS_OBS_EXPORT_H_
