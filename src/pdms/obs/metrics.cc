#include "pdms/obs/metrics.h"

#include <algorithm>
#include <mutex>

#include "pdms/util/strings.h"

namespace pdms {
namespace obs {

namespace {

// Compact finite-double encoding shared with the benchmark JSON schema.
std::string Number(double v) { return StrFormat("%.10g", v); }

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

void MetricsRegistry::Add(const std::string& name, uint64_t delta) {
  {
    // Fast path: the counter exists; bump its cell under the shared lock.
    // Relaxed is enough — readers take the lock, which orders the loads.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) {
      it->second.fetch_add(delta, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // try_emplace: another thread may have created it between the locks.
  counters_.try_emplace(name, 0).first->second.fetch_add(
      delta, std::memory_order_relaxed);
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0
                               : it->second.load(std::memory_order_relaxed);
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  Observe(name, value, DefaultLatencyBounds());
}

void MetricsRegistry::Observe(const std::string& name, double value,
                              const std::vector<double>& bounds) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(name);
  Histogram& h = it->second;
  if (inserted) {
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
    h.min = value;
    h.max = value;
  }
  // First bucket whose upper bound admits the value; past the last bound
  // the observation lands in the overflow bucket.
  size_t bucket =
      std::lower_bound(h.bounds.begin(), h.bounds.end(), value) -
      h.bounds.begin();
  ++h.counts[bucket];
  ++h.count;
  h.sum += value;
  h.min = std::min(h.min, value);
  h.max = std::max(h.max, value);
}

std::optional<MetricsRegistry::Histogram> MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return std::nullopt;
  return it->second;
}

std::map<std::string, uint64_t> MetricsRegistry::counters() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, cell] : counters_) {
    out.emplace(name, cell.load(std::memory_order_relaxed));
  }
  return out;
}

std::map<std::string, MetricsRegistry::Histogram> MetricsRegistry::histograms()
    const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return histograms_;
}

bool MetricsRegistry::empty() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return counters_.empty() && histograms_.empty();
}

void MetricsRegistry::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::Histogram::ToString() const {
  return StrFormat("count=%llu sum=%.3f min=%.3f max=%.3f",
                   static_cast<unsigned long long>(count), sum, min, max);
}

std::string MetricsRegistry::ToString() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string out;
  for (const auto& [name, cell] : counters_) {
    out += StrFormat(
        "%-32s %llu\n", name.c_str(),
        static_cast<unsigned long long>(
            cell.load(std::memory_order_relaxed)));
  }
  for (const auto& [name, h] : histograms_) {
    out += StrFormat("%-32s %s\n", name.c_str(), h.ToString().c_str());
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, cell] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += Quote(name) + ": " +
           std::to_string(cell.load(std::memory_order_relaxed));
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    out += Quote(name) + ": {\"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += Number(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += StrFormat("], \"count\": %llu, \"sum\": %s, \"min\": %s, "
                     "\"max\": %s}",
                     static_cast<unsigned long long>(h.count),
                     Number(h.sum).c_str(), Number(h.min).c_str(),
                     Number(h.max).c_str());
  }
  out += "}}";
  return out;
}

const std::vector<double>& MetricsRegistry::DefaultLatencyBounds() {
  // 0.01 ms … 10.24 s in powers of four: coarse enough to stay small,
  // fine enough to separate "instant" from "retried" from "timed out".
  static const std::vector<double> kBounds = {
      0.01, 0.04, 0.16, 0.64, 2.56, 10.24, 40.96, 163.84, 655.36,
      2621.44, 10485.76};
  return kBounds;
}

}  // namespace obs
}  // namespace pdms
