#include "pdms/obs/export.h"

#include <cstdio>
#include <map>
#include <vector>

#include "pdms/util/strings.h"

namespace pdms {
namespace obs {

namespace {

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void RenderNode(const std::vector<Span>& spans,
                const std::multimap<SpanId, size_t>& children, size_t index,
                int depth, bool with_timings, std::string* out) {
  const Span& span = spans[index];
  std::string attrs;
  for (const auto& [key, value] : span.attributes) {
    attrs += StrFormat(" %s=%s", key.c_str(), value.c_str());
  }
  if (with_timings) {
    *out += StrFormat("%*s%-*s %9.3f ms  @%.3f%s%s\n", depth * 2, "",
                      depth * 2 >= 28 ? 0 : 28 - depth * 2, span.name.c_str(),
                      span.duration_ms(), span.start_ms,
                      span.open() ? " (open)" : "", attrs.c_str());
  } else {
    *out += StrFormat("%*s%s%s%s\n", depth * 2, "", span.name.c_str(),
                      span.open() ? " (open)" : "", attrs.c_str());
  }
  auto [lo, hi] = children.equal_range(span.id);
  for (auto it = lo; it != hi; ++it) {
    RenderNode(spans, children, it->second, depth + 1, with_timings, out);
  }
}

std::string RenderTree(const TraceContext& trace, bool with_timings) {
  if (trace.spans().empty()) return "(no spans)\n";
  std::string out = "trace " + trace.trace_id() + ":\n";
  // Children in creation order under each parent; creation order is also
  // start order, so the rendering reads top to bottom in time.
  std::multimap<SpanId, size_t> children;
  for (size_t i = 0; i < trace.spans().size(); ++i) {
    children.emplace(trace.spans()[i].parent, i);
  }
  auto [lo, hi] = children.equal_range(kNoSpan);
  for (auto it = lo; it != hi; ++it) {
    RenderNode(trace.spans(), children, it->second, 0, with_timings, &out);
  }
  return out;
}

}  // namespace

std::string ChromeTraceJson(const TraceContext& trace) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const Span& span : trace.spans()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\": " + Quote(span.name) +
           ", \"cat\": \"pdms\", \"ph\": \"X\", \"ts\": " +
           StrFormat("%.3f", span.start_ms * 1000.0) +
           ", \"dur\": " + StrFormat("%.3f", span.duration_ms() * 1000.0) +
           ", \"pid\": 1, \"tid\": 1, \"args\": {";
    out += "\"trace_id\": " + Quote(trace.trace_id()) +
           ", \"span_id\": " + std::to_string(span.id) +
           ", \"parent_id\": " + std::to_string(span.parent);
    if (span.open()) out += ", \"open\": \"true\"";
    for (const auto& [key, value] : span.attributes) {
      out += ", " + Quote(key) + ": " + Quote(value);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const TraceContext& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot write trace file " + path);
  }
  std::string json = ChromeTraceJson(trace);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file " + path);
  }
  return Status::Ok();
}

std::string RenderSpanTree(const TraceContext& trace) {
  return RenderTree(trace, /*with_timings=*/true);
}

std::string RenderSpanTreeStructure(const TraceContext& trace) {
  return RenderTree(trace, /*with_timings=*/false);
}

}  // namespace obs
}  // namespace pdms
