#include "pdms/obs/trace.h"

#include <algorithm>
#include <unordered_map>

#include "pdms/util/strings.h"

namespace pdms {
namespace obs {

const std::string* Span::FindAttribute(const std::string& key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return &v;
  }
  return nullptr;
}

TraceContext::TraceContext(std::string trace_id)
    : trace_id_(std::move(trace_id)) {}

void TraceContext::set_now_fn(std::function<double()> now) {
  now_ = std::move(now);
  if (!now_) wall_.Reset();
}

double TraceContext::now_ms() const {
  return now_ ? now_() : wall_.ElapsedMillis();
}

SpanId TraceContext::StartSpan(std::string name) {
  SpanId id = StartSpanAt(std::move(name), current());
  stack_.push_back(id);
  return id;
}

SpanId TraceContext::StartSpanAt(std::string name, SpanId parent) {
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::move(name);
  span.start_ms = now_ms();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceContext::EndSpan(SpanId id) {
  Span* span = Find(id);
  if (span == nullptr || !span->open()) return;
  span->end_ms = std::max(now_ms(), span->start_ms);
  if (!stack_.empty() && stack_.back() == id) stack_.pop_back();
}

SpanId TraceContext::Instant(std::string name) {
  SpanId id = StartSpanAt(std::move(name), current());
  spans_[id - 1].end_ms = spans_[id - 1].start_ms;
  return id;
}

void TraceContext::SetAttribute(SpanId id, std::string key,
                                std::string value) {
  Span* span = Find(id);
  if (span != nullptr) {
    span->attributes.emplace_back(std::move(key), std::move(value));
  }
}

void TraceContext::SetAttribute(SpanId id, std::string key,
                                const char* value) {
  SetAttribute(id, std::move(key), std::string(value));
}

void TraceContext::SetAttribute(SpanId id, std::string key, double value) {
  SetAttribute(id, std::move(key), StrFormat("%.6g", value));
}

void TraceContext::SetAttribute(SpanId id, std::string key, uint64_t value) {
  SetAttribute(id, std::move(key), std::to_string(value));
}

void TraceContext::SetAttribute(SpanId id, std::string key, int value) {
  SetAttribute(id, std::move(key), std::to_string(value));
}

void TraceContext::SetAttribute(SpanId id, std::string key, bool value) {
  SetAttribute(id, std::move(key), std::string(value ? "true" : "false"));
}

void TraceContext::Clear() {
  spans_.clear();
  stack_.clear();
}

TraceContext TraceContext::Fork() const {
  TraceContext child(trace_id_);
  child.now_ = [this] { return now_ms(); };
  return child;
}

void TraceContext::MergeChild(SpanId graft_parent, TraceContext&& child) {
  const SpanId offset = spans_.size();
  spans_.reserve(spans_.size() + child.spans_.size());
  for (Span& s : child.spans_) {
    s.id += offset;
    s.parent = (s.parent == kNoSpan) ? graft_parent : s.parent + offset;
    spans_.push_back(std::move(s));
  }
  child.spans_.clear();
  child.stack_.clear();
}

void TraceContext::ImportSpans(SpanId graft_parent, std::vector<Span> spans,
                               double shift_ms) {
  const SpanId base = spans_.size();
  std::unordered_map<SpanId, SpanId> remap;
  remap.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    // First occurrence wins; a duplicated foreign id parents to the first.
    if (spans[i].id != kNoSpan) remap.emplace(spans[i].id, base + i + 1);
  }
  spans_.reserve(spans_.size() + spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    Span s = std::move(spans[i]);
    const SpanId new_id = base + i + 1;
    auto parent = remap.find(s.parent);
    s.parent = (s.parent == kNoSpan || parent == remap.end() ||
                parent->second == new_id)
                   ? graft_parent
                   : parent->second;
    s.id = new_id;
    const bool was_open = s.open();
    s.start_ms += shift_ms;
    // Shift a closed span's end with it; keep an open one open (end stays
    // below the shifted start).
    s.end_ms = was_open ? s.start_ms - 1 : s.end_ms + shift_ms;
    spans_.push_back(std::move(s));
  }
}

Span* TraceContext::Find(SpanId id) {
  if (id == kNoSpan || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

}  // namespace obs
}  // namespace pdms
