#include "pdms/obs/rolling.h"

#include <algorithm>
#include <cmath>

#include "pdms/obs/metrics.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace obs {

namespace {

std::string Number(double v) { return StrFormat("%.10g", v); }

int64_t EpochOf(double now_ms, double bucket_ms) {
  if (now_ms < 0) now_ms = 0;
  return static_cast<int64_t>(now_ms / bucket_ms);
}

// Smallest histogram upper bound whose cumulative count reaches
// `quantile` of `total`; the overflow bucket reports `max_value` (the
// exact window max) rather than inventing a bound.
double Quantile(const std::vector<double>& bounds,
                const std::vector<uint64_t>& counts, uint64_t total,
                double quantile, double max_value) {
  if (total == 0) return 0;
  const double target = quantile * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target) {
      // The bound is an upper estimate; the exact window max is a tighter
      // one whenever it is smaller.
      return i < bounds.size() ? std::min(bounds[i], max_value) : max_value;
    }
  }
  return max_value;
}

}  // namespace

void RollingStats::Bucket::Reset(int64_t new_epoch, size_t histogram_cells) {
  epoch = new_epoch;
  answers = 0;
  sheds_queue_full = 0;
  sheds_deadline = 0;
  cache_hits = 0;
  cache_misses = 0;
  truncated = 0;
  for (size_t i = 0; i < kVerdictSlots; ++i) verdicts[i] = 0;
  latency_counts.assign(histogram_cells, 0);
  latency_max = 0;
  queue_depth_max = 0;
}

RollingStats::RollingStats(RollingOptions options)
    : options_(std::move(options)) {
  if (options_.bucket_ms <= 0) options_.bucket_ms = 1000;
  if (options_.buckets == 0) options_.buckets = 60;
  bounds_ = options_.latency_bounds.empty()
                ? MetricsRegistry::DefaultLatencyBounds()
                : options_.latency_bounds;
  ring_.resize(options_.buckets);
}

RollingStats::Bucket* RollingStats::AdvanceLocked(double now_ms) {
  const int64_t epoch = EpochOf(now_ms, options_.bucket_ms);
  Bucket& bucket = ring_[static_cast<size_t>(epoch) % ring_.size()];
  if (bucket.epoch != epoch) bucket.Reset(epoch, bounds_.size() + 1);
  if (epoch > last_epoch_) last_epoch_ = epoch;
  return &bucket;
}

void RollingStats::RecordAnswer(double now_ms, double latency_ms,
                                bool cache_hit, int verdict, bool truncated) {
  if (!std::isfinite(latency_ms) || latency_ms < 0) latency_ms = 0;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket* b = AdvanceLocked(now_ms);
  ++b->answers;
  if (cache_hit) {
    ++b->cache_hits;
  } else {
    ++b->cache_misses;
  }
  if (truncated) ++b->truncated;
  const size_t slot = verdict < 0 ? 0
                      : std::min(static_cast<size_t>(verdict),
                                 kVerdictSlots - 1);
  ++b->verdicts[slot];
  const size_t cell =
      std::lower_bound(bounds_.begin(), bounds_.end(), latency_ms) -
      bounds_.begin();
  ++b->latency_counts[cell];
  b->latency_max = std::max(b->latency_max, latency_ms);
}

void RollingStats::RecordShed(double now_ms, Shed reason) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket* b = AdvanceLocked(now_ms);
  if (reason == Shed::kQueueFull) {
    ++b->sheds_queue_full;
  } else {
    ++b->sheds_deadline;
  }
}

void RollingStats::RecordQueueDepth(double now_ms, size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket* b = AdvanceLocked(now_ms);
  b->queue_depth_max = std::max(b->queue_depth_max, depth);
  last_queue_depth_ = depth;
}

RollingStats::Snapshot RollingStats::GetSnapshot(double now_ms) const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t epoch = EpochOf(now_ms, options_.bucket_ms);
  const int64_t window = static_cast<int64_t>(options_.buckets);
  const int64_t oldest_live = epoch - window + 1;

  std::vector<uint64_t> latency_counts(bounds_.size() + 1, 0);
  int64_t oldest_seen = -1;
  for (const Bucket& b : ring_) {
    // epoch -1 marks a never-used bucket; oldest_live can be negative on
    // a young ring, so the unused check must come first.
    if (b.epoch < 0 || b.epoch < oldest_live || b.epoch > epoch) continue;
    if (oldest_seen < 0 || b.epoch < oldest_seen) oldest_seen = b.epoch;
    snap.answers += b.answers;
    snap.sheds_queue_full += b.sheds_queue_full;
    snap.sheds_deadline += b.sheds_deadline;
    snap.cache_hits += b.cache_hits;
    snap.cache_misses += b.cache_misses;
    snap.truncated += b.truncated;
    for (size_t i = 0; i < kVerdictSlots; ++i) {
      snap.verdicts[i] += b.verdicts[i];
    }
    for (size_t i = 0; i < latency_counts.size(); ++i) {
      latency_counts[i] += b.latency_counts[i];
    }
    snap.max_ms = std::max(snap.max_ms, b.latency_max);
    snap.queue_depth_max = std::max(snap.queue_depth_max, b.queue_depth_max);
  }
  snap.queue_depth = last_queue_depth_;

  // Covered time runs from the start of the oldest live bucket to `now`,
  // so a freshly-started server reports qps over the time it has actually
  // been up, not over the whole (mostly empty) window.
  if (oldest_seen >= 0) {
    snap.window_ms = std::min(
        now_ms - static_cast<double>(oldest_seen) * options_.bucket_ms,
        static_cast<double>(options_.buckets) * options_.bucket_ms);
    snap.window_ms = std::max(snap.window_ms, options_.bucket_ms);
  }
  if (snap.window_ms > 0) {
    snap.qps = static_cast<double>(snap.answers) / (snap.window_ms / 1000.0);
  }
  const uint64_t sheds = snap.sheds_queue_full + snap.sheds_deadline;
  if (snap.answers + sheds > 0) {
    snap.shed_rate = static_cast<double>(sheds) /
                     static_cast<double>(snap.answers + sheds);
  }
  if (snap.cache_hits + snap.cache_misses > 0) {
    snap.cache_hit_rate =
        static_cast<double>(snap.cache_hits) /
        static_cast<double>(snap.cache_hits + snap.cache_misses);
  }
  snap.p50_ms = Quantile(bounds_, latency_counts, snap.answers, 0.50,
                         snap.max_ms);
  snap.p95_ms = Quantile(bounds_, latency_counts, snap.answers, 0.95,
                         snap.max_ms);
  snap.p99_ms = Quantile(bounds_, latency_counts, snap.answers, 0.99,
                         snap.max_ms);
  return snap;
}

std::string RollingStats::Snapshot::ToJson() const {
  std::string out = "{";
  out += "\"window_ms\": " + Number(window_ms);
  out += ", \"answers\": " + std::to_string(answers);
  out += ", \"sheds_queue_full\": " + std::to_string(sheds_queue_full);
  out += ", \"sheds_deadline\": " + std::to_string(sheds_deadline);
  out += ", \"cache_hits\": " + std::to_string(cache_hits);
  out += ", \"cache_misses\": " + std::to_string(cache_misses);
  out += ", \"truncated\": " + std::to_string(truncated);
  out += ", \"verdicts\": [";
  for (size_t i = 0; i < kVerdictSlots; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(verdicts[i]);
  }
  out += "]";
  out += ", \"qps\": " + Number(qps);
  out += ", \"shed_rate\": " + Number(shed_rate);
  out += ", \"cache_hit_rate\": " + Number(cache_hit_rate);
  out += ", \"p50_ms\": " + Number(p50_ms);
  out += ", \"p95_ms\": " + Number(p95_ms);
  out += ", \"p99_ms\": " + Number(p99_ms);
  out += ", \"max_ms\": " + Number(max_ms);
  out += ", \"queue_depth\": " + std::to_string(queue_depth);
  out += ", \"queue_depth_max\": " + std::to_string(queue_depth_max);
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace pdms
