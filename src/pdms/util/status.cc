#include "pdms/util/status.h"

namespace pdms {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace pdms
