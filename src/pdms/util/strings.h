#ifndef PDMS_UTIL_STRINGS_H_
#define PDMS_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pdms {

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` on the character `sep`; does not collapse empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// 64-bit FNV-1a hash; used to combine hash values deterministically
/// across platforms (std::hash is implementation-defined).
uint64_t Fnv1aHash(std::string_view text);

/// Combines two 64-bit hashes (boost-style mix).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace pdms

#endif  // PDMS_UTIL_STRINGS_H_
