#ifndef PDMS_UTIL_STATUS_H_
#define PDMS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace pdms {

/// Error codes used across the library. The library does not throw
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  // malformed input (e.g., parse errors, bad arity)
  kNotFound,         // missing relation / peer / mapping
  kFailedPrecondition,
  kUnsupported,      // feature outside the implemented PPL fragment
  kResourceExhausted,  // budget (node/rewriting/time) exceeded
  kUnavailable,  // peer / stored relation down or unreachable right now
  kInternal,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, in the style of absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union, in the style of absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  /// Implicit conversions from T and Status keep call sites terse
  /// (`return value;` / `return Status::InvalidArgument(...)`), mirroring
  /// absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {}    // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pdms

/// Propagates a non-OK Status from an expression, absl-style.
#define PDMS_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::pdms::Status pdms_status_ = (expr);          \
    if (!pdms_status_.ok()) return pdms_status_;   \
  } while (0)

/// Evaluates a Result<T> expression; assigns its value to `lhs` or
/// propagates the error.
#define PDMS_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  PDMS_ASSIGN_OR_RETURN_IMPL_(                                 \
      PDMS_STATUS_CONCAT_(pdms_result_, __LINE__), lhs, rexpr)

#define PDMS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define PDMS_STATUS_CONCAT_(a, b) PDMS_STATUS_CONCAT_IMPL_(a, b)
#define PDMS_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // PDMS_UTIL_STATUS_H_
