#ifndef PDMS_UTIL_RNG_H_
#define PDMS_UTIL_RNG_H_

#include <cstdint>

#include "pdms/util/check.h"

namespace pdms {

/// Deterministic, seedable pseudo-random generator (splitmix64 core).
/// Used by the workload generator and property tests so every experiment is
/// reproducible from its seed alone, independent of the standard library's
/// distribution implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) {
    PDMS_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    PDMS_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return UniformDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace pdms

#endif  // PDMS_UTIL_RNG_H_
