#ifndef PDMS_UTIL_TIMER_H_
#define PDMS_UTIL_TIMER_H_

#include <chrono>

namespace pdms {

/// Monotonic wall-clock stopwatch used by the reformulation engine to
/// report time-to-first-rewriting and by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pdms

#endif  // PDMS_UTIL_TIMER_H_
