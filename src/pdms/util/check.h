#ifndef PDMS_UTIL_CHECK_H_
#define PDMS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant checks. These guard programmer errors (broken
/// invariants), not user input; user input errors are reported via Status.
/// A failed check prints the location and aborts.
#define PDMS_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "PDMS_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define PDMS_CHECK_MSG(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "PDMS_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, (msg));                     \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define PDMS_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define PDMS_DCHECK(cond) PDMS_CHECK(cond)
#endif

#endif  // PDMS_UTIL_CHECK_H_
