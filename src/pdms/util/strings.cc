#include "pdms/util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace pdms {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

uint64_t Fnv1aHash(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace pdms
