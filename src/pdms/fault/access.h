#ifndef PDMS_FAULT_ACCESS_H_
#define PDMS_FAULT_ACCESS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "pdms/fault/fault_injector.h"
#include "pdms/fault/retry.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/util/status.h"

namespace pdms {

/// Counters for one query's stored-relation accesses; surfaced to callers
/// in the degradation report so "no answers" and "no answers because the
/// network was down" are distinguishable.
///
/// Invariants (tested in tests/access_edge_test.cc): every probe resolves
/// exactly one way, so `successes + failures + timeouts == probes`. With a
/// live FaultInjector each success or failure costs at least one attempt,
/// so `attempts >= successes + failures` — but a probe can time out before
/// its first attempt (deadline already spent), and with a null injector
/// successes are instant, so `attempts >= probes` does NOT hold in
/// general.
struct AccessStats {
  size_t probes = 0;     // distinct stored relations probed
  size_t attempts = 0;   // total access attempts
  size_t retries = 0;    // attempts beyond the first, per relation
  size_t successes = 0;  // relations that were ultimately scannable
  size_t failures = 0;   // relations given up on after exhausting retries
  size_t timeouts = 0;   // probes abandoned because the deadline expired
  double backoff_ms = 0;  // total simulated backoff waited
  /// Simulated time consumed by access + backoff, measured from controller
  /// construction to the most recent probe resolution. Single-source: the
  /// access loop assigns it exactly once per resolved probe (asserted in
  /// tests/access_edge_test.cc), so it always equals the injector-clock
  /// delta at the last resolution.
  double elapsed_ms = 0;

  std::string ToString() const;
};

/// Mediates every stored-relation scan of one query: consults a
/// FaultInjector (when present), retries failures per the RetryPolicy with
/// capped exponential backoff, and abandons work once the Deadline is
/// spent. Outcomes are cached per relation — a relation that failed all
/// retries stays excluded for the rest of the query, keeping the emitted
/// answer set consistent.
///
/// With a null injector every access succeeds instantly, so the fault layer
/// costs one map lookup per relation when disabled.
class AccessController {
 public:
  /// `relation_peer` maps a stored relation to its serving peer (empty
  /// string when unknown); used to apply per-peer fault profiles and to
  /// name the peer in error messages. `trace` / `metrics` (borrowed,
  /// nullable — null is the zero-overhead sink) record one `access` span
  /// per non-cached probe with retry events nested under it, and the
  /// `access.*` counters.
  AccessController(
      FaultInjector* injector, RetryPolicy policy, Deadline deadline,
      std::function<std::string(const std::string&)> relation_peer,
      obs::TraceContext* trace = nullptr,
      obs::MetricsRegistry* metrics = nullptr);

  /// Gate for the evaluator: OK when the relation can be scanned,
  /// kUnavailable when it is down / failed all retries / out of deadline.
  Status Access(const std::string& relation);

  const AccessStats& stats() const { return stats_; }
  /// Relations that failed (sorted, deduplicated).
  std::vector<std::string> FailedRelations() const;

 private:
  FaultInjector* injector_;  // not owned; may be null
  RetryPolicy policy_;
  Deadline deadline_;
  std::function<std::string(const std::string&)> relation_peer_;
  obs::TraceContext* trace_;      // not owned; may be null
  obs::MetricsRegistry* metrics_;  // not owned; may be null
  Rng jitter_rng_;
  double start_ms_ = 0;  // injector clock at construction
  AccessStats stats_;
  std::map<std::string, Status> cache_;
};

}  // namespace pdms

#endif  // PDMS_FAULT_ACCESS_H_
