#include "pdms/fault/fault_injector.h"

#include "pdms/util/rng.h"
#include "pdms/util/strings.h"

namespace pdms {

std::string FaultProfile::ToString() const {
  if (down) return "down";
  return StrFormat("fail=%.0f%%, latency=%.1fms+%.1fms",
                   100.0 * failure_probability, latency_ms,
                   latency_jitter_ms);
}

void FaultInjector::SetPeerProfile(const std::string& peer,
                                   FaultProfile profile) {
  peer_profiles_[peer] = profile;
}

void FaultInjector::SetStoredProfile(const std::string& relation,
                                     FaultProfile profile) {
  stored_profiles_[relation] = profile;
}

void FaultInjector::ClearPeerProfile(const std::string& peer) {
  peer_profiles_.erase(peer);
}

void FaultInjector::ClearStoredProfile(const std::string& relation) {
  stored_profiles_.erase(relation);
}

void FaultInjector::ClearAllProfiles() {
  peer_profiles_.clear();
  stored_profiles_.clear();
}

const FaultProfile* FaultInjector::FindPeerProfile(
    const std::string& peer) const {
  auto it = peer_profiles_.find(peer);
  return it == peer_profiles_.end() ? nullptr : &it->second;
}

const FaultProfile* FaultInjector::FindStoredProfile(
    const std::string& relation) const {
  auto it = stored_profiles_.find(relation);
  return it == stored_profiles_.end() ? nullptr : &it->second;
}

void FaultInjector::SetPeerDown(const std::string& peer, bool down) {
  if (down) {
    FaultProfile profile;
    profile.down = true;
    peer_profiles_[peer] = profile;
  } else {
    peer_profiles_.erase(peer);
  }
}

bool FaultInjector::IsPeerDown(const std::string& peer) const {
  const FaultProfile* p = FindPeerProfile(peer);
  return p != nullptr && p->down;
}

uint64_t FaultInjector::DrawWord(const std::string& key,
                                 uint64_t attempt_index) const {
  // One splitmix64 step keyed by (seed, resource, attempt): outcomes for a
  // resource never depend on accesses to other resources.
  uint64_t mixed = HashCombine(seed_, Fnv1aHash(key));
  Rng rng(HashCombine(mixed, attempt_index));
  return rng.Next();
}

void FaultInjector::ApplyProfile(const FaultProfile& profile,
                                 const std::string& key, bool* ok,
                                 double* latency_ms) {
  uint64_t counter = attempt_counters_[key]++;
  uint64_t word = DrawWord(key, counter);
  // Split the word: high bits decide failure, low bits jitter latency.
  double fail_draw =
      static_cast<double>(word >> 11) * 0x1.0p-53;  // uniform [0, 1)
  double jitter_draw =
      static_cast<double>(word & ((uint64_t{1} << 32) - 1)) * 0x1.0p-32;
  *latency_ms += profile.latency_ms + profile.latency_jitter_ms * jitter_draw;
  if (profile.down || fail_draw < profile.failure_probability) *ok = false;
}

AttemptOutcome FaultInjector::Attempt(const std::string& peer,
                                      const std::string& relation) {
  AttemptOutcome outcome;
  ++total_attempts_;
  if (const FaultProfile* p = FindPeerProfile(peer); p != nullptr) {
    ApplyProfile(*p, "peer/" + peer, &outcome.ok, &outcome.latency_ms);
  }
  if (const FaultProfile* p = FindStoredProfile(relation); p != nullptr) {
    ApplyProfile(*p, "stored/" + relation, &outcome.ok, &outcome.latency_ms);
  }
  now_ms_ += outcome.latency_ms;
  if (!outcome.ok) ++total_failures_;
  return outcome;
}

void FaultInjector::Reset() {
  now_ms_ = 0;
  total_attempts_ = 0;
  total_failures_ = 0;
  attempt_counters_.clear();
}

}  // namespace pdms
