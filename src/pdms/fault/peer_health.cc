#include "pdms/fault/peer_health.h"

#include <algorithm>

#include "pdms/util/strings.h"

namespace pdms {

const char* PeerGateName(PeerGate gate) {
  switch (gate) {
    case PeerGate::kSend:
      return "send";
    case PeerGate::kProbe:
      return "probe";
    case PeerGate::kSkip:
      return "skip";
  }
  return "?";
}

PeerGate PeerHealthTracker::Admit(const std::string& peer, double now_ms) {
  if (!config_.enabled) return PeerGate::kSend;
  auto it = peers_.find(peer);
  if (it == peers_.end() || !it->second.suspected) return PeerGate::kSend;
  PeerHealth& h = it->second;
  if (now_ms + 1e-9 < h.next_probe_ms) {
    ++h.skips;
    return PeerGate::kSkip;
  }
  // This request is the probe. Open the next window now so every other
  // fetch of the same query (same virtual instant) skips instead of
  // probing too — one probe per window, whatever the fan-out.
  ++h.probes;
  h.probe_backoff_ms = std::min(h.probe_backoff_ms * config_.probe_backoff_multiplier,
                                config_.max_probe_backoff_ms);
  h.next_probe_ms = now_ms + h.probe_backoff_ms;
  return PeerGate::kProbe;
}

void PeerHealthTracker::RecordSuccess(const std::string& peer, double now_ms,
                                      double rtt_ms) {
  (void)now_ms;
  PeerHealth& h = peers_[peer];
  ++h.successes;
  h.consecutive_failures = 0;
  h.suspected = false;
  h.next_probe_ms = 0;
  h.probe_backoff_ms = 0;
  if (rtt_ms > 0) {
    h.srtt_ms = h.srtt_ms == 0
                    ? rtt_ms
                    : (1 - config_.srtt_alpha) * h.srtt_ms +
                          config_.srtt_alpha * rtt_ms;
  }
}

void PeerHealthTracker::RecordFailure(const std::string& peer,
                                      double now_ms) {
  PeerHealth& h = peers_[peer];
  ++h.failures;
  ++h.consecutive_failures;
  if (!h.suspected && config_.enabled &&
      h.consecutive_failures >= config_.suspicion_threshold) {
    h.suspected = true;
    h.probe_backoff_ms = config_.probe_backoff_ms;
    h.next_probe_ms = now_ms + h.probe_backoff_ms;
  }
}

bool PeerHealthTracker::IsSuspected(const std::string& peer) const {
  auto it = peers_.find(peer);
  return it != peers_.end() && it->second.suspected;
}

double PeerHealthTracker::SrttMs(const std::string& peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.srtt_ms;
}

const PeerHealth* PeerHealthTracker::Find(const std::string& peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : &it->second;
}

std::string PeerHealthTracker::ToString() const {
  if (peers_.empty()) return "no peers tracked\n";
  std::string out;
  for (const auto& [peer, h] : peers_) {
    out += StrFormat(
        "%s: %s, %zu consecutive failure(s), srtt %.2fms, "
        "%zu ok / %zu fail / %zu probe(s) / %zu skip(s)\n",
        peer.c_str(), h.suspected ? "SUSPECTED" : "healthy",
        h.consecutive_failures, h.srtt_ms, h.successes, h.failures, h.probes,
        h.skips);
  }
  return out;
}

}  // namespace pdms
