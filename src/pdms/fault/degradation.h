#ifndef PDMS_FAULT_DEGRADATION_H_
#define PDMS_FAULT_DEGRADATION_H_

#include <string>
#include <vector>

#include "pdms/fault/access.h"

namespace pdms {

/// How much of the full certain-answer set a degraded query run produced.
/// Reformulation is sound under degradation — every returned tuple is a
/// certain answer — so the verdict only reports what may be *missing*.
enum class Completeness {
  /// No source was excluded and no access failed: the answer is exactly
  /// what a fully-available run would return (transient flakiness that
  /// retries absorbed does not degrade the verdict).
  kComplete,
  /// Some sources were excluded or failed but answers were still found:
  /// the result is a sound subset of the fully-available answer.
  kPartial,
  /// Sources were excluded or failed and *no* answers were produced: the
  /// emptiness says nothing about the data, only about the network.
  kEmptyBecauseUnavailable,
};

const char* CompletenessName(Completeness c);

/// Per-hop message counters for a query executed over the simulated peer
/// runtime (`src/pdms/sim/`). Defined here — next to the report that
/// carries them — so the fault layer stays free of sim dependencies.
/// `sent` counts transmissions (retransmits included); a duplicated
/// message can be delivered more than once, so `delivered` can exceed
/// `sent - dropped - partitioned`.
struct MessageStats {
  size_t sent = 0;         // messages handed to the network
  size_t delivered = 0;    // deliveries that reached a handler
  size_t dropped = 0;      // lost to message-loss faults
  size_t duplicated = 0;   // extra deliveries injected by duplication
  size_t partitioned = 0;  // blocked by a network partition
  size_t request_timeouts = 0;  // per-hop request timers that fired
  size_t retransmits = 0;       // requests re-sent after a timeout
  size_t hedges = 0;            // duplicate requests sent before the timeout
  size_t skipped_suspected = 0;  // fetches failed fast on a suspected peer
  // Cost-aware routing (docs/network_cost_model.md): batched relay
  // round-trips sent, scans carried inside them, and relays whose batch
  // timed out and fell back to per-scan unicast.
  size_t relay_batches = 0;
  size_t relay_scans = 0;
  size_t relay_fallbacks = 0;

  std::string ToString() const;
};

/// What a query lost to peer unavailability, and what it cost to find out.
/// Surfaced by Pdms::AnswerWithReport so callers can distinguish "no
/// certain answers" from "answers missing because peer H was down".
struct DegradationReport {
  Completeness completeness = Completeness::kComplete;

  /// Peers whose data could not contribute: marked unavailable in the
  /// catalog, or serving a relation that failed all retries. Sorted.
  std::vector<std::string> excluded_peers;
  /// Stored relations excluded statically (catalog availability) or
  /// dynamically (failed scans). Sorted.
  std::vector<std::string> excluded_stored;

  /// Rewritings that were dropped at evaluation because a relation they
  /// scan turned out to be unavailable.
  size_t rewritings_skipped = 0;
  /// Goal-tree branches pruned during reformulation because they could
  /// only reach unavailable sources.
  size_t branches_pruned = 0;

  /// Retry/timeout counters from the access layer.
  AccessStats access;

  /// Per-hop message counters; populated (and printed) only when the query
  /// ran over the simulated peer runtime. Message-level timeouts that a
  /// retransmit absorbed do not degrade the verdict — only exhausted
  /// fetches do, and those surface as `access.failures`.
  MessageStats messages;
  /// True when the query executed over src/pdms/sim/ (request/response
  /// messages between peers) rather than in one address space.
  bool distributed = false;

  /// True when anything at all was lost (not merely retried).
  bool degraded() const {
    return !excluded_peers.empty() || !excluded_stored.empty() ||
           rewritings_skipped > 0 || branches_pruned > 0 ||
           access.failures > 0 || access.timeouts > 0;
  }

  std::string ToString() const;
};

}  // namespace pdms

#endif  // PDMS_FAULT_DEGRADATION_H_
