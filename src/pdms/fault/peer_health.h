#ifndef PDMS_FAULT_PEER_HEALTH_H_
#define PDMS_FAULT_PEER_HEALTH_H_

#include <cstddef>
#include <map>
#include <string>

namespace pdms {

/// Tunables of the per-peer failure detector (docs/fault_tolerance.md).
/// All times are in the caller's clock — the simulated runtime passes
/// virtual milliseconds, so detection behavior is deterministic per seed.
struct PeerHealthConfig {
  /// Master switch. Off, Admit always answers kSend and the tracker is
  /// pure bookkeeping — the pre-health behavior, which several runtime
  /// tests pin down (a healed peer must serve the very next query).
  bool enabled = false;
  /// Consecutive fetch failures before a peer is suspected down.
  size_t suspicion_threshold = 2;
  /// Backoff before the first probe of a suspected peer, growing by
  /// `probe_backoff_multiplier` per unanswered probe up to the cap. While
  /// the backoff window is open, requests to the peer are skipped outright
  /// — a crashed peer costs one detection, not one timeout per query.
  double probe_backoff_ms = 50.0;
  double probe_backoff_multiplier = 2.0;
  double max_probe_backoff_ms = 2000.0;
  /// EWMA weight of a new RTT sample in the smoothed round-trip estimate.
  double srtt_alpha = 0.2;
  /// Hedged retransmission: when a response is this many SRTTs overdue
  /// (and an SRTT estimate exists), one duplicate request is sent without
  /// waiting for the full timeout, masking a dropped message to a slow
  /// peer. 0 disables hedging.
  double hedge_srtt_multiplier = 3.0;
};

/// What the detector says about sending to a peer right now.
enum class PeerGate {
  kSend,   // healthy (or tracking disabled): send normally
  kProbe,  // suspected, probe window open: this request doubles as a probe
  kSkip,   // suspected, backing off: fail fast, zero messages
};

const char* PeerGateName(PeerGate gate);

/// Per-peer detector state, exposed for the shell's `health` command and
/// the churn tests.
struct PeerHealth {
  size_t consecutive_failures = 0;
  bool suspected = false;
  double next_probe_ms = 0;     // earliest time the next probe may go out
  double probe_backoff_ms = 0;  // current backoff level
  double srtt_ms = 0;           // 0 = no sample yet
  size_t successes = 0;         // lifetime counters
  size_t failures = 0;
  size_t probes = 0;
  size_t skips = 0;
};

/// A consecutive-failure suspicion tracker with exponential probe backoff
/// and an EWMA round-trip estimate per peer. The simulated runtime
/// (sim::SimPdms) consults it before each fetch: a suspected peer inside
/// its backoff window is skipped at O(1) cost instead of paying the full
/// timeout-and-retry ladder, one probe per window checks for recovery, and
/// a single success clears the suspicion entirely. Time is supplied by the
/// caller and must be monotonic; nothing here reads a real clock.
///
/// Not thread-safe: each simulated coordinator owns one.
class PeerHealthTracker {
 public:
  explicit PeerHealthTracker(PeerHealthConfig config = {})
      : config_(config) {}

  const PeerHealthConfig& config() const { return config_; }

  /// Gate for one request to `peer` at `now_ms`. Returning kProbe opens
  /// the next backoff window immediately (so concurrent fetches in the
  /// same query don't all probe); returning kSkip counts the skip.
  PeerGate Admit(const std::string& peer, double now_ms);

  /// A fetch from `peer` resolved successfully with the given round-trip.
  /// Clears suspicion and folds the sample into the SRTT.
  void RecordSuccess(const std::string& peer, double now_ms, double rtt_ms);

  /// A fetch from `peer` exhausted its attempts (or was skipped upstream
  /// for another reason that indicts the peer).
  void RecordFailure(const std::string& peer, double now_ms);

  bool IsSuspected(const std::string& peer) const;
  /// Smoothed RTT in ms; 0 until the first successful sample.
  double SrttMs(const std::string& peer) const;
  /// The tracked state for `peer`, or null if never seen.
  const PeerHealth* Find(const std::string& peer) const;

  /// All tracked peers, sorted by name (ppl_shell's `health` command).
  const std::map<std::string, PeerHealth>& peers() const { return peers_; }

  /// Monotonic session clock. Each query runs on a fresh virtual timeline
  /// starting at 0; the runtime folds every query's duration in here so
  /// probe backoff windows span queries. Callers pass
  /// `now_ms() + <this query's virtual time>` to Admit/Record*.
  double now_ms() const { return session_now_ms_; }
  void AdvanceClock(double delta_ms) {
    if (delta_ms > 0) session_now_ms_ += delta_ms;
  }

  void Reset() {
    peers_.clear();
    session_now_ms_ = 0;
  }

  std::string ToString() const;

 private:
  PeerHealthConfig config_;
  std::map<std::string, PeerHealth> peers_;
  double session_now_ms_ = 0;
};

}  // namespace pdms

#endif  // PDMS_FAULT_PEER_HEALTH_H_
