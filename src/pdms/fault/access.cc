#include "pdms/fault/access.h"

#include <algorithm>

#include "pdms/util/strings.h"

namespace pdms {

std::string AccessStats::ToString() const {
  return StrFormat(
      "access: %zu probes, %zu attempts (%zu retries), %zu successes, "
      "%zu failures, %zu timeouts, %.1f ms backoff, %.1f ms elapsed",
      probes, attempts, retries, successes, failures, timeouts, backoff_ms,
      elapsed_ms);
}

AccessController::AccessController(
    FaultInjector* injector, RetryPolicy policy, Deadline deadline,
    std::function<std::string(const std::string&)> relation_peer,
    obs::TraceContext* trace, obs::MetricsRegistry* metrics)
    : injector_(injector),
      policy_(policy),
      deadline_(deadline),
      relation_peer_(std::move(relation_peer)),
      trace_(trace),
      metrics_(metrics),
      jitter_rng_(injector != nullptr ? injector->seed() : 1),
      start_ms_(injector != nullptr ? injector->now_ms() : 0) {}

Status AccessController::Access(const std::string& relation) {
  auto it = cache_.find(relation);
  if (it != cache_.end()) return it->second;
  ++stats_.probes;
  if (metrics_ != nullptr) metrics_->Add("access.probes");
  if (injector_ == nullptr) {
    ++stats_.successes;
    if (metrics_ != nullptr) metrics_->Add("access.successes");
    return cache_.emplace(relation, Status::Ok()).first->second;
  }

  const std::string peer =
      relation_peer_ ? relation_peer_(relation) : std::string();
  obs::ScopedSpan span(trace_, "access");
  span.Set("relation", relation);
  if (!peer.empty()) span.Set("peer", peer);

  auto elapsed = [&] { return injector_->now_ms() - start_ms_; };
  const char* outcome_name = "failure";
  const char* outcome_counter = "access.failures";
  double backoff_before = stats_.backoff_ms;
  size_t attempts_before = stats_.attempts;
  Status result = Status::Ok();
  size_t max_attempts = std::max<size_t>(1, policy_.max_attempts);
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (deadline_.Expired(elapsed())) {
      ++stats_.timeouts;
      outcome_name = "timeout";
      outcome_counter = "access.timeouts";
      if (trace_ != nullptr) {
        trace_->Instant("deadline_expired");
      }
      result = Status::Unavailable(StrFormat(
          "deadline (%.1f ms) expired before %s could be scanned",
          deadline_.budget_ms(), relation.c_str()));
      break;
    }
    AttemptOutcome outcome = injector_->Attempt(peer, relation);
    ++stats_.attempts;
    if (outcome.ok) {
      ++stats_.successes;
      outcome_name = "success";
      outcome_counter = "access.successes";
      break;
    }
    if (attempt == max_attempts) {
      ++stats_.failures;
      result = Status::Unavailable(StrFormat(
          "%s%s%s unavailable after %zu attempt(s)",
          peer.empty() ? "" : peer.c_str(), peer.empty() ? "" : ":",
          relation.c_str(), max_attempts));
      break;
    }
    ++stats_.retries;
    double backoff = policy_.BackoffMillis(attempt, &jitter_rng_);
    stats_.backoff_ms += backoff;
    if (trace_ != nullptr) {
      obs::SpanId retry = trace_->Instant("retry");
      trace_->SetAttribute(retry, "attempt", static_cast<uint64_t>(attempt));
      trace_->SetAttribute(retry, "backoff_ms", backoff);
    }
    injector_->AdvanceClock(backoff);
  }
  // Single source of truth for elapsed accounting: every resolved probe
  // (success, failure, or timeout) lands here exactly once.
  stats_.elapsed_ms = elapsed();
  span.Set("outcome", outcome_name);
  span.Set("attempts",
           static_cast<uint64_t>(stats_.attempts - attempts_before));
  if (stats_.backoff_ms > backoff_before) {
    span.Set("backoff_ms", stats_.backoff_ms - backoff_before);
  }
  if (metrics_ != nullptr) {
    metrics_->Add("access.attempts", stats_.attempts - attempts_before);
    metrics_->Add(outcome_counter);
    metrics_->Observe("access.backoff_ms", stats_.backoff_ms - backoff_before);
  }
  return cache_.emplace(relation, std::move(result)).first->second;
}

std::vector<std::string> AccessController::FailedRelations() const {
  std::vector<std::string> out;
  for (const auto& [relation, status] : cache_) {
    if (!status.ok()) out.push_back(relation);
  }
  return out;  // map iteration order is already sorted
}

}  // namespace pdms
