#include "pdms/fault/access.h"

#include <algorithm>

#include "pdms/util/strings.h"

namespace pdms {

std::string AccessStats::ToString() const {
  return StrFormat(
      "access: %zu probes, %zu attempts (%zu retries), %zu successes, "
      "%zu failures, %zu timeouts, %.1f ms backoff, %.1f ms elapsed",
      probes, attempts, retries, successes, failures, timeouts, backoff_ms,
      elapsed_ms);
}

AccessController::AccessController(
    FaultInjector* injector, RetryPolicy policy, Deadline deadline,
    std::function<std::string(const std::string&)> relation_peer)
    : injector_(injector),
      policy_(policy),
      deadline_(deadline),
      relation_peer_(std::move(relation_peer)),
      jitter_rng_(injector != nullptr ? injector->seed() : 1),
      start_ms_(injector != nullptr ? injector->now_ms() : 0) {}

Status AccessController::Access(const std::string& relation) {
  auto it = cache_.find(relation);
  if (it != cache_.end()) return it->second;
  ++stats_.probes;
  if (injector_ == nullptr) {
    ++stats_.successes;
    return cache_.emplace(relation, Status::Ok()).first->second;
  }

  const std::string peer =
      relation_peer_ ? relation_peer_(relation) : std::string();
  auto elapsed = [&] { return injector_->now_ms() - start_ms_; };
  Status result = Status::Ok();
  size_t max_attempts = std::max<size_t>(1, policy_.max_attempts);
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (deadline_.Expired(elapsed())) {
      ++stats_.timeouts;
      result = Status::Unavailable(StrFormat(
          "deadline (%.1f ms) expired before %s could be scanned",
          deadline_.budget_ms(), relation.c_str()));
      break;
    }
    AttemptOutcome outcome = injector_->Attempt(peer, relation);
    ++stats_.attempts;
    if (outcome.ok) {
      ++stats_.successes;
      stats_.elapsed_ms = elapsed();
      return cache_.emplace(relation, Status::Ok()).first->second;
    }
    if (attempt == max_attempts) {
      ++stats_.failures;
      result = Status::Unavailable(StrFormat(
          "%s%s%s unavailable after %zu attempt(s)",
          peer.empty() ? "" : peer.c_str(), peer.empty() ? "" : ":",
          relation.c_str(), max_attempts));
      break;
    }
    ++stats_.retries;
    double backoff = policy_.BackoffMillis(attempt, &jitter_rng_);
    stats_.backoff_ms += backoff;
    injector_->AdvanceClock(backoff);
  }
  stats_.elapsed_ms = elapsed();
  return cache_.emplace(relation, std::move(result)).first->second;
}

std::vector<std::string> AccessController::FailedRelations() const {
  std::vector<std::string> out;
  for (const auto& [relation, status] : cache_) {
    if (!status.ok()) out.push_back(relation);
  }
  return out;  // map iteration order is already sorted
}

}  // namespace pdms
