#include "pdms/fault/degradation.h"

#include "pdms/util/strings.h"

namespace pdms {

const char* CompletenessName(Completeness c) {
  switch (c) {
    case Completeness::kComplete:
      return "complete";
    case Completeness::kPartial:
      return "partial";
    case Completeness::kEmptyBecauseUnavailable:
      return "empty-because-unavailable";
  }
  return "?";
}

std::string MessageStats::ToString() const {
  std::string out = StrFormat(
      "messages: %zu sent, %zu delivered, %zu dropped, %zu duplicated, "
      "%zu partitioned, %zu timeout(s), %zu retransmit(s)",
      sent, delivered, dropped, duplicated, partitioned, request_timeouts,
      retransmits);
  if (hedges > 0) out += StrFormat(", %zu hedge(s)", hedges);
  if (skipped_suspected > 0) {
    out += StrFormat(", %zu skipped-suspected", skipped_suspected);
  }
  // Printed only when nonzero so cost-blind reports stay byte-identical
  // to their pre-relay renderings.
  if (relay_batches > 0 || relay_scans > 0) {
    out += StrFormat(", %zu relay batch(es) carrying %zu scan(s)",
                     relay_batches, relay_scans);
  }
  if (relay_fallbacks > 0) {
    out += StrFormat(", %zu relay fallback(s)", relay_fallbacks);
  }
  return out;
}

std::string DegradationReport::ToString() const {
  std::string out = StrFormat("completeness: %s\n",
                              CompletenessName(completeness));
  if (!excluded_peers.empty()) {
    out += "excluded peers: " + StrJoin(excluded_peers, ", ") + "\n";
  }
  if (!excluded_stored.empty()) {
    out += "excluded stored relations: " + StrJoin(excluded_stored, ", ") +
           "\n";
  }
  if (rewritings_skipped > 0 || branches_pruned > 0) {
    out += StrFormat("%zu rewriting(s) skipped, %zu branch(es) pruned\n",
                     rewritings_skipped, branches_pruned);
  }
  out += access.ToString();
  out += "\n";
  if (distributed) {
    out += messages.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace pdms
