#ifndef PDMS_FAULT_FAULT_INJECTOR_H_
#define PDMS_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>

namespace pdms {

/// How a peer or stored relation (mis)behaves when accessed. Profiles
/// compose: an access to stored relation `r` served by peer `p` fails if
/// either profile says so, and pays both latencies.
struct FaultProfile {
  /// Hard-down: every attempt fails regardless of probabilities.
  bool down = false;
  /// Per-attempt failure probability (flakiness). Independent draws, so a
  /// retry can succeed where the first attempt failed.
  double failure_probability = 0;
  /// Simulated latency charged to the virtual clock per attempt.
  double latency_ms = 0;
  /// Extra latency drawn uniformly from [0, latency_jitter_ms] per attempt.
  double latency_jitter_ms = 0;

  std::string ToString() const;
};

/// The result of one simulated access attempt.
struct AttemptOutcome {
  bool ok = true;
  double latency_ms = 0;  // already charged to the injector's clock
};

/// A seeded, deterministic fault simulator for peers and stored relations.
///
/// Determinism is per-resource, not per-call-sequence: the outcome of the
/// k-th attempt against a given (peer, relation) pair depends only on the
/// seed, the resource names, and k — never on what other resources were
/// probed in between. Two runs with the same seed and the same per-resource
/// access patterns observe identical failures and latencies even if the
/// global interleaving differs.
///
/// Time is virtual: attempts advance an internal clock by their simulated
/// latency (and `AdvanceClock` adds retry backoff), so fault-injection
/// tests are instantaneous and reproducible. Nothing ever sleeps.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 1) : seed_(seed) {}

  /// Installs (replaces) the profile for a peer / stored relation. Names
  /// are not validated here; unknown names simply never match an access.
  void SetPeerProfile(const std::string& peer, FaultProfile profile);
  void SetStoredProfile(const std::string& relation, FaultProfile profile);
  void ClearPeerProfile(const std::string& peer);
  void ClearStoredProfile(const std::string& relation);
  void ClearAllProfiles();

  const FaultProfile* FindPeerProfile(const std::string& peer) const;
  const FaultProfile* FindStoredProfile(const std::string& relation) const;

  /// Convenience: hard-down / restore a peer.
  void SetPeerDown(const std::string& peer, bool down);
  bool IsPeerDown(const std::string& peer) const;

  /// Simulates one attempt to scan `relation` as served by `peer` (pass an
  /// empty peer name when unknown). Advances the virtual clock by the
  /// attempt's latency and records it in the outcome.
  AttemptOutcome Attempt(const std::string& peer,
                         const std::string& relation);

  /// Virtual clock (milliseconds since construction or Reset).
  double now_ms() const { return now_ms_; }
  /// Advances the virtual clock, e.g. by retry backoff.
  void AdvanceClock(double ms) { now_ms_ += ms; }

  /// Resets the clock and per-resource attempt counters (profiles are
  /// kept), making the next run repeat the same fault schedule.
  void Reset();

  uint64_t seed() const { return seed_; }
  size_t total_attempts() const { return total_attempts_; }
  size_t total_failures() const { return total_failures_; }

 private:
  // Draws the attempt-k random word for a resource key.
  uint64_t DrawWord(const std::string& key, uint64_t attempt_index) const;
  // Applies one profile to an in-progress attempt.
  void ApplyProfile(const FaultProfile& profile, const std::string& key,
                    bool* ok, double* latency_ms);

  uint64_t seed_;
  double now_ms_ = 0;
  size_t total_attempts_ = 0;
  size_t total_failures_ = 0;
  std::map<std::string, FaultProfile> peer_profiles_;
  std::map<std::string, FaultProfile> stored_profiles_;
  std::map<std::string, uint64_t> attempt_counters_;  // resource key -> k
};

}  // namespace pdms

#endif  // PDMS_FAULT_FAULT_INJECTOR_H_
