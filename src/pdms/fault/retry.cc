#include "pdms/fault/retry.h"

#include <algorithm>

#include "pdms/util/strings.h"

namespace pdms {

double RetryPolicy::BackoffMillis(size_t attempt, Rng* rng) const {
  if (attempt == 0) attempt = 1;
  double backoff = initial_backoff_ms;
  for (size_t i = 1; i < attempt; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= max_backoff_ms) break;
  }
  backoff = std::min(backoff, max_backoff_ms);
  if (rng != nullptr && jitter_fraction > 0) {
    double factor = 1.0 + jitter_fraction * (2.0 * rng->UniformDouble() - 1.0);
    backoff *= factor;
  }
  // The cap is a hard ceiling: positive jitter must not overshoot it.
  return std::min(backoff, max_backoff_ms);
}

std::string RetryPolicy::ToString() const {
  return StrFormat(
      "retry{attempts=%zu, backoff=%.1fms x%.1f cap %.1fms, jitter=%.0f%%}",
      max_attempts, initial_backoff_ms, backoff_multiplier, max_backoff_ms,
      100.0 * jitter_fraction);
}

}  // namespace pdms
