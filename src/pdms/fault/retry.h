#ifndef PDMS_FAULT_RETRY_H_
#define PDMS_FAULT_RETRY_H_

#include <cstddef>
#include <limits>
#include <string>

#include "pdms/util/rng.h"

namespace pdms {

/// Capped exponential backoff with deterministic jitter, used when a scan
/// of a stored relation fails and is retried. All times are in
/// milliseconds of the fault layer's (virtual) clock, so tests never sleep.
struct RetryPolicy {
  /// Total attempts per stored relation, including the first (>= 1; a
  /// value of 1 means "never retry").
  size_t max_attempts = 3;
  /// Backoff before the second attempt.
  double initial_backoff_ms = 1.0;
  /// Each subsequent backoff multiplies by this factor...
  double backoff_multiplier = 2.0;
  /// ...up to this cap.
  double max_backoff_ms = 64.0;
  /// Jitter: the computed backoff is scaled by a factor drawn uniformly
  /// from [1 - jitter_fraction, 1 + jitter_fraction], then clamped so the
  /// result never exceeds `max_backoff_ms`. Seeded RNG keeps the schedule
  /// reproducible.
  double jitter_fraction = 0.25;

  /// Backoff to wait after the `attempt`-th failed attempt (1-based), with
  /// jitter drawn from `rng` (pass nullptr for the deterministic center).
  double BackoffMillis(size_t attempt, Rng* rng) const;

  std::string ToString() const;
};

/// A per-query time budget against the fault layer's clock. The default is
/// no deadline; `AfterMillis` bounds the total simulated time (latency plus
/// backoff) a query may spend on stored-relation access.
class Deadline {
 public:
  /// No deadline.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  /// A finite deadline. A zero or negative budget is clamped to 0 and is
  /// *already expired* — it never means "no deadline" (callers that want
  /// that spell it `Infinite()`). The distinction matters to the serving
  /// layer, where a request whose budget ran out while queued must be shed
  /// rather than given unlimited time.
  static Deadline AfterMillis(double budget_ms) {
    Deadline d;
    d.budget_ms_ = budget_ms > 0 ? budget_ms : 0;
    d.infinite_ = false;
    return d;
  }

  bool infinite() const { return infinite_; }
  double budget_ms() const { return budget_ms_; }

  /// True once `elapsed_ms` of budget has been consumed. A zero-budget
  /// deadline is expired from elapsed 0 on.
  bool Expired(double elapsed_ms) const {
    return !infinite_ && elapsed_ms >= budget_ms_;
  }

  /// Budget left after `elapsed_ms`: never negative, 0 at or past expiry,
  /// +infinity for an infinite deadline.
  double RemainingMillis(double elapsed_ms) const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return elapsed_ms >= budget_ms_ ? 0 : budget_ms_ - elapsed_ms;
  }

 private:
  double budget_ms_ = 0;
  bool infinite_ = true;
};

}  // namespace pdms

#endif  // PDMS_FAULT_RETRY_H_
