#ifndef PDMS_DATA_DATABASE_H_
#define PDMS_DATA_DATABASE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pdms/data/relation.h"
#include "pdms/util/status.h"

namespace pdms {

/// A database instance: named relations with fixed arities. In PDMS terms
/// this holds the *stored* relations (`D` in the paper); the chase engine
/// also uses it to materialize virtual peer relations.
class Database {
 public:
  Database() = default;

  /// Creates an empty relation; error if a relation with the same name but
  /// a different arity already exists. Idempotent when arities match.
  Status CreateRelation(std::string_view name, size_t arity);

  /// True if the relation exists.
  bool HasRelation(std::string_view name) const;

  /// Arity of the relation, or error if missing.
  Result<size_t> RelationArity(std::string_view name) const;

  /// Inserts a tuple, creating the relation (with the tuple's arity) if it
  /// does not exist. Returns true if the tuple is new. Arity mismatches are
  /// programmer errors and abort.
  bool Insert(std::string_view name, Tuple tuple);

  /// The relation, or nullptr if missing.
  const Relation* Find(std::string_view name) const;
  Relation* FindMutable(std::string_view name);

  /// Names of all relations, sorted.
  std::vector<std::string> RelationNames() const;

  /// Total number of tuples across all relations.
  size_t TotalTuples() const;

  /// Multi-line dump of every relation.
  std::string ToString() const;

 private:
  // std::map keeps iteration deterministic; heterogeneous lookup via
  // std::less<> avoids string copies on Find.
  std::map<std::string, Relation, std::less<>> relations_;
};

}  // namespace pdms

#endif  // PDMS_DATA_DATABASE_H_
