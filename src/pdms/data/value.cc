#include "pdms/data/value.h"

#include "pdms/util/strings.h"

namespace pdms {

uint64_t Value::Hash() const {
  uint64_t seed = static_cast<uint64_t>(kind_) * 0x9e3779b97f4a7c15ULL;
  if (kind_ == Kind::kString) {
    return HashCombine(seed, Fnv1aHash(str_));
  }
  return HashCombine(seed, static_cast<uint64_t>(int_));
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kString: {
      std::string out = "\"";
      out += str_;
      out += '"';
      return out;
    }
    case Kind::kNull:
      return StrFormat("_N%lld", static_cast<long long>(int_));
  }
  return "?";
}

}  // namespace pdms
