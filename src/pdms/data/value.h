#ifndef PDMS_DATA_VALUE_H_
#define PDMS_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "pdms/util/check.h"

namespace pdms {

/// A single attribute value in a stored tuple.
///
/// Three kinds are supported:
///  - 64-bit integers and strings, the ordinary data domain;
///  - *labeled nulls*, the fresh placeholder values introduced by the chase
///    engine when an existential tuple-generating dependency fires. A tuple
///    containing a labeled null is not a certain answer.
///
/// Values of different kinds are never equal. The total order
/// (null < int < string, then within kind) exists only so Values can key
/// ordered containers; query comparison predicates (`<`, `<=`, ...) are
/// defined within a kind only (see eval/constraints).
class Value {
 public:
  enum class Kind : uint8_t { kNull = 0, kInt = 1, kString = 2 };

  /// Default-constructs labeled null #0; prefer the factory functions.
  Value() : kind_(Kind::kNull), int_(0) {}

  static Value Int(int64_t v) {
    Value out;
    out.kind_ = Kind::kInt;
    out.int_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.kind_ = Kind::kString;
    out.str_ = std::move(v);
    return out;
  }
  /// Labeled null with the given identity; two nulls are equal iff their
  /// ids are equal.
  static Value Null(int64_t id) {
    Value out;
    out.kind_ = Kind::kNull;
    out.int_ = id;
    return out;
  }

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_null() const { return kind_ == Kind::kNull; }

  int64_t int_value() const {
    PDMS_DCHECK(is_int());
    return int_;
  }
  const std::string& string_value() const {
    PDMS_DCHECK(is_string());
    return str_;
  }
  int64_t null_id() const {
    PDMS_DCHECK(is_null());
    return int_;
  }

  bool operator==(const Value& other) const {
    if (kind_ != other.kind_) return false;
    if (kind_ == Kind::kString) return str_ == other.str_;
    return int_ == other.int_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for container keys; cross-kind order is arbitrary but
  /// fixed (null < int < string).
  bool operator<(const Value& other) const {
    if (kind_ != other.kind_) return kind_ < other.kind_;
    if (kind_ == Kind::kString) return str_ < other.str_;
    return int_ < other.int_;
  }

  uint64_t Hash() const;

  /// Renders `42`, `"abc"`, or `_N7` (labeled null).
  std::string ToString() const;

 private:
  Kind kind_;
  int64_t int_;      // integer value or null id
  std::string str_;  // string payload when kind_ == kString
};

}  // namespace pdms

#endif  // PDMS_DATA_VALUE_H_
