#include "pdms/data/relation.h"

#include <algorithm>

#include "pdms/util/strings.h"

namespace pdms {

uint64_t TupleHash(const Tuple& tuple) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const Value& v : tuple) h = HashCombine(h, v.Hash());
  return h;
}

std::string TupleToString(const Tuple& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuple[i].ToString();
  }
  out += ")";
  return out;
}

bool TupleHasNull(const Tuple& tuple) {
  for (const Value& v : tuple) {
    if (v.is_null()) return true;
  }
  return false;
}

bool Relation::Insert(Tuple tuple) {
  PDMS_CHECK_MSG(tuple.size() == arity_, name_.c_str());
  if (Contains(tuple)) return false;
  uint64_t h = TupleHash(tuple);
  index_.emplace(h, tuples_.size());
  tuples_.push_back(std::move(tuple));
  return true;
}

bool Relation::Contains(const Tuple& tuple) const {
  uint64_t h = TupleHash(tuple);
  auto [lo, hi] = index_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (tuples_[it->second] == tuple) return true;
  }
  return false;
}

std::vector<Tuple> Relation::TakeTuples() {
  std::vector<Tuple> out = std::move(tuples_);
  tuples_.clear();
  index_.clear();
  ++rebuild_version_;
  return out;
}

void Relation::MergeFrom(Relation&& other) {
  PDMS_CHECK_MSG(other.arity_ == arity_, name_.c_str());
  for (Tuple& t : other.tuples_) Insert(std::move(t));
  other.Clear();
}

void Relation::Clear() {
  tuples_.clear();
  index_.clear();
  ++rebuild_version_;
}

void Relation::SortCanonical() {
  std::sort(tuples_.begin(), tuples_.end());
  index_.clear();
  for (size_t row = 0; row < tuples_.size(); ++row) {
    index_.emplace(TupleHash(tuples_[row]), row);
  }
  ++rebuild_version_;
}

std::string Relation::ToString() const {
  std::string out = name_;
  out += StrFormat("/%zu {\n", arity_);
  for (const Tuple& t : tuples_) {
    out += "  ";
    out += TupleToString(t);
    out += "\n";
  }
  out += "}";
  return out;
}

}  // namespace pdms
