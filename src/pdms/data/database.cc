#include "pdms/data/database.h"

#include "pdms/util/check.h"
#include "pdms/util/strings.h"

namespace pdms {

Status Database::CreateRelation(std::string_view name, size_t arity) {
  auto it = relations_.find(name);
  if (it != relations_.end()) {
    if (it->second.arity() != arity) {
      return Status::InvalidArgument(
          StrFormat("relation '%s' already exists with arity %zu (asked %zu)",
                    std::string(name).c_str(), it->second.arity(), arity));
    }
    return Status::Ok();
  }
  relations_.emplace(std::string(name), Relation(std::string(name), arity));
  return Status::Ok();
}

bool Database::HasRelation(std::string_view name) const {
  return relations_.find(name) != relations_.end();
}

Result<size_t> Database::RelationArity(std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named " + std::string(name));
  }
  return it->second.arity();
}

bool Database::Insert(std::string_view name, Tuple tuple) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    auto [pos, inserted] = relations_.emplace(
        std::string(name), Relation(std::string(name), tuple.size()));
    PDMS_CHECK(inserted);
    it = pos;
  }
  return it->second.Insert(std::move(tuple));
}

const Relation* Database::Find(std::string_view name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

Relation* Database::FindMutable(std::string_view name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel.size();
  return total;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, rel] : relations_) {
    out += rel.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace pdms
