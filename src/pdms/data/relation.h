#ifndef PDMS_DATA_RELATION_H_
#define PDMS_DATA_RELATION_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdms/data/value.h"
#include "pdms/util/check.h"

namespace pdms {

/// A tuple is a fixed-arity row of values.
using Tuple = std::vector<Value>;

/// Hash of a whole tuple (order-sensitive).
uint64_t TupleHash(const Tuple& tuple);

/// Renders `(1, "a", _N3)`.
std::string TupleToString(const Tuple& tuple);

/// True if any component of the tuple is a labeled null. Certain answers
/// must be null-free (Definition 2.2 quantifies over all consistent
/// instances, and a null can denote any value).
bool TupleHasNull(const Tuple& tuple);

/// An extensional relation instance: a named bag of same-arity tuples with
/// set semantics enforced on insert (the paper's queries are set-oriented).
class Relation {
 public:
  Relation(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Inserts a tuple; returns true if it was not already present.
  /// The tuple's size must equal the relation arity.
  bool Insert(Tuple tuple);

  /// True if the tuple is present.
  bool Contains(const Tuple& tuple) const;

  /// Moves the tuple vector out, leaving this relation empty (name and
  /// arity are kept). The union-merge path uses this to move tuples
  /// between relations instead of copying each row.
  std::vector<Tuple> TakeTuples();

  /// Set-union merge: inserts every tuple of `other` (which must have the
  /// same arity), moving rather than copying; `other` is left empty.
  void MergeFrom(Relation&& other);

  /// Removes all tuples.
  void Clear();

  /// Sorts the tuples into the canonical order (lexicographic under
  /// Value::operator<) and rebuilds the dedup index. The vectorized
  /// engine (src/pdms/qp/) canonicalizes every answer relation so results
  /// are byte-identical across execution strategies, thread counts, and
  /// cache states (docs/query_planning.md).
  void SortCanonical();

  /// Counts destructive mutations (Clear, TakeTuples, SortCanonical):
  /// anything that can reorder or remove rows. Insert/MergeFrom only
  /// append, so a reader that cached `(rebuild_version(), size())` can
  /// tell "unchanged" and "suffix appended" apart from "must re-read" —
  /// the qp columnar catalog keeps its twin current this way.
  uint64_t rebuild_version() const { return rebuild_version_; }

  /// Multi-line dump for debugging and example output.
  std::string ToString() const;

 private:
  std::string name_;
  size_t arity_;
  std::vector<Tuple> tuples_;
  // Dedup index: tuple hash -> indices into tuples_ with that hash.
  std::unordered_multimap<uint64_t, size_t> index_;
  uint64_t rebuild_version_ = 0;  // see rebuild_version()
};

}  // namespace pdms

#endif  // PDMS_DATA_RELATION_H_
