#ifndef PDMS_GEN_WORKLOAD_H_
#define PDMS_GEN_WORKLOAD_H_

#include <cstdint>

#include "pdms/core/network.h"
#include "pdms/data/database.h"
#include "pdms/lang/conjunctive_query.h"
#include "pdms/util/status.h"

namespace pdms {
namespace gen {

/// Parameters of the Section 5 synthetic-PDMS generator. The generator
/// reproduces the paper's setup:
///
///  - `num_peers` peers are split evenly over `num_strata` strata; the
///    expected diameter of the PDMS equals the number of strata, and the
///    rule-goal tree grows one level of goal nodes per stratum;
///  - every relation above the bottom stratum gets
///    `providers_per_relation` peer mappings that can answer it from the
///    stratum below, each definitional with probability
///    `definitional_fraction` (the paper's %dd) and an inclusion
///    otherwise — so reformulation can always chain down to storage, and
///    the tree's branching factor tracks the provider count (the paper's
///    "data may be replicated in many peers");
///  - a definitional mapping defines the relation as a chain query over
///    relations of the stratum below (GAV-style);
///  - an inclusion mapping describes a relation of the stratum below as
///    contained in a chain query that includes the provided relation
///    (LAV-style);
///  - bottom-stratum relations get storage descriptions over fresh stored
///    relations;
///  - the query is a chain query over top-stratum relations.
struct WorkloadConfig {
  size_t num_peers = 96;
  size_t num_strata = 4;
  double definitional_fraction = 0.10;
  size_t relations_per_peer = 3;
  size_t arity = 2;
  size_t chain_length = 2;  // subgoals per mapping body
  size_t providers_per_relation = 2;
  /// A definitional provider contributes this many rules with the same
  /// head (GAV mappings naturally express unions — Example 2.2 defines
  /// SkilledPerson with three rules). Each extra rule is an extra
  /// expansion of every goal over that relation, which is why the paper
  /// observes tree size growing with %dd ("more peer relations ... defined
  /// as unions of conjunctive queries, and hence a higher branching
  /// factor").
  size_t definitional_union_width = 2;
  size_t query_subgoals = 2;
  uint64_t seed = 1;

  /// When > 0, each stored relation is populated with this many random
  /// tuples (values uniform in [0, value_domain)), enabling end-to-end
  /// evaluation tests on generated PDMSs.
  size_t facts_per_stored = 0;
  int64_t value_domain = 16;

  /// Use comparison predicates: with this probability a definitional
  /// mapping gains a comparison (random direction, random threshold) on
  /// its head's first variable. Bounds inherited from the parent's
  /// constraint label can then contradict a nested rule's bound, giving
  /// the unsatisfiability pruning real work (Theorem 3.3.1 keeps these in
  /// the PTIME fragment: they sit in definitional bodies).
  double comparison_fraction = 0.0;

  /// Probability that a relation above the bottom stratum gets *no*
  /// providers. Goals over such relations are dead ends that the
  /// reachability pass prunes; models the paper's "most of them are
  /// irrelevant to a given query".
  double unprovided_fraction = 0.0;

  /// Probability that a non-provided slot of an inclusion's right-hand
  /// side names a *filler* relation — a declared peer relation that no
  /// mapping provides and no peer stores. Fillers model the paper's
  /// observation that "most [peers] are irrelevant to a given query": they
  /// thin out how many views mention each queried relation (calibrating
  /// the tree's branching factor to the paper's magnitudes) and give the
  /// dead-end pruning optimization real work.
  double filler_fraction = 0.5;
  size_t filler_relations_per_peer = 3;
};

/// A generated PDMS instance: specification, a query posed at a top-stratum
/// peer, and optional stored data.
struct Workload {
  PdmsNetwork network;
  ConjunctiveQuery query;
  Database data;
};

/// Generates a random PDMS per `config`. Deterministic in `config.seed`.
Result<Workload> GenerateWorkload(const WorkloadConfig& config);

}  // namespace gen
}  // namespace pdms

#endif  // PDMS_GEN_WORKLOAD_H_
