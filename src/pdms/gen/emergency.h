#ifndef PDMS_GEN_EMERGENCY_H_
#define PDMS_GEN_EMERGENCY_H_

#include "pdms/core/ppl_parser.h"

namespace pdms {
namespace gen {

/// PPL source for the paper's running example (Figure 1): hospitals (FH,
/// LH) and fire districts (PFD, VFD) publish stored relations; the
/// Hospitals (H) and Fire Services (FS) peers mediate them; the 911
/// Dispatch Center (9DC) unites both. Includes the Example 2.2 GAV/LAV
/// mappings, the Example 2.3 storage descriptions, and the Figure 2
/// SameEngine/Skill descriptions (r0-r3), plus a small consistent dataset.
const char* EmergencyBasePpl();

/// The ad-hoc extension of Example 1.1: the Earthquake Command Center
/// (ECC) joins after the earthquake, replicating the dispatch center's
/// Vehicle table with a cyclic equality mapping and mediating its own
/// SkilledPerson view. Load after EmergencyBasePpl().
const char* EmergencyEarthquakePpl();

/// Parses the base scenario (optionally with the earthquake extension)
/// into a ready-to-query program.
Result<PplProgram> BuildEmergencyScenario(bool with_earthquake);

}  // namespace gen
}  // namespace pdms

#endif  // PDMS_GEN_EMERGENCY_H_
