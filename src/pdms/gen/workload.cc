#include "pdms/gen/workload.h"

#include <algorithm>
#include <set>

#include "pdms/util/rng.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace gen {

namespace {

// Builds a chain query body over the given qualified relation names:
// r1(x0, x1, ...), r2(x1, x2, ...), ... — consecutive atoms joined on one
// variable; positions beyond the first two get fresh padding variables.
// Returns the body; `first` and `last` receive the chain endpoints and
// `all_vars`, when non-null, every variable in order of appearance.
std::vector<Atom> ChainBody(const std::vector<std::string>& relations,
                            size_t arity, VariableFactory* vars,
                            Term* first, Term* last,
                            std::vector<Term>* all_vars = nullptr) {
  PDMS_CHECK(!relations.empty());
  std::vector<Atom> body;
  Term prev = vars->Fresh();
  *first = prev;
  if (all_vars != nullptr) all_vars->push_back(prev);
  for (const std::string& rel : relations) {
    Term next = vars->Fresh();
    std::vector<Term> args;
    args.reserve(arity);
    args.push_back(prev);
    if (arity >= 2) {
      args.push_back(next);
      if (all_vars != nullptr) all_vars->push_back(next);
    }
    for (size_t i = 2; i < arity; ++i) {
      args.push_back(vars->Fresh());
      if (all_vars != nullptr) all_vars->push_back(args.back());
    }
    body.emplace_back(rel, std::move(args));
    prev = next;
  }
  *last = prev;
  return body;
}

// Builds a second chain over `relations` reusing the variable pattern of
// `pattern` (same joints and pads), so two chains can share one interface.
std::vector<Atom> MirrorChain(const std::vector<std::string>& relations,
                              const std::vector<Atom>& pattern) {
  PDMS_CHECK(relations.size() == pattern.size());
  std::vector<Atom> body;
  body.reserve(relations.size());
  for (size_t i = 0; i < relations.size(); ++i) {
    body.emplace_back(relations[i], pattern[i].args());
  }
  return body;
}

}  // namespace

Result<Workload> GenerateWorkload(const WorkloadConfig& config) {
  if (config.num_strata == 0 || config.num_peers < config.num_strata) {
    return Status::InvalidArgument(
        "need at least one peer per stratum (num_peers >= num_strata)");
  }
  if (config.arity < 2 || config.relations_per_peer == 0 ||
      config.chain_length == 0 || config.query_subgoals == 0) {
    return Status::InvalidArgument(
        "arity must be >= 2 and sizes must be positive");
  }

  Rng rng(config.seed);
  Workload out;

  // --- Peers, evenly split across strata. stratum_peers[s] lists the
  // peer indices assigned to stratum s (0 = top, where the query lives).
  std::vector<std::vector<size_t>> stratum_peers(config.num_strata);
  std::vector<size_t> peer_stratum(config.num_peers);
  for (size_t i = 0; i < config.num_peers; ++i) {
    size_t s = i * config.num_strata / config.num_peers;
    stratum_peers[s].push_back(i);
    peer_stratum[i] = s;
  }
  auto peer_name = [](size_t i) { return StrFormat("P%zu", i); };
  auto rel_name = [](size_t r) { return StrFormat("R%zu", r); };

  for (size_t i = 0; i < config.num_peers; ++i) {
    std::vector<std::pair<std::string, size_t>> rels;
    for (size_t r = 0; r < config.relations_per_peer; ++r) {
      rels.emplace_back(rel_name(r), config.arity);
    }
    for (size_t f = 0; f < config.filler_relations_per_peer; ++f) {
      rels.emplace_back(StrFormat("F%zu", f), config.arity);
    }
    PDMS_RETURN_IF_ERROR(out.network.AddPeer(peer_name(i), std::move(rels)));
  }

  // Picks a random qualified relation from stratum `s`.
  auto random_relation = [&](size_t s) {
    const std::vector<size_t>& peers = stratum_peers[s];
    size_t peer = peers[rng.Uniform(peers.size())];
    size_t rel = rng.Uniform(config.relations_per_peer);
    return QualifiedName(peer_name(peer), rel_name(rel));
  };

  // Picks a random filler relation from stratum `s` (or a regular one when
  // fillers are disabled).
  auto random_filler = [&](size_t s) {
    if (config.filler_relations_per_peer == 0) return random_relation(s);
    const std::vector<size_t>& peers = stratum_peers[s];
    size_t peer = peers[rng.Uniform(peers.size())];
    size_t rel = rng.Uniform(config.filler_relations_per_peer);
    return QualifiedName(peer_name(peer), StrFormat("F%zu", rel));
  };

  VariableFactory vars("x");

  // --- Peer mappings: every relation above the bottom stratum gets
  // `providers_per_relation` ways of being answered from the stratum
  // below it (unless it is orphaned by unprovided_fraction).
  std::set<std::string> orphans;
  for (size_t s = 0; s + 1 < config.num_strata; ++s) {
    for (size_t peer : stratum_peers[s]) {
      for (size_t r = 0; r < config.relations_per_peer; ++r) {
        std::string provided =
            QualifiedName(peer_name(peer), rel_name(r));
        if (config.unprovided_fraction > 0 &&
            rng.Chance(config.unprovided_fraction)) {
          orphans.insert(provided);  // no providers: goals dead-end
          continue;
        }
        for (size_t m = 0; m < config.providers_per_relation; ++m) {
          bool definitional = rng.Chance(config.definitional_fraction);
          if (definitional) {
            // GAV: define the relation as a union of chain queries over
            // the stratum below (one rule per union member).
            for (size_t u = 0; u < config.definitional_union_width; ++u) {
              std::vector<std::string> chain;
              for (size_t c = 0; c < config.chain_length; ++c) {
                chain.push_back(random_relation(s + 1));
              }
              Term first, last;
              std::vector<Atom> body =
                  ChainBody(chain, config.arity, &vars, &first, &last);
              std::vector<Comparison> cmps;
              if (config.comparison_fraction > 0 &&
                  rng.Chance(config.comparison_fraction)) {
                // Bound the head's first variable (= the chain start) in a
                // random direction; nested bounds can contradict and prune.
                cmps.push_back(Comparison{
                    first, rng.Chance(0.5) ? CmpOp::kLe : CmpOp::kGe,
                    Term::Int(rng.UniformInt(0, config.value_domain - 1))});
              }
              std::vector<Term> head_args;
              head_args.push_back(first);
              if (config.arity >= 2) head_args.push_back(last);
              for (size_t a = 2; a < config.arity; ++a) {
                // Extra head positions re-export variables from the first
                // atom so the rule stays safe.
                head_args.push_back(body[0].args()[a]);
              }
              PeerMapping pm;
              pm.kind = PeerMappingKind::kDefinitional;
              pm.rule = Rule(Atom(provided, std::move(head_args)),
                             std::move(body), std::move(cmps));
              PDMS_RETURN_IF_ERROR(
                  out.network.AddPeerMapping(std::move(pm)));
            }
          } else {
            // LAV: a chain over the stratum below is contained in a chain
            // (over this stratum) that includes the provided relation.
            // Both sides share a projection-free interface, so using the
            // mapping never loses join variables and the reformulation
            // can keep descending stratum by stratum.
            std::vector<std::string> rhs_chain;
            size_t provided_slot = rng.Uniform(config.chain_length);
            for (size_t c = 0; c < config.chain_length; ++c) {
              if (c == provided_slot) {
                rhs_chain.push_back(provided);
              } else if (rng.Chance(config.filler_fraction)) {
                rhs_chain.push_back(random_filler(s));
              } else {
                rhs_chain.push_back(random_relation(s));
              }
            }
            Term first, last;
            std::vector<Term> all_vars;
            std::vector<Atom> rhs_body = ChainBody(
                rhs_chain, config.arity, &vars, &first, &last, &all_vars);
            std::vector<std::string> lhs_chain;
            for (size_t c = 0; c < config.chain_length; ++c) {
              lhs_chain.push_back(random_relation(s + 1));
            }
            std::vector<Atom> lhs_body = MirrorChain(lhs_chain, rhs_body);
            Atom iface(StrFormat("_iface_g%zu",
                                 out.network.peer_mappings().size()),
                       all_vars);
            PeerMapping pm;
            pm.kind = PeerMappingKind::kInclusion;
            pm.lhs = ConjunctiveQuery(iface, std::move(lhs_body));
            pm.rhs = ConjunctiveQuery(iface, std::move(rhs_body));
            PDMS_RETURN_IF_ERROR(out.network.AddPeerMapping(std::move(pm)));
          }
        }
      }
    }
  }

  // --- Storage descriptions for the bottom stratum.
  for (size_t i : stratum_peers[config.num_strata - 1]) {
    for (size_t r = 0; r < config.relations_per_peer; ++r) {
      std::vector<Term> args;
      for (size_t a = 0; a < config.arity; ++a) args.push_back(vars.Fresh());
      Atom peer_atom(QualifiedName(peer_name(i), rel_name(r)), args);
      Atom stored_atom(StrFormat("st_%zu_%zu", i, r), args);
      StorageDescription sd;
      sd.view = ConjunctiveQuery(std::move(stored_atom), {peer_atom});
      PDMS_RETURN_IF_ERROR(
          out.network.AddStorageDescription(std::move(sd)));
    }
  }

  // --- The query: a chain over top-stratum relations. Orphaned relations
  // are skipped so the query is relevant to the network (a bounded number
  // of redraws; if the whole stratum is orphaned the query dead-ends,
  // which is still a valid instance).
  {
    std::vector<std::string> chain;
    for (size_t c = 0; c < config.query_subgoals; ++c) {
      std::string rel = random_relation(0);
      for (int attempt = 0; attempt < 16 && orphans.count(rel) > 0;
           ++attempt) {
        rel = random_relation(0);
      }
      chain.push_back(std::move(rel));
    }
    Term first, last;
    std::vector<Atom> body =
        ChainBody(chain, config.arity, &vars, &first, &last);
    out.query = ConjunctiveQuery(Atom("Q", {first, last}), std::move(body));
  }

  // --- Optional data.
  if (config.facts_per_stored > 0) {
    for (const std::string& name : out.network.StoredRelationNames()) {
      PDMS_ASSIGN_OR_RETURN(size_t arity, out.network.RelationArity(name));
      for (size_t t = 0; t < config.facts_per_stored; ++t) {
        Tuple tuple;
        for (size_t a = 0; a < arity; ++a) {
          tuple.push_back(
              Value::Int(rng.UniformInt(0, config.value_domain - 1)));
        }
        out.data.Insert(name, std::move(tuple));
      }
    }
  }
  return out;
}

}  // namespace gen
}  // namespace pdms
