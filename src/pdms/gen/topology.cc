#include "pdms/gen/topology.h"

#include <algorithm>

#include "pdms/util/rng.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace gen {

namespace {

// Picks `want` distinct earlier peers for joining peer `i`, weighted by
// degree + 1 (preferential attachment). O(i) per draw is fine at 10^3.
std::vector<size_t> AttachPreferential(size_t i, size_t want,
                                       const std::vector<size_t>& degree,
                                       Rng* rng) {
  std::vector<size_t> picked;
  if (i == 0 || want == 0) return picked;
  want = std::min(want, i);
  while (picked.size() < want) {
    uint64_t total = 0;
    for (size_t v = 0; v < i; ++v) {
      if (std::find(picked.begin(), picked.end(), v) != picked.end()) continue;
      total += degree[v] + 1;
    }
    uint64_t roll = rng->Uniform(total);
    for (size_t v = 0; v < i; ++v) {
      if (std::find(picked.begin(), picked.end(), v) != picked.end()) continue;
      uint64_t w = degree[v] + 1;
      if (roll < w) {
        picked.push_back(v);
        break;
      }
      roll -= w;
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace

std::string TopologyPeerName(size_t index) {
  return StrFormat("P%zu", index);
}

std::string TopologyRelationName(size_t level) {
  return StrFormat("R%zu", level);
}

std::string TopologyStoredName(size_t index) {
  return StrFormat("st_%zu", index);
}

ConjunctiveQuery TopologyQuery(size_t index, size_t level) {
  Term x = Term::Var("x");
  Term y = Term::Var("y");
  Atom goal(QualifiedName(TopologyPeerName(index),
                          TopologyRelationName(level)),
            {x, y});
  return ConjunctiveQuery(Atom("Q", {x, y}), {goal});
}

Result<Topology> GenerateTopology(const TopologyConfig& config) {
  if (config.num_peers == 0) {
    return Status::InvalidArgument("need at least one peer");
  }
  if (config.kind == TopologyConfig::Kind::kCommunity &&
      config.num_communities == 0) {
    return Status::InvalidArgument("need at least one community");
  }

  Rng rng(config.seed);
  Topology out;
  out.neighbors.resize(config.num_peers);
  out.community.assign(config.num_peers, 0);

  // --- Peers: R0 (stored) plus one relation per mediation level.
  for (size_t i = 0; i < config.num_peers; ++i) {
    std::vector<std::pair<std::string, size_t>> rels;
    for (size_t k = 0; k <= config.levels; ++k) {
      rels.emplace_back(TopologyRelationName(k), 2);
    }
    PDMS_RETURN_IF_ERROR(
        out.network.AddPeer(TopologyPeerName(i), std::move(rels)));
  }

  // --- Attachment graph (edges newer -> older, so mappings form a DAG).
  if (config.kind == TopologyConfig::Kind::kPowerLaw) {
    std::vector<size_t> degree(config.num_peers, 0);
    for (size_t i = 1; i < config.num_peers; ++i) {
      out.neighbors[i] =
          AttachPreferential(i, config.attach_edges, degree, &rng);
      for (size_t v : out.neighbors[i]) ++degree[v];
      degree[i] += out.neighbors[i].size();
    }
  } else {
    for (size_t i = 0; i < config.num_peers; ++i) {
      out.community[i] = i * config.num_communities / config.num_peers;
    }
    for (size_t i = 1; i < config.num_peers; ++i) {
      // Earlier peers of the same community; the block's founder falls
      // back to the whole earlier prefix so the graph stays connected.
      std::vector<size_t> pool;
      for (size_t v = 0; v < i; ++v) {
        if (out.community[v] == out.community[i]) pool.push_back(v);
      }
      if (pool.empty()) {
        for (size_t v = 0; v < i; ++v) pool.push_back(v);
      }
      size_t want = std::min(config.attach_edges, pool.size());
      std::vector<size_t>& picked = out.neighbors[i];
      while (picked.size() < want) {
        size_t v = pool[rng.Uniform(pool.size())];
        if (std::find(picked.begin(), picked.end(), v) == picked.end()) {
          picked.push_back(v);
        }
      }
      if (rng.Chance(config.bridge_fraction)) {
        std::vector<size_t> other;
        for (size_t v = 0; v < i; ++v) {
          if (out.community[v] != out.community[i]) other.push_back(v);
        }
        if (!other.empty()) {
          size_t v = other[rng.Uniform(other.size())];
          if (std::find(picked.begin(), picked.end(), v) == picked.end()) {
            picked.push_back(v);
          }
        }
      }
      std::sort(picked.begin(), picked.end());
    }
  }

  // --- Storage: every peer stores R0 directly.
  for (size_t i = 0; i < config.num_peers; ++i) {
    Term x = Term::Var("x");
    Term y = Term::Var("y");
    Atom peer_atom(QualifiedName(TopologyPeerName(i),
                                 TopologyRelationName(0)),
                   {x, y});
    StorageDescription sd;
    sd.peer = TopologyPeerName(i);
    sd.view = ConjunctiveQuery(Atom(TopologyStoredName(i), {x, y}),
                               {peer_atom});
    PDMS_RETURN_IF_ERROR(out.network.AddStorageDescription(std::move(sd)));
  }

  // --- Replicas: extra providers per stored relation, appended after
  // every primary description so description order (and with it the
  // legacy first-description owner) is untouched. Host peers step around
  // the ring with a stride that lands them in other communities.
  if (config.replicas > 0 && config.num_peers > 1) {
    const size_t stride = std::max<size_t>(
        1, config.num_peers / (config.replicas + 1));
    for (size_t i = 0; i < config.num_peers; ++i) {
      for (size_t r = 1; r <= config.replicas; ++r) {
        size_t host = (i + r * stride) % config.num_peers;
        if (host == i) host = (i + 1) % config.num_peers;
        Term x = Term::Var("x");
        Term y = Term::Var("y");
        Atom peer_atom(QualifiedName(TopologyPeerName(i),
                                     TopologyRelationName(0)),
                       {x, y});
        StorageDescription sd;
        sd.peer = TopologyPeerName(host);
        sd.view = ConjunctiveQuery(Atom(TopologyStoredName(i), {x, y}),
                                   {peer_atom});
        PDMS_RETURN_IF_ERROR(
            out.network.AddStorageDescription(std::move(sd)));
      }
    }
  }

  // --- Mappings: level k is provided from the neighborhood's level k-1.
  // Peers with no neighbors (the founder, isolated joiners) self-provide
  // so every relation stays answerable.
  size_t iface_counter = 0;
  for (size_t i = 0; i < config.num_peers; ++i) {
    std::vector<std::string> below_peers;
    for (size_t v : out.neighbors[i]) {
      below_peers.push_back(TopologyPeerName(v));
    }
    if (below_peers.empty()) below_peers.push_back(TopologyPeerName(i));
    for (size_t k = 1; k <= config.levels; ++k) {
      std::string provided =
          QualifiedName(TopologyPeerName(i), TopologyRelationName(k));
      if (rng.Chance(config.definitional_fraction)) {
        // GAV: Rk is the join of up to two neighbors' R(k-1).
        Term x = Term::Var("x");
        Term y = Term::Var("y");
        std::vector<Atom> body;
        if (below_peers.size() >= 2) {
          Term z = Term::Var("z");
          body.emplace_back(
              QualifiedName(below_peers[0], TopologyRelationName(k - 1)),
              std::vector<Term>{x, z});
          body.emplace_back(
              QualifiedName(below_peers[1], TopologyRelationName(k - 1)),
              std::vector<Term>{z, y});
        } else {
          body.emplace_back(
              QualifiedName(below_peers[0], TopologyRelationName(k - 1)),
              std::vector<Term>{x, y});
        }
        PeerMapping pm;
        pm.kind = PeerMappingKind::kDefinitional;
        pm.rule = Rule(Atom(provided, {x, y}), std::move(body), {});
        PDMS_RETURN_IF_ERROR(out.network.AddPeerMapping(std::move(pm)));
      } else {
        // LAV: each neighbor's R(k-1) is contained in Rk — one inclusion
        // per neighbor, so goals over Rk union the neighborhood.
        for (const std::string& below : below_peers) {
          Term x = Term::Var("x");
          Term y = Term::Var("y");
          Atom iface(StrFormat("_ifaceT%zu", iface_counter++), {x, y});
          PeerMapping pm;
          pm.kind = PeerMappingKind::kInclusion;
          pm.lhs = ConjunctiveQuery(
              iface,
              {Atom(QualifiedName(below, TopologyRelationName(k - 1)),
                    {x, y})});
          pm.rhs = ConjunctiveQuery(iface, {Atom(provided, {x, y})});
          PDMS_RETURN_IF_ERROR(out.network.AddPeerMapping(std::move(pm)));
        }
      }
    }
  }

  // --- Data.
  for (size_t i = 0; i < config.num_peers; ++i) {
    std::string stored = TopologyStoredName(i);
    (void)out.data.CreateRelation(stored, 2);
    for (size_t t = 0; t < config.facts_per_stored; ++t) {
      Tuple tuple;
      tuple.push_back(Value::Int(rng.UniformInt(0, config.value_domain - 1)));
      tuple.push_back(Value::Int(rng.UniformInt(0, config.value_domain - 1)));
      out.data.Insert(stored, std::move(tuple));
    }
  }
  return out;
}

LinkMap GenerateLinkMap(const Topology& topology,
                        const LinkMapConfig& config) {
  LinkMap map;
  const size_t n = topology.community.size();
  const LinkProps lan{config.lan_latency_ms, 0, 0};
  const LinkProps wan{config.wan_latency_ms, config.wan_bytes_per_ms,
                      config.wan_per_message_ms};

  if (config.shape == LinkMapConfig::Shape::kUniformLan) {
    map.set_intra_props(lan);
    map.set_inter_props(lan);  // unreachable with one zone; keep consistent
    return map;  // every node defaults to zone 0
  }

  if (config.shape == LinkMapConfig::Shape::kMesh) {
    map.set_mode(LinkMap::Mode::kGrid);
    map.set_intra_props(lan);  // cost per Manhattan hop
    const size_t width = std::max<size_t>(1, config.mesh_width);
    for (size_t i = 0; i < n; ++i) {
      map.SetCoord(TopologyPeerName(i), static_cast<double>(i % width),
                   static_cast<double>(i / width));
    }
    map.SetCoord(config.coordinator, 0, 0);
    return map;
  }

  // kClusteredWan / kHubSpoke: communities (or index stripes when the
  // topology has none) become zones over a shared trunk.
  map.set_intra_props(lan);
  map.set_inter_props(wan);
  bool labeled = false;
  for (size_t c : topology.community) labeled = labeled || c != 0;
  const size_t zones = std::max<size_t>(1, config.num_zones);
  std::vector<size_t> first_of_zone;  // hub = first peer of its zone
  for (size_t i = 0; i < n; ++i) {
    size_t zone = labeled ? topology.community[i] : i * zones / n;
    map.SetZone(TopologyPeerName(i), zone);
    if (zone >= first_of_zone.size()) first_of_zone.resize(zone + 1, n);
    first_of_zone[zone] = std::min(first_of_zone[zone], i);
  }
  map.SetZone(config.coordinator, config.coordinator_zone);
  if (config.shape == LinkMapConfig::Shape::kHubSpoke) {
    for (size_t i = 0; i < n; ++i) {
      size_t zone = labeled ? topology.community[i] : i * zones / n;
      if (first_of_zone[zone] != i) {
        map.SetAccessMs(TopologyPeerName(i), config.leaf_access_ms);
      }
    }
  }
  return map;
}

}  // namespace gen
}  // namespace pdms
