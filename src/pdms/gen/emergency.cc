#include "pdms/gen/emergency.h"

#include <string>

namespace pdms {
namespace gen {

const char* EmergencyBasePpl() {
  return R"ppl(
// ---------------------------------------------------------------------
// Peer schemas (Figure 1).
// ---------------------------------------------------------------------

peer FH {                       // First Hospital
  relation Staff(sid, firstn, lastn, start, end);
  relation Doctor(sid, loc);
  relation EMT(sid, vid);
  relation Ambulance(vid, gps, dest);
  relation Bed(bed, room, class);
  relation Patient(pid, bed, status);
}

peer LH {                       // Lakeview Hospital
  relation CritBed(bed, hosp, room, pid, status);
  relation EmergBed(bed, hosp, room, pid, status);
  relation GenBed(bed, hosp, room, pid, status);
}

peer H {                        // Hospitals mediator
  relation Worker(sid, first, last);
  relation Ambulance(vid, hosp, gps, dest);
  relation EMT(sid, hosp, vid, start, end);
  relation Doctor(sid, hosp, loc, start, end);
  relation EmergBed(bed, hosp, room);
  relation CritBed(bed, hosp, room);
  relation GenBed(bed, hosp, room);
  relation Patient(pid, bed, status);
}

peer PFD {                      // Portland Fire District
  relation Engine(vid, cap, status, station, loc, dest);
  relation FirstResponse(vid, station, loc, dest);
  relation Skills(sid, skill);
  relation Firefighter(sid, station, first, last);
  relation Schedule(sid, vid, start, stop);
}

peer VFD {                      // Vancouver Fire District
  relation Engine(vid, cap, status, station, loc, dest);
  relation FirstResponse(vid, station, loc, dest);
  relation Skills(sid, skill);
  relation Firefighter(sid, station, first, last);
  relation Schedule(sid, vid, start, stop);
}

peer FS {                       // Fire Services mediator
  relation Ambulance(vid, gps, dest);
  relation InAmbulance(sid, vid);
  relation Staff(sid, firstn, lastn, class);
  relation Schedule(sid, vid);
  relation Sched(f, start, end);
  relation FirstResponse(vid, station, loc, dest);
  relation Skills(sid, skill);
  relation AssignedTo(f, e);
  relation Skill(f, s);
  relation SameEngine(f1, f2, e);
  relation SameSkill(f1, f2);
}

peer NDC {                      // 911 Dispatch Center ("9DC" in the paper)
  relation SkilledPerson(pid, skill);
  relation Located(pid, where);
  relation Hours(pid, start, stop);
  relation Vehicle(vid, type, capac, gps, dest);
  relation Bed(bid, loc, class);
  relation Site(gps, status);
}

// ---------------------------------------------------------------------
// Storage descriptions (Example 2.3 and the fire-district sources).
// ---------------------------------------------------------------------

stored fh_doc(sid, last, loc) <=
    FH:Staff(sid, f, last, s, e), FH:Doctor(sid, loc).
stored fh_sched(sid, s, e) <=
    FH:Staff(sid, f, last, s, e), FH:Doctor(sid, loc).
stored fh_patient(pid, bed, status) <= FH:Patient(pid, bed, status).
stored fh_bed(bed, room, class) <= FH:Bed(bed, room, class).

stored lh_critbed(bed, room, pid, status) <=
    LH:CritBed(bed, "LH", room, pid, status).
stored lh_emergbed(bed, room, pid, status) <=
    LH:EmergBed(bed, "LH", room, pid, status).
stored lh_genbed(bed, room, pid, status) <=
    LH:GenBed(bed, "LH", room, pid, status).

stored pfd_schedule(sid, vid, start, stop) <=
    PFD:Schedule(sid, vid, start, stop).
stored pfd_skills(sid, skill) <= PFD:Skills(sid, skill).
stored pfd_firefighter(sid, station, first, last) <=
    PFD:Firefighter(sid, station, first, last).
stored pfd_response(vid, station, loc, dest) <=
    PFD:FirstResponse(vid, station, loc, dest).

stored vfd_schedule(sid, vid, start, stop) <=
    VFD:Schedule(sid, vid, start, stop).
stored vfd_skills(sid, skill) <= VFD:Skills(sid, skill).
stored vfd_firefighter(sid, station, first, last) <=
    VFD:Firefighter(sid, station, first, last).

// Figure 2's storage descriptions r2 and r3.
stored s1(f, e, st) <= FS:AssignedTo(f, e), FS:Sched(f, st, end).
stored s2(f1, f2) = FS:SameSkill(f1, f2).

// ---------------------------------------------------------------------
// Peer mappings.
// ---------------------------------------------------------------------

// Hospitals: FH feeds the mediated schema GAV-style.
mapping H:Doctor(sid, "FH", loc, s, e) :-
    FH:Staff(sid, f, l, s, e), FH:Doctor(sid, loc).
mapping H:EMT(sid, "FH", vid, s, e) :-
    FH:Staff(sid, f, l, s, e), FH:EMT(sid, vid).
mapping H:Patient(pid, bed, status) :- FH:Patient(pid, bed, status).
mapping H:Ambulance(vid, "FH", gps, dest) :- FH:Ambulance(vid, gps, dest).

// Lakeview Hospital is described LAV-style (Example 2.2): its bed tables
// are contained in joins over the mediated schema.
mapping (bed, hosp, room, pid, status) :
    LH:CritBed(bed, hosp, room, pid, status)
    <= H:CritBed(bed, hosp, room), H:Patient(pid, bed, status).
mapping (bed, hosp, room, pid, status) :
    LH:EmergBed(bed, hosp, room, pid, status)
    <= H:EmergBed(bed, hosp, room), H:Patient(pid, bed, status).
mapping (bed, hosp, room, pid, status) :
    LH:GenBed(bed, hosp, room, pid, status)
    <= H:GenBed(bed, hosp, room), H:Patient(pid, bed, status).

// Fire services: both districts feed the FS mediator.
mapping FS:AssignedTo(f, e) :- PFD:Schedule(f, e, st, end).
mapping FS:AssignedTo(f, e) :- VFD:Schedule(f, e, st, end).
mapping FS:Sched(f, st, end) :- PFD:Schedule(f, e, st, end).
mapping FS:Sched(f, st, end) :- VFD:Schedule(f, e, st, end).
mapping FS:Skill(f, s) :- PFD:Skills(f, s).
mapping FS:Skill(f, s) :- VFD:Skills(f, s).
mapping FS:Skills(f, s) :- PFD:Skills(f, s).
mapping FS:Skills(f, s) :- VFD:Skills(f, s).
mapping FS:Schedule(sid, vid) :- PFD:Schedule(sid, vid, st, end).
mapping FS:Schedule(sid, vid) :- VFD:Schedule(sid, vid, st, end).
mapping FS:FirstResponse(vid, station, loc, dest) :-
    PFD:FirstResponse(vid, station, loc, dest).
mapping FS:Staff(sid, first, last, "firefighter") :-
    PFD:Firefighter(sid, station, first, last).
mapping FS:Staff(sid, first, last, "firefighter") :-
    VFD:Firefighter(sid, station, first, last).

// Figure 2's peer descriptions r0 and r1.
mapping FS:SameEngine(f1, f2, e) :-
    FS:AssignedTo(f1, e), FS:AssignedTo(f2, e).
mapping (f1, f2) :
    FS:SameSkill(f1, f2) <= FS:Skill(f1, s), FS:Skill(f2, s).

// 911 Dispatch Center (Example 2.2's GAV definition of SkilledPerson).
mapping NDC:SkilledPerson(pid, "Doctor") :-
    H:Doctor(pid, h, l, s, e).
mapping NDC:SkilledPerson(pid, "EMT") :-
    H:EMT(pid, h, vid, s, e).
mapping NDC:SkilledPerson(pid, "EMT") :-
    FS:Schedule(pid, vid), FS:FirstResponse(vid, s, l, d),
    FS:Skills(pid, "medical").
mapping NDC:Vehicle(vid, "ambulance", 2, gps, dest) :-
    H:Ambulance(vid, hosp, gps, dest).
mapping NDC:Vehicle(vid, "fire-response", 4, loc, dest) :-
    FS:FirstResponse(vid, station, loc, dest).
mapping NDC:Hours(pid, start, stop) :- FS:Sched(pid, start, stop).

// ---------------------------------------------------------------------
// Data.
// ---------------------------------------------------------------------

// First Hospital staff: one doctor, one EMT (via fh_doc/fh_sched the
// reformulated queries only reach doctors — Example 2.3 stores a subset).
fact fh_doc(501, "Osler", "ER").
fact fh_sched(501, 8, 18).
fact fh_patient(9001, 12, "stable").
fact fh_bed(12, 3, "critical").

fact lh_critbed(31, 2, 9101, "critical").
fact lh_genbed(33, 4, 9102, "stable").

// Portland firefighters 101 and 102 ride engine 12 and share a skill —
// the witnesses for Figure 2's query.
fact pfd_schedule(101, 12, 700, 1900).
fact pfd_schedule(102, 12, 700, 1900).
fact pfd_schedule(103, 19, 700, 1900).
fact pfd_skills(101, "rescue").
fact pfd_skills(102, "rescue").
fact pfd_skills(101, "medical").
fact pfd_firefighter(101, 12, "Ada", "Burns").
fact pfd_firefighter(102, 12, "Ben", "Cole").
fact pfd_firefighter(103, 19, "Cal", "Dunn").
fact pfd_response(71, 12, "NW 5th", "Alder St").

// Vancouver firefighters.
fact vfd_schedule(201, 32, 600, 1800).
fact vfd_skills(201, "hazmat").
fact vfd_firefighter(201, 32, "Dee", "Eads").

// Pre-joined same-skill pairs published by the FS peer (r3 is an equality
// description, so s2 holds exactly SameSkill).
fact s2(101, 102).
fact s2(102, 101).
fact s1(101, 12, 700).
fact s1(102, 12, 700).
)ppl";
}

const char* EmergencyEarthquakePpl() {
  return R"ppl(
// ---------------------------------------------------------------------
// Ad-hoc extension (Example 1.1): the Earthquake Command Center joins.
// ---------------------------------------------------------------------

peer ECC {
  relation TreatedVictim(pid, bid, state);
  relation UntreatedVictim(loc, state);
  relation Vehicle(vid, type, capac, gps, dest);
  relation Bed(bid, loc, class);
  relation Site(gps, status);
  relation SkilledPerson(pid, skill);
}

// Replication for reliability (Section 3, "Cyclic PDMSs"): the ECC keeps a
// copy of the dispatch center's Vehicle table. Projection-free equality —
// query answering stays polynomial (Theorem 3.2.1).
mapping (vid, type, capac, gps, dest) :
    ECC:Vehicle(vid, type, capac, gps, dest)
    = NDC:Vehicle(vid, type, capac, gps, dest).

// The command center sees all skilled emergency personnel.
mapping ECC:SkilledPerson(pid, skill) :- NDC:SkilledPerson(pid, skill).

// Relief workers register directly with the command center.
stored ecc_victims(pid, bid, state) <= ECC:TreatedVictim(pid, bid, state).
stored ecc_sites(gps, status) <= ECC:Site(gps, status).
stored natguard_skilled(pid, skill) <= ECC:SkilledPerson(pid, skill).

fact ecc_victims(9301, 44, "serious").
fact ecc_sites("45.52N,122.67W", "collapsed").
fact natguard_skilled(7001, "search-and-rescue").
)ppl";
}

Result<PplProgram> BuildEmergencyScenario(bool with_earthquake) {
  PplProgram program;
  PDMS_RETURN_IF_ERROR(ParsePplProgramInto(EmergencyBasePpl(),
                                           &program.network, &program.data));
  if (with_earthquake) {
    PDMS_RETURN_IF_ERROR(ParsePplProgramInto(
        EmergencyEarthquakePpl(), &program.network, &program.data));
  }
  return program;
}

}  // namespace gen
}  // namespace pdms
