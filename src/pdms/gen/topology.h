#ifndef PDMS_GEN_TOPOLOGY_H_
#define PDMS_GEN_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "pdms/core/cost_estimator.h"
#include "pdms/core/network.h"
#include "pdms/data/database.h"
#include "pdms/lang/conjunctive_query.h"
#include "pdms/util/status.h"

namespace pdms {
namespace gen {

/// Graph-shaped PDMS generator for churn experiments at thousand-peer
/// scale. Where the Section 5 workload generator (workload.h) builds
/// stratified networks with a global query, this one builds networks whose
/// *connectivity* mirrors real peer-to-peer deployments:
///
///  - kPowerLaw: peers join one at a time and attach to `attach_edges`
///    earlier peers chosen proportionally to degree (preferential
///    attachment), yielding the few-hubs/many-leaves degree distribution
///    of open P2P networks;
///  - kCommunity: peers split into `num_communities` blocks; mappings stay
///    inside the block except for occasional bridges (probability
///    `bridge_fraction`), modeling federations of organizations that
///    mostly mediate their own schemas.
///
/// Every attachment edge points from a newer peer to an older one, so the
/// mapping graph is a DAG and inclusions are acyclic (Definition 3.1).
/// Each peer stores relation R0 directly (storage description over a fresh
/// stored relation), and each level-k relation Rk (k >= 1) is provided
/// from neighbors' R(k-1) — definitional with probability
/// `definitional_fraction`, an inclusion otherwise. Queries over Rk thus
/// reformulate through exactly k mapping levels into the neighborhood's
/// storage, keeping rule-goal trees bounded while invalidation locality
/// (which peers/mappings a plan depends on) tracks the graph structure.
struct TopologyConfig {
  enum class Kind { kPowerLaw, kCommunity };
  Kind kind = Kind::kPowerLaw;
  size_t num_peers = 1000;
  /// Levels above storage: peers declare R0..R<levels>; R0 is stored.
  size_t levels = 1;
  size_t attach_edges = 2;
  /// kCommunity only.
  size_t num_communities = 20;
  double bridge_fraction = 0.05;
  double definitional_fraction = 0.5;
  size_t facts_per_stored = 2;
  int64_t value_domain = 16;
  uint64_t seed = 1;
  /// Extra providers per stored relation: each st_i gains this many
  /// additional storage descriptions with the same head, hosted on peers
  /// spread deterministically around the ring (so with kCommunity the
  /// replicas land in other communities). The catalog's first description
  /// keeps the original owner, so cost-blind resolution is unchanged;
  /// cost-aware execution may pick any replica. All replicas serve the
  /// identical slice (data is keyed by stored-relation name), which is
  /// what makes provider selection answer-neutral.
  size_t replicas = 0;
};

/// A generated graph-shaped PDMS. `neighbors[i]` lists the (older) peers
/// that peer i's mappings draw on; `community[i]` is peer i's block index
/// (all zero for kPowerLaw).
struct Topology {
  PdmsNetwork network;
  Database data;
  std::vector<std::vector<size_t>> neighbors;
  std::vector<size_t> community;
};

/// Peer / relation / stored-relation names used by the generator, shared
/// with the churn driver and tests.
std::string TopologyPeerName(size_t index);
std::string TopologyRelationName(size_t level);
std::string TopologyStoredName(size_t index);

/// Generates a topology per `config`. Deterministic in `config.seed`.
Result<Topology> GenerateTopology(const TopologyConfig& config);

/// Static link-cost shapes layered over a generated topology
/// (docs/network_cost_model.md). The shape decides how peers map onto the
/// LinkMap's zones/coordinates; the latency knobs decide what each class
/// of link costs.
struct LinkMapConfig {
  enum class Shape {
    /// Everything one flat LAN: one zone, every link `lan_latency_ms`.
    /// The cost model's identity element — all routes cost the same.
    kUniformLan,
    /// Peers on a `mesh_width`-wide grid (row-major); latency grows with
    /// Manhattan distance, so diameter sweeps stretch the far corner.
    kMesh,
    /// Communities become WAN sites: cheap intra-zone links, one
    /// expensive shared trunk per zone pair (the contention domain).
    kClusteredWan,
    /// kClusteredWan plus a last-mile uplink: every peer except each
    /// zone's first (the hub) pays `leaf_access_ms` on every link.
    kHubSpoke,
  };
  Shape shape = Shape::kClusteredWan;
  double lan_latency_ms = 0.5;
  double wan_latency_ms = 20.0;
  /// Trunk bandwidth (0 = infinite) and fixed per-message occupancy —
  /// what the contention model queues on.
  double wan_bytes_per_ms = 0;
  double wan_per_message_ms = 0;
  double leaf_access_ms = 2.0;  // kHubSpoke only
  size_t mesh_width = 32;       // kMesh only
  /// Zone count when the topology has no community labels (kPowerLaw):
  /// peers are striped into `num_zones` contiguous index blocks.
  size_t num_zones = 8;
  /// The querying node's name and home zone (mesh: grid origin). Defaults
  /// match sim::kCoordinatorName without dragging in the sim target.
  std::string coordinator = "@client";
  size_t coordinator_zone = 0;
};

/// Derives the link map for `topology` per `config`. Deterministic: a pure
/// function of the two configs (community labels come from the topology).
LinkMap GenerateLinkMap(const Topology& topology, const LinkMapConfig& config);

/// A single-goal query over peer `index`'s level-`level` relation:
/// `Q(x, y) :- P<index>:R<level>(x, y).`
ConjunctiveQuery TopologyQuery(size_t index, size_t level);

}  // namespace gen
}  // namespace pdms

#endif  // PDMS_GEN_TOPOLOGY_H_
