#include "pdms/eval/datalog.h"

#include <string>
#include <unordered_set>

#include "pdms/eval/evaluator.h"
#include "pdms/util/strings.h"

namespace pdms {

namespace {

// Prefix for the hidden delta relations; '\x01' cannot appear in a parsed
// predicate name, so deltas can never collide with user relations.
std::string DeltaName(const std::string& predicate) {
  return std::string("\x01") + predicate;
}

// Produces the head tuple of `rule` under `binding` and inserts it into
// both `total` and `next_delta` if new. Returns the number of new tuples.
size_t EmitHead(const Rule& rule, const BindingMap& binding, Database* total,
                Database* next_delta) {
  Tuple tuple;
  tuple.reserve(rule.head().arity());
  for (const Term& t : rule.head().args()) {
    if (t.is_constant()) {
      tuple.push_back(t.value());
    } else {
      tuple.push_back(binding.at(t.var_name()));
    }
  }
  if (total->Insert(rule.head().predicate(), tuple)) {
    next_delta->Insert(rule.head().predicate(), std::move(tuple));
    return 1;
  }
  return 0;
}

}  // namespace

Result<Database> EvaluateDatalog(const std::vector<Rule>& rules,
                                 const Database& edb,
                                 const DatalogOptions& options) {
  for (const Rule& r : rules) PDMS_RETURN_IF_ERROR(r.CheckSafe());

  std::unordered_set<std::string> idb;
  for (const Rule& r : rules) idb.insert(r.head().predicate());

  Database total = edb;
  // Ensure IDB relations exist even if no rule ever fires.
  for (const Rule& r : rules) {
    PDMS_RETURN_IF_ERROR(
        total.CreateRelation(r.head().predicate(), r.head().arity()));
  }

  // Round 0: naive evaluation of every rule over the EDB. Matches are
  // buffered before insertion — emitting while scanning would grow the
  // relation under the iterator.
  Database delta;
  size_t derived = 0;
  for (const Rule& rule : rules) {
    std::vector<BindingMap> matches;
    PDMS_RETURN_IF_ERROR(ForEachMatch(rule.body(), rule.comparisons(),
                                      total, [&](const BindingMap& binding) {
                                        matches.push_back(binding);
                                        return true;
                                      }));
    for (const BindingMap& binding : matches) {
      derived += EmitHead(rule, binding, &total, &delta);
    }
  }

  size_t round = 0;
  while (delta.TotalTuples() > 0) {
    if (++round > options.max_rounds) {
      return Status::ResourceExhausted("datalog fixpoint round cap hit");
    }
    if (derived > options.max_tuples) {
      return Status::ResourceExhausted("datalog derived-tuple cap hit");
    }
    // Work database: all of `total` plus the delta relations under their
    // hidden names, so one rule instantiation can mix them.
    Database work = total;
    for (const std::string& name : delta.RelationNames()) {
      const Relation* rel = delta.Find(name);
      for (const Tuple& t : rel->tuples()) work.Insert(DeltaName(name), t);
    }

    Database next_delta;
    for (const Rule& rule : rules) {
      // Semi-naive: one join per IDB body atom, with that atom restricted
      // to the last delta.
      for (size_t i = 0; i < rule.body().size(); ++i) {
        const Atom& pivot = rule.body()[i];
        if (idb.count(pivot.predicate()) == 0) continue;
        if (delta.Find(pivot.predicate()) == nullptr) continue;
        std::vector<Atom> body = rule.body();
        body[i] = Atom(DeltaName(pivot.predicate()), pivot.args());
        // `work` is a frozen copy, but buffer anyway: EmitHead writes to
        // `total`, which later pivots of this round still read through
        // `work` only — keep the discipline uniform.
        std::vector<BindingMap> matches;
        PDMS_RETURN_IF_ERROR(ForEachMatch(body, rule.comparisons(), work,
                                          [&](const BindingMap& binding) {
                                            matches.push_back(binding);
                                            return true;
                                          }));
        for (const BindingMap& binding : matches) {
          derived += EmitHead(rule, binding, &total, &next_delta);
        }
      }
    }
    delta = std::move(next_delta);
  }
  return total;
}

}  // namespace pdms
