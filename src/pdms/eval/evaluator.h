#ifndef PDMS_EVAL_EVALUATOR_H_
#define PDMS_EVAL_EVALUATOR_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "pdms/data/database.h"
#include "pdms/lang/conjunctive_query.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/util/status.h"

namespace pdms {

namespace exec {
class ThreadPool;
}  // namespace exec

/// A satisfying assignment of body variables to data values.
using BindingMap = std::unordered_map<std::string, Value>;

/// Enumerates every assignment of the body variables that makes all atoms
/// hold in `db` and all comparisons evaluate to true. Atoms over relations
/// missing from `db` match nothing. The callback returns false to stop
/// enumeration early.
///
/// Joins are evaluated by backtracking with greedy atom reordering (most
/// bound variables first); each comparison is applied as soon as both of its
/// sides are ground, so selections are pushed below joins.
Status ForEachMatch(const std::vector<Atom>& body,
                    const std::vector<Comparison>& comparisons,
                    const Database& db,
                    const std::function<bool(const BindingMap&)>& callback);

/// Evaluates a conjunctive query over `db`, returning the set of head
/// tuples (set semantics). The query must be safe.
Result<Relation> EvaluateCQ(const ConjunctiveQuery& cq, const Database& db);

/// Availability gate consulted once per distinct relation before a scan.
/// Returning a non-OK status (typically kUnavailable, possibly after the
/// fault layer exhausted its retries) vetoes the scan.
using StoredGate = std::function<Status(const std::string& relation)>;

/// Gated variant: every distinct body relation is cleared through `gate`
/// (null gate = always allowed) before any matching starts; the first
/// non-OK gate status aborts the evaluation with that status. With a trace
/// attached (null = disabled) a `join` span covers the matching phase —
/// per-relation scan outcomes are spanned by the gate's AccessController,
/// which nests naturally under the caller's open span.
Result<Relation> EvaluateCQ(const ConjunctiveQuery& cq, const Database& db,
                            const StoredGate& gate,
                            obs::TraceContext* trace = nullptr);

/// Evaluates a union of conjunctive queries (all disjuncts must share head
/// arity); the result is the set union of the disjunct results.
Result<Relation> EvaluateUnion(const UnionQuery& uq, const Database& db);

/// The outcome of evaluating a union under partial availability.
struct DegradedEvalResult {
  Relation answers;
  /// Relations the gate vetoed (sorted, deduplicated).
  std::vector<std::string> unavailable_relations;
  /// Disjuncts skipped because a relation they scan was vetoed.
  size_t disjuncts_skipped = 0;

  DegradedEvalResult() : answers("result", 0) {}
};

/// Degraded union evaluation: disjuncts whose relations the gate reports
/// kUnavailable are skipped (and recorded) instead of failing the whole
/// query; any other gate error propagates. The surviving disjuncts'
/// answers are a sound subset of the fully-available result.
///
/// Observability (both nullable, borrowed): with `trace` attached each
/// disjunct gets an `eval_cq` span (gate outcomes and the join nested
/// under it); with `metrics` attached the registry accumulates
/// `eval.disjuncts` / `eval.disjuncts_skipped` / `eval.answers`.
///
/// With `pool` attached (nullable, borrowed) the joins of the surviving
/// disjuncts run as parallel tasks, each producing a private answer shard;
/// shards are merged in disjunct order under set semantics, so answers,
/// degradation report, metrics, and span structure are identical to the
/// serial run (span timings cover dispatch rather than the join).
/// Gating always stays serial and in disjunct order.
Result<DegradedEvalResult> EvaluateUnionDegraded(
    const UnionQuery& uq, const Database& db, const StoredGate& gate,
    obs::TraceContext* trace = nullptr, obs::MetricsRegistry* metrics = nullptr,
    exec::ThreadPool* pool = nullptr);

/// Drops tuples containing labeled nulls — used to extract certain answers
/// from a chased instance.
Relation DropNullTuples(const Relation& rel);

}  // namespace pdms

#endif  // PDMS_EVAL_EVALUATOR_H_
