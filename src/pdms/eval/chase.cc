#include "pdms/eval/chase.h"

#include <map>
#include <set>
#include <utility>

#include "pdms/eval/evaluator.h"
#include "pdms/util/check.h"
#include "pdms/util/strings.h"

namespace pdms {

std::string Tgd::ToString() const {
  std::vector<std::string> lhs;
  lhs.reserve(body.size() + comparisons.size());
  for (const Atom& a : body) lhs.push_back(a.ToString());
  for (const Comparison& c : comparisons) lhs.push_back(c.ToString());
  std::vector<std::string> rhs;
  rhs.reserve(head.size());
  for (const Atom& a : head) rhs.push_back(a.ToString());
  std::string out;
  if (!name.empty()) {
    out += "[";
    out += name;
    out += "] ";
  }
  out += StrJoin(lhs, ", ");
  out += " -> ";
  out += StrJoin(rhs, ", ");
  return out;
}

bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds) {
  // Position-graph nodes are interned as "pred#i".
  auto key = [](const Atom& a, size_t i) {
    return a.predicate() + "#" + std::to_string(i);
  };
  // Edge lists with a strict ("special") flag per edge.
  std::map<std::string, std::vector<std::pair<std::string, bool>>> graph;

  for (const Tgd& tgd : tgds) {
    // Variables of the body (universally quantified).
    std::set<std::string> universal;
    for (const Atom& a : tgd.body) {
      std::vector<std::string> vars;
      CollectVariables(a, &vars);
      universal.insert(vars.begin(), vars.end());
    }
    for (const Atom& body_atom : tgd.body) {
      for (size_t p = 0; p < body_atom.arity(); ++p) {
        const Term& t = body_atom.args()[p];
        if (!t.is_variable() || universal.count(t.var_name()) == 0) {
          continue;
        }
        const std::string& x = t.var_name();
        // Does x propagate into the head at all?
        bool propagates = false;
        for (const Atom& head_atom : tgd.head) {
          for (const Term& h : head_atom.args()) {
            if (h.is_variable() && h.var_name() == x) propagates = true;
          }
        }
        if (!propagates) continue;
        std::string from = key(body_atom, p);
        for (const Atom& head_atom : tgd.head) {
          for (size_t q = 0; q < head_atom.arity(); ++q) {
            const Term& h = head_atom.args()[q];
            if (!h.is_variable()) continue;
            if (h.var_name() == x) {
              graph[from].emplace_back(key(head_atom, q), false);
            } else if (universal.count(h.var_name()) == 0) {
              graph[from].emplace_back(key(head_atom, q), true);  // special
            }
          }
        }
      }
    }
  }

  // A special edge on a cycle = not weakly acyclic. Detect by checking,
  // for each special edge (u, v), whether u is reachable from v.
  auto reachable = [&](const std::string& from, const std::string& to) {
    std::set<std::string> seen = {from};
    std::vector<std::string> stack = {from};
    while (!stack.empty()) {
      std::string node = stack.back();
      stack.pop_back();
      if (node == to) return true;
      auto it = graph.find(node);
      if (it == graph.end()) continue;
      for (const auto& [next, special] : it->second) {
        if (seen.insert(next).second) stack.push_back(next);
      }
    }
    return false;
  };
  for (const auto& [from, edges] : graph) {
    for (const auto& [to, special] : edges) {
      if (special && reachable(to, from)) return false;
    }
  }
  return true;
}

namespace {

// Substitutes `binding` into `atom`, leaving unbound variables in place.
Atom SubstituteAtom(const Atom& atom, const BindingMap& binding) {
  std::vector<Term> args;
  args.reserve(atom.arity());
  for (const Term& t : atom.args()) {
    if (t.is_variable()) {
      auto it = binding.find(t.var_name());
      if (it != binding.end()) {
        args.push_back(Term::Constant(it->second));
        continue;
      }
    }
    args.push_back(t);
  }
  return Atom(atom.predicate(), std::move(args));
}

// True if the (partially ground) head atoms can all be matched in `db`,
// i.e. some assignment of the remaining (existential) variables maps every
// atom to an existing tuple.
bool HeadSatisfied(const std::vector<Atom>& head_patterns,
                   const Database& db) {
  bool found = false;
  Status status = ForEachMatch(head_patterns, {}, db,
                               [&](const BindingMap&) {
                                 found = true;
                                 return false;  // first witness suffices
                               });
  PDMS_CHECK(status.ok());
  return found;
}

}  // namespace

Result<Database> ChaseDatabase(const Database& input,
                               const std::vector<Tgd>& tgds,
                               const ChaseOptions& options) {
  Database db = input;
  int64_t next_null = 1;
  // Resume null numbering above any nulls already present in the input so
  // fresh nulls stay fresh.
  for (const std::string& name : db.RelationNames()) {
    for (const Tuple& t : db.Find(name)->tuples()) {
      for (const Value& v : t) {
        if (v.is_null() && v.null_id() >= next_null) {
          next_null = v.null_id() + 1;
        }
      }
    }
  }

  for (size_t round = 0; round < options.max_rounds; ++round) {
    bool fired = false;
    for (const Tgd& tgd : tgds) {
      // Collect the body homomorphisms first: firing while enumerating
      // would let fresh tuples re-trigger the same TGD mid-scan.
      std::vector<BindingMap> matches;
      PDMS_RETURN_IF_ERROR(ForEachMatch(tgd.body, tgd.comparisons, db,
                                        [&](const BindingMap& binding) {
                                          matches.push_back(binding);
                                          return true;
                                        }));
      for (const BindingMap& binding : matches) {
        std::vector<Atom> patterns;
        patterns.reserve(tgd.head.size());
        for (const Atom& a : tgd.head) {
          patterns.push_back(SubstituteAtom(a, binding));
        }
        if (HeadSatisfied(patterns, db)) continue;
        // Fire: instantiate remaining variables with fresh labeled nulls.
        BindingMap extension = binding;
        for (const Atom& a : tgd.head) {
          for (const Term& t : a.args()) {
            if (t.is_variable() && extension.count(t.var_name()) == 0) {
              extension.emplace(t.var_name(), Value::Null(next_null++));
            }
          }
        }
        for (const Atom& a : tgd.head) {
          Tuple tuple;
          tuple.reserve(a.arity());
          for (const Term& t : a.args()) {
            tuple.push_back(t.is_constant() ? t.value()
                                            : extension.at(t.var_name()));
          }
          db.Insert(a.predicate(), std::move(tuple));
        }
        fired = true;
        if (db.TotalTuples() > options.max_tuples) {
          return Status::ResourceExhausted(
              StrFormat("chase exceeded %zu tuples (non-terminating "
                        "dependency set?)",
                        options.max_tuples));
        }
      }
    }
    if (!fired) return db;
  }
  return Status::ResourceExhausted(
      StrFormat("chase exceeded %zu rounds (non-terminating dependency "
                "set?)",
                options.max_rounds));
}

}  // namespace pdms
