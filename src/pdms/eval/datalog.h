#ifndef PDMS_EVAL_DATALOG_H_
#define PDMS_EVAL_DATALOG_H_

#include <vector>

#include "pdms/data/database.h"
#include "pdms/lang/conjunctive_query.h"
#include "pdms/util/status.h"

namespace pdms {

/// Options for datalog fixpoint evaluation.
struct DatalogOptions {
  /// Hard cap on fixpoint rounds (defense against runaway programs; the
  /// least fixpoint of a positive program always converges, so hitting the
  /// cap indicates astronomically large derivations).
  size_t max_rounds = 1u << 20;
  /// Hard cap on total derived tuples.
  size_t max_tuples = 10u << 20;
};

/// Computes the least fixpoint of a positive datalog program (the paper's
/// definitional mappings are exactly such programs) over the extensional
/// database `edb`, using semi-naive evaluation: after the first round, each
/// rule is re-joined once per intensional body atom, with that atom ranging
/// over the previous round's delta only.
///
/// Returns a database containing the EDB relations plus the derived
/// intensional relations. Rules may use comparison predicates in bodies.
Result<Database> EvaluateDatalog(const std::vector<Rule>& rules,
                                 const Database& edb,
                                 const DatalogOptions& options = {});

}  // namespace pdms

#endif  // PDMS_EVAL_DATALOG_H_
