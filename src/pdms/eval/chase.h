#ifndef PDMS_EVAL_CHASE_H_
#define PDMS_EVAL_CHASE_H_

#include <string>
#include <vector>

#include "pdms/data/database.h"
#include "pdms/lang/conjunctive_query.h"
#include "pdms/util/status.h"

namespace pdms {

/// A tuple-generating dependency (TGD):
///
///   ∀x̄  body(x̄) ∧ comparisons(x̄)  →  ∃ȳ  head(x̄, ȳ)
///
/// Head variables absent from the body are existentially quantified; the
/// chase instantiates them with fresh labeled nulls.
///
/// PPL specifications translate directly into TGDs (see
/// core/certain_answers.h): a storage description `R ⊆ Q` becomes
/// `R(x̄) → body(Q)`, a peer inclusion `Q1 ⊆ Q2` becomes
/// `body(Q1) → body(Q2)`, an equality contributes both directions, and a
/// definitional mapping contributes its body → head direction (null-free,
/// so it behaves like a datalog rule).
struct Tgd {
  std::vector<Atom> body;
  std::vector<Comparison> comparisons;
  std::vector<Atom> head;
  std::string name;  // diagnostic label

  std::string ToString() const;
};

/// Chase resource limits. The PPL fragments with decidable query answering
/// yield weakly acyclic TGD sets, for which the chase terminates; the caps
/// catch the other cases (e.g. cyclic equality mappings with projections,
/// Theorem 3.1's undecidable general case) and surface them as
/// ResourceExhausted instead of diverging.
struct ChaseOptions {
  size_t max_rounds = 10000;
  size_t max_tuples = 1u << 22;
};

/// Weak acyclicity (Fagin et al.): the classic sufficient condition for
/// chase termination. Builds the position graph — a node per (predicate,
/// argument position); for every TGD and every universally quantified
/// variable x at body position p that also appears in the head, a normal
/// edge from p to each head position of x and a *special* edge from p to
/// each head position holding an existential variable — and checks that no
/// cycle passes through a special edge. The PPL fragments with decidable
/// query answering (acyclic inclusions, projection-free equalities)
/// translate to weakly acyclic TGD sets, so ChaseDatabase terminates on
/// them without hitting its caps.
bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds);

/// Runs the standard (restricted) chase: repeatedly finds a homomorphism of
/// some TGD body into the instance that cannot be extended to its head, and
/// adds the head atoms with fresh nulls for existential variables. Returns
/// the chased instance — a universal solution, so evaluating a conjunctive
/// query over it and dropping null-containing tuples yields exactly the
/// certain answers.
Result<Database> ChaseDatabase(const Database& input,
                               const std::vector<Tgd>& tgds,
                               const ChaseOptions& options = {});

}  // namespace pdms

#endif  // PDMS_EVAL_CHASE_H_
