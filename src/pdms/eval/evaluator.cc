#include "pdms/eval/evaluator.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "pdms/exec/parallel_for.h"
#include "pdms/util/check.h"
#include "pdms/util/strings.h"

namespace pdms {

namespace {

// Lazily-built hash indexes: (relation instance, column) -> value hash ->
// row ids. Built the first time a join probes that column with a bound
// value, then reused for every subsequent probe in the same evaluation.
// Keyed by the Relation's address (stable for the lifetime of one
// evaluation over a const Database), so a probe costs one pointer-sized
// hash instead of a string compare.
class IndexCache {
 public:
  // Row indices of `rel` whose column `col` may equal `value` (hash
  // bucket; the caller re-checks equality while matching the full atom).
  // Returns nullptr when the bucket is empty.
  const std::vector<size_t>* Probe(const Relation& rel, size_t col,
                                   const Value& value) {
    IndexKey key{&rel, col};
    auto it = indexes_.find(key);
    if (it == indexes_.end()) {
      ColumnIndex index;
      const std::vector<Tuple>& tuples = rel.tuples();
      for (size_t row = 0; row < tuples.size(); ++row) {
        index[tuples[row][col].Hash()].push_back(row);
      }
      it = indexes_.emplace(key, std::move(index)).first;
    }
    auto bucket = it->second.find(value.Hash());
    return bucket == it->second.end() ? nullptr : &bucket->second;
  }

 private:
  struct IndexKey {
    const Relation* rel;
    size_t col;
    bool operator==(const IndexKey& o) const {
      return rel == o.rel && col == o.col;
    }
  };
  struct IndexKeyHash {
    size_t operator()(const IndexKey& k) const {
      return std::hash<const void*>()(k.rel) * 1000003u + k.col;
    }
  };
  using ColumnIndex = std::unordered_map<uint64_t, std::vector<size_t>>;
  std::unordered_map<IndexKey, ColumnIndex, IndexKeyHash> indexes_;
};

// --- Slot-compiled backtracking join ---
//
// Variables are compiled to integer slots once per query; the inner
// matching loop then works on a flat `const Value*` slot array (null =
// unbound, otherwise a pointer into the stored tuples) — no string-keyed
// map lookups and no per-tuple heap allocation. The search itself is the
// same algorithm as the original BindingMap engine, candidate for
// candidate: greedy most-bound atom selection, hash-index probes past
// kIndexThreshold rows, comparisons applied the moment they become
// ground. Enumeration order is identical, so answer insertion order (and
// hence Relation::ToString) is unchanged.

// A compiled term: an inline constant or a slot index.
struct SlotTerm {
  bool is_const = false;
  Value value;      // when is_const
  size_t slot = 0;  // when !is_const
};

struct SlotAtom {
  const Relation* rel = nullptr;  // null / arity mismatch: no candidates
  size_t arity = 0;
  std::vector<SlotTerm> args;
};

struct SlotComparison {
  CmpOp op;
  SlotTerm lhs, rhs;
};

class SlotProgram {
 public:
  SlotProgram(const std::vector<Atom>& body,
              const std::vector<Comparison>& comparisons, const Database& db) {
    atoms_.reserve(body.size());
    for (const Atom& a : body) {
      SlotAtom sa;
      const Relation* rel = db.Find(a.predicate());
      sa.rel = (rel != nullptr && rel->arity() == a.arity()) ? rel : nullptr;
      sa.arity = a.arity();
      sa.args.reserve(a.args().size());
      for (const Term& t : a.args()) sa.args.push_back(Compile(t));
      atoms_.push_back(std::move(sa));
    }
    comparisons_.reserve(comparisons.size());
    for (const Comparison& c : comparisons) {
      comparisons_.push_back({c.op, Compile(c.lhs), Compile(c.rhs)});
    }
    slots_.assign(slot_of_.size(), nullptr);
    used_.assign(atoms_.size(), false);
    done_.assign(comparisons_.size(), false);
    // Per-depth undo scratch, allocated once here so the per-candidate
    // inner loop never touches the heap.
    size_t max_arity = 0;
    for (const SlotAtom& sa : atoms_) max_arity = std::max(max_arity, sa.arity);
    bound_scratch_.resize(atoms_.size());
    checked_scratch_.resize(atoms_.size());
    for (size_t d = 0; d < atoms_.size(); ++d) {
      bound_scratch_[d].reserve(max_arity);
      checked_scratch_[d].reserve(comparisons_.size());
    }
  }

  /// The slot for `var`, or SIZE_MAX when the variable occurs nowhere in
  /// the compiled body/comparisons.
  size_t SlotOf(const std::string& var) const {
    auto it = slot_of_.find(var);
    return it == slot_of_.end() ? SIZE_MAX : it->second;
  }

  /// Variable name per slot, in slot order.
  const std::vector<std::string>& slot_names() const { return slot_names_; }

  /// The current value of a slot (valid inside the match callback).
  const Value& slot(size_t s) const { return *slots_[s]; }

  /// Null when the slot is unbound (a variable that occurs only in
  /// never-ground comparisons stays unbound through a full match).
  const Value* slot_or_null(size_t s) const { return slots_[s]; }

  /// Runs the join; `on_match` fires once per satisfying assignment (all
  /// body slots bound) and returns false to stop the enumeration.
  void Run(IndexCache* indexes, const std::function<bool()>& on_match) {
    indexes_ = indexes;
    on_match_ = &on_match;
    stopped_ = false;
    Search(atoms_.size(), 0);
  }

 private:
  SlotTerm Compile(const Term& t) {
    SlotTerm out;
    if (t.is_constant()) {
      out.is_const = true;
      out.value = t.value();
      return out;
    }
    auto [it, inserted] = slot_of_.emplace(t.var_name(), slot_of_.size());
    if (inserted) slot_names_.push_back(t.var_name());
    out.slot = it->second;
    return out;
  }

  const Value* Resolve(const SlotTerm& t) const {
    return t.is_const ? &t.value : slots_[t.slot];
  }

  size_t BoundCount(const SlotAtom& a) const {
    size_t bound = 0;
    for (const SlotTerm& t : a.args) {
      if (t.is_const || slots_[t.slot] != nullptr) ++bound;
    }
    return bound;
  }

  // Recursive backtracking over the remaining atoms; `depth` indexes the
  // preallocated undo scratch.
  void Search(size_t remaining, size_t depth) {
    if (remaining == 0) {
      if (!(*on_match_)()) stopped_ = true;
      return;
    }
    // Pick the unused atom with the most bound positions (fewest free
    // variables); ties keep the first, matching the original engine.
    size_t best = atoms_.size();
    size_t best_bound = 0;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (used_[i]) continue;
      size_t b = BoundCount(atoms_[i]);
      if (best == atoms_.size() || b > best_bound) {
        best = i;
        best_bound = b;
      }
    }
    PDMS_DCHECK(best < atoms_.size());
    used_[best] = true;
    const SlotAtom& atom = atoms_[best];
    const Relation* rel = atom.rel;
    if (rel != nullptr) {
      // Candidate rows: probe a hash index on the first ground position
      // if one exists; otherwise scan the whole relation. Building an
      // index only pays off past a few dozen tuples — below that (e.g.
      // the delta relations of semi-naive datalog) a scan is cheaper.
      constexpr size_t kIndexThreshold = 32;
      const std::vector<size_t>* candidates = nullptr;
      bool indexed = false;
      for (size_t i = 0;
           rel->size() >= kIndexThreshold && i < atom.arity && !indexed;
           ++i) {
        const Value* v = Resolve(atom.args[i]);
        if (v != nullptr) {
          candidates = indexes_->Probe(*rel, i, *v);
          indexed = true;
        }
      }
      size_t limit = indexed
                         ? (candidates == nullptr ? 0 : candidates->size())
                         : rel->size();
      std::vector<size_t>& bound_here = bound_scratch_[depth];
      std::vector<size_t>& checked_here = checked_scratch_[depth];
      for (size_t c = 0; c < limit; ++c) {
        const Tuple& tuple =
            indexed ? rel->tuples()[(*candidates)[c]] : rel->tuples()[c];
        bound_here.clear();
        bool ok = true;
        for (size_t i = 0; i < atom.arity; ++i) {
          const SlotTerm& t = atom.args[i];
          if (t.is_const) {
            if (t.value != tuple[i]) {
              ok = false;
              break;
            }
            continue;
          }
          const Value* bound = slots_[t.slot];
          if (bound != nullptr) {
            if (*bound != tuple[i]) {
              ok = false;
              break;
            }
          } else {
            slots_[t.slot] = &tuple[i];
            bound_here.push_back(t.slot);
          }
        }
        if (ok) {
          // Check any comparison that just became ground.
          checked_here.clear();
          for (size_t ci = 0; ok && ci < comparisons_.size(); ++ci) {
            if (done_[ci]) continue;
            const SlotComparison& cmp = comparisons_[ci];
            const Value* lhs = Resolve(cmp.lhs);
            const Value* rhs = Resolve(cmp.rhs);
            if (lhs == nullptr || rhs == nullptr) continue;
            if (!EvalCmp(cmp.op, *lhs, *rhs)) {
              ok = false;
            } else {
              done_[ci] = true;
              checked_here.push_back(ci);
            }
          }
          if (ok) Search(remaining - 1, depth + 1);
          for (size_t ci : checked_here) done_[ci] = false;
        }
        for (size_t s : bound_here) slots_[s] = nullptr;
        if (stopped_) break;
      }
    }
    used_[best] = false;
  }

  std::unordered_map<std::string, size_t> slot_of_;
  std::vector<std::string> slot_names_;
  std::vector<SlotAtom> atoms_;
  std::vector<SlotComparison> comparisons_;
  std::vector<const Value*> slots_;
  std::vector<bool> used_;
  std::vector<bool> done_;
  std::vector<std::vector<size_t>> bound_scratch_;
  std::vector<std::vector<size_t>> checked_scratch_;
  IndexCache* indexes_ = nullptr;
  const std::function<bool()>* on_match_ = nullptr;
  bool stopped_ = false;
};

// The empty-body case shared by ForEachMatch and EvaluateCQ: the single
// empty match if all (necessarily ground) comparisons hold.
Status MatchEmptyBody(const std::vector<Comparison>& comparisons,
                      const std::function<bool()>& on_match) {
  for (const Comparison& c : comparisons) {
    Value lhs, rhs;
    if (c.lhs.is_constant()) {
      lhs = c.lhs.value();
    } else {
      return Status::InvalidArgument(
          "comparison over unbound variable in empty body: " + c.ToString());
    }
    if (c.rhs.is_constant()) {
      rhs = c.rhs.value();
    } else {
      return Status::InvalidArgument(
          "comparison over unbound variable in empty body: " + c.ToString());
    }
    if (!EvalCmp(c.op, lhs, rhs)) return Status::Ok();
  }
  on_match();
  return Status::Ok();
}

}  // namespace

Status ForEachMatch(const std::vector<Atom>& body,
                    const std::vector<Comparison>& comparisons,
                    const Database& db,
                    const std::function<bool(const BindingMap&)>& callback) {
  if (body.empty()) {
    BindingMap empty;
    return MatchEmptyBody(comparisons, [&] {
      callback(empty);
      return true;
    });
  }
  SlotProgram program(body, comparisons, db);
  IndexCache indexes;
  // Compatibility wrapper: materialize the name -> value map per match.
  // Slot-native callers (EvaluateCQ) read the slots directly instead.
  const std::vector<std::string>& names = program.slot_names();
  program.Run(&indexes, [&] {
    BindingMap binding;
    binding.reserve(names.size());
    for (size_t s = 0; s < names.size(); ++s) {
      const Value* v = program.slot_or_null(s);
      if (v != nullptr) binding.emplace(names[s], *v);
    }
    return callback(binding);
  });
  return Status::Ok();
}

Result<Relation> EvaluateCQ(const ConjunctiveQuery& cq, const Database& db) {
  PDMS_RETURN_IF_ERROR(cq.CheckSafe());
  Relation out(cq.head().predicate(), cq.head().arity());
  if (cq.body().empty()) {
    PDMS_RETURN_IF_ERROR(MatchEmptyBody(cq.comparisons(), [&] {
      Tuple tuple;
      tuple.reserve(cq.head().arity());
      for (const Term& t : cq.head().args()) {
        PDMS_CHECK_MSG(t.is_constant(), "unsafe head variable");
        tuple.push_back(t.value());
      }
      out.Insert(std::move(tuple));
      return true;
    }));
    return out;
  }
  SlotProgram program(cq.body(), cq.comparisons(), db);
  // Precompile the head projection to slots, so each match copies values
  // straight from the stored tuples into the output row.
  struct HeadTerm {
    bool is_const;
    Value value;
    size_t slot;
  };
  std::vector<HeadTerm> head;
  head.reserve(cq.head().arity());
  for (const Term& t : cq.head().args()) {
    if (t.is_constant()) {
      head.push_back({true, t.value(), 0});
    } else {
      size_t slot = program.SlotOf(t.var_name());
      PDMS_CHECK_MSG(slot != SIZE_MAX, "unsafe head variable");
      head.push_back({false, Value(), slot});
    }
  }
  IndexCache indexes;
  program.Run(&indexes, [&] {
    Tuple tuple;
    tuple.reserve(head.size());
    for (const HeadTerm& h : head) {
      tuple.push_back(h.is_const ? h.value : program.slot(h.slot));
    }
    out.Insert(std::move(tuple));
    return true;
  });
  return out;
}

namespace {

// Clears every distinct body relation through the gate; returns the first
// veto (callers decide whether a veto skips the disjunct or fails the
// query).
Status GateBody(const ConjunctiveQuery& cq, const StoredGate& gate) {
  if (!gate) return Status::Ok();
  std::set<std::string> seen;
  for (const Atom& a : cq.body()) {
    if (!seen.insert(a.predicate()).second) continue;
    PDMS_RETURN_IF_ERROR(gate(a.predicate()));
  }
  return Status::Ok();
}

}  // namespace

Result<Relation> EvaluateCQ(const ConjunctiveQuery& cq, const Database& db,
                            const StoredGate& gate,
                            obs::TraceContext* trace) {
  PDMS_RETURN_IF_ERROR(GateBody(cq, gate));
  obs::ScopedSpan join_span(trace, "join");
  join_span.Set("atoms", static_cast<uint64_t>(cq.body().size()));
  Result<Relation> out = EvaluateCQ(cq, db);
  if (out.ok()) {
    join_span.Set("answers", static_cast<uint64_t>(out->size()));
  }
  return out;
}

Result<Relation> EvaluateUnion(const UnionQuery& uq, const Database& db) {
  if (uq.empty()) return Relation("result", 0);
  Relation out(uq.disjuncts()[0].head().predicate(),
               uq.disjuncts()[0].head().arity());
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    if (cq.head().arity() != out.arity()) {
      return Status::InvalidArgument(StrFormat(
          "union disjuncts disagree on arity (%zu vs %zu)", out.arity(),
          cq.head().arity()));
    }
    PDMS_ASSIGN_OR_RETURN(Relation part, EvaluateCQ(cq, db));
    out.MergeFrom(std::move(part));
  }
  return out;
}

Result<DegradedEvalResult> EvaluateUnionDegraded(const UnionQuery& uq,
                                                 const Database& db,
                                                 const StoredGate& gate,
                                                 obs::TraceContext* trace,
                                                 obs::MetricsRegistry* metrics,
                                                 exec::ThreadPool* pool) {
  DegradedEvalResult out;
  if (uq.empty()) return out;
  out.answers = Relation(uq.disjuncts()[0].head().predicate(),
                         uq.disjuncts()[0].head().arity());
  std::set<std::string> unavailable;
  const bool parallel = pool != nullptr && pool->workers() > 0;

  // Gating stays serial and in disjunct order even in parallel mode: the
  // gate's AccessController caches verdicts per relation, so the probe
  // sequence — and with it AccessStats and the DegradationReport — is
  // byte-identical to the serial run. Only the pure joins fan out.
  struct PendingJoin {
    size_t disjunct;
    obs::SpanId cq_span;
    obs::SpanId join_span;
  };
  std::vector<PendingJoin> pending;
  size_t index = 0;
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    if (cq.head().arity() != out.answers.arity()) {
      return Status::InvalidArgument(
          StrFormat("union disjuncts disagree on arity (%zu vs %zu)",
                    out.answers.arity(), cq.head().arity()));
    }
    obs::ScopedSpan cq_span(trace, "eval_cq");
    cq_span.Set("disjunct", static_cast<uint64_t>(index));
    cq_span.Set("atoms", static_cast<uint64_t>(cq.body().size()));
    bool skipped = false;
    if (gate) {
      std::set<std::string> seen;
      for (const Atom& a : cq.body()) {
        if (!seen.insert(a.predicate()).second) continue;
        Status s = gate(a.predicate());
        if (s.ok()) continue;
        if (s.code() != StatusCode::kUnavailable) return s;
        unavailable.insert(a.predicate());
        skipped = true;
        // Keep gating the remaining relations: each probe is recorded in
        // the access stats, and later disjuncts reuse the cached verdicts.
      }
    }
    if (skipped) {
      ++out.disjuncts_skipped;
      cq_span.Set("skipped", true);
      ++index;
      continue;
    }
    if (!parallel) {
      obs::ScopedSpan join_span(trace, "join");
      PDMS_ASSIGN_OR_RETURN(Relation part, EvaluateCQ(cq, db));
      join_span.Set("answers", static_cast<uint64_t>(part.size()));
      join_span.End();
      cq_span.Set("answers", static_cast<uint64_t>(part.size()));
      out.answers.MergeFrom(std::move(part));
    } else {
      // Parallel mode: open and close the same spans now (the tree is
      // structurally identical to the serial run; only the timings cover
      // the dispatch rather than the join — see the determinism contract
      // in docs/parallel_execution.md), and fill their "answers"
      // attributes after the joins complete.
      obs::ScopedSpan join_span(trace, "join");
      pending.push_back({index, cq_span.id(), join_span.id()});
    }
    ++index;
  }

  if (parallel && !pending.empty()) {
    // One task per surviving disjunct, each building its own Relation
    // shard against the shared read-only database.
    std::vector<std::optional<Result<Relation>>> shards(pending.size());
    exec::ParallelFor(pool, pending.size(), [&](size_t k) {
      shards[k].emplace(EvaluateCQ(uq.disjuncts()[pending[k].disjunct], db));
    });
    // Merge in disjunct order under set semantics: the answer relation's
    // insertion order — and so its ToString — matches the serial run.
    for (size_t k = 0; k < pending.size(); ++k) {
      Result<Relation>& part = *shards[k];
      if (!part.ok()) return part.status();
      if (trace != nullptr) {
        uint64_t n = static_cast<uint64_t>(part->size());
        trace->SetAttribute(pending[k].join_span, "answers", n);
        trace->SetAttribute(pending[k].cq_span, "answers", n);
      }
      out.answers.MergeFrom(std::move(*part));
    }
  }

  out.unavailable_relations.assign(unavailable.begin(), unavailable.end());
  if (metrics != nullptr) {
    metrics->Add("eval.disjuncts", uq.size());
    metrics->Add("eval.disjuncts_skipped", out.disjuncts_skipped);
    metrics->Add("eval.answers", out.answers.size());
  }
  return out;
}

Relation DropNullTuples(const Relation& rel) {
  Relation out(rel.name(), rel.arity());
  for (const Tuple& t : rel.tuples()) {
    if (!TupleHasNull(t)) out.Insert(t);
  }
  return out;
}

}  // namespace pdms
