#include "pdms/eval/evaluator.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "pdms/util/check.h"
#include "pdms/util/strings.h"

namespace pdms {

namespace {

// Counts how many argument positions of `atom` are already ground under
// `binding` (constants or bound variables). Used for greedy join ordering.
size_t BoundCount(const Atom& atom, const BindingMap& binding) {
  size_t bound = 0;
  for (const Term& t : atom.args()) {
    if (t.is_constant() || binding.count(t.var_name()) > 0) ++bound;
  }
  return bound;
}

// True if both sides of `cmp` are ground under `binding`; when so,
// `*result` receives the truth value.
bool TryEvalComparison(const Comparison& cmp, const BindingMap& binding,
                       bool* result) {
  Value lhs, rhs;
  if (cmp.lhs.is_constant()) {
    lhs = cmp.lhs.value();
  } else {
    auto it = binding.find(cmp.lhs.var_name());
    if (it == binding.end()) return false;
    lhs = it->second;
  }
  if (cmp.rhs.is_constant()) {
    rhs = cmp.rhs.value();
  } else {
    auto it = binding.find(cmp.rhs.var_name());
    if (it == binding.end()) return false;
    rhs = it->second;
  }
  *result = EvalCmp(cmp.op, lhs, rhs);
  return true;
}

// Lazily-built hash indexes: (relation, column) -> value hash -> row ids.
// Built the first time a join probes that column with a bound value, then
// reused for every subsequent probe in the same evaluation.
class IndexCache {
 public:
  explicit IndexCache(const Database* db) { (void)db; }

  // Row indices of `rel` whose column `col` may equal `value` (hash
  // bucket; the caller re-checks equality while matching the full atom).
  // Returns nullptr when the bucket is empty.
  const std::vector<size_t>* Probe(const Relation& rel, size_t col,
                                   const Value& value) {
    auto key = std::make_pair(rel.name(), col);
    auto it = indexes_.find(key);
    if (it == indexes_.end()) {
      ColumnIndex index;
      const std::vector<Tuple>& tuples = rel.tuples();
      for (size_t row = 0; row < tuples.size(); ++row) {
        index[tuples[row][col].Hash()].push_back(row);
      }
      it = indexes_.emplace(std::move(key), std::move(index)).first;
    }
    auto bucket = it->second.find(value.Hash());
    return bucket == it->second.end() ? nullptr : &bucket->second;
  }

 private:
  using ColumnIndex =
      std::unordered_map<uint64_t, std::vector<size_t>>;
  std::map<std::pair<std::string, size_t>, ColumnIndex> indexes_;
};

struct MatchContext {
  const Database* db;
  const std::vector<Comparison>* comparisons;
  const std::function<bool(const BindingMap&)>* callback;
  IndexCache* indexes;
  bool stopped = false;
};

// Recursive backtracking join over the remaining atoms. `done` marks the
// comparisons already checked (each is checked exactly once, as soon as it
// becomes ground).
bool Search(std::vector<Atom>& atoms, std::vector<bool>& used,
            size_t remaining, BindingMap& binding, std::vector<bool>& done,
            MatchContext& ctx) {
  if (remaining == 0) {
    if (!(*ctx.callback)(binding)) {
      ctx.stopped = true;
    }
    return !ctx.stopped;
  }
  // Pick the unused atom with the most bound positions (fewest free vars).
  size_t best = atoms.size();
  size_t best_bound = 0;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (used[i]) continue;
    size_t b = BoundCount(atoms[i], binding);
    if (best == atoms.size() || b > best_bound) {
      best = i;
      best_bound = b;
    }
  }
  PDMS_DCHECK(best < atoms.size());
  used[best] = true;
  const Atom& atom = atoms[best];
  const Relation* rel = ctx.db->Find(atom.predicate());
  if (rel != nullptr && rel->arity() == atom.arity()) {
    // Candidate rows: probe a hash index on the first ground position if
    // one exists; otherwise scan the whole relation. Building an index
    // only pays off past a few dozen tuples — below that (e.g. the delta
    // relations of semi-naive datalog) a scan is cheaper.
    constexpr size_t kIndexThreshold = 32;
    const std::vector<size_t>* candidates = nullptr;
    bool indexed = false;
    for (size_t i = 0;
         rel->size() >= kIndexThreshold && i < atom.arity() && !indexed;
         ++i) {
      const Term& t = atom.args()[i];
      if (t.is_constant()) {
        candidates = ctx.indexes->Probe(*rel, i, t.value());
        indexed = true;
      } else {
        auto it = binding.find(t.var_name());
        if (it != binding.end()) {
          candidates = ctx.indexes->Probe(*rel, i, it->second);
          indexed = true;
        }
      }
    }
    size_t limit = indexed ? (candidates == nullptr ? 0 : candidates->size())
                           : rel->size();
    for (size_t c = 0; c < limit; ++c) {
      const Tuple& tuple =
          indexed ? rel->tuples()[(*candidates)[c]] : rel->tuples()[c];
      // Match the atom pattern against the tuple, extending the binding.
      std::vector<std::string> bound_here;
      bool ok = true;
      for (size_t i = 0; i < atom.arity(); ++i) {
        const Term& t = atom.args()[i];
        if (t.is_constant()) {
          if (t.value() != tuple[i]) {
            ok = false;
            break;
          }
          continue;
        }
        auto it = binding.find(t.var_name());
        if (it != binding.end()) {
          if (it->second != tuple[i]) {
            ok = false;
            break;
          }
        } else {
          binding.emplace(t.var_name(), tuple[i]);
          bound_here.push_back(t.var_name());
        }
      }
      if (ok) {
        // Check any comparison that just became ground.
        std::vector<size_t> checked_here;
        for (size_t ci = 0; ok && ci < ctx.comparisons->size(); ++ci) {
          if (done[ci]) continue;
          bool value = false;
          if (TryEvalComparison((*ctx.comparisons)[ci], binding, &value)) {
            if (!value) {
              ok = false;
            } else {
              done[ci] = true;
              checked_here.push_back(ci);
            }
          }
        }
        if (ok &&
            !Search(atoms, used, remaining - 1, binding, done, ctx)) {
          // Propagate stop; undo below still runs.
        }
        for (size_t ci : checked_here) done[ci] = false;
      }
      for (const std::string& v : bound_here) binding.erase(v);
      if (ctx.stopped) break;
    }
  }
  used[best] = false;
  return !ctx.stopped;
}

}  // namespace

Status ForEachMatch(const std::vector<Atom>& body,
                    const std::vector<Comparison>& comparisons,
                    const Database& db,
                    const std::function<bool(const BindingMap&)>& callback) {
  if (body.empty()) {
    // An empty body has the single empty match if all ground comparisons
    // hold (non-ground ones would make the query unsafe).
    BindingMap empty;
    for (const Comparison& c : comparisons) {
      bool value = false;
      if (!TryEvalComparison(c, empty, &value)) {
        return Status::InvalidArgument(
            "comparison over unbound variable in empty body: " +
            c.ToString());
      }
      if (!value) return Status::Ok();
    }
    callback(empty);
    return Status::Ok();
  }
  std::vector<Atom> atoms = body;
  std::vector<bool> used(atoms.size(), false);
  std::vector<bool> done(comparisons.size(), false);
  BindingMap binding;
  IndexCache indexes(&db);
  MatchContext ctx{&db, &comparisons, &callback, &indexes};
  Search(atoms, used, atoms.size(), binding, done, ctx);
  return Status::Ok();
}

Result<Relation> EvaluateCQ(const ConjunctiveQuery& cq, const Database& db) {
  PDMS_RETURN_IF_ERROR(cq.CheckSafe());
  Relation out(cq.head().predicate(), cq.head().arity());
  Status status = ForEachMatch(
      cq.body(), cq.comparisons(), db, [&](const BindingMap& binding) {
        Tuple tuple;
        tuple.reserve(cq.head().arity());
        for (const Term& t : cq.head().args()) {
          if (t.is_constant()) {
            tuple.push_back(t.value());
          } else {
            auto it = binding.find(t.var_name());
            PDMS_CHECK_MSG(it != binding.end(), "unsafe head variable");
            tuple.push_back(it->second);
          }
        }
        out.Insert(std::move(tuple));
        return true;
      });
  PDMS_RETURN_IF_ERROR(status);
  return out;
}

namespace {

// Clears every distinct body relation through the gate; returns the first
// veto (callers decide whether a veto skips the disjunct or fails the
// query).
Status GateBody(const ConjunctiveQuery& cq, const StoredGate& gate) {
  if (!gate) return Status::Ok();
  std::set<std::string> seen;
  for (const Atom& a : cq.body()) {
    if (!seen.insert(a.predicate()).second) continue;
    PDMS_RETURN_IF_ERROR(gate(a.predicate()));
  }
  return Status::Ok();
}

}  // namespace

Result<Relation> EvaluateCQ(const ConjunctiveQuery& cq, const Database& db,
                            const StoredGate& gate,
                            obs::TraceContext* trace) {
  PDMS_RETURN_IF_ERROR(GateBody(cq, gate));
  obs::ScopedSpan join_span(trace, "join");
  join_span.Set("atoms", static_cast<uint64_t>(cq.body().size()));
  Result<Relation> out = EvaluateCQ(cq, db);
  if (out.ok()) {
    join_span.Set("answers", static_cast<uint64_t>(out->size()));
  }
  return out;
}

Result<Relation> EvaluateUnion(const UnionQuery& uq, const Database& db) {
  if (uq.empty()) return Relation("result", 0);
  Relation out(uq.disjuncts()[0].head().predicate(),
               uq.disjuncts()[0].head().arity());
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    if (cq.head().arity() != out.arity()) {
      return Status::InvalidArgument(StrFormat(
          "union disjuncts disagree on arity (%zu vs %zu)", out.arity(),
          cq.head().arity()));
    }
    PDMS_ASSIGN_OR_RETURN(Relation part, EvaluateCQ(cq, db));
    for (const Tuple& t : part.tuples()) out.Insert(t);
  }
  return out;
}

Result<DegradedEvalResult> EvaluateUnionDegraded(const UnionQuery& uq,
                                                 const Database& db,
                                                 const StoredGate& gate,
                                                 obs::TraceContext* trace,
                                                 obs::MetricsRegistry* metrics) {
  DegradedEvalResult out;
  if (uq.empty()) return out;
  out.answers = Relation(uq.disjuncts()[0].head().predicate(),
                         uq.disjuncts()[0].head().arity());
  std::set<std::string> unavailable;
  size_t index = 0;
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    if (cq.head().arity() != out.answers.arity()) {
      return Status::InvalidArgument(
          StrFormat("union disjuncts disagree on arity (%zu vs %zu)",
                    out.answers.arity(), cq.head().arity()));
    }
    obs::ScopedSpan cq_span(trace, "eval_cq");
    cq_span.Set("disjunct", static_cast<uint64_t>(index++));
    cq_span.Set("atoms", static_cast<uint64_t>(cq.body().size()));
    bool skipped = false;
    if (gate) {
      std::set<std::string> seen;
      for (const Atom& a : cq.body()) {
        if (!seen.insert(a.predicate()).second) continue;
        Status s = gate(a.predicate());
        if (s.ok()) continue;
        if (s.code() != StatusCode::kUnavailable) return s;
        unavailable.insert(a.predicate());
        skipped = true;
        // Keep gating the remaining relations: each probe is recorded in
        // the access stats, and later disjuncts reuse the cached verdicts.
      }
    }
    if (skipped) {
      ++out.disjuncts_skipped;
      cq_span.Set("skipped", true);
      continue;
    }
    obs::ScopedSpan join_span(trace, "join");
    PDMS_ASSIGN_OR_RETURN(Relation part, EvaluateCQ(cq, db));
    join_span.Set("answers", static_cast<uint64_t>(part.size()));
    join_span.End();
    cq_span.Set("answers", static_cast<uint64_t>(part.size()));
    for (const Tuple& t : part.tuples()) out.answers.Insert(t);
  }
  out.unavailable_relations.assign(unavailable.begin(), unavailable.end());
  if (metrics != nullptr) {
    metrics->Add("eval.disjuncts", uq.size());
    metrics->Add("eval.disjuncts_skipped", out.disjuncts_skipped);
    metrics->Add("eval.answers", out.answers.size());
  }
  return out;
}

Relation DropNullTuples(const Relation& rel) {
  Relation out(rel.name(), rel.arity());
  for (const Tuple& t : rel.tuples()) {
    if (!TupleHasNull(t)) out.Insert(t);
  }
  return out;
}

}  // namespace pdms
