#ifndef PDMS_EXEC_PARALLEL_FOR_H_
#define PDMS_EXEC_PARALLEL_FOR_H_

#include <cstddef>
#include <utility>

#include "pdms/exec/thread_pool.h"

namespace pdms {
namespace exec {

/// Runs `fn(i)` for i in [0, n), forking one task per index onto `pool`
/// and joining before returning. Serial (plain loop, identical effects in
/// index order) when the pool is null, has no workers, or n <= 1.
///
/// `fn` must be safe to invoke concurrently for distinct indices; writes
/// should go to per-index slots the caller merges afterwards. The join is
/// a full barrier, so those writes are visible when ParallelFor returns.
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t n, Fn&& fn) {
  if (pool == nullptr || pool->workers() == 0 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskGroup group(pool);
  for (size_t i = 0; i < n; ++i) {
    group.Run([&fn, i] { fn(i); });
  }
  group.Wait();
}

}  // namespace exec
}  // namespace pdms

#endif  // PDMS_EXEC_PARALLEL_FOR_H_
