#ifndef PDMS_EXEC_THREAD_POOL_H_
#define PDMS_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pdms {
namespace exec {

/// A work-stealing thread pool (docs/parallel_execution.md).
///
/// Each worker owns a deque: it pushes and pops its own tasks LIFO (good
/// locality for fork/join trees) and steals FIFO from the other workers'
/// deques when its own runs dry (oldest task first, which tends to steal
/// the largest remaining subtree). External threads submit round-robin.
///
/// Tasks are plain `std::function<void()>` and must not throw — every
/// engine in this codebase reports failure through Status, and an
/// exception escaping a worker would terminate the process.
///
/// A pool with zero workers is valid and degenerate: Submit runs nothing
/// (callers must not Submit to it), TryRunOne always fails, and TaskGroup/
/// ParallelFor fall back to inline execution. The parallel call sites all
/// treat `pool == nullptr || pool->workers() == 0` as "serial".
class ThreadPool {
 public:
  /// Spawns `workers` threads. The caller participates too — TaskGroup::
  /// Wait runs queued tasks while waiting — so a pool sized N serves
  /// roughly N+1 runnable lanes during a fork/join.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return deques_.size(); }

  /// Enqueues a task. Must not be called on a zero-worker pool and must
  /// not be called after destruction begins.
  void Submit(std::function<void()> fn);

  /// Runs one queued task on the calling thread (help-first stealing;
  /// this is what makes nested fork/join deadlock-free). Returns false
  /// when every deque is empty.
  bool TryRunOne();

 private:
  struct WorkerDeque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  bool TakeTask(size_t preferred, std::function<void()>* out);

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> threads_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> pending_{0};   // queued, not yet taken
  std::atomic<size_t> submit_cursor_{0};
  std::atomic<bool> stopping_{false};
};

/// Structured fork/join over a ThreadPool. Run() forks a task; Wait()
/// joins all of them, executing other queued pool tasks while it waits so
/// that nested groups can never deadlock (a waiting thread is always
/// either running a task or observing an empty pool). With a null or
/// zero-worker pool, Run() executes inline — the serial path.
///
/// A TaskGroup is owned by one thread: Run/Wait must be called from the
/// thread that created it. The tasks themselves may create their own
/// nested TaskGroups on the same pool.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn) {
    if (pool_ == nullptr || pool_->workers() == 0) {
      fn();
      return;
    }
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    pool_->Submit([this, fn = std::move(fn)] {
      fn();
      // The decrement happens under mu_ so that Wait's final lock
      // acquisition is guaranteed to happen after the last completing
      // task has released it — after that point no task ever touches
      // this group again, making it safe for the waiter to destroy it.
      std::lock_guard<std::mutex> lock(mu_);
      if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        cv_.notify_all();
      }
    });
  }

  /// Blocks until every task passed to Run has finished. Safe to call
  /// repeatedly; the destructor calls it as a backstop.
  void Wait();

 private:
  ThreadPool* pool_;
  std::atomic<size_t> outstanding_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace exec
}  // namespace pdms

#endif  // PDMS_EXEC_THREAD_POOL_H_
