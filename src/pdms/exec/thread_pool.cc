#include "pdms/exec/thread_pool.h"

#include <chrono>
#include <utility>

namespace pdms {
namespace exec {

ThreadPool::ThreadPool(size_t workers) {
  deques_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    idle_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  size_t target =
      submit_cursor_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
  {
    std::lock_guard<std::mutex> lock(deques_[target]->mu);
    deques_[target]->tasks.push_back(std::move(fn));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    idle_cv_.notify_one();
  }
}

bool ThreadPool::TakeTask(size_t preferred, std::function<void()>* out) {
  size_t n = deques_.size();
  // Own deque first, LIFO (the task just forked is hottest); then sweep
  // the others FIFO — stealing the oldest task grabs the largest
  // still-unsplit subtree of a fork/join computation.
  {
    WorkerDeque& own = *deques_[preferred % n];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  for (size_t off = 1; off < n; ++off) {
    WorkerDeque& victim = *deques_[(preferred + off) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

bool ThreadPool::TryRunOne() {
  if (pending_.load(std::memory_order_acquire) == 0) return false;
  std::function<void()> task;
  // External helpers have no own deque; start the sweep at a rotating
  // position so concurrent helpers spread across victims.
  size_t start = submit_cursor_.fetch_add(1, std::memory_order_relaxed);
  if (!TakeTask(start, &task)) return false;
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  std::function<void()> task;
  while (true) {
    if (TakeTask(self, &task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (pending_.load(std::memory_order_acquire) != 0) continue;
    // The timeout is a belt-and-braces backstop against a lost wakeup;
    // normal operation is woken by Submit or shutdown.
    idle_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void TaskGroup::Wait() {
  while (outstanding_.load(std::memory_order_acquire) != 0) {
    if (pool_ != nullptr && pool_->TryRunOne()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (outstanding_.load(std::memory_order_acquire) == 0) break;
    // Short timeout: a task of ours may be running on another worker
    // while the pool looks empty; poll rather than risk a missed notify.
    cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  // The count can reach zero while the last task still holds mu_ (it
  // decrements under the lock). Acquiring it once more delays our return
  // until that task has let go of the group, so callers may destroy the
  // group (or the stack frame that owns it) immediately after Wait.
  std::lock_guard<std::mutex> lock(mu_);
}

}  // namespace exec
}  // namespace pdms
