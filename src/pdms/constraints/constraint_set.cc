#include "pdms/constraints/constraint_set.h"

#include <algorithm>
#include <unordered_map>

#include "pdms/util/check.h"
#include "pdms/util/strings.h"

namespace pdms {

namespace {

// Relation strengths in the order closure: none < le < lt.
constexpr uint8_t kNone = 0;
constexpr uint8_t kLe = 1;
constexpr uint8_t kLtRel = 2;

std::string TermKey(const Term& t) {
  if (t.is_variable()) return "v:" + t.var_name();
  return "c:" + t.value().ToString();
}

// A small decision procedure for a conjunction of order constraints over an
// infinite dense order per value kind. Built fresh per query — constraint
// labels are tiny (tens of terms), so quadratic closure is cheap.
class Solver {
 public:
  explicit Solver(const std::vector<Comparison>& comparisons) {
    for (const Comparison& c : comparisons) {
      int l = NodeFor(c.lhs);
      int r = NodeFor(c.rhs);
      switch (c.op) {
        case CmpOp::kEq:
          Union(l, r);
          break;
        case CmpOp::kNe:
          diseqs_.emplace_back(l, r);
          break;
        case CmpOp::kLt:
          edges_.push_back({l, r, kLtRel});
          break;
        case CmpOp::kLe:
          edges_.push_back({l, r, kLe});
          break;
        case CmpOp::kGt:
          edges_.push_back({r, l, kLtRel});
          break;
        case CmpOp::kGe:
          edges_.push_back({r, l, kLe});
          break;
      }
    }
    Saturate();
  }

  bool Satisfiable() {
    if (conflict_) return false;
    size_t n = terms_.size();
    for (size_t i = 0; i < n; ++i) {
      if (Rel(i, i) == kLtRel) return false;
    }
    // Derived order between constant-pinned classes must agree with the
    // actual values; any order across value kinds is impossible.
    for (size_t i = 0; i < n; ++i) {
      if (Find(static_cast<int>(i)) != static_cast<int>(i)) continue;
      for (size_t j = 0; j < n; ++j) {
        if (i == j || Find(static_cast<int>(j)) != static_cast<int>(j)) {
          continue;
        }
        uint8_t rel = Rel(i, j);
        if (rel == kNone) continue;
        const Value* vi = PinnedValue(i);
        const Value* vj = PinnedValue(j);
        if (vi == nullptr || vj == nullptr) continue;
        if (vi->kind() != vj->kind()) return false;
        if (rel == kLtRel && !(*vi < *vj)) return false;
        if (rel == kLe && !(*vi < *vj) && !(*vi == *vj)) return false;
      }
    }
    // Disequalities contradict forced equalities: same class, mutual <=,
    // or two classes pinned to the same constant value.
    for (const auto& [a, b] : diseqs_) {
      int ra = Find(a);
      int rb = Find(b);
      if (ra == rb) return false;
      if (Rel(ra, rb) == kLe && Rel(rb, ra) == kLe) return false;
      const Value* va = PinnedValue(ra);
      const Value* vb = PinnedValue(rb);
      if (va != nullptr && vb != nullptr && *va == *vb) return false;
    }
    return true;
  }

  // --- introspection used by projection ---

  int TryNode(const Term& t) const {
    auto it = ids_.find(TermKey(t));
    return it == ids_.end() ? -1 : Find(it->second);
  }
  uint8_t RelBetween(int a, int b) const { return Rel(a, b); }
  const Value* PinnedValue(size_t cls) const {
    int rep = Find(static_cast<int>(cls));
    return pinned_[rep].has_value() ? &*pinned_[rep] : nullptr;
  }
  bool HasDiseq(int a, int b) const {
    for (const auto& [x, y] : diseqs_) {
      int rx = Find(x);
      int ry = Find(y);
      if ((rx == a && ry == b) || (rx == b && ry == a)) return true;
    }
    return false;
  }
  int Find(int x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }
  bool conflict() const { return conflict_; }
  size_t num_nodes() const { return terms_.size(); }

 private:
  struct Edge {
    int from;
    int to;
    uint8_t strength;
  };

  int NodeFor(const Term& t) {
    std::string key = TermKey(t);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(terms_.size());
    ids_.emplace(std::move(key), id);
    terms_.push_back(t);
    parent_.push_back(id);
    pinned_.emplace_back();
    if (t.is_constant()) pinned_.back() = t.value();
    return id;
  }

  void Union(int a, int b) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra == rb) return;
    // Keep the pinned constant (if any) on the surviving representative;
    // two different pinned constants in one class are an outright conflict.
    if (pinned_[ra].has_value() && pinned_[rb].has_value() &&
        !(*pinned_[ra] == *pinned_[rb])) {
      conflict_ = true;
    }
    if (!pinned_[ra].has_value()) pinned_[ra] = pinned_[rb];
    parent_[rb] = ra;
  }

  void Saturate() {
    size_t n = terms_.size();
    rel_.assign(n * n, kNone);
    for (const Edge& e : edges_) {
      int f = Find(e.from);
      int t = Find(e.to);
      uint8_t& slot = rel_[f * n + t];
      slot = std::max(slot, e.strength);
    }
    // Floyd-Warshall over {none, le, lt}: composing through k keeps the
    // stronger of the two strengths when both legs exist.
    for (size_t k = 0; k < n; ++k) {
      for (size_t i = 0; i < n; ++i) {
        uint8_t ik = rel_[i * n + k];
        if (ik == kNone) continue;
        for (size_t j = 0; j < n; ++j) {
          uint8_t kj = rel_[k * n + j];
          if (kj == kNone) continue;
          uint8_t& slot = rel_[i * n + j];
          slot = std::max(slot, std::max(ik, kj));
        }
      }
    }
  }

  uint8_t Rel(size_t i, size_t j) const {
    return rel_[i * terms_.size() + j];
  }

  std::unordered_map<std::string, int> ids_;
  std::vector<Term> terms_;
  std::vector<int> parent_;
  std::vector<std::optional<Value>> pinned_;
  std::vector<Edge> edges_;
  std::vector<std::pair<int, int>> diseqs_;
  std::vector<uint8_t> rel_;
  bool conflict_ = false;
};

}  // namespace

void ConstraintSet::AddAll(const ConstraintSet& other) {
  comparisons_.insert(comparisons_.end(), other.comparisons_.begin(),
                      other.comparisons_.end());
}

ConstraintSet ConstraintSet::Conjoin(const ConstraintSet& other) const {
  ConstraintSet out = *this;
  out.AddAll(other);
  return out;
}

ConstraintSet ConstraintSet::Apply(const Substitution& subst) const {
  std::vector<Comparison> out;
  out.reserve(comparisons_.size());
  for (const Comparison& c : comparisons_) out.push_back(subst.Apply(c));
  return ConstraintSet(std::move(out));
}

bool ConstraintSet::IsSatisfiable() const {
  if (comparisons_.empty()) return true;
  Solver solver(comparisons_);
  return solver.Satisfiable();
}

bool ConstraintSet::Implies(const Comparison& cmp) const {
  std::vector<Comparison> augmented = comparisons_;
  augmented.push_back(Comparison{cmp.lhs, NegateCmpOp(cmp.op), cmp.rhs});
  Solver solver(augmented);
  return !solver.Satisfiable();
}

bool ConstraintSet::ImpliesAll(const ConstraintSet& other) const {
  for (const Comparison& c : other.comparisons()) {
    if (!Implies(c)) return false;
  }
  return true;
}

ConstraintSet ConstraintSet::Project(
    const std::unordered_set<std::string>& keep_vars) const {
  if (comparisons_.empty()) return ConstraintSet();
  Solver solver(comparisons_);
  if (!solver.Satisfiable()) {
    // Preserve unsatisfiability in the projection with a ground
    // contradiction so downstream satisfiability checks still fail.
    ConstraintSet out;
    out.Add(Comparison{Term::Int(0), CmpOp::kEq, Term::Int(1)});
    return out;
  }

  // Representable terms: kept variables and every constant in the set.
  std::vector<Term> kept;
  std::unordered_set<std::string> seen;
  for (const Comparison& c : comparisons_) {
    for (const Term* t : {&c.lhs, &c.rhs}) {
      std::string key = TermKey(*t);
      if (seen.count(key) > 0) continue;
      if (t->is_variable() && keep_vars.count(t->var_name()) == 0) continue;
      seen.insert(std::move(key));
      kept.push_back(*t);
    }
  }

  ConstraintSet out;
  for (size_t i = 0; i < kept.size(); ++i) {
    int ni = solver.TryNode(kept[i]);
    PDMS_CHECK(ni >= 0);
    // Variable pinned to a constant via the equality closure.
    if (kept[i].is_variable()) {
      const Value* pinned = solver.PinnedValue(ni);
      if (pinned != nullptr) {
        out.Add(Comparison{kept[i], CmpOp::kEq, Term::Constant(*pinned)});
      }
    }
    for (size_t j = i + 1; j < kept.size(); ++j) {
      // Constant-to-constant facts are tautologies; skip them.
      if (kept[i].is_constant() && kept[j].is_constant()) continue;
      int nj = solver.TryNode(kept[j]);
      PDMS_CHECK(nj >= 0);
      if (ni == nj) {
        out.Add(Comparison{kept[i], CmpOp::kEq, kept[j]});
        continue;
      }
      uint8_t fwd = solver.RelBetween(ni, nj);
      uint8_t bwd = solver.RelBetween(nj, ni);
      if (fwd == kLe && bwd == kLe) {
        out.Add(Comparison{kept[i], CmpOp::kEq, kept[j]});
        continue;
      }
      if (fwd == kLtRel) {
        out.Add(Comparison{kept[i], CmpOp::kLt, kept[j]});
      } else if (fwd == kLe) {
        out.Add(Comparison{kept[i], CmpOp::kLe, kept[j]});
      }
      if (bwd == kLtRel) {
        out.Add(Comparison{kept[j], CmpOp::kLt, kept[i]});
      } else if (bwd == kLe && fwd != kLe) {
        out.Add(Comparison{kept[j], CmpOp::kLe, kept[i]});
      }
      if (solver.HasDiseq(ni, nj)) {
        out.Add(Comparison{kept[i], CmpOp::kNe, kept[j]});
      }
    }
  }
  return out;
}

std::string ConstraintSet::ToString() const {
  if (comparisons_.empty()) return "true";
  std::vector<std::string> parts;
  parts.reserve(comparisons_.size());
  for (const Comparison& c : comparisons_) parts.push_back(c.ToString());
  return StrJoin(parts, " AND ");
}

}  // namespace pdms
