#ifndef PDMS_CONSTRAINTS_CONSTRAINT_SET_H_
#define PDMS_CONSTRAINTS_CONSTRAINT_SET_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "pdms/lang/atom.h"
#include "pdms/lang/substitution.h"

namespace pdms {

/// A conjunction of comparison predicates over terms — the constraint label
/// `c(n)` attached to rule-goal-tree nodes (Section 4.2, "Incorporating
/// comparison predicates"). Supports the three operations the reformulation
/// algorithm needs:
///
///  - satisfiability: a node whose label is unsatisfiable can only yield the
///    empty answer set and is pruned;
///  - projection onto the variables of a child node (footnote 3: projections
///    may be disjunctive; we return the least subsuming conjunction);
///  - implication, for containment tests in the presence of comparisons.
///
/// Satisfiability is decided over an infinite dense order per value kind
/// (ints and strings are mutually incomparable). For integer-typed data the
/// dense relaxation is conservative: anything reported unsatisfiable is
/// truly unsatisfiable (so pruning stays sound), while gaps like
/// `x > 3 ∧ x < 4` are kept. Disequalities only conflict with forced
/// equalities — over an infinite domain they cannot otherwise contradict.
class ConstraintSet {
 public:
  ConstraintSet() = default;
  explicit ConstraintSet(std::vector<Comparison> comparisons)
      : comparisons_(std::move(comparisons)) {}

  bool empty() const { return comparisons_.empty(); }
  const std::vector<Comparison>& comparisons() const { return comparisons_; }

  /// Adds one comparison to the conjunction.
  void Add(Comparison cmp) { comparisons_.push_back(std::move(cmp)); }

  /// Adds all comparisons of `other`.
  void AddAll(const ConstraintSet& other);

  /// Conjunction of this set and `other`.
  ConstraintSet Conjoin(const ConstraintSet& other) const;

  /// Applies a substitution to every comparison.
  ConstraintSet Apply(const Substitution& subst) const;

  /// True if some assignment of the variables satisfies the conjunction.
  bool IsSatisfiable() const;

  /// True if every satisfying assignment also satisfies `cmp`
  /// (decided as: this ∧ ¬cmp is unsatisfiable).
  bool Implies(const Comparison& cmp) const;

  /// True if this set implies every comparison of `other`.
  bool ImpliesAll(const ConstraintSet& other) const;

  /// Projects onto the given variables: returns the comparisons implied by
  /// this set that mention only `keep_vars` and constants. The result is
  /// the least subsuming conjunction (it may be weaker than the exact
  /// projection, never stronger), so pruning against it remains sound.
  ConstraintSet Project(
      const std::unordered_set<std::string>& keep_vars) const;

  /// `x < 5 AND y = x`, or "true" when empty.
  std::string ToString() const;

 private:
  std::vector<Comparison> comparisons_;
};

}  // namespace pdms

#endif  // PDMS_CONSTRAINTS_CONSTRAINT_SET_H_
