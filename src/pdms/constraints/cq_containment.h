#ifndef PDMS_CONSTRAINTS_CQ_CONTAINMENT_H_
#define PDMS_CONSTRAINTS_CQ_CONTAINMENT_H_

#include "pdms/lang/conjunctive_query.h"

namespace pdms {

/// Containment test for conjunctive queries *with comparison predicates*,
/// refining lang/homomorphism.h's ContainsCQ (which requires the general
/// query's comparisons to appear syntactically in the specific one).
///
/// Here a containment mapping h : general → specific witnesses containment
/// when the specific query's comparison set *semantically implies* h(c)
/// for every comparison c of the general query, decided by the constraint
/// solver (e.g. `x < 3` implies `x < 5`, and `x = 3` implies `x <= y`
/// given `y >= 3`).
///
/// Note the classic caveat: homomorphism-based containment with
/// comparisons is sound but not complete in general (completeness needs
/// case analysis over linearizations, Klug's test, which is
/// Π²ᵖ-complete). A true result is always correct; a false result may be a
/// false negative. This matches how the paper uses containment — for
/// sound redundancy elimination.
bool ContainsCQWithComparisons(const ConjunctiveQuery& general,
                               const ConjunctiveQuery& specific);

/// Mutual semantic containment.
bool EquivalentCQWithComparisons(const ConjunctiveQuery& a,
                                 const ConjunctiveQuery& b);

/// RemoveRedundantDisjuncts upgraded with the semantic comparison test:
/// drops disjuncts contained in another disjunct, using
/// ContainsCQWithComparisons. (Does not minimize individual disjuncts with
/// comparisons — atom removal under constraints is a different problem.)
UnionQuery RemoveRedundantDisjunctsWithComparisons(const UnionQuery& uq);

}  // namespace pdms

#endif  // PDMS_CONSTRAINTS_CQ_CONTAINMENT_H_
