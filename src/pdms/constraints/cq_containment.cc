#include "pdms/constraints/cq_containment.h"

#include <string>
#include <vector>

#include "pdms/constraints/constraint_set.h"
#include "pdms/lang/homomorphism.h"

namespace pdms {

namespace {

// A predicate name no parsed query can contain ('\x01' is rejected by the
// lexer), used to force head-to-head correspondence in the search.
const char kHeadMarker[] = "\x01head";

}  // namespace

bool ContainsCQWithComparisons(const ConjunctiveQuery& general,
                               const ConjunctiveQuery& specific) {
  if (general.head().arity() != specific.head().arity()) return false;
  // Prepend synthetic head atoms so the mapping search pins heads to each
  // other; enumerate homomorphisms until one also satisfies the
  // comparison implication side condition.
  std::vector<Atom> from;
  from.emplace_back(kHeadMarker, general.head().args());
  from.insert(from.end(), general.body().begin(), general.body().end());
  std::vector<Atom> onto;
  onto.emplace_back(kHeadMarker, specific.head().args());
  onto.insert(onto.end(), specific.body().begin(), specific.body().end());

  ConstraintSet given(specific.comparisons());
  if (!given.IsSatisfiable()) {
    // An unsatisfiable specific query is empty, hence contained in
    // anything of matching arity.
    return true;
  }
  return ForEachAtomMapping(
      from, onto, VarMap(), [&](const VarMap& witness) {
        for (const Comparison& c : general.comparisons()) {
          Comparison mapped{ApplyVarMap(witness, c.lhs), c.op,
                            ApplyVarMap(witness, c.rhs)};
          if (!given.Implies(mapped)) return false;  // try another witness
        }
        return true;
      });
}

bool EquivalentCQWithComparisons(const ConjunctiveQuery& a,
                                 const ConjunctiveQuery& b) {
  return ContainsCQWithComparisons(a, b) && ContainsCQWithComparisons(b, a);
}

UnionQuery RemoveRedundantDisjunctsWithComparisons(const UnionQuery& uq) {
  const std::vector<ConjunctiveQuery>& disjuncts = uq.disjuncts();
  std::vector<bool> dead(disjuncts.size(), false);
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (dead[i]) continue;
    // A disjunct whose comparisons are unsatisfiable contributes nothing.
    if (!ConstraintSet(disjuncts[i].comparisons()).IsSatisfiable()) {
      dead[i] = true;
      continue;
    }
    for (size_t j = 0; j < disjuncts.size(); ++j) {
      if (i == j || dead[j] || dead[i]) continue;
      if (ContainsCQWithComparisons(disjuncts[i], disjuncts[j])) {
        // Keep the earlier of two equivalent disjuncts.
        if (ContainsCQWithComparisons(disjuncts[j], disjuncts[i]) && j < i) {
          continue;
        }
        dead[j] = true;
      }
    }
  }
  UnionQuery out;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (!dead[i]) out.Add(disjuncts[i]);
  }
  return out;
}

}  // namespace pdms
