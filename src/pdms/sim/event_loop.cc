#include "pdms/sim/event_loop.h"

#include <utility>

#include "pdms/util/strings.h"

namespace pdms {
namespace sim {

EventLoop::EventLoop(FaultInjector* clock) : clock_(clock) {
  if (clock_ != nullptr) local_now_ms_ = clock_->now_ms();
}

double EventLoop::now_ms() const {
  return clock_ != nullptr ? clock_->now_ms() : local_now_ms_;
}

void EventLoop::AdvanceTo(double time_ms) {
  double now = now_ms();
  if (time_ms <= now) return;
  if (clock_ != nullptr) {
    clock_->AdvanceClock(time_ms - now);
  } else {
    local_now_ms_ = time_ms;
  }
}

void EventLoop::Schedule(double delay_ms, std::function<void()> fn) {
  if (delay_ms < 0) delay_ms = 0;
  queue_.push(Event{now_ms() + delay_ms, next_seq_++, std::move(fn)});
}

Status EventLoop::Run(double max_virtual_ms, size_t max_events) {
  size_t fired_this_run = 0;
  while (!queue_.empty()) {
    if (queue_.top().time_ms > max_virtual_ms) {
      return Status::ResourceExhausted(StrFormat(
          "virtual time bound %.1f ms exceeded with %zu event(s) pending",
          max_virtual_ms, queue_.size()));
    }
    if (fired_this_run >= max_events) {
      return Status::ResourceExhausted(StrFormat(
          "event bound %zu exceeded (possible zero-delay event cycle)",
          max_events));
    }
    // Move the callback out before popping: the callback may schedule new
    // events, which mutates the queue.
    Event event = queue_.top();
    queue_.pop();
    AdvanceTo(event.time_ms);
    ++events_fired_;
    ++fired_this_run;
    event.fn();
  }
  return Status::Ok();
}

}  // namespace sim
}  // namespace pdms
