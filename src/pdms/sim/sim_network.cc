#include "pdms/sim/sim_network.h"

#include <algorithm>

#include "pdms/util/strings.h"

namespace pdms {
namespace sim {

std::string LinkFaults::ToString() const {
  return StrFormat(
      "drop=%.2f dup=%.2f delay=%.1f+U[0,%.1f) ms", drop_probability,
      duplicate_probability, min_delay_ms, delay_jitter_ms);
}

SimNetwork::SimNetwork(EventLoop* loop, uint64_t seed)
    : loop_(loop), rng_(seed) {
  // Cannot fail: "uniform" needs no link map.
  model_ = std::move(NetworkModel::Create("uniform", nullptr)).value();
}

void SimNetwork::set_model(std::unique_ptr<NetworkModel> model) {
  if (model != nullptr) model_ = std::move(model);
}

void SimNetwork::Register(const std::string& node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void SimNetwork::Partition(const std::string& a, const std::string& b) {
  partitions_.insert(std::minmax(a, b));
}

void SimNetwork::Heal(const std::string& a, const std::string& b) {
  partitions_.erase(std::minmax(a, b));
}

void SimNetwork::HealAll() { partitions_.clear(); }

bool SimNetwork::IsPartitioned(const std::string& a,
                               const std::string& b) const {
  return partitions_.count(std::minmax(a, b)) > 0;
}

std::vector<std::pair<std::string, std::string>> SimNetwork::Partitions()
    const {
  return {partitions_.begin(), partitions_.end()};
}

void SimNetwork::AppendTrace(const std::string& line) {
  // Versioned header, emitted lazily so the active model is known: v2
  // appends a per-hop `dly=` field to delivery records that v1 traces did
  // not carry. Replay comparisons always run within one version.
  if (trace_.empty()) {
    trace_.push_back(StrFormat("# sim-trace v2 model=%s", model_->name()));
  }
  trace_.push_back(StrFormat("[%10.3f] ", loop_->now_ms()) + line);
}

std::string SimNetwork::TraceString() const {
  std::string out;
  for (const std::string& line : trace_) {
    out += line;
    out += '\n';
  }
  return out;
}

obs::SpanId SimNetwork::StartMessageSpan(const std::string& src,
                                         const std::string& dst,
                                         const Message& message,
                                         bool duplicate) {
  if (obs_trace_ == nullptr) return obs::kNoSpan;
  obs::SpanId span = obs_trace_->StartSpanAt("message", obs_trace_->current());
  obs_trace_->SetAttribute(span, "src", src);
  obs_trace_->SetAttribute(span, "dst", dst);
  obs_trace_->SetAttribute(span, "type", Message::TypeName(message.type));
  obs_trace_->SetAttribute(span, "relation", message.relation);
  obs_trace_->SetAttribute(span, "request_id", message.request_id);
  if (duplicate) obs_trace_->SetAttribute(span, "duplicate", true);
  return span;
}

void SimNetwork::EndMessageSpan(obs::SpanId span, const char* outcome) {
  if (obs_trace_ == nullptr || span == obs::kNoSpan) return;
  obs_trace_->SetAttribute(span, "outcome", outcome);
  obs_trace_->EndSpan(span);
}

void SimNetwork::ScheduleDelivery(const std::string& src,
                                  const std::string& dst,
                                  const Message& message, bool duplicate) {
  double delay = model_->DeliveryDelayMs(src, dst, message, loop_->now_ms(),
                                         faults_, &rng_);
  obs::SpanId span = StartMessageSpan(src, dst, message, duplicate);
  if (obs_trace_ != nullptr && span != obs::kNoSpan) {
    obs_trace_->SetAttribute(span, "delay_ms", delay);
  }
  loop_->Schedule(delay, [this, src, dst, message, duplicate, span, delay] {
    auto it = handlers_.find(dst);
    if (it == handlers_.end()) {
      AppendTrace(StrFormat("lost  %s -> %s  %s (no such node) dly=%.3f",
                            src.c_str(), dst.c_str(),
                            message.ToString().c_str(), delay));
      EndMessageSpan(span, "lost");
      return;
    }
    ++stats_.delivered;
    AppendTrace(StrFormat("recv%s %s -> %s  %s dly=%.3f",
                          duplicate ? "*" : " ", src.c_str(), dst.c_str(),
                          message.ToString().c_str(), delay));
    EndMessageSpan(span, "delivered");
    it->second(src, message);
  });
}

void SimNetwork::Send(const std::string& src, const std::string& dst,
                      Message message) {
  ++stats_.sent;
  AppendTrace(StrFormat("send  %s -> %s  %s", src.c_str(), dst.c_str(),
                        message.ToString().c_str()));
  // The drop and duplicate draws happen unconditionally and in a fixed
  // order so the fault schedule for message k never depends on the
  // partition set — schedules stay comparable across runs that only
  // differ in partitioning.
  bool drop = rng_.Chance(faults_.drop_probability);
  bool duplicate = rng_.Chance(faults_.duplicate_probability);
  if (IsPartitioned(src, dst)) {
    ++stats_.partitioned;
    AppendTrace(StrFormat("part  %s -> %s  %s (partitioned)", src.c_str(),
                          dst.c_str(), message.ToString().c_str()));
    EndMessageSpan(StartMessageSpan(src, dst, message, /*duplicate=*/false),
                   "partitioned");
    return;
  }
  if (drop) {
    ++stats_.dropped;
    AppendTrace(StrFormat("drop  %s -> %s  %s", src.c_str(), dst.c_str(),
                          message.ToString().c_str()));
    EndMessageSpan(StartMessageSpan(src, dst, message, /*duplicate=*/false),
                   "dropped");
    return;
  }
  ScheduleDelivery(src, dst, message, /*duplicate=*/false);
  if (duplicate) {
    ++stats_.duplicated;
    ScheduleDelivery(src, dst, message, /*duplicate=*/true);
  }
}

}  // namespace sim
}  // namespace pdms
