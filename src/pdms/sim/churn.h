#ifndef PDMS_SIM_CHURN_H_
#define PDMS_SIM_CHURN_H_

#include <cstdint>
#include <set>
#include <string>

#include "pdms/core/network.h"
#include "pdms/data/database.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace sim {

/// Relative weights of the churn event mix. Zero disables an event kind.
struct ChurnConfig {
  uint64_t seed = 1;
  double w_crash = 2;          // transport: peer stops responding
  double w_recover = 2;        // transport: crashed peer comes back
  double w_peer_leave = 1;     // catalog: peer marked unavailable
  double w_peer_rejoin = 1;    // catalog: left peer marked available
  double w_peer_join = 0.5;    // catalog: brand-new peer + storage + mapping
  double w_mapping_edit = 2;   // catalog: rewrite one mapping body atom
  double w_mapping_add = 1;    // catalog: new definitional mapping
  double w_mapping_remove = 1;  // catalog: drop a mapping (ids shift)
  double w_relation_flip = 2;  // catalog: stored relation down/up
  double w_fact_insert = 3;    // data only: no catalog movement
  int64_t value_domain = 16;   // domain of inserted facts
};

/// One applied churn event, for traces and repro logs.
struct ChurnEvent {
  enum class Kind {
    kCrash,
    kRecover,
    kPeerLeave,
    kPeerRejoin,
    kPeerJoin,
    kMappingEdit,
    kMappingAdd,
    kMappingRemove,
    kRelationFlip,
    kFactInsert,
    kNoop,  // the drawn kind had no feasible target this step
  };
  Kind kind = Kind::kNoop;
  std::string target;  // peer, mapping, or stored-relation name
  std::string detail;  // human-readable description

  std::string ToString() const;
};

const char* ChurnEventKindName(ChurnEvent::Kind kind);

/// Drives live churn against a shared catalog + instance: each Step()
/// draws one weighted event and applies it to the network/database in
/// place. Catalog events go through the PdmsNetwork mutation API (so the
/// change log, revision, and availability epoch advance exactly as they
/// would in production); crash/recover events are transport-level and only
/// move the `crashed()` set — the caller mirrors that set into its
/// SimPdms instances, which is what makes a crash invisible to the catalog
/// (and to reformulation) but fatal to fetches.
///
/// Deterministic: the same seed over the same starting network replays the
/// same event sequence. The churn DST leans on this to drive a cached and
/// an uncached twin through one shared world.
///
/// Catalog edits preserve the network's PTIME guarantees: mapping edits
/// and additions only draw body atoms from *base* relations — peer
/// relations no mapping provides — so they can never create definitional
/// recursion or inclusion cycles.
class ChurnDriver {
 public:
  ChurnDriver(ChurnConfig config, PdmsNetwork* network, Database* data);

  /// Applies one churn event. Never fails: an infeasible draw (e.g.
  /// recover with nothing crashed) degrades to kNoop.
  ChurnEvent Step();

  /// Peers currently crashed at the transport level.
  const std::set<std::string>& crashed() const { return crashed_; }
  /// Peers currently marked unavailable in the catalog by kPeerLeave.
  const std::set<std::string>& left() const { return left_; }
  /// Stored relations currently flipped down by kRelationFlip.
  const std::set<std::string>& down_relations() const { return down_; }
  size_t joined_peers() const { return joined_; }
  size_t steps() const { return steps_; }

 private:
  ChurnEvent::Kind Draw();
  ChurnEvent ApplyCrash();
  ChurnEvent ApplyRecover();
  ChurnEvent ApplyPeerLeave();
  ChurnEvent ApplyPeerRejoin();
  ChurnEvent ApplyPeerJoin();
  ChurnEvent ApplyMappingEdit();
  ChurnEvent ApplyMappingAdd();
  ChurnEvent ApplyMappingRemove();
  ChurnEvent ApplyRelationFlip();
  ChurnEvent ApplyFactInsert();

  /// Peer relations that no mapping provides (not a definitional head, not
  /// on an inclusion's provided side): always-safe body atoms.
  std::set<std::string> BaseRelations() const;

  ChurnConfig config_;
  PdmsNetwork* network_;  // not owned
  Database* data_;        // not owned
  Rng rng_;
  std::set<std::string> crashed_;
  std::set<std::string> left_;
  std::set<std::string> down_;
  size_t joined_ = 0;
  size_t steps_ = 0;
};

}  // namespace sim
}  // namespace pdms

#endif  // PDMS_SIM_CHURN_H_
