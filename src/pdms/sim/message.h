#ifndef PDMS_SIM_MESSAGE_H_
#define PDMS_SIM_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdms/data/relation.h"
#include "pdms/util/status.h"

namespace pdms {
namespace sim {

/// Upper bound on a scan message's declared relation arity accepted
/// anywhere a Message crosses a trust boundary — matches the PPL parser's
/// arity cap, and is enforced by Validate() and by the binary wire codec
/// (serve/wire.h) before any tuple storage is allocated.
inline constexpr size_t kMaxMessageArity = 1u << 16;

/// The wire protocol of the simulated peer runtime. Distributed query
/// execution needs exactly two message types: the querying peer ships a
/// stored-relation scan to the peer that owns the relation, and the owner
/// ships back a snapshot of the tuples (or an error). Reformulation itself
/// stays local to the querying peer — the catalog is replicated state in
/// this reproduction — so messages carry data, never mappings.
///
/// The same two message shapes exist as real length-prefixed wire frames
/// in `serve/wire.h` (kScanRequest/kScanResponse): the networked server
/// promotes this framing onto actual sockets, sharing Validate() so both
/// transports reject the same malformed payloads.
struct Message {
  enum class Type : uint8_t {
    kScanRequest,   // coordinator -> owner: "send me `relation`"
    kScanResponse,  // owner -> coordinator: tuples or an error status
  };

  Type type = Type::kScanRequest;
  /// Matches a response to its request; also distinguishes retransmits of
  /// the same logical fetch (each retransmit gets a fresh id).
  uint64_t request_id = 0;
  /// The stored relation being scanned.
  std::string relation;
  /// Response only: the scan outcome.
  Status status = Status::Ok();
  /// Response only: snapshot of the relation's tuples at serve time.
  size_t arity = 0;
  std::vector<Tuple> tuples;

  /// Structural validation shared by the simulated bus and the binary wire
  /// codec: the declared arity must stay within kMaxMessageArity, every
  /// response tuple must match it, and requests must name a relation.
  /// Decoders run this *after* bounds-checked parsing; encoders run it
  /// before framing so a malformed message is caught at the producer.
  Status Validate() const;

  /// Compact deterministic rendering used in traces; tuples are summarized
  /// as a count plus an order-insensitive content hash so traces stay
  /// byte-comparable without dumping whole relations.
  std::string ToString() const;
};

}  // namespace sim
}  // namespace pdms

#endif  // PDMS_SIM_MESSAGE_H_
