#ifndef PDMS_SIM_MESSAGE_H_
#define PDMS_SIM_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdms/data/relation.h"
#include "pdms/util/status.h"

namespace pdms {
namespace sim {

/// Upper bound on a scan message's declared relation arity accepted
/// anywhere a Message crosses a trust boundary — matches the PPL parser's
/// arity cap, and is enforced by Validate() and by the binary wire codec
/// (serve/wire.h) before any tuple storage is allocated.
inline constexpr size_t kMaxMessageArity = 1u << 16;

/// The wire protocol of the simulated peer runtime. Distributed query
/// execution needs exactly two message types: the querying peer ships a
/// stored-relation scan to the peer that owns the relation, and the owner
/// ships back a snapshot of the tuples (or an error). Reformulation itself
/// stays local to the querying peer — the catalog is replicated state in
/// this reproduction — so messages carry data, never mappings.
///
/// The same two message shapes exist as real length-prefixed wire frames
/// in `serve/wire.h` (kScanRequest/kScanResponse): the networked server
/// promotes this framing onto actual sockets, sharing Validate() so both
/// transports reject the same malformed payloads.
///
/// Cost-aware routing (docs/network_cost_model.md) adds a relay pair: the
/// coordinator ships one kRelayScanRequest naming several (owner,
/// relation) scans to a relay peer inside the owners' zone; the relay
/// fans the scans out over cheap intra-zone links and returns every
/// outcome in one kRelayScanResponse, so the expensive trunk is crossed
/// twice per zone instead of twice per scan. Relay messages exist only on
/// the simulated bus — the wire codec still speaks the scan pair.
struct Message {
  enum class Type : uint8_t {
    kScanRequest,        // coordinator -> owner: "send me `relation`"
    kScanResponse,       // owner -> coordinator: tuples or an error status
    kRelayScanRequest,   // coordinator -> relay: batched scan targets
    kRelayScanResponse,  // relay -> coordinator: batched scan outcomes
  };

  /// One scan a relay request asks for.
  struct RelayTarget {
    std::string owner;
    std::string relation;
  };

  /// One scan outcome inside a relay response.
  struct ScanResult {
    std::string relation;
    Status status = Status::Ok();
    size_t arity = 0;
    std::vector<Tuple> tuples;
  };

  Type type = Type::kScanRequest;
  /// Matches a response to its request; also distinguishes retransmits of
  /// the same logical fetch (each retransmit gets a fresh id).
  uint64_t request_id = 0;
  /// The stored relation being scanned.
  std::string relation;
  /// Response only: the scan outcome.
  Status status = Status::Ok();
  /// Response only: snapshot of the relation's tuples at serve time.
  size_t arity = 0;
  std::vector<Tuple> tuples;
  /// Relay request only: the scans to perform, sorted by relation.
  std::vector<RelayTarget> targets;
  /// Relay request only: per-sub-scan budget at the relay; a sub-scan
  /// unanswered within it comes back kUnavailable in the response.
  double sub_timeout_ms = 0;
  /// Relay response only: one outcome per requested target.
  std::vector<ScanResult> results;

  /// Structural validation shared by the simulated bus and the binary wire
  /// codec: the declared arity must stay within kMaxMessageArity, every
  /// response tuple must match it, and requests must name a relation.
  /// Decoders run this *after* bounds-checked parsing; encoders run it
  /// before framing so a malformed message is caught at the producer.
  Status Validate() const;

  /// Compact deterministic rendering used in traces; tuples are summarized
  /// as a count plus an order-insensitive content hash so traces stay
  /// byte-comparable without dumping whole relations.
  std::string ToString() const;

  /// Rough on-the-wire size in bytes, used by the latency-bandwidth and
  /// contention network models for serialization delay. An estimate, not a
  /// codec: it only needs to be deterministic and monotone in payload.
  size_t ApproxBytes() const;

  static const char* TypeName(Type type);
};

}  // namespace sim
}  // namespace pdms

#endif  // PDMS_SIM_MESSAGE_H_
