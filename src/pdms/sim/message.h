#ifndef PDMS_SIM_MESSAGE_H_
#define PDMS_SIM_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdms/data/relation.h"
#include "pdms/util/status.h"

namespace pdms {
namespace sim {

/// The wire protocol of the simulated peer runtime. Distributed query
/// execution needs exactly two message types: the querying peer ships a
/// stored-relation scan to the peer that owns the relation, and the owner
/// ships back a snapshot of the tuples (or an error). Reformulation itself
/// stays local to the querying peer — the catalog is replicated state in
/// this reproduction — so messages carry data, never mappings.
struct Message {
  enum class Type : uint8_t {
    kScanRequest,   // coordinator -> owner: "send me `relation`"
    kScanResponse,  // owner -> coordinator: tuples or an error status
  };

  Type type = Type::kScanRequest;
  /// Matches a response to its request; also distinguishes retransmits of
  /// the same logical fetch (each retransmit gets a fresh id).
  uint64_t request_id = 0;
  /// The stored relation being scanned.
  std::string relation;
  /// Response only: the scan outcome.
  Status status = Status::Ok();
  /// Response only: snapshot of the relation's tuples at serve time.
  size_t arity = 0;
  std::vector<Tuple> tuples;

  /// Compact deterministic rendering used in traces; tuples are summarized
  /// as a count plus an order-insensitive content hash so traces stay
  /// byte-comparable without dumping whole relations.
  std::string ToString() const;
};

}  // namespace sim
}  // namespace pdms

#endif  // PDMS_SIM_MESSAGE_H_
