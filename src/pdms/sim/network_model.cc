#include "pdms/sim/network_model.h"

#include <algorithm>
#include <utility>

#include "pdms/sim/sim_network.h"

namespace pdms {
namespace sim {

namespace {

// Every model ends with the legacy jitter draw — one UniformDouble iff
// jitter > 0 — so the RNG consumption per accepted message is identical
// across models and the drop/duplicate schedule never shifts.
double JitterMs(const LinkFaults& faults, Rng* rng) {
  if (faults.delay_jitter_ms <= 0) return 0;
  return rng->UniformDouble() * faults.delay_jitter_ms;
}

class UniformModel : public NetworkModel {
 public:
  const char* name() const override { return "uniform"; }

  double DeliveryDelayMs(const std::string& /*src*/,
                         const std::string& /*dst*/,
                         const Message& /*message*/, double /*now_ms*/,
                         const LinkFaults& faults, Rng* rng) override {
    return faults.min_delay_ms + JitterMs(faults, rng);
  }
};

class LatencyBandwidthModel : public NetworkModel {
 public:
  explicit LatencyBandwidthModel(const LinkMap* links) : links_(links) {}

  const char* name() const override { return "latency-bandwidth"; }

  double DeliveryDelayMs(const std::string& src, const std::string& dst,
                         const Message& message, double /*now_ms*/,
                         const LinkFaults& faults, Rng* rng) override {
    return links_->Get(src, dst).OneWayMs(message.ApproxBytes()) +
           JitterMs(faults, rng);
  }

 private:
  const LinkMap* links_;  // not owned
};

class ContentionModel : public NetworkModel {
 public:
  explicit ContentionModel(const LinkMap* links) : links_(links) {}

  const char* name() const override { return "contention"; }

  double DeliveryDelayMs(const std::string& src, const std::string& dst,
                         const Message& message, double now_ms,
                         const LinkFaults& faults, Rng* rng) override {
    LinkProps props = links_->Get(src, dst);
    // FIFO queueing on the virtual clock: the message waits until the
    // trunk frees up, occupies it for its fixed overhead plus
    // serialization time, and only then propagates. Propagation is
    // pipelined — it does not hold the trunk — so back-to-back messages
    // serialize on occupancy, not on distance.
    double occupancy_ms = props.per_message_ms;
    if (props.bytes_per_ms > 0) {
      occupancy_ms +=
          static_cast<double>(message.ApproxBytes()) / props.bytes_per_ms;
    }
    double& free_at = next_free_ms_[links_->TrunkKey(src, dst)];
    double start_ms = std::max(now_ms, free_at);
    free_at = start_ms + occupancy_ms;
    return (start_ms - now_ms) + occupancy_ms + props.latency_ms +
           JitterMs(faults, rng);
  }

 private:
  const LinkMap* links_;  // not owned
  std::map<std::string, double> next_free_ms_;
};

}  // namespace

Result<std::unique_ptr<NetworkModel>> NetworkModel::Create(
    const std::string& type, const LinkMap* links) {
  if (type.empty() || type == "uniform") {
    return std::unique_ptr<NetworkModel>(new UniformModel());
  }
  if (type == "latency-bandwidth" || type == "contention") {
    if (links == nullptr) {
      return Status::InvalidArgument("network model '" + type +
                                     "' needs a link map");
    }
    if (type == "contention") {
      return std::unique_ptr<NetworkModel>(new ContentionModel(links));
    }
    return std::unique_ptr<NetworkModel>(new LatencyBandwidthModel(links));
  }
  return Status::InvalidArgument("unknown network model: " + type);
}

}  // namespace sim
}  // namespace pdms
