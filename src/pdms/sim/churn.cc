#include "pdms/sim/churn.h"

#include <algorithm>
#include <vector>

#include "pdms/util/strings.h"

namespace pdms {
namespace sim {

const char* ChurnEventKindName(ChurnEvent::Kind kind) {
  switch (kind) {
    case ChurnEvent::Kind::kCrash:
      return "crash";
    case ChurnEvent::Kind::kRecover:
      return "recover";
    case ChurnEvent::Kind::kPeerLeave:
      return "leave";
    case ChurnEvent::Kind::kPeerRejoin:
      return "rejoin";
    case ChurnEvent::Kind::kPeerJoin:
      return "join";
    case ChurnEvent::Kind::kMappingEdit:
      return "editmap";
    case ChurnEvent::Kind::kMappingAdd:
      return "addmap";
    case ChurnEvent::Kind::kMappingRemove:
      return "rmmap";
    case ChurnEvent::Kind::kRelationFlip:
      return "flip";
    case ChurnEvent::Kind::kFactInsert:
      return "insert";
    case ChurnEvent::Kind::kNoop:
      return "noop";
  }
  return "?";
}

std::string ChurnEvent::ToString() const {
  std::string out = ChurnEventKindName(kind);
  if (!target.empty()) out += " " + target;
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

ChurnDriver::ChurnDriver(ChurnConfig config, PdmsNetwork* network,
                         Database* data)
    : config_(config),
      network_(network),
      data_(data),
      rng_(config.seed ^ 0x5851f42d4c957f2dull) {}

ChurnEvent::Kind ChurnDriver::Draw() {
  struct Slot {
    double weight;
    ChurnEvent::Kind kind;
  };
  const Slot slots[] = {
      {config_.w_crash, ChurnEvent::Kind::kCrash},
      {config_.w_recover, ChurnEvent::Kind::kRecover},
      {config_.w_peer_leave, ChurnEvent::Kind::kPeerLeave},
      {config_.w_peer_rejoin, ChurnEvent::Kind::kPeerRejoin},
      {config_.w_peer_join, ChurnEvent::Kind::kPeerJoin},
      {config_.w_mapping_edit, ChurnEvent::Kind::kMappingEdit},
      {config_.w_mapping_add, ChurnEvent::Kind::kMappingAdd},
      {config_.w_mapping_remove, ChurnEvent::Kind::kMappingRemove},
      {config_.w_relation_flip, ChurnEvent::Kind::kRelationFlip},
      {config_.w_fact_insert, ChurnEvent::Kind::kFactInsert},
  };
  double total = 0;
  for (const Slot& s : slots) total += std::max(0.0, s.weight);
  if (total <= 0) return ChurnEvent::Kind::kNoop;
  double roll = rng_.UniformDouble() * total;
  for (const Slot& s : slots) {
    double w = std::max(0.0, s.weight);
    if (roll < w) return s.kind;
    roll -= w;
  }
  return ChurnEvent::Kind::kFactInsert;
}

ChurnEvent ChurnDriver::Step() {
  ++steps_;
  switch (Draw()) {
    case ChurnEvent::Kind::kCrash:
      return ApplyCrash();
    case ChurnEvent::Kind::kRecover:
      return ApplyRecover();
    case ChurnEvent::Kind::kPeerLeave:
      return ApplyPeerLeave();
    case ChurnEvent::Kind::kPeerRejoin:
      return ApplyPeerRejoin();
    case ChurnEvent::Kind::kPeerJoin:
      return ApplyPeerJoin();
    case ChurnEvent::Kind::kMappingEdit:
      return ApplyMappingEdit();
    case ChurnEvent::Kind::kMappingAdd:
      return ApplyMappingAdd();
    case ChurnEvent::Kind::kMappingRemove:
      return ApplyMappingRemove();
    case ChurnEvent::Kind::kRelationFlip:
      return ApplyRelationFlip();
    case ChurnEvent::Kind::kFactInsert:
      return ApplyFactInsert();
    case ChurnEvent::Kind::kNoop:
      break;
  }
  return {};
}

ChurnEvent ChurnDriver::ApplyCrash() {
  std::vector<std::string> candidates;
  for (const Peer& p : network_->peers()) {
    if (crashed_.count(p.name) == 0) candidates.push_back(p.name);
  }
  if (candidates.empty()) return {};
  ChurnEvent out;
  out.kind = ChurnEvent::Kind::kCrash;
  out.target = candidates[rng_.Uniform(candidates.size())];
  crashed_.insert(out.target);
  return out;
}

ChurnEvent ChurnDriver::ApplyRecover() {
  if (crashed_.empty()) return {};
  std::vector<std::string> candidates(crashed_.begin(), crashed_.end());
  ChurnEvent out;
  out.kind = ChurnEvent::Kind::kRecover;
  out.target = candidates[rng_.Uniform(candidates.size())];
  crashed_.erase(out.target);
  return out;
}

ChurnEvent ChurnDriver::ApplyPeerLeave() {
  std::vector<std::string> candidates;
  for (const Peer& p : network_->peers()) {
    if (left_.count(p.name) == 0) candidates.push_back(p.name);
  }
  if (candidates.empty()) return {};
  ChurnEvent out;
  out.kind = ChurnEvent::Kind::kPeerLeave;
  out.target = candidates[rng_.Uniform(candidates.size())];
  if (!network_->SetPeerAvailable(out.target, false).ok()) return {};
  left_.insert(out.target);
  return out;
}

ChurnEvent ChurnDriver::ApplyPeerRejoin() {
  if (left_.empty()) return {};
  std::vector<std::string> candidates(left_.begin(), left_.end());
  ChurnEvent out;
  out.kind = ChurnEvent::Kind::kPeerRejoin;
  out.target = candidates[rng_.Uniform(candidates.size())];
  if (!network_->SetPeerAvailable(out.target, true).ok()) return {};
  left_.erase(out.target);
  return out;
}

ChurnEvent ChurnDriver::ApplyPeerJoin() {
  // A new peer arrives with one stored relation, a little data, and a
  // mapping that offers its data as a new provider of an existing
  // relation — the Example 1.1 "ad-hoc extension" move, mechanized.
  std::string peer = StrFormat("J%zu", joined_);
  std::string qualified = QualifiedName(peer, "R0");
  std::string stored = StrFormat("st_join_%zu", joined_);
  if (!network_->AddPeer(peer, {{"R0", 2}}).ok()) return {};
  ++joined_;
  Term x = Term::Var("x");
  Term y = Term::Var("y");
  StorageDescription sd;
  sd.peer = peer;
  sd.view =
      ConjunctiveQuery(Atom(stored, {x, y}), {Atom(qualified, {x, y})});
  if (!network_->AddStorageDescription(std::move(sd)).ok()) {
    return {};  // peer stays, relation dead-ends: still a valid network
  }
  for (int t = 0; t < 2; ++t) {
    Tuple tuple;
    tuple.push_back(Value::Int(rng_.UniformInt(0, config_.value_domain - 1)));
    tuple.push_back(Value::Int(rng_.UniformInt(0, config_.value_domain - 1)));
    data_->Insert(stored, std::move(tuple));
  }
  ChurnEvent out;
  out.kind = ChurnEvent::Kind::kPeerJoin;
  out.target = peer;
  // Offer the new data under a random existing binary peer relation.
  std::vector<std::string> targets;
  for (const Peer& p : network_->peers()) {
    if (p.name == peer) continue;
    for (const auto& [rel, arity] : p.relations) {
      if (arity == 2) targets.push_back(QualifiedName(p.name, rel));
    }
  }
  if (!targets.empty()) {
    std::string provided = targets[rng_.Uniform(targets.size())];
    PeerMapping pm;
    pm.kind = PeerMappingKind::kDefinitional;
    pm.rule = Rule(Atom(provided, {x, y}), {Atom(qualified, {x, y})}, {});
    if (network_->AddPeerMapping(std::move(pm)).ok()) {
      out.detail = "provides " + provided;
    }
  }
  return out;
}

std::set<std::string> ChurnDriver::BaseRelations() const {
  std::set<std::string> provided;
  for (const PeerMapping& m : network_->peer_mappings()) {
    if (m.kind == PeerMappingKind::kDefinitional) {
      provided.insert(m.rule.head().predicate());
    } else {
      // Goals over the rhs side expand through the view into the lhs; for
      // equalities both directions are live, so both sides are provided.
      for (const Atom& a : m.rhs.body()) provided.insert(a.predicate());
      if (m.kind == PeerMappingKind::kEquality) {
        for (const Atom& a : m.lhs.body()) provided.insert(a.predicate());
      }
    }
  }
  std::set<std::string> base;
  for (const Peer& p : network_->peers()) {
    for (const auto& [rel, arity] : p.relations) {
      (void)arity;
      std::string qualified = QualifiedName(p.name, rel);
      if (provided.count(qualified) == 0) base.insert(qualified);
    }
  }
  return base;
}

ChurnEvent ChurnDriver::ApplyMappingEdit() {
  // Rewrite one body atom of a definitional mapping to draw on a different
  // base relation. Only base relations are eligible replacements, so the
  // edit can neither recurse nor open an inclusion cycle.
  std::vector<size_t> definitional;
  const std::vector<PeerMapping>& mappings = network_->peer_mappings();
  for (size_t i = 0; i < mappings.size(); ++i) {
    if (mappings[i].kind == PeerMappingKind::kDefinitional) {
      definitional.push_back(i);
    }
  }
  if (definitional.empty()) return {};
  const PeerMapping& victim =
      mappings[definitional[rng_.Uniform(definitional.size())]];
  std::set<std::string> base = BaseRelations();
  base.erase(victim.rule.head().predicate());
  PeerMapping next = victim;
  std::vector<Atom> body(victim.rule.body().begin(),
                         victim.rule.body().end());
  size_t slot = rng_.Uniform(body.size());
  std::vector<std::string> candidates;
  for (const std::string& b : base) {
    if (b == body[slot].predicate()) continue;
    if (auto a = network_->RelationArity(b);
        a.ok() && *a == body[slot].arity()) {
      candidates.push_back(b);
    }
  }
  if (candidates.empty()) return {};
  std::string replacement = candidates[rng_.Uniform(candidates.size())];
  body[slot] = Atom(replacement, body[slot].args());
  next.rule =
      Rule(victim.rule.head(), std::move(body),
           std::vector<Comparison>(victim.rule.comparisons().begin(),
                                   victim.rule.comparisons().end()));
  ChurnEvent out;
  out.kind = ChurnEvent::Kind::kMappingEdit;
  out.target = victim.name;
  out.detail = StrFormat("body[%zu] -> %s", slot, replacement.c_str());
  if (!network_->ReplacePeerMapping(out.target, std::move(next)).ok()) {
    return {};
  }
  return out;
}

ChurnEvent ChurnDriver::ApplyMappingAdd() {
  // A new definitional provider: some binary peer relation gains an extra
  // way of being answered from a base relation.
  std::set<std::string> base = BaseRelations();
  std::vector<std::string> targets;
  for (const Peer& p : network_->peers()) {
    for (const auto& [rel, arity] : p.relations) {
      if (arity == 2) targets.push_back(QualifiedName(p.name, rel));
    }
  }
  if (targets.empty()) return {};
  std::string provided = targets[rng_.Uniform(targets.size())];
  std::vector<std::string> bodies;
  for (const std::string& b : base) {
    if (b == provided) continue;
    if (auto a = network_->RelationArity(b); a.ok() && *a == 2) {
      bodies.push_back(b);
    }
  }
  if (bodies.empty()) return {};
  std::string body_rel = bodies[rng_.Uniform(bodies.size())];
  Term x = Term::Var("x");
  Term y = Term::Var("y");
  PeerMapping pm;
  pm.kind = PeerMappingKind::kDefinitional;
  pm.rule = Rule(Atom(provided, {x, y}), {Atom(body_rel, {x, y})}, {});
  ChurnEvent out;
  out.kind = ChurnEvent::Kind::kMappingAdd;
  out.detail = provided + " :- " + body_rel;
  if (!network_->AddPeerMapping(std::move(pm)).ok()) return {};
  out.target = network_->peer_mappings().back().name;
  return out;
}

ChurnEvent ChurnDriver::ApplyMappingRemove() {
  const std::vector<PeerMapping>& mappings = network_->peer_mappings();
  if (mappings.empty()) return {};
  std::string name = mappings[rng_.Uniform(mappings.size())].name;
  ChurnEvent out;
  out.kind = ChurnEvent::Kind::kMappingRemove;
  out.target = name;
  if (!network_->RemovePeerMapping(name).ok()) return {};
  return out;
}

ChurnEvent ChurnDriver::ApplyRelationFlip() {
  std::vector<std::string> names = network_->StoredRelationNames();
  if (names.empty()) return {};
  std::string name = names[rng_.Uniform(names.size())];
  bool down = down_.count(name) > 0;
  ChurnEvent out;
  out.kind = ChurnEvent::Kind::kRelationFlip;
  out.target = name;
  out.detail = down ? "up" : "down";
  if (!network_->SetStoredRelationAvailable(name, down).ok()) return {};
  if (down) {
    down_.erase(name);
  } else {
    down_.insert(name);
  }
  return out;
}

ChurnEvent ChurnDriver::ApplyFactInsert() {
  std::vector<std::string> names = network_->StoredRelationNames();
  if (names.empty()) return {};
  std::string name = names[rng_.Uniform(names.size())];
  size_t arity = 2;
  if (auto a = network_->RelationArity(name); a.ok()) arity = *a;
  Tuple tuple;
  for (size_t i = 0; i < arity; ++i) {
    tuple.push_back(Value::Int(rng_.UniformInt(0, config_.value_domain - 1)));
  }
  data_->Insert(name, std::move(tuple));
  ChurnEvent out;
  out.kind = ChurnEvent::Kind::kFactInsert;
  out.target = name;
  return out;
}

}  // namespace sim
}  // namespace pdms
