#include "pdms/sim/sim_pdms.h"

#include <algorithm>
#include <map>
#include <memory>

#include "pdms/eval/evaluator.h"
#include "pdms/lang/canonical.h"
#include "pdms/lang/parser.h"
#include "pdms/sim/event_loop.h"
#include "pdms/sim/peer_node.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace sim {

namespace {

/// One in-flight stored-relation fetch at the coordinator.
struct Fetch {
  std::string owner;
  size_t arity = 0;
  size_t attempts = 0;          // requests transmitted so far
  uint64_t last_request_id = 0;  // timeout events for older ids are stale
  double sent_at_ms = 0;        // virtual send time of the latest attempt
  bool resolved = false;
  Status status = Status::Ok();
  std::vector<Tuple> tuples;
};

/// Restores the trace clock to wall time when the query leaves the
/// simulated timeline, whatever the exit path.
struct TraceClockGuard {
  obs::TraceContext* ctx;
  ~TraceClockGuard() {
    if (ctx != nullptr) ctx->set_now_fn({});
  }
};

}  // namespace

SimPdms::SimPdms(const PdmsNetwork& network, const Database& data,
                 SimOptions options)
    : network_(network), data_(data), options_(options) {
  reformulator_ =
      std::make_unique<Reformulator>(network_, options_.reform);
}

void SimPdms::Partition(const std::string& a, const std::string& b) {
  partitions_.insert(std::minmax(a, b));
}

void SimPdms::Heal(const std::string& a, const std::string& b) {
  partitions_.erase(std::minmax(a, b));
}

void SimPdms::HealAll() { partitions_.clear(); }

std::vector<std::pair<std::string, std::string>> SimPdms::Partitions() const {
  return {partitions_.begin(), partitions_.end()};
}

void SimPdms::SetPeerCrashed(const std::string& peer, bool crashed) {
  if (crashed) {
    crashed_.insert(peer);
  } else {
    crashed_.erase(peer);
  }
}

Result<AnswerResult> SimPdms::Answer(std::string_view query_text) {
  PDMS_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseRuleText(query_text));
  // Same validation as Pdms::ParseQuery: queries range over declared peer
  // or stored relations with matching arities.
  for (const Atom& a : query.body()) {
    if (!network_.IsPeerRelation(a.predicate()) &&
        !network_.IsStoredRelation(a.predicate())) {
      return Status::NotFound("query references unknown relation " +
                              a.predicate());
    }
    PDMS_ASSIGN_OR_RETURN(size_t arity, network_.RelationArity(a.predicate()));
    if (arity != a.arity()) {
      return Status::InvalidArgument(
          StrFormat("query uses %s with arity %zu (declared %zu)",
                    a.predicate().c_str(), a.arity(), arity));
    }
  }
  return Answer(query);
}

Result<AnswerResult> SimPdms::Answer(const ConjunctiveQuery& query) {
  last_trace_.clear();
  AnswerResult out;
  out.answers = Relation(query.head().predicate(), query.head().arity());

  // The virtual clock exists before any traced work so the whole query —
  // reformulation included — is stamped in simulated time, making the span
  // tree (timestamps and all) a deterministic function of the seed.
  FaultInjector clock(options_.seed);
  EventLoop loop(&clock);
  TraceClockGuard clock_guard{trace_};
  if (trace_ != nullptr) {
    trace_->Clear();
    trace_->set_now_fn([&clock] { return clock.now_ms(); });
  }
  obs::ScopedSpan query_span(trace_, "query");
  query_span.Set("query", query.head().predicate());
  query_span.Set("mode", "sim");
  query_span.Set("seed", static_cast<uint64_t>(options_.seed));

  // Step 1 (local to the querying peer): reformulate, pruning sources the
  // catalog already knows are down — identical to the in-process facade.
  // With caches attached, lookups run under the copied catalog's
  // (revision, availability epoch) scope; a plan hit skips reformulation
  // but the fetch/evaluate steps below still run over the simulated
  // network in full.
  // Cost-aware execution (docs/network_cost_model.md): one estimator per
  // query blends the static link map with the tracker's live SRTTs. It
  // only ever reorders work — candidate ordering, provider choice,
  // routing — so answers stay byte-identical to the cost-blind path.
  const bool cost_aware = options_.reform.cost_aware;
  std::unique_ptr<CostEstimator> estimator;
  if (cost_aware) {
    estimator = std::make_unique<CostEstimator>(
        &network_, options_.links, kCoordinatorName, health_);
  }
  // The qp planner stamps freshly compiled plans with est_net_ms for
  // explain output while this query's estimator lives. Reset first so the
  // engine can never consult a prior query's (destroyed) estimator.
  engine_.set_net_cost(nullptr);
  if (cost_aware) {
    engine_.set_net_cost([est = estimator.get()](const std::string& relation) {
      return est->ScanCostMs(relation);
    });
  }

  ReformulationOptions effective = options_.reform;
  effective.cost_estimator = estimator.get();
  std::set<std::string> down = network_.UnavailableStoredRelations();
  effective.unavailable_stored.insert(down.begin(), down.end());
  effective.trace = trace_;
  effective.metrics = metrics_;
  effective.goal_memo = goal_memo_;
  CacheScope scope;
  scope.network = &network_;
  scope.revision = network_.revision();
  scope.epoch = network_.availability_epoch();
  scope.unavailable_stored = effective.unavailable_stored;
  scope.allowed_stored = effective.allowed_stored;
  scope.options_fingerprint = OptionsFingerprint(effective);
  if (goal_memo_ != nullptr) {
    size_t dropped = goal_memo_->EnterScope(scope);
    if (dropped > 0 && metrics_ != nullptr) {
      metrics_->Add("cache.goal_memo_invalidations", dropped);
    }
  }
  std::string plan_key;
  std::shared_ptr<const PlanCacheHook::Plan> hit;
  if (plan_cache_ != nullptr) {
    size_t invalidated = plan_cache_->EnterScope(scope);
    if (invalidated > 0 && metrics_ != nullptr) {
      metrics_->Add("cache.invalidations", invalidated);
    }
    plan_key = CanonicalQueryKey(query);
    obs::ScopedSpan lookup(trace_, "cache_lookup");
    hit = plan_cache_->Find(plan_key);
    lookup.Set("result", hit != nullptr ? "hit" : "miss");
  }
  ReformulationResult ref;
  if (hit != nullptr) {
    if (metrics_ != nullptr) metrics_->Add("cache.hits");
    query_span.Set("cache", "hit");
    ref.rewriting = hit->rewriting;
    ref.physical_slot = hit->physical;  // share the compiled physical plan
    ref.stats = hit->stats;  // the stats of the original reformulation
    // The excluded_stored report is global (see Pdms::ReformulateCached):
    // recompute it from the current scope rather than serving the one
    // frozen at build time.
    ref.stats.excluded_stored.clear();
    for (const std::string& name : effective.unavailable_stored) {
      if (network_.IsStoredRelation(name) &&
          (effective.allowed_stored.empty() ||
           effective.allowed_stored.count(name) > 0)) {
        ref.stats.excluded_stored.push_back(name);
      }
    }
  } else {
    if (plan_cache_ != nullptr) {
      if (metrics_ != nullptr) metrics_->Add("cache.misses");
      query_span.Set("cache", "miss");
    }
    PDMS_ASSIGN_OR_RETURN(ref, reformulator_->Reformulate(query, effective));
    if (plan_cache_ != nullptr && !ref.stats.tree_truncated &&
        !ref.stats.enumeration_truncated) {
      ref.physical_slot = std::make_shared<qp::PhysicalPlanSlot>();
      PlanCacheHook::InsertOutcome outcome = plan_cache_->Insert(
          plan_key, {ref.rewriting, ref.stats, ref.physical_slot},
          network_.revision(), network_.availability_epoch());
      if (metrics_ != nullptr) {
        if (outcome.stored) metrics_->Add("cache.inserts");
        if (outcome.dropped_stale) {
          metrics_->Add("cache.inserts_dropped_stale");
        }
        if (outcome.evictions > 0) {
          metrics_->Add("cache.evictions", outcome.evictions);
        }
      }
    }
  }
  out.stats = ref.stats;

  // Step 2: every stored relation the rewritings scan must be fetched from
  // its owning peer over the simulated network. Relations served by no
  // peer stay local and cost no messages.
  std::set<std::string> needed;
  for (const ConjunctiveQuery& disjunct : ref.rewriting.disjuncts()) {
    for (const Atom& atom : disjunct.body()) {
      if (network_.IsStoredRelation(atom.predicate())) {
        needed.insert(atom.predicate());
      }
    }
  }

  SimNetwork net(&loop, options_.seed);
  net.set_faults(options_.faults);
  {
    auto model = NetworkModel::Create(options_.network_model, options_.links);
    if (!model.ok()) return model.status();
    net.set_model(std::move(*model));
  }
  net.set_obs_trace(trace_);
  for (const auto& [a, b] : partitions_) net.Partition(a, b);

  AccessStats access;
  Database fetched;  // what the coordinator actually received
  std::map<std::string, Fetch> fetches;
  std::map<std::string, std::unique_ptr<PeerNode>> nodes;
  size_t provider_switches = 0;

  for (const std::string& relation : needed) {
    ++access.probes;
    auto owner = network_.StoredRelationPeer(relation);
    if (cost_aware && owner.ok()) {
      // Replicated stored relations (several storage descriptions sharing
      // one head) give a provider choice; the cheapest estimated round
      // trip wins, ties keeping the legacy first-description owner. All
      // replicas serve the same slice of the instance, so the choice is
      // answer-neutral.
      auto cheapest = estimator->CheapestProvider(relation);
      if (cheapest.ok()) {
        if (*cheapest != *owner) ++provider_switches;
        owner = cheapest;
      }
      if (metrics_ != nullptr) {
        metrics_->Observe("net.est_scan_cost_ms",
                          estimator->ScanCostMs(relation));
      }
    }
    size_t arity = 0;
    if (auto a = network_.RelationArity(relation); a.ok()) arity = *a;
    if (!owner.ok() || owner->empty()) {
      // No owning peer: the querying node holds this relation itself.
      ++access.successes;
      (void)fetched.CreateRelation(relation, arity);
      if (const Relation* local = data_.Find(relation); local != nullptr) {
        for (const Tuple& t : local->tuples()) fetched.Insert(relation, t);
      }
      continue;
    }
    auto [it, inserted] = nodes.try_emplace(*owner);
    if (inserted) {
      it->second = std::make_unique<PeerNode>(*owner, &net);
      it->second->set_crashed(crashed_.count(*owner) > 0);
    }
    Relation slice(relation, arity);
    if (const Relation* local = data_.Find(relation); local != nullptr) {
      slice = *local;
    }
    it->second->ServeRelation(slice);
    Fetch& fetch = fetches[relation];
    fetch.owner = *owner;
    fetch.arity = arity;
  }

  // Peer failure detection (optional, shared across queries like the
  // caches): fetches to suspected peers fail fast, one probe per backoff
  // window checks recovery, and known-slow responses get one hedged
  // duplicate request. Times fed to the tracker combine its monotonic
  // session clock with this query's virtual clock.
  const bool health_on = health_ != nullptr && health_->config().enabled;
  auto session_now = [&] {
    return (health_ != nullptr ? health_->now_ms() : 0.0) + clock.now_ms();
  };

  // Relay batch planning (cost-aware): all the fetches owned by one
  // remote zone are grouped into a single batched round trip through a
  // relay peer of that zone, so the expensive trunk carries 2 messages per
  // zone instead of 2 per scan. Routing only: any relay failure falls
  // back to the per-relation unicast ladder below, which is why the
  // answer set cannot depend on relaying.
  struct RelayBatch {
    std::string relay;
    std::vector<std::string> relations;  // map order: sorted
    uint64_t request_id = 0;
    double sent_at_ms = 0;
    bool resolved = false;
  };
  std::vector<RelayBatch> batches;
  std::map<std::string, size_t> batch_of;       // relation -> batches index
  std::map<uint64_t, size_t> batch_by_request;  // request id -> batches index
  if (cost_aware && options_.relay_fanout && options_.links != nullptr &&
      options_.links->num_zones() > 1) {
    const LinkMap& links = *options_.links;
    const size_t coordinator_zone = links.ZoneOf(kCoordinatorName);
    std::map<size_t, std::vector<std::string>> by_zone;
    for (const auto& [relation, fetch] : fetches) {
      size_t zone = links.ZoneOf(fetch.owner);
      if (zone != coordinator_zone) by_zone[zone].push_back(relation);
    }
    for (auto& [zone, relations] : by_zone) {
      if (relations.size() < 2) continue;  // a lone scan gains nothing
      // Relay = the zone's cheapest owner; iterating the sorted owner set
      // makes the tie-break (first name) deterministic.
      std::set<std::string> owners;
      for (const std::string& r : relations) owners.insert(fetches[r].owner);
      std::string relay;
      double best = 0;
      for (const std::string& owner : owners) {
        double cost = estimator->PeerCostMs(owner);
        if (relay.empty() || cost < best) {
          relay = owner;
          best = cost;
        }
      }
      // A suspected relay would stall the whole batch until the fallback
      // timer; route those zones over plain unicast (where the per-fetch
      // health gate applies as usual).
      if (health_ != nullptr && health_->config().enabled &&
          health_->IsSuspected(relay)) {
        continue;
      }
      size_t index = batches.size();
      batches.push_back(RelayBatch{relay, relations, 0, 0, false});
      for (const std::string& r : relations) batch_of[r] = index;
    }
  }

  // Virtual time when the last fetch settled — the answer-latency metric
  // the topology bench sweeps. loop.now_ms() at exit would overstate it:
  // timeout events stay queued past resolution and run the clock forward.
  double last_resolve_ms = 0;

  // Declared before the handler below so the relay-fallback path can
  // re-enter the unicast ladder; assigned after.
  std::function<void(const std::string&)> send_request;

  // The coordinator: accepts any response for an unresolved fetch (scans
  // are idempotent, so a late answer to a retransmitted request is as good
  // as a fresh one) and ignores duplicates.
  net.Register(kCoordinatorName, [&](const std::string& /*src*/,
                                     const Message& message) {
    if (message.type == Message::Type::kRelayScanResponse) {
      auto bit = batch_by_request.find(message.request_id);
      if (bit == batch_by_request.end()) return;
      RelayBatch& batch = batches[bit->second];
      if (batch.resolved) return;  // duplicate or post-fallback straggler
      batch.resolved = true;
      bool any_ok = false;
      for (const Message::ScanResult& r : message.results) {
        auto it = fetches.find(r.relation);
        if (it == fetches.end() || it->second.resolved) continue;
        Fetch& fetch = it->second;
        if (r.status.ok()) {
          fetch.resolved = true;
          fetch.status = r.status;
          fetch.tuples = r.tuples;
          if (r.arity > 0) fetch.arity = r.arity;
          ++access.successes;
          last_resolve_ms = clock.now_ms();
          any_ok = true;
        } else {
          // The relay answered but this sub-scan failed there; retry the
          // relation directly with the full unicast ladder.
          ++net.mutable_stats()->relay_fallbacks;
          net.AppendTrace(StrFormat("rfbk  scan(%s): relay %s reported %s",
                                    r.relation.c_str(), batch.relay.c_str(),
                                    r.status.ToString().c_str()));
          send_request(r.relation);
        }
      }
      if (any_ok && health_ != nullptr) {
        health_->RecordSuccess(batch.relay, session_now(),
                               clock.now_ms() - batch.sent_at_ms);
      }
      return;
    }
    if (message.type != Message::Type::kScanResponse) return;
    auto it = fetches.find(message.relation);
    if (it == fetches.end() || it->second.resolved) return;
    Fetch& fetch = it->second;
    fetch.resolved = true;
    fetch.status = message.status;
    last_resolve_ms = clock.now_ms();
    if (message.status.ok()) {
      fetch.tuples = message.tuples;
      if (message.arity > 0) fetch.arity = message.arity;
      ++access.successes;
      if (health_ != nullptr) {
        health_->RecordSuccess(fetch.owner, session_now(),
                               clock.now_ms() - fetch.sent_at_ms);
      }
    } else {
      ++access.failures;
      if (health_ != nullptr) {
        health_->RecordFailure(fetch.owner, session_now());
      }
    }
  });

  const size_t max_attempts = std::max<size_t>(1, options_.retry.max_attempts);
  Rng retry_rng(options_.seed ^ 0xd1b54a32d192ed03ull);
  uint64_t next_request_id = 1;

  send_request =
      [&](const std::string& relation) {
        Fetch& fetch = fetches[relation];
        if (fetch.resolved) return;  // answered while backing off
        ++fetch.attempts;
        ++access.attempts;
        uint64_t id = next_request_id++;
        fetch.last_request_id = id;
        fetch.sent_at_ms = clock.now_ms();
        Message request;
        request.type = Message::Type::kScanRequest;
        request.request_id = id;
        request.relation = relation;
        net.Send(kCoordinatorName, fetch.owner, request);
        // Hedged retransmission: with an SRTT estimate, a response that is
        // several SRTTs overdue is probably lost — send one duplicate
        // (same id: the coordinator takes any response for an unresolved
        // fetch) instead of sitting out the rest of the timeout.
        if (health_on && health_->config().hedge_srtt_multiplier > 0) {
          double srtt = health_->SrttMs(fetch.owner);
          double hedge_ms = srtt * health_->config().hedge_srtt_multiplier;
          if (srtt > 0 && hedge_ms < options_.request_timeout_ms) {
            loop.Schedule(hedge_ms, [&, relation, id] {
              Fetch& f = fetches[relation];
              if (f.resolved || f.last_request_id != id) return;
              ++net.mutable_stats()->hedges;
              net.AppendTrace(StrFormat(
                  "hedge req#%llu scan(%s) overdue; duplicate to %s",
                  static_cast<unsigned long long>(id), relation.c_str(),
                  f.owner.c_str()));
              Message dup;
              dup.type = Message::Type::kScanRequest;
              dup.request_id = id;
              dup.relation = relation;
              net.Send(kCoordinatorName, f.owner, dup);
            });
          }
        }
        loop.Schedule(options_.request_timeout_ms, [&, relation, id] {
          Fetch& f = fetches[relation];
          if (f.resolved || f.last_request_id != id) return;
          ++net.mutable_stats()->request_timeouts;
          net.AppendTrace(StrFormat(
              "time  req#%llu scan(%s) timed out (attempt %zu/%zu)",
              static_cast<unsigned long long>(id), relation.c_str(),
              f.attempts, max_attempts));
          if (trace_ != nullptr) {
            obs::SpanId t = trace_->Instant("timeout");
            trace_->SetAttribute(t, "relation", relation);
            trace_->SetAttribute(t, "attempt", static_cast<uint64_t>(f.attempts));
            trace_->SetAttribute(t, "request_id", id);
          }
          if (f.attempts >= max_attempts) {
            f.resolved = true;
            f.status = Status::Unavailable(StrFormat(
                "%s:%s unreachable after %zu attempt(s)", f.owner.c_str(),
                relation.c_str(), f.attempts));
            last_resolve_ms = clock.now_ms();
            ++access.failures;
            if (health_ != nullptr) {
              health_->RecordFailure(f.owner, session_now());
            }
            return;
          }
          ++access.retries;
          ++net.mutable_stats()->retransmits;
          double backoff =
              options_.retry.BackoffMillis(f.attempts, &retry_rng);
          access.backoff_ms += backoff;
          loop.Schedule(backoff,
                        [&send_request, relation] { send_request(relation); });
        });
      };

  // Sends one relay batch: the attempts accounting mirrors unicast (+1 per
  // relation) so a fault-free cost-aware run reports the same access stats
  // as the cost-blind run it must match byte for byte.
  auto send_batch = [&](size_t index) {
    RelayBatch& batch = batches[index];
    uint64_t id = next_request_id++;
    batch.request_id = id;
    batch.sent_at_ms = clock.now_ms();
    batch_by_request[id] = index;
    Message request;
    request.type = Message::Type::kRelayScanRequest;
    request.request_id = id;
    request.sub_timeout_ms = options_.request_timeout_ms;
    for (const std::string& relation : batch.relations) {
      Fetch& fetch = fetches[relation];
      ++fetch.attempts;
      ++access.attempts;
      fetch.sent_at_ms = batch.sent_at_ms;
      Message::RelayTarget target;
      target.owner = fetch.owner;
      target.relation = relation;
      request.targets.push_back(std::move(target));
    }
    ++net.mutable_stats()->relay_batches;
    net.mutable_stats()->relay_scans += batch.relations.size();
    net.AppendTrace(StrFormat("rplan req#%llu relay via %s: %zu scan(s)",
                              static_cast<unsigned long long>(id),
                              batch.relay.c_str(), batch.relations.size()));
    net.Send(kCoordinatorName, batch.relay, std::move(request));
    // The batch gets one generous budget (it covers two trunk crossings
    // plus the intra-zone fan-out), then every still-unresolved relation
    // falls back to the unicast ladder — so a dead relay costs latency,
    // never answers.
    double budget = options_.request_timeout_ms * options_.relay_timeout_factor;
    loop.Schedule(budget, [&, index] {
      RelayBatch& b = batches[index];
      if (b.resolved) return;
      b.resolved = true;
      net.AppendTrace(StrFormat("rtime relay batch req#%llu via %s timed out",
                                static_cast<unsigned long long>(b.request_id),
                                b.relay.c_str()));
      if (health_ != nullptr) health_->RecordFailure(b.relay, session_now());
      for (const std::string& relation : b.relations) {
        if (fetches[relation].resolved) continue;
        ++net.mutable_stats()->relay_fallbacks;
        send_request(relation);
      }
    });
  };

  // The fetch span stays open across loop.Run so every message hop and
  // timeout event nests under it.
  obs::ScopedSpan fetch_span(trace_, "fetch");
  fetch_span.Set("relations", static_cast<uint64_t>(fetches.size()));
  if (cost_aware) {
    fetch_span.Set("cost_aware", static_cast<uint64_t>(1));
    fetch_span.Set("relay_batches", static_cast<uint64_t>(batches.size()));
  }
  for (auto& [relation, fetch] : fetches) {
    if (batch_of.count(relation) != 0) continue;  // travels in a relay batch
    // Gate each fetch through the failure detector before its first
    // transmission: a suspected peer inside its probe backoff costs zero
    // messages — the crash was paid for once, at detection time.
    if (health_on) {
      PeerGate gate = health_->Admit(fetch.owner, session_now());
      if (gate == PeerGate::kSkip) {
        fetch.resolved = true;
        fetch.status = Status::Unavailable(
            StrFormat("%s:%s skipped: peer suspected down",
                      fetch.owner.c_str(), relation.c_str()));
        ++access.failures;
        ++net.mutable_stats()->skipped_suspected;
        net.AppendTrace(StrFormat("skip  scan(%s): %s suspected down",
                                  relation.c_str(), fetch.owner.c_str()));
        continue;
      }
      if (gate == PeerGate::kProbe) {
        net.AppendTrace(StrFormat("probe scan(%s): probing suspected %s",
                                  relation.c_str(), fetch.owner.c_str()));
      }
    }
    send_request(relation);
  }
  for (size_t i = 0; i < batches.size(); ++i) send_batch(i);

  Status run = loop.Run(options_.max_virtual_ms, options_.max_events);
  last_trace_ = net.TraceString();
  access.elapsed_ms = loop.now_ms();
  // Fold this query's virtual duration into the tracker's session clock so
  // probe backoff windows keep counting down across queries (each query
  // runs on a fresh loop starting at 0). Floored at 1ms: a query whose
  // fetches were all skipped costs zero virtual time, and without a floor
  // the probe window would never arrive and a recovered peer would never
  // be re-contacted.
  if (health_ != nullptr) health_->AdvanceClock(std::max(loop.now_ms(), 1.0));
  if (metrics_ != nullptr) {
    const MessageStats& m = net.stats();
    metrics_->Add("sim.messages_sent", m.sent);
    metrics_->Add("sim.messages_delivered", m.delivered);
    metrics_->Add("sim.messages_dropped", m.dropped);
    metrics_->Add("sim.messages_duplicated", m.duplicated);
    metrics_->Add("sim.messages_partitioned", m.partitioned);
    metrics_->Add("sim.request_timeouts", m.request_timeouts);
    metrics_->Add("sim.retransmits", m.retransmits);
    metrics_->Add("sim.hedges", m.hedges);
    metrics_->Add("sim.skipped_suspected", m.skipped_suspected);
    metrics_->Add("net.relay_batches", m.relay_batches);
    metrics_->Add("net.relay_scans", m.relay_scans);
    metrics_->Add("net.relay_fallbacks", m.relay_fallbacks);
    metrics_->Add("net.provider_switches", provider_switches);
    metrics_->Observe("sim.fetch_ms", loop.now_ms());
    // Unlike sim.fetch_ms (= loop.now_ms(), which includes stale timeout
    // timers draining after the last answer arrived), this is when the
    // final fetch actually settled — the bench's answer-latency measure.
    metrics_->Observe("sim.resolve_ms", last_resolve_ms);
  }
  fetch_span.End();
  if (!run.ok()) return run;  // detected hang; last_trace() has the story

  // Assemble the coordinator's view of the data and the dynamic failures.
  std::vector<std::string> failed;
  for (auto& [relation, fetch] : fetches) {
    if (!fetch.resolved) {
      // Cannot happen while the timeout chain is intact; be defensive so a
      // future scheduling bug degrades instead of fabricating answers.
      fetch.status = Status::Internal("fetch never resolved: " + relation);
    }
    if (fetch.status.ok()) {
      (void)fetched.CreateRelation(relation, fetch.arity);
      for (const Tuple& t : fetch.tuples) fetched.Insert(relation, t);
    } else {
      failed.push_back(relation);  // map order: already sorted
    }
  }

  // Step 3: evaluate the rewritings over what actually arrived, skipping
  // disjuncts that touch a failed fetch.
  size_t rewritings_skipped = 0;
  if (!ref.rewriting.empty()) {
    obs::ScopedSpan eval_span(trace_, "evaluate");
    eval_span.Set("disjuncts", static_cast<uint64_t>(ref.rewriting.size()));
    StoredGate gate = [&](const std::string& relation) {
      auto it = fetches.find(relation);
      return it == fetches.end() ? Status::Ok() : it->second.status;
    };
    // The simulated path evaluates vectorized too (same engine contract:
    // canonically sorted answers, identical degradation report). The
    // fetched database is rebuilt per query, so the columnar conversion is
    // per query as well; the *physical plan* still comes from the shared
    // slot when the statistics line up.
    DegradedEvalResult eval;
    if (options_.reform.vectorized_eval) {
      PDMS_ASSIGN_OR_RETURN(
          eval, engine_.EvaluateUnionDegraded(ref.rewriting, fetched, gate,
                                              trace_, metrics_, nullptr,
                                              ref.physical_slot.get()));
    } else {
      PDMS_ASSIGN_OR_RETURN(eval,
                            EvaluateUnionDegraded(ref.rewriting, fetched, gate,
                                                  trace_, metrics_));
    }
    out.answers = std::move(eval.answers);
    rewritings_skipped = eval.disjuncts_skipped;
    eval_span.Set("answers", static_cast<uint64_t>(out.answers.size()));
  }

  FillDegradationReport(network_, out.stats, failed, rewritings_skipped,
                        access, !out.answers.empty(), &out.degradation);
  out.degradation.messages = net.stats();
  out.degradation.distributed = true;
  query_span.Set("answers", static_cast<uint64_t>(out.answers.size()));
  return out;
}

}  // namespace sim
}  // namespace pdms
