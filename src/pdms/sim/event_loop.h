#ifndef PDMS_SIM_EVENT_LOOP_H_
#define PDMS_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "pdms/fault/fault_injector.h"
#include "pdms/util/status.h"

namespace pdms {
namespace sim {

/// A single-threaded discrete-event loop over virtual time. Everything in
/// the simulated peer runtime — message delivery, request timeouts, retry
/// backoff — is an event here, so an entire distributed execution is one
/// deterministic sequence of callbacks: same schedule in, same trace out.
///
/// Time is the fault layer's virtual clock: when constructed with a
/// FaultInjector the loop *is* that injector's clock (it advances
/// `FaultInjector::now_ms` as events fire), so simulated network delay and
/// simulated scan latency share one timeline and nothing ever sleeps.
///
/// Determinism: events fire in (time, insertion order). Ties are broken by
/// a monotonically increasing sequence number, never by pointer values or
/// container iteration order, so two runs that schedule the same events
/// observe the same interleaving.
class EventLoop {
 public:
  /// `clock` may be null (the loop then keeps its own local clock). Not
  /// owned; must outlive the loop.
  explicit EventLoop(FaultInjector* clock = nullptr);

  /// Current virtual time in milliseconds.
  double now_ms() const;

  /// Schedules `fn` to run `delay_ms` from now (>= 0; negative delays are
  /// clamped to 0, i.e. "as soon as possible, after already-queued events
  /// at the current instant").
  void Schedule(double delay_ms, std::function<void()> fn);

  /// Number of events that have fired so far.
  size_t events_fired() const { return events_fired_; }
  /// Number of events still queued.
  size_t pending() const { return queue_.size(); }

  /// Runs events in order until the queue drains. Two bounds make hangs a
  /// detectable outcome instead of a real one: the loop stops with
  /// kResourceExhausted if virtual time would exceed `max_virtual_ms` or
  /// if more than `max_events` events fire (a zero-delay event cycle never
  /// advances time, so a time bound alone cannot catch it).
  Status Run(double max_virtual_ms, size_t max_events = 1u << 22);

 private:
  struct Event {
    double time_ms;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_ms != b.time_ms) return a.time_ms > b.time_ms;
      return a.seq > b.seq;
    }
  };

  void AdvanceTo(double time_ms);

  FaultInjector* clock_;  // not owned; may be null
  double local_now_ms_ = 0;
  uint64_t next_seq_ = 0;
  size_t events_fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sim
}  // namespace pdms

#endif  // PDMS_SIM_EVENT_LOOP_H_
