#include "pdms/sim/message.h"

#include "pdms/util/strings.h"

namespace pdms {
namespace sim {

Status Message::Validate() const {
  if (relation.empty()) {
    return Status::InvalidArgument("scan message names no relation");
  }
  if (arity > kMaxMessageArity) {
    return Status::InvalidArgument(
        StrFormat("scan arity %zu exceeds cap %zu", arity, kMaxMessageArity));
  }
  if (type == Type::kScanResponse) {
    // Set semantics: a nullary relation holds at most one (empty) tuple.
    // The wire decoder enforces the same rule, so a message that fails
    // here could not be smuggled through a hand-built frame either.
    if (arity == 0 && tuples.size() > 1) {
      return Status::InvalidArgument(
          StrFormat("scan response declares %zu tuples at arity 0",
                    tuples.size()));
    }
    for (const Tuple& t : tuples) {
      if (t.size() != arity) {
        return Status::InvalidArgument(
            StrFormat("scan response tuple arity %zu does not match "
                      "declared arity %zu",
                      t.size(), arity));
      }
    }
  }
  return Status::Ok();
}

std::string Message::ToString() const {
  if (type == Type::kScanRequest) {
    return StrFormat("req#%llu scan(%s)",
                     static_cast<unsigned long long>(request_id),
                     relation.c_str());
  }
  if (!status.ok()) {
    return StrFormat("resp#%llu scan(%s) %s",
                     static_cast<unsigned long long>(request_id),
                     relation.c_str(), status.ToString().c_str());
  }
  uint64_t hash = 0;
  for (const Tuple& t : tuples) hash ^= TupleHash(t);
  return StrFormat("resp#%llu scan(%s) ok %zu tuple(s) h=%016llx",
                   static_cast<unsigned long long>(request_id),
                   relation.c_str(), tuples.size(),
                   static_cast<unsigned long long>(hash));
}

}  // namespace sim
}  // namespace pdms
