#include "pdms/sim/message.h"

#include "pdms/util/strings.h"

namespace pdms {
namespace sim {

std::string Message::ToString() const {
  if (type == Type::kScanRequest) {
    return StrFormat("req#%llu scan(%s)",
                     static_cast<unsigned long long>(request_id),
                     relation.c_str());
  }
  if (!status.ok()) {
    return StrFormat("resp#%llu scan(%s) %s",
                     static_cast<unsigned long long>(request_id),
                     relation.c_str(), status.ToString().c_str());
  }
  uint64_t hash = 0;
  for (const Tuple& t : tuples) hash ^= TupleHash(t);
  return StrFormat("resp#%llu scan(%s) ok %zu tuple(s) h=%016llx",
                   static_cast<unsigned long long>(request_id),
                   relation.c_str(), tuples.size(),
                   static_cast<unsigned long long>(hash));
}

}  // namespace sim
}  // namespace pdms
