#include "pdms/sim/message.h"

#include "pdms/util/strings.h"

namespace pdms {
namespace sim {

namespace {

// FNV-1a; traces need a hash that is stable across runs and platforms,
// which std::hash does not promise.
uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

Status ValidateTuples(size_t arity, const std::vector<Tuple>& tuples) {
  // Set semantics: a nullary relation holds at most one (empty) tuple.
  // The wire decoder enforces the same rule, so a message that fails
  // here could not be smuggled through a hand-built frame either.
  if (arity == 0 && tuples.size() > 1) {
    return Status::InvalidArgument(StrFormat(
        "scan response declares %zu tuples at arity 0", tuples.size()));
  }
  for (const Tuple& t : tuples) {
    if (t.size() != arity) {
      return Status::InvalidArgument(
          StrFormat("scan response tuple arity %zu does not match "
                    "declared arity %zu",
                    t.size(), arity));
    }
  }
  return Status::Ok();
}

}  // namespace

const char* Message::TypeName(Type type) {
  switch (type) {
    case Type::kScanRequest:
      return "scan_request";
    case Type::kScanResponse:
      return "scan_response";
    case Type::kRelayScanRequest:
      return "relay_scan_request";
    case Type::kRelayScanResponse:
      return "relay_scan_response";
  }
  return "unknown";
}

Status Message::Validate() const {
  if (arity > kMaxMessageArity) {
    return Status::InvalidArgument(
        StrFormat("scan arity %zu exceeds cap %zu", arity, kMaxMessageArity));
  }
  if (type == Type::kScanRequest || type == Type::kScanResponse) {
    if (relation.empty()) {
      return Status::InvalidArgument("scan message names no relation");
    }
  }
  if (type == Type::kScanResponse) {
    PDMS_RETURN_IF_ERROR(ValidateTuples(arity, tuples));
  }
  if (type == Type::kRelayScanRequest) {
    if (targets.empty()) {
      return Status::InvalidArgument("relay scan request names no targets");
    }
    for (const RelayTarget& t : targets) {
      if (t.owner.empty() || t.relation.empty()) {
        return Status::InvalidArgument(
            "relay scan target misses owner or relation");
      }
    }
  }
  if (type == Type::kRelayScanResponse) {
    for (const ScanResult& r : results) {
      if (r.relation.empty()) {
        return Status::InvalidArgument("relay scan result names no relation");
      }
      if (r.arity > kMaxMessageArity) {
        return Status::InvalidArgument(StrFormat(
            "scan arity %zu exceeds cap %zu", r.arity, kMaxMessageArity));
      }
      if (r.status.ok()) {
        PDMS_RETURN_IF_ERROR(ValidateTuples(r.arity, r.tuples));
      }
    }
  }
  return Status::Ok();
}

std::string Message::ToString() const {
  if (type == Type::kScanRequest) {
    return StrFormat("req#%llu scan(%s)",
                     static_cast<unsigned long long>(request_id),
                     relation.c_str());
  }
  if (type == Type::kRelayScanRequest) {
    uint64_t hash = 0;
    for (const RelayTarget& t : targets) {
      hash ^= HashString(t.owner + ":" + t.relation);
    }
    return StrFormat("rreq#%llu relay(%zu scan(s) h=%016llx)",
                     static_cast<unsigned long long>(request_id),
                     targets.size(), static_cast<unsigned long long>(hash));
  }
  if (type == Type::kRelayScanResponse) {
    size_t ok = 0;
    size_t total_tuples = 0;
    uint64_t hash = 0;
    for (const ScanResult& r : results) {
      if (!r.status.ok()) continue;
      ++ok;
      total_tuples += r.tuples.size();
      for (const Tuple& t : r.tuples) hash ^= TupleHash(t);
    }
    return StrFormat("rresp#%llu relay(%zu/%zu ok, %zu tuple(s) h=%016llx)",
                     static_cast<unsigned long long>(request_id), ok,
                     results.size(), total_tuples,
                     static_cast<unsigned long long>(hash));
  }
  if (!status.ok()) {
    return StrFormat("resp#%llu scan(%s) %s",
                     static_cast<unsigned long long>(request_id),
                     relation.c_str(), status.ToString().c_str());
  }
  uint64_t hash = 0;
  for (const Tuple& t : tuples) hash ^= TupleHash(t);
  return StrFormat("resp#%llu scan(%s) ok %zu tuple(s) h=%016llx",
                   static_cast<unsigned long long>(request_id),
                   relation.c_str(), tuples.size(),
                   static_cast<unsigned long long>(hash));
}

size_t Message::ApproxBytes() const {
  // Fixed header (type, id, status, arity) plus payload estimates: 16
  // bytes per tuple value, string sizes as-is.
  size_t bytes = 64 + relation.size();
  for (const Tuple& t : tuples) bytes += 8 + 16 * t.size();
  for (const RelayTarget& t : targets) {
    bytes += 16 + t.owner.size() + t.relation.size();
  }
  for (const ScanResult& r : results) {
    bytes += 32 + r.relation.size();
    for (const Tuple& t : r.tuples) bytes += 8 + 16 * t.size();
  }
  return bytes;
}

}  // namespace sim
}  // namespace pdms
