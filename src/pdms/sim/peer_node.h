#ifndef PDMS_SIM_PEER_NODE_H_
#define PDMS_SIM_PEER_NODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "pdms/data/database.h"
#include "pdms/sim/sim_network.h"

namespace pdms {
namespace sim {

/// One autonomous peer in the simulated runtime: it owns the stored
/// relations assigned to it (its slice of the global instance) and answers
/// scan requests arriving over the SimNetwork with tuple snapshots. It
/// never reaches into any other peer's state — the network is the only
/// channel — so whatever the coordinator assembles was genuinely
/// communicated.
///
/// Peers also act as relays for cost-aware routing
/// (docs/network_cost_model.md): a kRelayScanRequest names several (owner,
/// relation) scans; the relay serves its own share locally, forwards the
/// rest as ordinary scan requests over (cheap, intra-zone) links with a
/// per-sub-scan timeout, and ships every outcome back in one
/// kRelayScanResponse. A sub-scan that times out is reported
/// kUnavailable, never silently dropped, so the coordinator can fall back
/// per relation.
class PeerNode {
 public:
  /// Registers the node on `network` under `name`. `network` is not owned
  /// and must outlive the node.
  PeerNode(std::string name, SimNetwork* network);

  const std::string& name() const { return name_; }

  /// Moves a stored relation (and its tuples) into this peer's slice.
  void ServeRelation(const Relation& relation);

  /// True if this peer serves `relation`.
  bool Serves(const std::string& relation) const {
    return local_.HasRelation(relation);
  }

  /// A crashed peer receives messages but never replies; requests against
  /// it resolve only by coordinator timeout, exactly like a real silent
  /// failure.
  void set_crashed(bool crashed) { crashed_ = crashed; }
  bool crashed() const { return crashed_; }

  size_t requests_served() const { return requests_served_; }

 private:
  void HandleMessage(const std::string& src, const Message& message);
  void HandleRelayRequest(const std::string& src, const Message& message);
  void HandleSubResponse(const Message& message);
  void FinishRelayJob(uint64_t job_id);
  /// Scans `relation` from the local slice into `out`.
  void ScanLocal(const std::string& relation, Message::ScanResult* out) const;

  /// One in-flight relay batch at this node.
  struct RelayJob {
    std::string origin;        // the coordinator to answer
    uint64_t request_id = 0;   // echoed in the relay response
    std::vector<Message::ScanResult> results;
    size_t pending = 0;        // unresolved remote sub-scans
  };

  std::string name_;
  SimNetwork* network_;  // not owned
  Database local_;
  bool crashed_ = false;
  size_t requests_served_ = 0;
  std::map<uint64_t, RelayJob> relay_jobs_;
  /// Sub-scan request id -> (job id, index into its results). Erased on
  /// the first response or on the sub-timeout, whichever fires first.
  std::map<uint64_t, std::pair<uint64_t, size_t>> relay_waits_;
  uint64_t next_job_id_ = 1;
  uint64_t next_sub_id_ = 1;
};

}  // namespace sim
}  // namespace pdms

#endif  // PDMS_SIM_PEER_NODE_H_
