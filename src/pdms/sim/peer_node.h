#ifndef PDMS_SIM_PEER_NODE_H_
#define PDMS_SIM_PEER_NODE_H_

#include <string>

#include "pdms/data/database.h"
#include "pdms/sim/sim_network.h"

namespace pdms {
namespace sim {

/// One autonomous peer in the simulated runtime: it owns the stored
/// relations assigned to it (its slice of the global instance) and answers
/// scan requests arriving over the SimNetwork with tuple snapshots. It
/// never reaches into any other peer's state — the network is the only
/// channel — so whatever the coordinator assembles was genuinely
/// communicated.
class PeerNode {
 public:
  /// Registers the node on `network` under `name`. `network` is not owned
  /// and must outlive the node.
  PeerNode(std::string name, SimNetwork* network);

  const std::string& name() const { return name_; }

  /// Moves a stored relation (and its tuples) into this peer's slice.
  void ServeRelation(const Relation& relation);

  /// True if this peer serves `relation`.
  bool Serves(const std::string& relation) const {
    return local_.HasRelation(relation);
  }

  /// A crashed peer receives messages but never replies; requests against
  /// it resolve only by coordinator timeout, exactly like a real silent
  /// failure.
  void set_crashed(bool crashed) { crashed_ = crashed; }
  bool crashed() const { return crashed_; }

  size_t requests_served() const { return requests_served_; }

 private:
  void HandleMessage(const std::string& src, const Message& message);

  std::string name_;
  SimNetwork* network_;  // not owned
  Database local_;
  bool crashed_ = false;
  size_t requests_served_ = 0;
};

}  // namespace sim
}  // namespace pdms

#endif  // PDMS_SIM_PEER_NODE_H_
