#ifndef PDMS_SIM_SIM_PDMS_H_
#define PDMS_SIM_SIM_PDMS_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pdms/core/cost_estimator.h"
#include "pdms/core/pdms.h"
#include "pdms/fault/peer_health.h"
#include "pdms/qp/engine.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/sim/sim_network.h"

namespace pdms {
namespace sim {

/// Name the querying node registers under on the SimNetwork. '@' cannot
/// appear in a parsed peer identifier, so the name can never collide with
/// a declared peer.
inline constexpr const char* kCoordinatorName = "@client";

/// Knobs of one simulated distributed execution.
struct SimOptions {
  /// Seeds the network fault schedule, delivery jitter, and retry jitter.
  /// Identical seeds (with identical catalog/data/faults) reproduce
  /// byte-identical traces.
  uint64_t seed = 1;
  /// Fault profile applied to every link.
  LinkFaults faults;
  /// Retransmission policy for scan requests: a request that has not been
  /// answered within `request_timeout_ms` is retried (with this policy's
  /// backoff) up to `retry.max_attempts` transmissions total.
  RetryPolicy retry;
  double request_timeout_ms = 10.0;
  /// Bounds for the event loop; exceeding either makes Answer fail with
  /// kResourceExhausted instead of hanging (the DST "no hang" invariant).
  double max_virtual_ms = 60 * 1000;
  size_t max_events = 1u << 22;
  /// Reformulation options used by the querying peer.
  /// `reform.cost_aware` additionally turns on cost-aware routing here:
  /// cheapest-provider selection among replicated storage descriptions and
  /// relay-batched fan-out (see below).
  ReformulationOptions reform;

  /// Delivery-delay model by factory name (NetworkModel::Create):
  /// "uniform" (legacy, byte-identical traces), "latency-bandwidth", or
  /// "contention". Non-uniform models require `links`.
  std::string network_model = "uniform";
  /// Static link-cost map (borrowed, nullable; must outlive the SimPdms).
  /// Feeds both the non-uniform network models and the CostEstimator.
  const LinkMap* links = nullptr;
  /// When cost-aware: batch the scans bound for one remote zone into a
  /// single relay round-trip over the trunk (docs/network_cost_model.md)
  /// instead of per-scan unicast. Answer-neutral: a failed or timed-out
  /// relay falls back to the unicast ladder per relation.
  bool relay_fanout = true;
  /// A relay batch gets `request_timeout_ms * relay_timeout_factor` before
  /// the coordinator falls back to unicast for its unresolved relations.
  double relay_timeout_factor = 2.5;
};

/// The distributed counterpart of the `Pdms` facade: the same catalog and
/// global instance, but the instance is sliced across actor-style peer
/// nodes and the querying peer can reach stored relations only by
/// exchanging request/response messages over an unreliable simulated
/// network. Reformulation stays local (the catalog is replicated); every
/// stored-relation scan of the resulting rewritings becomes a message
/// round-trip with per-hop timeout and retransmission.
///
/// The whole execution runs on a deterministic single-threaded event loop
/// over virtual time, so a query under message loss, duplication,
/// reordering, and partitions is exactly reproducible from its seed — the
/// property the DST harness (tests/sim_dst_test.cc) leans on.
///
/// Answers remain sound under every fault schedule: a fetch that fails
/// only removes rewritings, never fabricates tuples, so the result is a
/// subset of the fault-free answer and the DegradationReport (with
/// per-hop MessageStats) says what was lost.
class SimPdms {
 public:
  /// Copies the catalog and data; the data is sliced per owning peer at
  /// query time (relations served by no peer stay local to the querying
  /// node and cost no messages).
  SimPdms(const PdmsNetwork& network, const Database& data,
          SimOptions options = {});

  const SimOptions& options() const { return options_; }
  SimOptions* mutable_options() { return &options_; }
  const PdmsNetwork& network() const { return network_; }

  // --- Fault controls (persist across queries) ---

  /// Partitions two nodes (peer names, or kCoordinatorName for the
  /// querying node). Messages between them are blocked until healed.
  void Partition(const std::string& a, const std::string& b);
  void Heal(const std::string& a, const std::string& b);
  void HealAll();
  std::vector<std::pair<std::string, std::string>> Partitions() const;

  /// A crashed peer receives requests but never responds (silent failure,
  /// resolved only by timeout) — distinct from a partition, which blocks
  /// at send time.
  void SetPeerCrashed(const std::string& peer, bool crashed);

  /// Runs one query end to end on a fresh event loop. Fails with
  /// kResourceExhausted if the schedule exceeds the virtual-time or event
  /// bounds (a detected hang), with the partial trace still available.
  Result<AnswerResult> Answer(const ConjunctiveQuery& query);
  Result<AnswerResult> Answer(std::string_view query_text);

  /// The deterministic message trace of the last Answer call.
  const std::string& last_trace() const { return last_trace_; }

  /// Observability sinks (borrowed, nullable — null disables). With a
  /// trace attached, Answer clears it, rebinds its clock to the event
  /// loop's virtual time for the duration of the query (restored on exit),
  /// and emits the full span tree: query > reformulate / fetch (message
  /// hops and timeouts nested) / evaluate. Because every timestamp comes
  /// from the virtual clock, the span tree — ids, nesting, attributes, AND
  /// times — is a deterministic function of the seed.
  void set_trace(obs::TraceContext* trace) { trace_ = trace; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Cross-query caches (borrowed, nullable — null disables; see
  /// docs/plan_cache.md). Because a SimPdms is typically rebuilt per query
  /// (ppl_shell does) while the caches outlive it, the caches are keyed by
  /// the catalog's (revision, availability epoch) scope: each Answer call
  /// re-announces the scope of its copied network, so entries warmed
  /// through one SimPdms serve the next as long as the catalog has not
  /// moved. A cached plan skips reformulation only — every stored-relation
  /// scan still goes over the simulated network, so partitions, crashes,
  /// and message loss degrade a cached query exactly like a fresh one.
  void set_plan_cache(PlanCacheHook* cache) { plan_cache_ = cache; }
  void set_goal_memo(GoalMemoHook* memo) { goal_memo_ = memo; }

  /// Peer failure detector (borrowed, nullable — null disables; see
  /// docs/fault_tolerance.md). Like the caches, the tracker outlives the
  /// per-query SimPdms instances that consult it: suspicion learned by one
  /// query spares the next the timeout ladder. With a tracker attached and
  /// enabled, each fetch is gated before its first transmission — a
  /// suspected peer inside its probe backoff fails fast with zero messages
  /// (MessageStats::skipped_suspected), one request per window doubles as
  /// the recovery probe, and when an SRTT estimate exists a response that
  /// is `hedge_srtt_multiplier` SRTTs overdue triggers one duplicate
  /// request (MessageStats::hedges) without waiting for the full timeout.
  /// Each Answer folds its virtual duration into the tracker's session
  /// clock, so backoff windows span queries deterministically.
  void set_health(PeerHealthTracker* tracker) { health_ = tracker; }
  PeerHealthTracker* health() { return health_; }

 private:
  PdmsNetwork network_;
  Database data_;
  SimOptions options_;
  std::unique_ptr<Reformulator> reformulator_;
  /// Vectorized evaluation over the per-query fetched database (used when
  /// options().reform.vectorized_eval, the default).
  qp::Engine engine_;
  std::set<std::pair<std::string, std::string>> partitions_;
  std::set<std::string> crashed_;
  std::string last_trace_;
  obs::TraceContext* trace_ = nullptr;      // not owned; may be null
  obs::MetricsRegistry* metrics_ = nullptr;  // not owned; may be null
  PlanCacheHook* plan_cache_ = nullptr;      // not owned; may be null
  GoalMemoHook* goal_memo_ = nullptr;        // not owned; may be null
  PeerHealthTracker* health_ = nullptr;      // not owned; may be null
};

}  // namespace sim
}  // namespace pdms

#endif  // PDMS_SIM_SIM_PDMS_H_
