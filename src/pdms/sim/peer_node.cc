#include "pdms/sim/peer_node.h"

namespace pdms {
namespace sim {

PeerNode::PeerNode(std::string name, SimNetwork* network)
    : name_(std::move(name)), network_(network) {
  network_->Register(name_, [this](const std::string& src,
                                   const Message& message) {
    HandleMessage(src, message);
  });
}

void PeerNode::ServeRelation(const Relation& relation) {
  (void)local_.CreateRelation(relation.name(), relation.arity());
  for (const Tuple& t : relation.tuples()) local_.Insert(relation.name(), t);
}

void PeerNode::HandleMessage(const std::string& src, const Message& message) {
  if (message.type != Message::Type::kScanRequest) return;
  if (crashed_) return;  // silent: the coordinator's timeout will fire
  ++requests_served_;

  Message response;
  response.type = Message::Type::kScanResponse;
  response.request_id = message.request_id;
  response.relation = message.relation;
  const Relation* relation = local_.Find(message.relation);
  if (relation == nullptr) {
    response.status = Status::NotFound(
        name_ + " does not serve stored relation " + message.relation);
  } else {
    response.arity = relation->arity();
    response.tuples = relation->tuples();
  }
  network_->Send(name_, src, std::move(response));
}

}  // namespace sim
}  // namespace pdms
